GO ?= go

.PHONY: all build test race vet fmt check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the pre-commit gate: build, vet, formatting, tests under
# the race detector.
check: build vet fmt race

bench:
	$(GO) run ./cmd/hsbench -fig all

clean:
	$(GO) clean ./...
