GO ?= go

.PHONY: all build test race vet fmt golden debug-smoke check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# golden pins the -metrics exposition format; it runs first in check
# because it is fast and a telemetry-schema drift should fail loudly
# before the full race run. Regenerate with:
#   $(GO) test ./cmd/hsbench -run TestExpositionGolden -update
golden:
	$(GO) test ./cmd/hsbench -run TestExpositionGolden

# debug-smoke boots hsbench with the live debug server and asserts
# every endpoint answers 200 with plausible content.
debug-smoke:
	./scripts/debug_smoke.sh

# check is the pre-commit gate: build, vet, formatting, the exposition
# golden, then tests under the race detector.
check: build vet fmt golden race

bench:
	$(GO) run ./cmd/hsbench -fig all

clean:
	$(GO) clean ./...
