GO ?= go

.PHONY: all build test race vet fmt golden doclint debug-smoke chaos-smoke \
	health-smoke serve-smoke check bench clean bench-sched bench-sched-guard \
	bench-sched-smoke bench-trace bench-telemetry bench-telemetry-smoke

# DOC_PKGS are the packages held to the godoc floor by doclint: the
# paper-critical stack plus the serving layer and the facade.
DOC_PKGS = internal/fault internal/fabric internal/coi internal/core \
	internal/trace internal/metrics internal/telemetry internal/health \
	internal/serve .

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# golden pins the -metrics exposition format; it runs first in check
# because it is fast and a telemetry-schema drift should fail loudly
# before the full race run. Regenerate with:
#   $(GO) test ./cmd/hsbench -run TestExpositionGolden -update
golden:
	$(GO) test ./cmd/hsbench -run TestExpositionGolden

# doclint fails on any undocumented exported declaration (or missing
# package comment) in the paper-critical packages.
doclint:
	$(GO) run ./scripts/doclint $(DOC_PKGS)

# debug-smoke boots hsbench with the live debug server and asserts
# every endpoint answers 200 with plausible content.
debug-smoke:
	./scripts/debug_smoke.sh

# chaos-smoke runs the Real-mode hetero matmul under the seeded fault
# injector (retry and breaker profiles) and asserts the result still
# verifies with a nonzero number of injected faults — the resilience
# layer's CI gate (OPERATIONS.md).
chaos-smoke:
	./scripts/chaos_smoke.sh

# health-smoke drives a seeded chaos-profile run under the health
# engine end-to-end: the breaker-trip and quarantine rules must take
# /debug/health ok→critical (readiness probe failing), the journal
# must record the deterministic event skeleton, and the verdict must
# recover to ok after the runtime finalizes (OPERATIONS.md).
health-smoke:
	$(GO) test -run 'TestHealthSmoke$$' -count=1 -v .

# serve-smoke is the serving layer's CI gate: boot hsserve with two
# tenants at 2:1 weights, saturate both with hsbench's load mode, and
# assert throughput shares match the weights within ±10%, queue-depth
# peaks stay within the bound, the hstreams_tenant_* families are
# populated, and SIGTERM shutdown leaks zero buffers (SERVING.md).
serve-smoke:
	./scripts/serve_smoke.sh

# check is the pre-commit gate: build, vet, formatting, the doc lint,
# the exposition golden, tests under the race detector, a single-shot
# scheduler throughput smoke (function, not timing — the timing gate
# is bench-sched-guard), the telemetry smoke, the chaos smoke, the
# health smoke, and the serving smoke.
check: build vet fmt doclint golden race bench-sched-smoke bench-telemetry-smoke chaos-smoke health-smoke serve-smoke

bench:
	$(GO) run ./cmd/hsbench -fig all

# bench-sched measures scheduler actions/sec (best-of-N sampling lives
# in the test) and rewrites BENCH_sched_throughput.json; commit the
# result when the scheduler intentionally changes speed. This target
# is the ONLY way the committed artifact gets rewritten — a plain
# `go test ./...` measures but never writes (SCHED_BENCH_OUT unset),
# so routine test runs cannot clobber the baseline with an outlier.
bench-sched:
	SCHED_BENCH_OUT=BENCH_sched_throughput.json \
		$(GO) test -run 'TestSchedThroughputArtifact$$' -count=1 -v .

# bench-sched-guard fails if a fresh measurement regresses >10%
# against the committed artifact.
bench-sched-guard:
	./scripts/bench_sched.sh

# bench-sched-smoke runs each throughput case once to prove the
# benchmark workload still executes cleanly.
bench-sched-smoke:
	$(GO) test -bench SchedThroughput -benchtime 1x -run '^$$' .

# bench-trace measures flight-recorder overhead on the tier-1 matmul
# and rewrites BENCH_trace_overhead.json; like bench-sched, this
# target is the only writer of the committed artifact (TRACE_BENCH_OUT
# unset during plain test runs).
bench-trace:
	TRACE_BENCH_OUT=BENCH_trace_overhead.json \
		$(GO) test -run 'TestTraceOverheadBudget$$' -count=1 -v .

# bench-telemetry measures the combined trace + sampler + exemplar
# stack against a bare run on the tier-1 matmul and rewrites
# BENCH_telemetry_overhead.json; like the other bench targets, this is
# the only writer of the committed artifact (TELEM_BENCH_OUT unset
# during plain test runs).
bench-telemetry:
	TELEM_BENCH_OUT=BENCH_telemetry_overhead.json \
		$(GO) test -run 'TestTelemetryOverheadBudget$$' -count=1 -v .

# bench-telemetry-smoke proves a sampled run yields a fully-populated
# timeline (rates, exemplar-carrying quantiles, utilization, links) —
# function, not timing; the timing gate is bench-telemetry.
bench-telemetry-smoke:
	$(GO) test -run 'TestTimelineSmoke$$' -count=1 .

clean:
	$(GO) clean ./...
