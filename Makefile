GO ?= go

.PHONY: all build test race vet fmt golden debug-smoke check bench clean \
	bench-sched bench-sched-guard bench-sched-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# golden pins the -metrics exposition format; it runs first in check
# because it is fast and a telemetry-schema drift should fail loudly
# before the full race run. Regenerate with:
#   $(GO) test ./cmd/hsbench -run TestExpositionGolden -update
golden:
	$(GO) test ./cmd/hsbench -run TestExpositionGolden

# debug-smoke boots hsbench with the live debug server and asserts
# every endpoint answers 200 with plausible content.
debug-smoke:
	./scripts/debug_smoke.sh

# check is the pre-commit gate: build, vet, formatting, the exposition
# golden, tests under the race detector, then a single-shot scheduler
# throughput smoke (function, not timing — the timing gate is
# bench-sched-guard).
check: build vet fmt golden race bench-sched-smoke

bench:
	$(GO) run ./cmd/hsbench -fig all

# bench-sched measures scheduler actions/sec (best-of-N sampling lives
# in the test) and rewrites BENCH_sched_throughput.json; commit the
# result when the scheduler intentionally changes speed.
bench-sched:
	$(GO) test -run 'TestSchedThroughputArtifact$$' -count=1 -v .

# bench-sched-guard fails if a fresh measurement regresses >10%
# against the committed artifact.
bench-sched-guard:
	./scripts/bench_sched.sh

# bench-sched-smoke runs each throughput case once to prove the
# benchmark workload still executes cleanly.
bench-sched-smoke:
	$(GO) test -bench SchedThroughput -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
