// Acceptance test for the runtime health engine: a seeded Real-mode
// chaos run must trip a domain breaker, drive /debug/health from ok
// to critical (readiness probe failing), journal a deterministic
// event skeleton, and recover to ok once the runtime finalizes and
// the triggering deltas slide out of the telemetry window. `make
// health-smoke` runs exactly this test.
package hstreams_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/debugserver"
	"hstreams/internal/fault"
	"hstreams/internal/health"
	"hstreams/internal/matmul"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/telemetry"
)

// healthDoc is the slice of the /debug/health JSON this test reads.
type healthDoc struct {
	Severity string `json:"severity"`
	Live     bool   `json:"live"`
	Ready    bool   `json:"ready"`
}

// getHealth fetches and decodes /debug/health.
func getHealth(t *testing.T, url string) healthDoc {
	t.Helper()
	resp, err := http.Get(url + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc healthDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// probeStatus fetches ?probe=ready and returns the HTTP status code.
func probeStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/debug/health?probe=ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// waitSeverity polls /debug/health until the severity matches or the
// timeout expires, returning the last document either way.
func waitSeverity(t *testing.T, url, want string, timeout time.Duration) (healthDoc, bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var doc healthDoc
	for time.Now().Before(deadline) {
		doc = getHealth(t, url)
		if doc.Severity == want {
			return doc, true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return doc, false
}

func TestHealthSmoke(t *testing.T) {
	// Private observability stack: a short 1s telemetry window so rate
	// rules self-clear quickly after the faults stop, a fast sampler
	// driving the engine tick, and the journal fed by the runtime's
	// lifecycle-event hook.
	reg := metrics.New()
	st := telemetry.NewStore(time.Second, 200)
	journal := health.NewJournal(256, reg)
	// rts is published after the sampler is already ticking, so both
	// closures must read it under the same lock as the append below.
	var (
		rtsMu sync.Mutex
		rts   []*core.Runtime
	)
	getRTs := func() []*core.Runtime {
		rtsMu.Lock()
		defer rtsMu.Unlock()
		return append([]*core.Runtime(nil), rts...)
	}
	engine := health.New(health.Options{
		Store:    st,
		Registry: reg,
		Journal:  journal,
		Runtimes: getRTs,
	})
	sampler := telemetry.NewSampler(telemetry.SamplerOptions{
		Registry: reg,
		Store:    st,
		Interval: 2 * time.Millisecond,
		OnSample: engine.Tick,
	})
	srv := httptest.NewServer(debugserver.Handler(debugserver.Options{
		Registry:  reg,
		Telemetry: st,
		Health:    engine,
		Runtimes:  getRTs,
	}))
	defer srv.Close()
	sampler.Start()
	defer sampler.Stop()

	// Seeded Real-mode chaos run tuned to trip the KNC0 breaker:
	// heavy transient faults against the chaos figure's retry budget
	// and a 3-strike breaker, so individual actions survive retries
	// until the domain quarantines and its work re-routes to the
	// host. Verification must still pass.
	plan := fault.Plan{Seed: 1, TransferError: 0.4, KernelError: 0.4}
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeReal,
		StreamsPerCard: 2,
		HostStreams:    2,
		Metrics:        reg,
		Faults:         fault.NewInjector(plan, reg),
		Retry:          core.RetryPolicy{Max: 8, Backoff: 50 * time.Microsecond, BackoffMax: 2500 * time.Microsecond, Jitter: 0.5, Seed: plan.Seed},
		Breaker:        core.BreakerPolicy{Threshold: 3},
		OnEvent:        journal.CoreEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	rtsMu.Lock()
	rts = append(rts, a.RT)
	rtsMu.Unlock()
	matmul.RegisterExtra(a.RT)
	if _, err := matmul.Run(a, matmul.Config{N: 96, Tile: 12, UseHost: true, LoadBalance: true, Verify: true}); err != nil {
		a.Fini()
		t.Fatalf("chaos matmul failed verification: %v", err)
	}

	// The domain is quarantined until Fini: the threshold rule holds
	// the verdict critical and readiness fails.
	doc, ok := waitSeverity(t, srv.URL, "critical", 5*time.Second)
	if !ok {
		t.Fatalf("health never went critical while quarantined: %+v", doc)
	}
	if doc.Ready {
		t.Fatalf("critical verdict still reports ready: %+v", doc)
	}
	if code := probeStatus(t, srv.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("?probe=ready at critical = %d, want 503", code)
	}

	// Fini formally clears the quarantine; the sampler keeps running,
	// so the rate deltas slide out of the 1s window and the verdict
	// recovers.
	a.Fini()
	doc, ok = waitSeverity(t, srv.URL, "ok", 20*time.Second)
	if !ok {
		t.Fatalf("health never recovered after Fini: %+v", doc)
	}
	if !doc.Live || !doc.Ready {
		t.Fatalf("recovered verdict = %+v, want live and ready", doc)
	}
	if code := probeStatus(t, srv.URL); code != http.StatusOK {
		t.Fatalf("?probe=ready after recovery = %d, want 200", code)
	}

	// Journal skeleton: the breaker trips exactly once (the quarantine
	// is one-way per runtime), the quarantine formally clears, rule
	// transitions are journaled, and sequence numbers are strictly
	// increasing — the deterministic seeded run always yields this
	// shape.
	snap := journal.Snapshot()
	var trips, cleared, transitions int
	for i, ev := range snap {
		if i > 0 && ev.Seq <= snap[i-1].Seq {
			t.Fatalf("journal seqs not strictly increasing: %d then %d", snap[i-1].Seq, ev.Seq)
		}
		switch ev.Kind {
		case health.KindBreakerTrip:
			trips++
			if ev.Domain != "KNC0" {
				t.Fatalf("breaker trip on %q, want KNC0", ev.Domain)
			}
		case health.KindQuarantineCleared:
			cleared++
		case health.KindRuleTransition:
			transitions++
		}
	}
	if trips != 1 {
		t.Fatalf("journal records %d breaker trips, want exactly 1", trips)
	}
	if cleared != 1 {
		t.Fatalf("journal records %d quarantine-cleared events, want exactly 1", cleared)
	}
	if transitions < 2 {
		t.Fatalf("journal records %d rule transitions, want at least ok→critical→ok", transitions)
	}

	// /debug/events agrees with the journal's accounting.
	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	var events struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if events.Total < uint64(len(snap)) || len(events.Events) == 0 {
		t.Fatalf("/debug/events total %d with %d events, want at least the %d snapshotted", events.Total, len(events.Events), len(snap))
	}
}
