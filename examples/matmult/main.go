// Matmult runs the paper's heterogeneous tiled matrix multiply
// (Fig. 4): A broadcast to host-as-target streams and all cards, B
// and C split into column panels per domain, transfers pipelined
// under compute.
//
// It first validates the algorithm end-to-end in Real mode on a small
// matrix, then replays Fig. 6's configurations at paper scale on the
// virtual clock.
//
// Run: go run ./examples/matmult [-n 19200] [-tile 2400]
package main

import (
	"flag"
	"fmt"
	"log"

	"hstreams"
	"hstreams/internal/core"
	"hstreams/internal/matmul"
	"hstreams/internal/platform"
)

func main() {
	n := flag.Int("n", 19200, "matrix size for the Sim-mode sweep")
	tile := flag.Int("tile", 2400, "tile size")
	critpath := flag.Bool("critpath", false, "print the critical-path report for the last configuration")
	flag.Parse()

	// Real-mode validation at laptop scale.
	a, err := hstreams.AppInit(hstreams.AppOptions{
		Machine:        hstreams.HSWPlusKNC(2),
		Mode:           hstreams.ModeReal,
		StreamsPerCard: 2,
		HostStreams:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	matmul.RegisterExtra(a.RT)
	res, err := matmul.Run(a, matmul.Config{N: 96, Tile: 24, UseHost: true, LoadBalance: true, Verify: true})
	a.Fini()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real-mode 96×96 hetero multiply verified in %v\n\n", res.Seconds)

	// Fig. 6 configurations at paper scale (virtual clock).
	type cfg struct {
		label   string
		machine *hstreams.Machine
		host    bool
		balance bool
	}
	cases := []cfg{
		{"HSW + 2 KNC", platform.HSWPlusKNC(2), true, true},
		{"HSW + 1 KNC", platform.HSWPlusKNC(1), true, true},
		{"IVB + 2 KNC, with load bal", platform.IVBPlusKNC(2), true, true},
		{"IVB + 2 KNC, no load bal", platform.IVBPlusKNC(2), true, false},
		{"IVB + 1 KNC, with load bal", platform.IVBPlusKNC(1), true, true},
		{"1 KNC (offload)", platform.HSWPlusKNC(1), false, false},
	}
	fmt.Printf("Fig. 6 reproduction, n = %d, tile = %d:\n", *n, *tile)
	for _, c := range cases {
		hostStreams := 0
		if c.host {
			hostStreams = 3
		}
		ap, err := hstreams.AppInit(hstreams.AppOptions{
			Machine:        c.machine,
			Mode:           core.ModeSim,
			StreamsPerCard: 4,
			HostStreams:    hostStreams,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := matmul.Run(ap, matmul.Config{
			N: *n, Tile: *tile, UseHost: c.host, LoadBalance: c.balance,
		})
		ap.Fini()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %7.0f GFlop/s  (%v)\n", c.label, r.GFlops, r.Seconds)
	}

	// Every run above recorded causal spans into the process-wide
	// flight recorder; pull the most recent run back out and explain
	// where its makespan went (see DESIGN.md "Interpreting a
	// critical-path report").
	if *critpath {
		rep := hstreams.AnalyzeCriticalPath(hstreams.LatestRunSpans(hstreams.DefaultFlight().Snapshot()))
		fmt.Printf("\ncritical path of the %q run:\n\n%s", cases[len(cases)-1].label, rep.Format())
	}
}
