// Abaqus reproduces the Simulia Abaqus/Standard experiments: the
// Fig. 9 standalone supernode factorization (one dense LDLᵀ front on
// a KNC card, the HSW host or the IVB host with the paper's stream
// layouts) and the Fig. 8 workload speedups from adding two MIC cards.
//
// Run: go run ./examples/abaqus
package main

import (
	"fmt"
	"log"

	"hstreams/internal/core"
	"hstreams/internal/platform"
	"hstreams/internal/solver"
	"hstreams/internal/workload"
)

func main() {
	// Real-mode validation of the tiled LDLᵀ.
	target := solver.Target{UseHost: true, HostStreams: 2, HostCoresPerStream: 4, PanelOnHost: true}
	if _, err := solver.Factor(platform.HSWPlusKNC(0), core.ModeReal, 60, 12, target, true, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("real-mode tiled LDLT verified against the reference factorization")

	fmt.Printf("\nFig. 9 — standalone supernode (n = %d), paper: 2.35 / 2.24 / 4.27 s:\n", solver.Fig9N)
	for _, c := range solver.Fig9Cases() {
		r, err := solver.Factor(c.Mach, core.ModeSim, solver.Fig9N, solver.Fig9Tile, c.Target, false, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %6.2f s  (%5.0f GFlop/s)\n", c.Label, r.Seconds.Seconds(), r.GFlops)
	}

	fmt.Println("\nFig. 8 — speedups from adding 2 KNC cards (solver / application):")
	for _, pc := range []struct {
		name string
		m    *platform.Machine
	}{
		{"IVB", platform.IVBPlusKNC(2)},
		{"HSW", platform.HSWPlusKNC(2)},
	} {
		fmt.Printf("  %s host:\n", pc.name)
		for _, w := range workload.AbaqusSuite() {
			sp, err := solver.Fig8Speedup(pc.m, core.ModeSim, w)
			if err != nil {
				log.Fatal(err)
			}
			tag := ""
			if w.Unsymmetric {
				tag = " (unsym)"
			}
			fmt.Printf("    %-4s%-8s solver %.2f×   app %.2f×\n", w.Name, tag, sp.Solver, sp.App)
		}
	}
}
