// Cholesky runs the paper's heterogeneous tiled Cholesky (Fig. 5) and
// the Fig. 7 implementation comparison: hetero hStreams vs. MKL-AO
// style bulk-synchronous automatic offload vs. the MAGMA hybrid vs.
// OmpSs vs. pure offload vs. host native.
//
// Run: go run ./examples/cholesky [-n 24000] [-tile 2400]
package main

import (
	"flag"
	"fmt"
	"log"

	"hstreams"
	"hstreams/internal/chol"
	"hstreams/internal/core"
	"hstreams/internal/magma"
	"hstreams/internal/mklao"
	"hstreams/internal/platform"
)

func main() {
	n := flag.Int("n", 24000, "matrix size for the Sim-mode comparison")
	tile := flag.Int("tile", 2400, "tile size")
	flag.Parse()

	// Real-mode validation.
	a, err := hstreams.AppInit(hstreams.AppOptions{
		Machine:        hstreams.HSWPlusKNC(1),
		Mode:           hstreams.ModeReal,
		StreamsPerCard: 2,
		HostStreams:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := chol.Run(a, chol.Config{N: 96, Tile: 24, UseHost: true, Panel: chol.PanelHost, Verify: true})
	a.Fini()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real-mode 96×96 hetero Cholesky verified in %v\n\n", res.Seconds)

	hetero := func(cards int) float64 {
		ap, err := hstreams.AppInit(hstreams.AppOptions{
			Machine:        platform.HSWPlusKNC(cards),
			Mode:           core.ModeSim,
			StreamsPerCard: 4,
			HostStreams:    4,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ap.Fini()
		r, err := chol.Run(ap, chol.Config{N: *n, Tile: *tile, UseHost: true, Panel: chol.PanelHost})
		if err != nil {
			log.Fatal(err)
		}
		return r.GFlops
	}
	fmt.Printf("Fig. 7 reproduction, n = %d, tile = %d:\n", *n, *tile)
	fmt.Printf("  %-26s %7.0f GFlop/s\n", "hStr: HSW + 2 KNC", hetero(2))

	ao2, err := mklao.Dpotrf(platform.HSWPlusKNC(2), core.ModeSim, *n, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-26s %7.0f GFlop/s\n", "MKL AO: HSW + 2 KNC", ao2.GFlops)

	mg2, err := magma.Dpotrf(platform.HSWPlusKNC(2), core.ModeSim, *n, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-26s %7.0f GFlop/s\n", "Magma: HSW + 2 KNC", mg2.GFlops)
	fmt.Printf("  %-26s %7.0f GFlop/s\n", "hStr: HSW + 1 KNC", hetero(1))

	om, err := chol.RunOmpSs(platform.HSWPlusKNC(1), core.ModeSim, *n, *tile, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-26s %7.0f GFlop/s\n", "OmpSs-hStr: HSW + 1 KNC", om.GFlops)

	offApp, err := hstreams.AppInit(hstreams.AppOptions{
		Machine: platform.HSWPlusKNC(1), Mode: core.ModeSim, StreamsPerCard: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	off, err := chol.Run(offApp, chol.Config{N: *n, Tile: *tile, Panel: chol.PanelCard})
	offApp.Fini()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-26s %7.0f GFlop/s\n", "hStr: 1 KNC (offload)", off.GFlops)

	nat, err := chol.RunNative(platform.HSWPlusKNC(0), core.ModeSim, *n, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-26s %7.0f GFlop/s\n", "HSW native (MKL)", nat.GFlops)
}
