// Quickstart: offload a computation to a (simulated) coprocessor card
// with hStreams, overlapping transfers and compute — the minimal
// pattern from §II of the paper:
//
//  1. Init the library on a machine; domains are enumerated.
//  2. Create a stream whose sink is the card.
//  3. Wrap memory in buffers; enqueue transfer → compute → transfer.
//  4. Independent actions overlap; dependent ones order by operands.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hstreams"
	"hstreams/internal/floatbits"
)

func main() {
	// A Haswell host plus one Knights Corner card (Fig. 2's testbed),
	// executing for real on goroutines.
	rt, err := hstreams.Init(hstreams.Config{
		Machine: hstreams.HSWPlusKNC(1),
		Mode:    hstreams.ModeReal,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Fini()

	fmt.Println("domains discovered:")
	for _, d := range rt.Domains() {
		spec := d.Spec()
		fmt.Printf("  %-8s %2d cores × %d threads, %6.0f GF/s peak\n",
			spec.Name, spec.Cores(), spec.ThreadsPerCore, spec.PeakGFlops())
	}

	// Kernels are registered by name; the sink looks them up — the
	// same source builds for any target (no device-specific dialect).
	rt.RegisterKernel("axpy", func(ctx *hstreams.KernelCtx) {
		x := floatbits.Float64s(ctx.Ops[0])
		y := floatbits.Float64s(ctx.Ops[1])
		a := float64(ctx.Args[0])
		for i := range y {
			y[i] += a * x[i]
		}
	})

	// One stream on the card, using 16 of its cores.
	card := rt.Card(0)
	s, err := rt.StreamCreate(card, 0, 16)
	if err != nil {
		log.Fatal(err)
	}

	const n = 1 << 16
	x, xs, err := rt.AllocFloat64("x", n)
	if err != nil {
		log.Fatal(err)
	}
	y, ys, err := rt.AllocFloat64("y", n)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = 1
	}

	// Enqueue everything asynchronously; the FIFO semantic orders the
	// compute after the transfers it reads from (operand overlap) and
	// the read-back after the compute.
	if _, err := s.EnqueueXferAll(x, hstreams.ToSink); err != nil {
		log.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(y, hstreams.ToSink); err != nil {
		log.Fatal(err)
	}
	ev, err := s.EnqueueCompute("axpy", []int64{3},
		[]hstreams.Operand{x.All(hstreams.In), y.All(hstreams.InOut)},
		hstreams.Cost{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(y, hstreams.ToSource); err != nil {
		log.Fatal(err)
	}

	// The action handle doubles as an event.
	if err := ev.Wait(); err != nil {
		log.Fatal(err)
	}
	if err := s.Synchronize(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ny[10] = %v (want %v)\n", ys[10], 1+3*float64(10))
	fmt.Printf("y[%d] = %v (want %v)\n", n-1, ys[n-1], 1+3*float64(n-1))
	fmt.Println("\ntimeline (C compute, T transfer):")
	fmt.Print(rt.Trace().Gantt(64))
}
