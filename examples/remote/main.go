// Remote demonstrates the uniform-interface claim of §IV: hStreams
// "allows the creation of streams on devices residing in remote nodes
// (i.e., over fabric)" with exactly the same code that drives a local
// coprocessor — only the interconnect differs. OpenMP, by contrast,
// separates host and device constructs and has no remote devices.
//
// The program attaches a second Xeon node over a fabric link, runs
// the same offload round trip against the local card and the remote
// node, and shows the identical code path with different transfer
// costs.
//
// Run: go run ./examples/remote
package main

import (
	"fmt"
	"log"

	"hstreams"
	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

func offloadTo(rt *hstreams.Runtime, d *hstreams.Domain) {
	s, err := rt.StreamCreate(d, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	b, f, err := rt.AllocFloat64("v"+d.Spec().Name, 1<<14)
	if err != nil {
		log.Fatal(err)
	}
	for i := range f {
		f[i] = 1
	}
	// The SAME three enqueues work for any domain — local card or
	// remote node. No separate code path.
	if _, err := s.EnqueueXferAll(b, hstreams.ToSink); err != nil {
		log.Fatal(err)
	}
	if _, err := s.EnqueueCompute("triple", nil,
		[]hstreams.Operand{b.All(hstreams.InOut)}, hstreams.Cost{}); err != nil {
		log.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, hstreams.ToSource); err != nil {
		log.Fatal(err)
	}
	if err := s.Synchronize(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s f[0] = %v ✓\n", d.Spec().Name, f[0])
}

func main() {
	// A Haswell host, one local KNC card on PCIe, and a remote
	// Haswell node reached over the fabric.
	machine := platform.HSWPlusKNC(1).AddRemote(platform.HSW(), platform.Fabric())

	fmt.Println("Real mode — identical offload code against local card and remote node:")
	rt, err := hstreams.Init(hstreams.Config{Machine: machine, Mode: hstreams.ModeReal})
	if err != nil {
		log.Fatal(err)
	}
	rt.RegisterKernel("triple", func(ctx *hstreams.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i] *= 3
		}
	})
	offloadTo(rt, rt.Card(0)) // local KNC over PCIe
	offloadTo(rt, rt.Card(1)) // remote Xeon over fabric
	rt.Fini()

	// Sim mode shows the interconnect difference.
	fmt.Println("\nSim mode — same 8 MB transfer, different interconnects:")
	machine2 := platform.HSWPlusKNC(1).AddRemote(platform.HSW(), platform.Fabric())
	rts, err := hstreams.Init(hstreams.Config{Machine: machine2, Mode: core.ModeSim})
	if err != nil {
		log.Fatal(err)
	}
	defer rts.Fini()
	for c := 0; c < 2; c++ {
		d := rts.Card(c)
		s, _ := rts.StreamCreate(d, 0, 8)
		b, _ := rts.Alloc1D("x", 8<<20)
		a, _ := s.EnqueueXferAll(b, hstreams.ToSink)
		a.Wait()
		start, end := a.Times()
		fmt.Printf("  %-12s via %-6s  8 MB in %v\n",
			d.Spec().Name, machine2.LinkFor(c).Name, end-start)
	}
}
