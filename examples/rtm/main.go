// RTM reproduces the Petrobras reverse-time-migration comparison
// (§V, §VI): a 3-D 8th-order wave propagator decomposed into z-slabs,
// one rank per coprocessor, comparing the host baseline against
// fully-synchronous offload and asynchronous pipelined halo exchange.
//
// Run: go run ./examples/rtm [-nx 1024] [-ny 1024] [-nz 4096] [-steps 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"hstreams/internal/core"
	"hstreams/internal/platform"
	"hstreams/internal/stencil"
)

func main() {
	nx := flag.Int("nx", 1024, "grid x")
	ny := flag.Int("ny", 1024, "grid y")
	nz := flag.Int("nz", 4096, "grid z")
	steps := flag.Int("steps", 10, "time steps")
	flag.Parse()

	// Real-mode validation against the reference propagator.
	small := stencil.Config{NX: 20, NY: 18, NZ: 32, Steps: 4, Ranks: 2, Schedule: stencil.AsyncPipelined, Verify: true}
	if _, err := stencil.Run(platform.HSWPlusKNC(2), core.ModeReal, small); err != nil {
		log.Fatal(err)
	}
	fmt.Println("real-mode 2-rank pipelined propagation verified against reference")

	cfg := stencil.Config{NX: *nx, NY: *ny, NZ: *nz, Steps: *steps}
	fmt.Printf("\nRTM %d×%d×%d, %d steps (virtual clock):\n", *nx, *ny, *nz, *steps)

	host := cfg
	host.Schedule = stencil.HostOnly
	hostRes, err := stencil.Run(platform.HSWPlusKNC(0), core.ModeSim, host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %8.0f Mpt/s  (%v)\n", "HSW host baseline", hostRes.MPointsPerSec, hostRes.Seconds)

	for _, ranks := range []int{1, 4} {
		for _, sched := range []stencil.Schedule{stencil.SyncOffload, stencil.AsyncPipelined} {
			c := cfg
			c.Ranks = ranks
			c.Schedule = sched
			r, err := stencil.Run(platform.HSWPlusKNC(ranks), core.ModeSim, c)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %d rank(s), %-16v %8.0f Mpt/s  (%.2f× host)\n",
				ranks, sched, r.MPointsPerSec, hostRes.Seconds.Seconds()/r.Seconds.Seconds())
		}
	}
}
