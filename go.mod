module hstreams

go 1.22
