// Layering analysis (§III): the paper's contribution 3 is "a
// description of our approach to layering hStreams above other
// plumbing layers …, with minimal overheads". These tests and
// benchmarks move the same bytes through each layer of this
// implementation's real stack —
//
//	raw fabric DMA  →  COI buffer write  →  hStreams EnqueueXfer
//
// — and verify that each layer's addition stays small for large
// transfers, mirroring the paper's "<5 % overhead for transfers above
// 1 MB" observation about the real stack.
package hstreams_test

import (
	"testing"
	"time"

	"hstreams/internal/coi"
	"hstreams/internal/core"
	"hstreams/internal/fabric"
	"hstreams/internal/platform"
)

const layerBytes = 8 << 20

// fabricPath moves layerBytes via a raw SCIF-style DMA write.
func fabricPath(b testing.TB, iters int) time.Duration {
	f := fabric.New()
	host := f.AddNode("host")
	card := f.AddNode("card")
	if _, err := f.Connect(host, card, platform.PCIe()); err != nil {
		b.Fatal(err)
	}
	w := fabric.Register(card, layerBytes)
	src := make([]byte, layerBytes)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := w.DMAWrite(f, host, 0, src); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start)
}

// coiPath moves layerBytes through a COI buffer write.
func coiPath(b testing.TB, iters int) time.Duration {
	f := fabric.New()
	host := f.AddNode("host")
	card := f.AddNode("card")
	if _, err := f.Connect(host, card, platform.PCIe()); err != nil {
		b.Fatal(err)
	}
	p, err := coi.CreateProcess(f, host, card, coi.Options{PoolBuffers: true})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Destroy()
	buf, err := p.CreateBuffer(layerBytes)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]byte, layerBytes)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := buf.Write(0, src); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start)
}

// hstreamsPath moves layerBytes through a full hStreams transfer
// action (enqueue, dependence analysis, COI, fabric, completion).
func hstreamsPath(b testing.TB, iters int) time.Duration {
	rt, err := core.Init(core.Config{Machine: platform.HSWPlusKNC(1), Mode: core.ModeReal})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Fini()
	s, err := rt.StreamCreate(rt.Card(0), 0, 8)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := rt.Alloc1D("x", layerBytes)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		a, err := s.EnqueueXferAll(buf, core.ToSink)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestLayeringOverheadSmall asserts the §III property on this
// implementation: the hStreams layer's addition over the raw
// transport stays small for large transfers. Measurements are
// interleaved and the best-of-N taken per path so that ambient load
// on a shared machine (other test packages run in parallel) cannot
// skew one side.
func TestLayeringOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("moves hundreds of MB")
	}
	if raceEnabled {
		// Race instrumentation taxes the synchronization-heavy
		// hStreams path far more than the raw memcpy path, so the
		// wall-clock ratio below stops measuring layering overhead.
		t.Skip("wall-clock bound is not meaningful under the race detector")
	}
	const iters, rounds = 8, 5
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	var raw, viaCOI, viaHS time.Duration
	for r := 0; r < rounds; r++ {
		raw = best(raw, fabricPath(t, iters))
		viaCOI = best(viaCOI, coiPath(t, iters))
		viaHS = best(viaHS, hstreamsPath(t, iters))
	}
	t.Logf("8 MB ×%d best-of-%d: fabric %v, COI %v, hStreams %v", iters, rounds, raw, viaCOI, viaHS)
	// The paper's claim is <5% on dedicated hardware. Wall clock on a
	// shared CI box jitters by integer factors even best-of-N, so the
	// enforced bound is deliberately loose (2×) — the point is that
	// the stack adds per-action costs in the microseconds, not
	// another copy of the data; BenchmarkLayering reports the real
	// throughput decomposition.
	if float64(viaHS) > 2.0*float64(raw) {
		t.Errorf("hStreams layer overhead too high: %v vs raw %v", viaHS, raw)
	}
}

// BenchmarkLayering reports per-layer throughput for the same 8 MB
// transfer (the §III overhead decomposition).
func BenchmarkLayering(b *testing.B) {
	cases := []struct {
		name string
		run  func(testing.TB, int) time.Duration
	}{
		{"fabricDMA", fabricPath},
		{"coiBufferWrite", coiPath},
		{"hstreamsXfer", hstreamsPath},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			d := c.run(b, b.N)
			mbps := float64(layerBytes) * float64(b.N) / d.Seconds() / 1e6
			b.ReportMetric(mbps, "MB/s")
		})
	}
}
