// Acceptance tests for the continuous-telemetry layer: the sampler +
// exemplar capture + health engine (SLO rule pack and stall watchdog
// on the sampler tick) must fit inside the same 5% overhead budget
// the flight recorder already meets on the tier-1 matmul, and a
// sampled run must yield a fully-populated timeline.
package hstreams_test

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hstreams"
	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/health"
	"hstreams/internal/matmul"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/telemetry"
)

// telemetryOverheadResult is the BENCH_telemetry_overhead.json
// document.
type telemetryOverheadResult struct {
	Benchmark    string  `json:"benchmark"`
	TelemSec     float64 `json:"telemetry_sec"`
	BareSec      float64 `json:"bare_sec"`
	OverheadPct  float64 `json:"overhead_pct"`
	Samples      float64 `json:"samples"`
	RaceDetector bool    `json:"race_detector"`
}

// telemetryWall runs reps Sim-mode tier-1 matmuls and returns the
// minimum single-run wall time. The telemetry arm carries the full
// steady-state observation stack the CLIs ship — flight recorder,
// exemplar capture (on whenever tracing is), one sampler at the 100ms
// interval hsbench uses feeding a rolling store, and the health
// engine (full default SLO rule pack + stall watchdog + journal)
// ticking on the sampler cadence, started before the first rep and
// stopped after the last so every timed run executes under continuous
// sampling and evaluation; the bare arm runs with causal tracing
// disabled and no sampler. (Faster sampling is not free on a small
// host: each snapshot walks every registry series, so on a
// single-core box a 2ms interval alone eats ~10% of the CPU — the
// budget holds for the shipped configuration, and
// telemetry.DefInterval is coarser still.) samples accumulates how
// many sampler snapshots the telemetry arm took and ticks how often
// the health engine evaluated, so the result can prove both actually
// ran during the timed region. Both arms install a lifecycle-event
// hook; events counts what it saw, guarding the lazily-allocated
// resNote contract: a fault-free run must emit zero events, keeping
// the hot-path finish at a single nil check.
func telemetryWall(t *testing.T, telem bool, flight *hstreams.FlightRecorder, reps int, samples, ticks *float64, events *atomic.Int64) time.Duration {
	t.Helper()
	reg := metrics.New()
	var sam *telemetry.Sampler
	if telem {
		store := telemetry.NewStore(time.Minute, 256)
		journal := health.NewJournal(256, reg)
		engine := health.New(health.Options{
			Store:    store,
			Registry: reg,
			Journal:  journal,
		})
		sam = telemetry.NewSampler(telemetry.SamplerOptions{
			Registry: reg,
			Store:    store,
			Interval: 100 * time.Millisecond,
			OnSample: engine.Tick,
		})
		sam.Start()
	}
	onEvent := func(ev core.RuntimeEvent) {
		if events != nil {
			events.Add(1)
		}
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		// Both arms carry the recorder, exactly like matmulWall in
		// critpath_test.go, so the quotient isolates the observation
		// stack (causal trace + exemplars + sampler) rather than also
		// counting the recorder's attachment cost against it.
		a, err := app.Init(app.Options{
			Machine:            platform.HSWPlusKNC(2),
			Mode:               core.ModeSim,
			StreamsPerCard:     4,
			HostStreams:        3,
			Metrics:            reg,
			Flight:             flight,
			DisableCausalTrace: !telem,
			OnEvent:            onEvent,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := matmul.Run(a, matmul.Config{N: 19200, Tile: 2400, UseHost: true, LoadBalance: true}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		a.Fini()
	}
	if sam != nil {
		sam.Stop()
		for _, s := range reg.Snapshot() {
			switch s.Name {
			case "hstreams_telemetry_samples_total":
				if samples != nil {
					*samples += s.Value
				}
			case "hstreams_health_ticks_total":
				if ticks != nil {
					*ticks += s.Value
				}
			}
		}
	}
	return best
}

// telemetryOverheadSample is one interleaved measurement: per arm,
// each round yields min-of-reps, and the overhead estimate is the
// median of the per-round telem/bare ratios (see overheadSample in
// critpath_test.go for why per-round ratios rather than a quotient of
// per-arm medians: rounds run their two arms back-to-back, so the
// machine-speed drift this container exhibits cancels inside each
// ratio). The returned arm times are per-arm medians, for reporting.
func telemetryOverheadSample(t *testing.T, flight *hstreams.FlightRecorder, samples, ticks *float64, events *atomic.Int64) (telem, bare, overheadPct float64) {
	t.Helper()
	const rounds, reps = 24, 16
	telemMins := make([]float64, 0, rounds)
	bareMins := make([]float64, 0, rounds)
	measure := func(withTelem bool) {
		runtime.GC()
		d := telemetryWall(t, withTelem, flight, reps, samples, ticks, events)
		if withTelem {
			telemMins = append(telemMins, d.Seconds())
		} else {
			bareMins = append(bareMins, d.Seconds())
		}
	}
	for i := 0; i < rounds; i++ {
		first := i%2 == 0
		measure(first)
		measure(!first)
	}
	ratios := make([]float64, rounds)
	for i := range ratios {
		ratios[i] = telemMins[i] / bareMins[i]
	}
	return median(telemMins), median(bareMins), 100 * (median(ratios) - 1)
}

// TestTelemetryOverheadBudget measures the combined trace + telemetry
// stack against a bare run on the tier-1 matmul and asserts it stays
// under the 5% budget. Writes the committed artifact only when
// TELEM_BENCH_OUT names a file (make bench-telemetry), so a routine
// `go test ./...` can never clobber the baseline with a noisy sample;
// a single over-budget sample re-measures once, failing only on two
// independent over-budget measurements. Skipped under the race
// detector, whose instrumentation distorts both arms.
func TestTelemetryOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark; skipped in -short")
	}
	var samples, ticks float64
	var events atomic.Int64
	flight := hstreams.NewFlightRecorder(1 << 12)
	// Warm up both arms so first-run allocation noise hits neither.
	telemetryWall(t, true, flight, 1, nil, nil, nil)
	telemetryWall(t, false, flight, 1, nil, nil, nil)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	telem, bare, overhead := telemetryOverheadSample(t, flight, &samples, &ticks, &events)
	if overhead > 5 && !raceEnabled {
		t.Logf("overhead %.2f%% over budget; re-measuring once to reject background-load noise", overhead)
		samples, ticks = 0, 0
		telem, bare, overhead = telemetryOverheadSample(t, flight, &samples, &ticks, &events)
	}

	if samples == 0 {
		t.Fatal("telemetry arm took no sampler snapshots")
	}
	if ticks == 0 {
		t.Fatal("telemetry arm never ticked the health engine")
	}
	if n := events.Load(); n != 0 {
		t.Fatalf("fault-free runs emitted %d lifecycle events; the hot path must stay event-free", n)
	}
	res := telemetryOverheadResult{
		Benchmark:    "matmul Sim N=19200 tile=2400 HSW+2KNC, trace+exemplars+continuous 100ms sampler+health engine (default rule pack + watchdog on the sampler tick) vs untraced (overhead: median per-round ratio over 24 interleaved rounds of min-of-16 runs; arm times are per-arm medians)",
		TelemSec:     telem,
		BareSec:      bare,
		OverheadPct:  overhead,
		Samples:      samples,
		RaceDetector: raceEnabled,
	}
	if raceEnabled {
		t.Skip("race detector on; wall-clock bound not meaningful")
	}
	if out := os.Getenv("TELEM_BENCH_OUT"); out != "" {
		doc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("telemetry %.6fs, bare %.6fs, overhead %.2f%%, %.0f samples", telem, bare, overhead, samples)
	if overhead > 5 {
		t.Fatalf("telemetry overhead %.2f%% exceeds the 5%% budget in two independent measurements (telemetry %.6fs, bare %.6fs)",
			overhead, telem, bare)
	}
}

// TestTimelineSmoke runs one sampled tier-1 matmul and asserts the
// derived timeline is fully populated: counter rates, latency
// quantiles carrying flight-recorder exemplars, per-domain
// utilization with critical-path categories, and link views.
func TestTimelineSmoke(t *testing.T) {
	reg := metrics.New()
	st := telemetry.NewStore(time.Minute, 512)
	sam := telemetry.NewSampler(telemetry.SamplerOptions{Registry: reg, Store: st, Interval: time.Millisecond})
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(2),
		Mode:           core.ModeSim,
		StreamsPerCard: 4,
		HostStreams:    3,
		Metrics:        reg,
		Flight:         hstreams.NewFlightRecorder(1 << 14),
	})
	if err != nil {
		t.Fatal(err)
	}
	sam.Start()
	if _, err := matmul.Run(a, matmul.Config{N: 9600, Tile: 2400, UseHost: true, LoadBalance: true}); err != nil {
		t.Fatal(err)
	}
	sam.Stop()
	a.Fini()

	tl := hstreams.BuildTimeline(st, reg, 0)
	if tl.Samples == 0 {
		t.Fatal("sampled run retained no telemetry samples")
	}
	var sawActions bool
	for _, r := range tl.Rates {
		if r.Name == "hstreams_actions_total" {
			sawActions = true
		}
	}
	if !sawActions {
		t.Fatalf("no hstreams_actions_total rate in %d rate rows", len(tl.Rates))
	}
	var sawExemplar bool
	for _, l := range tl.Latencies {
		if l.Exemplar != nil && l.Exemplar.SpanID != 0 {
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Fatal("no latency view carries a flight-recorder exemplar")
	}
	if len(tl.Utilization) < 3 {
		t.Fatalf("got %d utilization rows, want host + 2 cards", len(tl.Utilization))
	}
	for _, u := range tl.Utilization {
		if u.Streams == 0 {
			t.Fatalf("domain %s reports zero streams", u.Domain)
		}
		if strings.HasPrefix(u.Domain, "KNC") && u.Categories["compute"] == 0 {
			t.Fatalf("card %s shows no compute busy time: %+v", u.Domain, u)
		}
	}
	if len(tl.Links) == 0 {
		t.Fatal("no link views despite card transfers")
	}
	out := tl.Format()
	for _, want := range []string{"rates:", "latency (windowed):", "utilization:", "links:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q section:\n%s", want, out)
		}
	}
}
