// Command codingtable regenerates the paper's Fig. 3 coding
// comparison from this repository's own code: the same tiled matrix
// multiply is implemented in every programming model's dialect
// (internal/matmul/variants.go), and this tool measures
//
//   - additional source code lines per offload phase (counted between
//     the //[model:phase] markers in the variant sources),
//   - unique APIs and total API calls (counted at run time by each
//     model's instrumentation), and
//   - achieved performance at the paper's 10 000² size on the
//     simulated platform.
//
// Usage: codingtable [-n 10000] [-tile 2000]
package main

import (
	"flag"
	"fmt"
	"log"

	"hstreams/internal/core"
	"hstreams/internal/matmul"
)

func main() {
	n := flag.Int("n", 10000, "matrix size for the performance row")
	tile := flag.Int("tile", 2000, "tile size")
	flag.Parse()

	models := []string{"hstreams", "cuda", "omp40", "omp40tiled", "omp45", "ompss", "opencl"}
	labels := map[string]string{
		"hstreams":   "hStreams",
		"cuda":       "CUDA",
		"omp40":      "OMP4.0",
		"omp40tiled": "OMP4.0t",
		"omp45":      "OMP4.5",
		"ompss":      "OmpSs",
		"opencl":     "OpenCL",
	}

	lines := matmul.PhaseLines()
	fmt.Printf("# additional source code lines (measured from variants.go markers)\n")
	fmt.Printf("%-20s", "phase")
	for _, m := range models {
		fmt.Printf("%9s", labels[m])
	}
	fmt.Println()
	for _, phase := range matmul.PhaseNames(lines) {
		fmt.Printf("%-20s", phase)
		for _, m := range models {
			fmt.Printf("%9d", lines[m][phase])
		}
		fmt.Println()
	}
	fmt.Printf("%-20s", "TOTAL")
	for _, m := range models {
		fmt.Printf("%9d", matmul.TotalLines(lines[m]))
	}
	fmt.Println()

	type row struct {
		res matmul.VariantResult
		err error
	}
	runs := map[string]row{}
	mode := core.ModeSim
	r := func(res matmul.VariantResult, err error) row { return row{res, err} }
	runs["hstreams"] = r(matmul.HStreamsVariant(mode, *n, *tile, 4, false))
	runs["cuda"] = r(matmul.CUDAVariant(mode, *n, *tile, 4, false))
	runs["omp40"] = r(matmul.OMP40UntiledVariant(mode, *n, false))
	runs["omp40tiled"] = r(matmul.OMP40TiledVariant(mode, *n, *tile, false))
	runs["omp45"] = r(matmul.OMP45TiledVariant(mode, *n, *tile, false))
	runs["ompss"] = r(matmul.OmpSsVariant(mode, *n, *tile, false))
	runs["opencl"] = r(matmul.OpenCLVariant(mode, *n, *tile, 4, false))
	for _, m := range models {
		if runs[m].err != nil {
			log.Fatalf("%s: %v", m, runs[m].err)
		}
	}

	fmt.Printf("\n# API usage and performance, %d² DP matmul on HSW+1KNC (Sim)\n", *n)
	fmt.Printf("%-20s", "metric")
	for _, m := range models {
		fmt.Printf("%9s", labels[m])
	}
	fmt.Println()
	fmt.Printf("%-20s", "unique APIs")
	for _, m := range models {
		fmt.Printf("%9d", runs[m].res.UniqueAPIs)
	}
	fmt.Println()
	fmt.Printf("%-20s", "API calls (dynamic)")
	for _, m := range models {
		fmt.Printf("%9d", runs[m].res.TotalAPIs)
	}
	fmt.Println()
	fmt.Printf("%-20s", "GFlop/s")
	for _, m := range models {
		fmt.Printf("%9.0f", runs[m].res.GFlops)
	}
	fmt.Println()
	fmt.Println("\npaper's Fig. 3 row (10K²): hStreams 916, OmpSs 762, OMP4.0 460 untiled / 180 tiled, OpenCL 35 GFl/s")
}
