// Command hsinfo enumerates the built-in simulated platforms and
// their domain properties — the discovery interface hStreams exposes
// to users (§II: "Domains are discoverable and enumerable to users.
// Each domain has a set of properties…").
//
// With -metrics, hsinfo additionally brings the runtime up in Sim
// mode on the selected machine, drives a small probe workload
// (transfer → compute → transfer on every card and the host), and
// dumps the live telemetry registry — a quick end-to-end check that
// the observability stack sees every layer.
//
// With -timeline, the same probe runs under a continuous telemetry
// sampler and the rolling-window views (rates, quantiles, utilization,
// queues, links) are rendered — the smallest end-to-end demo of the
// telemetry layer.
//
// With -health, the probe runs with the health engine riding the
// sampler and the combined verdict (SLO rules, stall watchdog, event
// journal) is rendered — the smallest end-to-end demo of the health
// layer.
//
// Usage: hsinfo [-machine HSW+2KNC] [-metrics json|prom] [-timeline] [-health]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/debugserver"
	"hstreams/internal/health"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/telemetry"
)

func machines() map[string]*platform.Machine {
	return map[string]*platform.Machine{
		"HSW":      platform.HSWPlusKNC(0),
		"HSW+1KNC": platform.HSWPlusKNC(1),
		"HSW+2KNC": platform.HSWPlusKNC(2),
		"IVB":      platform.IVBPlusKNC(0),
		"IVB+1KNC": platform.IVBPlusKNC(1),
		"IVB+2KNC": platform.IVBPlusKNC(2),
		"HSW+1K40": platform.HSWPlusK40(1),
	}
}

func main() {
	name := flag.String("machine", "", "show one machine (default: all)")
	metricsFmt := flag.String("metrics", "", "after enumeration, probe the machine in Sim mode and dump live telemetry: json or prom")
	timeline := flag.Bool("timeline", false, "after enumeration, probe the machine in Sim mode under the continuous sampler and render the rolling-window telemetry views")
	healthFlag := flag.Bool("health", false, "after enumeration, probe the machine in Sim mode with the health engine riding the sampler and render its verdict")
	debugAddr := flag.String("debug-addr", "", "serve live debug endpoints on this address while hsinfo runs (port 0 picks a free port)")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long before exiting (requires -debug-addr)")
	flag.Parse()

	if *debugAddr != "" {
		srv, err := debugserver.Start(*debugAddr, debugserver.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hsinfo: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug server listening on http://%s\n", srv.Addr())
		defer func() {
			if *debugLinger > 0 {
				fmt.Printf("lingering %v for debug clients\n", *debugLinger)
				time.Sleep(*debugLinger)
			}
		}()
	}

	ms := machines()
	probeMachine := "HSW+2KNC"
	if *name != "" {
		m, ok := ms[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown machine %q; known:", *name)
			for n := range ms {
				fmt.Fprintf(os.Stderr, " %s", n)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(1)
		}
		show(m)
		probeMachine = *name
	} else {
		for _, n := range []string{"HSW", "HSW+1KNC", "HSW+2KNC", "IVB", "IVB+1KNC", "IVB+2KNC", "HSW+1K40"} {
			show(ms[n])
			fmt.Println()
		}
	}

	if *metricsFmt != "" {
		if err := dumpMetrics(ms[probeMachine], *metricsFmt); err != nil {
			fmt.Fprintf(os.Stderr, "hsinfo: %v\n", err)
			os.Exit(1)
		}
	}
	if *timeline {
		if err := dumpTimeline(ms[probeMachine]); err != nil {
			fmt.Fprintf(os.Stderr, "hsinfo: %v\n", err)
			os.Exit(1)
		}
	}
	if *healthFlag {
		if err := dumpHealth(ms[probeMachine]); err != nil {
			fmt.Fprintf(os.Stderr, "hsinfo: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpHealth runs the probe workload with the full health stack over
// private instances — registry, store, journal, engine — so the
// rendered verdict is exactly the probe's: the health counterpart of
// dumpTimeline.
func dumpHealth(m *platform.Machine) error {
	reg := metrics.New()
	store := telemetry.NewStore(telemetry.DefWindow, telemetry.DefSlots)
	journal := health.NewJournal(health.DefJournalCap, reg)
	var rts []*core.Runtime
	engine := health.New(health.Options{
		Store:    store,
		Registry: reg,
		Journal:  journal,
		Runtimes: func() []*core.Runtime { return rts },
	})
	sampler := telemetry.NewSampler(telemetry.SamplerOptions{
		Registry: reg,
		Store:    store,
		Interval: 2 * time.Millisecond,
		OnSample: engine.Tick,
	})
	rt, err := core.Init(core.Config{Machine: m, Mode: core.ModeSim, Metrics: reg, OnEvent: journal.CoreEvent})
	if err != nil {
		return err
	}
	rts = append(rts, rt)
	sampler.Start()
	perr := probe(rt)
	rt.Fini()
	sampler.Stop()
	if perr != nil {
		return perr
	}
	engine.Tick(time.Now())
	fmt.Printf("health verdict after Sim probe of %s:\n", m)
	fmt.Print(engine.Report().Format())
	return nil
}

// dumpTimeline runs the probe workload under a private registry and a
// fast continuous sampler, then renders the derived rolling-window
// views — the telemetry counterpart of dumpMetrics.
func dumpTimeline(m *platform.Machine) error {
	reg := metrics.New()
	store := telemetry.NewStore(telemetry.DefWindow, telemetry.DefSlots)
	sampler := telemetry.NewSampler(telemetry.SamplerOptions{
		Registry: reg,
		Store:    store,
		Interval: 2 * time.Millisecond,
	})
	rt, err := core.Init(core.Config{Machine: m, Mode: core.ModeSim, Metrics: reg})
	if err != nil {
		return err
	}
	sampler.Start()
	perr := probe(rt)
	rt.Fini()
	sampler.Stop()
	if perr != nil {
		return perr
	}
	fmt.Printf("rolling-window telemetry after Sim probe of %s:\n", m)
	fmt.Print(telemetry.Build(store, reg, 0).Format())
	return nil
}

// dumpMetrics runs the probe workload on m under a private registry
// and writes the resulting telemetry to stdout.
func dumpMetrics(m *platform.Machine, format string) error {
	if format != "json" && format != "prom" {
		return fmt.Errorf("unknown -metrics format %q (want json or prom)", format)
	}
	reg := metrics.New()
	rt, err := core.Init(core.Config{Machine: m, Mode: core.ModeSim, Metrics: reg})
	if err != nil {
		return err
	}
	if err := probe(rt); err != nil {
		rt.Fini()
		return err
	}
	rt.Fini()
	fmt.Printf("live telemetry after Sim probe of %s:\n", m)
	if format == "json" {
		return reg.WriteJSON(os.Stdout)
	}
	return reg.WriteProm(os.Stdout)
}

// probe enqueues a transfer → compute → transfer chain on one stream
// per domain, exercising streams, the dependence tracker, the
// cost-model executor and (for cards) the modeled links.
func probe(rt *core.Runtime) error {
	const bufBytes = 4 << 20
	for _, d := range rt.Domains() {
		s, err := rt.StreamCreate(d, 0, d.Spec().Cores())
		if err != nil {
			return err
		}
		b, err := rt.Alloc1D(fmt.Sprintf("probe.%s", d.Spec().Name), bufBytes)
		if err != nil {
			return err
		}
		if _, err := s.EnqueueXferAll(b, core.ToSink); err != nil {
			return err
		}
		// A DGEMM-class task of modest tile size, so the efficiency
		// ramp yields a realistic rate rather than the model's floor.
		cost := platform.Cost{Kernel: platform.KDGEMM, Flops: 1e9, Bytes: bufBytes, N: 512}
		if _, err := s.EnqueueCompute("probe", nil, []core.Operand{b.All(core.InOut)}, cost); err != nil {
			return err
		}
		if _, err := s.EnqueueXferAll(b, core.ToSource); err != nil {
			return err
		}
	}
	rt.ThreadSynchronize()
	return rt.Err()
}

func show(m *platform.Machine) {
	fmt.Printf("%s\n", m)
	fmt.Printf("  %-8s %-5s %6s %8s %8s %9s %8s %8s\n",
		"domain", "kind", "cores", "thr/core", "GHz", "peak GF/s", "mem GB", "BW GB/s")
	for i, d := range m.Domains() {
		role := "host"
		if i > 0 {
			role = fmt.Sprintf("card%d", i-1)
		}
		_ = role
		fmt.Printf("  %-8s %-5s %6d %8d %8.2f %9.0f %8.0f %8.0f\n",
			d.Name, d.Kind, d.Cores(), d.ThreadsPerCore, d.ClockGHz, d.PeakGFlops(), d.MemGB, d.MemBWGBs)
	}
	if len(m.Cards) > 0 {
		l := m.Link
		fmt.Printf("  link: %s, %.1f GB/s per direction, %v small-transfer overhead (<%d KB)\n",
			l.Name, l.BWGBs, l.SmallOverhead, l.SmallLimit>>10)
	}
}
