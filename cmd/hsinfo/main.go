// Command hsinfo enumerates the built-in simulated platforms and
// their domain properties — the discovery interface hStreams exposes
// to users (§II: "Domains are discoverable and enumerable to users.
// Each domain has a set of properties…").
//
// Usage: hsinfo [-machine HSW+2KNC]
package main

import (
	"flag"
	"fmt"
	"os"

	"hstreams/internal/platform"
)

func machines() map[string]*platform.Machine {
	return map[string]*platform.Machine{
		"HSW":      platform.HSWPlusKNC(0),
		"HSW+1KNC": platform.HSWPlusKNC(1),
		"HSW+2KNC": platform.HSWPlusKNC(2),
		"IVB":      platform.IVBPlusKNC(0),
		"IVB+1KNC": platform.IVBPlusKNC(1),
		"IVB+2KNC": platform.IVBPlusKNC(2),
		"HSW+1K40": platform.HSWPlusK40(1),
	}
}

func main() {
	name := flag.String("machine", "", "show one machine (default: all)")
	flag.Parse()

	ms := machines()
	if *name != "" {
		m, ok := ms[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown machine %q; known:", *name)
			for n := range ms {
				fmt.Fprintf(os.Stderr, " %s", n)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(1)
		}
		show(m)
		return
	}
	for _, n := range []string{"HSW", "HSW+1KNC", "HSW+2KNC", "IVB", "IVB+1KNC", "IVB+2KNC", "HSW+1K40"} {
		show(ms[n])
		fmt.Println()
	}
}

func show(m *platform.Machine) {
	fmt.Printf("%s\n", m)
	fmt.Printf("  %-8s %-5s %6s %8s %8s %9s %8s %8s\n",
		"domain", "kind", "cores", "thr/core", "GHz", "peak GF/s", "mem GB", "BW GB/s")
	for i, d := range m.Domains() {
		role := "host"
		if i > 0 {
			role = fmt.Sprintf("card%d", i-1)
		}
		_ = role
		fmt.Printf("  %-8s %-5s %6d %8d %8.2f %9.0f %8.0f %8.0f\n",
			d.Name, d.Kind, d.Cores(), d.ThreadsPerCore, d.ClockGHz, d.PeakGFlops(), d.MemGB, d.MemBWGBs)
	}
	if len(m.Cards) > 0 {
		l := m.Link
		fmt.Printf("  link: %s, %.1f GB/s per direction, %v small-transfer overhead (<%d KB)\n",
			l.Name, l.BWGBs, l.SmallOverhead, l.SmallLimit>>10)
	}
}
