// Command hsbench regenerates every table and figure of the paper's
// evaluation on the simulated platform. Each figure is a subcommand
// of the -fig flag:
//
//	hsbench -fig 3         Fig. 3 pointer (see cmd/codingtable)
//	hsbench -fig 6         matmul GFlop/s vs size, 8 configurations
//	hsbench -fig 7         Cholesky GFlop/s vs size, 9 implementations
//	hsbench -fig 8         Abaqus speedups, 8 workloads × {IVB, HSW}
//	hsbench -fig 9         standalone supernode runtimes
//	hsbench -fig overhead  §III transfer-overhead bands
//	hsbench -fig ompss     OmpSs backend comparison (hStreams vs CUDA)
//	hsbench -fig rtm       §VI RTM schedules and rank scaling
//	hsbench -fig tuning    §VI tiling/stream sweeps + design ablations
//	hsbench -fig lu        §VI LU (DGETRF) claims + Simulia streaming comparison
//	hsbench -fig all       everything
//
// The extra "chaos" figure (not part of -fig all) runs the Real-mode
// hetero matmul under the deterministic fault injector and verifies
// the result bit-for-bit against the reference product — the
// resilience layer's end-to-end gate (see OPERATIONS.md and `make
// chaos-smoke`). Tune it with -faults, -fault-seed, -retry,
// -retry-backoff, -deadline and -breaker.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hstreams/internal/app"
	"hstreams/internal/chol"
	"hstreams/internal/core"
	"hstreams/internal/debugserver"
	"hstreams/internal/fault"
	"hstreams/internal/health"
	"hstreams/internal/lu"
	"hstreams/internal/magma"
	"hstreams/internal/matmul"
	"hstreams/internal/metrics"
	"hstreams/internal/mklao"
	"hstreams/internal/platform"
	"hstreams/internal/solver"
	"hstreams/internal/stencil"
	"hstreams/internal/telemetry"
	"hstreams/internal/trace"
	"hstreams/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 6, 7, 8, 9, overhead, ompss, rtm, tuning, lu, all, chaos")
	metricsFile := flag.String("metrics", "", "write accumulated runtime telemetry to this file in Prometheus text format ('-' for stdout)")
	debugAddr := flag.String("debug-addr", "", "serve live debug endpoints (/metrics, /debug/pprof, /debug/trace, /debug/streams, /debug/critpath, /debug/timeline, /debug/health, /debug/events) on this address, e.g. 127.0.0.1:6060 (port 0 picks a free port)")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long after the figures finish (requires -debug-addr)")
	critpath := flag.Bool("critpath", false, "print the critical-path report of the last schedule after the figures finish")
	traceFile := flag.String("trace", "", "write the flight recorder's retained spans as Chrome trace JSON to this file (load in Perfetto for dependency arrows)")
	timeline := flag.Bool("timeline", false, "sample the registry continuously and print the rolling-window telemetry views (rates, quantiles, utilization, queues, links) after the figures finish")
	healthFlag := flag.Bool("health", false, "run the health engine (stall watchdog, SLO rule pack, event journal) on the sampler cadence and print its report after the figures finish")
	checkpointFile := flag.String("checkpoint", "", "serialize the last schedule's DAG (spans, dep edges, costs, config) to this versioned file for later -replay")
	replayFile := flag.String("replay", "", "re-execute a checkpointed DAG in Sim mode, assert it is edge-for-edge identical and deterministic, print its critical path, and exit")
	flag.Float64Var(&chaosOpts.prob, "faults", 0, "fault-injection probability for transfer and kernel faults in the chaos figure (0 uses its default)")
	flag.Uint64Var(&chaosOpts.seed, "fault-seed", 1, "seed for the deterministic fault injector (chaos figure)")
	flag.IntVar(&chaosOpts.retry, "retry", 0, "max re-attempts per transiently failing action in the chaos figure (0 uses its default)")
	flag.DurationVar(&chaosOpts.backoff, "retry-backoff", 100*time.Microsecond, "base exponential backoff between re-attempts (chaos figure)")
	flag.DurationVar(&chaosOpts.deadline, "deadline", 0, "per-action deadline across attempts in the chaos figure (0 disables)")
	flag.IntVar(&chaosOpts.breaker, "breaker", 0, "consecutive transient failures that quarantine a domain in the chaos figure (0 disables the breaker)")
	var load loadOptions
	flag.StringVar(&load.url, "load-url", "", "serving load-generator mode: drive the hsserve instance at this base URL (e.g. http://127.0.0.1:8080), print a throughput summary, and exit")
	flag.StringVar(&load.tenant, "load-tenant", "bench", "tenant to register and drive in load mode")
	flag.IntVar(&load.weight, "load-weight", 1, "fair-share weight for the load-mode tenant")
	flag.DurationVar(&load.duration, "load-duration", 3*time.Second, "how long load mode keeps submitting")
	flag.IntVar(&load.concurrency, "load-concurrency", 8, "closed-loop load-mode workers (each keeps one waited submission outstanding)")
	flag.DurationVar(&load.cost, "load-cost", 2*time.Millisecond, "per-action service time load mode requests from the spin kernel")
	flag.Parse()

	if *replayFile != "" {
		runReplay(*replayFile)
		return
	}
	if load.url != "" {
		runLoad(load)
		return
	}

	// The health engine rides the sampler: its journal captures every
	// runtime's lifecycle events via the process-wide hook, and the
	// sampler's OnSample drives rule evaluation and the watchdog on the
	// sampling cadence.
	var engine *health.Engine
	if *healthFlag || *debugAddr != "" {
		engine = health.New(health.Options{})
		core.SetDefaultEventHook(engine.Journal().CoreEvent)
	}

	// The sampler feeds the process-wide telemetry store; it runs
	// whenever something will read it — the -timeline or -health
	// rendering, or the debug server's /debug/timeline and
	// /debug/health endpoints.
	var sampler *telemetry.Sampler
	if *timeline || *healthFlag || *debugAddr != "" {
		opts := telemetry.SamplerOptions{Interval: 100 * time.Millisecond}
		if engine != nil {
			opts.OnSample = engine.Tick
		}
		sampler = telemetry.NewSampler(opts)
		sampler.Start()
	}

	if *debugAddr != "" {
		srv, err := debugserver.Start(*debugAddr, debugserver.Options{Health: engine})
		check(err)
		defer srv.Close()
		fmt.Printf("debug server listening on http://%s\n", srv.Addr())
	}

	runs := map[string]func(){
		"3":        fig3,
		"6":        fig6,
		"7":        fig7,
		"8":        fig8,
		"9":        fig9,
		"overhead": overhead,
		"ompss":    ompssCompare,
		"rtm":      rtm,
		"tuning":   tuning,
		"lu":       luClaims,
		"chaos":    chaos,
	}
	if *fig == "all" {
		for _, k := range []string{"3", "6", "7", "8", "9", "overhead", "ompss", "rtm", "tuning", "lu"} {
			runs[k]()
			fmt.Println()
		}
	} else {
		f, ok := runs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(1)
		}
		f()
	}
	telemetrySummary()
	if sampler != nil {
		sampler.Stop() // takes the final end-of-run sample
	}
	if *timeline {
		fmt.Print(telemetry.Build(sampler.Store(), metrics.Default(), 0).Format())
	}
	if *healthFlag {
		engine.Tick(time.Now()) // final verdict over the end-of-run window
		fmt.Print(engine.Report().Format())
	}
	if *checkpointFile != "" {
		check(writeCheckpoint(*checkpointFile))
	}
	if *metricsFile != "" {
		check(writeMetrics(*metricsFile))
	}
	if *critpath {
		rep := trace.Analyze(trace.LatestRun(trace.DefaultFlight().Snapshot()))
		fmt.Print(rep.Format())
	}
	if *traceFile != "" {
		check(writeChromeTrace(*traceFile))
	}
	if *debugAddr != "" && *debugLinger > 0 {
		fmt.Printf("lingering %v for debug clients\n", *debugLinger)
		time.Sleep(*debugLinger)
	}
}

// telemetrySummary prints a one-line digest of the process-wide
// registry every runtime reported into, so bench trajectory files
// capture the telemetry alongside the figures.
func telemetrySummary() {
	reg := metrics.Default()
	actions := reg.Total("hstreams_actions_total")
	stall := reg.Total("hstreams_dep_stall_seconds_sum")
	bytes := reg.Total("hstreams_link_bytes_total")
	hits := reg.Total("hstreams_coi_pool_hits_total")
	misses := reg.Total("hstreams_coi_pool_misses_total")
	poolRate := "n/a"
	if hits+misses > 0 {
		poolRate = fmt.Sprintf("%.1f%%", 100*hits/(hits+misses))
	}
	fmt.Printf("telemetry: actions=%.0f dep-stall=%.3fs link-bytes=%.0f pool-hit=%s errors=%.0f\n",
		actions, stall, bytes, poolRate, reg.Total("hstreams_action_errors_total"))
}

// writeMetrics dumps the process-wide registry in Prometheus text
// format.
func writeMetrics(path string) error {
	if path == "-" {
		return metrics.Default().WriteProm(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.Default().WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeChromeTrace dumps the process-wide flight recorder as Chrome
// trace JSON with flow (dependency) arrows.
func writeChromeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeSpans(f, trace.DefaultFlight().Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCheckpoint serializes the latest run's DAG from the
// process-wide flight recorder to a versioned checkpoint file.
func writeCheckpoint(path string) error {
	latest := trace.LatestRun(trace.DefaultFlight().Snapshot())
	if len(latest) == 0 {
		return fmt.Errorf("checkpoint: flight recorder holds no spans")
	}
	c, err := core.CheckpointRun(trace.DefaultFlight(), latest[0].Run)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("checkpoint: run %d, %d streams, %d actions → %s\n",
		c.Run, len(c.Streams), len(c.Actions), path)
	return nil
}

// runReplay loads a checkpoint, replays it twice in Sim mode, asserts
// the replays are deterministic (identical makespan and critical-path
// category sums), and prints the first replay's critical-path report.
// The per-replay edge-for-edge DAG identity check lives inside
// Checkpoint.Replay. Exits nonzero on any mismatch.
func runReplay(path string) {
	f, err := os.Open(path)
	check(err)
	c, err := core.DecodeCheckpoint(f)
	f.Close()
	check(err)
	r1, err := c.Replay()
	check(err)
	r2, err := c.Replay()
	check(err)
	if r1.Makespan != r2.Makespan || r1.Report.CategorySum() != r2.Report.CategorySum() {
		log.Fatalf("replay nondeterministic: makespan %v vs %v, category sum %v vs %v",
			r1.Makespan, r2.Makespan, r1.Report.CategorySum(), r2.Report.CategorySum())
	}
	fmt.Printf("replay: %s run %d (%s mode originally), %d actions, makespan %v — DAG edge-for-edge identical, deterministic across 2 replays\n",
		path, c.Run, c.Mode, r1.Actions, r1.Makespan)
	fmt.Print(r1.Report.Format())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func fig3() {
	fmt.Println("== Fig. 3: coding comparison — run `go run ./cmd/codingtable` for the full table ==")
	hs, err := matmul.HStreamsVariant(core.ModeSim, 10000, 2000, 4, false)
	check(err)
	om, err := matmul.OmpSsVariant(core.ModeSim, 10000, 2000, false)
	check(err)
	u40, err := matmul.OMP40UntiledVariant(core.ModeSim, 10000, false)
	check(err)
	t40, err := matmul.OMP40TiledVariant(core.ModeSim, 10000, 2000, false)
	check(err)
	cl, err := matmul.OpenCLVariant(core.ModeSim, 10000, 2000, 4, false)
	check(err)
	fmt.Printf("GFl/s (10K)²: hStreams %.0f (paper 916), OmpSs %.0f (762), OMP4.0 %.0f/%.0f (460/180), OpenCL %.0f (35)\n",
		hs.GFlops, om.GFlops, u40.GFlops, t40.GFlops, cl.GFlops)
}

func newSimApp(m *platform.Machine, hostStreams int) *app.App {
	a, err := app.Init(app.Options{
		Machine:        m,
		Mode:           core.ModeSim,
		StreamsPerCard: 4,
		HostStreams:    hostStreams,
	})
	check(err)
	return a
}

// matmulTile picks the sweep tile for a size.
func matmulTile(n int) int {
	for _, t := range []int{2400, 2000, 1600, 1200, 800} {
		if n%t == 0 && n/t >= 4 {
			return t
		}
	}
	return n / 4
}

func fig6() {
	fmt.Println("== Fig. 6: hetero matmul GFlop/s vs matrix size ==")
	sizes := []int{4800, 9600, 14400, 19200, 24000, 28800}
	type cfg struct {
		label   string
		machine func() *platform.Machine
		host    bool
		balance bool
	}
	cases := []cfg{
		{"HSW+2KNC", func() *platform.Machine { return platform.HSWPlusKNC(2) }, true, true},
		{"HSW+1KNC", func() *platform.Machine { return platform.HSWPlusKNC(1) }, true, true},
		{"1KNC(offl)", func() *platform.Machine { return platform.HSWPlusKNC(1) }, false, false},
		{"HSWnative", func() *platform.Machine { return platform.HSWPlusKNC(0) }, true, true},
		{"IVB+2KNC bal", func() *platform.Machine { return platform.IVBPlusKNC(2) }, true, true},
		{"IVB+2KNC nobal", func() *platform.Machine { return platform.IVBPlusKNC(2) }, true, false},
		{"IVB+1KNC bal", func() *platform.Machine { return platform.IVBPlusKNC(1) }, true, true},
		{"IVBnative", func() *platform.Machine { return platform.IVBPlusKNC(0) }, true, true},
	}
	fmt.Printf("%-16s", "config")
	for _, n := range sizes {
		fmt.Printf("%9d", n)
	}
	fmt.Println()
	for _, c := range cases {
		fmt.Printf("%-16s", c.label)
		for _, n := range sizes {
			hostStreams := 0
			if c.host {
				hostStreams = 3
			}
			a := newSimApp(c.machine(), hostStreams)
			res, err := matmul.Run(a, matmul.Config{
				N: n, Tile: matmulTile(n), UseHost: c.host, LoadBalance: c.balance,
			})
			a.Fini()
			check(err)
			fmt.Printf("%9.0f", res.GFlops)
		}
		fmt.Println()
	}
	fmt.Println("paper endpoints (28800): 2599, 1622, 982, 902, 1878, 1192, 1165, 475")
}

func cholTile(n int) int {
	for _, t := range []int{2400, 2000, 1600, 1200, 800, 600} {
		if n%t == 0 && n/t >= 5 {
			return t
		}
	}
	return n / 5
}

func fig7() {
	fmt.Println("== Fig. 7: Cholesky GFlop/s vs matrix size ==")
	sizes := []int{4800, 9600, 14400, 19200, 24000, 28800}
	rows := []struct {
		label string
		run   func(n int) float64
	}{
		{"hStr HSW+2KNC", func(n int) float64 {
			r, err := chol.RunBestHetero(func() *platform.Machine { return platform.HSWPlusKNC(2) }, core.ModeSim, n, cholTile(n), 4)
			check(err)
			return r.GFlops
		}},
		{"MKLAO HSW+2KNC", func(n int) float64 {
			r, err := mklao.Dpotrf(platform.HSWPlusKNC(2), core.ModeSim, n, false, 0)
			check(err)
			return r.GFlops
		}},
		{"Magma HSW+2KNC", func(n int) float64 {
			r, err := magma.Dpotrf(platform.HSWPlusKNC(2), core.ModeSim, n, false, 0)
			check(err)
			return r.GFlops
		}},
		{"hStr HSW+1KNC", func(n int) float64 {
			r, err := chol.RunBestHetero(func() *platform.Machine { return platform.HSWPlusKNC(1) }, core.ModeSim, n, cholTile(n), 4)
			check(err)
			return r.GFlops
		}},
		{"MKLAO HSW+1KNC", func(n int) float64 {
			r, err := mklao.Dpotrf(platform.HSWPlusKNC(1), core.ModeSim, n, false, 0)
			check(err)
			return r.GFlops
		}},
		{"Magma HSW+1KNC", func(n int) float64 {
			r, err := magma.Dpotrf(platform.HSWPlusKNC(1), core.ModeSim, n, false, 0)
			check(err)
			return r.GFlops
		}},
		{"OmpSs HSW+1KNC", func(n int) float64 {
			r, err := chol.RunOmpSs(platform.HSWPlusKNC(1), core.ModeSim, n, cholTile(n), false, 0)
			check(err)
			return r.GFlops
		}},
		{"hStr 1KNC offl", func(n int) float64 {
			a := newSimApp(platform.HSWPlusKNC(1), 0)
			defer a.Fini()
			r, err := chol.Run(a, chol.Config{N: n, Tile: cholTile(n), Panel: chol.PanelCard})
			check(err)
			return r.GFlops
		}},
		{"HSW native", func(n int) float64 {
			r, err := chol.RunNative(platform.HSWPlusKNC(0), core.ModeSim, n, 0)
			check(err)
			return r.GFlops
		}},
	}
	fmt.Printf("%-16s", "impl")
	for _, n := range sizes {
		fmt.Printf("%9d", n)
	}
	fmt.Println()
	for _, row := range rows {
		fmt.Printf("%-16s", row.label)
		for _, n := range sizes {
			fmt.Printf("%9.0f", row.run(n))
		}
		fmt.Println()
	}
	fmt.Println("paper endpoints (~32000): 1971, 1743, 1637, 1373, 1356, 1015, 949, 774, 733")
}

func fig8() {
	fmt.Println("== Fig. 8: Abaqus speedups from adding 2 KNC cards ==")
	for _, pc := range []struct {
		name string
		m    *platform.Machine
	}{
		{"IVB", platform.IVBPlusKNC(2)},
		{"HSW", platform.HSWPlusKNC(2)},
	} {
		fmt.Printf("%s host:\n", pc.name)
		for _, w := range workload.AbaqusSuite() {
			sp, err := solver.Fig8Speedup(pc.m, core.ModeSim, w)
			check(err)
			tag := "sym  "
			if w.Unsymmetric {
				tag = "unsym"
			}
			fmt.Printf("  %-4s %s  solver %.2fx  app %.2fx\n", w.Name, tag, sp.Solver, sp.App)
		}
	}
	fmt.Println("paper maxima: IVB 2.61x solver / 1.99x app; HSW 1.45x / 1.22x")
}

func fig9() {
	fmt.Println("== Fig. 9: standalone supernode factorization runtimes ==")
	for _, c := range solver.Fig9Cases() {
		r, err := solver.Factor(c.Mach, core.ModeSim, solver.Fig9N, solver.Fig9Tile, c.Target, false, 0)
		check(err)
		fmt.Printf("  %-22s %6.2f s\n", c.Label, r.Seconds.Seconds())
	}
	fmt.Println("paper: KNC offload 2.35 s, HSW host-as-target 2.24 s, IVB host-as-target 4.27 s")
}

func overhead() {
	fmt.Println("== §III overheads ==")
	l := platform.PCIe()
	fmt.Println("transfer setup overhead vs size (paper: 20-30us under 128KB, <5% at 1MB and up):")
	for _, sz := range []int64{4 << 10, 32 << 10, 128 << 10, 512 << 10, 1 << 20, 8 << 20, 64 << 20} {
		fmt.Printf("  %8d KB: setup %8v, total %10v, overhead %5.1f%%\n",
			sz>>10, l.Setup(sz), l.TransferTime(sz), 100*l.Overhead(sz))
	}
	fmt.Println("OmpSs-over-hStreams overhead (paper: 15-50% at n=4800-10000, converging):")
	for _, n := range []int{4800, 7200, 9600, 14400, 24000} {
		// Small problems run with small tiles (the regime where
		// fully dynamic task handling hurts).
		tile := n / 8
		if tile > 2400 {
			tile = 2400
		}
		a := newSimApp(platform.HSWPlusKNC(1), 0)
		plain, err := chol.Run(a, chol.Config{N: n, Tile: tile, Panel: chol.PanelCard})
		a.Fini()
		check(err)
		om, err := chol.RunOmpSs(platform.HSWPlusKNC(1), core.ModeSim, n, tile, false, 0)
		check(err)
		fmt.Printf("  n=%6d: hStreams %8v, OmpSs %8v, overhead %5.1f%%\n",
			n, plain.Seconds, om.Seconds, 100*(om.Seconds.Seconds()/plain.Seconds.Seconds()-1))
	}
}

func ompssCompare() {
	fmt.Println("== §IV: OmpSs over hStreams vs over CUDA Streams (4Kx4K, 2x2 tiles) ==")
	hs, cu, ratio, err := matmul.OmpSsBackendComparison(core.ModeSim)
	check(err)
	fmt.Printf("  hStreams backend: %v\n  CUDA backend:     %v\n  hStreams is %.2fx faster (paper: 1.45x)\n", hs, cu, ratio)
}

func rtm() {
	fmt.Println("== §VI: Petrobras RTM ==")
	cfg := stencil.Config{NX: 1024, NY: 1024, NZ: 4096, Steps: 10}
	host := cfg
	host.Schedule = stencil.HostOnly
	hostRes, err := stencil.Run(platform.HSWPlusKNC(0), core.ModeSim, host)
	check(err)
	fmt.Printf("  %-30s %8.0f Mpt/s\n", "HSW host baseline", hostRes.MPointsPerSec)
	for _, ranks := range []int{1, 2, 4} {
		for _, sched := range []stencil.Schedule{stencil.SyncOffload, stencil.AsyncPipelined} {
			c := cfg
			c.Ranks = ranks
			c.Schedule = sched
			r, err := stencil.Run(platform.HSWPlusKNC(ranks), core.ModeSim, c)
			check(err)
			fmt.Printf("  %d rank(s) %-20v %8.0f Mpt/s  (%.2fx host)\n",
				ranks, sched, r.MPointsPerSec, hostRes.Seconds.Seconds()/r.Seconds.Seconds())
		}
	}
	fmt.Println("paper: 1.52x for 1 card, 6.02x for 4 ranks; async pipelining buys 3-10%")
}

// tuning regenerates the §VI "Within a Node: Tiling, Concurrency,
// Balancing" exploration: tile-size and stream-count sweeps for the
// offload Cholesky and matmul, plus the ablations this design's
// choices rest on (FIFO-semantic pipelining, async allocation).
func tuning() {
	fmt.Println("== §VI: tiling / streams tuning and design ablations ==")
	fmt.Println("Cholesky (1 KNC offload), GFlop/s by tile size:")
	for _, n := range []int{4800, 24000} {
		fmt.Printf("  n=%d:", n)
		for _, tile := range []int{300, 600, 1200, 2400} {
			if n%tile != 0 || n/tile < 4 {
				continue
			}
			a := newSimApp(platform.HSWPlusKNC(1), 0)
			r, err := chol.Run(a, chol.Config{N: n, Tile: tile, Panel: chol.PanelCard})
			a.Fini()
			check(err)
			fmt.Printf("  tile %4d → %4.0f", tile, r.GFlops)
		}
		fmt.Println()
	}
	fmt.Println("matmul (1 KNC offload, n=19200), GFlop/s by stream count:")
	for _, streams := range []int{1, 2, 4, 8} {
		a, err := app.Init(app.Options{Machine: platform.HSWPlusKNC(1), Mode: core.ModeSim, StreamsPerCard: streams})
		check(err)
		r, err := matmul.Run(a, matmul.Config{N: 19200, Tile: 2400})
		a.Fini()
		check(err)
		fmt.Printf("  %d stream(s) → %4.0f\n", streams, r.GFlops)
	}
	fmt.Println("ablation: FIFO-semantic pipelining (hetero Cholesky, n=24000, HSW+2KNC):")
	for _, bulk := range []bool{false, true} {
		a := newSimApp(platform.HSWPlusKNC(2), 4)
		r, err := chol.Run(a, chol.Config{N: 24000, Tile: 2400, UseHost: true, Panel: chol.PanelHost, BulkSync: bulk})
		a.Fini()
		check(err)
		label := "pipelined (out-of-order)"
		if bulk {
			label = "bulk-synchronous passes"
		}
		fmt.Printf("  %-26s %4.0f GFlop/s\n", label, r.GFlops)
	}
	fmt.Println("ablation: asynchronous sink allocation (§VII's forthcoming feature, 64 buffers on 2 cards):")
	for _, async := range []bool{false, true} {
		rt, err := core.Init(core.Config{Machine: platform.HSWPlusKNC(2), Mode: core.ModeSim, AsyncAlloc: async})
		check(err)
		s, err := rt.StreamCreate(rt.Card(0), 0, 61)
		check(err)
		var last *core.Action
		for i := 0; i < 64; i++ {
			b, err := rt.Alloc1D("b", 1<<20)
			check(err)
			last, err = s.EnqueueXferAll(b, core.ToSink)
			check(err)
		}
		check(last.Wait())
		rt.ThreadSynchronize()
		label := "synchronous (paper's state)"
		if async {
			label = "asynchronous (implemented)"
		}
		fmt.Printf("  %-28s makespan %v\n", label, rt.Trace().Makespan())
		rt.Fini()
	}
}

// chaosOpts carries the chaos figure's flag values.
var chaosOpts struct {
	prob     float64
	seed     uint64
	retry    int
	backoff  time.Duration
	deadline time.Duration
	breaker  int
}

// chaos runs the Real-mode hetero matmul with the deterministic fault
// injector installed and verifies the result against the reference
// product — proving the resilience layer delivers correct answers
// under transfer/kernel faults, not just that it retries. A private
// metrics registry isolates this run's counters so the printed line is
// exactly the chaos run's accounting. Exits nonzero on any failure.
func chaos() {
	prob := chaosOpts.prob
	if prob <= 0 {
		prob = 0.05
	}
	retry := chaosOpts.retry
	if retry <= 0 {
		retry = 8
	}
	plan := fault.Plan{
		Seed:          chaosOpts.seed,
		TransferError: prob,
		KernelError:   prob,
		SlowLink:      prob,
		SlowLatency:   50 * time.Microsecond,
	}
	fmt.Printf("== chaos: Real-mode hetero matmul under faults (p=%.3f seed=%d retry=%d deadline=%v breaker=%d) ==\n",
		prob, plan.Seed, retry, chaosOpts.deadline, chaosOpts.breaker)
	reg := metrics.New()
	inj := fault.NewInjector(plan, reg)
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeReal,
		StreamsPerCard: 2,
		HostStreams:    2,
		Metrics:        reg,
		Faults:         inj,
		Retry: core.RetryPolicy{
			Max: retry, Backoff: chaosOpts.backoff, BackoffMax: 50 * chaosOpts.backoff,
			Jitter: 0.5, Seed: plan.Seed,
		},
		Deadline: chaosOpts.deadline,
		Breaker:  core.BreakerPolicy{Threshold: chaosOpts.breaker},
	})
	check(err)
	matmul.RegisterExtra(a.RT)
	res, err := matmul.Run(a, matmul.Config{N: 96, Tile: 12, UseHost: true, LoadBalance: true, Verify: true})
	a.Fini()
	verify := "ok"
	if err != nil {
		verify = fmt.Sprintf("FAILED (%v)", err)
	}
	fmt.Printf("chaos: verify=%s retries=%.0f deadline-exceeded=%.0f faults-injected=%.0f reroutes=%.0f quarantines=%.0f gflops=%.1f\n",
		verify,
		reg.Total("hstreams_retries_total"),
		reg.Total("hstreams_deadline_exceeded_total"),
		reg.Total("hstreams_faults_injected_total"),
		reg.Total("hstreams_rerouted_total"),
		reg.Total("hstreams_breaker_trips_total"),
		res.GFlops)
	if err != nil {
		os.Exit(1)
	}
}

// luClaims regenerates §VI's LU observations and the Simulia
// hStreams-vs-CUDA-Streams normalization experiment.
func luClaims() {
	fmt.Println("== §VI: LU (DGETRF) and the Simulia streaming comparison ==")
	hostN, err := lu.RunNative(platform.HSWPlusKNC(1), core.ModeSim, 8000, -1, 0)
	check(err)
	cardN, err := lu.RunNative(platform.HSWPlusKNC(1), core.ModeSim, 8000, 0, 0)
	check(err)
	fmt.Printf("untiled DGETRF n=8000: host %.0f GF/s vs coprocessor %.0f GF/s (paper: host wins)\n",
		hostN.GFlops, cardN.GFlops)
	for _, n := range []int{3000, 8000, 16000} {
		tile := n / 5
		if n >= 8000 {
			tile = 2000
		}
		a, err := app.Init(app.Options{Machine: platform.HSWPlusKNC(1), Mode: core.ModeSim, StreamsPerCard: 4, HostStreams: 3})
		check(err)
		tl, err := lu.RunTiled(a, lu.Config{N: n, Tile: tile, UseHost: true, PanelOnHost: true})
		a.Fini()
		check(err)
		nat, err := lu.RunNative(platform.HSWPlusKNC(1), core.ModeSim, n, -1, 0)
		check(err)
		fmt.Printf("  n=%6d: untiled host %4.0f GF/s, tiled hetero %4.0f GF/s\n", n, nat.GFlops, tl.GFlops)
	}
	fmt.Println("Simulia streaming comparison (supernode LDLT; paper: raw K40x 1.12-1.27x, normalized KNC 1.03-1.28x):")
	for _, n := range []int{9600, 13200} {
		cmp, err := solver.CompareStreaming(core.ModeSim, n, n/8)
		check(err)
		fmt.Printf("  n=%6d: hStreams/KNC %8v, CUDA/K40x %8v, raw K40x advantage %.2fx, normalized KNC advantage %.2fx\n",
			n, cmp.HStreamsSeconds, cmp.CUDASeconds, cmp.RawK40Advantage, cmp.NormalizedKNCAdvantage)
	}
}
