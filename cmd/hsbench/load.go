package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// loadOptions carries the -load-* flag set: hsbench's serving
// load-generator mode, which drives one tenant of a running hsserve
// with closed-loop workers (each worker keeps exactly one waited
// submission outstanding). Two concurrent hsbench load runs against
// one hsserve are the serve-smoke fairness experiment.
type loadOptions struct {
	url         string        // hsserve base URL; non-empty enables load mode
	tenant      string        // tenant to register and drive
	weight      int           // tenant fair-share weight
	duration    time.Duration // how long to keep submitting
	concurrency int           // closed-loop workers
	cost        time.Duration // per-action spin time
}

// runLoad registers the tenant (tolerating an already-registered
// one), drives it with closed-loop waited submissions for the
// configured duration, and prints one machine-parseable summary line:
//
//	load tenant=NAME ok=N shed=N err=N wall=SECONDSs rate=N.N/s
//
// ok counts completed actions, shed counts 429 responses (admission
// or stream-queue shed), err counts everything else.
func runLoad(opt loadOptions) {
	client := &http.Client{}
	base := opt.url

	reg := map[string]any{"name": opt.tenant, "weight": opt.weight}
	status, body, err := postJSON(client, base+"/v1/tenants", reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: registering tenant %q: %v\n", opt.tenant, err)
		os.Exit(1)
	}
	// 409 means the tenant exists (e.g. pre-registered via -tenant or
	// a previous run); every other non-2xx is fatal.
	if status >= 300 && status != http.StatusConflict {
		fmt.Fprintf(os.Stderr, "load: registering tenant %q: HTTP %d: %s\n", opt.tenant, status, body)
		os.Exit(1)
	}

	submit := map[string]any{
		"kernel": "spin",
		"args":   []int64{int64(opt.cost)},
		"wait":   true,
	}
	payload, _ := json.Marshal(submit)
	submitURL := base + "/v1/tenants/" + opt.tenant + "/submit"

	var ok, shed, errs atomic.Int64
	deadline := time.Now().Add(opt.duration)
	var wg sync.WaitGroup
	for w := 0; w < opt.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := client.Post(submitURL, "application/json", bytes.NewReader(payload))
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	wall := time.Since(start)
	fmt.Printf("load tenant=%s ok=%d shed=%d err=%d wall=%.1fs rate=%.1f/s\n",
		opt.tenant, ok.Load(), shed.Load(), errs.Load(),
		wall.Seconds(), float64(ok.Load())/wall.Seconds())
	if errs.Load() > 0 {
		os.Exit(1)
	}
}

// postJSON posts v as JSON and returns the status code and body.
func postJSON(client *http.Client, url string, v any) (int, string, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), nil
}
