package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/matmul"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
)

var update = flag.Bool("update", false, "rewrite golden files")

// expositionDump runs a fixed Sim workload under a fresh registry and
// returns the Prometheus exposition. Sim mode is fully deterministic
// (virtual clock, no goroutine scheduling in the timings), so the
// bytes must not change between runs or machines.
func expositionDump(t *testing.T) string {
	t.Helper()
	reg := metrics.New()
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeSim,
		StreamsPerCard: 2,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := matmul.Run(a, matmul.Config{N: 4800, Tile: 1200}); err != nil {
		t.Fatal(err)
	}
	a.Fini()
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestExpositionGolden pins the -metrics exposition format: families
// and series sorted, stable HELP/TYPE text, deterministic Sim-mode
// values. A diff here means the telemetry surface changed — update
// the golden with `go test ./cmd/hsbench -run TestExpositionGolden
// -update` and call the change out in review.
func TestExpositionGolden(t *testing.T) {
	got := expositionDump(t)
	if again := expositionDump(t); again != got {
		t.Fatal("exposition is not deterministic across identical runs")
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from %s (regenerate with -update):\n%s",
			golden, firstDiff(string(want), got))
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want %s\n  got  %s", i+1, w, g)
		}
	}
	return ""
}
