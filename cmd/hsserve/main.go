// Command hsserve is the multi-tenant serving front end: it brings up
// one Real-mode hStreams runtime, mounts the internal/serve HTTP/JSON
// API on -addr, and multiplexes tenants onto the runtime with
// weighted fair-share admission, bounded per-stream queues, and
// per-tenant quotas (SERVING.md is the operator guide).
//
// Built-in kernels:
//
//	spin   args[0] = busy time in nanoseconds — a calibrated,
//	       buffer-free service-time kernel for load tests.
//	fill   args[0] = byte value written over operand 0.
//	sum    sums operand 0's bytes into the first 8 bytes of
//	       operand 1 (little-endian uint64).
//
// Shutdown on SIGINT/SIGTERM is graceful: admission stops, tenants
// drain, every tenant buffer is freed, the runtime finalizes, and the
// process prints the end-of-run leaked-buffer count (the
// hstreams_buffers_live gauge, which must be zero — the serve-smoke
// CI gate asserts it).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/debugserver"
	"hstreams/internal/health"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/serve"
	"hstreams/internal/telemetry"
)

// tenantSpec is one -tenant NAME:WEIGHT pre-registration.
type tenantSpec struct {
	name   string
	weight int
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "serve the tenant API (/v1/..., /metrics, /healthz) on this address (port 0 picks a free port)")
	debugAddr := flag.String("debug-addr", "", "serve live debug endpoints (/metrics, /debug/pprof, /debug/tenants, /debug/timeline, /debug/health, ...) on this address")
	cards := flag.Int("cards", 0, "number of KNC card domains in the machine (0 = host only)")
	maxInflight := flag.Int("max-inflight", 8, "server-wide bound on actions in service across all tenants")
	streamsPerTenant := flag.Int("streams-per-tenant", 2, "default stream-group size per tenant")
	streamWidth := flag.Int("stream-width", 1, "cores granted to each tenant stream (groups overlap)")
	queueDepth := flag.Int("queue-depth", 16, "default bound on each tenant stream's incomplete-action window")
	maxPending := flag.Int("max-pending", 64, "default bound on each tenant's admitted-but-undispatched queue")
	shadow := flag.Bool("shadow", false, "shadow mode: run the full admission/quota/accounting path without executing anything (no runtime)")
	var tenants []tenantSpec
	flag.Func("tenant", "pre-register a tenant as NAME:WEIGHT (repeatable), e.g. -tenant gold:2 -tenant bronze:1", func(v string) error {
		name, weightStr, ok := strings.Cut(v, ":")
		weight := 1
		if ok {
			n, err := strconv.Atoi(weightStr)
			if err != nil || n < 1 {
				return fmt.Errorf("bad weight in %q", v)
			}
			weight = n
		}
		if name == "" {
			return fmt.Errorf("empty tenant name in %q", v)
		}
		tenants = append(tenants, tenantSpec{name: name, weight: weight})
		return nil
	})
	flag.Parse()

	// Health engine + sampler: same wiring as hsbench, so
	// /debug/health and /debug/timeline work out of the box and the
	// tenant SLO rules (tenant-shed, admission-wait) evaluate live.
	engine := health.New(health.Options{})
	core.SetDefaultEventHook(engine.Journal().CoreEvent)
	sampler := telemetry.NewSampler(telemetry.SamplerOptions{
		Interval: 100 * time.Millisecond,
		OnSample: engine.Tick,
	})
	sampler.Start()
	defer sampler.Stop()

	var rt *core.Runtime
	if !*shadow {
		var err error
		rt, err = core.Init(core.Config{
			Machine: platform.HSWPlusKNC(*cards),
			Mode:    core.ModeReal,
		})
		check(err)
		registerKernels(rt)
	}

	l, err := serve.Start(*addr, serve.Options{
		Runtime:           rt,
		MaxInflight:       *maxInflight,
		StreamsPerTenant:  *streamsPerTenant,
		StreamWidth:       *streamWidth,
		DefaultQueueDepth: *queueDepth,
		DefaultMaxPending: *maxPending,
		Shadow:            *shadow,
	})
	check(err)
	srv := l.Server()
	for _, t := range tenants {
		_, err := srv.Register(t.name, serve.Quotas{Weight: t.weight})
		check(err)
	}
	fmt.Printf("hsserve listening on http://%s (%s)\n", l.Addr(), srv)

	if *debugAddr != "" {
		dbg, err := debugserver.Start(*debugAddr, debugserver.Options{
			Health:  engine,
			Tenants: srv.Tenants,
		})
		check(err)
		defer dbg.Close()
		fmt.Printf("debug server listening on http://%s\n", dbg.Addr())
	}

	// Graceful shutdown: drain tenants, free buffers, finalize the
	// runtime, report the leak check.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("hsserve: draining")
	check(l.Close())
	if rt != nil {
		rt.Fini()
	}
	leaked := int64(metrics.Default().Total("hstreams_buffers_live"))
	fmt.Printf("hsserve: shutdown clean; leaked buffers: %d\n", leaked)
	if leaked != 0 {
		os.Exit(1)
	}
}

// registerKernels installs the built-in serving kernels.
func registerKernels(rt *core.Runtime) {
	rt.RegisterKernel("spin", func(ctx *core.KernelCtx) {
		d := time.Duration(0)
		if len(ctx.Args) > 0 {
			d = time.Duration(ctx.Args[0])
		}
		// Sleep, not busy-wait: service time must be independent of
		// how many goroutines contend for CPU, or fairness ratios
		// would wobble with host load.
		time.Sleep(d)
	})
	rt.RegisterKernel("fill", func(ctx *core.KernelCtx) {
		v := byte(0)
		if len(ctx.Args) > 0 {
			v = byte(ctx.Args[0])
		}
		if len(ctx.Ops) > 0 {
			buf := ctx.Ops[0]
			for i := range buf {
				buf[i] = v
			}
		}
	})
	rt.RegisterKernel("sum", func(ctx *core.KernelCtx) {
		if len(ctx.Ops) < 2 || len(ctx.Ops[1]) < 8 {
			return
		}
		var total uint64
		for _, b := range ctx.Ops[0] {
			total += uint64(b)
		}
		binary.LittleEndian.PutUint64(ctx.Ops[1], total)
	})
}

// check exits on a fatal setup error.
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsserve:", err)
		os.Exit(1)
	}
}
