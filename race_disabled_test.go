//go:build !race

package hstreams_test

// raceEnabled reports whether the race detector is compiled in; see
// layering_test.go for why wall-clock bounds are skipped under it.
const raceEnabled = false
