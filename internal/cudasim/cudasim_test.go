package cudasim

import (
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

func newCUDA(t *testing.T, mode core.Mode, devices int) *CUDA {
	t.Helper()
	c, err := Init(platform.HSWPlusK40(devices), mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Fini)
	return c
}

func simCost(n int) platform.Cost {
	return platform.Cost{Kernel: platform.KDGEMM, Flops: 2 * float64(n) * float64(n) * float64(n), N: n}
}

func TestRealKernelRoundTrip(t *testing.T) {
	c := newCUDA(t, core.ModeReal, 1)
	c.RT.RegisterKernel("scale", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i] *= float64(ctx.Args[0])
		}
	})
	p, err := c.Malloc(0, 64*8)
	if err != nil {
		t.Fatal(err)
	}
	stage := floatbits.Float64s(p.HostStage())
	for i := range stage {
		stage[i] = float64(i)
	}
	st, err := c.StreamCreate(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.MemcpyH2DAsync(p, 0, p.Size()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Launch("scale", []int64{2}, []Arg{{p, 0, p.Size()}}, platform.Cost{}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MemcpyD2HAsync(p, 0, p.Size()); err != nil {
		t.Fatal(err)
	}
	if err := st.Synchronize(); err != nil {
		t.Fatal(err)
	}
	for i := range stage {
		if stage[i] != float64(2*i) {
			t.Fatalf("stage[%d] = %v, want %v", i, stage[i], 2*i)
		}
	}
}

func TestStrictFIFOUnlikeHStreams(t *testing.T) {
	// The defining difference (§IV): an independent transfer enqueued
	// after a compute in the SAME CUDA stream may NOT overtake it —
	// while in hStreams it does (see core's
	// TestSimTransferOverlapsCompute).
	c := newCUDA(t, core.ModeSim, 1)
	a, _ := c.Malloc(0, 1<<20)
	b, _ := c.Malloc(0, 1<<20)
	st, _ := c.StreamCreate(0)
	comp, err := st.Launch("k", nil, []Arg{{a, 0, a.Size()}}, simCost(2000))
	if err != nil {
		t.Fatal(err)
	}
	xfer, err := st.MemcpyH2DAsync(b, 0, b.Size())
	if err != nil {
		t.Fatal(err)
	}
	c.DeviceSynchronize()
	_, compEnd := comp.Times()
	xferStart, _ := xfer.Times()
	if xferStart < compEnd {
		t.Fatalf("CUDA stream reordered: independent transfer started %v before compute ended %v", xferStart, compEnd)
	}
}

func TestTwoStreamsOverlapTransfersWithCompute(t *testing.T) {
	// The CUDA way to get overlap: a second stream.
	c := newCUDA(t, core.ModeSim, 1)
	a, _ := c.Malloc(0, 1<<20)
	b, _ := c.Malloc(0, 1<<20)
	s1, _ := c.StreamCreate(0)
	s2, _ := c.StreamCreate(0)
	comp, _ := s1.Launch("k", nil, []Arg{{a, 0, a.Size()}}, simCost(2000))
	xfer, _ := s2.MemcpyH2DAsync(b, 0, b.Size())
	c.DeviceSynchronize()
	_, compEnd := comp.Times()
	xferStart, _ := xfer.Times()
	if xferStart >= compEnd {
		t.Fatal("cross-stream transfer failed to overlap compute")
	}
}

func TestStreamsShareDeviceScheduler(t *testing.T) {
	// Kernels from different streams of one device serialize on the
	// device-wide scheduler.
	c := newCUDA(t, core.ModeSim, 1)
	a, _ := c.Malloc(0, 1<<20)
	b, _ := c.Malloc(0, 1<<20)
	s1, _ := c.StreamCreate(0)
	s2, _ := c.StreamCreate(0)
	k1, _ := s1.Launch("k", nil, []Arg{{a, 0, a.Size()}}, simCost(1500))
	k2, _ := s2.Launch("k", nil, []Arg{{b, 0, b.Size()}}, simCost(1500))
	c.DeviceSynchronize()
	s1e, e1 := k1.Times()
	s2s, e2 := k2.Times()
	_ = s1e
	if s2s < e1 && !(e2 <= s1e) {
		t.Fatalf("kernels overlapped on one device: k1 ends %v, k2 starts %v", e1, s2s)
	}
}

func TestEventsAcrossStreams(t *testing.T) {
	c := newCUDA(t, core.ModeSim, 1)
	a, _ := c.Malloc(0, 1<<20)
	b, _ := c.Malloc(0, 1<<20)
	s1, _ := c.StreamCreate(0)
	s2, _ := c.StreamCreate(0)
	k1, _ := s1.Launch("k", nil, []Arg{{a, 0, a.Size()}}, simCost(1500))
	ev := c.EventCreate()
	if err := s1.Record(ev); err != nil {
		t.Fatal(err)
	}
	if err := s2.WaitEvent(ev); err != nil {
		t.Fatal(err)
	}
	x, _ := s2.MemcpyH2DAsync(b, 0, b.Size())
	c.DeviceSynchronize()
	_, e1 := k1.Times()
	xs, _ := x.Times()
	if xs < e1 {
		t.Fatalf("WaitEvent ignored: transfer started %v before kernel end %v", xs, e1)
	}
	if err := ev.Synchronize(); err != nil {
		t.Fatal(err)
	}
	ev.Destroy()
	if err := s2.WaitEvent(ev); err != ErrNotRecorded {
		t.Fatalf("wait on destroyed event err = %v", err)
	}
}

func TestUnrecordedEventRejected(t *testing.T) {
	c := newCUDA(t, core.ModeSim, 1)
	s, _ := c.StreamCreate(0)
	ev := c.EventCreate()
	if err := s.WaitEvent(ev); err != ErrNotRecorded {
		t.Fatalf("err = %v, want ErrNotRecorded", err)
	}
	if err := ev.Synchronize(); err != ErrNotRecorded {
		t.Fatalf("err = %v, want ErrNotRecorded", err)
	}
}

func TestPerDeviceAddressSpaces(t *testing.T) {
	c := newCUDA(t, core.ModeSim, 2)
	if c.DeviceCount() != 2 {
		t.Fatal("device count")
	}
	p0, err := c.Malloc(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := c.StreamCreate(1)
	// A device-0 pointer is unusable on device 1.
	if _, err := s1.MemcpyH2DAsync(p0, 0, 1024); err != ErrWrongDevice {
		t.Fatalf("cross-device use err = %v, want ErrWrongDevice", err)
	}
	if _, err := s1.Launch("k", nil, []Arg{{p0, 0, 1024}}, simCost(100)); err != ErrWrongDevice {
		t.Fatalf("cross-device launch err = %v, want ErrWrongDevice", err)
	}
}

func TestUseAfterFree(t *testing.T) {
	c := newCUDA(t, core.ModeSim, 1)
	p, _ := c.Malloc(0, 1024)
	s, _ := c.StreamCreate(0)
	p.Free()
	if _, err := s.MemcpyH2DAsync(p, 0, 1024); err != ErrFreed {
		t.Fatalf("err = %v, want ErrFreed", err)
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MemcpyH2DAsync(p, 0, 1024); err != ErrFreed {
		t.Fatalf("destroyed stream err = %v, want ErrFreed", err)
	}
	if err := s.Destroy(); err != ErrFreed {
		t.Fatalf("double destroy err = %v, want ErrFreed", err)
	}
}

func TestBadDeviceOrdinal(t *testing.T) {
	c := newCUDA(t, core.ModeSim, 1)
	if _, err := c.StreamCreate(5); err != ErrBadDevice {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Malloc(-1, 10); err != ErrBadDevice {
		t.Fatalf("err = %v", err)
	}
}

func TestAPIAccounting(t *testing.T) {
	c := newCUDA(t, core.ModeSim, 1)
	p, _ := c.Malloc(0, 1024)
	s, _ := c.StreamCreate(0)
	_, _ = s.MemcpyH2DAsync(p, 0, 1024)
	ev := c.EventCreate()
	_ = s.Record(ev)
	if c.API.Count("cudaMalloc") != 1 || c.API.Count("cudaStreamCreate") != 1 ||
		c.API.Count("cudaMemcpyAsync") != 1 || c.API.Count("cudaEventCreate") != 1 {
		t.Fatalf("API accounting wrong: %s", c.API.String())
	}
	if c.API.Unique() < 5 {
		t.Fatalf("unique APIs = %d", c.API.Unique())
	}
}
