// Package cudasim models the CUDA Streams programming interface the
// paper compares hStreams against (§IV). The semantic differences it
// reproduces are exactly the ones the paper calls out:
//
//   - Strict FIFO: operations in a CUDA stream execute in enqueue
//     order — no out-of-order freedom from operand analysis. Overlap
//     requires multiple streams plus explicit event synchronization.
//   - Explicit events: event objects must be created, recorded and
//     waited on; streams are opaque handles that must be created and
//     destroyed (hStreams uses plain integers).
//   - Per-device address spaces: device memory is allocated per
//     device and the host must track a separate pointer per device
//     (hStreams' host proxy address stands for all instances).
//   - Kernels from different streams contend for one device-wide
//     scheduler (streams share the device's cores).
//
// It is deliberately built on internal/core with every action
// preceded by an in-stream barrier — demonstrating that CUDA stream
// semantics are a restriction of hStreams semantics.
package cudasim

import (
	"errors"
	"fmt"
	"time"

	"hstreams/internal/apistat"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

// Common errors.
var (
	ErrBadDevice     = errors.New("cudasim: invalid device ordinal")
	ErrFreed         = errors.New("cudasim: use after free")
	ErrNotRecorded   = errors.New("cudasim: event not recorded")
	ErrWrongDevice   = errors.New("cudasim: pointer belongs to another device")
	ErrHostSizeWrong = errors.New("cudasim: host slice length mismatch")
)

// APICost is the modeled driver-call latency charged on the source
// thread per CUDA API call in Sim mode — explicit event and stream
// management is not free, which is part of the overhead hStreams'
// implicit dependences avoid (§IV).
const APICost = 3 * time.Microsecond

// CUDA is a driver context over the machine's card domains (CUDA has
// no host-as-target concept, so the host domain is not a device).
type CUDA struct {
	RT  *core.Runtime
	API apistat.Counter

	devFirst []*core.Stream // first stream per device, owner of the shared slot
	nstreams int
}

// api records one driver call and charges its latency.
func (c *CUDA) api(name string) {
	c.API.Hit(name)
	c.RT.ChargeSource(APICost)
}

// Init brings up the driver model on machine. Mode selects real or
// simulated execution, exactly as for hStreams.
func Init(machine *platform.Machine, mode core.Mode) (*CUDA, error) {
	rt, err := core.Init(core.Config{Machine: machine, Mode: mode})
	if err != nil {
		return nil, err
	}
	c := &CUDA{RT: rt, devFirst: make([]*core.Stream, rt.NumCards())}
	c.api("cuInit")
	return c, nil
}

// Fini tears the context down (cudaDeviceReset).
func (c *CUDA) Fini() {
	c.api("cudaDeviceReset")
	c.RT.Fini()
}

// DeviceCount returns the number of devices.
func (c *CUDA) DeviceCount() int {
	c.api("cudaGetDeviceCount")
	return c.RT.NumCards()
}

// Stream is an opaque CUDA stream handle.
type Stream struct {
	c    *CUDA
	dev  int
	s    *core.Stream
	last *core.Action
	dead bool
}

// StreamCreate creates a stream on the given device. All streams of a
// device share its compute resources (one device-wide scheduler).
func (c *CUDA) StreamCreate(dev int) (*Stream, error) {
	c.api("cudaStreamCreate")
	if dev < 0 || dev >= c.RT.NumCards() {
		return nil, ErrBadDevice
	}
	d := c.RT.Card(dev)
	s, err := c.RT.StreamCreateOn(d, 0, d.Spec().Cores(), c.devFirst[dev])
	if err != nil {
		return nil, err
	}
	if c.devFirst[dev] == nil {
		c.devFirst[dev] = s
	}
	c.nstreams++
	return &Stream{c: c, dev: dev, s: s}, nil
}

// StreamDestroy synchronizes and invalidates the stream.
func (st *Stream) Destroy() error {
	st.c.api("cudaStreamDestroy")
	if st.dead {
		return ErrFreed
	}
	if err := st.s.Synchronize(); err != nil {
		return err
	}
	st.dead = true
	return nil
}

// fifo enforces strict FIFO: every operation must wait for the
// previous one in this stream, whatever their operands.
func (st *Stream) fifo() error {
	if st.dead {
		return ErrFreed
	}
	if st.last != nil && !st.last.Completed() {
		if _, err := st.s.EnqueueMarker(); err != nil {
			return err
		}
	}
	return nil
}

// Synchronize blocks the host until the stream drains
// (cudaStreamSynchronize).
func (st *Stream) Synchronize() error {
	st.c.api("cudaStreamSynchronize")
	if st.dead {
		return ErrFreed
	}
	return st.s.Synchronize()
}

// Event is an opaque CUDA event.
type Event struct {
	c   *CUDA
	act *core.Action
}

// EventCreate allocates an event object (required before use, unlike
// hStreams where every action already is an event).
func (c *CUDA) EventCreate() *Event {
	c.api("cudaEventCreate")
	return &Event{c: c}
}

// EventDestroy releases the event.
func (e *Event) Destroy() {
	e.c.api("cudaEventDestroy")
	e.act = nil
}

// Record marks the event at the stream's current tail
// (cudaEventRecord).
func (st *Stream) Record(e *Event) error {
	st.c.api("cudaEventRecord")
	if err := st.fifo(); err != nil {
		return err
	}
	a, err := st.s.EnqueueMarker()
	if err != nil {
		return err
	}
	st.last = a
	e.act = a
	return nil
}

// WaitEvent makes all subsequent work in the stream wait for the
// event (cudaStreamWaitEvent).
func (st *Stream) WaitEvent(e *Event) error {
	st.c.api("cudaStreamWaitEvent")
	if e.act == nil {
		return ErrNotRecorded
	}
	if err := st.fifo(); err != nil {
		return err
	}
	a, err := st.s.EnqueueEventWait(e.act)
	if err != nil {
		return err
	}
	st.last = a
	return nil
}

// Synchronize blocks the host until the event fires
// (cudaEventSynchronize).
func (e *Event) Synchronize() error {
	e.c.api("cudaEventSynchronize")
	if e.act == nil {
		return ErrNotRecorded
	}
	return e.act.Wait()
}

// DevPtr is a device allocation. Each device has its own address
// space: a DevPtr is only usable on the device it was allocated on,
// and multi-device codes must keep one pointer per device — the
// bookkeeping burden the paper contrasts with hStreams' single proxy
// address (§IV).
type DevPtr struct {
	c    *CUDA
	dev  int
	buf  *core.Buf
	size int64
	dead bool
}

// Malloc allocates size bytes on device dev (cudaMalloc).
func (c *CUDA) Malloc(dev int, size int64) (*DevPtr, error) {
	c.api("cudaMalloc")
	if dev < 0 || dev >= c.RT.NumCards() {
		return nil, ErrBadDevice
	}
	buf, err := c.RT.Alloc1D(fmt.Sprintf("cu.dev%d", dev), size)
	if err != nil {
		return nil, err
	}
	return &DevPtr{c: c, dev: dev, buf: buf, size: size}, nil
}

// Free releases the allocation (cudaFree).
func (p *DevPtr) Free() {
	p.c.api("cudaFree")
	p.dead = true
}

// Size returns the allocation size in bytes.
func (p *DevPtr) Size() int64 { return p.size }

// HostStage exposes the host staging area paired with the device
// allocation (the source the H2D copies read from); nil in Sim mode.
func (p *DevPtr) HostStage() []byte { return p.buf.HostBytes() }

func (st *Stream) checkPtr(p *DevPtr) error {
	if p.dead {
		return ErrFreed
	}
	if p.dev != st.dev {
		return ErrWrongDevice
	}
	return nil
}

// MemcpyH2DAsync copies the staging range [off, off+n) to the device
// in stream order (cudaMemcpyAsync host→device).
func (st *Stream) MemcpyH2DAsync(p *DevPtr, off, n int64) (*core.Action, error) {
	st.c.api("cudaMemcpyAsync")
	if err := st.checkPtr(p); err != nil {
		return nil, err
	}
	if err := st.fifo(); err != nil {
		return nil, err
	}
	a, err := st.s.EnqueueXfer(p.buf, off, n, core.ToSink)
	if err != nil {
		return nil, err
	}
	st.last = a
	return a, nil
}

// MemcpyD2HAsync copies device bytes back to the staging range in
// stream order (cudaMemcpyAsync device→host).
func (st *Stream) MemcpyD2HAsync(p *DevPtr, off, n int64) (*core.Action, error) {
	st.c.api("cudaMemcpyAsync")
	if err := st.checkPtr(p); err != nil {
		return nil, err
	}
	if err := st.fifo(); err != nil {
		return nil, err
	}
	a, err := st.s.EnqueueXfer(p.buf, off, n, core.ToSource)
	if err != nil {
		return nil, err
	}
	st.last = a
	return a, nil
}

// Arg is one kernel argument: a device range.
type Arg struct {
	Ptr      *DevPtr
	Off, Len int64
}

// Launch enqueues a kernel in stream order (<<<…>>> / cuLaunchKernel).
// The kernel name resolves in the shared registry; scalar args and
// device ranges arrive like hStreams operands, but declared access
// modes are irrelevant: ordering is strict FIFO regardless.
func (st *Stream) Launch(kernel string, scalars []int64, args []Arg, cost platform.Cost) (*core.Action, error) {
	st.c.api("cuLaunchKernel")
	ops := make([]core.Operand, 0, len(args))
	for _, a := range args {
		if err := st.checkPtr(a.Ptr); err != nil {
			return nil, err
		}
		// Access mode is InOut for everything: CUDA has no operand
		// dependence analysis, so nothing weaker is expressible.
		ops = append(ops, a.Ptr.buf.Range(a.Off, a.Len, core.InOut))
	}
	if err := st.fifo(); err != nil {
		return nil, err
	}
	a, err := st.s.EnqueueCompute(kernel, scalars, ops, cost)
	if err != nil {
		return nil, err
	}
	st.last = a
	return a, nil
}

// DeviceSynchronize drains every stream (cudaDeviceSynchronize).
func (c *CUDA) DeviceSynchronize() {
	c.api("cudaDeviceSynchronize")
	c.RT.ThreadSynchronize()
}
