// Package fault is the deterministic fault-injection layer of the
// stack. The paper's platform (hStreams → COI → SCIF over PCIe, §III)
// ran on a physically lossy fabric — card resets, ECC stalls and
// failed PCIe transfers were routine on KNC deployments — and a
// runtime that aims to survive production traffic has to be tested
// against exactly those failures. This package supplies them on
// demand:
//
//   - a Plan describes the failure modes to inject (transfer errors,
//     slow/degraded links, kernel-launch failures, sink-process death
//     episodes), each with its own probability;
//   - an Injector is consulted by the plumbing layers
//     (internal/fabric DMA, internal/coi run-functions) before every
//     fault-eligible operation and answers with extra latency and/or
//     an injected error;
//   - the error taxonomy (Class, IsTransient) tells the scheduler's
//     retry machinery in internal/core which failures are worth
//     retrying and which are final.
//
// Injection is deterministic and seedable: every decision is a pure
// function of the plan seed, the decision site (one sequence per link
// direction or sink domain) and that site's decision ordinal, so a
// single-stream program replays the exact same fault schedule on
// every run — which is what the retry-determinism tests and the
// chaos-smoke CI gate pin. Production builds pay nothing when
// injection is off: the hooks are a single nil check.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hstreams/internal/metrics"
)

// Class divides injected (and runtime) errors into the two halves of
// the retry taxonomy.
type Class int

const (
	// Transient marks an error worth retrying: the operation may
	// succeed if re-issued (a failed DMA, a card mid-reset).
	Transient Class = iota
	// Fatal marks an error retrying cannot fix (a programming error,
	// an out-of-range access, an exceeded deadline).
	Fatal
)

// String labels the class for error text and metrics.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Fatal:
		return "fatal"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Injection sites, used as the "site" label of
// hstreams_faults_injected_total.
const (
	// SiteTransfer is a DMA transfer on a fabric link.
	SiteTransfer = "transfer"
	// SiteSlowLink is a degraded-link latency injection (the
	// operation succeeds, late).
	SiteSlowLink = "slow-link"
	// SiteKernel is a run-function (kernel) launch on a sink.
	SiteKernel = "kernel"
	// SiteSinkDeath is a sink-process death episode: the domain fails
	// every operation until the episode ends.
	SiteSinkDeath = "sink-death"
)

// Error is an injected fault (or a runtime error classified into the
// taxonomy). It records where it was injected and whether the retry
// machinery should consider it recoverable.
type Error struct {
	// Site is the injection site (SiteTransfer, SiteKernel, ...).
	Site string
	// Key is the decision-sequence key: "src→dst" for link sites, the
	// sink domain name for kernel/death sites.
	Key string
	// Class is the error's retry class.
	Class Class
	// Seq is the site-sequence ordinal that produced the fault,
	// making every injected error traceable to one seeded decision.
	Seq uint64
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s %s at %s (decision %d)", e.Class, e.Site, e.Key, e.Seq)
}

// IsTransient reports whether err is retryable under the taxonomy:
// an injected *Error of class Transient anywhere in its chain. All
// other errors — genuine runtime failures, injected Fatal faults,
// exceeded deadlines — are final.
func IsTransient(err error) bool {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Class == Transient
	}
	return false
}

// Plan describes what to inject and how often. All probabilities are
// in [0,1] and independent; the zero value injects nothing.
type Plan struct {
	// Seed makes the fault schedule reproducible; two injectors with
	// the same plan issue identical decision sequences per site.
	Seed uint64
	// ArmAfter delays injection until that many decisions have been
	// consulted injector-wide — a deterministic way to let a warm-up
	// phase (or a known-good prefix of a chaos test) run clean.
	ArmAfter uint64
	// TransferError is the probability that a DMA transfer fails with
	// a transient error before moving any bytes.
	TransferError float64
	// SlowLink is the probability that a DMA transfer is delayed by
	// SlowLatency (degraded link); the transfer itself still succeeds
	// unless an error is also drawn.
	SlowLink float64
	// SlowLatency is the extra wall-clock latency of a slow-link
	// injection. Zero leaves SlowLink draws without effect.
	SlowLatency time.Duration
	// KernelError is the probability that a run-function (kernel)
	// launch on a sink fails with a transient error.
	KernelError float64
	// SinkDeath is the probability, drawn at each kernel launch, that
	// the sink process dies: the domain then fails its next DeadOps
	// operations (kernels and transfers) before recovering — the
	// card-reset burst that trips the scheduler's breaker.
	SinkDeath float64
	// DeadOps is the length of a sink-death episode in failed
	// operations. Zero uses DefaultDeadOps.
	DeadOps int
}

// DefaultDeadOps is the default sink-death episode length.
const DefaultDeadOps = 8

// Injector is consulted by the plumbing layers before fault-eligible
// operations. Implementations must be safe for concurrent use. A nil
// Injector (the production default) disables injection entirely; the
// layers guard the call with one nil check and pay nothing else.
type Injector interface {
	// Transfer is consulted before one DMA of n bytes from src to
	// dst. It returns extra latency to impose before the transfer
	// proceeds and/or an error to fail it with; callers must apply
	// the delay even when an error is returned (a degraded link is
	// slow to fail, too).
	Transfer(src, dst string, n int64) (time.Duration, error)
	// Kernel is consulted before one run-function launch on the named
	// sink domain; a non-nil error fails the launch.
	Kernel(domain string) error
}

// siteState is one decision sequence (one link direction or one sink
// domain).
type siteState struct {
	seq     uint64 // decisions drawn at this site
	faults  uint64 // faults injected at this site
	deadOps int    // remaining operations of a death episode
	rateGa  *metrics.Gauge
}

// SeededInjector is the deterministic Plan-driven Injector. Decisions
// are derived from (seed, site key, per-site ordinal) with a
// splitmix64 mix, so the schedule is independent of wall-clock time
// and — for a serial decision sequence — of goroutine interleaving.
type SeededInjector struct {
	plan Plan

	faults   *metrics.CounterVec // site, key
	linkRate *metrics.GaugeVec   // src, dst (per-mille injected-fault rate)

	mu    sync.Mutex
	total uint64 // injector-wide decisions, for ArmAfter
	sites map[string]*siteState
}

// NewInjector builds a deterministic injector for the plan, reporting
// injection telemetry into reg (hstreams_faults_injected_total by
// site and key, and the per-link hstreams_link_fault_permille
// gauges). A nil registry keeps counting into detached series.
func NewInjector(plan Plan, reg *metrics.Registry) *SeededInjector {
	if plan.DeadOps <= 0 {
		plan.DeadOps = DefaultDeadOps
	}
	return &SeededInjector{
		plan:     plan,
		faults:   reg.CounterVec("hstreams_faults_injected_total", "Faults injected by the fault plan, by site and sequence key.", "site", "key"),
		linkRate: reg.GaugeVec("hstreams_link_fault_permille", "Injected-fault rate per link direction, in permille of consulted transfers.", "src", "dst"),
		sites:    make(map[string]*siteState),
	}
}

// Plan returns the plan the injector was built with (DeadOps
// defaulted).
func (in *SeededInjector) Plan() Plan { return in.plan }

// site resolves (or creates) the decision sequence for key; caller
// holds in.mu.
func (in *SeededInjector) site(key string) *siteState {
	st := in.sites[key]
	if st == nil {
		st = &siteState{}
		in.sites[key] = st
	}
	return st
}

// draw advances site st by one decision and returns a uniform value
// in [0,1). Caller holds in.mu.
func (in *SeededInjector) draw(st *siteState, key string) float64 {
	st.seq++
	in.total++
	h := splitmix64(in.plan.Seed ^ hash64(key) ^ (st.seq * 0x9e3779b97f4a7c15))
	return float64(h>>11) / (1 << 53)
}

// armed reports whether the plan has passed its warm-up. Caller holds
// in.mu (total is advanced by draw).
func (in *SeededInjector) armed() bool { return in.total > in.plan.ArmAfter }

// inject records one injected fault at st. Caller holds in.mu.
func (in *SeededInjector) inject(st *siteState, site, key string) *Error {
	st.faults++
	in.faults.With(site, key).Inc()
	return &Error{Site: site, Key: key, Class: Transient, Seq: st.seq}
}

// Transfer implements Injector for fabric DMA: two independent draws
// per call (slow link, then error), plus the domain death episodes,
// which fail transfers touching a dead domain.
func (in *SeededInjector) Transfer(src, dst string, n int64) (time.Duration, error) {
	key := src + "→" + dst
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.site(key)

	var delay time.Duration
	if in.draw(st, key) < in.plan.SlowLink && in.armed() {
		delay = in.plan.SlowLatency
		if delay > 0 {
			in.faults.With(SiteSlowLink, key).Inc()
		}
	}
	var err error
	if in.draw(st, key) < in.plan.TransferError && in.armed() {
		err = in.inject(st, SiteTransfer, key)
	}
	if err == nil {
		if dead := in.deadDomain(src, dst); dead != "" {
			err = in.inject(st, SiteSinkDeath, dead)
		}
	}
	st.rateGa = in.gauge(st, src, dst)
	st.rateGa.Set(int64(1000 * st.faults / st.seq))
	return delay, err
}

// gauge resolves the per-link rate gauge once. Caller holds in.mu.
func (in *SeededInjector) gauge(st *siteState, src, dst string) *metrics.Gauge {
	if st.rateGa == nil {
		st.rateGa = in.linkRate.With(src, dst)
	}
	return st.rateGa
}

// deadDomain consumes one death-episode operation if either endpoint
// domain is currently dead, returning the dead domain's name. Caller
// holds in.mu.
func (in *SeededInjector) deadDomain(names ...string) string {
	for _, name := range names {
		if st := in.sites[name]; st != nil && st.deadOps > 0 {
			st.deadOps--
			return name
		}
	}
	return ""
}

// Kernel implements Injector for COI run-function launches: one death
// draw and one error draw per call, keyed by the sink domain.
func (in *SeededInjector) Kernel(domain string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.site(domain)
	if in.draw(st, domain) < in.plan.SinkDeath && in.armed() {
		st.deadOps = in.plan.DeadOps
		in.faults.With(SiteSinkDeath, domain).Inc()
	}
	var err error
	if in.draw(st, domain) < in.plan.KernelError && in.armed() {
		err = in.inject(st, SiteKernel, domain)
	}
	if err == nil {
		if dead := in.deadDomain(domain); dead != "" {
			err = in.inject(st, SiteSinkDeath, dead)
		}
	}
	return err
}

// Decisions returns how many fault decisions the injector has drawn
// in total (every Transfer call draws twice, every Kernel call draws
// twice).
func (in *SeededInjector) Decisions() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Faults returns how many faults the injector has injected in total.
func (in *SeededInjector) Faults() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, st := range in.sites {
		n += st.faults
	}
	return n
}

// splitmix64 is the SplitMix64 finalizer — a full-avalanche mix used
// to turn (seed, site, ordinal) into an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash64 is FNV-1a over the site key.
func hash64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
