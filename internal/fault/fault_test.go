package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// replay runs a fixed serial decision script against a fresh injector
// and returns a compact transcript of every outcome.
func replay(plan Plan) []string {
	in := NewInjector(plan, nil)
	var out []string
	for i := 0; i < 200; i++ {
		d, err := in.Transfer("host", "card0", 4096)
		out = append(out, fmt.Sprintf("T %v %v", d, err))
		if i%3 == 0 {
			out = append(out, fmt.Sprintf("K %v", in.Kernel("card0")))
		}
	}
	return out
}

func TestSeededInjectorDeterministic(t *testing.T) {
	plan := Plan{
		Seed:          42,
		TransferError: 0.2,
		SlowLink:      0.3,
		SlowLatency:   time.Millisecond,
		KernelError:   0.25,
		SinkDeath:     0.05,
		DeadOps:       4,
	}
	a, b := replay(plan), replay(plan)
	if len(a) != len(b) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(a), len(b))
	}
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
		if a[i] != "T 0s <nil>" && a[i] != "K <nil>" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatalf("plan with nonzero probabilities injected nothing in %d decisions", len(a))
	}
	// A different seed must give a different schedule.
	plan.Seed = 43
	c := replay(plan)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and seed 43 produced identical fault schedules")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(Plan{Seed: 7}, nil)
	for i := 0; i < 500; i++ {
		if d, err := in.Transfer("host", "card0", 1); d != 0 || err != nil {
			t.Fatalf("zero plan injected on transfer %d: delay=%v err=%v", i, d, err)
		}
		if err := in.Kernel("card0"); err != nil {
			t.Fatalf("zero plan injected on kernel %d: %v", i, err)
		}
	}
	if got := in.Faults(); got != 0 {
		t.Fatalf("Faults() = %d, want 0", got)
	}
}

func TestArmAfterSuppressesWarmup(t *testing.T) {
	// Certain-fault plan: every armed transfer must fail.
	plan := Plan{Seed: 1, TransferError: 1.0, ArmAfter: 100}
	in := NewInjector(plan, nil)
	for i := 0; i < 50; i++ { // 2 draws each → 100 decisions total
		if _, err := in.Transfer("host", "card0", 1); err != nil {
			t.Fatalf("transfer %d failed during warm-up (decisions=%d): %v", i, in.Decisions(), err)
		}
	}
	if _, err := in.Transfer("host", "card0", 1); err == nil {
		t.Fatal("first armed transfer did not fail under TransferError=1.0")
	}
}

func TestSinkDeathEpisode(t *testing.T) {
	// Death is certain on the first kernel launch; nothing else is
	// injected. The episode must then fail exactly DeadOps operations
	// on that domain (transfers in either direction included) and
	// leave other domains untouched.
	plan := Plan{Seed: 9, SinkDeath: 1.0, DeadOps: 3}
	in := NewInjector(plan, nil)

	err := in.Kernel("card0")
	if err == nil {
		t.Fatal("kernel during death episode succeeded")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteSinkDeath || fe.Key != "card0" {
		t.Fatalf("unexpected death error: %#v", err)
	}
	// Two more dead operations: a transfer touching card0 and one more
	// kernel — note the kernel draw re-arms the episode under
	// SinkDeath=1.0, so only assert the transfer direction here.
	if _, err := in.Transfer("host", "card0", 1); !errors.As(err, &fe) || fe.Site != SiteSinkDeath {
		t.Fatalf("transfer to dead domain did not fail with death error: %v", err)
	}
	if _, err := in.Transfer("card0", "host", 1); !errors.As(err, &fe) || fe.Site != SiteSinkDeath {
		t.Fatalf("transfer from dead domain did not fail with death error: %v", err)
	}
	// Episode exhausted (3 dead ops consumed): transfers recover.
	if _, err := in.Transfer("host", "card0", 1); err != nil {
		t.Fatalf("transfer after episode end still failing: %v", err)
	}
	// Other domains never saw a fault.
	if _, err := in.Transfer("host", "card1", 1); err != nil {
		t.Fatalf("unrelated domain failed: %v", err)
	}
}

func TestTaxonomy(t *testing.T) {
	tr := &Error{Site: SiteTransfer, Key: "host→card0", Class: Transient, Seq: 3}
	fa := &Error{Site: SiteKernel, Key: "card0", Class: Fatal, Seq: 9}
	if !IsTransient(tr) {
		t.Error("transient fault not IsTransient")
	}
	if IsTransient(fa) {
		t.Error("fatal fault reported transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error reported transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", tr)) {
		t.Error("wrapped transient fault not IsTransient")
	}
	if IsTransient(nil) {
		t.Error("nil error reported transient")
	}
	for _, e := range []*Error{tr, fa} {
		if e.Error() == "" {
			t.Error("empty error string")
		}
	}
	if Transient.String() != "transient" || Fatal.String() != "fatal" {
		t.Errorf("Class strings: %q %q", Transient, Fatal)
	}
}

func TestSlowLinkDelay(t *testing.T) {
	plan := Plan{Seed: 5, SlowLink: 1.0, SlowLatency: 3 * time.Millisecond}
	in := NewInjector(plan, nil)
	d, err := in.Transfer("host", "card0", 64)
	if err != nil {
		t.Fatalf("slow-link-only plan returned error: %v", err)
	}
	if d != 3*time.Millisecond {
		t.Fatalf("delay = %v, want 3ms", d)
	}
}
