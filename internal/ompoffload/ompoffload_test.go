package ompoffload

import (
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

func newOMP(t *testing.T, mode core.Mode, v Version, cards int) *OMP {
	t.Helper()
	o, err := Init(platform.HSWPlusKNC(cards), mode, v)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Fini)
	return o
}

func cost(n int) platform.Cost {
	return platform.Cost{Kernel: platform.KDGEMM, Flops: 2 * float64(n) * float64(n) * float64(n), N: n}
}

func TestTargetRoundTripReal(t *testing.T) {
	o := newOMP(t, core.ModeReal, V40, 1)
	o.RT.RegisterKernel("scale", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i] *= float64(ctx.Args[0])
		}
	})
	b, f, err := o.RT.AllocFloat64("v", 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		f[i] = 1
	}
	if err := o.Target(0, "scale", []int64{4}, platform.Cost{}, MapAll(b, MapToFrom)); err != nil {
		t.Fatal(err)
	}
	// Target is synchronous: the result must already be visible.
	for i := range f {
		if f[i] != 4 {
			t.Fatalf("f[%d] = %v, want 4", i, f[i])
		}
	}
}

func TestHostFallback(t *testing.T) {
	o := newOMP(t, core.ModeReal, V40, 1)
	o.RT.RegisterKernel("inc", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i]++
		}
	})
	b, f, _ := o.RT.AllocFloat64("v", 8)
	if err := o.Target(-1, "inc", nil, platform.Cost{}, MapAll(b, MapToFrom)); err != nil {
		t.Fatal(err)
	}
	if f[0] != 1 {
		t.Fatalf("host fallback result = %v", f[0])
	}
}

func TestV40TransfersNeverOverlapCompute(t *testing.T) {
	// The paper's key OpenMP 4.0 limitation: synchronous constructs
	// mean zero compute/transfer overlap.
	o := newOMP(t, core.ModeSim, V40, 1)
	b1, _ := o.RT.Alloc1D("a", 8<<20)
	b2, _ := o.RT.Alloc1D("b", 8<<20)
	if err := o.Target(0, "k", nil, cost(2000), MapAll(b1, MapToFrom)); err != nil {
		t.Fatal(err)
	}
	if err := o.Target(0, "k", nil, cost(2000), MapAll(b2, MapToFrom)); err != nil {
		t.Fatal(err)
	}
	tr := o.RT.Trace()
	if ov := tr.OverlapTime(0, 1); ov != 0 { // trace.Compute=0, trace.Transfer=1
		t.Fatalf("V40 overlapped compute and transfer by %v", ov)
	}
}

func TestV45NowaitOverlaps(t *testing.T) {
	o := newOMP(t, core.ModeSim, V45, 2)
	// Asymmetric work so one device computes while the other is
	// still transferring.
	b1, _ := o.RT.Alloc1D("a", 32<<20)
	b2, _ := o.RT.Alloc1D("b", 1<<20)
	if _, err := o.TargetNowait(0, "k", nil, cost(3000), nil, MapAll(b1, MapToFrom)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.TargetNowait(1, "k", nil, cost(500), nil, MapAll(b2, MapToFrom)); err != nil {
		t.Fatal(err)
	}
	o.Taskwait()
	tr := o.RT.Trace()
	if ov := tr.OverlapTime(0, 1); ov == 0 {
		t.Fatal("V45 nowait on two devices produced no overlap")
	}
}

func TestV45DependOrders(t *testing.T) {
	o := newOMP(t, core.ModeSim, V45, 1)
	a, _ := o.RT.Alloc1D("a", 1<<20)
	b, _ := o.RT.Alloc1D("b", 1<<20)
	first, err := o.TargetNowait(0, "k", nil, cost(2000), nil, MapAll(a, MapToFrom))
	if err != nil {
		t.Fatal(err)
	}
	second, err := o.TargetNowait(0, "k", nil, cost(500), []*core.Action{first}, MapAll(b, MapToFrom))
	if err != nil {
		t.Fatal(err)
	}
	o.Taskwait()
	_, e1 := first.Times()
	s2, _ := second.Times()
	if s2 < e1 {
		t.Fatalf("depend clause ignored: %v < %v", s2, e1)
	}
}

func TestV40RejectsNowait(t *testing.T) {
	o := newOMP(t, core.ModeSim, V40, 1)
	b, _ := o.RT.Alloc1D("a", 1<<20)
	if _, err := o.TargetNowait(0, "k", nil, cost(100), nil, MapAll(b, MapToFrom)); err != ErrNeed45 {
		t.Fatalf("err = %v, want ErrNeed45", err)
	}
	if _, err := o.TargetEnterData(0, true, MapAll(b, MapTo)); err != ErrNeed45 {
		t.Fatalf("err = %v, want ErrNeed45", err)
	}
	if _, err := o.TargetExitData(0, true, MapAll(b, MapFrom)); err != ErrNeed45 {
		t.Fatalf("err = %v, want ErrNeed45", err)
	}
}

func TestMarshalingSlowsTransfers(t *testing.T) {
	// The offload runtime's staging path costs MarshalHops wire
	// trips; hStreams moves the same bytes once.
	run := func(hops int) int64 {
		o := newOMP(t, core.ModeSim, V40, 1)
		o.MarshalHops = hops
		b, _ := o.RT.Alloc1D("a", 16<<20)
		if _, err := o.TargetEnterData(0, false, MapAll(b, MapTo)); err != nil {
			t.Fatal(err)
		}
		return int64(o.RT.SimLinkBusy(1, 0))
	}
	t1 := run(1)
	t5 := run(5)
	if t5 != 5*t1 {
		t.Fatalf("marshal hops: busy %v vs %v, want 5×", t5, t1)
	}
}

func TestEnterExitData(t *testing.T) {
	o := newOMP(t, core.ModeReal, V40, 1)
	o.RT.RegisterKernel("inc", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i]++
		}
	})
	o.MarshalHops = 1
	b, f, _ := o.RT.AllocFloat64("v", 8)
	f[0] = 10
	if _, err := o.TargetEnterData(0, false, MapAll(b, MapTo)); err != nil {
		t.Fatal(err)
	}
	// Alloc-only maps inside the region: data already resident.
	if err := o.Target(0, "inc", nil, platform.Cost{}, MapAll(b, MapAlloc)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.TargetExitData(0, false, MapAll(b, MapFrom)); err != nil {
		t.Fatal(err)
	}
	if f[0] != 11 {
		t.Fatalf("f[0] = %v, want 11", f[0])
	}
}

func TestDeviceValidation(t *testing.T) {
	o := newOMP(t, core.ModeSim, V40, 1)
	if o.DeviceCount() != 1 {
		t.Fatal("device count")
	}
	if err := o.Target(7, "k", nil, cost(10)); err != ErrBadDevice {
		t.Fatalf("err = %v, want ErrBadDevice", err)
	}
}
