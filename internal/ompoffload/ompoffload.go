// Package ompoffload models OpenMP 4.0/4.5 device offload, the
// standards-based alternative the paper compares hStreams with (§IV).
// The semantic restrictions it reproduces:
//
//   - One logical device per card: OpenMP cannot subdivide a device
//     into concurrent offload regions on disjoint core sets, so each
//     device is a single full-width stream.
//   - OpenMP 4.0: target regions and update transfers are
//     synchronous — the host blocks, so transfers never overlap
//     compute and tiling HURTS (the paper's 460 vs 180 GFlop/s
//     observation).
//   - OpenMP 4.5: adds nowait target tasks and depend clauses, which
//     map to asynchronous enqueues plus explicit dependences.
//   - Offload data marshaling: LEO-era map clauses staged data
//     through the offload runtime instead of pinning user pages; the
//     model charges MarshalHops wire trips per mapped byte.
//
// Host fallback (device ordinal < 0) executes target regions on the
// host, as `omp target` does without a device — but unlike hStreams
// there is no uniform interface: the caller branches.
package ompoffload

import (
	"errors"

	"hstreams/internal/apistat"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

// Version selects the modeled OpenMP specification level.
type Version int

const (
	// V40 is OpenMP 4.0: synchronous target and update constructs.
	V40 Version = iota
	// V45 is OpenMP 4.5: adds nowait/depend (async offload).
	V45
)

// Common errors.
var (
	ErrNeed45    = errors.New("ompoffload: construct requires OpenMP 4.5")
	ErrBadDevice = errors.New("ompoffload: invalid device ordinal")
)

// DefaultMarshalHops is how many wire trips a mapped byte costs
// through the offload runtime's staging path. Calibrated so an
// untiled 10 000² matmul lands near the paper's 460 GFlop/s row.
const DefaultMarshalHops = 5

// OMP is an offload runtime instance.
type OMP struct {
	RT  *core.Runtime
	API apistat.Counter

	Version Version
	// MarshalHops is the staging multiplier on mapped transfers.
	MarshalHops int

	devStreams []*core.Stream // per card
	hostStream *core.Stream
}

// Init brings up the model on machine.
func Init(machine *platform.Machine, mode core.Mode, v Version) (*OMP, error) {
	rt, err := core.Init(core.Config{Machine: machine, Mode: mode})
	if err != nil {
		return nil, err
	}
	o := &OMP{RT: rt, Version: v, MarshalHops: DefaultMarshalHops}
	for c := 0; c < rt.NumCards(); c++ {
		d := rt.Card(c)
		s, err := rt.StreamCreate(d, 0, d.Spec().Cores())
		if err != nil {
			rt.Fini()
			return nil, err
		}
		o.devStreams = append(o.devStreams, s)
	}
	h := rt.Host()
	hs, err := rt.StreamCreate(h, 0, h.Spec().Cores())
	if err != nil {
		rt.Fini()
		return nil, err
	}
	o.hostStream = hs
	return o, nil
}

// Fini shuts the runtime down.
func (o *OMP) Fini() { o.RT.Fini() }

// stream returns the queue for a device ordinal (<0 = host).
func (o *OMP) stream(dev int) (*core.Stream, error) {
	if dev < 0 {
		return o.hostStream, nil
	}
	if dev >= len(o.devStreams) {
		return nil, ErrBadDevice
	}
	return o.devStreams[dev], nil
}

// MapDir is a map clause direction.
type MapDir int

const (
	// MapTo copies host→device at region entry (map(to:)).
	MapTo MapDir = iota
	// MapFrom copies device→host at region exit (map(from:)).
	MapFrom
	// MapToFrom copies both ways (map(tofrom:)).
	MapToFrom
	// MapAlloc allocates without copying (map(alloc:)).
	MapAlloc
)

// Map is one map clause: a buffer range and its direction.
type Map struct {
	Buf      *core.Buf
	Off, Len int64
	Dir      MapDir
}

// MapAll maps a whole buffer.
func MapAll(b *core.Buf, dir MapDir) Map { return Map{Buf: b, Off: 0, Len: b.Size(), Dir: dir} }

// enqueueMarshal models the staging path: MarshalHops chained wire
// trips for the range.
func (o *OMP) enqueueMarshal(s *core.Stream, m Map, dir core.XferDir) (*core.Action, error) {
	hops := o.MarshalHops
	if hops < 1 {
		hops = 1
	}
	var last *core.Action
	for h := 0; h < hops; h++ {
		a, err := s.EnqueueXfer(m.Buf, m.Off, m.Len, dir)
		if err != nil {
			return nil, err
		}
		// Chain explicitly: identical read-direction transfers have
		// no operand hazard, but the staging hops are sequential.
		if h+1 < hops {
			if _, err := s.EnqueueEventWait(a); err != nil {
				return nil, err
			}
		}
		last = a
	}
	return last, nil
}

// enters performs the entry side of map clauses.
func (o *OMP) enters(s *core.Stream, maps []Map) (*core.Action, error) {
	var last *core.Action
	for _, m := range maps {
		if m.Dir == MapTo || m.Dir == MapToFrom {
			a, err := o.enqueueMarshal(s, m, core.ToSink)
			if err != nil {
				return nil, err
			}
			last = a
		}
	}
	return last, nil
}

// exits performs the exit side of map clauses.
func (o *OMP) exits(s *core.Stream, maps []Map) (*core.Action, error) {
	var last *core.Action
	for _, m := range maps {
		if m.Dir == MapFrom || m.Dir == MapToFrom {
			a, err := o.enqueueMarshal(s, m, core.ToSource)
			if err != nil {
				return nil, err
			}
			last = a
		}
	}
	return last, nil
}

// operandsOf converts map clauses to compute operands: To → In,
// From → Out, ToFrom/Alloc → InOut.
func operandsOf(maps []Map) []core.Operand {
	ops := make([]core.Operand, 0, len(maps))
	for _, m := range maps {
		acc := core.InOut
		switch m.Dir {
		case MapTo:
			acc = core.In
		case MapFrom:
			acc = core.Out
		}
		ops = append(ops, core.Operand{Buf: m.Buf, Off: m.Off, Len: m.Len, Acc: acc})
	}
	return ops
}

// Target executes `#pragma omp target map(...)`: entry transfers,
// kernel, exit transfers — synchronously. This is the whole OpenMP
// 4.0 offload story: one construct, no overlap.
func (o *OMP) Target(dev int, kernel string, args []int64, cost platform.Cost, maps ...Map) error {
	o.API.Hit("omp target")
	s, err := o.stream(dev)
	if err != nil {
		return err
	}
	if _, err := o.enters(s, maps); err != nil {
		return err
	}
	if _, err := s.EnqueueCompute(kernel, args, operandsOf(maps), cost); err != nil {
		return err
	}
	if _, err := o.exits(s, maps); err != nil {
		return err
	}
	return s.Synchronize()
}

// TargetNowait is `#pragma omp target nowait depend(...)` (4.5 only):
// asynchronous offload whose ordering is carried by the returned
// action and the depend list.
func (o *OMP) TargetNowait(dev int, kernel string, args []int64, cost platform.Cost, depend []*core.Action, maps ...Map) (*core.Action, error) {
	o.API.Hit("omp target nowait")
	if o.Version < V45 {
		return nil, ErrNeed45
	}
	s, err := o.stream(dev)
	if err != nil {
		return nil, err
	}
	if len(depend) > 0 {
		if _, err := s.EnqueueEventWait(depend...); err != nil {
			return nil, err
		}
	}
	if _, err := o.enters(s, maps); err != nil {
		return nil, err
	}
	a, err := s.EnqueueCompute(kernel, args, operandsOf(maps), cost)
	if err != nil {
		return nil, err
	}
	if last, err := o.exits(s, maps); err != nil {
		return nil, err
	} else if last != nil {
		a = last
	}
	return a, nil
}

// TargetEnterData is `#pragma omp target enter data map(to:...)`:
// synchronous on 4.0; asynchronous with nowait on 4.5.
func (o *OMP) TargetEnterData(dev int, nowait bool, maps ...Map) (*core.Action, error) {
	o.API.Hit("omp target enter data")
	if nowait && o.Version < V45 {
		return nil, ErrNeed45
	}
	s, err := o.stream(dev)
	if err != nil {
		return nil, err
	}
	last, err := o.enters(s, maps)
	if err != nil {
		return nil, err
	}
	if !nowait {
		return last, s.Synchronize()
	}
	return last, nil
}

// TargetExitData is `#pragma omp target exit data map(from:...)`.
func (o *OMP) TargetExitData(dev int, nowait bool, maps ...Map) (*core.Action, error) {
	o.API.Hit("omp target exit data")
	if nowait && o.Version < V45 {
		return nil, ErrNeed45
	}
	s, err := o.stream(dev)
	if err != nil {
		return nil, err
	}
	last, err := o.exits(s, maps)
	if err != nil {
		return nil, err
	}
	if !nowait {
		return last, s.Synchronize()
	}
	return last, nil
}

// Taskwait is `#pragma omp taskwait`: the host blocks until all
// outstanding device tasks complete.
func (o *OMP) Taskwait() {
	o.API.Hit("omp taskwait")
	o.RT.ThreadSynchronize()
}

// DeviceCount mirrors omp_get_num_devices.
func (o *OMP) DeviceCount() int {
	o.API.Hit("omp_get_num_devices")
	return len(o.devStreams)
}
