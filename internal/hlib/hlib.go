// Package hlib is a target-agnostic streaming API in the style of
// Petrobras' HLIB and Simulia's internal layer (paper Fig. 1 and §V):
// application code is written once against a small device-management
// and streaming interface, and back ends map it onto CUDA Streams for
// NVidia, OpenCL for AMD, or hStreams for MIC and host — "all the
// device management needed is done with a high-level target-agnostic
// API".
//
// This is the layering story of the paper from above: just as
// hStreams encapsulates COI/SCIF below it, HLIB-style APIs encapsulate
// the streaming model below them, and adding the hStreams back end is
// what let those vendors reach MIC without changing application code.
package hlib

import (
	"errors"

	"hstreams/internal/core"
	"hstreams/internal/cudasim"
	"hstreams/internal/oclsim"
	"hstreams/internal/platform"
)

// Common errors.
var (
	ErrBadDevice = errors.New("hlib: invalid device")
	ErrForeign   = errors.New("hlib: buffer belongs to another backend")
)

// Access declares how a kernel touches a buffer range.
type Access int

const (
	// In is read-only.
	In Access = iota
	// Out is write-only.
	Out
	// InOut is read-write.
	InOut
)

// Buffer is a device-reachable allocation with a host staging view.
type Buffer interface {
	// Size returns the allocation size in bytes.
	Size() int64
	// HostBytes returns the host staging storage (nil in Sim mode).
	HostBytes() []byte
}

// Event is an awaitable completion handle.
type Event interface {
	// Wait blocks until the operation completes.
	Wait() error
}

// Range is a kernel operand: a byte range of a buffer.
type Range struct {
	Buf      Buffer
	Off, Len int64
	Acc      Access
}

// All covers the whole buffer.
func All(b Buffer, acc Access) Range { return Range{Buf: b, Off: 0, Len: b.Size(), Acc: acc} }

// Queue is an ordered-submission work queue on one device. Ordering
// semantics are the back end's: strict FIFO for CUDA/OpenCL,
// FIFO-semantic (out-of-order where operands allow) for hStreams.
type Queue interface {
	// Push moves staging bytes to the device.
	Push(b Buffer, off, n int64) (Event, error)
	// Pull moves device bytes back to staging.
	Pull(b Buffer, off, n int64) (Event, error)
	// Launch invokes a named kernel on the given ranges.
	Launch(kernel string, args []int64, ranges []Range, cost platform.Cost) (Event, error)
	// Sync drains the queue.
	Sync() error
}

// Backend is one streaming target implementation.
type Backend interface {
	// Name identifies the back end ("hstreams", "cuda", "opencl").
	Name() string
	// Devices returns the number of compute devices.
	Devices() int
	// RegisterKernel installs a named kernel (shared Go registry, as
	// with hStreams sink symbols).
	RegisterKernel(name string, fn core.Kernel)
	// Alloc creates a buffer reachable from device dev.
	Alloc(dev int, size int64) (Buffer, error)
	// CreateQueue opens a work queue on device dev.
	CreateQueue(dev int) (Queue, error)
	// Fini shuts the back end down.
	Fini()
}

// ---- hStreams back end -------------------------------------------------

type hsBackend struct {
	rt     *core.Runtime
	widths []int // next stream core offset per device
}

// NewHStreams opens the hStreams back end on the machine.
func NewHStreams(machine *platform.Machine, mode core.Mode) (Backend, error) {
	rt, err := core.Init(core.Config{Machine: machine, Mode: mode})
	if err != nil {
		return nil, err
	}
	return &hsBackend{rt: rt, widths: make([]int, rt.NumCards())}, nil
}

func (h *hsBackend) Name() string                               { return "hstreams" }
func (h *hsBackend) Devices() int                               { return h.rt.NumCards() }
func (h *hsBackend) Fini()                                      { h.rt.Fini() }
func (h *hsBackend) RegisterKernel(name string, fn core.Kernel) { h.rt.RegisterKernel(name, fn) }

type hsBuffer struct {
	b *core.Buf
}

func (b hsBuffer) Size() int64       { return b.b.Size() }
func (b hsBuffer) HostBytes() []byte { return b.b.HostBytes() }

func (h *hsBackend) Alloc(dev int, size int64) (Buffer, error) {
	if dev < 0 || dev >= h.rt.NumCards() {
		return nil, ErrBadDevice
	}
	b, err := h.rt.Alloc1D("hlib", size)
	if err != nil {
		return nil, err
	}
	return hsBuffer{b}, nil
}

type hsQueue struct{ s *core.Stream }

type hsEvent struct{ a *core.Action }

func (e hsEvent) Wait() error { return e.a.Wait() }

func (h *hsBackend) CreateQueue(dev int) (Queue, error) {
	if dev < 0 || dev >= h.rt.NumCards() {
		return nil, ErrBadDevice
	}
	d := h.rt.Card(dev)
	// Queues partition the device: each new queue takes the next
	// quarter of the cores (wrapping), the hStreams subdivision that
	// CUDA cannot express (§IV).
	w := d.Spec().Cores() / 4
	if w < 1 {
		w = 1
	}
	first := h.widths[dev] % d.Spec().Cores()
	if first+w > d.Spec().Cores() {
		first = 0
	}
	h.widths[dev] = first + w
	s, err := h.rt.StreamCreate(d, first, w)
	if err != nil {
		return nil, err
	}
	return &hsQueue{s}, nil
}

func (q *hsQueue) Push(b Buffer, off, n int64) (Event, error) {
	hb, ok := b.(hsBuffer)
	if !ok {
		return nil, ErrForeign
	}
	a, err := q.s.EnqueueXfer(hb.b, off, n, core.ToSink)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

func (q *hsQueue) Pull(b Buffer, off, n int64) (Event, error) {
	hb, ok := b.(hsBuffer)
	if !ok {
		return nil, ErrForeign
	}
	a, err := q.s.EnqueueXfer(hb.b, off, n, core.ToSource)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

func (q *hsQueue) Launch(kernel string, args []int64, ranges []Range, cost platform.Cost) (Event, error) {
	ops := make([]core.Operand, len(ranges))
	for i, r := range ranges {
		hb, ok := r.Buf.(hsBuffer)
		if !ok {
			return nil, ErrForeign
		}
		acc := core.InOut
		switch r.Acc {
		case In:
			acc = core.In
		case Out:
			acc = core.Out
		}
		ops[i] = hb.b.Range(r.Off, r.Len, acc)
	}
	a, err := q.s.EnqueueCompute(kernel, args, ops, cost)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

func (q *hsQueue) Sync() error { return q.s.Synchronize() }

// ---- CUDA Streams back end ---------------------------------------------

type cudaBackend struct{ cu *cudasim.CUDA }

// NewCUDA opens the CUDA Streams back end on the machine.
func NewCUDA(machine *platform.Machine, mode core.Mode) (Backend, error) {
	cu, err := cudasim.Init(machine, mode)
	if err != nil {
		return nil, err
	}
	return &cudaBackend{cu}, nil
}

func (c *cudaBackend) Name() string { return "cuda" }
func (c *cudaBackend) Devices() int { return c.cu.RT.NumCards() }
func (c *cudaBackend) Fini()        { c.cu.Fini() }
func (c *cudaBackend) RegisterKernel(name string, fn core.Kernel) {
	c.cu.RT.RegisterKernel(name, fn)
}

type cudaBuffer struct{ p *cudasim.DevPtr }

func (b cudaBuffer) Size() int64       { return b.p.Size() }
func (b cudaBuffer) HostBytes() []byte { return b.p.HostStage() }

func (c *cudaBackend) Alloc(dev int, size int64) (Buffer, error) {
	p, err := c.cu.Malloc(dev, size)
	if err != nil {
		return nil, err
	}
	return cudaBuffer{p}, nil
}

type cudaQueue struct{ st *cudasim.Stream }

func (c *cudaBackend) CreateQueue(dev int) (Queue, error) {
	st, err := c.cu.StreamCreate(dev)
	if err != nil {
		return nil, err
	}
	return &cudaQueue{st}, nil
}

func (q *cudaQueue) Push(b Buffer, off, n int64) (Event, error) {
	cb, ok := b.(cudaBuffer)
	if !ok {
		return nil, ErrForeign
	}
	a, err := q.st.MemcpyH2DAsync(cb.p, off, n)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

func (q *cudaQueue) Pull(b Buffer, off, n int64) (Event, error) {
	cb, ok := b.(cudaBuffer)
	if !ok {
		return nil, ErrForeign
	}
	a, err := q.st.MemcpyD2HAsync(cb.p, off, n)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

func (q *cudaQueue) Launch(kernel string, args []int64, ranges []Range, cost platform.Cost) (Event, error) {
	cargs := make([]cudasim.Arg, len(ranges))
	for i, r := range ranges {
		cb, ok := r.Buf.(cudaBuffer)
		if !ok {
			return nil, ErrForeign
		}
		cargs[i] = cudasim.Arg{Ptr: cb.p, Off: r.Off, Len: r.Len}
	}
	a, err := q.st.Launch(kernel, args, cargs, cost)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

func (q *cudaQueue) Sync() error { return q.st.Synchronize() }

// ---- OpenCL back end ----------------------------------------------------

type oclBackend struct {
	cl   *oclsim.CL
	ctxs []*oclsim.Context
	prog []*oclsim.Program
}

// NewOpenCL opens the OpenCL back end on the machine.
func NewOpenCL(machine *platform.Machine, mode core.Mode) (Backend, error) {
	cl, err := oclsim.GetPlatform(machine, mode)
	if err != nil {
		return nil, err
	}
	b := &oclBackend{cl: cl}
	for d := 0; d < cl.GetDeviceIDs(); d++ {
		ctx, err := cl.CreateContext(d)
		if err != nil {
			cl.Release()
			return nil, err
		}
		prog := ctx.CreateProgramWithSource("/* hlib kernels */")
		prog.Build()
		b.ctxs = append(b.ctxs, ctx)
		b.prog = append(b.prog, prog)
	}
	return b, nil
}

func (o *oclBackend) Name() string { return "opencl" }
func (o *oclBackend) Devices() int { return len(o.ctxs) }
func (o *oclBackend) Fini()        { o.cl.Release() }
func (o *oclBackend) RegisterKernel(name string, fn core.Kernel) {
	o.cl.RT.RegisterKernel(name, fn)
}

type oclBuffer struct {
	b   *oclsim.Buffer
	dev int
}

func (b oclBuffer) Size() int64       { return int64(len(b.b.HostStage())) }
func (b oclBuffer) HostBytes() []byte { return b.b.HostStage() }

func (o *oclBackend) Alloc(dev int, size int64) (Buffer, error) {
	if dev < 0 || dev >= len(o.ctxs) {
		return nil, ErrBadDevice
	}
	buf, err := o.ctxs[dev].CreateBuffer(size)
	if err != nil {
		return nil, err
	}
	return oclBuffer{buf, dev}, nil
}

type oclQueue struct {
	o   *oclBackend
	q   *oclsim.Queue
	dev int
}

func (o *oclBackend) CreateQueue(dev int) (Queue, error) {
	if dev < 0 || dev >= len(o.ctxs) {
		return nil, ErrBadDevice
	}
	q, err := o.ctxs[dev].CreateCommandQueue()
	if err != nil {
		return nil, err
	}
	return &oclQueue{o, q, dev}, nil
}

func (q *oclQueue) Push(b Buffer, off, n int64) (Event, error) {
	ob, ok := b.(oclBuffer)
	if !ok {
		return nil, ErrForeign
	}
	a, err := q.q.EnqueueWriteBuffer(ob.b, off, n)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

func (q *oclQueue) Pull(b Buffer, off, n int64) (Event, error) {
	ob, ok := b.(oclBuffer)
	if !ok {
		return nil, ErrForeign
	}
	a, err := q.q.EnqueueReadBuffer(ob.b, off, n)
	if err != nil {
		return nil, err
	}
	return hsEvent{a}, nil
}

// ErrSubRange reports a partial-buffer kernel operand on the OpenCL
// back end, whose buffer objects bind whole (clSetKernelArg takes a
// cl_mem, not a range); portable hlib code passes whole buffers.
var ErrSubRange = errors.New("hlib: OpenCL backend requires whole-buffer ranges")

func (q *oclQueue) Launch(kernel string, args []int64, ranges []Range, cost platform.Cost) (Event, error) {
	k, err := q.o.prog[q.dev].CreateKernel(kernel)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, a := range args {
		k.SetArgScalar(idx, a)
		idx++
	}
	for _, r := range ranges {
		ob, ok := r.Buf.(oclBuffer)
		if !ok {
			return nil, ErrForeign
		}
		if r.Off != 0 || r.Len != ob.Size() {
			return nil, ErrSubRange
		}
		k.SetArgBuffer(idx, ob.b)
		idx++
	}
	a, err := q.q.EnqueueNDRangeKernel(k, idx, cost)
	if err != nil {
		return nil, err
	}
	k.Release()
	return hsEvent{a}, nil
}

func (q *oclQueue) Sync() error { return q.q.Finish() }
