package hlib

import (
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

// backends instantiates all three back ends on comparable machines —
// the paper's Fig. 1: the same target-agnostic code maps to hStreams
// (MIC), CUDA Streams (NVidia) or OpenCL.
func backends(t *testing.T, mode core.Mode) []Backend {
	t.Helper()
	hs, err := NewHStreams(platform.HSWPlusKNC(1), mode)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := NewCUDA(platform.HSWPlusK40(1), mode)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewOpenCL(platform.HSWPlusKNC(1), mode)
	if err != nil {
		t.Fatal(err)
	}
	bs := []Backend{hs, cu, cl}
	t.Cleanup(func() {
		for _, b := range bs {
			b.Fini()
		}
	})
	return bs
}

// program is the SAME application code for every back end: push two
// vectors, run saxpy-style kernels, pull the result — written once
// against the target-agnostic API.
func program(b Backend, n int) ([]float64, error) {
	b.RegisterKernel("hlib.axpy", func(ctx *core.KernelCtx) {
		x := floatbits.Float64s(ctx.Ops[0])
		y := floatbits.Float64s(ctx.Ops[1])
		a := float64(ctx.Args[0])
		for i := range y {
			y[i] += a * x[i]
		}
	})
	if b.Devices() < 1 {
		return nil, ErrBadDevice
	}
	q, err := b.CreateQueue(0)
	if err != nil {
		return nil, err
	}
	x, err := b.Alloc(0, int64(n)*8)
	if err != nil {
		return nil, err
	}
	y, err := b.Alloc(0, int64(n)*8)
	if err != nil {
		return nil, err
	}
	xs := floatbits.Float64s(x.HostBytes())
	ys := floatbits.Float64s(y.HostBytes())
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = 1
	}
	if _, err := q.Push(x, 0, x.Size()); err != nil {
		return nil, err
	}
	if _, err := q.Push(y, 0, y.Size()); err != nil {
		return nil, err
	}
	ev, err := q.Launch("hlib.axpy", []int64{3},
		[]Range{All(x, In), All(y, InOut)}, platform.Cost{})
	if err != nil {
		return nil, err
	}
	if err := ev.Wait(); err != nil {
		return nil, err
	}
	if _, err := q.Pull(y, 0, y.Size()); err != nil {
		return nil, err
	}
	if err := q.Sync(); err != nil {
		return nil, err
	}
	return ys, nil
}

func TestSameCodeAllBackends(t *testing.T) {
	const n = 1024
	for _, b := range backends(t, core.ModeReal) {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			ys, err := program(b, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if want := 1 + 3*float64(i); ys[i] != want {
					t.Fatalf("%s: y[%d] = %v, want %v", b.Name(), i, ys[i], want)
				}
			}
		})
	}
}

func TestBackendNamesAndDevices(t *testing.T) {
	names := map[string]bool{}
	for _, b := range backends(t, core.ModeSim) {
		names[b.Name()] = true
		if b.Devices() != 1 {
			t.Errorf("%s: devices = %d, want 1", b.Name(), b.Devices())
		}
	}
	for _, want := range []string{"hstreams", "cuda", "opencl"} {
		if !names[want] {
			t.Errorf("missing backend %q", want)
		}
	}
}

func TestForeignBufferRejected(t *testing.T) {
	bs := backends(t, core.ModeSim)
	hs, cu := bs[0], bs[1]
	qh, err := hs.CreateQueue(0)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := cu.Alloc(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qh.Push(foreign, 0, 64); err != ErrForeign {
		t.Fatalf("err = %v, want ErrForeign", err)
	}
	if _, err := qh.Launch("k", nil, []Range{All(foreign, In)}, platform.Cost{}); err != ErrForeign {
		t.Fatalf("launch err = %v, want ErrForeign", err)
	}
}

func TestOpenCLSubRangeRejected(t *testing.T) {
	cl, err := NewOpenCL(platform.HSWPlusKNC(1), core.ModeSim)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Fini()
	q, err := cl.CreateQueue(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Alloc(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Launch("k", nil, []Range{{Buf: b, Off: 0, Len: 512, Acc: In}}, platform.Cost{}); err != ErrSubRange {
		t.Fatalf("err = %v, want ErrSubRange", err)
	}
}

func TestBadDeviceOrdinals(t *testing.T) {
	for _, b := range backends(t, core.ModeSim) {
		if _, err := b.Alloc(9, 64); err == nil {
			t.Errorf("%s: Alloc on bad device accepted", b.Name())
		}
		if _, err := b.CreateQueue(-1); err == nil {
			t.Errorf("%s: CreateQueue on bad device accepted", b.Name())
		}
	}
}

// TestHStreamsBackendSubdivides shows the capability difference the
// paper highlights (§IV): the hStreams back end carves queues out of
// disjoint core sets of one device, so their computes genuinely
// overlap; CUDA queues share the device-wide scheduler.
func TestHStreamsBackendSubdivides(t *testing.T) {
	hs, err := NewHStreams(platform.HSWPlusKNC(1), core.ModeSim)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Fini()
	q1, _ := hs.CreateQueue(0)
	q2, _ := hs.CreateQueue(0)
	a, _ := hs.Alloc(0, 1<<20)
	b, _ := hs.Alloc(0, 1<<20)
	cost := platform.Cost{Kernel: platform.KDGEMM, Flops: 5e9, N: 1200}
	e1, err := q1.Launch("k", nil, []Range{All(a, InOut)}, cost)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := q2.Launch("k", nil, []Range{All(b, InOut)}, cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Wait(); err != nil {
		t.Fatal(err)
	}
	a1 := e1.(hsEvent).a
	a2 := e2.(hsEvent).a
	s1, f1 := a1.Times()
	s2, f2 := a2.Times()
	if s2 >= f1 || s1 >= f2 {
		t.Fatalf("hStreams queues on disjoint cores did not overlap: [%v,%v) vs [%v,%v)", s1, f1, s2, f2)
	}
}
