package stencil

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

// Schedule selects the offload scheme the paper compares (§V, §VI).
type Schedule int

const (
	// HostOnly runs everything on the host — the paper's baseline
	// ("one rank on a HSW with no offload").
	HostOnly Schedule = iota
	// SyncOffload computes each rank's whole slab as one kernel and
	// only then exchanges halos: "fully-synchronous offload … with no
	// overlap of data and compute".
	SyncOffload
	// AsyncPipelined computes halos first, exchanges them while the
	// bulk computes — "the data movement for the upper and lower halo
	// is pipelined with the … halo and bulk computation".
	AsyncPipelined
)

func (s Schedule) String() string {
	switch s {
	case HostOnly:
		return "host-only"
	case SyncOffload:
		return "sync-offload"
	case AsyncPipelined:
		return "async-pipelined"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Common errors.
var (
	ErrTooManyRanks = errors.New("stencil: more ranks than cards")
	ErrSlabTooThin  = errors.New("stencil: slab thinner than twice the stencil radius")
)

// Config describes one RTM run.
type Config struct {
	NX, NY, NZ int
	Steps      int
	// Ranks decomposes the grid into z-slabs, one card per rank
	// (ignored for HostOnly).
	Ranks    int
	Schedule Schedule
	// C2DT2 is the wave-equation constant c²·dt² (default 0.1).
	C2DT2 float64
	// Verify (Real mode) checks the final wavefield against the
	// reference propagator.
	Verify bool
}

// Result summarizes a run.
type Result struct {
	Seconds time.Duration
	// MPointsPerSec is updated grid points per second (millions).
	MPointsPerSec float64
}

const stepKernel = "rtm.step"

// registerKernel installs the sink-side propagator.
func registerKernel(rt *core.Runtime) {
	rt.RegisterKernel(stepKernel, func(ctx *core.KernelCtx) {
		nx, ny, nz := int(ctx.Args[0]), int(ctx.Args[1]), int(ctx.Args[2])
		z0, z1, zg0 := int(ctx.Args[3]), int(ctx.Args[4]), int(ctx.Args[5])
		c2dt2 := math.Float64frombits(uint64(ctx.Args[6]))
		cur := floatbits.Float64s(ctx.Ops[0])
		out := floatbits.Float64s(ctx.Ops[1])
		Step(out, cur, nx, ny, nz, z0, z1, zg0, c2dt2, ctx.Threads)
	})
}

// stepCost models one kernel over planes [z0, z1): bandwidth-bound
// streaming through the roofline.
func stepCost(nx, ny, nz, z0, z1 int) platform.Cost {
	lo, hi := z0, z1
	if lo < Radius {
		lo = Radius
	}
	if hi > nz-Radius {
		hi = nz - Radius
	}
	pts := 0.0
	if hi > lo {
		pts = float64(hi-lo) * float64(nx) * float64(ny)
	}
	return platform.Cost{
		Kernel: platform.KStencil,
		Flops:  FlopsPerPoint * pts,
		Bytes:  BytesPerPoint * pts,
		N:      nx,
	}
}

// Run executes the configured propagation and reports performance.
func Run(machine *platform.Machine, mode core.Mode, cfg Config) (Result, error) {
	if cfg.C2DT2 == 0 {
		cfg.C2DT2 = 0.1
	}
	rt, err := core.Init(core.Config{Machine: machine, Mode: mode})
	if err != nil {
		return Result{}, err
	}
	defer rt.Fini()
	if mode == core.ModeReal {
		registerKernel(rt)
	} else {
		rt.RegisterKernel(stepKernel, func(*core.KernelCtx) {})
	}

	nx, ny, nz := cfg.NX, cfg.NY, cfg.NZ
	planeBytes := int64(nx) * int64(ny) * 8
	gridBytes := planeBytes * int64(nz)
	bufA, err := rt.Alloc1D("waveA", gridBytes)
	if err != nil {
		return Result{}, err
	}
	bufB, err := rt.Alloc1D("waveB", gridBytes)
	if err != nil {
		return Result{}, err
	}
	bufs := [2]*core.Buf{bufA, bufB}

	var refA, refB []float64
	if mode == core.ModeReal {
		PointSource(bufA.HostFloat64s(), nx, ny, nz, 1)
		if cfg.Verify {
			refA = append([]float64(nil), bufA.HostFloat64s()...)
			refB = make([]float64, len(refA))
		}
	}

	// Rank layout.
	ranks := cfg.Ranks
	if cfg.Schedule == HostOnly {
		ranks = 1
	}
	if ranks < 1 {
		ranks = 1
	}
	type rank struct {
		s      *core.Stream
		z0, z1 int
	}
	var rs []rank
	if cfg.Schedule == HostOnly {
		host := rt.Host()
		s, err := rt.StreamCreate(host, 0, host.Spec().Cores())
		if err != nil {
			return Result{}, err
		}
		rs = []rank{{s: s, z0: 0, z1: nz}}
	} else {
		if ranks > rt.NumCards() {
			return Result{}, ErrTooManyRanks
		}
		for r := 0; r < ranks; r++ {
			d := rt.Card(r)
			s, err := rt.StreamCreate(d, 0, d.Spec().Cores())
			if err != nil {
				return Result{}, err
			}
			z0 := r * nz / ranks
			z1 := (r + 1) * nz / ranks
			if z1-z0 < 2*Radius {
				return Result{}, ErrSlabTooThin
			}
			rs = append(rs, rank{s: s, z0: z0, z1: z1})
		}
	}

	planes := func(b *core.Buf, zLo, zHi int) core.Operand {
		return b.Range(int64(zLo)*planeBytes, int64(zHi-zLo)*planeBytes, core.In)
	}
	xferPlanes := func(s *core.Stream, b *core.Buf, zLo, zHi int, dir core.XferDir, deps []*core.Action) (*core.Action, error) {
		return s.EnqueueXferDeps(b, int64(zLo)*planeBytes, int64(zHi-zLo)*planeBytes, dir, deps)
	}
	enqueueStep := func(s *core.Stream, cur, nxt *core.Buf, z0, z1 int, deps []*core.Action) (*core.Action, error) {
		zg0 := z0 - Radius
		if zg0 < 0 {
			zg0 = 0
		}
		zg1 := z1 + Radius
		if zg1 > nz {
			zg1 = nz
		}
		curOp := planes(cur, zg0, zg1)
		outOp := planes(nxt, z0, z1)
		outOp.Acc = core.InOut
		return s.EnqueueComputeDeps(stepKernel,
			[]int64{int64(nx), int64(ny), int64(nz), int64(z0), int64(z1), int64(zg0), int64(math.Float64bits(cfg.C2DT2))},
			[]core.Operand{curOp, outOp}, stepCost(nx, ny, nz, z0, z1), deps)
	}

	// Initial distribution: each card rank needs its slab (with
	// ghosts) of both ping-pong buffers. A production RTM job runs
	// for weeks (§V), so setup is outside the timed steady state.
	if cfg.Schedule != HostOnly {
		for _, r := range rs {
			zg0, zg1 := r.z0-Radius, r.z1+Radius
			if zg0 < 0 {
				zg0 = 0
			}
			if zg1 > nz {
				zg1 = nz
			}
			for _, b := range bufs {
				if _, err := xferPlanes(r.s, b, zg0, zg1, core.ToSink, nil); err != nil {
					return Result{}, err
				}
			}
		}
	}
	rt.ThreadSynchronize()

	start := rt.Now()
	// outHalo[r][0/1] is rank r's top/bottom halo send of the current
	// step, the cross-stream dependence of the neighbor's ghost pull.
	outHalo := make([][2]*core.Action, len(rs))
	for t := 0; t < cfg.Steps; t++ {
		cur, nxt := bufs[t%2], bufs[(t+1)%2]
		outHalo = make([][2]*core.Action, len(rs))
		for i := range rs {
			r := rs[i]
			switch cfg.Schedule {
			case HostOnly:
				if _, err := enqueueStep(r.s, cur, nxt, r.z0, r.z1, nil); err != nil {
					return Result{}, err
				}
			case AsyncPipelined:
				// Halo kernels first, their sends next (overlapping
				// the bulk), ghost pulls for the next step last.
				if i > 0 {
					if _, err := enqueueStep(r.s, cur, nxt, r.z0, r.z0+Radius, nil); err != nil {
						return Result{}, err
					}
					a, err := xferPlanes(r.s, nxt, r.z0, r.z0+Radius, core.ToSource, nil)
					if err != nil {
						return Result{}, err
					}
					outHalo[i][0] = a
				}
				if i < len(rs)-1 {
					if _, err := enqueueStep(r.s, cur, nxt, r.z1-Radius, r.z1, nil); err != nil {
						return Result{}, err
					}
					a, err := xferPlanes(r.s, nxt, r.z1-Radius, r.z1, core.ToSource, nil)
					if err != nil {
						return Result{}, err
					}
					outHalo[i][1] = a
				}
				bz0, bz1 := r.z0, r.z1
				if i > 0 {
					bz0 += Radius
				}
				if i < len(rs)-1 {
					bz1 -= Radius
				}
				if _, err := enqueueStep(r.s, cur, nxt, bz0, bz1, nil); err != nil {
					return Result{}, err
				}
			case SyncOffload:
				// Whole slab in one kernel, then exchange — nothing
				// overlaps (the marker bars reordering). The slab
				// kernel's ghost reads order against last step's
				// ghost pulls through the FIFO semantic.
				if _, err := enqueueStep(r.s, cur, nxt, r.z0, r.z1, nil); err != nil {
					return Result{}, err
				}
				if _, err := r.s.EnqueueMarker(); err != nil {
					return Result{}, err
				}
				if i > 0 {
					a, err := xferPlanes(r.s, nxt, r.z0, r.z0+Radius, core.ToSource, nil)
					if err != nil {
						return Result{}, err
					}
					outHalo[i][0] = a
				}
				if i < len(rs)-1 {
					a, err := xferPlanes(r.s, nxt, r.z1-Radius, r.z1, core.ToSource, nil)
					if err != nil {
						return Result{}, err
					}
					outHalo[i][1] = a
				}
			}
		}
		// Ghost pulls: rank i needs neighbors' fresh boundary planes
		// of nxt before the NEXT step reads them (cross-stream
		// dependences made explicit, §II).
		if cfg.Schedule != HostOnly {
			for i := range rs {
				r := rs[i]
				if i > 0 && outHalo[i-1][1] != nil {
					if _, err := xferPlanes(r.s, nxt, r.z0-Radius, r.z0, core.ToSink,
						[]*core.Action{outHalo[i-1][1]}); err != nil {
						return Result{}, err
					}
				}
				if i < len(rs)-1 && outHalo[i+1][0] != nil {
					if _, err := xferPlanes(r.s, nxt, r.z1, r.z1+Radius, core.ToSink,
						[]*core.Action{outHalo[i+1][0]}); err != nil {
						return Result{}, err
					}
				}
				if cfg.Schedule == SyncOffload {
					if _, err := r.s.EnqueueMarker(); err != nil {
						return Result{}, err
					}
				}
			}
		}
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		return Result{}, err
	}
	elapsed := rt.Now() - start

	// Pull final slabs home (outside the steady-state measurement,
	// like the setup).
	if cfg.Schedule != HostOnly {
		final := bufs[cfg.Steps%2]
		prev := bufs[(cfg.Steps+1)%2]
		for _, r := range rs {
			if _, err := xferPlanes(r.s, final, r.z0, r.z1, core.ToSource, nil); err != nil {
				return Result{}, err
			}
			if _, err := xferPlanes(r.s, prev, r.z0, r.z1, core.ToSource, nil); err != nil {
				return Result{}, err
			}
		}
		rt.ThreadSynchronize()
		if err := rt.Err(); err != nil {
			return Result{}, err
		}
	}

	if cfg.Verify && mode == core.ModeReal {
		for t := 0; t < cfg.Steps; t++ {
			if t%2 == 0 {
				Reference(refB, refA, nx, ny, nz, cfg.C2DT2)
			} else {
				Reference(refA, refB, nx, ny, nz, cfg.C2DT2)
			}
		}
		got := bufs[cfg.Steps%2].HostFloat64s()
		want := refA
		if cfg.Steps%2 == 1 {
			want = refB
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return Result{}, fmt.Errorf("stencil: mismatch at %d: got %g want %g", i, got[i], want[i])
			}
		}
	}

	pts := float64(nx) * float64(ny) * float64(nz) * float64(cfg.Steps)
	return Result{
		Seconds:       elapsed,
		MPointsPerSec: pts / elapsed.Seconds() / 1e6,
	}, nil
}

// Detuned returns a copy of the machine with stencil-kernel
// efficiency scaled by factor — the paper's "unoptimized code", where
// compute dominates and hiding communication matters less (§VI).
func Detuned(m *platform.Machine, factor float64) *platform.Machine {
	out := platform.NewMachine(m.Name+"-detuned", m.Host, 0, m.Host, m.Link)
	out.Host = m.Host.Clone()
	scale := func(d *platform.DomainSpec) {
		e := d.Eff[platform.KStencil]
		e.Max *= factor
		d.Eff[platform.KStencil] = e
	}
	scale(out.Host)
	for _, c := range m.Cards {
		cc := c.Clone()
		scale(cc)
		out.Cards = append(out.Cards, cc)
	}
	return out
}
