// Package stencil is the Petrobras RTM (Reverse Time Migration)
// substrate (§V): a time-domain finite-difference wave propagator —
// an 8th-order stencil over a 3-D regular grid — with domain
// decomposition into z-slabs, halo/bulk splitting, and neighbor
// exchange. The production seismic data and HPC cluster are out of
// reach, so the grid is synthetic and ranks map onto the simulated
// machine's cards; the experiments compare the paper's two schemes:
// fully synchronous offload versus asynchronous pipelined overlap of
// halo exchange and bulk compute.
package stencil

import "sync"

// Radius is the stencil half-width (8th order).
const Radius = 4

// FlopsPerPoint is the modeled operation count per grid point (the
// paper's halo-task sizing uses 80 flops per point).
const FlopsPerPoint = 80

// BytesPerPoint is the modeled memory traffic per updated point.
const BytesPerPoint = 32

// 8th-order central second-derivative coefficients.
var coeff = [Radius + 1]float64{-205.0 / 72, 8.0 / 5, -1.0 / 5, 8.0 / 315, -1.0 / 560}

// Grid dimensions use x-fastest layout: index = x + y·nx + z·nx·ny.

// Step advances the wave equation on planes [z0, z1) of the global
// grid:
//
//	next = 2·cur − prev + c²dt²·∇²cur
//
// cur holds planes [zg0, …) of the global grid (including whatever
// ghost planes the caller staged); prevNext holds planes [z0, z1) and
// is updated in place (it enters holding u(t−1) and leaves holding
// u(t+1) — the standard two-buffer ping-pong). Boundary rings of
// width Radius are left untouched. threads parallelizes over planes.
func Step(prevNext, cur []float64, nx, ny, nz, z0, z1, zg0 int, c2dt2 float64, threads int) {
	lo := z0
	if lo < Radius {
		lo = Radius
	}
	hi := z1
	if hi > nz-Radius {
		hi = nz - Radius
	}
	if hi <= lo {
		return
	}
	if threads < 1 {
		threads = 1
	}
	plane := nx * ny
	var wg sync.WaitGroup
	chunk := (hi - lo + threads - 1) / threads
	for t := 0; t < threads; t++ {
		zs := lo + t*chunk
		if zs >= hi {
			break
		}
		ze := zs + chunk
		if ze > hi {
			ze = hi
		}
		wg.Add(1)
		go func(zs, ze int) {
			defer wg.Done()
			for z := zs; z < ze; z++ {
				curZ := (z - zg0) * plane
				outZ := (z - z0) * plane
				for y := Radius; y < ny-Radius; y++ {
					row := y * nx
					for x := Radius; x < nx-Radius; x++ {
						c := curZ + row + x
						lap := 3 * coeff[0] * cur[c]
						for r := 1; r <= Radius; r++ {
							lap += coeff[r] * (cur[c-r] + cur[c+r] +
								cur[c-r*nx] + cur[c+r*nx] +
								cur[c-r*plane] + cur[c+r*plane])
						}
						o := outZ + row + x
						prevNext[o] = 2*cur[c] - prevNext[o] + c2dt2*lap
					}
				}
			}
		}(zs, ze)
	}
	wg.Wait()
}

// Reference advances the whole grid one step single-threaded, for
// correctness checks. cur and prevNext both cover the full grid.
func Reference(prevNext, cur []float64, nx, ny, nz int, c2dt2 float64) {
	Step(prevNext, cur, nx, ny, nz, 0, nz, 0, c2dt2, 1)
}

// PointSource injects an initial disturbance at the grid center.
func PointSource(u []float64, nx, ny, nz int, amp float64) {
	u[(nz/2)*nx*ny+(ny/2)*nx+nx/2] = amp
}
