package stencil

import (
	"math"
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/platform"
)

func TestKernelMatchesReferenceSplits(t *testing.T) {
	// Splitting the z range across calls must reproduce the whole-
	// grid reference exactly.
	const nx, ny, nz = 20, 18, 24
	cur := make([]float64, nx*ny*nz)
	PointSource(cur, nx, ny, nz, 1)
	cur[5+6*nx+7*nx*ny] = -0.5

	whole := make([]float64, nx*ny*nz)
	Reference(whole, cur, nx, ny, nz, 0.1)

	split := make([]float64, nx*ny*nz)
	plane := nx * ny
	for _, zr := range [][2]int{{0, 9}, {9, 16}, {16, nz}} {
		zg0 := zr[0] - Radius
		if zg0 < 0 {
			zg0 = 0
		}
		Step(split[zr[0]*plane:zr[1]*plane], cur[zg0*plane:], nx, ny, nz, zr[0], zr[1], zg0, 0.1, 3)
	}
	for i := range whole {
		if whole[i] != split[i] {
			t.Fatalf("split/whole mismatch at %d: %g vs %g", i, split[i], whole[i])
		}
	}
}

func TestWavePropagates(t *testing.T) {
	const n = 24
	a := make([]float64, n*n*n)
	b := make([]float64, n*n*n)
	PointSource(a, n, n, n, 1)
	for t := 0; t < 6; t++ {
		if t%2 == 0 {
			Reference(b, a, n, n, n, 0.1)
		} else {
			Reference(a, b, n, n, n, 0.1)
		}
	}
	// Energy must have spread away from the center.
	center := (n/2)*n*n + (n/2)*n + n/2
	off := center + 3
	if a[off] == 0 && b[off] == 0 {
		t.Fatal("wave did not propagate")
	}
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			t.Fatal("NaN in wavefield")
		}
	}
}

func TestRealSchedulesMatchReference(t *testing.T) {
	cfg := Config{NX: 20, NY: 18, NZ: 32, Steps: 5, Ranks: 2, Verify: true}
	for _, sched := range []Schedule{HostOnly, SyncOffload, AsyncPipelined} {
		cfg.Schedule = sched
		if _, err := Run(platform.HSWPlusKNC(2), core.ModeReal, cfg); err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
	}
}

func TestRealFourRanks(t *testing.T) {
	cfg := Config{NX: 16, NY: 16, NZ: 48, Steps: 4, Ranks: 4, Schedule: AsyncPipelined, Verify: true}
	if _, err := Run(platform.HSWPlusKNC(4), core.ModeReal, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRankValidation(t *testing.T) {
	if _, err := Run(platform.HSWPlusKNC(1), core.ModeSim, Config{NX: 16, NY: 16, NZ: 32, Steps: 1, Ranks: 3, Schedule: SyncOffload}); err != ErrTooManyRanks {
		t.Fatalf("err = %v, want ErrTooManyRanks", err)
	}
	if _, err := Run(platform.HSWPlusKNC(4), core.ModeSim, Config{NX: 16, NY: 16, NZ: 20, Steps: 1, Ranks: 4, Schedule: SyncOffload}); err != ErrSlabTooThin {
		t.Fatalf("err = %v, want ErrSlabTooThin", err)
	}
}

// TestSimRTMPaperShape reproduces §VI's RTM results: async pipelining
// gains a few percent over synchronous offload; one KNC beats the
// HSW host by ~1.5×; four ranks on four cards push toward ~6×.
func TestSimRTMPaperShape(t *testing.T) {
	// Production-size grid (Sim mode holds no real memory): deep in
	// z so each rank's bulk dwarfs its halo, as in the paper's
	// production runs where async pipelining buys 3–10 %.
	cfg := Config{NX: 1024, NY: 1024, NZ: 4096, Steps: 10}

	host := cfg
	host.Schedule = HostOnly
	hostRes, err := Run(platform.HSWPlusKNC(0), core.ModeSim, host)
	if err != nil {
		t.Fatal(err)
	}

	run := func(ranks int, sched Schedule) Result {
		c := cfg
		c.Ranks = ranks
		c.Schedule = sched
		r, err := Run(platform.HSWPlusKNC(ranks), core.ModeSim, c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sync1 := run(1, SyncOffload)
	async1 := run(1, AsyncPipelined)
	sync4 := run(4, SyncOffload)
	async4 := run(4, AsyncPipelined)

	sp1 := hostRes.Seconds.Seconds() / async1.Seconds.Seconds()
	sp4 := hostRes.Seconds.Seconds() / async4.Seconds.Seconds()
	asyncGain1 := sync1.Seconds.Seconds()/async1.Seconds.Seconds() - 1
	asyncGain4 := sync4.Seconds.Seconds()/async4.Seconds.Seconds() - 1
	t.Logf("RTM: 1-card speedup %.2f× (paper 1.52), 4-rank %.2f× (paper 6.02), async gain %.1f%%/%.1f%% (paper 3–10%%)",
		sp1, sp4, asyncGain1*100, asyncGain4*100)

	if sp1 < 1.2 || sp1 > 1.9 {
		t.Errorf("1-card speedup %.2f× outside the paper's neighborhood (1.52×)", sp1)
	}
	if sp4 < 4.2 || sp4 > 7.5 {
		t.Errorf("4-rank speedup %.2f× outside the paper's neighborhood (6.02×)", sp4)
	}
	if asyncGain4 <= 0 {
		t.Errorf("async pipelining gained nothing over sync (%.2f%%)", asyncGain4*100)
	}
	if asyncGain4 > 0.25 {
		t.Errorf("async gain %.0f%% implausibly large (paper: 3–10%%)", asyncGain4*100)
	}
}

// TestSimUnoptimizedShrinksGains reproduces the paper's observation
// that for unoptimized code the KNC speedup drops (1.13–4.53×)
// because communication is a smaller fraction of the slower compute.
func TestSimUnoptimizedShrinksGains(t *testing.T) {
	cfg := Config{NX: 1024, NY: 1024, NZ: 512, Steps: 10}
	detuned := Detuned(platform.HSWPlusKNC(1), 0.4)
	detunedHost := Detuned(platform.HSWPlusKNC(0), 0.4)

	host := cfg
	host.Schedule = HostOnly
	hostTuned, err := Run(platform.HSWPlusKNC(0), core.ModeSim, host)
	if err != nil {
		t.Fatal(err)
	}
	hostDetuned, err := Run(detunedHost, core.ModeSim, host)
	if err != nil {
		t.Fatal(err)
	}
	card := cfg
	card.Ranks = 1
	card.Schedule = AsyncPipelined
	cardTuned, err := Run(platform.HSWPlusKNC(1), core.ModeSim, card)
	if err != nil {
		t.Fatal(err)
	}
	cardDetuned, err := Run(detuned, core.ModeSim, card)
	if err != nil {
		t.Fatal(err)
	}
	spTuned := hostTuned.Seconds.Seconds() / cardTuned.Seconds.Seconds()
	spDetuned := hostDetuned.Seconds.Seconds() / cardDetuned.Seconds.Seconds()
	t.Logf("speedup tuned %.2f× vs unoptimized %.2f×", spTuned, spDetuned)
	if spDetuned >= spTuned {
		t.Errorf("unoptimized code should gain less from the card: %.2f ≥ %.2f", spDetuned, spTuned)
	}
	if spDetuned < 1.0 {
		t.Errorf("even unoptimized offload should not lose (%.2f×)", spDetuned)
	}
}
