package app

import (
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/platform"
)

func simApp(t *testing.T, cards, streamsPerCard, hostStreams int) *App {
	t.Helper()
	a, err := Init(Options{
		Machine:        platform.HSWPlusKNC(cards),
		Mode:           core.ModeSim,
		StreamsPerCard: streamsPerCard,
		HostStreams:    hostStreams,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Fini)
	return a
}

func TestEvenPartition(t *testing.T) {
	a := simApp(t, 1, 4, 3)
	card := a.CardStreams(0)
	if len(card) != 4 {
		t.Fatalf("card streams = %d, want 4", len(card))
	}
	// KNC has 61 cores → widths 16,15,15,15 covering [0,61) without
	// overlap.
	total, next := 0, 0
	for i, s := range card {
		w := s.Width()
		if w != 15 && w != 16 {
			t.Fatalf("stream %d width = %d", i, w)
		}
		total += w
		next += w
	}
	if total != 61 {
		t.Fatalf("card widths sum to %d, want 61", total)
	}
	host := a.HostStreams()
	if len(host) != 3 {
		t.Fatalf("host streams = %d, want 3", len(host))
	}
	hostTotal := 0
	for _, s := range host {
		hostTotal += s.Width()
	}
	if hostTotal != a.RT.Host().Spec().Cores() {
		t.Fatalf("host widths sum to %d, want %d", hostTotal, a.RT.Host().Spec().Cores())
	}
}

func TestHostCoresCap(t *testing.T) {
	a, err := Init(Options{
		Machine:     platform.HSWPlusKNC(0),
		Mode:        core.ModeSim,
		HostStreams: 3,
		HostCores:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Fini()
	for _, s := range a.HostStreams() {
		if s.Width() != 3 {
			t.Fatalf("width = %d, want 3", s.Width())
		}
	}
}

func TestNoHostStreamsByDefault(t *testing.T) {
	a := simApp(t, 2, 2, 0)
	if len(a.HostStreams()) != 0 {
		t.Fatal("host streams created without being requested")
	}
	doms := a.ComputeDomains()
	if len(doms) != 2 {
		t.Fatalf("compute domains = %d, want 2 (cards only)", len(doms))
	}
	for _, d := range doms {
		if d.IsHost() {
			t.Fatal("host listed as compute domain")
		}
	}
	if _, err := a.NextStream(a.RT.Host()); err != ErrNoStreams {
		t.Fatalf("NextStream(host) err = %v, want ErrNoStreams", err)
	}
}

func TestRoundRobin(t *testing.T) {
	a := simApp(t, 1, 3, 0)
	d := a.RT.Card(0)
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		s, err := a.NextStream(d)
		if err != nil {
			t.Fatal(err)
		}
		seen[s.ID()]++
	}
	if len(seen) != 3 {
		t.Fatalf("round robin used %d streams, want 3", len(seen))
	}
	for id, n := range seen {
		if n != 3 {
			t.Fatalf("stream %d used %d times, want 3", id, n)
		}
	}
}

func TestAllStreams(t *testing.T) {
	a := simApp(t, 2, 2, 1)
	all := a.AllStreams()
	if len(all) != 1+2*2 {
		t.Fatalf("AllStreams = %d, want 5", len(all))
	}
	if !all[0].Domain().IsHost() {
		t.Fatal("host stream must come first")
	}
}

func TestTooManyStreamsRejected(t *testing.T) {
	if _, err := Init(Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeSim,
		StreamsPerCard: 62, // KNC has 61 cores
	}); err == nil {
		t.Fatal("oversubscribed partition accepted")
	}
}

func TestDefaultStreamsPerCard(t *testing.T) {
	a, err := Init(Options{Machine: platform.HSWPlusKNC(1), Mode: core.ModeSim})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Fini()
	if len(a.CardStreams(0)) != 1 {
		t.Fatal("default must be one stream per card")
	}
	if a.CardStreams(0)[0].Width() != 61 {
		t.Fatal("single stream must own all cores")
	}
}

func TestAppRealModeEndToEnd(t *testing.T) {
	a, err := Init(Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeReal,
		StreamsPerCard: 2,
		HostStreams:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Fini()
	a.RT.RegisterKernel("inc", func(ctx *core.KernelCtx) {
		for i := range ctx.Ops[0] {
			ctx.Ops[0][i]++
		}
	})
	b, err := a.RT.Alloc1D("b", 256)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		s, err := a.NextStream(a.RT.Card(0))
		if err != nil {
			t.Fatal(err)
		}
		lo := int64(c * 64)
		if _, err := s.EnqueueXfer(b, lo, 64, core.ToSink); err != nil {
			t.Fatal(err)
		}
		if _, err := s.EnqueueCompute("inc", nil, []core.Operand{b.Range(lo, 64, core.InOut)}, platform.Cost{}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.EnqueueXfer(b, lo, 64, core.ToSource); err != nil {
			t.Fatal(err)
		}
	}
	a.RT.ThreadSynchronize()
	if err := a.RT.Err(); err != nil {
		t.Fatal(err)
	}
	for i, v := range b.HostBytes() {
		if v != 1 {
			t.Fatalf("byte %d = %d, want 1", i, v)
		}
	}
}
