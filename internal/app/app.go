// Package app is the hStreams "app API": the thin convenience layer
// the paper contrasts with the "core API" (§II, §IV). It initializes
// the library, evenly divides each domain's cores among a requested
// number of streams, and provides round-robin stream selection — the
// idiom the paper's Cholesky uses ("each subsequent compute … is
// round-robin'd across the available streams on that computing
// domain", §V).
package app

import (
	"errors"
	"fmt"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/fault"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// ErrNoStreams is returned when a domain was configured with zero
// streams but work is routed to it.
var ErrNoStreams = errors.New("app: domain has no streams")

// Options configures Init.
type Options struct {
	// Machine is the platform to run on. Required.
	Machine *platform.Machine
	// Mode selects real or simulated execution.
	Mode core.Mode
	// StreamsPerCard is the number of streams each card is divided
	// into (hStreams_app_init's streams-per-domain). Default 1.
	StreamsPerCard int
	// HostStreams is the number of host-as-target streams. Zero
	// means the host is not used as a compute target.
	HostStreams int
	// HostCores caps how many host cores the host streams share
	// (leaving the rest for the source thread). Zero means all.
	HostCores int
	// SourceOverhead is the modeled per-enqueue cost (Sim mode).
	SourceOverhead time.Duration
	// DisableBufferPool turns off the COI sink buffer pool (Real
	// mode).
	DisableBufferPool bool
	// Metrics receives the runtime's telemetry; nil uses the
	// process-wide metrics.Default() registry.
	Metrics *metrics.Registry
	// Flight receives completed-action causal spans; nil uses the
	// process-wide trace.DefaultFlight() recorder.
	Flight *trace.FlightRecorder
	// DisableCausalTrace turns span capture off entirely (see
	// core.Config.DisableCausalTrace).
	DisableCausalTrace bool
	// Faults installs a fault injector into the plumbing layers (see
	// core.Config.Faults). Real mode only; nil disables injection.
	Faults fault.Injector
	// Retry bounds re-attempts of transiently failing card actions
	// (see core.Config.Retry).
	Retry core.RetryPolicy
	// Deadline bounds one action's total time across attempts (see
	// core.Config.Deadline).
	Deadline time.Duration
	// Breaker configures per-domain quarantine (see
	// core.Config.Breaker).
	Breaker core.BreakerPolicy
	// OnEvent receives runtime lifecycle events (see
	// core.Config.OnEvent); nil falls back to the process-wide hook.
	OnEvent func(core.RuntimeEvent)
}

// App wraps a runtime with per-domain stream sets.
type App struct {
	RT *core.Runtime

	streams [][]*core.Stream // by domain index
	rr      []int            // round-robin cursor by domain index
}

// Init brings up the runtime and carves out the requested streams,
// dividing each domain's cores evenly (hStreams_app_init).
func Init(opt Options) (*App, error) {
	if opt.StreamsPerCard == 0 {
		opt.StreamsPerCard = 1
	}
	rt, err := core.Init(core.Config{
		Machine:            opt.Machine,
		Mode:               opt.Mode,
		SourceOverhead:     opt.SourceOverhead,
		DisableBufferPool:  opt.DisableBufferPool,
		Metrics:            opt.Metrics,
		Flight:             opt.Flight,
		DisableCausalTrace: opt.DisableCausalTrace,
		Faults:             opt.Faults,
		Retry:              opt.Retry,
		Deadline:           opt.Deadline,
		Breaker:            opt.Breaker,
		OnEvent:            opt.OnEvent,
	})
	if err != nil {
		return nil, err
	}
	a := &App{RT: rt}
	a.streams = make([][]*core.Stream, 1+rt.NumCards())
	a.rr = make([]int, 1+rt.NumCards())

	hostCores := rt.Host().Spec().Cores()
	if opt.HostCores > 0 && opt.HostCores < hostCores {
		hostCores = opt.HostCores
	}
	if opt.HostStreams > 0 {
		ss, err := a.carve(rt.Host(), hostCores, opt.HostStreams)
		if err != nil {
			rt.Fini()
			return nil, err
		}
		a.streams[0] = ss
	}
	for c := 0; c < rt.NumCards(); c++ {
		d := rt.Card(c)
		ss, err := a.carve(d, d.Spec().Cores(), opt.StreamsPerCard)
		if err != nil {
			rt.Fini()
			return nil, err
		}
		a.streams[d.Index()] = ss
	}
	return a, nil
}

// carve splits the first nCores cores of d into n contiguous streams
// of near-equal width.
func (a *App) carve(d *core.Domain, nCores, n int) ([]*core.Stream, error) {
	if n < 1 || n > nCores {
		return nil, fmt.Errorf("app: cannot carve %d streams from %d cores of %s", n, nCores, d.Spec().Name)
	}
	out := make([]*core.Stream, 0, n)
	base := nCores / n
	extra := nCores % n
	first := 0
	for i := 0; i < n; i++ {
		w := base
		if i < extra {
			w++
		}
		s, err := a.RT.StreamCreate(d, first, w)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		first += w
	}
	return out, nil
}

// Fini synchronizes and shuts the runtime down.
func (a *App) Fini() { a.RT.Fini() }

// StreamsOf returns the streams carved from domain d.
func (a *App) StreamsOf(d *core.Domain) []*core.Stream {
	return a.streams[d.Index()]
}

// HostStreams returns the host-as-target streams (may be empty).
func (a *App) HostStreams() []*core.Stream { return a.streams[0] }

// CardStreams returns card c's streams.
func (a *App) CardStreams(c int) []*core.Stream {
	return a.streams[a.RT.Card(c).Index()]
}

// AllStreams returns every stream, host first.
func (a *App) AllStreams() []*core.Stream {
	var out []*core.Stream
	for _, ss := range a.streams {
		out = append(out, ss...)
	}
	return out
}

// NextStream round-robins across domain d's streams.
func (a *App) NextStream(d *core.Domain) (*core.Stream, error) {
	ss := a.streams[d.Index()]
	if len(ss) == 0 {
		return nil, ErrNoStreams
	}
	s := ss[a.rr[d.Index()]%len(ss)]
	a.rr[d.Index()]++
	return s, nil
}

// ComputeDomains lists the domains that have at least one stream —
// the targets work can be distributed over.
func (a *App) ComputeDomains() []*core.Domain {
	var out []*core.Domain
	for _, d := range a.RT.Domains() {
		if len(a.streams[d.Index()]) > 0 {
			out = append(out, d)
		}
	}
	return out
}
