// Package lu implements the LU factorization (DGETRF) the paper
// discusses alongside matmul and Cholesky (§VI): "At present, DGETRF
// runs better on the host than the coprocessor, and an untiled scheme
// works best for sizes smaller than 4K."
//
// Two schemes are provided:
//
//   - Native: one untiled DGETRF call on a single domain (host or
//     card), with real blocked partial-pivoting LU in Real mode.
//   - Tiled: the right-looking tiled algorithm without cross-tile
//     pivoting (panel GETF2, row/column triangular solves, GEMM
//     trailing updates), distributed across streams and domains like
//     the Cholesky of Fig. 5. Real-mode inputs must be safely
//     factorizable without pivoting (diagonally dominant), which is
//     the standard restriction of tiled no-pivot LU.
package lu

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hstreams/internal/app"
	"hstreams/internal/blas"
	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/kernels"
	"hstreams/internal/matrix"
	"hstreams/internal/platform"
)

// ErrBadTiling reports an n not divisible by the tile size.
var ErrBadTiling = errors.New("lu: matrix size must be a multiple of the tile size")

// Result summarizes a run.
type Result struct {
	Seconds time.Duration
	GFlops  float64
}

// RunNative factorizes untiled on one domain: the host (domain < 0)
// or card `domain` — the scheme the paper found best below 4K.
func RunNative(machine *platform.Machine, mode core.Mode, n int, domain int, seed int64) (Result, error) {
	rt, err := core.Init(core.Config{Machine: machine, Mode: mode})
	if err != nil {
		return Result{}, err
	}
	defer rt.Fini()
	var d *core.Domain
	if domain < 0 {
		d = rt.Host()
	} else {
		d = rt.Card(domain)
	}
	s, err := rt.StreamCreate(d, 0, d.Spec().Cores())
	if err != nil {
		return Result{}, err
	}
	buf, err := rt.Alloc1D("Alu", int64(n)*int64(n)*8)
	if err != nil {
		return Result{}, err
	}
	var orig *matrix.Dense
	if mode == core.ModeReal {
		rt.RegisterKernel("dgetrf.native", func(ctx *core.KernelCtx) {
			nn := int(ctx.Args[0])
			a := floatbits.Float64s(ctx.Ops[0])
			ipiv := make([]int, nn)
			if err := blas.Dgetrf(nn, nn, a, nn, ipiv); err != nil {
				panic(err)
			}
		})
		orig = matrix.RandGeneral(n, n, seed+1)
		for i := 0; i < n; i++ {
			orig.Set(i, i, orig.At(i, i)+float64(n))
		}
		copy(buf.HostFloat64s(), orig.Data)
	} else {
		rt.RegisterKernel("dgetrf.native", func(*core.KernelCtx) {})
	}
	start := rt.Now()
	var last *core.Action
	if !d.IsHost() {
		if last, err = s.EnqueueXferAll(buf, core.ToSink); err != nil {
			return Result{}, err
		}
	}
	_ = last
	a, err := s.EnqueueCompute("dgetrf.native", []int64{int64(n)},
		[]core.Operand{buf.All(core.InOut)},
		platform.Cost{Kernel: platform.KDGETRF, Flops: blas.GetrfFlops(n), N: n})
	if err != nil {
		return Result{}, err
	}
	if !d.IsHost() {
		if _, err := s.EnqueueXferAll(buf, core.ToSource); err != nil {
			return Result{}, err
		}
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		return Result{}, err
	}
	_ = a
	elapsed := rt.Now() - start
	return Result{Seconds: elapsed, GFlops: platform.GFlops(blas.GetrfFlops(n), elapsed)}, nil
}

// Config describes a tiled run.
type Config struct {
	N, Tile int
	// UseHost includes host streams as a compute domain.
	UseHost bool
	// PanelOnHost places the GETF2 panels on the host.
	PanelOnHost bool
	// Verify (Real mode) checks L·U ≈ A on a diagonally dominant
	// input.
	Verify bool
	Seed   int64
}

// RunTiled executes the tiled no-pivot LU across the app's streams.
func RunTiled(a *app.App, cfg Config) (Result, error) {
	if cfg.N%cfg.Tile != 0 {
		return Result{}, ErrBadTiling
	}
	rt := a.RT
	nt := cfg.N / cfg.Tile
	tb := cfg.Tile
	tbytes := kernels.TileBytes(tb)
	buf, err := rt.Alloc1D("Alu", int64(nt*nt)*tbytes)
	if err != nil {
		return Result{}, err
	}
	var orig *matrix.Dense
	if rt.Mode() == core.ModeReal {
		kernels.Register(rt)
		orig = matrix.RandGeneral(cfg.N, cfg.N, cfg.Seed+1)
		for i := 0; i < cfg.N; i++ {
			orig.Set(i, i, orig.At(i, i)+float64(cfg.N))
		}
		packTiles(buf.HostFloat64s(), orig, nt, tb)
	}
	doms := a.ComputeDomains()
	if len(doms) == 0 {
		return Result{}, app.ErrNoStreams
	}
	var panelStream *core.Stream
	if cfg.PanelOnHost {
		host := rt.Host()
		var share *core.Stream
		if hs := a.HostStreams(); len(hs) > 0 {
			share = hs[0]
		}
		if panelStream, err = rt.StreamCreateOn(host, 0, host.Spec().Cores(), share); err != nil {
			return Result{}, err
		}
	}
	// Row AND column panels change owners per pass; for LU both the
	// row k and column k of tiles are produced in the panel phase and
	// broadcast. Updates of tile (i, j) belong to the owner of row i.
	owner := make([]*core.Domain, nt)
	for i := range owner {
		owner[i] = doms[i%len(doms)]
	}

	type tstate struct {
		last   *core.Action
		stream *core.Stream
		bcast  map[int]*core.Action
	}
	states := map[[2]int]*tstate{}
	st := func(i, j int) *tstate {
		k := [2]int{i, j}
		s, ok := states[k]
		if !ok {
			s = &tstate{bcast: map[int]*core.Action{}}
			states[k] = s
		}
		return s
	}
	off := func(i, j int) int64 { return kernels.TileOff(i, j, nt, tb) }
	dep := func(deps []*core.Action, t *tstate, s *core.Stream) []*core.Action {
		if t.last != nil && t.stream != s && !t.last.Completed() {
			deps = append(deps, t.last)
		}
		return deps
	}
	ensure := func(i, j int, s *core.Stream) ([]*core.Action, error) {
		t := st(i, j)
		d := s.Domain()
		if d.IsHost() {
			return dep(nil, t, s), nil
		}
		if x, ok := t.bcast[d.Index()]; ok {
			if x == nil {
				return dep(nil, t, s), nil
			}
			if x.Stream() != s && !x.Completed() {
				return []*core.Action{x}, nil
			}
			return nil, nil
		}
		deps := dep(nil, t, s)
		x, err := s.EnqueueXferDeps(buf, off(i, j), tbytes, core.ToSink, deps)
		if err != nil {
			return nil, err
		}
		t.bcast[d.Index()] = x
		return nil, nil
	}
	wrote := func(t *tstate, tileOff int64, act *core.Action, s *core.Stream) error {
		t.last, t.stream = act, s
		t.bcast = map[int]*core.Action{}
		if !s.Domain().IsHost() {
			t.bcast[s.Domain().Index()] = nil
			pull, err := s.EnqueueXfer(buf, tileOff, tbytes, core.ToSource)
			if err != nil {
				return err
			}
			t.last, t.stream = pull, s
		}
		return nil
	}
	pick := func(row int) (*core.Stream, error) {
		if cfg.PanelOnHost {
			if len(a.HostStreams()) > 0 {
				return a.NextStream(rt.Host())
			}
			return panelStream, nil
		}
		return a.NextStream(owner[row])
	}

	tb64 := int64(tb)
	start := rt.Now()
	for k := 0; k < nt; k++ {
		// Panel GETF2 on the diagonal tile.
		var ps *core.Stream
		if cfg.PanelOnHost {
			ps = panelStream
		} else if ps, err = a.NextStream(owner[k]); err != nil {
			return Result{}, err
		}
		deps, err := ensure(k, k, ps)
		if err != nil {
			return Result{}, err
		}
		deps = dep(deps, st(k, k), ps)
		panel, err := ps.EnqueueComputeDeps(kernels.Getf2, []int64{tb64},
			[]core.Operand{buf.Range(off(k, k), tbytes, core.InOut)},
			platform.Cost{Kernel: platform.KDPOTF2, Flops: 2 * float64(tb) * float64(tb) * float64(tb) / 3, N: tb},
			deps)
		if err != nil {
			return Result{}, err
		}
		if err := wrote(st(k, k), off(k, k), panel, ps); err != nil {
			return Result{}, err
		}

		// Row panel: U row k (solve L_kk·U_kj = A_kj).
		for j := k + 1; j < nt; j++ {
			s, err := pick(k)
			if err != nil {
				return Result{}, err
			}
			deps, err := ensure(k, k, s)
			if err != nil {
				return Result{}, err
			}
			if e2, err := ensure(k, j, s); err != nil {
				return Result{}, err
			} else {
				deps = append(deps, e2...)
			}
			deps = dep(deps, st(k, k), s)
			deps = dep(deps, st(k, j), s)
			act, err := s.EnqueueComputeDeps(kernels.TrsmLLNU, []int64{tb64, tb64},
				[]core.Operand{
					buf.Range(off(k, k), tbytes, core.In),
					buf.Range(off(k, j), tbytes, core.InOut),
				}, kernels.TrsmCost(tb, tb), deps)
			if err != nil {
				return Result{}, err
			}
			if err := wrote(st(k, j), off(k, j), act, s); err != nil {
				return Result{}, err
			}
		}
		// Column panel: L column k (solve L_ik·U_kk = A_ik).
		for i := k + 1; i < nt; i++ {
			s, err := pick(i)
			if err != nil {
				return Result{}, err
			}
			deps, err := ensure(k, k, s)
			if err != nil {
				return Result{}, err
			}
			if e2, err := ensure(i, k, s); err != nil {
				return Result{}, err
			} else {
				deps = append(deps, e2...)
			}
			deps = dep(deps, st(k, k), s)
			deps = dep(deps, st(i, k), s)
			act, err := s.EnqueueComputeDeps(kernels.TrsmRUNN, []int64{tb64, tb64},
				[]core.Operand{
					buf.Range(off(k, k), tbytes, core.In),
					buf.Range(off(i, k), tbytes, core.InOut),
				}, kernels.TrsmCost(tb, tb), deps)
			if err != nil {
				return Result{}, err
			}
			if err := wrote(st(i, k), off(i, k), act, s); err != nil {
				return Result{}, err
			}
		}
		// Trailing updates.
		for i := k + 1; i < nt; i++ {
			d := owner[i]
			for j := k + 1; j < nt; j++ {
				s, err := a.NextStream(d)
				if err != nil {
					return Result{}, err
				}
				var deps []*core.Action
				for _, tl := range [][2]int{{i, k}, {k, j}, {i, j}} {
					e, err := ensure(tl[0], tl[1], s)
					if err != nil {
						return Result{}, err
					}
					deps = append(deps, e...)
					deps = dep(deps, st(tl[0], tl[1]), s)
				}
				upd, err := s.EnqueueComputeDeps(kernels.DgemmSubNN, []int64{tb64, tb64, tb64},
					[]core.Operand{
						buf.Range(off(i, k), tbytes, core.In),
						buf.Range(off(k, j), tbytes, core.In),
						buf.Range(off(i, j), tbytes, core.InOut),
					}, kernels.GemmCost(tb, tb, tb), deps)
				if err != nil {
					return Result{}, err
				}
				t := st(i, j)
				t.last, t.stream = upd, s
				t.bcast = map[int]*core.Action{}
				if !d.IsHost() {
					t.bcast[d.Index()] = nil
					// Next panel row/column tiles go home eagerly.
					if i == k+1 || j == k+1 {
						pull, err := s.EnqueueXfer(buf, off(i, j), tbytes, core.ToSource)
						if err != nil {
							return Result{}, err
						}
						t.last, t.stream = pull, s
					}
				}
			}
		}
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		return Result{}, err
	}
	elapsed := rt.Now() - start

	if cfg.Verify && rt.Mode() == core.ModeReal {
		if err := verifyLU(buf.HostFloat64s(), orig, nt, tb); err != nil {
			return Result{}, err
		}
	}
	return Result{Seconds: elapsed, GFlops: platform.GFlops(blas.GetrfFlops(cfg.N), elapsed)}, nil
}

// packTiles stores the dense matrix tile-major.
func packTiles(dst []float64, src *matrix.Dense, nt, tb int) {
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < nt; ti++ {
			tile := dst[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				for ii := 0; ii < tb; ii++ {
					tile[ii+jj*tb] = src.At(ti*tb+ii, tj*tb+jj)
				}
			}
		}
	}
}

// verifyLU reconstructs L·U from the factored tiles and compares.
func verifyLU(data []float64, orig *matrix.Dense, nt, tb int) error {
	n := nt * tb
	l := matrix.New(n, n)
	u := matrix.New(n, n)
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < nt; ti++ {
			tile := data[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				for ii := 0; ii < tb; ii++ {
					gi, gj := ti*tb+ii, tj*tb+jj
					v := tile[ii+jj*tb]
					switch {
					case gi > gj:
						l.Set(gi, gj, v)
					case gi == gj:
						l.Set(gi, gj, 1)
						u.Set(gi, gj, v)
					default:
						u.Set(gi, gj, v)
					}
				}
			}
		}
	}
	var maxDiff float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			kmax := i
			if j < kmax {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				s += l.At(i, k) * u.At(k, j)
			}
			if d := math.Abs(s - orig.At(i, j)); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1e-8*float64(n) {
		return fmt.Errorf("lu: tiled reconstruction differs by %g", maxDiff)
	}
	return nil
}
