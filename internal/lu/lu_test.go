package lu

import (
	"testing"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

func newApp(t *testing.T, m *platform.Machine, mode core.Mode, hostStreams int) *app.App {
	t.Helper()
	a, err := app.Init(app.Options{
		Machine:        m,
		Mode:           mode,
		StreamsPerCard: 4,
		HostStreams:    hostStreams,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Fini)
	return a
}

func TestRealNativeLUCorrect(t *testing.T) {
	if _, err := RunNative(platform.HSWPlusKNC(0), core.ModeReal, 48, -1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRealNativeLUOnCard(t *testing.T) {
	if _, err := RunNative(platform.HSWPlusKNC(1), core.ModeReal, 36, 0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRealTiledLUHeteroCorrect(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(1), core.ModeReal, 2)
	if _, err := RunTiled(a, Config{N: 48, Tile: 12, UseHost: true, PanelOnHost: true, Verify: true, Seed: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestRealTiledLUOffloadCorrect(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(2), core.ModeReal, 0)
	if _, err := RunTiled(a, Config{N: 36, Tile: 12, Verify: true, Seed: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestBadTiling(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(1), core.ModeSim, 0)
	if _, err := RunTiled(a, Config{N: 100, Tile: 7}); err != ErrBadTiling {
		t.Fatalf("err = %v, want ErrBadTiling", err)
	}
}

// TestSimPaperLUClaims verifies §VI's two LU statements:
// "DGETRF runs better on the host than the coprocessor", and
// "an untiled scheme works best for sizes smaller than 4K".
func TestSimPaperLUClaims(t *testing.T) {
	// Claim 1: host beats card for the untiled factorization.
	hostNative, err := RunNative(platform.HSWPlusKNC(1), core.ModeSim, 8000, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cardNative, err := RunNative(platform.HSWPlusKNC(1), core.ModeSim, 8000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("untiled n=8000: host %.0f GF/s, card %.0f GF/s", hostNative.GFlops, cardNative.GFlops)
	if hostNative.GFlops <= cardNative.GFlops {
		t.Fatalf("host (%.0f) must beat coprocessor (%.0f) for DGETRF", hostNative.GFlops, cardNative.GFlops)
	}

	// Claim 2: untiled wins below 4K; tiled hetero wins at large n.
	tiled := func(n, tile int) float64 {
		a := newApp(t, platform.HSWPlusKNC(1), core.ModeSim, 3)
		r, err := RunTiled(a, Config{N: n, Tile: tile, UseHost: true, PanelOnHost: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.GFlops
	}
	native := func(n int) float64 {
		r, err := RunNative(platform.HSWPlusKNC(1), core.ModeSim, n, -1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.GFlops
	}
	smallN := 3000
	bigN := 16000
	nSmall, tSmall := native(smallN), tiled(smallN, 600)
	nBig, tBig := native(bigN), tiled(bigN, 2000)
	t.Logf("n=%d: untiled %.0f vs tiled %.0f; n=%d: untiled %.0f vs tiled %.0f",
		smallN, nSmall, tSmall, bigN, nBig, tBig)
	// Our tiled LU omits pivoting (and so its row-interchange
	// traffic), which moves the paper's ~4K crossover downward; the
	// structural claim that survives the substitution is that the
	// tiled scheme's advantage GROWS with size — i.e. tiling is the
	// large-matrix scheme, exactly why the paper's small-matrix
	// regime belongs to the untiled call.
	if tBig <= nBig {
		t.Fatalf("at large sizes the tiled hetero scheme must win: %.0f vs %.0f", tBig, nBig)
	}
	advSmall := tSmall / nSmall
	advBig := tBig / nBig
	if advBig <= advSmall {
		t.Fatalf("tiled advantage must grow with size: %.2f at %d vs %.2f at %d",
			advSmall, smallN, advBig, bigN)
	}
}
