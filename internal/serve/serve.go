// Package serve is the multi-tenant serving front end: an HTTP/JSON
// layer that multiplexes many independent clients onto one hStreams
// runtime. It is the first step from "single-process library" toward
// the ROADMAP's production serving system, and it follows the phased
// rollout shape streaming infrastructure tends to grow through:
//
//	registry → handlers → capability negotiation → shadow mode
//
// The tenant registry tracks each client's stream group, buffers, and
// quotas (registry.go). The handlers expose tenant lifecycle, buffer
// lifecycle, and work submission over HTTP/JSON (handlers.go).
// Capability negotiation lets a client verify the server speaks its
// dialect — kernels, execution mode, protocol version — before
// committing work (GET /v1/capabilities, POST /v1/negotiate). Shadow
// mode runs the full admission, quota, and accounting path without
// touching the runtime, so a new deployment can take mirrored traffic
// and prove its capacity math before it serves for real
// (Options.Shadow).
//
// Admission across tenants is weighted fair-share stride scheduling
// (admission.go): each tenant advances a virtual "pass" by
// strideScale/weight per dispatched action, and the dispatcher always
// serves the runnable tenant with the smallest pass, so under
// saturation tenants complete work in proportion to their weights.
// Within a tenant, work spreads round-robin over its stream group,
// and every stream carries a bounded queue (core.Config.MaxQueueDepth
// machinery) so a stalled sink back-pressures or sheds instead of
// absorbing the process.
//
// The runtime must be in Real mode: Sim mode's virtual clock assumes
// a single host goroutine, which concurrent HTTP handlers violate.
// Shadow mode needs no runtime at all.
package serve

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"

	"hstreams/internal/core"
	"hstreams/internal/metrics"
)

// Protocol version advertised by /v1/capabilities and checked by
// /v1/negotiate.
const protocolVersion = 1

// Serving-layer errors.
var (
	// ErrTenantExists reports a Register for a name already in use.
	ErrTenantExists = errors.New("serve: tenant exists")
	// ErrNoTenant reports an operation on an unknown tenant.
	ErrNoTenant = errors.New("serve: no such tenant")
	// ErrTenantClosing reports a submission to a tenant being deleted.
	ErrTenantClosing = errors.New("serve: tenant closing")
	// ErrPendingFull reports a submission shed because the tenant's
	// pending queue is at MaxPending and its policy is shed.
	ErrPendingFull = errors.New("serve: tenant pending queue full")
	// ErrQuota reports an allocation that would exceed a tenant quota.
	ErrQuota = errors.New("serve: quota exceeded")
	// ErrClosed reports an operation on a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrNeedRealMode reports a non-shadow server over a Sim runtime.
	ErrNeedRealMode = errors.New("serve: runtime must be in Real mode (Sim is single-goroutine)")
)

// Options configures New.
type Options struct {
	// Runtime is the hStreams runtime tenants share. Required unless
	// Shadow is set; must be in Real mode.
	Runtime *core.Runtime
	// Domain is the domain tenant stream groups bind to. Nil uses the
	// runtime's host domain.
	Domain *core.Domain
	// Registry receives the hstreams_tenant_* metric families. Nil
	// uses metrics.Default().
	Registry *metrics.Registry
	// MaxInflight bounds actions in service across all tenants — the
	// server-wide concurrency the fair-share scheduler divides.
	// Values < 1 default to 8.
	MaxInflight int
	// StreamsPerTenant is the default stream-group size for tenants
	// that do not set Quotas.MaxStreams. Values < 1 default to 2.
	StreamsPerTenant int
	// StreamWidth is the core count granted to each tenant stream.
	// Groups overlap on the domain's cores (the paper permits mapping
	// multiple streams onto common resources). Values < 1 default to 1.
	StreamWidth int
	// DefaultQueueDepth bounds each tenant stream's incomplete-action
	// window when Quotas.QueueDepth is unset. Values < 1 default
	// to 16.
	DefaultQueueDepth int
	// DefaultMaxPending bounds each tenant's admission queue when
	// Quotas.MaxPending is unset. Values < 1 default to 64.
	DefaultMaxPending int
	// Shadow runs the admission, quota, and accounting path without a
	// runtime: submissions are dispatched and completed immediately,
	// never executed. Deployments use it to validate capacity math on
	// mirrored traffic before serving for real.
	Shadow bool
}

// fill resolves defaults in place.
func (o *Options) fill() {
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
	if o.MaxInflight < 1 {
		o.MaxInflight = 8
	}
	if o.StreamsPerTenant < 1 {
		o.StreamsPerTenant = 2
	}
	if o.StreamWidth < 1 {
		o.StreamWidth = 1
	}
	if o.DefaultQueueDepth < 1 {
		o.DefaultQueueDepth = 16
	}
	if o.DefaultMaxPending < 1 {
		o.DefaultMaxPending = 64
	}
}

// Server is the serving front end. Create one with New, mount
// Handler on an HTTP listener (or call Start), and Close on the way
// out.
type Server struct {
	opt    Options
	rt     *core.Runtime
	domain *core.Domain
	mets   *tenantMetrics

	// mu guards the tenant table, every tenant's mutable state, and
	// the stride-scheduler pass values. cond broadcasts on queue-state
	// changes: new submissions, dispatches, releases, and shutdown.
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*Tenant
	gpass   float64 // pass of the last dispatched tenant
	closed  bool

	// slots is the server-wide in-service token bucket: MaxInflight
	// tokens; dispatch takes one, completion returns it.
	slots chan struct{}
	// dispatcherDone closes when the dispatcher loop exits.
	dispatcherDone chan struct{}
}

// New builds a serving front end over the given runtime and starts
// its admission dispatcher.
func New(opt Options) (*Server, error) {
	opt.fill()
	if !opt.Shadow {
		if opt.Runtime == nil {
			return nil, errors.New("serve: Options.Runtime required outside shadow mode")
		}
		if opt.Runtime.Mode() != core.ModeReal {
			return nil, ErrNeedRealMode
		}
	}
	s := &Server{
		opt:            opt,
		rt:             opt.Runtime,
		mets:           newTenantMetrics(opt.Registry),
		tenants:        make(map[string]*Tenant),
		slots:          make(chan struct{}, opt.MaxInflight),
		dispatcherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.rt != nil {
		s.domain = opt.Domain
		if s.domain == nil {
			s.domain = s.rt.Host()
		}
	}
	for i := 0; i < opt.MaxInflight; i++ {
		s.slots <- struct{}{}
	}
	go s.dispatcher()
	return s, nil
}

// Runtime returns the runtime the server multiplexes onto (nil in
// shadow mode).
func (s *Server) Runtime() *core.Runtime { return s.rt }

// Shadow reports whether the server runs in shadow mode.
func (s *Server) Shadow() bool { return s.opt.Shadow }

// Close stops admission, drains every tenant (waiting for in-service
// work to retire and freeing tenant buffers), and stops the
// dispatcher. The runtime itself is not finalized — the caller owns
// it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.mu.Unlock()
	var firstErr error
	for _, name := range names {
		if err := s.Unregister(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.dispatcherDone
	return firstErr
}

// Listener is a running serving endpoint bound to a TCP address.
type Listener struct {
	s   *Server
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (port 0 picks a free port) and serves the API in a
// background goroutine until Close.
func Start(addr string, opt Options) (*Listener, error) {
	s, err := New(opt)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return nil, err
	}
	l := &Listener{s: s, ln: ln, srv: &http.Server{Handler: s.Handler()}}
	go func() { _ = l.srv.Serve(ln) }()
	return l, nil
}

// Addr returns the bound address, useful when Start was given port 0.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Server returns the serving front end behind the listener.
func (l *Listener) Server() *Server { return l.s }

// Close stops the HTTP listener, then drains and closes the server.
func (l *Listener) Close() error {
	_ = l.srv.Close()
	return l.s.Close()
}

// String renders the server's shape for logs.
func (s *Server) String() string {
	mode := "real"
	if s.opt.Shadow {
		mode = "shadow"
	}
	return fmt.Sprintf("serve(%s, inflight=%d)", mode, s.opt.MaxInflight)
}
