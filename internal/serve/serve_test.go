package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
)

// testServer builds a Real-mode runtime with a spin kernel and a
// server over it, both on a private metrics registry.
func testServer(t *testing.T, opt Options) (*Server, *core.Runtime) {
	t.Helper()
	reg := metrics.New()
	rt, err := core.Init(core.Config{
		Machine: platform.HSWPlusKNC(0),
		Mode:    core.ModeReal,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	rt.RegisterKernel("spin", func(ctx *core.KernelCtx) {
		d := time.Duration(0)
		if len(ctx.Args) > 0 {
			d = time.Duration(ctx.Args[0])
		}
		time.Sleep(d)
	})
	rt.RegisterKernel("fill", func(ctx *core.KernelCtx) {
		if len(ctx.Ops) > 0 && len(ctx.Args) > 0 {
			for i := range ctx.Ops[0] {
				ctx.Ops[0][i] = byte(ctx.Args[0])
			}
		}
	})
	opt.Runtime = rt
	opt.Registry = reg
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, rt
}

func TestRegisterValidation(t *testing.T) {
	s, _ := testServer(t, Options{})
	if _, err := s.Register("", Quotas{}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if _, err := s.Register("a", Quotas{OnFull: "bounce"}); err == nil {
		t.Fatal("bad on_full accepted")
	}
	if _, err := s.Register("a", Quotas{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("a", Quotas{}); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate Register = %v, want ErrTenantExists", err)
	}
	if _, err := s.Register("b", Quotas{Weight: 3, MaxStreams: 1}); err != nil {
		t.Fatal(err)
	}
	ts := s.Tenants()
	if len(ts) != 2 || ts[0].Name != "a" || ts[1].Name != "b" {
		t.Fatalf("Tenants() = %+v, want [a b]", ts)
	}
	if ts[1].Quotas.Weight != 3 || len(ts[1].Streams) != 1 {
		t.Fatalf("tenant b = %+v, want weight 3, one stream", ts[1])
	}
	if err := s.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("a"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("second Unregister = %v, want ErrNoTenant", err)
	}
}

func TestBufferQuota(t *testing.T) {
	s, _ := testServer(t, Options{})
	if _, err := s.Register("q", Quotas{MaxBufferBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocBuffer("q", "a", 768); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocBuffer("q", "b", 512); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota alloc = %v, want ErrQuota", err)
	}
	if _, err := s.AllocBuffer("q", "a", 64); err == nil {
		t.Fatal("duplicate buffer name accepted")
	}
	// Freeing returns the quota immediately.
	if err := s.FreeBuffer("q", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocBuffer("q", "b", 1024); err != nil {
		t.Fatalf("alloc after free = %v, want quota returned", err)
	}
	if err := s.FreeBuffer("q", "missing"); err == nil {
		t.Fatal("freeing unknown buffer succeeded")
	}
}

// TestSubmitRoundTrip drives one waited fill through the whole
// admission path and checks the kernel really ran.
func TestSubmitRoundTrip(t *testing.T) {
	s, _ := testServer(t, Options{})
	if _, err := s.Register("rt", Quotas{}); err != nil {
		t.Fatal(err)
	}
	b, err := s.AllocBuffer("rt", "buf", 64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Submit(context.Background(), "rt", SubmitRequest{
		Kernel: "fill", Args: []int64{7}, Ops: []core.Operand{b.All(core.InOut)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range b.HostBytes() {
		if v != 7 {
			t.Fatalf("buf[%d] = %d after fill(7)", i, v)
		}
	}
	if err := s.Unregister("rt"); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitUnknownTenant(t *testing.T) {
	s, _ := testServer(t, Options{})
	if _, err := s.Submit(context.Background(), "ghost", SubmitRequest{Kernel: "spin"}); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("Submit to unknown tenant = %v, want ErrNoTenant", err)
	}
}

// TestPendingShed saturates a shed-policy tenant: with one in-service
// slot and a pending bound of 2, concurrent submitters must see
// ErrPendingFull.
func TestPendingShed(t *testing.T) {
	s, _ := testServer(t, Options{MaxInflight: 1})
	if _, err := s.Register("shed", Quotas{MaxPending: 2, OnFull: "shed"}); err != nil {
		t.Fatal(err)
	}
	var sheds, oks atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := s.Submit(context.Background(), "shed", SubmitRequest{
				Kernel: "spin", Args: []int64{int64(20 * time.Millisecond)},
			})
			switch {
			case errors.Is(err, ErrPendingFull):
				sheds.Add(1)
			case err == nil:
				_ = a.Wait()
				oks.Add(1)
			default:
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if sheds.Load() == 0 {
		t.Fatalf("16 submits against pending bound 2 never shed (ok=%d)", oks.Load())
	}
	if oks.Load() == 0 {
		t.Fatal("every submit shed — admission never served anyone")
	}
}

// TestSubmitBlocksAndHonorsCancel fills a block-policy tenant's
// pending queue, then checks a further Submit blocks until its
// context is cancelled.
func TestSubmitBlocksAndHonorsCancel(t *testing.T) {
	s, _ := testServer(t, Options{MaxInflight: 1})
	if _, err := s.Register("blk", Quotas{MaxPending: 1, OnFull: "block"}); err != nil {
		t.Fatal(err)
	}
	// Occupy the single slot, the dispatcher's popped-but-unslotted
	// submission, and the single pending seat with slow work.
	hold := func() {
		_, _ = s.Submit(context.Background(), "blk", SubmitRequest{
			Kernel: "spin", Args: []int64{int64(time.Second)},
		})
	}
	go hold()
	go hold()
	go hold()
	time.Sleep(50 * time.Millisecond) // let them reach slot + dispatcher + pending
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Submit(ctx, "blk", SubmitRequest{Kernel: "spin", Args: []int64{0}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Submit = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("Submit returned after %v — it never blocked", d)
	}
}

// TestFairness runs two closed-loop tenants with 2:1 weights to
// saturation and checks completed work lands within ±20% of the
// weight ratio (the serve-smoke CI gate pins ±10% over a longer run).
func TestFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive saturation test")
	}
	s, _ := testServer(t, Options{MaxInflight: 4, DefaultQueueDepth: 4})
	if _, err := s.Register("gold", Quotas{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("bronze", Quotas{Weight: 1}); err != nil {
		t.Fatal(err)
	}
	var gold, bronze atomic.Int64
	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	for _, tc := range []struct {
		name string
		n    *atomic.Int64
	}{{"gold", &gold}, {"bronze", &bronze}} {
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					a, err := s.Submit(context.Background(), tc.name, SubmitRequest{
						Kernel: "spin", Args: []int64{int64(2 * time.Millisecond)},
					})
					if err != nil {
						continue // shed under churn is fine; only completions count
					}
					if a.Wait() == nil {
						tc.n.Add(1)
					}
				}
			}()
		}
	}
	wg.Wait()
	g, b := gold.Load(), bronze.Load()
	if b == 0 {
		t.Fatalf("bronze starved: gold=%d bronze=0", g)
	}
	ratio := float64(g) / float64(b)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("gold/bronze = %d/%d = %.2f, want 2.0 ± 20%%", g, b, ratio)
	}
}

// TestShadowMode checks the no-runtime path: registration, buffer
// accounting, and submission all work, and dispatch is completion.
func TestShadowMode(t *testing.T) {
	s, err := New(Options{Shadow: true, Registry: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Register("sh", Quotas{MaxBufferBytes: 100}); err != nil {
		t.Fatal(err)
	}
	b, err := s.AllocBuffer("sh", "a", 80)
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatal("shadow alloc returned a real buffer")
	}
	if _, err := s.AllocBuffer("sh", "b", 40); !errors.Is(err, ErrQuota) {
		t.Fatalf("shadow over-quota alloc = %v, want ErrQuota", err)
	}
	a, err := s.Submit(context.Background(), "sh", SubmitRequest{Kernel: "anything"})
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		t.Fatal("shadow Submit returned a real action")
	}
	ts := s.Tenants()
	if len(ts) != 1 || ts[0].Actions != 1 || ts[0].Buffers != 1 || ts[0].BufferBytes != 80 {
		t.Fatalf("shadow status = %+v, want 1 action, 1 buffer, 80 bytes", ts)
	}
	if err := s.Unregister("sh"); err != nil {
		t.Fatal(err)
	}
}

// TestNewRejectsSimRuntime pins the mode gate: the Sim engine assumes
// a single host goroutine, so serving over it must be refused.
func TestNewRejectsSimRuntime(t *testing.T) {
	rt, err := core.Init(core.Config{
		Machine: platform.HSWPlusKNC(0),
		Mode:    core.ModeSim,
		Metrics: metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	if _, err := New(Options{Runtime: rt, Registry: metrics.New()}); !errors.Is(err, ErrNeedRealMode) {
		t.Fatalf("New over Sim runtime = %v, want ErrNeedRealMode", err)
	}
}

// --- HTTP layer ---

// postObj posts v as JSON and decodes the response into out.
func postObj(t *testing.T, client *http.Client, url string, v, out any) int {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPLifecycle(t *testing.T) {
	s, _ := testServer(t, Options{MaxInflight: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := hs.Client()

	// Capabilities advertise the registered kernels.
	resp, err := c.Get(hs.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	var caps capabilityDoc
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if caps.Mode != "real" || caps.Version != protocolVersion {
		t.Fatalf("capabilities = %+v", caps)
	}
	kernels := fmt.Sprint(caps.Kernels)
	if kernels != "[fill spin]" {
		t.Fatalf("kernels = %s, want [fill spin]", kernels)
	}

	// Negotiation: satisfied and unsatisfied.
	var neg negotiateResponse
	if st := postObj(t, c, hs.URL+"/v1/negotiate", negotiateRequest{Kernels: []string{"spin"}}, &neg); st != http.StatusOK || !neg.OK {
		t.Fatalf("negotiate(spin) = %d %+v", st, neg)
	}
	if st := postObj(t, c, hs.URL+"/v1/negotiate", negotiateRequest{Kernels: []string{"dgemm"}}, &neg); st != http.StatusConflict || neg.OK || len(neg.MissingKernels) != 1 {
		t.Fatalf("negotiate(dgemm) = %d %+v, want 409 with missing kernel", st, neg)
	}

	// Tenant + buffer + waited submit.
	if st := postObj(t, c, hs.URL+"/v1/tenants", createTenantRequest{Name: "web"}, nil); st != http.StatusCreated {
		t.Fatalf("create tenant = %d", st)
	}
	if st := postObj(t, c, hs.URL+"/v1/tenants", createTenantRequest{Name: "web"}, nil); st != http.StatusConflict {
		t.Fatalf("duplicate tenant = %d, want 409", st)
	}
	if st := postObj(t, c, hs.URL+"/v1/tenants/web/buffers", allocBufferRequest{Name: "b", Size: 64}, nil); st != http.StatusCreated {
		t.Fatalf("alloc buffer = %d", st)
	}
	var sub submitResponse
	st := postObj(t, c, hs.URL+"/v1/tenants/web/submit", submitRequest{
		Kernel:  "fill",
		Args:    []int64{9},
		Buffers: []operandRef{{Name: "b"}},
		Wait:    true,
	}, &sub)
	if st != http.StatusOK || sub.Status != "done" || sub.Error != "" {
		t.Fatalf("submit = %d %+v", st, sub)
	}
	// Submitting against an unknown tenant and buffer 404s.
	if st := postObj(t, c, hs.URL+"/v1/tenants/ghost/submit", submitRequest{Kernel: "spin"}, nil); st != http.StatusNotFound {
		t.Fatalf("submit to ghost = %d, want 404", st)
	}
	if st := postObj(t, c, hs.URL+"/v1/tenants/web/submit", submitRequest{Kernel: "fill", Buffers: []operandRef{{Name: "nope"}}}, nil); st != http.StatusBadRequest {
		t.Fatalf("submit with unknown buffer = %d, want 400", st)
	}

	// Free the buffer, then submit against it: 400 family (gone).
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/tenants/web/buffers/b", nil)
	dresp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("free buffer = %d", dresp.StatusCode)
	}

	// Healthz is green; /metrics exposes the tenant families.
	hresp, err := c.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}
	mresp, err := c.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(buf.Bytes(), []byte("hstreams_tenant_actions_total")) {
		t.Fatal("/metrics missing hstreams_tenant_actions_total")
	}

	// Delete the tenant; its status endpoint then 404s.
	req, _ = http.NewRequest(http.MethodDelete, hs.URL+"/v1/tenants/web", nil)
	dresp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete tenant = %d", dresp.StatusCode)
	}
	gresp, err := c.Get(hs.URL + "/v1/tenants/web")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("get deleted tenant = %d, want 404", gresp.StatusCode)
	}
}

// TestHTTPShed pins the 429 contract: an overloaded shed tenant
// returns 429 with a machine-readable reason.
func TestHTTPShed(t *testing.T) {
	s, _ := testServer(t, Options{MaxInflight: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := hs.Client()
	if st := postObj(t, c, hs.URL+"/v1/tenants", createTenantRequest{
		Name:   "busy",
		Quotas: Quotas{MaxPending: 1, OnFull: "shed"},
	}, nil); st != http.StatusCreated {
		t.Fatalf("create tenant = %d", st)
	}
	var saw429 atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var p errorPayload
			st := postObj(t, c, hs.URL+"/v1/tenants/busy/submit", submitRequest{
				Kernel: "spin", Args: []int64{int64(50 * time.Millisecond)}, Wait: true,
			}, &p)
			if st == http.StatusTooManyRequests {
				if p.Reason != "pending-full" && p.Reason != "stream-queue-full" {
					t.Errorf("429 reason = %q", p.Reason)
				}
				saw429.Store(true)
			}
		}()
	}
	wg.Wait()
	if !saw429.Load() {
		t.Fatal("12 concurrent submits against pending bound 1 never returned 429")
	}
}
