package serve

import (
	"fmt"
	"sort"

	"hstreams/internal/core"
	"hstreams/internal/metrics"
)

// Quotas bounds one tenant's footprint on the shared runtime. Zero
// values take the server defaults (Options); Weight additionally
// drives the fair-share scheduler.
type Quotas struct {
	// Weight is the tenant's fair-share weight: under saturation,
	// tenants complete work in proportion to their weights. Values
	// < 1 default to 1.
	Weight int `json:"weight"`
	// MaxStreams is the tenant's stream-group size. 0 takes
	// Options.StreamsPerTenant.
	MaxStreams int `json:"max_streams,omitempty"`
	// MaxBufferBytes caps the tenant's total live buffer bytes.
	// 0 means unlimited.
	MaxBufferBytes int64 `json:"max_buffer_bytes,omitempty"`
	// QueueDepth bounds each tenant stream's incomplete-action
	// window. 0 takes Options.DefaultQueueDepth.
	QueueDepth int `json:"queue_depth,omitempty"`
	// OnFull picks the behavior when the tenant's pending queue is at
	// MaxPending: "block" (backpressure the submitter; the default)
	// or "shed" (fail fast with 429 / ErrPendingFull). Tenant streams
	// always shed at QueueDepth — the dispatcher never parks on a
	// full stream.
	OnFull string `json:"on_full,omitempty"`
	// MaxPending bounds submissions admitted but not yet dispatched.
	// 0 takes Options.DefaultMaxPending.
	MaxPending int `json:"max_pending,omitempty"`
}

// Tenant is one registered client: a stream group, a buffer set, and
// an admission queue, all bounded by its Quotas. All mutable state is
// guarded by the server's lock.
type Tenant struct {
	name    string
	q       Quotas
	streams []*core.Stream
	next    int // round-robin cursor over streams
	bufs    map[string]*core.Buf
	// bufBytes tracks live buffer bytes against MaxBufferBytes; in
	// shadow mode (no runtime) bufs values are nil and only the
	// accounting exists.
	bufBytes   int64
	shadowBufs map[string]int64

	pending  []*submission
	inflight int
	closing  bool

	// pass is the stride-scheduler virtual time: it advances by
	// strideScale/Weight per dispatch, and the runnable tenant with
	// the smallest pass is served next.
	pass float64

	// Resolved per-tenant metric handles.
	mActions  *metrics.Counter
	mInflight *metrics.Gauge
	mPending  *metrics.Gauge
	mBufBytes *metrics.Gauge
	mStreams  *metrics.Gauge
	mWeight   *metrics.Gauge
	mWait     *metrics.Histogram
}

// TenantStatus is a point-in-time snapshot of one tenant, served by
// GET /v1/tenants and /debug/tenants.
type TenantStatus struct {
	// Name is the tenant's registered name.
	Name string `json:"name"`
	// Quotas echoes the tenant's resolved quota set.
	Quotas Quotas `json:"quotas"`
	// Streams lists the tenant's stream names.
	Streams []string `json:"streams"`
	// Buffers counts the tenant's live buffers.
	Buffers int `json:"buffers"`
	// BufferBytes is the tenant's live buffer footprint.
	BufferBytes int64 `json:"buffer_bytes"`
	// Pending counts admitted-but-undispatched submissions.
	Pending int `json:"pending"`
	// Inflight counts dispatched-but-incomplete submissions.
	Inflight int `json:"inflight"`
	// Actions is the tenant's completed-action total.
	Actions int64 `json:"actions"`
	// Pass is the stride scheduler's virtual time for the tenant —
	// runnable tenants are served smallest-pass first.
	Pass float64 `json:"pass"`
	// Closing reports a tenant mid-deletion.
	Closing bool `json:"closing,omitempty"`
}

// Register creates a tenant with the given quotas and builds its
// stream group. Stream groups overlap on the serving domain's cores;
// isolation is by admission, not by core partitioning.
func (s *Server) Register(name string, q Quotas) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty tenant name")
	}
	if q.Weight < 1 {
		q.Weight = 1
	}
	if q.MaxStreams < 1 {
		q.MaxStreams = s.opt.StreamsPerTenant
	}
	if q.QueueDepth < 1 {
		q.QueueDepth = s.opt.DefaultQueueDepth
	}
	if q.MaxPending < 1 {
		q.MaxPending = s.opt.DefaultMaxPending
	}
	switch q.OnFull {
	case "":
		q.OnFull = "block"
	case "block", "shed":
	default:
		return nil, fmt.Errorf("serve: bad on_full %q (want block or shed)", q.OnFull)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := s.tenants[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, name)
	}
	t := &Tenant{
		name: name,
		q:    q,
		bufs: make(map[string]*core.Buf),
		// A fresh tenant starts at the global pass so it cannot burn
		// banked credit against incumbents.
		pass:      s.gpass,
		mActions:  s.mets.actions.With(name),
		mInflight: s.mets.inflight.With(name),
		mPending:  s.mets.pending.With(name),
		mBufBytes: s.mets.bufBytes.With(name),
		mStreams:  s.mets.streams.With(name),
		mWeight:   s.mets.weight.With(name),
		mWait:     s.mets.wait.With(name),
	}
	if s.opt.Shadow {
		t.shadowBufs = make(map[string]int64)
	}
	s.tenants[name] = t
	s.mu.Unlock()

	if s.rt != nil {
		for i := 0; i < q.MaxStreams; i++ {
			st, err := s.rt.StreamCreate(s.domain, 0, s.opt.StreamWidth)
			if err != nil {
				s.mu.Lock()
				delete(s.tenants, name)
				s.mu.Unlock()
				return nil, fmt.Errorf("serve: creating stream %d for %q: %w", i, name, err)
			}
			// Tenant streams always shed at the bound: the dispatcher
			// must never park on a full stream while holding a slot.
			st.SetQueueBound(q.QueueDepth, core.QueueShed)
			t.streams = append(t.streams, st)
		}
	}
	t.mWeight.Set(int64(q.Weight))
	t.mStreams.Set(int64(len(t.streams)))
	return t, nil
}

// Unregister drains and deletes a tenant: new submissions are
// refused, pending ones are shed, in-service ones retire, streams are
// destroyed, and every tenant buffer is freed.
func (s *Server) Unregister(name string) error {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	if t.closing {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrTenantClosing, name)
	}
	t.closing = true
	// Shed everything still waiting for dispatch.
	pending := t.pending
	t.pending = nil
	t.mPending.Set(0)
	for _, sub := range pending {
		sub.finish(subResult{err: fmt.Errorf("%w: %q", ErrTenantClosing, name)})
		s.mets.shed.With(name, "tenant-closing").Inc()
	}
	// Wait for in-service submissions to retire.
	for t.inflight > 0 {
		s.cond.Wait()
	}
	delete(s.tenants, name)
	bufs := t.bufs
	t.bufs = nil
	streams := t.streams
	s.mu.Unlock()

	var firstErr error
	for _, st := range streams {
		if err := st.Destroy(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, b := range bufs {
		if b != nil {
			if err := b.Free(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	t.mBufBytes.Set(0)
	t.mStreams.Set(0)
	t.mInflight.Set(0)
	return firstErr
}

// tenant resolves a live tenant by name.
func (s *Server) tenant(name string) (*Tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	if t.closing {
		return nil, fmt.Errorf("%w: %q", ErrTenantClosing, name)
	}
	return t, nil
}

// Tenants snapshots every tenant's status, sorted by name — the
// payload behind GET /v1/tenants and the debug server's
// /debug/tenants.
func (s *Server) Tenants() []TenantStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStatus, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, s.statusLocked(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// statusLocked snapshots one tenant. Caller holds s.mu.
func (s *Server) statusLocked(t *Tenant) TenantStatus {
	st := TenantStatus{
		Name:        t.name,
		Quotas:      t.q,
		Buffers:     len(t.bufs) + len(t.shadowBufs),
		BufferBytes: t.bufBytes,
		Pending:     len(t.pending),
		Inflight:    t.inflight,
		Actions:     t.mActions.Value(),
		Pass:        t.pass,
		Closing:     t.closing,
	}
	for _, str := range t.streams {
		st.Streams = append(st.Streams, str.Name())
	}
	return st
}

// AllocBuffer creates a named buffer owned by the tenant, counted
// against its MaxBufferBytes quota. In shadow mode only the
// accounting exists.
func (s *Server) AllocBuffer(tenant, name string, size int64) (*core.Buf, error) {
	if size <= 0 {
		return nil, core.ErrBadBufferSize
	}
	t, err := s.tenant(tenant)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, ok := t.bufs[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: buffer %q exists for tenant %q", name, tenant)
	}
	if _, ok := t.shadowBufs[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: buffer %q exists for tenant %q", name, tenant)
	}
	if t.q.MaxBufferBytes > 0 && t.bufBytes+size > t.q.MaxBufferBytes {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q buffer bytes %d+%d > %d",
			ErrQuota, tenant, t.bufBytes, size, t.q.MaxBufferBytes)
	}
	// Reserve the quota before the (lock-free) runtime allocation so
	// concurrent allocs cannot oversubscribe it.
	t.bufBytes += size
	s.mu.Unlock()

	var b *core.Buf
	if s.rt != nil {
		b, err = s.rt.Alloc1D(tenant+"/"+name, size)
		if err != nil {
			s.mu.Lock()
			t.bufBytes -= size
			s.mu.Unlock()
			return nil, err
		}
	}
	s.mu.Lock()
	if s.opt.Shadow {
		t.shadowBufs[name] = size
	} else {
		t.bufs[name] = b
	}
	s.mu.Unlock()
	t.mBufBytes.Add(size)
	return b, nil
}

// FreeBuffer frees a tenant buffer and returns its bytes to the
// quota. Reclamation defers until in-flight references retire (see
// core.Buf.Free); the quota is returned immediately — the tenant
// committed to the free.
func (s *Server) FreeBuffer(tenant, name string) error {
	t, err := s.tenant(tenant)
	if err != nil {
		return err
	}
	s.mu.Lock()
	b, ok := t.bufs[name]
	size := int64(0)
	if ok {
		size = b.Size()
		delete(t.bufs, name)
	} else if sz, sok := t.shadowBufs[name]; sok {
		ok, size = true, sz
		delete(t.shadowBufs, name)
	}
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: no buffer %q for tenant %q", name, tenant)
	}
	t.bufBytes -= size
	s.mu.Unlock()
	t.mBufBytes.Add(-size)
	if b != nil {
		return b.Free()
	}
	return nil
}

// buffer resolves a tenant buffer by name.
func (s *Server) buffer(t *Tenant, name string) (*core.Buf, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := t.bufs[name]
	if !ok {
		return nil, fmt.Errorf("serve: no buffer %q for tenant %q", name, t.name)
	}
	return b, nil
}
