package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hstreams/internal/core"
)

// Handler returns the serving API mux:
//
//	GET    /v1/capabilities                        server capability document
//	POST   /v1/negotiate                           capability negotiation
//	GET    /v1/tenants                             list tenant status
//	POST   /v1/tenants                             register a tenant
//	GET    /v1/tenants/{tenant}                    one tenant's status
//	DELETE /v1/tenants/{tenant}                    drain and delete a tenant
//	POST   /v1/tenants/{tenant}/buffers            allocate a tenant buffer
//	DELETE /v1/tenants/{tenant}/buffers/{buffer}   free a tenant buffer
//	POST   /v1/tenants/{tenant}/submit             submit a compute action
//	GET    /metrics                                the metrics registry
//	GET    /healthz                                liveness (500 on runtime error)
//
// Everything speaks JSON; errors come back as {"error": "..."} with
// 404 (no tenant/buffer), 409 (exists / negotiation failed), 413
// (quota), 429 (shed), or 400.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	mux.HandleFunc("POST /v1/negotiate", s.handleNegotiate)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleGetTenant)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleDeleteTenant)
	mux.HandleFunc("POST /v1/tenants/{tenant}/buffers", s.handleAllocBuffer)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/buffers/{buffer}", s.handleFreeBuffer)
	mux.HandleFunc("POST /v1/tenants/{tenant}/submit", s.handleSubmit)
	mux.Handle("GET /metrics", s.opt.Registry)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorPayload is the JSON error envelope.
type errorPayload struct {
	// Error is the failure rendered as text.
	Error string `json:"error"`
	// Reason is a machine-readable cause for shed responses
	// (pending-full, stream-queue-full).
	Reason string `json:"reason,omitempty"`
}

// writeErr maps serving errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	p := errorPayload{Error: err.Error()}
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoTenant):
		status = http.StatusNotFound
	case errors.Is(err, ErrTenantExists):
		status = http.StatusConflict
	case errors.Is(err, ErrPendingFull):
		status, p.Reason = http.StatusTooManyRequests, "pending-full"
	case errors.Is(err, core.ErrQueueFull):
		status, p.Reason = http.StatusTooManyRequests, "stream-queue-full"
	case errors.Is(err, ErrQuota):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrTenantClosing), errors.Is(err, ErrClosed):
		status = http.StatusConflict
	case errors.Is(err, core.ErrBufferFreed):
		status = http.StatusGone
	case errors.Is(err, core.ErrNoKernel):
		status = http.StatusNotFound
	}
	writeJSON(w, status, p)
}

// decode parses the request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// capabilityDoc is the GET /v1/capabilities response: what this
// server can do, for clients to negotiate against.
type capabilityDoc struct {
	// Version is the serving protocol version.
	Version int `json:"version"`
	// Mode is "real" or "shadow".
	Mode string `json:"mode"`
	// MaxInflight is the server-wide in-service bound.
	MaxInflight int `json:"max_inflight"`
	// StreamsPerTenant is the default stream-group size.
	StreamsPerTenant int `json:"streams_per_tenant"`
	// DefaultQueueDepth is the default per-stream queue bound.
	DefaultQueueDepth int `json:"default_queue_depth"`
	// Kernels lists the registered kernel names (empty in shadow).
	Kernels []string `json:"kernels"`
	// Domains lists the runtime's domains (empty in shadow).
	Domains []domainDoc `json:"domains,omitempty"`
}

// domainDoc describes one runtime domain in the capability document.
type domainDoc struct {
	// Name is the domain name.
	Name string `json:"name"`
	// Cores is the domain's core count.
	Cores int `json:"cores"`
}

// capabilities builds the server's capability document.
func (s *Server) capabilities() capabilityDoc {
	doc := capabilityDoc{
		Version:           protocolVersion,
		Mode:              "real",
		MaxInflight:       s.opt.MaxInflight,
		StreamsPerTenant:  s.opt.StreamsPerTenant,
		DefaultQueueDepth: s.opt.DefaultQueueDepth,
		Kernels:           []string{},
	}
	if s.opt.Shadow {
		doc.Mode = "shadow"
	}
	if s.rt != nil {
		doc.Kernels = s.rt.Kernels()
		for _, d := range s.rt.Domains() {
			doc.Domains = append(doc.Domains, domainDoc{Name: d.Spec().Name, Cores: d.Spec().Cores()})
		}
	}
	return doc
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.capabilities())
}

// negotiateRequest is what a client requires of the server.
type negotiateRequest struct {
	// Version is the protocol version the client speaks; 0 accepts any.
	Version int `json:"version,omitempty"`
	// Kernels are kernel names the client will submit.
	Kernels []string `json:"kernels,omitempty"`
	// Mode, when set, requires "real" or "shadow" execution.
	Mode string `json:"mode,omitempty"`
}

// negotiateResponse reports whether the server satisfies the client.
type negotiateResponse struct {
	// OK is true when every requirement is met.
	OK bool `json:"ok"`
	// MissingKernels lists required kernels the server lacks.
	MissingKernels []string `json:"missing_kernels,omitempty"`
	// Mismatch describes a version or mode mismatch.
	Mismatch string `json:"mismatch,omitempty"`
	// Capabilities echoes the full capability document so one round
	// trip suffices.
	Capabilities capabilityDoc `json:"capabilities"`
}

func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	var req negotiateRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad negotiate body: %w", err))
		return
	}
	caps := s.capabilities()
	resp := negotiateResponse{OK: true, Capabilities: caps}
	if req.Version != 0 && req.Version != caps.Version {
		resp.OK = false
		resp.Mismatch = fmt.Sprintf("version %d != %d", req.Version, caps.Version)
	}
	if req.Mode != "" && req.Mode != caps.Mode {
		resp.OK = false
		resp.Mismatch = fmt.Sprintf("mode %q != %q", req.Mode, caps.Mode)
	}
	have := make(map[string]bool, len(caps.Kernels))
	for _, k := range caps.Kernels {
		have[k] = true
	}
	for _, k := range req.Kernels {
		// Shadow mode executes nothing, so every kernel "exists".
		if !have[k] && !s.opt.Shadow {
			resp.OK = false
			resp.MissingKernels = append(resp.MissingKernels, k)
		}
	}
	status := http.StatusOK
	if !resp.OK {
		status = http.StatusConflict
	}
	writeJSON(w, status, resp)
}

// createTenantRequest is the POST /v1/tenants body.
type createTenantRequest struct {
	// Name is the tenant's unique name.
	Name string `json:"name"`
	// Quotas configures the tenant's bounds; zero fields take server
	// defaults.
	Quotas
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req createTenantRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad tenant body: %w", err))
		return
	}
	s.mets.requests.With(req.Name, "tenants").Inc()
	if _, err := s.Register(req.Name, req.Quotas); err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	st := s.statusLocked(s.tenants[req.Name])
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Tenants())
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	s.mu.Lock()
	t, ok := s.tenants[name]
	var st TenantStatus
	if ok {
		st = s.statusLocked(t)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, fmt.Errorf("%w: %q", ErrNoTenant, name))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	s.mets.requests.With(name, "tenants").Inc()
	if err := s.Unregister(name); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// allocBufferRequest is the POST /v1/tenants/{tenant}/buffers body.
type allocBufferRequest struct {
	// Name is the buffer's tenant-unique name.
	Name string `json:"name"`
	// Size is the buffer length in bytes.
	Size int64 `json:"size"`
}

// bufferResponse describes an allocated buffer.
type bufferResponse struct {
	// Name is the buffer's tenant-scoped name.
	Name string `json:"name"`
	// Size is the buffer length in bytes.
	Size int64 `json:"size"`
	// ProxyBase is the buffer's source proxy base address (0 in
	// shadow mode).
	ProxyBase uint64 `json:"proxy_base"`
}

func (s *Server) handleAllocBuffer(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	s.mets.requests.With(tenant, "buffers").Inc()
	var req allocBufferRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad buffer body: %w", err))
		return
	}
	b, err := s.AllocBuffer(tenant, req.Name, req.Size)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := bufferResponse{Name: req.Name, Size: req.Size}
	if b != nil {
		resp.ProxyBase = b.ProxyBase()
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleFreeBuffer(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	s.mets.requests.With(tenant, "buffers").Inc()
	if err := s.FreeBuffer(tenant, r.PathValue("buffer")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"freed": r.PathValue("buffer")})
}

// submitRequest is the POST /v1/tenants/{tenant}/submit body.
type submitRequest struct {
	// Kernel names the registered kernel to invoke.
	Kernel string `json:"kernel"`
	// Args are the kernel's scalar arguments.
	Args []int64 `json:"args,omitempty"`
	// Buffers declare the action's memory operands.
	Buffers []operandRef `json:"buffers,omitempty"`
	// Wait, when true, holds the response until the action completes.
	Wait bool `json:"wait,omitempty"`
}

// operandRef names a tenant buffer range and its access mode.
type operandRef struct {
	// Name is the tenant buffer's name.
	Name string `json:"name"`
	// Access is "in", "out", or "inout" (default "inout").
	Access string `json:"access,omitempty"`
	// Off/Len select a byte range; Len 0 means the whole buffer.
	Off int64 `json:"off,omitempty"`
	Len int64 `json:"len,omitempty"`
}

// submitResponse reports a submission's outcome.
type submitResponse struct {
	// Status is "done" (wait or shadow) or "accepted".
	Status string `json:"status"`
	// Action is the launched action's id (0 in shadow mode).
	Action uint64 `json:"action,omitempty"`
	// ElapsedNS is submit-to-completion time for waited submissions.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Error carries the action's execution error for waited
	// submissions that failed.
	Error string `json:"error,omitempty"`
}

// resolveOps turns operand references into core operands.
func (s *Server) resolveOps(t *Tenant, refs []operandRef) ([]core.Operand, error) {
	ops := make([]core.Operand, 0, len(refs))
	for _, ref := range refs {
		b, err := s.buffer(t, ref.Name)
		if err != nil {
			return nil, err
		}
		acc := core.InOut
		switch ref.Access {
		case "", "inout":
		case "in":
			acc = core.In
		case "out":
			acc = core.Out
		default:
			return nil, fmt.Errorf("serve: bad access %q (want in, out, or inout)", ref.Access)
		}
		n := ref.Len
		if n == 0 {
			n = b.Size() - ref.Off
		}
		ops = append(ops, core.Operand{Buf: b, Off: ref.Off, Len: n, Acc: acc})
	}
	return ops, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	s.mets.requests.With(tenant, "submit").Inc()
	var req submitRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad submit body: %w", err))
		return
	}
	var ops []core.Operand
	if !s.opt.Shadow && len(req.Buffers) > 0 {
		t, err := s.tenant(tenant)
		if err != nil {
			writeErr(w, err)
			return
		}
		if ops, err = s.resolveOps(t, req.Buffers); err != nil {
			writeErr(w, err)
			return
		}
	}
	start := time.Now()
	a, err := s.Submit(r.Context(), tenant, SubmitRequest{Kernel: req.Kernel, Args: req.Args, Ops: ops})
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := submitResponse{Status: "done"}
	switch {
	case a == nil: // shadow: dispatch is completion
	case req.Wait:
		if werr := a.Wait(); werr != nil {
			resp.Error = werr.Error()
		}
		resp.Action = a.ID()
		resp.ElapsedNS = time.Since(start).Nanoseconds()
	default:
		resp.Status = "accepted"
		resp.Action = a.ID()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.rt != nil {
		if err := s.rt.Err(); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorPayload{Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
