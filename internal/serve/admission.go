package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/platform"
)

// strideScale is the stride numerator: a tenant of weight w advances
// its pass by strideScale/w per dispatched action, so relative
// dispatch rates equal relative weights regardless of absolute
// magnitudes.
const strideScale = 1 << 20

// submission is one admitted-but-not-yet-dispatched action. Ownership
// moves from the tenant's pending queue to the dispatcher at pop;
// whoever owns it calls finish exactly once.
type submission struct {
	t      *Tenant
	kernel string
	args   []int64
	ops    []core.Operand
	enq    time.Time
	done   chan subResult // buffered(1); finish never blocks
}

// subResult is what a submission resolves to: a launched action, a
// shadow-mode completion (both nil), or an admission/enqueue error.
type subResult struct {
	action *core.Action
	err    error
}

// finish resolves the submission. Single caller by ownership; the
// buffered channel makes it non-blocking.
func (sub *submission) finish(r subResult) { sub.done <- r }

// SubmitRequest describes one compute action a tenant submits.
type SubmitRequest struct {
	// Kernel names a registered kernel.
	Kernel string
	// Args are the kernel's scalar arguments.
	Args []int64
	// Ops are the action's memory operands (resolved tenant buffers).
	Ops []core.Operand
}

// Submit admits one compute action for the tenant and blocks until
// the fair-share dispatcher has enqueued it into a tenant stream
// (or refused it). The returned action is the completion event; it is
// nil in shadow mode, where dispatch is the completion. When the
// tenant's pending queue is at MaxPending, Submit blocks
// (OnFull "block", honoring ctx cancellation) or fails fast with
// ErrPendingFull (OnFull "shed").
func (s *Server) Submit(ctx context.Context, tenant string, req SubmitRequest) (*core.Action, error) {
	s.mu.Lock()
	t, ok := s.tenants[tenant]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoTenant, tenant)
	}
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if t.closing {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrTenantClosing, tenant)
		}
		if len(t.pending) < t.q.MaxPending {
			break
		}
		if t.q.OnFull == "shed" {
			s.mu.Unlock()
			s.mets.shed.With(tenant, "pending-full").Inc()
			return nil, fmt.Errorf("%w: %q at %d", ErrPendingFull, tenant, t.q.MaxPending)
		}
		if err := ctx.Err(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		// Blocking backpressure: wait for queue space. The AfterFunc
		// broadcast is registered under s.mu, so a cancellation cannot
		// slip between the Err check above and the Wait below.
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		s.cond.Wait()
		stop()
	}
	sub := &submission{
		t:      t,
		kernel: req.Kernel,
		args:   req.Args,
		ops:    req.Ops,
		enq:    time.Now(),
		done:   make(chan subResult, 1),
	}
	t.pending = append(t.pending, sub)
	t.mPending.Set(int64(len(t.pending)))
	s.cond.Broadcast()
	s.mu.Unlock()

	r := <-sub.done
	if r.err != nil {
		return nil, r.err
	}
	return r.action, nil
}

// pickLocked returns the runnable tenant (non-empty pending queue)
// with the smallest pass — the stride scheduling rule. Ties break by
// name so the order is deterministic. Caller holds s.mu.
func (s *Server) pickLocked() *Tenant {
	var best *Tenant
	for _, t := range s.tenants {
		if len(t.pending) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass ||
			(t.pass == best.pass && t.name < best.name) {
			best = t
		}
	}
	return best
}

// dispatcher is the admission loop: repeatedly pick the minimum-pass
// runnable tenant, charge its stride, take a server-wide in-service
// slot, and hand the submission to a worker goroutine. Under
// saturation every tenant always has pending work, so dispatch counts
// — and therefore completed-action throughput — converge to the
// weight ratios.
func (s *Server) dispatcher() {
	defer close(s.dispatcherDone)
	s.mu.Lock()
	for {
		t := s.pickLocked()
		if t == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		sub := t.pending[0]
		copy(t.pending, t.pending[1:])
		t.pending[len(t.pending)-1] = nil
		t.pending = t.pending[:len(t.pending)-1]
		t.pass += strideScale / float64(t.q.Weight)
		s.gpass = t.pass
		t.inflight++
		t.mPending.Set(int64(len(t.pending)))
		t.mInflight.Set(int64(t.inflight))
		s.cond.Broadcast() // pending space freed; blocked Submits retry
		s.mu.Unlock()

		<-s.slots // take an in-service slot; completions return it
		t.mWait.Observe(time.Since(sub.enq))
		go s.run(t, sub)
		s.mu.Lock()
	}
}

// run executes one dispatched submission: enqueue into the tenant's
// next stream (round-robin over the group), resolve the submitter,
// wait for retirement, and return the slot. In shadow mode dispatch
// is completion.
func (s *Server) run(t *Tenant, sub *submission) {
	if s.opt.Shadow {
		t.mActions.Inc()
		sub.finish(subResult{})
		s.release(t)
		return
	}
	s.mu.Lock()
	st := t.streams[t.next%len(t.streams)]
	t.next++
	s.mu.Unlock()
	a, err := st.EnqueueCompute(sub.kernel, sub.args, sub.ops, platform.Cost{})
	if err != nil {
		if errors.Is(err, core.ErrQueueFull) {
			s.mets.shed.With(t.name, "stream-queue-full").Inc()
		}
		sub.finish(subResult{err: err})
		s.release(t)
		return
	}
	sub.finish(subResult{action: a})
	_ = a.Wait()
	t.mActions.Inc()
	s.release(t)
}

// release returns an in-service slot and retires the tenant's
// inflight count, waking the dispatcher and any drain waiting on the
// tenant.
func (s *Server) release(t *Tenant) {
	s.slots <- struct{}{}
	s.mu.Lock()
	t.inflight--
	t.mInflight.Set(int64(t.inflight))
	s.cond.Broadcast()
	s.mu.Unlock()
}
