package serve

import "hstreams/internal/metrics"

// tenantMetrics holds the hstreams_tenant_* families the serving
// layer reports into. Per-tenant handles resolve once at Register
// (Tenant.m*), so steady-state accounting is atomic adds.
type tenantMetrics struct {
	requests *metrics.CounterVec   // tenant, endpoint: API requests
	actions  *metrics.CounterVec   // tenant: completed actions
	shed     *metrics.CounterVec   // tenant, reason: refused submissions
	inflight *metrics.GaugeVec     // tenant: dispatched, not yet retired
	pending  *metrics.GaugeVec     // tenant: admitted, not yet dispatched
	bufBytes *metrics.GaugeVec     // tenant: live buffer bytes
	streams  *metrics.GaugeVec     // tenant: stream-group size
	weight   *metrics.GaugeVec     // tenant: fair-share weight
	wait     *metrics.HistogramVec // tenant: admission wait (submit→dispatch)
}

func newTenantMetrics(reg *metrics.Registry) *tenantMetrics {
	return &tenantMetrics{
		requests: reg.CounterVec("hstreams_tenant_requests_total", "Serving API requests by tenant and endpoint.", "tenant", "endpoint"),
		actions:  reg.CounterVec("hstreams_tenant_actions_total", "Actions completed per tenant; the fairness share basis.", "tenant"),
		shed:     reg.CounterVec("hstreams_tenant_shed_total", "Submissions refused by tenant and reason (pending-full, stream-queue-full, tenant-closing).", "tenant", "reason"),
		inflight: reg.GaugeVec("hstreams_tenant_inflight", "Dispatched-but-unretired submissions per tenant.", "tenant"),
		pending:  reg.GaugeVec("hstreams_tenant_pending", "Admitted-but-undispatched submissions per tenant.", "tenant"),
		bufBytes: reg.GaugeVec("hstreams_tenant_buffer_bytes", "Live buffer bytes per tenant, counted against Quotas.MaxBufferBytes.", "tenant"),
		streams:  reg.GaugeVec("hstreams_tenant_streams", "Stream-group size per tenant.", "tenant"),
		weight:   reg.GaugeVec("hstreams_tenant_weight", "Fair-share weight per tenant.", "tenant"),
		wait:     reg.HistogramVec("hstreams_tenant_admission_wait_seconds", "Submit-to-dispatch wait per tenant; sustained growth on one tenant means starvation.", nil, "tenant"),
	}
}
