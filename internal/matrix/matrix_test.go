package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.LD != 3 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %+v", m)
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 || m.Data[2+3*3] != 7 {
		t.Fatal("column-major addressing broken")
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New(6, 6)
	v := m.View(2, 3, 2, 2)
	v.Set(0, 0, 9)
	if m.At(2, 3) != 9 {
		t.Fatal("view does not alias parent")
	}
	if v.LD != m.LD {
		t.Fatal("view must inherit LD")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view did not panic")
		}
	}()
	m.View(5, 5, 3, 3)
}

func TestCloneIsCompactAndDeep(t *testing.T) {
	m := New(5, 5)
	m.Set(1, 1, 3)
	v := m.View(1, 1, 2, 2)
	c := v.Clone()
	if c.LD != 2 || c.At(0, 0) != 3 {
		t.Fatalf("clone = %+v", c)
	}
	c.Set(0, 0, 8)
	if m.At(1, 1) != 3 {
		t.Fatal("clone aliases parent")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(3, 3)
	a.Fill(2)
	b := New(3, 3)
	b.CopyFrom(a)
	if b.MaxDiff(a) != 0 {
		t.Fatal("CopyFrom incomplete")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	New(2, 2).CopyFrom(a)
}

func TestEyeFillNorm(t *testing.T) {
	m := New(3, 3)
	m.Eye()
	if m.At(0, 0) != 1 || m.At(1, 0) != 0 || m.NormInf() != 1 {
		t.Fatal("Eye wrong")
	}
	m.Fill(-4)
	if m.NormInf() != 4 {
		t.Fatal("NormInf wrong")
	}
}

func TestMaxDiffShape(t *testing.T) {
	if !math.IsInf(New(2, 2).MaxDiff(New(3, 3)), 1) {
		t.Fatal("shape mismatch must be +Inf")
	}
	if !New(2, 2).EqualWithin(New(2, 2), 0) {
		t.Fatal("equal matrices not equal")
	}
}

func TestRandSPDIsSymmetricAndPD(t *testing.T) {
	n := 30
	a := RandSPD(n, 42)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.At(i, j) != a.At(j, i) {
				t.Fatal("not symmetric")
			}
		}
	}
	// Diagonal dominance by construction implies PD here.
	for i := 0; i < n; i++ {
		if a.At(i, i) <= 0 {
			t.Fatal("non-positive diagonal")
		}
	}
}

func TestRandSymIndefinite(t *testing.T) {
	a := RandSymIndefinite(9, 3)
	neg := false
	for i := 0; i < 9; i++ {
		if a.At(i, i) < 0 {
			neg = true
		}
		for j := 0; j < 9; j++ {
			if a.At(i, j) != a.At(j, i) {
				t.Fatal("not symmetric")
			}
		}
	}
	if !neg {
		t.Fatal("expected at least one negative diagonal entry")
	}
}

func TestLowerTimesLowerT(t *testing.T) {
	l := New(2, 2)
	l.Set(0, 0, 2)
	l.Set(1, 0, 3)
	l.Set(1, 1, 1)
	p := LowerTimesLowerT(l)
	want := [][]float64{{4, 6}, {6, 10}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("p[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestFromSlice(t *testing.T) {
	data := make([]float64, 10)
	m := FromSlice(2, 3, 3, data)
	m.Set(1, 2, 5)
	if data[1+2*3] != 5 {
		t.Fatal("FromSlice addressing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short slice did not panic")
		}
	}()
	FromSlice(4, 4, 4, make([]float64, 10))
}

func TestViewRoundTripProperty(t *testing.T) {
	f := func(i0, j0, v uint8) bool {
		m := New(16, 16)
		i, j := int(i0%16), int(j0%16)
		m.Set(i, j, float64(v))
		r := 16 - i
		c := 16 - j
		return m.View(i, j, r, c).At(0, 0) == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
