// Package matrix provides the dense column-major matrices the
// numerical kernels and the tiled algorithms operate on, plus the
// generators and comparators the test suites use.
//
// Storage is column-major with an explicit leading dimension, the
// LAPACK convention, so views over sub-blocks (tiles, panels) share
// storage with the parent at zero cost.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a column-major matrix view: element (i, j) lives at
// Data[i + j*LD].
type Dense struct {
	Rows, Cols int
	LD         int
	Data       []float64
}

// New allocates an r×c matrix with LD = r.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, LD: max(r, 1), Data: make([]float64, r*c)}
}

// FromSlice wraps existing column-major storage.
func FromSlice(r, c, ld int, data []float64) *Dense {
	if ld < r || (c > 0 && len(data) < ld*(c-1)+r) {
		panic(fmt.Sprintf("matrix: slice too small for %d×%d ld %d", r, c, ld))
	}
	return &Dense{Rows: r, Cols: c, LD: ld, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i+j*m.LD] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i+j*m.LD] = v }

// View returns the r×c sub-matrix starting at (i, j), sharing
// storage.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) outside %d×%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Dense{Rows: r, Cols: c, LD: m.LD, Data: m.Data[i+j*m.LD:]}
}

// Clone returns a compact deep copy (LD = Rows).
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(out.Data[j*out.LD:j*out.LD+m.Rows], m.Data[j*m.LD:j*m.LD+m.Rows])
	}
	return out
}

// CopyFrom overwrites m with src (dimensions must match).
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("matrix: CopyFrom dimension mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Data[j*m.LD:j*m.LD+m.Rows], src.Data[j*src.LD:j*src.LD+src.Rows])
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.LD : j*m.LD+m.Rows]
		for i := range col {
			col[i] = v
		}
	}
}

// Eye sets m to the identity (on the min(Rows, Cols) diagonal).
func (m *Dense) Eye() {
	m.Fill(0)
	n := min(m.Rows, m.Cols)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
}

// MaxDiff returns the largest absolute element-wise difference.
func (m *Dense) MaxDiff(o *Dense) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return math.Inf(1)
	}
	var d float64
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if x := math.Abs(m.At(i, j) - o.At(i, j)); x > d {
				d = x
			}
		}
	}
	return d
}

// EqualWithin reports whether all elements agree within tol.
func (m *Dense) EqualWithin(o *Dense, tol float64) bool { return m.MaxDiff(o) <= tol }

// NormInf returns the max absolute element.
func (m *Dense) NormInf() float64 {
	var d float64
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if x := math.Abs(m.At(i, j)); x > d {
				d = x
			}
		}
	}
	return d
}

// Random fills m with uniform values in [-1, 1).
func (m *Dense) Random(rng *rand.Rand) {
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			m.Set(i, j, 2*rng.Float64()-1)
		}
	}
}

// RandGeneral returns a random r×c matrix.
func RandGeneral(r, c int, seed int64) *Dense {
	m := New(r, c)
	m.Random(rand.New(rand.NewSource(seed)))
	return m
}

// RandSPD returns a random symmetric positive-definite n×n matrix
// (BᵀB + n·I), the input class Cholesky factorization requires.
func RandSPD(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	b := New(n, n)
	b.Random(rng)
	a := New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

// RandSymIndefinite returns a random symmetric (generally indefinite
// but strongly diagonally dominant, so LDLᵀ without pivoting is
// stable) n×n matrix for the solver proxy tests.
func RandSymIndefinite(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	a := New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			v := 2*rng.Float64() - 1
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	// Diagonal dominance with mixed signs keeps it indefinite yet
	// factorizable without pivoting.
	for i := 0; i < n; i++ {
		sign := 1.0
		if i%3 == 2 {
			sign = -1.0
		}
		a.Set(i, i, sign*(float64(n)+2))
	}
	return a
}

// LowerTimesLowerT computes L·Lᵀ from the lower triangle of l
// (diagonal included), for verifying Cholesky factors.
func LowerTimesLowerT(l *Dense) *Dense {
	n := l.Rows
	out := New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
