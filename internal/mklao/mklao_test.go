package mklao

import (
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/platform"
)

func TestRealAODpotrfCorrect(t *testing.T) {
	if _, err := Dpotrf(platform.HSWPlusKNC(1), core.ModeReal, 48, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRealAODgemmCorrect(t *testing.T) {
	if _, err := Dgemm(platform.HSWPlusKNC(1), core.ModeReal, 48, true); err != nil {
		t.Fatal(err)
	}
}

func TestSimAOBetweenNativeAndHStreams(t *testing.T) {
	// Fig. 7: MKL AO lands above native and pure offload but below
	// tuned hetero hStreams.
	const n = 24000
	ao, err := Dpotrf(platform.HSWPlusKNC(2), core.ModeSim, n, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ao.GFlops < 900 || ao.GFlops > 2100 {
		t.Fatalf("AO H+2K = %.0f GF/s, outside plausible Fig 7 band", ao.GFlops)
	}
}
