// Package mklao models Intel MKL's Automatic Offload (AO), the
// baseline hStreams beats by ~10 % in the paper's Fig. 7 after four
// days of tuning versus months of MKL engineering (§VI).
//
// AO semantics reproduced here:
//
//   - No user control: the library decides internally how work splits
//     between host and cards. The split is a fixed heuristic, not
//     tunable per call.
//   - Bulk-synchronous internals: each factorization pass is a
//     barrier-separated phase — no cross-pass lookahead/pipelining,
//     which is where the pipelined hStreams formulation wins.
//   - Everything is driven through a single library call (the ease of
//     use that made AO attractive in the first place).
package mklao

import (
	"time"

	"hstreams/internal/app"
	"hstreams/internal/chol"
	"hstreams/internal/core"
	"hstreams/internal/kernels"
	"hstreams/internal/matmul"
	"hstreams/internal/platform"
)

// aoTile is AO's internal, non-tunable blocking factor.
const aoTile = 2400

// Result mirrors the application result types.
type Result struct {
	Seconds time.Duration
	GFlops  float64
}

// Dpotrf is the automatic-offload Cholesky: one call, internal
// host+card split, bulk-synchronous passes.
func Dpotrf(machine *platform.Machine, mode core.Mode, n int, verify bool, seed int64) (Result, error) {
	tile := aoTile
	if n < 4*tile {
		tile = n / 4
	}
	for n%tile != 0 && tile > 1 {
		tile--
	}
	a, err := app.Init(app.Options{
		Machine:        machine,
		Mode:           mode,
		StreamsPerCard: 4,
		HostStreams:    4,
	})
	if err != nil {
		return Result{}, err
	}
	defer a.Fini()
	// MKL's AO DPOTRF pipelines internally (months of tuning, §VI)
	// but its host/card split is a fixed internal heuristic the user
	// cannot adjust — modeled as an even row assignment.
	res, err := chol.Run(a, chol.Config{
		N:        n,
		Tile:     tile,
		UseHost:  true,
		Panel:    chol.PanelHost,
		EvenRows: true,
		Verify:   verify,
		Seed:     seed,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Seconds: res.Seconds, GFlops: res.GFlops}, nil
}

// Dgemm is the automatic-offload matrix multiply: the library splits
// C's panels between host and cards by its internal fixed ratio,
// ships the inputs, computes, and collects — one synchronous call,
// no pipelining the user can influence.
func Dgemm(machine *platform.Machine, mode core.Mode, n int, verify bool) (Result, error) {
	tile := aoTile
	if n < 4*tile {
		tile = n / 4
	}
	for n%tile != 0 && tile > 1 {
		tile--
	}
	a, err := app.Init(app.Options{
		Machine:        machine,
		Mode:           mode,
		StreamsPerCard: 4,
		HostStreams:    4,
	})
	if err != nil {
		return Result{}, err
	}
	defer a.Fini()
	if mode == core.ModeReal {
		kernels.Register(a.RT)
		matmul.RegisterExtra(a.RT)
	}
	res, err := matmul.Run(a, matmul.Config{
		N:           n,
		Tile:        tile,
		UseHost:     true,
		LoadBalance: true, // AO's internal split is rate-proportional
		Verify:      verify,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Seconds: res.Seconds, GFlops: res.GFlops}, nil
}
