package blas

import (
	"fmt"
	"math"
)

// ErrSingular reports an exactly zero pivot in LU factorization.
type ErrSingular struct{ Index int }

func (e *ErrSingular) Error() string {
	return fmt.Sprintf("blas: U(%d,%d) is exactly zero in LU factorization", e.Index, e.Index)
}

// Dgetf2 computes the unblocked LU factorization with partial
// pivoting of the m×n matrix a: A = P·L·U, unit-lower L and upper U
// stored in place, with row-swap indices in ipiv (ipiv[i] is the row
// swapped with row i, LAPACK-style 0-based).
func Dgetf2(m, n int, a []float64, lda int, ipiv []int) error {
	checkDims(m >= 0 && n >= 0, "dgetf2: negative dimension %d,%d", m, n)
	checkDims(lda >= max(1, m), "dgetf2: lda %d < %d", lda, m)
	checkDims(len(ipiv) >= min(m, n), "dgetf2: ipiv too short")
	for j := 0; j < min(m, n); j++ {
		// Pivot: largest |A(i,j)| for i ≥ j.
		p := j
		pv := math.Abs(a[j+j*lda])
		for i := j + 1; i < m; i++ {
			if v := math.Abs(a[i+j*lda]); v > pv {
				p, pv = i, v
			}
		}
		ipiv[j] = p
		if a[p+j*lda] == 0 {
			return &ErrSingular{Index: j}
		}
		if p != j {
			for k := 0; k < n; k++ {
				a[j+k*lda], a[p+k*lda] = a[p+k*lda], a[j+k*lda]
			}
		}
		// Scale the column and update the trailing matrix.
		d := 1 / a[j+j*lda]
		for i := j + 1; i < m; i++ {
			a[i+j*lda] *= d
		}
		for k := j + 1; k < n; k++ {
			f := a[j+k*lda]
			if f == 0 {
				continue
			}
			col := a[k*lda:]
			piv := a[j*lda:]
			for i := j + 1; i < m; i++ {
				col[i] -= piv[i] * f
			}
		}
	}
	return nil
}

// Dgetf2NoPivot computes the unblocked LU factorization WITHOUT
// pivoting of the n×n matrix a (unit-lower L and upper U in place).
// It requires a matrix that is safely factorizable without row
// interchanges (e.g. diagonally dominant) — the form tiled LU
// algorithms without cross-tile pivoting rely on.
func Dgetf2NoPivot(n int, a []float64, lda int) error {
	checkDims(n >= 0, "dgetf2np: negative n %d", n)
	checkDims(lda >= max(1, n), "dgetf2np: lda %d < %d", lda, n)
	for j := 0; j < n; j++ {
		piv := a[j+j*lda]
		if piv == 0 || math.IsNaN(piv) {
			return &ErrSingular{Index: j}
		}
		d := 1 / piv
		for i := j + 1; i < n; i++ {
			a[i+j*lda] *= d
		}
		for k := j + 1; k < n; k++ {
			f := a[j+k*lda]
			if f == 0 {
				continue
			}
			col := a[k*lda:]
			pc := a[j*lda:]
			for i := j + 1; i < n; i++ {
				col[i] -= pc[i] * f
			}
		}
	}
	return nil
}

// Dgetrf computes the blocked LU factorization with partial pivoting,
// right-looking: panel Dgetf2, row interchanges applied across the
// matrix, triangular solve, trailing GEMM update.
func Dgetrf(m, n int, a []float64, lda int, ipiv []int) error {
	return DgetrfNB(m, n, a, lda, ipiv, DefaultNB)
}

// DgetrfNB is Dgetrf with an explicit blocking factor.
func DgetrfNB(m, n int, a []float64, lda int, ipiv []int, nb int) error {
	checkDims(m >= 0 && n >= 0, "dgetrf: negative dimension %d,%d", m, n)
	checkDims(lda >= max(1, m), "dgetrf: lda %d < %d", lda, m)
	mn := min(m, n)
	checkDims(len(ipiv) >= mn, "dgetrf: ipiv too short")
	if nb < 1 {
		nb = DefaultNB
	}
	if mn <= nb {
		return Dgetf2(m, n, a, lda, ipiv)
	}
	for j := 0; j < mn; j += nb {
		jb := min(nb, mn-j)
		// Factor the panel A[j:m, j:j+jb].
		if err := Dgetf2(m-j, jb, a[j+j*lda:], lda, ipiv[j:]); err != nil {
			se := err.(*ErrSingular)
			return &ErrSingular{Index: j + se.Index}
		}
		// Convert panel-local pivots to global rows and apply the
		// interchanges to the columns outside the panel.
		for i := j; i < j+jb; i++ {
			ipiv[i] += j
			if p := ipiv[i]; p != i {
				// Left of the panel.
				for k := 0; k < j; k++ {
					a[i+k*lda], a[p+k*lda] = a[p+k*lda], a[i+k*lda]
				}
				// Right of the panel.
				for k := j + jb; k < n; k++ {
					a[i+k*lda], a[p+k*lda] = a[p+k*lda], a[i+k*lda]
				}
			}
		}
		if j+jb < n {
			// U block row: solve L11·U12 = A12.
			Dtrsm(Left, Lower, NoTrans, Unit, jb, n-j-jb, 1, a[j+j*lda:], lda, a[j+(j+jb)*lda:], lda)
			if j+jb < m {
				// Trailing update A22 -= L21·U12.
				Dgemm(NoTrans, NoTrans, m-j-jb, n-j-jb, jb, -1,
					a[(j+jb)+j*lda:], lda, a[j+(j+jb)*lda:], lda, 1, a[(j+jb)+(j+jb)*lda:], lda)
			}
		}
	}
	return nil
}

// Dgetrs solves A·x = b given the Dgetrf factorization, overwriting b.
func Dgetrs(n int, a []float64, lda int, ipiv []int, b []float64) {
	// Apply P.
	for i := 0; i < n; i++ {
		if p := ipiv[i]; p != i {
			b[i], b[p] = b[p], b[i]
		}
	}
	// L·y = Pb (unit lower).
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i+k*lda] * b[k]
		}
		b[i] = s
	}
	// U·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[i+k*lda] * b[k]
		}
		b[i] = s / a[i+i*lda]
	}
}

// GetrfFlops returns the operation count of an n×n LU factorization
// (2n³/3 to leading order).
func GetrfFlops(n int) float64 {
	nf := float64(n)
	return 2 * nf * nf * nf / 3
}
