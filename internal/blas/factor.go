package blas

import (
	"fmt"
	"math"
)

// ErrNotPositiveDefinite reports a failed Cholesky pivot.
type ErrNotPositiveDefinite struct{ Index int }

func (e *ErrNotPositiveDefinite) Error() string {
	return fmt.Sprintf("blas: leading minor of order %d is not positive definite", e.Index+1)
}

// ErrSingularPivot reports a zero pivot in LDLᵀ.
type ErrSingularPivot struct{ Index int }

func (e *ErrSingularPivot) Error() string {
	return fmt.Sprintf("blas: zero pivot at index %d in LDLT factorization", e.Index)
}

// Dpotf2 computes the unblocked Cholesky factorization of the uplo
// triangle of the n×n matrix a: A = L·Lᵀ (Lower) or A = Uᵀ·U
// (Upper). It is the latency-bound panel kernel the paper's MAGMA
// discussion revolves around (§VI).
func Dpotf2(uplo Uplo, n int, a []float64, lda int) error {
	checkDims(n >= 0, "dpotf2: negative n %d", n)
	checkDims(lda >= max(1, n), "dpotf2: lda %d < %d", lda, n)
	if uplo == Lower {
		for j := 0; j < n; j++ {
			d := a[j+j*lda]
			aj := a[j*lda:]
			for k := 0; k < j; k++ {
				v := a[j+k*lda]
				d -= v * v
			}
			if d <= 0 || math.IsNaN(d) {
				return &ErrNotPositiveDefinite{Index: j}
			}
			d = math.Sqrt(d)
			aj[j] = d
			for i := j + 1; i < n; i++ {
				s := a[i+j*lda]
				for k := 0; k < j; k++ {
					s -= a[i+k*lda] * a[j+k*lda]
				}
				a[i+j*lda] = s / d
			}
		}
		return nil
	}
	for j := 0; j < n; j++ {
		d := a[j+j*lda]
		for k := 0; k < j; k++ {
			v := a[k+j*lda]
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return &ErrNotPositiveDefinite{Index: j}
		}
		d = math.Sqrt(d)
		a[j+j*lda] = d
		for i := j + 1; i < n; i++ {
			s := a[j+i*lda]
			for k := 0; k < j; k++ {
				s -= a[k+j*lda] * a[k+i*lda]
			}
			a[j+i*lda] = s / d
		}
	}
	return nil
}

// DefaultNB is the blocking factor for the blocked factorizations.
const DefaultNB = 64

// Dpotrf computes the blocked Cholesky factorization, right-looking,
// built from Dpotf2 panels plus Dtrsm/Dsyrk updates — the same
// structure the tiled-Cholesky application distributes across
// streams.
func Dpotrf(uplo Uplo, n int, a []float64, lda int) error {
	return DpotrfNB(uplo, n, a, lda, DefaultNB)
}

// DpotrfNB is Dpotrf with an explicit blocking factor.
func DpotrfNB(uplo Uplo, n int, a []float64, lda int, nb int) error {
	checkDims(n >= 0, "dpotrf: negative n %d", n)
	checkDims(lda >= max(1, n), "dpotrf: lda %d < %d", lda, n)
	if nb < 1 {
		nb = DefaultNB
	}
	if n <= nb {
		return Dpotf2(uplo, n, a, lda)
	}
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		if uplo == Lower {
			// Diagonal block.
			Dsyrk(Lower, NoTrans, jb, j, -1, a[j:], lda, 1, a[j+j*lda:], lda)
			if err := Dpotf2(Lower, jb, a[j+j*lda:], lda); err != nil {
				return &ErrNotPositiveDefinite{Index: j + err.(*ErrNotPositiveDefinite).Index}
			}
			if j+jb < n {
				rest := n - j - jb
				// Panel below the diagonal block.
				Dgemm(NoTrans, T, rest, jb, j, -1, a[j+jb:], lda, a[j:], lda, 1, a[j+jb+j*lda:], lda)
				Dtrsm(Right, Lower, T, NonUnit, rest, jb, 1, a[j+j*lda:], lda, a[j+jb+j*lda:], lda)
			}
		} else {
			Dsyrk(Upper, T, jb, j, -1, a[j*lda:], lda, 1, a[j+j*lda:], lda)
			if err := Dpotf2(Upper, jb, a[j+j*lda:], lda); err != nil {
				return &ErrNotPositiveDefinite{Index: j + err.(*ErrNotPositiveDefinite).Index}
			}
			if j+jb < n {
				rest := n - j - jb
				Dgemm(T, NoTrans, jb, rest, j, -1, a[j*lda:], lda, a[(j+jb)*lda:], lda, 1, a[j+(j+jb)*lda:], lda)
				Dtrsm(Left, Upper, T, NonUnit, jb, rest, 1, a[j+j*lda:], lda, a[j+(j+jb)*lda:], lda)
			}
		}
	}
	return nil
}

// Ldlt computes the LDLᵀ factorization (lower, no pivoting) of the
// symmetric n×n matrix a in place: unit-lower L in the strictly lower
// triangle, D on the diagonal. This is the symmetric-indefinite
// kernel of the Abaqus/Standard solver proxy (the paper: "It uses
// similar factorization: LDLᵀ instead of LLᵀ", §V). Inputs must be
// factorizable without pivoting (e.g. diagonally dominant).
func Ldlt(n int, a []float64, lda int) error {
	checkDims(n >= 0, "ldlt: negative n %d", n)
	checkDims(lda >= max(1, n), "ldlt: lda %d < %d", lda, n)
	// Column-by-column with a work vector w holding L[j,k]·D[k].
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			w[k] = a[j+k*lda] * a[k+k*lda]
		}
		d := a[j+j*lda]
		for k := 0; k < j; k++ {
			d -= a[j+k*lda] * w[k]
		}
		if d == 0 || math.IsNaN(d) {
			return &ErrSingularPivot{Index: j}
		}
		a[j+j*lda] = d
		for i := j + 1; i < n; i++ {
			s := a[i+j*lda]
			for k := 0; k < j; k++ {
				s -= a[i+k*lda] * w[k]
			}
			a[i+j*lda] = s / d
		}
	}
	return nil
}

// LdltNB computes the blocked LDLᵀ factorization with panel width nb:
// panels factor with Ldlt-style recurrences and the trailing matrix
// updates with DGEMM — the structure the solver proxy distributes
// over streams.
func LdltNB(n int, a []float64, lda, nb int) error {
	if nb < 1 {
		nb = DefaultNB
	}
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		// Factor the panel [j:n, j:j+jb] with the unblocked
		// recurrence restricted to columns of this panel. Updates
		// from columns < j have already been applied.
		w := make([]float64, jb)
		for jj := j; jj < j+jb; jj++ {
			for k := j; k < jj; k++ {
				w[k-j] = a[jj+k*lda] * a[k+k*lda]
			}
			d := a[jj+jj*lda]
			for k := j; k < jj; k++ {
				d -= a[jj+k*lda] * w[k-j]
			}
			if d == 0 || math.IsNaN(d) {
				return &ErrSingularPivot{Index: jj}
			}
			a[jj+jj*lda] = d
			for i := jj + 1; i < n; i++ {
				s := a[i+jj*lda]
				for k := j; k < jj; k++ {
					s -= a[i+k*lda] * w[k-j]
				}
				a[i+jj*lda] = s / d
			}
		}
		// Trailing update: A22 -= L21·D1·L21ᵀ, with W = L21·D1.
		rest := n - j - jb
		if rest > 0 {
			wm := make([]float64, rest*jb)
			for k := 0; k < jb; k++ {
				d := a[(j+k)+(j+k)*lda]
				src := a[(j+jb)+(j+k)*lda:]
				dst := wm[k*rest : k*rest+rest]
				for i := 0; i < rest; i++ {
					dst[i] = src[i] * d
				}
			}
			// Only the lower triangle of A22 is meaningful, but the
			// full update keeps the symmetric mirror consistent for
			// the recurrences above.
			Dgemm(NoTrans, T, rest, rest, jb, -1, wm, rest, a[(j+jb)+j*lda:], lda, 1, a[(j+jb)+(j+jb)*lda:], lda)
		}
	}
	return nil
}

// LdltSolve solves A·x = b given the in-place LDLᵀ factorization of
// A, overwriting b with x.
func LdltSolve(n int, a []float64, lda int, b []float64) {
	// Forward: L·y = b (unit lower).
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i+k*lda] * b[k]
		}
		b[i] = s
	}
	// Diagonal: D·z = y.
	for i := 0; i < n; i++ {
		b[i] /= a[i+i*lda]
	}
	// Backward: Lᵀ·x = z.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[k+i*lda] * b[k]
		}
		b[i] = s
	}
}

// CholeskyFlops returns the operation count of an n×n Cholesky
// factorization (n³/3 to leading order), the normalization the
// paper's GFlop/s numbers use.
func CholeskyFlops(n int) float64 {
	nf := float64(n)
	return nf * nf * nf / 3
}

// GemmFlops returns the operation count of an m×n×k matrix multiply.
func GemmFlops(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}
