package blas

import "sync"

// DgemmParallel is Dgemm with the columns of C partitioned across up
// to `threads` goroutines. It is what stream compute kernels call so
// that a task "naturally expands across a stream's threads" (paper
// §II) — the Go equivalent of an OpenMP parallel-for inside a task.
func DgemmParallel(transA, transB Trans, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int, threads int) {
	if threads < 2 || n < 2 {
		Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	if threads > n {
		threads = n
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			boff := lo * ldb
			if transB == T {
				boff = lo
			}
			Dgemm(transA, transB, m, hi-lo, k, alpha, a, lda, b[boff:], ldb, beta, c[lo*ldc:], ldc)
		}(lo, hi)
	}
	wg.Wait()
}

// DsyrkParallel partitions the rank-k update's columns across
// goroutines (each worker owns a contiguous column range of C and the
// triangle restriction is preserved by Dsyrk itself operating on a
// shifted view).
func DsyrkParallel(uplo Uplo, trans Trans, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int, threads int) {
	if threads < 2 || n < 2*DefaultNB {
		Dsyrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
		return
	}
	// Split C's columns; each chunk [lo,hi) has a triangular part
	// (handled by Dsyrk on the diagonal sub-block) and a rectangular
	// part (handled by Dgemm).
	if threads > n {
		threads = n
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo := t * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			w := hi - lo
			if trans == NoTrans {
				// Diagonal block of this column range.
				Dsyrk(uplo, NoTrans, w, k, alpha, a[lo:], lda, beta, c[lo+lo*ldc:], ldc)
				if uplo == Lower && hi < n {
					Dgemm(NoTrans, T, n-hi, w, k, alpha, a[hi:], lda, a[lo:], lda, beta, c[hi+lo*ldc:], ldc)
				} else if uplo == Upper && lo > 0 {
					Dgemm(NoTrans, T, lo, w, k, alpha, a, lda, a[lo:], lda, beta, c[lo*ldc:], ldc)
				}
			} else {
				Dsyrk(uplo, T, w, k, alpha, a[lo*lda:], lda, beta, c[lo+lo*ldc:], ldc)
				if uplo == Lower && hi < n {
					Dgemm(T, NoTrans, n-hi, w, k, alpha, a[hi*lda:], lda, a[lo*lda:], lda, beta, c[hi+lo*ldc:], ldc)
				} else if uplo == Upper && lo > 0 {
					Dgemm(T, NoTrans, lo, w, k, alpha, a, lda, a[lo*lda:], lda, beta, c[lo*ldc:], ldc)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}
