// Package blas implements the double-precision level-3 BLAS and
// LAPACK-style factorization kernels the applications are built on:
// DGEMM, DSYRK, DTRSM, DPOTF2/DPOTRF and a supernode LDLᵀ. The paper
// runs these through Intel MKL; here they are pure Go, written
// against column-major storage with explicit leading dimensions so
// the tiled algorithms can operate on views without copying.
//
// The routines follow the netlib reference semantics (including alpha
// and beta scaling and triangular-side conventions) and panic on
// malformed dimensions, mirroring BLAS xerbla behavior.
package blas

import "fmt"

// Side selects which side a triangular matrix multiplies from.
type Side int

const (
	// Left solves op(A)·X = αB.
	Left Side = iota
	// Right solves X·op(A) = αB.
	Right
)

// Uplo selects the referenced triangle.
type Uplo int

const (
	// Lower references the lower triangle.
	Lower Uplo = iota
	// Upper references the upper triangle.
	Upper
)

// Trans selects transposition.
type Trans int

const (
	// NoTrans uses A as stored.
	NoTrans Trans = iota
	// T uses Aᵀ.
	T
)

// Diag declares whether the triangular diagonal is implicitly unit.
type Diag int

const (
	// NonUnit uses the stored diagonal.
	NonUnit Diag = iota
	// Unit assumes an implicit unit diagonal.
	Unit
)

func checkDims(cond bool, format string, args ...interface{}) {
	if !cond {
		panic("blas: " + fmt.Sprintf(format, args...))
	}
}

// Dgemm computes C := α·op(A)·op(B) + β·C where op(A) is m×k and
// op(B) is k×n.
func Dgemm(transA, transB Trans, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	checkDims(m >= 0 && n >= 0 && k >= 0, "dgemm: negative dimension %d,%d,%d", m, n, k)
	rowsA, rowsB := m, k
	if transA == T {
		rowsA = k
	}
	if transB == T {
		rowsB = n
	}
	checkDims(lda >= max(1, rowsA), "dgemm: lda %d < %d", lda, rowsA)
	checkDims(ldb >= max(1, rowsB), "dgemm: ldb %d < %d", ldb, rowsB)
	checkDims(ldc >= max(1, m), "dgemm: ldc %d < %d", ldc, m)
	if m == 0 || n == 0 {
		return
	}

	// Scale C.
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}

	switch {
	case transA == NoTrans && transB == NoTrans:
		// C[:,j] += α·B[l,j]·A[:,l]  (axpy over columns of A)
		for j := 0; j < n; j++ {
			cj := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				f := alpha * b[l+j*ldb]
				if f == 0 {
					continue
				}
				al := a[l*lda : l*lda+m]
				for i := range cj {
					cj[i] += f * al[i]
				}
			}
		}
	case transA == T && transB == NoTrans:
		// C[i,j] += α·dot(A[:,i], B[:,j])
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			for i := 0; i < m; i++ {
				ai := a[i*lda : i*lda+k]
				var s float64
				for l := range bj {
					s += ai[l] * bj[l]
				}
				c[i+j*ldc] += alpha * s
			}
		}
	case transA == NoTrans && transB == T:
		// C[:,j] += α·B[j,l]·A[:,l]
		for j := 0; j < n; j++ {
			cj := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				f := alpha * b[j+l*ldb]
				if f == 0 {
					continue
				}
				al := a[l*lda : l*lda+m]
				for i := range cj {
					cj[i] += f * al[i]
				}
			}
		}
	default: // T, T
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				ai := a[i*lda : i*lda+k]
				var s float64
				for l := 0; l < k; l++ {
					s += ai[l] * b[j+l*ldb]
				}
				c[i+j*ldc] += alpha * s
			}
		}
	}
}

// Dsyrk computes the symmetric rank-k update
// C := α·A·Aᵀ + β·C (trans == NoTrans, A is n×k) or
// C := α·Aᵀ·A + β·C (trans == T, A is k×n),
// referencing only the uplo triangle of C.
func Dsyrk(uplo Uplo, trans Trans, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	checkDims(n >= 0 && k >= 0, "dsyrk: negative dimension %d,%d", n, k)
	rowsA := n
	if trans == T {
		rowsA = k
	}
	checkDims(lda >= max(1, rowsA), "dsyrk: lda %d < %d", lda, rowsA)
	checkDims(ldc >= max(1, n), "dsyrk: ldc %d < %d", ldc, n)
	if n == 0 {
		return
	}
	lo := func(j int) (int, int) { // referenced row range of column j
		if uplo == Lower {
			return j, n
		}
		return 0, j + 1
	}
	if beta != 1 {
		for j := 0; j < n; j++ {
			s, e := lo(j)
			for i := s; i < e; i++ {
				if beta == 0 {
					c[i+j*ldc] = 0
				} else {
					c[i+j*ldc] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	if trans == NoTrans {
		for j := 0; j < n; j++ {
			s, e := lo(j)
			for l := 0; l < k; l++ {
				f := alpha * a[j+l*lda]
				if f == 0 {
					continue
				}
				al := a[l*lda:]
				for i := s; i < e; i++ {
					c[i+j*ldc] += f * al[i]
				}
			}
		}
	} else {
		for j := 0; j < n; j++ {
			s, e := lo(j)
			aj := a[j*lda : j*lda+k]
			for i := s; i < e; i++ {
				ai := a[i*lda : i*lda+k]
				var sum float64
				for l := range aj {
					sum += ai[l] * aj[l]
				}
				c[i+j*ldc] += alpha * sum
			}
		}
	}
}

// Dtrsm solves op(A)·X = α·B (side == Left) or X·op(A) = α·B
// (side == Right) for X, overwriting B. A is the uplo triangle
// (m×m for Left, n×n for Right); B is m×n.
func Dtrsm(side Side, uplo Uplo, transA Trans, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	checkDims(m >= 0 && n >= 0, "dtrsm: negative dimension %d,%d", m, n)
	ka := m
	if side == Right {
		ka = n
	}
	checkDims(lda >= max(1, ka), "dtrsm: lda %d < %d", lda, ka)
	checkDims(ldb >= max(1, m), "dtrsm: ldb %d < %d", ldb, m)
	if m == 0 || n == 0 {
		return
	}
	nounit := diag == NonUnit
	if alpha == 0 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] = 0
			}
		}
		return
	}

	switch {
	case side == Left && transA == NoTrans && uplo == Upper:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for kk := m - 1; kk >= 0; kk-- {
				if bj[kk] == 0 {
					continue
				}
				if nounit {
					bj[kk] /= a[kk+kk*lda]
				}
				f := bj[kk]
				ak := a[kk*lda:]
				for i := 0; i < kk; i++ {
					bj[i] -= f * ak[i]
				}
			}
		}
	case side == Left && transA == NoTrans && uplo == Lower:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for kk := 0; kk < m; kk++ {
				if bj[kk] == 0 {
					continue
				}
				if nounit {
					bj[kk] /= a[kk+kk*lda]
				}
				f := bj[kk]
				ak := a[kk*lda:]
				for i := kk + 1; i < m; i++ {
					bj[i] -= f * ak[i]
				}
			}
		}
	case side == Left && transA == T && uplo == Upper:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := 0; i < m; i++ {
				ai := a[i*lda : i*lda+i]
				t := alpha * bj[i]
				for kk := range ai {
					t -= ai[kk] * bj[kk]
				}
				if nounit {
					t /= a[i+i*lda]
				}
				bj[i] = t
			}
		}
	case side == Left && transA == T && uplo == Lower:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := m - 1; i >= 0; i-- {
				ai := a[i*lda:]
				t := alpha * bj[i]
				for kk := i + 1; kk < m; kk++ {
					t -= ai[kk] * bj[kk]
				}
				if nounit {
					t /= a[i+i*lda]
				}
				bj[i] = t
			}
		}
	case side == Right && transA == NoTrans && uplo == Upper:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for kk := 0; kk < j; kk++ {
				f := a[kk+j*lda]
				if f == 0 {
					continue
				}
				bk := b[kk*ldb : kk*ldb+m]
				for i := range bj {
					bj[i] -= f * bk[i]
				}
			}
			if nounit {
				f := 1 / a[j+j*lda]
				for i := range bj {
					bj[i] *= f
				}
			}
		}
	case side == Right && transA == NoTrans && uplo == Lower:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for kk := j + 1; kk < n; kk++ {
				f := a[kk+j*lda]
				if f == 0 {
					continue
				}
				bk := b[kk*ldb : kk*ldb+m]
				for i := range bj {
					bj[i] -= f * bk[i]
				}
			}
			if nounit {
				f := 1 / a[j+j*lda]
				for i := range bj {
					bj[i] *= f
				}
			}
		}
	case side == Right && transA == T && uplo == Upper:
		for kk := n - 1; kk >= 0; kk-- {
			bk := b[kk*ldb : kk*ldb+m]
			if nounit {
				f := 1 / a[kk+kk*lda]
				for i := range bk {
					bk[i] *= f
				}
			}
			for j := 0; j < kk; j++ {
				f := a[j+kk*lda]
				if f == 0 {
					continue
				}
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] -= f * bk[i]
				}
			}
			if alpha != 1 {
				for i := range bk {
					bk[i] *= alpha
				}
			}
		}
	default: // Right, T, Lower
		for kk := 0; kk < n; kk++ {
			bk := b[kk*ldb : kk*ldb+m]
			if nounit {
				f := 1 / a[kk+kk*lda]
				for i := range bk {
					bk[i] *= f
				}
			}
			for j := kk + 1; j < n; j++ {
				f := a[j+kk*lda]
				if f == 0 {
					continue
				}
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] -= f * bk[i]
				}
			}
			if alpha != 1 {
				for i := range bk {
					bk[i] *= alpha
				}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
