package blas

import (
	"math"
	"math/rand"
	"testing"

	"hstreams/internal/matrix"
)

// reconstructLU computes P⁻¹·L·U from the in-place factorization.
func reconstructLU(m, n int, a []float64, lda int, ipiv []int) *matrix.Dense {
	mn := m
	if n < mn {
		mn = n
	}
	lu := matrix.New(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			kmax := i
			if j < kmax {
				kmax = j
			}
			for k := 0; k <= kmax && k < mn; k++ {
				lv := a[i+k*lda]
				if i == k {
					lv = 1
				}
				if i < k {
					lv = 0
				}
				uv := a[k+j*lda]
				if k > j {
					uv = 0
				}
				s += lv * uv
			}
			lu.Set(i, j, s)
		}
	}
	// Undo the row interchanges (apply them in reverse).
	for i := mn - 1; i >= 0; i-- {
		if p := ipiv[i]; p != i {
			for j := 0; j < n; j++ {
				v1, v2 := lu.At(i, j), lu.At(p, j)
				lu.Set(i, j, v2)
				lu.Set(p, j, v1)
			}
		}
	}
	return lu
}

func TestDgetf2Reconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 7, 25, 60} {
		orig := matrix.RandGeneral(n, n, int64(n))
		a := orig.Clone()
		ipiv := make([]int, n)
		if err := Dgetf2(n, n, a.Data, a.LD, ipiv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := reconstructLU(n, n, a.Data, a.LD, ipiv)
		if d := rec.MaxDiff(orig); d > 1e-10*float64(n) {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestDgetrfMatchesUnblocked(t *testing.T) {
	n := 150
	orig := matrix.RandGeneral(n, n, 3)
	blocked := orig.Clone()
	unblocked := orig.Clone()
	ipB := make([]int, n)
	ipU := make([]int, n)
	if err := DgetrfNB(n, n, blocked.Data, blocked.LD, ipB, 32); err != nil {
		t.Fatal(err)
	}
	if err := Dgetf2(n, n, unblocked.Data, unblocked.LD, ipU); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if ipB[i] != ipU[i] {
			t.Fatalf("pivot %d differs: %d vs %d", i, ipB[i], ipU[i])
		}
	}
	if d := blocked.MaxDiff(unblocked); d > 1e-9 {
		t.Fatalf("blocked/unblocked differ by %g", d)
	}
}

func TestDgetrfRectangular(t *testing.T) {
	m, n := 40, 25
	orig := matrix.RandGeneral(m, n, 9)
	a := orig.Clone()
	ipiv := make([]int, n)
	if err := DgetrfNB(m, n, a.Data, a.LD, ipiv, 8); err != nil {
		t.Fatal(err)
	}
	rec := reconstructLU(m, n, a.Data, a.LD, ipiv)
	if d := rec.MaxDiff(orig); d > 1e-10*float64(m) {
		t.Fatalf("rectangular reconstruction error %g", d)
	}
}

func TestDgetrsSolves(t *testing.T) {
	n := 60
	orig := matrix.RandGeneral(n, n, 4)
	// Diagonal boost for conditioning.
	for i := 0; i < n; i++ {
		orig.Set(i, i, orig.At(i, i)+float64(n))
	}
	a := orig.Clone()
	ipiv := make([]int, n)
	if err := Dgetrf(n, n, a.Data, a.LD, ipiv); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := randSlice(n, rng)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * x[j]
		}
		b[i] = s
	}
	Dgetrs(n, a.Data, a.LD, ipiv, b)
	if d := maxAbsDiff(b, x); d > 1e-9 {
		t.Fatalf("solve error %g", d)
	}
}

func TestDgetrfPivotingActuallyPivots(t *testing.T) {
	// A matrix whose naive (no-pivot) elimination would divide by a
	// tiny pivot; partial pivoting must keep |L| ≤ 1.
	n := 8
	a := matrix.New(n, n)
	rng := rand.New(rand.NewSource(11))
	a.Random(rng)
	a.Set(0, 0, 1e-300)
	ipiv := make([]int, n)
	if err := Dgetrf(n, n, a.Data, a.LD, ipiv); err != nil {
		t.Fatal(err)
	}
	if ipiv[0] == 0 {
		t.Fatal("pivoting did not move away from the tiny leading entry")
	}
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if math.Abs(a.At(i, j)) > 1+1e-12 {
				t.Fatalf("|L(%d,%d)| = %g > 1 despite partial pivoting", i, j, a.At(i, j))
			}
		}
	}
}

func TestDgetrfSingular(t *testing.T) {
	n := 5
	a := matrix.New(n, n) // all zeros
	ipiv := make([]int, n)
	err := Dgetrf(n, n, a.Data, a.LD, ipiv)
	if err == nil {
		t.Fatal("singular matrix accepted")
	}
	if _, ok := err.(*ErrSingular); !ok {
		t.Fatalf("err = %T, want *ErrSingular", err)
	}
}

func TestGetrfFlops(t *testing.T) {
	if GetrfFlops(30) != 18000 {
		t.Fatal("GetrfFlops")
	}
}
