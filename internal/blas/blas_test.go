package blas

import (
	"math"
	"math/rand"
	"testing"

	"hstreams/internal/matrix"
)

// naiveGemm is the element-wise reference for all Dgemm variants.
func naiveGemm(transA, transB Trans, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if transA == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	bt := func(l, j int) float64 {
		if transB == NoTrans {
			return b[l+j*ldb]
		}
		return b[j+l*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

func randSlice(n int, rng *rand.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 2*rng.Float64() - 1
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestDgemmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ta := range []Trans{NoTrans, T} {
		for _, tb := range []Trans{NoTrans, T} {
			for trial := 0; trial < 5; trial++ {
				m, n, k := rng.Intn(20)+1, rng.Intn(20)+1, rng.Intn(20)+1
				alpha := float64(rng.Intn(3)) - 1
				beta := float64(rng.Intn(3)) - 1
				lda, ldb, ldc := m+rng.Intn(3), k+rng.Intn(3), m+rng.Intn(3)
				if ta == T {
					lda = k + rng.Intn(3)
				}
				if tb == T {
					ldb = n + rng.Intn(3)
				}
				a := randSlice(lda*max(m, k), rng)
				b := randSlice(ldb*max(k, n), rng)
				c := randSlice(ldc*n, rng)
				want := append([]float64(nil), c...)
				naiveGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
				Dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
				if d := maxAbsDiff(c, want); d > 1e-12 {
					t.Fatalf("dgemm(%v,%v) m=%d n=%d k=%d α=%v β=%v: diff %g", ta, tb, m, n, k, alpha, beta, d)
				}
			}
		}
	}
}

func TestDgemmDegenerate(t *testing.T) {
	// Zero dimensions must be no-ops; beta must still apply when
	// k == 0.
	c := []float64{1, 2, 3, 4}
	Dgemm(NoTrans, NoTrans, 2, 2, 0, 5, nil, 2, nil, 1, 2, c, 2)
	for i, want := range []float64{2, 4, 6, 8} {
		if c[i] != want {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want)
		}
	}
	Dgemm(NoTrans, NoTrans, 0, 0, 0, 1, nil, 1, nil, 1, 1, nil, 1)
}

func TestDgemmPanicsOnBadLD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad lda")
		}
	}()
	Dgemm(NoTrans, NoTrans, 4, 4, 4, 1, make([]float64, 16), 2, make([]float64, 16), 4, 0, make([]float64, 16), 4)
}

func TestDsyrkMatchesDgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, tr := range []Trans{NoTrans, T} {
			n, k := 13, 7
			lda := n
			if tr == T {
				lda = k
			}
			a := randSlice(lda*max(n, k), rng)
			c := randSlice(n*n, rng)
			cRef := append([]float64(nil), c...)
			// Reference: full product via dgemm, then compare only
			// the referenced triangle; the other triangle must be
			// untouched.
			if tr == NoTrans {
				naiveGemm(NoTrans, T, n, n, k, 1.5, a, lda, a, lda, 0.5, cRef, n)
			} else {
				naiveGemm(T, NoTrans, n, n, k, 1.5, a, lda, a, lda, 0.5, cRef, n)
			}
			orig := append([]float64(nil), c...)
			Dsyrk(uplo, tr, n, k, 1.5, a, lda, 0.5, c, n)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
					if inTri {
						if math.Abs(c[i+j*n]-cRef[i+j*n]) > 1e-12 {
							t.Fatalf("dsyrk(%v,%v) [%d,%d] = %v, want %v", uplo, tr, i, j, c[i+j*n], cRef[i+j*n])
						}
					} else if c[i+j*n] != orig[i+j*n] {
						t.Fatalf("dsyrk(%v,%v) touched opposite triangle at [%d,%d]", uplo, tr, i, j)
					}
				}
			}
		}
	}
}

// triMat expands the referenced triangle of a into a dense matrix,
// honoring the unit-diagonal convention.
func triMat(uplo Uplo, diag Diag, n int, a []float64, lda int) *matrix.Dense {
	m := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			switch {
			case i == j:
				if diag == Unit {
					m.Set(i, j, 1)
				} else {
					m.Set(i, j, a[i+j*lda])
				}
			case (uplo == Lower && i > j) || (uplo == Upper && i < j):
				m.Set(i, j, a[i+j*lda])
			}
		}
	}
	return m
}

func TestDtrsmAll16Variants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 9, 11
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, tr := range []Trans{NoTrans, T} {
				for _, dg := range []Diag{NonUnit, Unit} {
					ka := m
					if side == Right {
						ka = n
					}
					a := randSlice(ka*ka, rng)
					// Make the triangle well conditioned.
					for i := 0; i < ka; i++ {
						a[i+i*ka] = 3 + rng.Float64()
					}
					b := randSlice(m*n, rng)
					bOrig := append([]float64(nil), b...)
					alpha := 1.5
					Dtrsm(side, uplo, tr, dg, m, n, alpha, a, ka, b, m)

					// Verify op(A)·X == α·B (Left) or X·op(A) == α·B.
					tA := triMat(uplo, dg, ka, a, ka)
					check := make([]float64, m*n)
					opA := NoTrans
					if tr == T {
						opA = T
					}
					if side == Left {
						naiveGemm(opA, NoTrans, m, n, m, 1, tA.Data, tA.LD, b, m, 0, check, m)
					} else {
						naiveGemm(NoTrans, opA, m, n, n, 1, b, m, tA.Data, tA.LD, 0, check, m)
					}
					for i := range check {
						if math.Abs(check[i]-alpha*bOrig[i]) > 1e-9 {
							t.Fatalf("dtrsm(%v,%v,%v,%v): residual %g at %d",
								side, uplo, tr, dg, check[i]-alpha*bOrig[i], i)
						}
					}
				}
			}
		}
	}
}

func TestDtrsmAlphaZero(t *testing.T) {
	b := []float64{1, 2, 3, 4}
	Dtrsm(Left, Lower, NoTrans, NonUnit, 2, 2, 0, []float64{1, 0, 0, 1}, 2, b, 2)
	for i := range b {
		if b[i] != 0 {
			t.Fatal("alpha=0 must zero B")
		}
	}
}

func TestDpotf2Reconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 40} {
		spd := matrix.RandSPD(n, int64(n))
		a := spd.Clone()
		if err := Dpotf2(Lower, n, a.Data, a.LD); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := matrix.LowerTimesLowerT(a)
		if d := rec.MaxDiff(spd); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestDpotf2Upper(t *testing.T) {
	n := 20
	spd := matrix.RandSPD(n, 7)
	a := spd.Clone()
	if err := Dpotf2(Upper, n, a.Data, a.LD); err != nil {
		t.Fatal(err)
	}
	// Uᵀ·U must reconstruct A: transpose the upper factor into a
	// lower one and reuse the checker.
	l := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			l.Set(j, i, a.At(i, j))
		}
	}
	rec := matrix.LowerTimesLowerT(l)
	if d := rec.MaxDiff(spd); d > 1e-8*float64(n) {
		t.Fatalf("upper reconstruction error %g", d)
	}
}

func TestDpotrfMatchesUnblocked(t *testing.T) {
	n := 150
	spd := matrix.RandSPD(n, 5)
	blocked := spd.Clone()
	unblocked := spd.Clone()
	if err := DpotrfNB(Lower, n, blocked.Data, blocked.LD, 32); err != nil {
		t.Fatal(err)
	}
	if err := Dpotf2(Lower, n, unblocked.Data, unblocked.LD); err != nil {
		t.Fatal(err)
	}
	// Compare lower triangles.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Abs(blocked.At(i, j)-unblocked.At(i, j)) > 1e-8 {
				t.Fatalf("blocked/unblocked differ at (%d,%d): %v vs %v", i, j, blocked.At(i, j), unblocked.At(i, j))
			}
		}
	}
}

func TestDpotrfUpperBlocked(t *testing.T) {
	n := 100
	spd := matrix.RandSPD(n, 11)
	a := spd.Clone()
	if err := DpotrfNB(Upper, n, a.Data, a.LD, 24); err != nil {
		t.Fatal(err)
	}
	l := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			l.Set(j, i, a.At(i, j))
		}
	}
	if d := matrix.LowerTimesLowerT(l).MaxDiff(spd); d > 1e-7 {
		t.Fatalf("upper blocked reconstruction error %g", d)
	}
}

func TestDpotrfNotPositiveDefinite(t *testing.T) {
	n := 10
	a := matrix.RandSPD(n, 1)
	a.Set(6, 6, -100) // break positive definiteness at index 6
	err := DpotrfNB(Lower, n, a.Data, a.LD, 4)
	if err == nil {
		t.Fatal("non-PD matrix accepted")
	}
	pd, ok := err.(*ErrNotPositiveDefinite)
	if !ok || pd.Index != 6 {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite at 6", err)
	}
}

func ldltReconstruct(n int, a []float64, lda int) *matrix.Dense {
	out := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				li := 1.0
				if i != k {
					li = a[i+k*lda]
				}
				lj := 1.0
				if j != k {
					lj = a[j+k*lda]
				}
				s += li * a[k+k*lda] * lj
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestLdltReconstructs(t *testing.T) {
	for _, n := range []int{1, 3, 20, 60} {
		sym := matrix.RandSymIndefinite(n, int64(n))
		a := sym.Clone()
		if err := Ldlt(n, a.Data, a.LD); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		hasNeg := false
		for i := 0; i < n; i++ {
			if a.At(i, i) < 0 {
				hasNeg = true
			}
		}
		if n >= 3 && !hasNeg {
			t.Fatalf("n=%d: expected an indefinite D", n)
		}
		if d := ldltReconstruct(n, a.Data, a.LD).MaxDiff(sym); d > 1e-8*float64(n+1) {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestLdltBlockedMatchesUnblocked(t *testing.T) {
	n := 90
	sym := matrix.RandSymIndefinite(n, 4)
	blocked := sym.Clone()
	unblocked := sym.Clone()
	if err := LdltNB(n, blocked.Data, blocked.LD, 16); err != nil {
		t.Fatal(err)
	}
	if err := Ldlt(n, unblocked.Data, unblocked.LD); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Abs(blocked.At(i, j)-unblocked.At(i, j)) > 1e-7 {
				t.Fatalf("blocked/unblocked LDLT differ at (%d,%d)", i, j)
			}
		}
	}
}

func TestLdltSolve(t *testing.T) {
	n := 40
	sym := matrix.RandSymIndefinite(n, 9)
	a := sym.Clone()
	if err := Ldlt(n, a.Data, a.LD); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	x := randSlice(n, rng)
	b := make([]float64, n)
	// b = A·x
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += sym.At(i, j) * x[j]
		}
		b[i] = s
	}
	LdltSolve(n, a.Data, a.LD, b)
	if d := maxAbsDiff(b, x); d > 1e-8 {
		t.Fatalf("solve error %g", d)
	}
}

func TestLdltSingularPivot(t *testing.T) {
	a := matrix.New(2, 2) // all zeros → zero pivot at 0
	if err := Ldlt(2, a.Data, a.LD); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestDgemmParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n, k := 33, 47, 21
	a := randSlice(m*k, rng)
	b := randSlice(k*n, rng)
	for _, tb := range []Trans{NoTrans, T} {
		bm := b
		ldb := k
		if tb == T {
			ldb = n
		}
		cSerial := randSlice(m*n, rng)
		cPar := append([]float64(nil), cSerial...)
		Dgemm(NoTrans, tb, m, n, k, 1.2, a, m, bm, ldb, 0.3, cSerial, m)
		DgemmParallel(NoTrans, tb, m, n, k, 1.2, a, m, bm, ldb, 0.3, cPar, m, 8)
		if d := maxAbsDiff(cSerial, cPar); d > 1e-12 {
			t.Fatalf("parallel dgemm (transB=%v) differs by %g", tb, d)
		}
	}
}

func TestDsyrkParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, k := 300, 40
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, tr := range []Trans{NoTrans, T} {
			lda := n
			if tr == T {
				lda = k
			}
			a := randSlice(lda*max(n, k), rng)
			cs := randSlice(n*n, rng)
			cp := append([]float64(nil), cs...)
			Dsyrk(uplo, tr, n, k, 1.1, a, lda, 0.7, cs, n)
			DsyrkParallel(uplo, tr, n, k, 1.1, a, lda, 0.7, cp, n, 7)
			if d := maxAbsDiff(cs, cp); d > 1e-12 {
				t.Fatalf("parallel dsyrk(%v,%v) differs by %g", uplo, tr, d)
			}
		}
	}
}

func TestFlopsHelpers(t *testing.T) {
	if GemmFlops(2, 3, 4) != 48 {
		t.Fatal("GemmFlops")
	}
	if CholeskyFlops(30) != 9000 {
		t.Fatal("CholeskyFlops")
	}
}
