package chol

import (
	"hstreams/internal/blas"
	"hstreams/internal/core"
	"hstreams/internal/kernels"
	"hstreams/internal/matrix"
	"hstreams/internal/ompss"
	"hstreams/internal/platform"
)

// RunOmpSs factors the matrix through the OmpSs task-dataflow runtime
// (offload mode, as the paper evaluated it: "OmpSs has only been
// tested in offload mode and for only one MIC", §VI). The program is
// just the task graph with declared tile accesses — data movement,
// stream management and dependence enforcement are the runtime's
// problem, which is the productivity win the overhead pays for.
func RunOmpSs(machine *platform.Machine, mode core.Mode, n, tile int, verify bool, seed int64) (Result, error) {
	if n%tile != 0 {
		return Result{}, ErrBadTiling
	}
	nt := n / tile
	tbytes := kernels.TileBytes(tile)
	r, err := ompss.Init(ompss.Config{Machine: machine, Mode: mode, Backend: ompss.BackendHStreams})
	if err != nil {
		return Result{}, err
	}
	defer r.Fini()
	if mode == core.ModeReal {
		kernels.Register(r.Core())
	}

	var spd *matrix.Dense
	tiles := make([][]*ompss.Region, nt)
	if mode == core.ModeReal {
		spd = matrix.RandSPD(n, seed+7)
	}
	for i := range tiles {
		tiles[i] = make([]*ompss.Region, nt)
		for j := 0; j <= i; j++ {
			reg, err := r.CreateData(tbytes)
			if err != nil {
				return Result{}, err
			}
			tiles[i][j] = reg
			if mode == core.ModeReal {
				data := reg.Buf().HostFloat64s()
				for jj := 0; jj < tile; jj++ {
					for ii := 0; ii < tile; ii++ {
						data[ii+jj*tile] = spd.At(i*tile+ii, j*tile+jj)
					}
				}
			}
		}
	}

	start := r.Core().Now()
	tb := int64(tile)
	for k := 0; k < nt; k++ {
		if _, err := r.Submit(kernels.Dpotf2, []int64{tb},
			[]ompss.Arg{{R: tiles[k][k], Acc: ompss.InOut}}, potrfTileCost(tile)); err != nil {
			return Result{}, err
		}
		for i := k + 1; i < nt; i++ {
			if _, err := r.Submit(kernels.Dtrsm, []int64{tb, tb},
				[]ompss.Arg{{R: tiles[k][k], Acc: ompss.In}, {R: tiles[i][k], Acc: ompss.InOut}},
				kernels.TrsmCost(tile, tile)); err != nil {
				return Result{}, err
			}
		}
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j <= i; j++ {
				if i == j {
					if _, err := r.Submit(kernels.Dsyrk, []int64{tb, tb},
						[]ompss.Arg{{R: tiles[i][k], Acc: ompss.In}, {R: tiles[i][i], Acc: ompss.InOut}},
						kernels.SyrkCost(tile, tile)); err != nil {
						return Result{}, err
					}
				} else {
					if _, err := r.Submit(kernels.Dgemm, []int64{tb, tb, tb},
						[]ompss.Arg{{R: tiles[i][k], Acc: ompss.In}, {R: tiles[j][k], Acc: ompss.In}, {R: tiles[i][j], Acc: ompss.InOut}},
						kernels.GemmCost(tile, tile, tile)); err != nil {
						return Result{}, err
					}
				}
			}
		}
	}
	r.Taskwait()
	if err := r.Core().Err(); err != nil {
		return Result{}, err
	}
	elapsed := r.Core().Now() - start

	if verify && mode == core.ModeReal {
		flat := make([]float64, int64(nt)*int64(nt)*int64(tile*tile))
		for i := 0; i < nt; i++ {
			for j := 0; j <= i; j++ {
				if err := r.SyncToHost(tiles[i][j]); err != nil {
					return Result{}, err
				}
				off := (int64(j)*int64(nt) + int64(i)) * int64(tile*tile)
				copy(flat[off:off+int64(tile*tile)], tiles[i][j].Buf().HostFloat64s())
			}
		}
		if err := verifyFactor(flat, spd, nt, tile); err != nil {
			return Result{}, err
		}
	}
	return Result{Seconds: elapsed, GFlops: platform.GFlops(blas.CholeskyFlops(n), elapsed)}, nil
}
