package chol

import (
	"testing"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

// offloadGF runs the pure-offload Cholesky with a given stream count
// and tile size.
func offloadGF(t testing.TB, n, tile, streams int) float64 {
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeSim,
		StreamsPerCard: streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Fini()
	r, err := Run(a, Config{N: n, Tile: tile, Panel: PanelCard})
	if err != nil {
		t.Fatal(err)
	}
	return r.GFlops
}

// TestTuningTileSizeTradeoff reproduces §VI: "The best degree of
// tiling … depends on the matrix size and algorithm." Tiny tiles
// drown in per-action overheads and dependence latency; huge tiles
// starve the pipeline; a middle tile wins — and the optimum moves
// with the matrix size.
func TestTuningTileSizeTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps fine tilings (hundreds of thousands of actions)")
	}
	// Small matrix: the sweet spot is a small tile.
	tiny4800 := offloadGF(t, 4800, 150, 4)
	mid4800 := offloadGF(t, 4800, 300, 4)
	big4800 := offloadGF(t, 4800, 1200, 4)
	t.Logf("tile sweep at n=4800: 150→%.0f, 300→%.0f, 1200→%.0f GF/s", tiny4800, mid4800, big4800)
	if mid4800 <= tiny4800 || mid4800 <= big4800 {
		t.Fatalf("n=4800: mid tile (%.0f) must beat extremes (%.0f, %.0f)", mid4800, tiny4800, big4800)
	}
	// Large matrix: the sweet spot is a larger tile.
	small24k := offloadGF(t, 24000, 300, 4)
	mid24k := offloadGF(t, 24000, 600, 4)
	big24k := offloadGF(t, 24000, 4800, 4)
	t.Logf("tile sweep at n=24000: 300→%.0f, 600→%.0f, 4800→%.0f GF/s", small24k, mid24k, big24k)
	if mid24k <= small24k || mid24k <= big24k {
		t.Fatalf("n=24000: mid tile (%.0f) must beat extremes (%.0f, %.0f)", mid24k, small24k, big24k)
	}
	// The optimum moved: the small matrix prefers a smaller tile.
	if big4800 >= mid4800 {
		t.Fatal("optimum did not shift with matrix size")
	}
}

// TestAblationPipelining quantifies what the FIFO-semantic pipelining
// is worth: the same hetero Cholesky with a barrier between passes
// must be measurably slower.
func TestAblationPipelining(t *testing.T) {
	const n, tile = 24000, 2400
	run := func(bulk bool) float64 {
		a, err := app.Init(app.Options{
			Machine:        platform.HSWPlusKNC(2),
			Mode:           core.ModeSim,
			StreamsPerCard: 4,
			HostStreams:    4,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Fini()
		r, err := Run(a, Config{N: n, Tile: tile, UseHost: true, Panel: PanelHost, BulkSync: bulk})
		if err != nil {
			t.Fatal(err)
		}
		return r.GFlops
	}
	pipelined := run(false)
	bulk := run(true)
	gain := pipelined / bulk
	t.Logf("pipelining ablation: pipelined %.0f vs bulk-sync %.0f GF/s (%.2f×)", pipelined, bulk, gain)
	if gain < 1.05 {
		t.Fatalf("pipelining worth only %.2f×; expected a clear gain", gain)
	}
}
