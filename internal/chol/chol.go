// Package chol implements the paper's tiled Cholesky factorization
// (§V, Fig. 5) for heterogeneous platforms:
//
//   - The matrix is decomposed into square tiles; only the lower
//     triangle is factored (A = L·Lᵀ).
//   - DPOTRF (diagonal) runs on the host in a machine-wide stream;
//     DTRSMs run on host streams; their results are broadcast to all
//     cards.
//   - Each tile-row is assigned to the host or one of the cards
//     round-robin; each subsequent compute on a domain round-robins
//     across that domain's streams.
//   - DSYRK/DGEMM results in the column adjacent to the DTRSM column
//     are sent back to the host each pass (they are the next panel);
//     cards never talk to each other, and host-stream transfers are
//     aliased away.
//
// Variants reproduce the Fig. 7 comparison: offload-only (panel on
// card), bulk-synchronous (the MKL-AO-style baseline), and host
// native.
package chol

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hstreams/internal/app"
	"hstreams/internal/blas"
	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/kernels"
	"hstreams/internal/matrix"
	"hstreams/internal/platform"
)

// ErrBadTiling reports an n that is not divisible by the tile size.
var ErrBadTiling = errors.New("chol: matrix size must be a multiple of the tile size")

// Config describes one tiled-Cholesky run.
type Config struct {
	// N is the matrix edge; Tile the tile edge (N%Tile == 0).
	N, Tile int
	// UseHost includes the host as an update-compute domain (rows
	// round-robin over host + cards). Requires host streams.
	UseHost bool
	// Panel selects where the panel factorizations run.
	Panel PanelPlacement
	// BulkSync inserts a full barrier between passes: no cross-pass
	// pipelining or lookahead (an ablation knob for what the
	// FIFO-semantic pipelining is worth).
	BulkSync bool
	// EvenRows assigns tile-rows evenly instead of rate-weighted —
	// a fixed internal split no user can tune, as in automatic
	// offload.
	EvenRows bool
	// Verify (Real mode) factors a random SPD matrix and checks
	// L·Lᵀ ≈ A.
	Verify bool
	// Seed for the Verify matrix.
	Seed int64
}

// PanelPlacement selects where DPOTRF/DTRSM run.
type PanelPlacement int

const (
	// PanelHost runs blocked DPOTRF and the DTRSMs on host streams —
	// the paper's hetero hStreams scheme (§V).
	PanelHost PanelPlacement = iota
	// PanelCard runs panels on the owning card (pure offload), where
	// the latency-bound kernels are far slower — exactly MAGMA's
	// motivation for doing the opposite.
	PanelCard
	// PanelMagma runs only the unblocked DPOTF2 on the host and the
	// DTRSMs on the cards, with the trailing matrix resident
	// card-side — the MAGMA hybrid (§V, §VI).
	PanelMagma
)

// Result summarizes a run.
type Result struct {
	Seconds time.Duration
	GFlops  float64
}

// tileKey identifies a tile.
type tileKey struct{ i, j int }

// tileState tracks each tile's last writer and per-domain broadcast
// copies — the coherence bookkeeping a tuner maintains on top of the
// FIFO semantic (§II's recipe for cross-stream/cross-domain
// dependences).
type tileState struct {
	last   *core.Action
	stream *core.Stream
	bcast  map[int]*core.Action // domain index → transfer of current version
}

// choreography carries the run state.
type choreography struct {
	a         *app.App
	rt        *core.Runtime
	cfg       Config
	nt        int
	tbytes    int64
	buf       *core.Buf
	owner     []*core.Domain // tile-row → domain
	tiles     map[tileKey]*tileState
	hostPanel *core.Stream // machine-wide host stream for DPOTRF
}

// Run executes the hetero tiled Cholesky and reports performance.
func Run(a *app.App, cfg Config) (Result, error) {
	if cfg.N%cfg.Tile != 0 {
		return Result{}, ErrBadTiling
	}
	c := &choreography{
		a:      a,
		rt:     a.RT,
		cfg:    cfg,
		nt:     cfg.N / cfg.Tile,
		tbytes: kernels.TileBytes(cfg.Tile),
		tiles:  map[tileKey]*tileState{},
	}
	total := int64(c.nt) * int64(c.nt) * c.tbytes
	buf, err := c.rt.Alloc1D("Achol", total)
	if err != nil {
		return Result{}, err
	}
	c.buf = buf

	var spd *matrix.Dense
	if c.rt.Mode() == core.ModeReal {
		kernels.Register(c.rt)
		spd = matrix.RandSPD(cfg.N, cfg.Seed+7)
		tileIn(buf.HostFloat64s(), spd, c.nt, cfg.Tile)
	}

	doms := a.ComputeDomains()
	if len(doms) == 0 {
		return Result{}, app.ErrNoStreams
	}
	if cfg.Panel != PanelCard {
		if len(a.HostStreams()) == 0 && cfg.UseHost {
			return Result{}, fmt.Errorf("chol: host panels require host streams")
		}
		// "For DPOTRF, we use a machine-wide stream on the host"
		// (§V): a dedicated stream spanning all host cores, mapped
		// onto the same resources the regular host streams use.
		host := c.rt.Host()
		var share *core.Stream
		if hs := a.HostStreams(); len(hs) > 0 {
			share = hs[0]
		}
		wide, err := c.rt.StreamCreateOn(host, 0, host.Spec().Cores(), share)
		if err != nil {
			return Result{}, err
		}
		c.hostPanel = wide
	}
	// Row owners: weighted round-robin over compute domains by
	// modeled DGEMM rate, with the host discounted for its panel
	// duty — "DPOTRFs, DTRSMs and SOME of the DSYRKs and DGEMMs
	// execute on the host" (§V).
	c.owner = make([]*core.Domain, c.nt)
	if cfg.EvenRows {
		for i := range c.owner {
			c.owner[i] = doms[i%len(doms)]
		}
	} else {
		c.owner = assignRows(doms, c.nt, cfg.Tile, cfg.Panel != PanelCard)
	}

	start := c.rt.Now()
	if err := c.factor(); err != nil {
		return Result{}, err
	}
	c.rt.ThreadSynchronize()
	if err := c.rt.Err(); err != nil {
		return Result{}, err
	}
	elapsed := c.rt.Now() - start

	if cfg.Verify && c.rt.Mode() == core.ModeReal {
		if err := verifyFactor(buf.HostFloat64s(), spd, c.nt, cfg.Tile); err != nil {
			return Result{}, err
		}
	}
	flops := blas.CholeskyFlops(cfg.N)
	return Result{Seconds: elapsed, GFlops: platform.GFlops(flops, elapsed)}, nil
}

func (c *choreography) state(i, j int) *tileState {
	k := tileKey{i, j}
	st, ok := c.tiles[k]
	if !ok {
		st = &tileState{bcast: map[int]*core.Action{}}
		c.tiles[k] = st
	}
	return st
}

func (c *choreography) off(i, j int) int64 {
	return kernels.TileOff(i, j, c.nt, c.cfg.Tile)
}

// depOn appends st's last writer to deps when it is in a different
// stream (in-stream ordering is the FIFO semantic's job).
func depOn(deps []*core.Action, st *tileState, s *core.Stream) []*core.Action {
	if st.last != nil && st.stream != s && !st.last.Completed() {
		deps = append(deps, st.last)
	}
	return deps
}

// ensureAt makes tile (i, j) resident in stream s's domain,
// broadcasting it from the host if needed, and returns the dependence
// the consumer must honor.
func (c *choreography) ensureAt(i, j int, s *core.Stream) ([]*core.Action, error) {
	st := c.state(i, j)
	d := s.Domain()
	if d.IsHost() {
		var deps []*core.Action
		return depOn(deps, st, s), nil
	}
	if x, ok := st.bcast[d.Index()]; ok {
		if x == nil { // written locally; covered by st.last
			return depOn(nil, st, s), nil
		}
		if x.Stream() != s && !x.Completed() {
			return []*core.Action{x}, nil
		}
		return nil, nil
	}
	// Push the host's current version, ordered after its last writer.
	var deps []*core.Action
	deps = depOn(deps, st, s)
	x, err := s.EnqueueXferDeps(c.buf, c.off(i, j), c.tbytes, core.ToSink, deps)
	if err != nil {
		return nil, err
	}
	st.bcast[d.Index()] = x
	return nil, nil
}

// factor runs the right-looking tiled algorithm of Fig. 5.
func (c *choreography) factor() error {
	tb := int64(c.cfg.Tile)
	var barrier []*core.Action
	for k := 0; k < c.nt; k++ {
		// DPOTRF on the diagonal tile.
		dkk := c.state(k, k)
		var panelDom *core.Domain
		var potrfStream *core.Stream
		if c.cfg.Panel != PanelCard {
			potrfStream = c.hostPanel
			panelDom = potrfStream.Domain()
		} else {
			panelDom = c.owner[k]
			s, err := c.a.NextStream(panelDom)
			if err != nil {
				return err
			}
			potrfStream = s
		}
		deps := cloneDeps(barrier)
		if ens, err := c.ensureAt(k, k, potrfStream); err != nil {
			return err
		} else {
			deps = append(deps, ens...)
		}
		deps = depOn(deps, dkk, potrfStream)
		potrfCost := potrfTileCost(c.cfg.Tile)
		if c.cfg.Panel == PanelMagma {
			// MAGMA ships the unblocked, latency-bound DPOTF2 to the
			// host (§VI).
			potrfCost = kernels.Potf2Cost(c.cfg.Tile)
		}
		potrf, err := potrfStream.EnqueueComputeDeps(kernels.Dpotf2, []int64{tb},
			[]core.Operand{c.buf.Range(c.off(k, k), c.tbytes, core.InOut)},
			potrfCost, deps)
		if err != nil {
			return err
		}
		dkk.last, dkk.stream = potrf, potrfStream
		dkk.bcast = map[int]*core.Action{}
		if !panelDom.IsHost() {
			dkk.bcast[panelDom.Index()] = nil
			// Pure offload on one card keeps everything there; if
			// other domains exist they will re-broadcast from host,
			// so send the factored tile home.
			if pull, err := potrfStream.EnqueueXfer(c.buf, c.off(k, k), c.tbytes, core.ToSource); err != nil {
				return err
			} else {
				dkk.last, dkk.stream = pull, potrfStream
			}
		}

		// DTRSMs down column k.
		for i := k + 1; i < c.nt; i++ {
			var s *core.Stream
			if c.cfg.Panel == PanelHost {
				if len(c.a.HostStreams()) > 0 {
					var err error
					if s, err = c.a.NextStream(c.rt.Host()); err != nil {
						return err
					}
				} else {
					s = c.hostPanel
				}
			} else {
				var err error
				if s, err = c.a.NextStream(c.owner[i]); err != nil {
					return err
				}
			}
			sti := c.state(i, k)
			deps := cloneDeps(barrier)
			for _, tile := range []tileKey{{k, k}, {i, k}} {
				if ens, err := c.ensureAt(tile.i, tile.j, s); err != nil {
					return err
				} else {
					deps = append(deps, ens...)
				}
			}
			deps = depOn(deps, c.state(k, k), s)
			deps = depOn(deps, sti, s)
			trsm, err := s.EnqueueComputeDeps(kernels.Dtrsm, []int64{tb, tb},
				[]core.Operand{
					c.buf.Range(c.off(k, k), c.tbytes, core.In),
					c.buf.Range(c.off(i, k), c.tbytes, core.InOut),
				}, kernels.TrsmCost(c.cfg.Tile, c.cfg.Tile), deps)
			if err != nil {
				return err
			}
			sti.last, sti.stream = trsm, s
			sti.bcast = map[int]*core.Action{}
			if !s.Domain().IsHost() {
				sti.bcast[s.Domain().Index()] = nil
				if pull, err := s.EnqueueXfer(c.buf, c.off(i, k), c.tbytes, core.ToSource); err != nil {
					return err
				} else {
					sti.last, sti.stream = pull, s
				}
			}
		}

		// Trailing updates: row i owned by owner[i]; results in
		// column k+1 are pulled home for the next panel.
		var passTail []*core.Action
		for i := k + 1; i < c.nt; i++ {
			d := c.owner[i]
			for j := k + 1; j <= i; j++ {
				s, err := c.a.NextStream(d)
				if err != nil {
					return err
				}
				stij := c.state(i, j)
				deps := cloneDeps(barrier)
				need := []tileKey{{i, k}}
				if i != j {
					need = append(need, tileKey{j, k})
				}
				for _, tile := range need {
					if ens, err := c.ensureAt(tile.i, tile.j, s); err != nil {
						return err
					} else {
						deps = append(deps, ens...)
					}
					deps = depOn(deps, c.state(tile.i, tile.j), s)
				}
				if ens, err := c.ensureAt(i, j, s); err != nil {
					return err
				} else {
					deps = append(deps, ens...)
				}
				deps = depOn(deps, stij, s)

				var upd *core.Action
				if i == j {
					upd, err = s.EnqueueComputeDeps(kernels.Dsyrk, []int64{tb, tb},
						[]core.Operand{
							c.buf.Range(c.off(i, k), c.tbytes, core.In),
							c.buf.Range(c.off(i, i), c.tbytes, core.InOut),
						}, kernels.SyrkCost(c.cfg.Tile, c.cfg.Tile), deps)
				} else {
					upd, err = s.EnqueueComputeDeps(kernels.Dgemm, []int64{tb, tb, tb},
						[]core.Operand{
							c.buf.Range(c.off(i, k), c.tbytes, core.In),
							c.buf.Range(c.off(j, k), c.tbytes, core.In),
							c.buf.Range(c.off(i, j), c.tbytes, core.InOut),
						}, kernels.GemmCost(c.cfg.Tile, c.cfg.Tile, c.cfg.Tile), deps)
				}
				if err != nil {
					return err
				}
				stij.last, stij.stream = upd, s
				stij.bcast = map[int]*core.Action{}
				if !d.IsHost() {
					stij.bcast[d.Index()] = nil
				}
				// Column k+1 goes home for the next panel (§V).
				if j == k+1 && !d.IsHost() && c.cfg.Panel != PanelCard {
					pull, err := s.EnqueueXfer(c.buf, c.off(i, j), c.tbytes, core.ToSource)
					if err != nil {
						return err
					}
					stij.last, stij.stream = pull, s
				}
				if c.cfg.BulkSync {
					passTail = append(passTail, upd)
				}
			}
		}
		if c.cfg.BulkSync {
			barrier = passTail
		}
	}
	return nil
}

// assignRows distributes tile-rows over the compute domains in an
// interleaved pattern proportional to each domain's modeled DGEMM
// rate. The host's weight is discounted when it also runs the panel
// factorizations.
func assignRows(doms []*core.Domain, nt, tb int, panelOnHost bool) []*core.Domain {
	// The host's update capacity is reduced by its panel duty, which
	// is the DPOTRF+DTRSM share of the total work: ~(nt²/2)·tb³ of
	// panel flops against (nt³/3)·tb³ updates, i.e. a fraction that
	// shrinks as ≈2.5/nt.
	hostDiscount := 0.75
	weights := make([]float64, len(doms))
	var sum float64
	for i, d := range doms {
		cst := kernels.GemmCost(tb, tb, tb)
		t := platform.ComputeTime(d.Spec(), d.Spec().Cores(), cst)
		weights[i] = cst.Flops / t.Seconds()
		if d.IsHost() && panelOnHost {
			weights[i] *= hostDiscount
		}
		sum += weights[i]
	}
	owner := make([]*core.Domain, nt)
	acc := make([]float64, len(doms))
	for r := 0; r < nt; r++ {
		best := 0
		for i := range doms {
			// Pick the domain furthest behind its fair share.
			if acc[i]/weights[i] < acc[best]/weights[best] {
				best = i
			}
		}
		owner[r] = doms[best]
		acc[best] += sum
	}
	return owner
}

// RunBestHetero runs the hetero configuration under both row
// assignments — rate-weighted and even — and returns the better
// result. This is the paper's "ease of design exploration" point
// (§VI): hStreams' few-parameter mapping makes trying candidate
// distributions cheap, which is how four days of tuning beat MKL AO's
// fixed internal split by ~10 %.
func RunBestHetero(machine func() *platform.Machine, mode core.Mode, n, tile, hostStreams int) (Result, error) {
	best := Result{}
	for _, even := range []bool{false, true} {
		a, err := app.Init(app.Options{
			Machine:        machine(),
			Mode:           mode,
			StreamsPerCard: 4,
			HostStreams:    hostStreams,
		})
		if err != nil {
			return Result{}, err
		}
		r, err := Run(a, Config{N: n, Tile: tile, UseHost: hostStreams > 0, Panel: PanelHost, EvenRows: even})
		a.Fini()
		if err != nil {
			return Result{}, err
		}
		if r.GFlops > best.GFlops {
			best = r
		}
	}
	return best, nil
}

// cloneDeps copies a dependence list so per-action appends cannot
// alias the shared pass barrier.
func cloneDeps(deps []*core.Action) []*core.Action {
	if len(deps) == 0 {
		return nil
	}
	return append([]*core.Action(nil), deps...)
}

// potrfTileCost is the cost of factoring one tile with a blocked
// DPOTRF (MKL-style), as the hetero and offload variants do.
func potrfTileCost(n int) platform.Cost {
	return platform.Cost{
		Kernel: platform.KDPOTRF,
		Flops:  float64(n) * float64(n) * float64(n) / 3,
		N:      n,
	}
}

// RunNative is the host-only baseline: one MKL-style DPOTRF on all
// host cores (the "HSW native (MKL)" curve in Fig. 7).
func RunNative(machine *platform.Machine, mode core.Mode, n int, seed int64) (Result, error) {
	rt, err := core.Init(core.Config{Machine: machine, Mode: mode})
	if err != nil {
		return Result{}, err
	}
	defer rt.Fini()
	host := rt.Host()
	s, err := rt.StreamCreate(host, 0, host.Spec().Cores())
	if err != nil {
		return Result{}, err
	}
	buf, err := rt.Alloc1D("Anative", int64(n)*int64(n)*8)
	if err != nil {
		return Result{}, err
	}
	var spd *matrix.Dense
	if mode == core.ModeReal {
		rt.RegisterKernel("dpotrf.native", func(ctx *core.KernelCtx) {
			nn := int(ctx.Args[0])
			a := floatbits.Float64s(ctx.Ops[0])
			if err := blas.Dpotrf(blas.Lower, nn, a, nn); err != nil {
				panic(err)
			}
		})
		spd = matrix.RandSPD(n, seed+7)
		copy(buf.HostFloat64s(), spd.Data)
	} else {
		rt.RegisterKernel("dpotrf.native", func(ctx *core.KernelCtx) {})
	}
	start := rt.Now()
	a, err := s.EnqueueCompute("dpotrf.native", []int64{int64(n)},
		[]core.Operand{buf.All(core.InOut)}, kernels.PotrfCost(n))
	if err != nil {
		return Result{}, err
	}
	if err := a.Wait(); err != nil {
		return Result{}, err
	}
	elapsed := rt.Now() - start
	if mode == core.ModeReal {
		l := matrix.FromSlice(n, n, n, buf.HostFloat64s())
		if d := matrix.LowerTimesLowerT(l).MaxDiff(spd); d > 1e-7*float64(n) {
			return Result{}, fmt.Errorf("chol: native verification failed: %g", d)
		}
	}
	return Result{Seconds: elapsed, GFlops: platform.GFlops(blas.CholeskyFlops(n), elapsed)}, nil
}

// tileIn packs the dense SPD matrix into tile-major storage (both
// triangles, so tile kernels see consistent mirrors).
func tileIn(dst []float64, src *matrix.Dense, nt, tb int) {
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < nt; ti++ {
			tile := dst[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				for ii := 0; ii < tb; ii++ {
					tile[ii+jj*tb] = src.At(ti*tb+ii, tj*tb+jj)
				}
			}
		}
	}
}

// verifyFactor reconstructs L·Lᵀ from the factored lower tiles and
// compares with the original.
func verifyFactor(data []float64, spd *matrix.Dense, nt, tb int) error {
	n := nt * tb
	l := matrix.New(n, n)
	for tj := 0; tj < nt; tj++ {
		for ti := tj; ti < nt; ti++ {
			tile := data[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				for ii := 0; ii < tb; ii++ {
					gi, gj := ti*tb+ii, tj*tb+jj
					if gi >= gj {
						l.Set(gi, gj, tile[ii+jj*tb])
					}
				}
			}
		}
	}
	rec := matrix.LowerTimesLowerT(l)
	tol := 1e-7 * float64(n) * math.Max(1, spd.NormInf())
	if d := rec.MaxDiff(spd); d > tol {
		return fmt.Errorf("chol: verification failed: max diff %g (tol %g)", d, tol)
	}
	return nil
}
