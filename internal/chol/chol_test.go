package chol

import (
	"testing"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

func newApp(t *testing.T, m *platform.Machine, mode core.Mode, hostStreams int) *app.App {
	t.Helper()
	a, err := app.Init(app.Options{
		Machine:        m,
		Mode:           mode,
		StreamsPerCard: 4,
		HostStreams:    hostStreams,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Fini)
	return a
}

func TestRealHeteroCholeskyCorrect(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(1), core.ModeReal, 2)
	res, err := Run(a, Config{N: 48, Tile: 12, UseHost: true, Panel: PanelHost, Verify: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFlops <= 0 {
		t.Fatal("no performance measured")
	}
}

func TestRealHetero2CardsCholeskyCorrect(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(2), core.ModeReal, 2)
	if _, err := Run(a, Config{N: 60, Tile: 12, UseHost: true, Panel: PanelHost, Verify: true, Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRealOffloadCholeskyCorrect(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(1), core.ModeReal, 0)
	if _, err := Run(a, Config{N: 36, Tile: 12, Panel: PanelCard, Verify: true, Seed: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestRealBulkSyncCholeskyCorrect(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(1), core.ModeReal, 2)
	if _, err := Run(a, Config{N: 36, Tile: 12, UseHost: true, Panel: PanelHost, BulkSync: true, Verify: true, Seed: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestRealNativeCholeskyCorrect(t *testing.T) {
	if _, err := RunNative(platform.HSWPlusKNC(0), core.ModeReal, 64, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRealOmpSsCholeskyCorrect(t *testing.T) {
	if _, err := RunOmpSs(platform.HSWPlusKNC(1), core.ModeReal, 48, 12, true, 6); err != nil {
		t.Fatal(err)
	}
}

func TestBadTiling(t *testing.T) {
	a := newApp(t, platform.HSWPlusKNC(1), core.ModeSim, 1)
	if _, err := Run(a, Config{N: 100, Tile: 7}); err != ErrBadTiling {
		t.Fatalf("err = %v, want ErrBadTiling", err)
	}
	if _, err := RunOmpSs(platform.HSWPlusKNC(1), core.ModeSim, 100, 7, false, 0); err != ErrBadTiling {
		t.Fatalf("ompss err = %v, want ErrBadTiling", err)
	}
}

// TestSimFig7Ordering verifies the central Fig. 7 relationships at a
// paper-scale size: hetero hStreams (host+cards) > bulk-sync AO-style
// > pure offload > host native, and 2 cards > 1 card.
func TestSimFig7Ordering(t *testing.T) {
	const n, tile = 24000, 2400
	hetero := func(cards int, bulk bool) float64 {
		a := newApp(t, platform.HSWPlusKNC(cards), core.ModeSim, 4)
		res, err := Run(a, Config{N: n, Tile: tile, UseHost: true, Panel: PanelHost, BulkSync: bulk})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFlops
	}
	h2 := hetero(2, false)
	h1 := hetero(1, false)
	ao1 := hetero(1, true)

	aOff := newApp(t, platform.HSWPlusKNC(1), core.ModeSim, 0)
	off, err := Run(aOff, Config{N: n, Tile: tile, Panel: PanelCard})
	if err != nil {
		t.Fatal(err)
	}
	native, err := RunNative(platform.HSWPlusKNC(0), core.ModeSim, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("GF/s: H+2K=%.0f H+1K=%.0f AO(1K)=%.0f offload=%.0f native=%.0f",
		h2, h1, ao1, off.GFlops, native.GFlops)
	if !(h2 > h1) {
		t.Fatalf("2 cards (%.0f) not faster than 1 (%.0f)", h2, h1)
	}
	if !(h1 > ao1) {
		t.Fatalf("pipelined hStreams (%.0f) not faster than bulk-sync AO style (%.0f)", h1, ao1)
	}
	if !(off.GFlops > native.GFlops) {
		t.Fatalf("offload (%.0f) not faster than host native (%.0f)", off.GFlops, native.GFlops)
	}
	if !(h1 > off.GFlops) {
		t.Fatalf("hetero (%.0f) not faster than offload-ish (%.0f)", h1, off.GFlops)
	}
}

// TestSimOmpSsOverheadBand reproduces §III: OmpSs induces 15–50 %
// overhead over plain hStreams for matrices 4800–10000 on a side, and
// the gap narrows for large problems.
func TestSimOmpSsOverheadBand(t *testing.T) {
	overheadAt := func(n, tile int) float64 {
		a := newApp(t, platform.HSWPlusKNC(1), core.ModeSim, 0)
		plain, err := Run(a, Config{N: n, Tile: tile, Panel: PanelCard})
		if err != nil {
			t.Fatal(err)
		}
		om, err := RunOmpSs(platform.HSWPlusKNC(1), core.ModeSim, n, tile, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		return om.Seconds.Seconds()/plain.Seconds.Seconds() - 1
	}
	small := overheadAt(4800, 600)
	big := overheadAt(24000, 2400)
	t.Logf("OmpSs overhead: %.0f%% at 4800, %.0f%% at 24000", small*100, big*100)
	if small < 0.10 || small > 0.60 {
		t.Fatalf("overhead at 4800 = %.0f%%, want within the paper's 15–50%% band (±5)", small*100)
	}
	if big >= small {
		t.Fatalf("overhead must shrink with size: %.0f%% at 24000 ≥ %.0f%% at 4800", big*100, small*100)
	}
}

// TestSimCholeskyScalingDegrades reproduces §VI: Cholesky scaling
// efficiency from 1→2 cards is worse than matmul's because the upper
// triangle does no work.
func TestSimCholeskyScalingEfficiency(t *testing.T) {
	const n, tile = 28800, 2400
	run := func(cards int) float64 {
		a := newApp(t, platform.HSWPlusKNC(cards), core.ModeSim, 4)
		res, err := Run(a, Config{N: n, Tile: tile, UseHost: true, Panel: PanelHost})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFlops
	}
	g1 := run(1)
	g2 := run(2)
	gain := g2 / g1
	t.Logf("Cholesky 1→2 card gain: %.2f×", gain)
	if gain < 1.05 {
		t.Fatalf("no scaling at all: %.2f×", gain)
	}
	if gain > 1.75 {
		t.Fatalf("Cholesky scaled implausibly well (%.2f×); paper reports degraded efficiency", gain)
	}
}
