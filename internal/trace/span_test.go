package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func span(id uint64, deps ...Dep) *Span {
	return &Span{ID: id, Run: 1, Stream: "s0", Deps: deps}
}

func TestFlightRecordSnapshot(t *testing.T) {
	f := NewFlight(4)
	for i := uint64(1); i <= 3; i++ {
		f.Record(span(i))
	}
	got := f.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(got))
	}
	for i, s := range got {
		if s.ID != uint64(i+1) {
			t.Fatalf("Snapshot[%d].ID = %d, want %d (oldest first)", i, s.ID, i+1)
		}
	}
	if f.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", f.Dropped())
	}
}

func TestFlightWrapsKeepingNewest(t *testing.T) {
	f := NewFlight(4)
	for i := uint64(1); i <= 10; i++ {
		f.Record(span(i))
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(got))
	}
	for i, s := range got {
		if s.ID != uint64(i+7) {
			t.Fatalf("Snapshot[%d].ID = %d, want %d", i, s.ID, i+7)
		}
	}
	if f.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", f.Dropped())
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	f.Reset()
	if n := len(f.Snapshot()); n != 0 {
		t.Fatalf("post-Reset Snapshot len = %d, want 0", n)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(span(1)) // must not panic
	if f.Snapshot() != nil || f.Cap() != 0 || f.Total() != 0 || f.Dropped() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	f.Reset()
}

func TestFlightCapacityRounding(t *testing.T) {
	if got := NewFlight(5).Cap(); got != 8 {
		t.Fatalf("Cap = %d, want 8", got)
	}
	if got := NewFlight(0).Cap(); got != defaultFlightCap {
		t.Fatalf("default Cap = %d, want %d", got, defaultFlightCap)
	}
}

// TestFlightConcurrentRecord exercises the lock-free ring from many
// goroutines; run under -race this is the "stays on in production"
// safety check.
func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(span(uint64(g*1000 + i)))
				if i%50 == 0 {
					f.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", f.Total())
	}
	if n := len(f.Snapshot()); n != 64 {
		t.Fatalf("Snapshot len = %d, want 64", n)
	}
}

func TestLatestRunFilters(t *testing.T) {
	spans := []Span{{ID: 1, Run: 1}, {ID: 2, Run: 2}, {ID: 3, Run: 2}}
	got := LatestRun(spans)
	if len(got) != 2 || got[0].Run != 2 || got[1].Run != 2 {
		t.Fatalf("LatestRun = %+v, want the two run-2 spans", got)
	}
	if n := len(FilterRun(spans, 1)); n != 1 {
		t.Fatalf("FilterRun(1) len = %d, want 1", n)
	}
}

func TestWriteChromeSpansFlowEvents(t *testing.T) {
	spans := []Span{
		{ID: 1, Run: 3, Kind: Transfer, Stream: "c.s0", Domain: "KNC0", Src: "HSW", Dst: "KNC0",
			Enqueue: 0, Ready: 0, Launch: 0, Finish: ms(10), Bytes: 64},
		{ID: 2, Run: 3, Kind: Compute, Stream: "c.s1", Domain: "KNC0", Label: "dgemm",
			Enqueue: ms(1), Ready: ms(10), Launch: ms(10), Finish: ms(30), Flops: 100,
			Deps: []Dep{{ID: 1, Why: DepEvent}}},
	}
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"ph":"s"`, `"ph":"f"`, `"bp":"e"`, `"cat":"event"`,
		`"ph":"X"`, `"dgemm"`, `"process_name"`, `"thread_name"`, `"run 3"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome spans output missing %s:\n%s", want, out)
		}
	}
	// Exactly one flow pair for the single dependence edge.
	if n := strings.Count(out, `"ph":"s"`); n != 1 {
		t.Fatalf("flow starts = %d, want 1", n)
	}
}
