package trace

import (
	"strings"
	"testing"
	"time"
)

// chainSpans builds the canonical pipeline DAG:
//
//	1: xfer   [0,10ms]           (enqueued at 0)
//	2: dgemm  [10,40ms]  dep 1   (enqueued at 1ms, stalls 9ms)
//	3: xfer   [40,50ms]  dep 2   (enqueued at 2ms)
//	4: dgemm  [5,20ms]           (independent, off path)
func chainSpans() []Span {
	return []Span{
		{ID: 1, Run: 1, Kind: Transfer, Stream: "c.s0", Domain: "KNC0", Src: "HSW", Dst: "KNC0",
			Enqueue: 0, Ready: 0, Launch: 0, Finish: ms(10), Bytes: 1 << 20},
		{ID: 2, Run: 1, Kind: Compute, Stream: "c.s0", Domain: "KNC0", Label: "dgemm",
			Enqueue: ms(1), Ready: ms(10), Launch: ms(10), Finish: ms(40),
			Deps: []Dep{{ID: 1, Why: DepFIFO}}},
		{ID: 3, Run: 1, Kind: Transfer, Stream: "c.s0", Domain: "KNC0", Src: "KNC0", Dst: "HSW",
			Enqueue: ms(2), Ready: ms(40), Launch: ms(40), Finish: ms(50),
			Deps: []Dep{{ID: 2, Why: DepFIFO}}},
		{ID: 4, Run: 1, Kind: Compute, Stream: "h.s0", Domain: "HSW", Label: "side",
			Enqueue: ms(5), Ready: ms(5), Launch: ms(5), Finish: ms(20)},
	}
}

func TestAnalyzeCriticalPath(t *testing.T) {
	rep := Analyze(chainSpans())
	if rep.Makespan != ms(50) {
		t.Fatalf("Makespan = %v, want 50ms", rep.Makespan)
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("path length = %d, want 3", len(rep.Steps))
	}
	for i, want := range []uint64{1, 2, 3} {
		if rep.Steps[i].Span.ID != want {
			t.Fatalf("Steps[%d].ID = %d, want %d", i, rep.Steps[i].Span.ID, want)
		}
	}
	if got := rep.CategorySum(); got != rep.Makespan {
		t.Fatalf("CategorySum = %v, want exactly makespan %v", got, rep.Makespan)
	}
	if got := rep.Categories[CatCompute]; got != ms(30) {
		t.Fatalf("compute = %v, want 30ms", got)
	}
	if got := rep.Categories[CatTransfer]; got != ms(20) {
		t.Fatalf("transfer = %v, want 20ms", got)
	}
	if got := rep.Categories[CatStall]; got != 0 {
		t.Fatalf("dep-stall = %v, want 0 (chain is tight)", got)
	}
	if got := rep.ByDomain["KNC0"]; got != ms(30) {
		t.Fatalf("ByDomain[KNC0] = %v, want 30ms", got)
	}
	if got := rep.ByLink["HSW→KNC0"]; got != ms(10) {
		t.Fatalf("ByLink[HSW→KNC0] = %v, want 10ms", got)
	}
	if got := rep.ByLink["KNC0→HSW"]; got != ms(10) {
		t.Fatalf("ByLink[KNC0→HSW] = %v, want 10ms", got)
	}
}

func TestAnalyzeStallAndSlack(t *testing.T) {
	spans := chainSpans()
	// Delay the final transfer's launch: ready at 40ms but launched
	// at 44ms (scheduler latency), finishing at 54ms.
	spans[2].Launch, spans[2].Finish = ms(44), ms(54)
	rep := Analyze(spans)
	if got := rep.Categories[CatSched]; got != ms(4) {
		t.Fatalf("sched-latency = %v, want 4ms", got)
	}
	if got := rep.CategorySum(); got != rep.Makespan {
		t.Fatalf("CategorySum = %v, want %v", got, rep.Makespan)
	}
	// The off-path action (id 4) has no successors: its slack is
	// makespan end minus its finish.
	if len(rep.Slack) != 1 || rep.Slack[0].ID != 4 {
		t.Fatalf("Slack = %+v, want exactly action 4", rep.Slack)
	}
	if got := rep.Slack[0].Slack; got != ms(34) {
		t.Fatalf("slack(4) = %v, want 34ms", got)
	}
}

func TestAnalyzeMissingPredecessorDegrades(t *testing.T) {
	spans := chainSpans()[1:] // span 1 evicted from the ring
	rep := Analyze(spans)
	// The walk cannot cross the missing edge: it roots at span 2 and
	// the pre-enqueue time lands in source-enqueue.
	if len(rep.Steps) != 2 {
		t.Fatalf("path length = %d, want 2", len(rep.Steps))
	}
	if got := rep.CategorySum(); got != rep.Makespan {
		t.Fatalf("CategorySum = %v, want %v", got, rep.Makespan)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.Makespan != 0 || len(rep.Steps) != 0 {
		t.Fatalf("empty analysis = %+v, want zero report", rep)
	}
	if !strings.Contains(rep.Format(), "no spans") {
		t.Fatal("empty Format should say so")
	}
}

func TestReportFormat(t *testing.T) {
	rep := Analyze(chainSpans())
	out := rep.Format()
	for _, want := range []string{"critical path", CatCompute, CatTransfer, "dgemm", "KNC0", "HSW→KNC0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeRealModeSkewClamped feeds timestamps with Real-mode
// clock skew (predecessor finish slightly after successor ready) and
// checks the attribution never goes negative.
func TestAnalyzeRealModeSkewClamped(t *testing.T) {
	spans := []Span{
		{ID: 1, Run: 1, Kind: Compute, Stream: "s", Domain: "d",
			Enqueue: 0, Ready: 0, Launch: 0, Finish: ms(10)},
		{ID: 2, Run: 1, Kind: Compute, Stream: "s", Domain: "d",
			Enqueue: ms(1), Ready: ms(9), Launch: ms(9) + 500*time.Microsecond, Finish: ms(20),
			Deps: []Dep{{ID: 1, Why: DepFIFO}}},
	}
	rep := Analyze(spans)
	for c, d := range rep.Categories {
		if d < 0 {
			t.Fatalf("category %s went negative: %v", c, d)
		}
	}
	if got := rep.CategorySum(); got != rep.Makespan {
		t.Fatalf("CategorySum = %v, want %v", got, rep.Makespan)
	}
}
