package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestMakespanAndBusy(t *testing.T) {
	r := New()
	r.Add(Record{ID: 1, Kind: Compute, Stream: "s0", Start: ms(10), End: ms(30), Flops: 100})
	r.Add(Record{ID: 2, Kind: Transfer, Stream: "s0", Start: ms(5), End: ms(15), Bytes: 64})
	r.Add(Record{ID: 3, Kind: Compute, Stream: "s1", Start: ms(20), End: ms(50), Flops: 200})
	if got := r.Makespan(); got != ms(45) {
		t.Fatalf("Makespan = %v, want 45ms", got)
	}
	if got := r.BusyTime(Compute); got != ms(50) {
		t.Fatalf("BusyTime(Compute) = %v, want 50ms", got)
	}
	if got := r.BusyTime(Transfer); got != ms(10) {
		t.Fatalf("BusyTime(Transfer) = %v, want 10ms", got)
	}
	if got := r.TotalFlops(); got != 300 {
		t.Fatalf("TotalFlops = %v, want 300", got)
	}
	if got := r.TotalBytes(); got != 64 {
		t.Fatalf("TotalBytes = %v, want 64", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestRecordsSorted(t *testing.T) {
	r := New()
	r.Add(Record{ID: 2, Start: ms(20), End: ms(21)})
	r.Add(Record{ID: 1, Start: ms(10), End: ms(11)})
	r.Add(Record{ID: 3, Start: ms(10), End: ms(12)})
	recs := r.Records()
	if recs[0].ID != 1 || recs[1].ID != 3 || recs[2].ID != 2 {
		t.Fatalf("order = %v", []uint64{recs[0].ID, recs[1].ID, recs[2].ID})
	}
}

func TestOverlapComputeTransfer(t *testing.T) {
	r := New()
	// compute [0,100), transfer [40,60) → 20ms overlap
	r.Add(Record{ID: 1, Kind: Compute, Start: 0, End: ms(100)})
	r.Add(Record{ID: 2, Kind: Transfer, Start: ms(40), End: ms(60)})
	if got := r.OverlapTime(Compute, Transfer); got != ms(20) {
		t.Fatalf("overlap = %v, want 20ms", got)
	}
}

func TestOverlapTouchingIntervalsIsZero(t *testing.T) {
	r := New()
	r.Add(Record{ID: 1, Kind: Compute, Start: 0, End: ms(10)})
	r.Add(Record{ID: 2, Kind: Transfer, Start: ms(10), End: ms(20)})
	if got := r.OverlapTime(Compute, Transfer); got != 0 {
		t.Fatalf("touching intervals overlap = %v, want 0", got)
	}
}

func TestOverlapSameKind(t *testing.T) {
	r := New()
	r.Add(Record{ID: 1, Kind: Compute, Start: 0, End: ms(30)})
	r.Add(Record{ID: 2, Kind: Compute, Start: ms(20), End: ms(50)})
	if got := r.OverlapTime(Compute, Compute); got != ms(10) {
		t.Fatalf("self-overlap = %v, want 10ms", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Record{ID: 1})
	if r.Records() != nil || r.Len() != 0 || r.Makespan() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	r.Reset()
}

func TestReset(t *testing.T) {
	r := New()
	r.Add(Record{ID: 1, Start: 0, End: ms(5)})
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset left records behind")
	}
}

func TestGantt(t *testing.T) {
	r := New()
	r.Add(Record{ID: 1, Kind: Compute, Stream: "s0", Start: 0, End: ms(50)})
	r.Add(Record{ID: 2, Kind: Transfer, Stream: "s1", Start: ms(25), End: ms(100)})
	g := r.Gantt(40)
	if !strings.Contains(g, "s0") || !strings.Contains(g, "s1") {
		t.Fatalf("gantt missing streams:\n%s", g)
	}
	if !strings.Contains(g, "C") || !strings.Contains(g, "T") {
		t.Fatalf("gantt missing marks:\n%s", g)
	}
	if New().Gantt(10) != "(empty trace)\n" {
		t.Fatal("empty gantt")
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Transfer.String() != "transfer" || Sync.String() != "sync" {
		t.Fatal("kind names")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind name empty")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New()
	r.Add(Record{ID: 1, Kind: Compute, Stream: "KNC0.s0", Domain: "KNC0", Label: "dgemm", Start: ms(1), End: ms(3), Flops: 100})
	r.Add(Record{ID: 2, Kind: Transfer, Stream: "KNC0.s1", Domain: "KNC0", Start: 0, End: ms(1), Bytes: 64})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 thread-name metadata + 2 complete events.
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	var metas, completes int
	for _, e := range events {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			completes++
			if e["ts"] == nil || e["dur"] == nil {
				t.Fatalf("complete event missing ts/dur: %v", e)
			}
		}
	}
	if metas != 2 || completes != 2 {
		t.Fatalf("metas=%d completes=%d, want 2/2", metas, completes)
	}
	for _, e := range events {
		if e["ph"] == "X" && e["name"] == "dgemm" {
			if e["dur"].(float64) != 2000 { // 2ms in µs
				t.Fatalf("dgemm dur = %v µs, want 2000", e["dur"])
			}
		}
	}
}

// TestChromeTraceTIDsSortedOrder is a regression test for the row
// ordering bug where TIDs followed first-appearance order (which
// varies with completion order) while metadata was emitted in sorted
// order: TIDs must rank streams by sorted name, and every event must
// carry its stream's TID.
func TestChromeTraceTIDsSortedOrder(t *testing.T) {
	r := New()
	// First appearance deliberately in reverse-sorted stream order.
	r.Add(Record{ID: 1, Kind: Compute, Stream: "z.s1", Start: 0, End: ms(1)})
	r.Add(Record{ID: 2, Kind: Compute, Stream: "a.s0", Start: ms(1), End: ms(2)})
	r.Add(Record{ID: 3, Kind: Transfer, Stream: "m.s2", Start: ms(2), End: ms(3)})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	wantTID := map[string]int{"a.s0": 0, "m.s2": 1, "z.s1": 2}
	metaTID := map[string]int{}
	for _, e := range events {
		if e["ph"] != "M" {
			continue
		}
		name := e["args"].(map[string]interface{})["name"].(string)
		metaTID[name] = int(e["tid"].(float64))
	}
	for name, want := range wantTID {
		if metaTID[name] != want {
			t.Fatalf("meta tid for %s = %d, want %d (sorted order)", name, metaTID[name], want)
		}
	}
	// Events reference their stream's tid. Events carry no stream
	// name, so match through the recorded timeline.
	for _, rec := range r.Records() {
		found := false
		for _, e := range events {
			if e["ph"] == "X" && e["ts"].(float64) == float64(rec.Start.Microseconds()) {
				if got := int(e["tid"].(float64)); got != wantTID[rec.Stream] {
					t.Fatalf("event in %s has tid %d, want %d", rec.Stream, got, wantTID[rec.Stream])
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("no event found for record %d", rec.ID)
		}
	}
}
