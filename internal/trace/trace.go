// Package trace records per-action execution timelines (start, end,
// resource) from either execution mode, and computes the schedule
// statistics the evaluation relies on: makespan, per-kind busy time,
// and compute/transfer overlap.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a timeline record.
type Kind int

const (
	// Compute is a kernel invocation at a stream sink.
	Compute Kind = iota
	// Transfer is a data movement action.
	Transfer
	// Sync is a synchronization marker.
	Sync
)

// String labels the record kind for trace output.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Transfer:
		return "transfer"
	case Sync:
		return "sync"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one completed action.
type Record struct {
	ID     uint64
	Kind   Kind
	Stream string
	Domain string
	Label  string
	Start  time.Duration
	End    time.Duration
	Bytes  int64
	Flops  float64
}

// Dur returns the record's duration.
func (r Record) Dur() time.Duration { return r.End - r.Start }

// Recorder accumulates records. It is safe for concurrent use. A nil
// Recorder discards everything, so callers never need nil checks.
type Recorder struct {
	mu   sync.Mutex
	recs []Record
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add appends a record.
func (t *Recorder) Add(r Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recs = append(t.recs, r)
	t.mu.Unlock()
}

// Records returns a copy of all records sorted by start time.
func (t *Recorder) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Record(nil), t.recs...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports the number of records.
func (t *Recorder) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Reset discards all records.
func (t *Recorder) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recs = t.recs[:0]
	t.mu.Unlock()
}

// Makespan returns the span from the earliest start to the latest end.
func (t *Recorder) Makespan() time.Duration {
	recs := t.Records()
	if len(recs) == 0 {
		return 0
	}
	first := recs[0].Start
	var last time.Duration
	for _, r := range recs {
		if r.End > last {
			last = r.End
		}
	}
	return last - first
}

// BusyTime sums durations of records of the given kind.
func (t *Recorder) BusyTime(k Kind) time.Duration {
	var total time.Duration
	for _, r := range t.Records() {
		if r.Kind == k {
			total += r.Dur()
		}
	}
	return total
}

// TotalFlops sums the operation counts of all compute records.
func (t *Recorder) TotalFlops() float64 {
	var total float64
	for _, r := range t.Records() {
		total += r.Flops
	}
	return total
}

// TotalBytes sums the byte counts of all transfer records.
func (t *Recorder) TotalBytes() int64 {
	var total int64
	for _, r := range t.Records() {
		if r.Kind == Transfer {
			total += r.Bytes
		}
	}
	return total
}

// OverlapTime returns the total time during which at least one record
// of kind a and one of kind b were simultaneously in flight — the
// compute/communication overlap the streaming model exists to create.
func (t *Recorder) OverlapTime(a, b Kind) time.Duration {
	type edge struct {
		at    time.Duration
		kind  Kind
		delta int
	}
	var edges []edge
	for _, r := range t.Records() {
		if r.Kind != a && r.Kind != b {
			continue
		}
		edges = append(edges, edge{r.Start, r.Kind, +1}, edge{r.End, r.Kind, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		// Process ends before starts at the same instant so touching
		// intervals don't count as overlap.
		return edges[i].delta < edges[j].delta
	})
	var overlap time.Duration
	var depthA, depthB int
	var prev time.Duration
	for _, e := range edges {
		overlapping := depthA > 0 && depthB > 0
		if a == b {
			// Self-overlap means two records of the kind in flight.
			overlapping = depthA >= 2
		}
		if overlapping {
			overlap += e.at - prev
		}
		prev = e.at
		if e.kind == a {
			depthA += e.delta
		}
		if e.kind == b && a != b {
			depthB += e.delta
		}
	}
	return overlap
}

// Gantt renders a crude text timeline (one row per stream), useful in
// examples and debugging.
func (t *Recorder) Gantt(width int) string {
	recs := t.Records()
	if len(recs) == 0 {
		return "(empty trace)\n"
	}
	span := t.Makespan()
	if span <= 0 {
		span = 1
	}
	origin := recs[0].Start
	rows := map[string][]rune{}
	var order []string
	for _, r := range recs {
		row, ok := rows[r.Stream]
		if !ok {
			row = []rune(strings.Repeat(".", width))
			rows[r.Stream] = row
			order = append(order, r.Stream)
		}
		c := 'C'
		switch r.Kind {
		case Transfer:
			c = 'T'
		case Sync:
			c = 's'
		}
		lo := int(int64(r.Start-origin) * int64(width-1) / int64(span))
		hi := int(int64(r.End-origin) * int64(width-1) / int64(span))
		for i := lo; i <= hi && i < width; i++ {
			row[i] = c
		}
	}
	var sb strings.Builder
	for _, name := range order {
		fmt.Fprintf(&sb, "%-16s |%s|\n", name, string(rows[name]))
	}
	fmt.Fprintf(&sb, "%-16s  0 .. %v\n", "", span)
	return sb.String()
}
