package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeFlow is a flow event (ph "s" start / "f" finish): the pair
// renders as a dependency arrow between two slices in Perfetto.
type chromeFlow struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	ID   uint64  `json:"id"`
	TS   float64 `json:"ts"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	BP   string  `json:"bp,omitempty"`
}

// WriteChromeSpans emits flight-recorder spans in Chrome trace-event
// JSON: one process per run, one thread row per stream, one complete
// event per span, and one flow-event pair (ph "s"/"f") per causal
// in-edge so chrome://tracing and ui.perfetto.dev draw the dependency
// arrows of the executed action DAG.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	// Deterministic row assignment: runs become pids, streams become
	// tids from the per-run sorted stream-name order.
	type row struct {
		run    uint64
		stream string
	}
	streams := map[row]bool{}
	runs := map[uint64]bool{}
	for i := range spans {
		runs[spans[i].Run] = true
		streams[row{spans[i].Run, spans[i].Stream}] = true
	}
	runOrder := make([]uint64, 0, len(runs))
	for r := range runs {
		runOrder = append(runOrder, r)
	}
	sort.Slice(runOrder, func(i, j int) bool { return runOrder[i] < runOrder[j] })
	pids := map[uint64]int{}
	for i, r := range runOrder {
		pids[r] = i + 1
	}
	rowOrder := make([]row, 0, len(streams))
	for s := range streams {
		rowOrder = append(rowOrder, s)
	}
	sort.Slice(rowOrder, func(i, j int) bool {
		if rowOrder[i].run != rowOrder[j].run {
			return rowOrder[i].run < rowOrder[j].run
		}
		return rowOrder[i].stream < rowOrder[j].stream
	})
	tids := map[row]int{}
	out := make([]interface{}, 0, 2*len(spans))
	for _, r := range runOrder {
		out = append(out, chromeMeta{
			Name: "process_name",
			Ph:   "M",
			PID:  pids[r],
			Args: map[string]string{"name": fmt.Sprintf("run %d", r)},
		})
	}
	tid := 0
	for _, rw := range rowOrder {
		tid++
		tids[rw] = tid
		out = append(out, chromeMeta{
			Name: "thread_name",
			Ph:   "M",
			PID:  pids[rw.run],
			TID:  tid,
			Args: map[string]string{"name": rw.stream},
		})
	}

	byID := map[uint64]*Span{}
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	us := func(at int64) float64 { return float64(at) / 1e3 }
	var edge uint64
	for i := range spans {
		s := &spans[i]
		name := s.Label
		if name == "" {
			name = s.Kind.String()
		}
		args := map[string]string{
			"domain":  s.Domain,
			"enqueue": s.Enqueue.String(),
			"ready":   s.Ready.String(),
		}
		if s.Bytes > 0 {
			args["bytes"] = fmt.Sprint(s.Bytes)
		}
		if s.Flops > 0 {
			args["flops"] = fmt.Sprint(s.Flops)
		}
		pid, stid := pids[s.Run], tids[row{s.Run, s.Stream}]
		out = append(out, chromeEvent{
			Name: name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   us(int64(s.Launch)),
			Dur:  us(int64(s.Finish - s.Launch)),
			PID:  pid,
			TID:  stid,
			Args: args,
		})
		for _, d := range s.Deps {
			p, ok := byID[d.ID]
			if !ok || p.Run != s.Run {
				continue
			}
			edge++
			// The start event sits just inside the predecessor's
			// slice so viewers bind the arrow to it.
			srcTS := us(int64(p.Finish))
			if p.Finish > p.Launch {
				srcTS -= 0.001
			}
			out = append(out,
				chromeFlow{Name: "dep", Cat: d.Why.String(), Ph: "s", ID: edge,
					TS: srcTS, PID: pid, TID: tids[row{p.Run, p.Stream}]},
				chromeFlow{Name: "dep", Cat: d.Why.String(), Ph: "f", ID: edge, BP: "e",
					TS: us(int64(s.Launch)), PID: pid, TID: stid})
		}
	}
	return json.NewEncoder(w).Encode(out)
}
