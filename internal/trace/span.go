package trace

import (
	"sync/atomic"
	"time"
)

// DepKind classifies a causal in-edge of a span — why one action had
// to wait for another under the FIFO-semantic rules (paper §II).
type DepKind uint8

const (
	// DepFIFO is a stream program-order edge forced by an operand
	// hazard (RAW/WAR/WAW with at least one writer).
	DepFIFO DepKind = iota
	// DepSync is an edge introduced by a synchronization marker,
	// which orders against every earlier and later action.
	DepSync
	// DepEvent is an explicit cross-stream event-wait edge
	// (EnqueueEventWait / EnqueueComputeDeps).
	DepEvent
)

// String labels the dependence kind for trace output.
func (k DepKind) String() string {
	switch k {
	case DepFIFO:
		return "fifo"
	case DepSync:
		return "sync"
	case DepEvent:
		return "event"
	default:
		return "dep"
	}
}

// Dep is one causal in-edge: the span with that ID had to finish
// before the owning span could become ready.
type Dep struct {
	ID  uint64  `json:"id"`
	Why DepKind `json:"why"`
}

// Span is one completed action with its full causal context: the four
// phase timestamps of the action state machine
// (enqueue → ready → launch → finish) and the dependence edges that
// gated it. Unlike Record — a flat timeline entry — a set of spans
// reconstructs the executed action DAG, which is what critical-path
// analysis (critpath.go) and dependency-arrow rendering
// (WriteChromeSpans) consume.
type Span struct {
	ID     uint64 `json:"id"`
	Run    uint64 `json:"run"` // runtime instance that produced it
	Kind   Kind   `json:"kind"`
	Stream string `json:"stream"`
	Domain string `json:"domain"`
	Label  string `json:"label,omitempty"`
	// Src/Dst name the link direction for transfers (empty for
	// compute/sync and for optimized-away host-as-target transfers).
	Src   string  `json:"src,omitempty"`
	Dst   string  `json:"dst,omitempty"`
	Bytes int64   `json:"bytes,omitempty"`
	Flops float64 `json:"flops,omitempty"`
	Err   bool    `json:"err,omitempty"`

	// Phase timestamps on the runtime clock (virtual in Sim mode):
	// Enqueue ≤ Ready ≤ Launch ≤ Finish.
	Enqueue time.Duration `json:"enqueue"`
	Ready   time.Duration `json:"ready"`
	Launch  time.Duration `json:"launch"`
	Finish  time.Duration `json:"finish"`

	// Resilience phases (Real mode): how many times the scheduler
	// re-attempted the action after transient failures, the total
	// backoff it slept between attempts (contained in Launch→Finish),
	// whether it exhausted its per-action deadline, and whether it was
	// re-routed to the host by a quarantined domain's breaker.
	Retries     int           `json:"retries,omitempty"`
	RetryWait   time.Duration `json:"retry_wait,omitempty"`
	DeadlineHit bool          `json:"deadline_hit,omitempty"`
	Rerouted    bool          `json:"rerouted,omitempty"`

	// Cost mirrors the platform cost descriptor the action was
	// enqueued with (kernel id, problem size, bytes, fixed overhead) —
	// enough for checkpoint/replay to re-enqueue the action with
	// identical Sim timing. Flops above is the cost's flop count.
	CostKernel int           `json:"cost_kernel,omitempty"`
	CostN      int           `json:"cost_n,omitempty"`
	CostBytes  float64       `json:"cost_bytes,omitempty"`
	CostExtra  time.Duration `json:"cost_extra,omitempty"`

	Deps []Dep `json:"deps,omitempty"`
}

// Dur returns the execution time (launch → finish).
func (s *Span) Dur() time.Duration { return s.Finish - s.Launch }

// defaultFlightCap bounds the process-wide recorder at ~64K spans —
// big enough to hold a whole paper-scale figure run, small enough
// (a few MB) to stay resident in production.
const defaultFlightCap = 1 << 16

// FlightRecorder is a lock-free ring buffer of completed spans — a
// flight recorder that can stay on in production: recording is one
// atomic increment plus one atomic pointer store, never a lock, and
// when the ring wraps the oldest spans are overwritten. A nil
// recorder discards everything, so callers never need nil checks.
type FlightRecorder struct {
	mask uint64
	pos  atomic.Uint64 // total spans ever recorded
	ring []atomic.Pointer[Span]
}

// NewFlight returns a recorder holding the most recent capacity spans
// (rounded up to a power of two; capacity <= 0 uses the default).
func NewFlight(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), ring: make([]atomic.Pointer[Span], n)}
}

var defaultFlight = NewFlight(0)

// DefaultFlight returns the process-wide flight recorder that
// runtimes record into when Config.Flight is nil — the trace
// counterpart of metrics.Default().
func DefaultFlight() *FlightRecorder { return defaultFlight }

// Record appends one span. The span must not be mutated afterwards.
func (f *FlightRecorder) Record(s *Span) {
	if f == nil {
		return
	}
	i := f.pos.Add(1) - 1
	f.ring[i&f.mask].Store(s)
}

// Cap returns the ring capacity in spans.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Total returns how many spans were ever recorded.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.pos.Load()
}

// Dropped returns how many spans the ring has overwritten.
func (f *FlightRecorder) Dropped() uint64 {
	if total := f.Total(); total > uint64(f.Cap()) {
		return total - uint64(f.Cap())
	}
	return 0
}

// Snapshot returns the retained spans ordered oldest → newest. It is
// safe to call concurrently with Record; spans racing the snapshot
// may or may not be included.
func (f *FlightRecorder) Snapshot() []Span {
	if f == nil {
		return nil
	}
	pos := f.pos.Load()
	n := uint64(len(f.ring))
	start := uint64(0)
	if pos > n {
		start = pos - n
	}
	out := make([]Span, 0, pos-start)
	for i := start; i < pos; i++ {
		if s := f.ring[i&f.mask].Load(); s != nil {
			out = append(out, *s)
		}
	}
	return out
}

// Reset discards all retained spans (the total count keeps rising, so
// Dropped stays meaningful).
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	for i := range f.ring {
		f.ring[i].Store(nil)
	}
}

// LatestRun filters spans down to the highest run id present —
// process-wide recorders accumulate spans from every runtime, and
// analysis is per schedule.
func LatestRun(spans []Span) []Span {
	var max uint64
	for i := range spans {
		if spans[i].Run > max {
			max = spans[i].Run
		}
	}
	return FilterRun(spans, max)
}

// FilterRun returns the spans belonging to one run id.
func FilterRun(spans []Span, run uint64) []Span {
	out := make([]Span, 0, len(spans))
	for i := range spans {
		if spans[i].Run == run {
			out = append(out, spans[i])
		}
	}
	return out
}
