package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PathStep is one action on the critical path, with its makespan
// segment decomposed into the three phases the action spent it on.
// The segment [Arrive, Span.Finish) is the slice of the makespan this
// action bounds: Arrive is the binding predecessor's finish (or the
// action's own enqueue when nothing earlier gated it).
type PathStep struct {
	Span   Span          `json:"span"`
	Arrive time.Duration `json:"arrive"`
	// Stall is dependency-wait inside the segment (arrive → ready),
	// Sched is scheduler/resource latency (ready → launch), Exec is
	// execution (launch → finish).
	Stall time.Duration `json:"stall"`
	Sched time.Duration `json:"sched"`
	Exec  time.Duration `json:"exec"`
}

// Category attribution names.
const (
	CatCompute  = "compute"
	CatTransfer = "transfer"
	CatSync     = "sync"
	CatStall    = "dep-stall"
	CatSched    = "sched-latency"
	CatSource   = "source-enqueue"
)

// SlackEntry reports how much an off-path action could slip without
// stretching the makespan.
type SlackEntry struct {
	ID     uint64        `json:"id"`
	Label  string        `json:"label"`
	Stream string        `json:"stream"`
	Slack  time.Duration `json:"slack"`
}

// CritReport is the result of critical-path analysis over one run's
// completed-action DAG: the longest weighted chain of causally
// ordered actions, with every makespan nanosecond attributed to a
// category, plus slack for everything off the path.
type CritReport struct {
	Run      uint64        `json:"run"`
	Spans    int           `json:"spans"`
	Origin   time.Duration `json:"origin"`   // earliest enqueue
	Makespan time.Duration `json:"makespan"` // origin → last finish

	// Categories attribute the whole makespan; values sum to
	// Makespan exactly (the path walk partitions [Origin, last
	// finish) into contiguous segments).
	Categories map[string]time.Duration `json:"categories"`
	// ByDomain attributes on-path compute time per domain; ByLink
	// attributes on-path transfer time per "src→dst" link direction.
	ByDomain map[string]time.Duration `json:"by_domain,omitempty"`
	ByLink   map[string]time.Duration `json:"by_link,omitempty"`

	Steps []PathStep `json:"steps"`
	// Slack lists the off-path actions closest to criticality
	// (smallest slack first, capped).
	Slack []SlackEntry `json:"slack,omitempty"`
	// NearCritical counts off-path actions with slack under 1% of
	// the makespan — the ones a perturbation would promote.
	NearCritical int `json:"near_critical"`
}

// maxSlackEntries caps the slack listing in reports.
const maxSlackEntries = 10

// Analyze extracts the critical path from one run's spans: starting
// at the action that finishes last, it repeatedly walks to the
// predecessor whose completion bound the current action's segment —
// the binding in-edge — until it reaches an action gated only by its
// own enqueue. Each segment is split into dependency stall, scheduler
// latency and execution, and execution is attributed per kind, domain
// and link. Pass spans of a single run (see LatestRun); an empty or
// mixed-run slice yields a best-effort report.
func Analyze(spans []Span) *CritReport {
	rep := &CritReport{
		Categories: map[string]time.Duration{},
		ByDomain:   map[string]time.Duration{},
		ByLink:     map[string]time.Duration{},
	}
	if len(spans) == 0 {
		return rep
	}
	byID := make(map[uint64]*Span, len(spans))
	origin := spans[0].Enqueue
	tail := &spans[0]
	for i := range spans {
		s := &spans[i]
		byID[s.ID] = s
		if s.Enqueue < origin {
			origin = s.Enqueue
		}
		if s.Finish > tail.Finish || (s.Finish == tail.Finish && s.ID > tail.ID) {
			tail = s
		}
	}
	rep.Run = tail.Run
	rep.Spans = len(spans)
	rep.Origin = origin
	rep.Makespan = tail.Finish - origin

	// Backward walk along binding in-edges.
	onPath := map[uint64]bool{}
	cur := tail
	for {
		onPath[cur.ID] = true
		var pred *Span
		for _, d := range cur.Deps {
			p, ok := byID[d.ID]
			if !ok {
				continue // evicted from the ring; degrade gracefully
			}
			if pred == nil || p.Finish > pred.Finish ||
				(p.Finish == pred.Finish && p.ID > pred.ID) {
				pred = p
			}
		}
		arrive := cur.Enqueue
		if pred != nil && pred.Finish > arrive {
			arrive = pred.Finish
		}
		// Clamp phases into the segment: Real-mode timestamps can
		// skew by scheduling noise relative to the predecessor's.
		ready := clamp(cur.Ready, arrive, cur.Finish)
		launch := clamp(cur.Launch, ready, cur.Finish)
		step := PathStep{
			Span:   *cur,
			Arrive: arrive,
			Stall:  ready - arrive,
			Sched:  launch - ready,
			Exec:   cur.Finish - launch,
		}
		rep.Steps = append(rep.Steps, step)
		rep.Categories[CatStall] += step.Stall
		rep.Categories[CatSched] += step.Sched
		switch cur.Kind {
		case Compute:
			rep.Categories[CatCompute] += step.Exec
			rep.ByDomain[cur.Domain] += step.Exec
		case Transfer:
			rep.Categories[CatTransfer] += step.Exec
			if cur.Src != "" {
				rep.ByLink[cur.Src+"→"+cur.Dst] += step.Exec
			}
		default:
			rep.Categories[CatSync] += step.Exec
		}
		if pred == nil || pred.Finish <= cur.Enqueue {
			// Root: gated by the source thread, not by a dependence.
			rep.Categories[CatSource] += cur.Enqueue - origin
			break
		}
		cur = pred
	}
	// Steps were collected tail-first; present them in time order.
	for i, j := 0, len(rep.Steps)-1; i < j; i, j = i+1, j-1 {
		rep.Steps[i], rep.Steps[j] = rep.Steps[j], rep.Steps[i]
	}

	rep.slack(spans, byID, onPath, tail.Finish)
	return rep
}

// slack runs the CPM backward pass: an action's latest finish is the
// minimum over its successors of (successor latest finish − successor
// execution time); slack is latest finish − actual finish.
func (rep *CritReport) slack(spans []Span, byID map[uint64]*Span, onPath map[uint64]bool, last time.Duration) {
	succs := map[uint64][]uint64{}
	for i := range spans {
		for _, d := range spans[i].Deps {
			if _, ok := byID[d.ID]; ok {
				succs[d.ID] = append(succs[d.ID], spans[i].ID)
			}
		}
	}
	// Action IDs increase in enqueue order and dependences point
	// backwards, so descending-ID order is a reverse topological
	// order of the DAG.
	order := make([]*Span, 0, len(spans))
	for i := range spans {
		order = append(order, &spans[i])
	}
	sort.Slice(order, func(i, j int) bool { return order[i].ID > order[j].ID })
	lf := make(map[uint64]time.Duration, len(spans))
	var entries []SlackEntry
	for _, s := range order {
		l := last
		for _, succ := range succs[s.ID] {
			sl := lf[succ] - byID[succ].Dur()
			if sl < l {
				l = sl
			}
		}
		lf[s.ID] = l
		if onPath[s.ID] {
			continue
		}
		slack := l - s.Finish
		if slack < 0 {
			slack = 0
		}
		if slack < rep.Makespan/100 {
			rep.NearCritical++
		}
		entries = append(entries, SlackEntry{ID: s.ID, Label: s.Label, Stream: s.Stream, Slack: slack})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Slack != entries[j].Slack {
			return entries[i].Slack < entries[j].Slack
		}
		return entries[i].ID < entries[j].ID
	})
	if len(entries) > maxSlackEntries {
		entries = entries[:maxSlackEntries]
	}
	rep.Slack = entries
}

func clamp(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CategorySum totals all category attributions; it equals Makespan by
// construction, which the harnesses assert.
func (rep *CritReport) CategorySum() time.Duration {
	var sum time.Duration
	for _, d := range rep.Categories {
		sum += d
	}
	return sum
}

// Format renders the report for humans.
func (rep *CritReport) Format() string {
	var sb strings.Builder
	if len(rep.Steps) == 0 {
		return "critical path: (no spans recorded)\n"
	}
	fmt.Fprintf(&sb, "critical path: %d of %d actions bound a %v makespan (run %d)\n",
		len(rep.Steps), rep.Spans, rep.Makespan, rep.Run)
	fmt.Fprintf(&sb, "  category attribution (sums to makespan):\n")
	for _, c := range []string{CatCompute, CatTransfer, CatStall, CatSched, CatSource, CatSync} {
		d := rep.Categories[c]
		if d == 0 && c != CatCompute {
			continue
		}
		fmt.Fprintf(&sb, "    %-14s %12v  %5.1f%%\n", c, d, pct(d, rep.Makespan))
	}
	if len(rep.ByDomain) > 0 {
		fmt.Fprintf(&sb, "  on-path compute by domain:")
		for _, k := range sortedKeys(rep.ByDomain) {
			fmt.Fprintf(&sb, "  %s %v", k, rep.ByDomain[k])
		}
		sb.WriteByte('\n')
	}
	if len(rep.ByLink) > 0 {
		fmt.Fprintf(&sb, "  on-path transfer by link:")
		for _, k := range sortedKeys(rep.ByLink) {
			fmt.Fprintf(&sb, "  %s %v", k, rep.ByLink[k])
		}
		sb.WriteByte('\n')
	}
	// The heaviest steps tell the tuning story; cap the listing.
	const maxSteps = 12
	heavy := append([]PathStep(nil), rep.Steps...)
	sort.SliceStable(heavy, func(i, j int) bool {
		return heavy[i].Stall+heavy[i].Sched+heavy[i].Exec > heavy[j].Stall+heavy[j].Sched+heavy[j].Exec
	})
	if len(heavy) > maxSteps {
		heavy = heavy[:maxSteps]
	}
	fmt.Fprintf(&sb, "  heaviest path steps (of %d):\n", len(rep.Steps))
	for _, st := range heavy {
		name := st.Span.Label
		if name == "" {
			name = st.Span.Kind.String()
		}
		fmt.Fprintf(&sb, "    #%-6d %-24s %-12s exec %10v  stall %10v  sched %10v\n",
			st.Span.ID, truncate(name, 24), st.Span.Stream, st.Exec, st.Stall, st.Sched)
	}
	if n := len(rep.Slack); n > 0 {
		fmt.Fprintf(&sb, "  off-path slack (smallest first, %d within 1%% of critical):", rep.NearCritical)
		for i, e := range rep.Slack {
			if i == 5 {
				break
			}
			fmt.Fprintf(&sb, "  #%d %v", e.ID, e.Slack)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pct(d, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

func sortedKeys(m map[string]time.Duration) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
