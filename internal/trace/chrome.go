package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one "complete" event in the Chrome trace-event
// format (the JSON consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeMeta names a thread row in the viewer.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace emits the recorded timeline in Chrome trace-event
// JSON: one viewer row per stream (grouped and labeled), one complete
// event per action. Load the output in chrome://tracing or
// ui.perfetto.dev to inspect a schedule visually.
func (t *Recorder) WriteChromeTrace(w io.Writer) error {
	recs := t.Records()

	// Deterministic stream → tid assignment: viewers order rows by
	// tid, so tids come from the sorted stream names — not from
	// first-appearance order, which varies run to run with action
	// completion order.
	seen := map[string]bool{}
	var order []string
	for _, r := range recs {
		if !seen[r.Stream] {
			seen[r.Stream] = true
			order = append(order, r.Stream)
		}
	}
	sort.Strings(order)
	tids := map[string]int{}
	for i, s := range order {
		tids[s] = i
	}

	out := make([]interface{}, 0, len(recs)+len(order))
	for _, s := range order {
		out = append(out, chromeMeta{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tids[s],
			Args: map[string]string{"name": s},
		})
	}
	for _, r := range recs {
		name := r.Label
		if name == "" {
			name = r.Kind.String()
		}
		args := map[string]string{"domain": r.Domain}
		if r.Bytes > 0 {
			args["bytes"] = fmt.Sprint(r.Bytes)
		}
		if r.Flops > 0 {
			args["flops"] = fmt.Sprint(r.Flops)
		}
		out = append(out, chromeEvent{
			Name: name,
			Cat:  r.Kind.String(),
			Ph:   "X",
			TS:   float64(r.Start.Microseconds()),
			Dur:  float64(r.Dur().Microseconds()),
			PID:  1,
			TID:  tids[r.Stream],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
