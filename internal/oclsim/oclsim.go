// Package oclsim models the OpenCL path the paper compares against
// (§IV): verbose boilerplate (platform/context/program/kernel object
// management), strictly in-order command queues, and a compute-rate
// penalty reflecting that clBLAS was "significantly under-optimized
// for the MIC" — the reason the paper's OpenCL matmul row reads
// 35 GFlop/s against hStreams' 916.
//
// Like cudasim, it is a restriction of internal/core: every enqueue
// is barrier-chained, and kernels take buffer objects bound with
// SetKernelArg before launch.
package oclsim

import (
	"errors"
	"fmt"

	"hstreams/internal/apistat"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

// Common errors.
var (
	ErrBadDevice  = errors.New("oclsim: invalid device index")
	ErrNotBuilt   = errors.New("oclsim: program not built")
	ErrUnboundArg = errors.New("oclsim: kernel argument not set")
	ErrReleased   = errors.New("oclsim: use after release")
)

// DefaultUntunedPenalty is the slowdown applied to kernel costs,
// calibrated to clBLAS-on-MIC achieving ~35 GFlop/s where tuned
// DGEMM reaches ~982 (§IV's table).
const DefaultUntunedPenalty = 28.0

// CL is an OpenCL platform instance over the machine's cards.
type CL struct {
	RT  *core.Runtime
	API apistat.Counter
	// UntunedPenalty multiplies modeled kernel time (Sim mode).
	UntunedPenalty float64

	devFirst []*core.Stream
}

// GetPlatform initializes the model (clGetPlatformIDs).
func GetPlatform(machine *platform.Machine, mode core.Mode) (*CL, error) {
	rt, err := core.Init(core.Config{Machine: machine, Mode: mode})
	if err != nil {
		return nil, err
	}
	cl := &CL{RT: rt, UntunedPenalty: DefaultUntunedPenalty, devFirst: make([]*core.Stream, rt.NumCards())}
	cl.API.Hit("clGetPlatformIDs")
	return cl, nil
}

// Release tears the platform down.
func (cl *CL) Release() {
	cl.API.Hit("clReleaseContext")
	cl.RT.Fini()
}

// GetDeviceIDs enumerates the accelerator devices (clGetDeviceIDs).
func (cl *CL) GetDeviceIDs() int {
	cl.API.Hit("clGetDeviceIDs")
	return cl.RT.NumCards()
}

// Context is an OpenCL context bound to one device.
type Context struct {
	cl  *CL
	dev int
}

// CreateContext builds a context on device dev (clCreateContext).
func (cl *CL) CreateContext(dev int) (*Context, error) {
	cl.API.Hit("clCreateContext")
	if dev < 0 || dev >= cl.RT.NumCards() {
		return nil, ErrBadDevice
	}
	return &Context{cl: cl, dev: dev}, nil
}

// Program is a program object; it must be built before kernels can be
// created from it.
type Program struct {
	ctx   *Context
	built bool
}

// CreateProgramWithSource mirrors clCreateProgramWithSource; the
// source text is ignored (kernels resolve in the shared registry).
func (c *Context) CreateProgramWithSource(src string) *Program {
	c.cl.API.Hit("clCreateProgramWithSource")
	return &Program{ctx: c}
}

// Build mirrors clBuildProgram.
func (p *Program) Build() {
	p.ctx.cl.API.Hit("clBuildProgram")
	p.built = true
}

// Kernel is a kernel object with bound arguments.
type Kernel struct {
	prog    *Program
	name    string
	scalars map[int]int64
	bufs    map[int]*Buffer
}

// CreateKernel mirrors clCreateKernel.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	p.ctx.cl.API.Hit("clCreateKernel")
	if !p.built {
		return nil, ErrNotBuilt
	}
	return &Kernel{prog: p, name: name, scalars: map[int]int64{}, bufs: map[int]*Buffer{}}, nil
}

// SetArgScalar binds a scalar argument (clSetKernelArg).
func (k *Kernel) SetArgScalar(idx int, v int64) {
	k.prog.ctx.cl.API.Hit("clSetKernelArg")
	k.scalars[idx] = v
	delete(k.bufs, idx)
}

// SetArgBuffer binds a buffer argument (clSetKernelArg).
func (k *Kernel) SetArgBuffer(idx int, b *Buffer) {
	k.prog.ctx.cl.API.Hit("clSetKernelArg")
	k.bufs[idx] = b
	delete(k.scalars, idx)
}

// Release mirrors clReleaseKernel.
func (k *Kernel) Release() { k.prog.ctx.cl.API.Hit("clReleaseKernel") }

// Buffer is a device memory object (one per context/device — as with
// CUDA, there is no unified cross-device address).
type Buffer struct {
	ctx  *Context
	buf  *core.Buf
	size int64
	dead bool
}

// CreateBuffer mirrors clCreateBuffer.
func (c *Context) CreateBuffer(size int64) (*Buffer, error) {
	c.cl.API.Hit("clCreateBuffer")
	b, err := c.cl.RT.Alloc1D(fmt.Sprintf("cl.dev%d", c.dev), size)
	if err != nil {
		return nil, err
	}
	return &Buffer{ctx: c, buf: b, size: size}, nil
}

// Release mirrors clReleaseMemObject.
func (b *Buffer) Release() {
	b.ctx.cl.API.Hit("clReleaseMemObject")
	b.dead = true
}

// HostStage exposes the host staging area for filling inputs and
// reading results (nil in Sim mode).
func (b *Buffer) HostStage() []byte { return b.buf.HostBytes() }

// Queue is an in-order command queue.
type Queue struct {
	ctx  *Context
	s    *core.Stream
	last *core.Action
}

// CreateCommandQueue mirrors clCreateCommandQueue. Queues of one
// device share its compute resources.
func (c *Context) CreateCommandQueue() (*Queue, error) {
	c.cl.API.Hit("clCreateCommandQueue")
	d := c.cl.RT.Card(c.dev)
	s, err := c.cl.RT.StreamCreateOn(d, 0, d.Spec().Cores(), c.cl.devFirst[c.dev])
	if err != nil {
		return nil, err
	}
	if c.cl.devFirst[c.dev] == nil {
		c.cl.devFirst[c.dev] = s
	}
	return &Queue{ctx: c, s: s}, nil
}

// Release mirrors clReleaseCommandQueue (drains first).
func (q *Queue) Release() error {
	q.ctx.cl.API.Hit("clReleaseCommandQueue")
	return q.s.Synchronize()
}

// inorder chains the next command after the previous one.
func (q *Queue) inorder() error {
	if q.last != nil && !q.last.Completed() {
		if _, err := q.s.EnqueueMarker(); err != nil {
			return err
		}
	}
	return nil
}

// EnqueueWriteBuffer mirrors clEnqueueWriteBuffer (host→device).
func (q *Queue) EnqueueWriteBuffer(b *Buffer, off, n int64) (*core.Action, error) {
	q.ctx.cl.API.Hit("clEnqueueWriteBuffer")
	if b.dead {
		return nil, ErrReleased
	}
	if err := q.inorder(); err != nil {
		return nil, err
	}
	a, err := q.s.EnqueueXfer(b.buf, off, n, core.ToSink)
	if err != nil {
		return nil, err
	}
	q.last = a
	return a, nil
}

// EnqueueReadBuffer mirrors clEnqueueReadBuffer (device→host).
func (q *Queue) EnqueueReadBuffer(b *Buffer, off, n int64) (*core.Action, error) {
	q.ctx.cl.API.Hit("clEnqueueReadBuffer")
	if b.dead {
		return nil, ErrReleased
	}
	if err := q.inorder(); err != nil {
		return nil, err
	}
	a, err := q.s.EnqueueXfer(b.buf, off, n, core.ToSource)
	if err != nil {
		return nil, err
	}
	q.last = a
	return a, nil
}

// EnqueueNDRangeKernel launches the kernel with its currently bound
// arguments (clEnqueueNDRangeKernel). cost describes the tuned-BLAS
// operation; the untuned penalty is applied on top.
func (q *Queue) EnqueueNDRangeKernel(k *Kernel, nArgs int, cost platform.Cost) (*core.Action, error) {
	q.ctx.cl.API.Hit("clEnqueueNDRangeKernel")
	var scalars []int64
	var ops []core.Operand
	for i := 0; i < nArgs; i++ {
		if v, ok := k.scalars[i]; ok {
			scalars = append(scalars, v)
			continue
		}
		b, ok := k.bufs[i]
		if !ok {
			return nil, ErrUnboundArg
		}
		if b.dead {
			return nil, ErrReleased
		}
		ops = append(ops, b.buf.All(core.InOut))
	}
	if err := q.inorder(); err != nil {
		return nil, err
	}
	penalized := cost
	penalized.Flops *= q.ctx.cl.UntunedPenalty
	a, err := q.s.EnqueueCompute(k.name, scalars, ops, penalized)
	if err != nil {
		return nil, err
	}
	q.last = a
	return a, nil
}

// EnqueueMarkerWithWaitList mirrors clEnqueueMarkerWithWaitList
// (OpenCL 1.2): the queue stalls until the listed events — typically
// commands from other queues — have completed.
func (q *Queue) EnqueueMarkerWithWaitList(evs ...*core.Action) (*core.Action, error) {
	q.ctx.cl.API.Hit("clEnqueueMarkerWithWaitList")
	a, err := q.s.EnqueueEventWait(evs...)
	if err != nil {
		return nil, err
	}
	q.last = a
	return a, nil
}

// Finish mirrors clFinish: block until the queue drains.
func (q *Queue) Finish() error {
	q.ctx.cl.API.Hit("clFinish")
	return q.s.Synchronize()
}
