package oclsim

import (
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

func newCL(t *testing.T, mode core.Mode) *CL {
	t.Helper()
	cl, err := GetPlatform(platform.HSWPlusKNC(1), mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Release)
	return cl
}

func cost(n int) platform.Cost {
	return platform.Cost{Kernel: platform.KDGEMM, Flops: 2 * float64(n) * float64(n) * float64(n), N: n}
}

func TestFullBoilerplateRoundTrip(t *testing.T) {
	cl := newCL(t, core.ModeReal)
	cl.RT.RegisterKernel("scale", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i] *= float64(ctx.Args[0])
		}
	})
	if cl.GetDeviceIDs() != 1 {
		t.Fatal("device count")
	}
	ctx, err := cl.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	prog := ctx.CreateProgramWithSource("__kernel void scale(...)")
	prog.Build()
	k, err := prog.CreateKernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(64 * 8)
	if err != nil {
		t.Fatal(err)
	}
	stage := floatbits.Float64s(buf.HostStage())
	for i := range stage {
		stage[i] = 3
	}
	q, err := ctx.CreateCommandQueue()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWriteBuffer(buf, 0, 64*8); err != nil {
		t.Fatal(err)
	}
	k.SetArgScalar(0, 7)
	k.SetArgBuffer(1, buf)
	if _, err := q.EnqueueNDRangeKernel(k, 2, platform.Cost{}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueReadBuffer(buf, 0, 64*8); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := range stage {
		if stage[i] != 21 {
			t.Fatalf("stage[%d] = %v, want 21", i, stage[i])
		}
	}
	k.Release()
	buf.Release()
	if err := q.Release(); err != nil {
		t.Fatal(err)
	}
	// The boilerplate burden is measurable: this trivial round trip
	// used more than a dozen API calls.
	if cl.API.Total() < 13 {
		t.Fatalf("API total = %d; expected heavy boilerplate", cl.API.Total())
	}
}

func TestUnbuiltProgramRejected(t *testing.T) {
	cl := newCL(t, core.ModeSim)
	ctx, _ := cl.CreateContext(0)
	prog := ctx.CreateProgramWithSource("src")
	if _, err := prog.CreateKernel("k"); err != ErrNotBuilt {
		t.Fatalf("err = %v, want ErrNotBuilt", err)
	}
}

func TestUnboundArgRejected(t *testing.T) {
	cl := newCL(t, core.ModeSim)
	ctx, _ := cl.CreateContext(0)
	prog := ctx.CreateProgramWithSource("src")
	prog.Build()
	k, _ := prog.CreateKernel("k")
	q, _ := ctx.CreateCommandQueue()
	k.SetArgScalar(0, 1)
	if _, err := q.EnqueueNDRangeKernel(k, 2, cost(100)); err != ErrUnboundArg {
		t.Fatalf("err = %v, want ErrUnboundArg", err)
	}
}

func TestInOrderQueue(t *testing.T) {
	cl := newCL(t, core.ModeSim)
	ctx, _ := cl.CreateContext(0)
	prog := ctx.CreateProgramWithSource("src")
	prog.Build()
	k, _ := prog.CreateKernel("k")
	a, _ := ctx.CreateBuffer(1 << 20)
	b, _ := ctx.CreateBuffer(1 << 20)
	q, _ := ctx.CreateCommandQueue()
	k.SetArgBuffer(0, a)
	comp, err := q.EnqueueNDRangeKernel(k, 1, cost(1500))
	if err != nil {
		t.Fatal(err)
	}
	xfer, err := q.EnqueueWriteBuffer(b, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cl.RT.ThreadSynchronize()
	_, ce := comp.Times()
	xs, _ := xfer.Times()
	if xs < ce {
		t.Fatal("in-order queue reordered independent commands")
	}
}

func TestUntunedPenaltySlowsKernels(t *testing.T) {
	run := func(p float64) int64 {
		cl := newCL(t, core.ModeSim)
		cl.UntunedPenalty = p
		ctx, _ := cl.CreateContext(0)
		prog := ctx.CreateProgramWithSource("src")
		prog.Build()
		k, _ := prog.CreateKernel("k")
		b, _ := ctx.CreateBuffer(1 << 20)
		q, _ := ctx.CreateCommandQueue()
		k.SetArgBuffer(0, b)
		a, _ := q.EnqueueNDRangeKernel(k, 1, cost(2000))
		cl.RT.ThreadSynchronize()
		s, e := a.Times()
		return int64(e - s)
	}
	t1 := run(1)
	t10 := run(10)
	ratio := float64(t10) / float64(t1)
	if ratio < 9.5 || ratio > 10.5 {
		t.Fatalf("penalty ratio = %.2f, want ≈10", ratio)
	}
}

func TestUseAfterRelease(t *testing.T) {
	cl := newCL(t, core.ModeSim)
	ctx, _ := cl.CreateContext(0)
	b, _ := ctx.CreateBuffer(128)
	q, _ := ctx.CreateCommandQueue()
	b.Release()
	if _, err := q.EnqueueWriteBuffer(b, 0, 128); err != ErrReleased {
		t.Fatalf("err = %v, want ErrReleased", err)
	}
	if _, err := q.EnqueueReadBuffer(b, 0, 128); err != ErrReleased {
		t.Fatalf("err = %v, want ErrReleased", err)
	}
}

func TestBadDevice(t *testing.T) {
	cl := newCL(t, core.ModeSim)
	if _, err := cl.CreateContext(3); err != ErrBadDevice {
		t.Fatalf("err = %v, want ErrBadDevice", err)
	}
}
