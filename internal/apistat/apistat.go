// Package apistat counts programming-model API usage. The paper's
// Fig. 3 compares models by unique APIs and total API calls for the
// same tiled matrix multiply; every model package in this repository
// reports its calls through a Counter so cmd/codingtable can measure
// those rows from running code instead of quoting them.
package apistat

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter tallies API calls by name. The zero value is ready to use.
type Counter struct {
	mu     sync.Mutex
	counts map[string]int
}

// Hit records one call of the named API.
func (c *Counter) Hit(name string) {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = make(map[string]int)
	}
	c.counts[name]++
	c.mu.Unlock()
}

// Unique returns the number of distinct APIs used.
func (c *Counter) Unique() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.counts)
}

// Total returns the total number of API calls.
func (c *Counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := 0
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Count returns the calls recorded for one API.
func (c *Counter) Count(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Names returns the distinct API names, sorted.
func (c *Counter) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset clears all tallies.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.counts = nil
	c.mu.Unlock()
}

// String renders "name×count" pairs for reports.
func (c *Counter) String() string {
	var sb strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s×%d", n, c.Count(n))
	}
	return sb.String()
}
