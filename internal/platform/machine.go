package platform

import (
	"fmt"
	"time"
)

// Machine is a node: a host domain plus zero or more non-host
// domains ("cards"), each reached over an interconnect. Local
// coprocessors sit on PCIe; domains on remote nodes are reached over
// the fabric — hStreams presents both uniformly (§IV). This mirrors
// the paper's Fig. 2 testbed (Xeon host + 1–2 KNC cards over PCIe).
type Machine struct {
	Name  string
	Host  *DomainSpec
	Cards []*DomainSpec
	// Link is the default interconnect for all cards.
	Link *LinkSpec
	// CardLinks optionally overrides the link per card (index-aligned
	// with Cards; nil entries fall back to Link). Used for
	// fabric-attached remote domains.
	CardLinks []*LinkSpec
}

// LinkFor returns the interconnect serving card i (0-based).
func (m *Machine) LinkFor(i int) *LinkSpec {
	if i >= 0 && i < len(m.CardLinks) && m.CardLinks[i] != nil {
		return m.CardLinks[i]
	}
	return m.Link
}

// AddRemote attaches a domain on a remote node, reached over the
// given fabric link, and returns the machine for chaining. The remote
// domain is enumerated and used exactly like a local card — the
// uniform interface the paper contrasts with OpenMP's host/device
// split (§IV).
func (m *Machine) AddRemote(spec *DomainSpec, link *LinkSpec) *Machine {
	c := spec.Clone()
	c.Name = fmt.Sprintf("%s-remote%d", spec.Name, len(m.Cards))
	for len(m.CardLinks) < len(m.Cards) {
		m.CardLinks = append(m.CardLinks, nil)
	}
	m.Cards = append(m.Cards, c)
	m.CardLinks = append(m.CardLinks, link)
	return m
}

// Domains enumerates all physical domains, host first — the discovery
// order the hStreams library exposes to users (host is domain 0).
func (m *Machine) Domains() []*DomainSpec {
	ds := make([]*DomainSpec, 0, 1+len(m.Cards))
	ds = append(ds, m.Host)
	ds = append(ds, m.Cards...)
	return ds
}

// PeakGFlops returns the machine-wide peak double-precision rate.
func (m *Machine) PeakGFlops() float64 {
	p := m.Host.PeakGFlops()
	for _, c := range m.Cards {
		p += c.PeakGFlops()
	}
	return p
}

func (m *Machine) String() string {
	return fmt.Sprintf("%s (host %s + %d cards, %.0f GF/s peak)", m.Name, m.Host.Name, len(m.Cards), m.PeakGFlops())
}

// HSW returns the Haswell host spec: Xeon E5-2697v3, 2 sockets × 14
// cores × 2 threads, 2.6 GHz, AVX2 FMA (16 DP flops/cycle/core).
// Calibrated so large-tile DGEMM lands near the paper's 902 GFlop/s.
func HSW() *DomainSpec {
	return &DomainSpec{
		Name:            "HSW",
		Kind:            HostCPU,
		Sockets:         2,
		CoresPerSocket:  14,
		ThreadsPerCore:  2,
		ClockGHz:        2.6,
		DPFlopsPerCycle: 16,
		MemGB:           64,
		MemBWGBs:        110,
		ParallelEff:     0.93,
		TaskOverhead:    4 * time.Microsecond,
		Eff: map[Kernel]Efficiency{
			KDGEMM:   {Max: 0.88, HalfN: 120},
			KDSYRK:   {Max: 0.85, HalfN: 130},
			KDTRSM:   {Max: 0.80, HalfN: 150},
			KDPOTRF:  {Max: 0.76, HalfN: 4000},
			KDPOTF2:  {Max: 0.25, HalfN: 2000},
			KLDLT:    {Max: 0.55, HalfN: 2500},
			KDGETRF:  {Max: 0.66, HalfN: 3000},
			KStencil: {Max: 0.35, HalfN: 16},
			KMemset:  {Max: 0.05, HalfN: 1},
		},
	}
}

// IVB returns the Ivy Bridge host spec: Xeon E5-2697v2, 2 sockets × 12
// cores × 2 threads, 2.7 GHz, AVX without FMA (8 DP flops/cycle/core).
// Calibrated to the paper's 475 GFlop/s DGEMM.
func IVB() *DomainSpec {
	return &DomainSpec{
		Name:            "IVB",
		Kind:            HostCPU,
		Sockets:         2,
		CoresPerSocket:  12,
		ThreadsPerCore:  2,
		ClockGHz:        2.7,
		DPFlopsPerCycle: 8,
		MemGB:           64,
		MemBWGBs:        95,
		ParallelEff:     0.95,
		TaskOverhead:    4 * time.Microsecond,
		Eff: map[Kernel]Efficiency{
			KDGEMM:   {Max: 0.99, HalfN: 60},
			KDSYRK:   {Max: 0.96, HalfN: 70},
			KDTRSM:   {Max: 0.90, HalfN: 100},
			KDPOTRF:  {Max: 0.86, HalfN: 4000},
			KDPOTF2:  {Max: 0.30, HalfN: 2000},
			KLDLT:    {Max: 0.62, HalfN: 2500},
			KDGETRF:  {Max: 0.72, HalfN: 3000},
			KStencil: {Max: 0.35, HalfN: 16},
			KMemset:  {Max: 0.05, HalfN: 1},
		},
	}
}

// KNC returns the Knights Corner coprocessor spec: Xeon Phi 7120A,
// 61 cores × 4 threads, 1.33 GHz turbo, 512-bit FMA (16 DP
// flops/cycle/core). Calibrated to the paper's 982 GFlop/s DGEMM; the
// unblocked panel kernel (DPOTF2) is deliberately dismal — the reason
// MAGMA ships panels back to the host (§VI).
func KNC() *DomainSpec {
	return &DomainSpec{
		Name:            "KNC",
		Kind:            MIC,
		Sockets:         1,
		CoresPerSocket:  61,
		ThreadsPerCore:  4,
		ClockGHz:        1.33,
		DPFlopsPerCycle: 16,
		MemGB:           16,
		MemBWGBs:        170,
		ParallelEff:     0.90,
		TaskOverhead:    20 * time.Microsecond,
		Eff: map[Kernel]Efficiency{
			KDGEMM:   {Max: 0.90, HalfN: 160},
			KDSYRK:   {Max: 0.88, HalfN: 220},
			KDTRSM:   {Max: 0.72, HalfN: 300},
			KDPOTRF:  {Max: 0.14, HalfN: 5000},
			KDPOTF2:  {Max: 0.02, HalfN: 3000},
			KLDLT:    {Max: 0.48, HalfN: 3000},
			KDGETRF:  {Max: 0.10, HalfN: 6000},
			KStencil: {Max: 0.40, HalfN: 16},
			KMemset:  {Max: 0.08, HalfN: 1},
		},
	}
}

// K40x returns the NVidia K40x spec used for the CUDA Streams
// comparisons: 15 SMX at 875 MHz boost, ~1430 GFlop/s DP peak.
func K40x() *DomainSpec {
	return &DomainSpec{
		Name:            "K40x",
		Kind:            GPU,
		Sockets:         1,
		CoresPerSocket:  15,
		ThreadsPerCore:  256,
		ClockGHz:        0.875,
		DPFlopsPerCycle: 109, // 15 SMX × 0.875 GHz × 109 ≈ 1430 GF/s
		MemGB:           12,
		MemBWGBs:        230,
		ParallelEff:     0.95,
		TaskOverhead:    8 * time.Microsecond,
		Eff: map[Kernel]Efficiency{
			KDGEMM:   {Max: 0.80, HalfN: 400},
			KDSYRK:   {Max: 0.76, HalfN: 450},
			KDTRSM:   {Max: 0.60, HalfN: 600},
			KDPOTRF:  {Max: 0.20, HalfN: 6000},
			KDPOTF2:  {Max: 0.01, HalfN: 3000},
			KLDLT:    {Max: 0.50, HalfN: 3500},
			KDGETRF:  {Max: 0.15, HalfN: 6000},
			KStencil: {Max: 0.12, HalfN: 16},
			KMemset:  {Max: 0.10, HalfN: 1},
		},
	}
}

// Clone returns a deep copy of the spec, so callers can tweak
// efficiencies without aliasing the built-in configurations.
func (d *DomainSpec) Clone() *DomainSpec {
	c := *d
	c.Eff = make(map[Kernel]Efficiency, len(d.Eff))
	for k, v := range d.Eff {
		c.Eff[k] = v
	}
	return &c
}

// NewMachine assembles a machine from a host spec and nCards copies of
// cardSpec connected by link. Card names get a numeric suffix.
func NewMachine(name string, host *DomainSpec, nCards int, cardSpec *DomainSpec, link *LinkSpec) *Machine {
	m := &Machine{Name: name, Host: host.Clone(), Link: link}
	for i := 0; i < nCards; i++ {
		c := cardSpec.Clone()
		c.Name = fmt.Sprintf("%s%d", cardSpec.Name, i)
		m.Cards = append(m.Cards, c)
	}
	return m
}

// HSWPlusKNC returns the paper's Haswell testbed with n KNC cards.
func HSWPlusKNC(n int) *Machine {
	return NewMachine(fmt.Sprintf("HSW+%dKNC", n), HSW(), n, KNC(), PCIe())
}

// IVBPlusKNC returns the paper's Ivy Bridge testbed with n KNC cards.
func IVBPlusKNC(n int) *Machine {
	return NewMachine(fmt.Sprintf("IVB+%dKNC", n), IVB(), n, KNC(), PCIe())
}

// HSWPlusK40 returns a Haswell host with n K40x GPUs, for the CUDA
// Streams comparison experiments.
func HSWPlusK40(n int) *Machine {
	return NewMachine(fmt.Sprintf("HSW+%dK40x", n), HSW(), n, K40x(), PCIe())
}
