package platform

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// dgemmRate returns the modeled whole-domain DGEMM rate for tile edge
// n (three n×n operand tiles, 2n³ flops).
func dgemmRate(d *DomainSpec, n int) float64 {
	c := Cost{Kernel: KDGEMM, Flops: 2 * float64(n) * float64(n) * float64(n), N: n}
	return GFlops(c.Flops, ComputeTime(d, d.Cores(), c))
}

func TestCalibrationDGEMM(t *testing.T) {
	// Paper §VI: achieved DGEMM rates HSW 902, IVB 475, KNC 982
	// GFlop/s. The cost model must land within 5 %.
	cases := []struct {
		spec *DomainSpec
		want float64
	}{
		{HSW(), 902},
		{IVB(), 475},
		{KNC(), 982},
	}
	for _, c := range cases {
		got := dgemmRate(c.spec, 2400)
		if math.Abs(got-c.want)/c.want > 0.05 {
			t.Errorf("%s DGEMM rate = %.0f GF/s, want %.0f ±5%%", c.spec.Name, got, c.want)
		}
	}
}

func TestCalibrationDPOTRFNative(t *testing.T) {
	// Paper Fig. 7: HSW native MKL DPOTRF reaches ~733 GFlop/s at
	// n = 32000.
	h := HSW()
	n := 32000
	c := Cost{Kernel: KDPOTRF, Flops: float64(n) * float64(n) * float64(n) / 3, N: n}
	got := GFlops(c.Flops, ComputeTime(h, h.Cores(), c))
	if math.Abs(got-733)/733 > 0.06 {
		t.Errorf("HSW native DPOTRF = %.0f GF/s, want 733 ±6%%", got)
	}
}

func TestPanelKernelIsLatencyBound(t *testing.T) {
	// DPOTF2 must be far below DGEMM on every domain, and
	// catastrophically so on KNC — that asymmetry is what makes
	// MAGMA ship panels to the host.
	for _, d := range []*DomainSpec{HSW(), IVB(), KNC()} {
		g := d.Eff[KDGEMM].At(240)
		p := d.Eff[KDPOTF2].At(240)
		if p >= g/4 {
			t.Errorf("%s: DPOTF2 eff %.3f not << DGEMM eff %.3f", d.Name, p, g)
		}
	}
	knc, hsw := KNC(), HSW()
	n := 240
	flops := float64(n) * float64(n) * float64(n) / 3
	tKNC := ComputeTime(knc, knc.Cores(), Cost{Kernel: KDPOTF2, Flops: flops, N: n})
	tHSW := ComputeTime(hsw, hsw.Cores(), Cost{Kernel: KDPOTF2, Flops: flops, N: n})
	if tKNC < 4*tHSW {
		t.Errorf("KNC DPOTF2 %v not >> HSW %v", tKNC, tHSW)
	}
}

func TestEfficiencyCurve(t *testing.T) {
	e := Efficiency{Max: 0.8, HalfN: 100}
	if got := e.At(100); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("At(HalfN) = %v, want 0.4", got)
	}
	if e.At(0) != 0 || e.At(-5) != 0 {
		t.Error("non-positive sizes must give zero efficiency")
	}
	if e.At(1<<20) >= 0.8 {
		t.Error("efficiency must stay strictly below Max")
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		e := Efficiency{Max: 0.9, HalfN: 200}
		return e.At(lo) <= e.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeTimeScalesWithCores(t *testing.T) {
	// Scaling is deliberately sublinear: full width pays the
	// parallel-efficiency discount AND sits lower on the per-core
	// work ramp, so the speedup lands between 80 % and 100 % of the
	// core count.
	h := HSW()
	c := Cost{Kernel: KDGEMM, Flops: 1e10, N: 2000}
	t1 := ComputeTime(h, 1, c)
	tAll := ComputeTime(h, h.Cores(), c)
	ratio := float64(t1) / float64(tAll)
	if ratio < float64(h.Cores())*0.8 || ratio > float64(h.Cores()) {
		t.Errorf("1-core/all-core time ratio = %.1f, want within [0.8·%d, %d]", ratio, h.Cores(), h.Cores())
	}
}

func TestParEffAt(t *testing.T) {
	h := HSW()
	if h.ParEffAt(1) != 1 {
		t.Error("single core must be fully efficient")
	}
	full := h.ParEffAt(h.Cores())
	if math.Abs(full-h.ParallelEff) > 1e-12 {
		t.Errorf("full-width efficiency = %v, want %v", full, h.ParallelEff)
	}
	if half := h.ParEffAt(h.Cores() / 2); half <= full || half >= 1 {
		t.Errorf("half-width efficiency %v not in (%v, 1)", half, full)
	}
}

func TestNarrowStreamsRampFaster(t *testing.T) {
	// The same tile on a quarter of the cores gives each core more
	// work, so aggregate throughput of 4 quarter-width tasks beats
	// one full-width task — the effect stream subdivision exploits.
	k := KNC()
	c := Cost{Kernel: KDGEMM, Flops: 2 * 2048 * 2048 * 2048, N: 2048}
	tFull := ComputeTime(k, k.Cores(), c)
	tQuarter := ComputeTime(k, k.Cores()/4, c)
	// 4 concurrent quarter-width tasks finish in tQuarter; the same
	// 4 tasks serialized full-width take 4·tFull.
	if tQuarter >= 4*tFull {
		t.Errorf("partitioned streams show no granularity benefit: %v vs 4×%v", tQuarter, tFull)
	}
}

func TestComputeTimeClampsCores(t *testing.T) {
	h := HSW()
	c := Cost{Kernel: KDGEMM, Flops: 1e9, N: 1000}
	if ComputeTime(h, 0, c) != ComputeTime(h, 1, c) {
		t.Error("nCores=0 must clamp to 1")
	}
	if ComputeTime(h, 10000, c) != ComputeTime(h, h.Cores(), c) {
		t.Error("oversized nCores must clamp to domain cores")
	}
}

func TestComputeTimeUnknownKernelFallback(t *testing.T) {
	h := HSW()
	d := ComputeTime(h, h.Cores(), Cost{Kernel: Kernel(99), Flops: 1e9, N: 1000})
	if d <= 0 {
		t.Error("unknown kernel must still yield positive duration")
	}
}

func TestRooflineBandwidthBound(t *testing.T) {
	// A task with huge byte traffic must be bandwidth-limited:
	// doubling flops below the roofline must not change the time.
	h := HSW()
	base := Cost{Kernel: KStencil, Flops: 1e8, Bytes: 1e10, N: 1000}
	dbl := base
	dbl.Flops *= 2
	tBase := ComputeTime(h, h.Cores(), base)
	tDbl := ComputeTime(h, h.Cores(), dbl)
	if tBase != tDbl {
		t.Errorf("bandwidth-bound times differ: %v vs %v", tBase, tDbl)
	}
	wantSec := 1e10 / (h.MemBWGBs * 1e9)
	gotSec := (tBase - h.TaskOverhead).Seconds()
	if math.Abs(gotSec-wantSec)/wantSec > 1e-6 {
		t.Errorf("bandwidth-bound time = %vs, want %vs", gotSec, wantSec)
	}
}

func TestPCIeOverheadBands(t *testing.T) {
	// Paper §III: 20–30 µs overhead for transfers under 128 KB, and
	// total overhead below 5 % for transfers of 1 MB and up.
	l := PCIe()
	for _, sz := range []int64{4 << 10, 32 << 10, 128 << 10} {
		s := l.Setup(sz)
		if s < 20*time.Microsecond || s > 30*time.Microsecond {
			t.Errorf("setup(%d) = %v, want 20–30µs", sz, s)
		}
	}
	for _, sz := range []int64{1 << 20, 16 << 20, 256 << 20} {
		if ov := l.Overhead(sz); ov >= 0.05 {
			t.Errorf("overhead(%dMB) = %.3f, want < 0.05", sz>>20, ov)
		}
	}
}

func TestPCIeTransferTimeMonotone(t *testing.T) {
	l := PCIe()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return l.TransferTime(x) <= l.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if l.TransferTime(0) <= 0 {
		t.Error("zero-byte transfer must still cost setup time")
	}
}

func TestPeakRates(t *testing.T) {
	cases := []struct {
		spec *DomainSpec
		want float64 // GFlop/s
	}{
		{HSW(), 2 * 14 * 2.6 * 16},
		{IVB(), 2 * 12 * 2.7 * 8},
		{KNC(), 61 * 1.33 * 16},
	}
	for _, c := range cases {
		if got := c.spec.PeakGFlops(); math.Abs(got-c.want) > 1 {
			t.Errorf("%s peak = %.1f, want %.1f", c.spec.Name, got, c.want)
		}
	}
}

func TestMachineAssembly(t *testing.T) {
	m := HSWPlusKNC(2)
	if len(m.Cards) != 2 {
		t.Fatalf("cards = %d, want 2", len(m.Cards))
	}
	if m.Cards[0].Name == m.Cards[1].Name {
		t.Error("card names must be distinct")
	}
	ds := m.Domains()
	if len(ds) != 3 || ds[0] != m.Host {
		t.Error("Domains must list host first then cards")
	}
	wantPeak := HSW().PeakGFlops() + 2*KNC().PeakGFlops()
	if got := m.PeakGFlops(); math.Abs(got-wantPeak) > 1 {
		t.Errorf("machine peak = %.0f, want %.0f", got, wantPeak)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := HSW()
	b := a.Clone()
	b.Eff[KDGEMM] = Efficiency{Max: 0.1, HalfN: 1}
	if a.Eff[KDGEMM].Max == 0.1 {
		t.Error("Clone shares the Eff map")
	}
}

func TestKernelStrings(t *testing.T) {
	for _, k := range Kernels() {
		if k.String() == "" {
			t.Errorf("kernel %d has empty name", int(k))
		}
	}
	if Kernel(99).String() != "Kernel(99)" {
		t.Error("out-of-range kernel name")
	}
	for _, k := range []DomainKind{HostCPU, MIC, GPU, DomainKind(9)} {
		if k.String() == "" {
			t.Error("empty DomainKind string")
		}
	}
}

func TestGFlopsHelpers(t *testing.T) {
	if GFlops(1e9, time.Second) != 1 {
		t.Error("GFlops(1e9, 1s) != 1")
	}
	if GFlops(1e9, 0) != 0 {
		t.Error("GFlops with zero duration must be 0")
	}
}

func TestFabricLinkSlower(t *testing.T) {
	f, p := Fabric(), PCIe()
	if f.BWGBs >= p.BWGBs || f.SmallOverhead <= p.SmallOverhead {
		t.Fatal("fabric must be slower and higher-latency than PCIe")
	}
	if f.TransferTime(1<<20) <= p.TransferTime(1<<20) {
		t.Fatal("fabric transfer not slower than PCIe")
	}
}

func TestAddRemoteDomain(t *testing.T) {
	m := HSWPlusKNC(1).AddRemote(HSW(), Fabric())
	if len(m.Cards) != 2 {
		t.Fatalf("cards = %d, want 2 (local KNC + remote node)", len(m.Cards))
	}
	if m.LinkFor(0) != m.Link {
		t.Fatal("local card must use the default PCIe link")
	}
	if m.LinkFor(1).Name != "fabric" {
		t.Fatalf("remote domain link = %q, want fabric", m.LinkFor(1).Name)
	}
	if m.Cards[1].Kind != HostCPU {
		t.Fatal("remote Xeon keeps its host-CPU kind — just another domain")
	}
	// Out-of-range falls back to the default link.
	if m.LinkFor(7) != m.Link || m.LinkFor(-1) != m.Link {
		t.Fatal("LinkFor fallback broken")
	}
}
