// Package platform describes the simulated heterogeneous machines the
// runtime executes on, and supplies the cost model used in simulated
// (virtual-time) execution.
//
// The built-in machine configurations reproduce Fig. 2 of the paper:
// Intel Xeon E5-2697v2 (Ivy Bridge) and E5-2697v3 (Haswell) hosts, the
// Intel Xeon Phi 7120A (Knights Corner, "KNC") coprocessor, and the
// NVidia K40x. The real hardware is long gone, so the cost model
// stands in for it: per-domain peak rates, per-kernel efficiencies
// with a size ramp, a memory-bandwidth roofline, and a PCIe link model
// with small-transfer overheads. Calibration targets are the achieved
// rates the paper reports (DGEMM: HSW 902, IVB 475, KNC 982 GFlop/s).
package platform

import (
	"fmt"
	"time"
)

// DomainKind classifies a computing domain.
type DomainKind int

const (
	// HostCPU is a multicore Xeon-class host processor.
	HostCPU DomainKind = iota
	// MIC is a manycore coprocessor card (Knights family).
	MIC
	// GPU is a discrete GPU card (used only for CUDA-comparison
	// experiments).
	GPU
)

func (k DomainKind) String() string {
	switch k {
	case HostCPU:
		return "host"
	case MIC:
		return "mic"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("DomainKind(%d)", int(k))
	}
}

// DomainSpec describes one physical domain: a set of computing and
// storage resources that share coherent memory (paper §II).
type DomainSpec struct {
	Name           string
	Kind           DomainKind
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	ClockGHz       float64
	// DPFlopsPerCycle is the double-precision flops one core retires
	// per cycle at peak (SIMD width × FMA factor).
	DPFlopsPerCycle float64
	MemGB           float64
	// MemBWGBs is the achievable memory bandwidth, the roofline's
	// horizontal asymptote.
	MemBWGBs float64
	// ParallelEff is the multi-core scaling efficiency when ALL of
	// the domain's cores work on one task (synchronization,
	// shared-cache and bandwidth interference). Narrower core sets
	// scale better; see ParEffAt.
	ParallelEff float64
	// TaskOverhead is charged once per compute task (OpenMP fork/join
	// and invocation cost at the sink).
	TaskOverhead time.Duration
	// Eff maps kernels to their large-size efficiency relative to
	// peak; see CostModel.
	Eff map[Kernel]Efficiency
}

// Cores returns the total core count of the domain.
func (d *DomainSpec) Cores() int { return d.Sockets * d.CoresPerSocket }

// Threads returns the total hardware thread count of the domain.
func (d *DomainSpec) Threads() int { return d.Cores() * d.ThreadsPerCore }

// PeakGFlops returns the domain-wide peak double-precision rate.
func (d *DomainSpec) PeakGFlops() float64 {
	return float64(d.Cores()) * d.ClockGHz * d.DPFlopsPerCycle
}

// PeakPerCoreGFlops returns one core's peak double-precision rate.
func (d *DomainSpec) PeakPerCoreGFlops() float64 {
	return d.ClockGHz * d.DPFlopsPerCycle
}

// Efficiency is a saturating efficiency curve: a kernel running at
// characteristic size n achieves Max·n/(n+HalfN) of peak. HalfN is the
// size at which half of Max is reached; latency-bound kernels (panel
// factorizations) have large HalfN, streaming kernels small ones.
type Efficiency struct {
	Max   float64
	HalfN int
}

// At evaluates the curve at characteristic size n.
func (e Efficiency) At(n int) float64 {
	if n <= 0 {
		return 0
	}
	return e.Max * float64(n) / float64(n+e.HalfN)
}

// Kernel identifies a compute-kernel class for the cost model.
type Kernel int

const (
	// KDGEMM is general matrix-matrix multiply.
	KDGEMM Kernel = iota
	// KDSYRK is a symmetric rank-k update.
	KDSYRK
	// KDTRSM is a triangular solve with multiple right-hand sides.
	KDTRSM
	// KDPOTRF is a blocked Cholesky panel/diagonal factorization.
	KDPOTRF
	// KDPOTF2 is the unblocked, latency-bound Cholesky kernel.
	KDPOTF2
	// KLDLT is a dense supernode LDLᵀ factorization (Abaqus-style
	// symmetric indefinite solver kernel).
	KLDLT
	// KDGETRF is a blocked LU factorization with partial pivoting.
	KDGETRF
	// KStencil is a finite-difference stencil sweep (RTM).
	KStencil
	// KMemset is sink-side memory initialization.
	KMemset
	numKernels
)

var kernelNames = [...]string{"DGEMM", "DSYRK", "DTRSM", "DPOTRF", "DPOTF2", "LDLT", "DGETRF", "STENCIL", "MEMSET"}

func (k Kernel) String() string {
	if k < 0 || int(k) >= len(kernelNames) {
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
	return kernelNames[k]
}

// Kernels lists all kernel classes known to the cost model.
func Kernels() []Kernel {
	ks := make([]Kernel, numKernels)
	for i := range ks {
		ks[i] = Kernel(i)
	}
	return ks
}

// Cost describes one compute task for the model.
type Cost struct {
	Kernel Kernel
	// Flops is the double-precision operation count.
	Flops float64
	// Bytes is the memory traffic (reads+writes) the task generates;
	// used for the bandwidth roofline. Zero disables the roofline.
	Bytes float64
	// N is the characteristic size (for tiled BLAS, the tile edge)
	// that drives the efficiency ramp.
	N int
	// Extra is additional fixed latency charged to the task — layered
	// runtimes use it for their dispatch/scheduling delays.
	Extra time.Duration
}

// ComputeTime returns the modeled duration of cost on nCores cores of
// domain d. It is a roofline: the greater of compute-limited and
// bandwidth-limited time, plus the per-task overhead. nCores is
// clamped to [1, d.Cores()].
func ComputeTime(d *DomainSpec, nCores int, c Cost) time.Duration {
	if nCores < 1 {
		nCores = 1
	}
	if max := d.Cores(); nCores > max {
		nCores = max
	}
	eff, ok := d.Eff[c.Kernel]
	if !ok {
		eff = Efficiency{Max: 0.5, HalfN: 256}
	}
	// The size ramp is really about work per core: a task of size N
	// on a subset of cores gives each core more work, so it sits
	// higher on the efficiency curve than the same task spread over
	// the whole domain. HalfN is calibrated at full width.
	scaledN := c.N * d.Cores() / nCores
	rate := d.PeakPerCoreGFlops() * float64(nCores) * d.ParEffAt(nCores) * eff.At(scaledN) // GFlop/s
	if rate <= 0 {
		rate = 1e-3
	}
	sec := c.Flops / (rate * 1e9)
	if c.Bytes > 0 && d.MemBWGBs > 0 {
		// The task cannot share the whole domain's bandwidth if it
		// only owns part of the cores.
		bw := d.MemBWGBs * float64(nCores) / float64(d.Cores())
		if bwSec := c.Bytes / (bw * 1e9); bwSec > sec {
			sec = bwSec
		}
	}
	return time.Duration(sec*float64(time.Second)) + d.TaskOverhead + c.Extra
}

// ParEffAt returns the parallel efficiency of a task running on n of
// the domain's cores: an Amdahl-style serial-fraction curve
// calibrated so efficiency equals ParallelEff at full core count and
// approaches 1 for a single core. This is why a domain partitioned
// into a few narrower streams can slightly out-throughput one
// domain-wide task — one of the effects stream subdivision exploits.
func (d *DomainSpec) ParEffAt(n int) float64 {
	if n <= 1 {
		return 1
	}
	cores := d.Cores()
	if cores <= 1 || d.ParallelEff >= 1 {
		return d.ParallelEff
	}
	sigma := (1/d.ParallelEff - 1) / float64(cores-1)
	return 1 / (1 + sigma*float64(n-1))
}

// GFlops converts an operation count and duration to a rate.
func GFlops(flops float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return flops / d.Seconds() / 1e9
}
