package platform

import "time"

// LinkSpec models one interconnect between two domains — in the
// paper's testbed, a PCIe gen-2/3 link carrying SCIF DMA traffic
// between host and coprocessor. Each direction is independent
// (full duplex), which the executors model as separate resources.
type LinkSpec struct {
	Name string
	// BWGBs is the sustained DMA bandwidth per direction.
	BWGBs float64
	// SmallOverhead is the fixed per-transfer cost that dominates
	// small messages. The paper reports 20–30 µs for transfers under
	// 128 KB (§III).
	SmallOverhead time.Duration
	// LargeOverhead is the residual per-transfer cost once DMA
	// descriptors are pipelined; the paper reports total overhead
	// under 5 % for transfers of 1 MB and up.
	LargeOverhead time.Duration
	// SmallLimit is the transfer size below which SmallOverhead
	// applies in full.
	SmallLimit int64
}

// PCIe returns the link model calibrated to the paper's overhead
// observations (§III).
func PCIe() *LinkSpec {
	return &LinkSpec{
		Name:          "pcie",
		BWGBs:         6.8,
		SmallOverhead: 25 * time.Microsecond,
		LargeOverhead: 6 * time.Microsecond,
		SmallLimit:    128 << 10,
	}
}

// Fabric returns an inter-node interconnect model: the "offload over
// fabric" path COI was growing when the paper was written (§III —
// "COI supports offload over fabric, and could be built on top of
// MPI, TCP, Omni-path, PGAS…"). Higher latency and lower bandwidth
// than PCIe.
func Fabric() *LinkSpec {
	return &LinkSpec{
		Name:          "fabric",
		BWGBs:         3.0,
		SmallOverhead: 60 * time.Microsecond,
		LargeOverhead: 15 * time.Microsecond,
		SmallLimit:    128 << 10,
	}
}

// Setup returns the fixed overhead charged for a transfer of the
// given size: SmallOverhead up to SmallLimit, then amortizing
// hyperbolically down to LargeOverhead.
func (l *LinkSpec) Setup(bytes int64) time.Duration {
	if bytes <= l.SmallLimit {
		return l.SmallOverhead
	}
	amortized := time.Duration(float64(l.SmallOverhead) * float64(l.SmallLimit) / float64(bytes))
	if amortized < l.LargeOverhead {
		return l.LargeOverhead
	}
	return amortized
}

// TransferTime models moving bytes across one direction of the link.
func (l *LinkSpec) TransferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return l.Setup(1)
	}
	dma := time.Duration(float64(bytes) / (l.BWGBs * 1e9) * float64(time.Second))
	return l.Setup(bytes) + dma
}

// Overhead reports the fraction of TransferTime that is not raw DMA.
func (l *LinkSpec) Overhead(bytes int64) float64 {
	total := l.TransferTime(bytes)
	if total <= 0 {
		return 0
	}
	return float64(l.Setup(bytes)) / float64(total)
}
