package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hstreams/internal/coi"
	"hstreams/internal/platform"
	"hstreams/internal/timesim"
	"hstreams/internal/trace"
)

// Stream is a task queue with a source endpoint (the host thread that
// enqueues) and a sink endpoint (a core range of one domain, where
// actions execute). Streams on the host domain are "host-as-target"
// streams: their sink aliases the source instances, so transfers are
// optimized away.
type Stream struct {
	rt        *Runtime
	id        int
	name      string
	domain    *Domain
	firstCore int
	nCores    int

	// mu is the stream's scheduling lock — the sharded replacement
	// for the seed's global runtime lock. It guards inflight (and the
	// slot field of its members), destroyed, the operand-interval
	// index, and the succs/lastSucc lists of this stream's actions.
	// The scheduler never holds two stream locks at once.
	mu sync.Mutex
	// inflight holds enqueued-but-incomplete actions; order is
	// arbitrary (finish retires by swapping the last entry into the
	// retiree's slot), membership is what matters.
	inflight []*Action
	// destroyed rejects further enqueues.
	destroyed bool
	// index is the per-buffer operand-interval dependence index; see
	// depindex.go. epoch numbers the current sync generation — a
	// mismatch marks an interval set as dominated by barrier and
	// resettable. barrier is the latest incomplete sync action.
	index   map[*Buf]*bufIvals
	epoch   uint64
	barrier *Action

	// maxDepth bounds len(inflight); 0 is unbounded. policy picks
	// block or shed at the bound. Both are guarded by mu and default
	// to the runtime Config values.
	maxDepth int
	policy   QueuePolicy

	// ndepth mirrors len(inflight) as an atomic so the Sim drain loop
	// and the depth-peak gauge read it without taking mu.
	ndepth atomic.Int64

	// met caches this stream's resolved metric series.
	met *streamMetrics

	// Real-mode execution state. computeMu may be shared with other
	// streams mapped onto the same resources (see StreamCreateOn).
	computeMu *sync.Mutex
	pipeline  *coi.Pipeline

	// Sim-mode execution state; may be shared (see StreamCreateOn).
	slot *timesim.Resource
}

// StreamCreate binds a new stream's sink to cores
// [firstCore, firstCore+nCores) of domain d
// (hStreams_StreamCreate). Overlapping core ranges between streams
// are permitted — the paper lets tuners map multiple streams onto
// common resources.
func (rt *Runtime) StreamCreate(d *Domain, firstCore, nCores int) (*Stream, error) {
	return rt.StreamCreateOn(d, firstCore, nCores, nil)
}

// StreamCreateOn is StreamCreate with explicit resource sharing: when
// share is non-nil (and bound to the same domain), the new stream
// executes its computes on the same physical resources as share, so
// computes of the two streams contend instead of running in parallel.
// This is how tuners "map multiple streams onto a common set of
// resources" (§II), and how the CUDA-comparison model expresses
// streams that share one device-wide scheduler.
func (rt *Runtime) StreamCreateOn(d *Domain, firstCore, nCores int, share *Stream) (*Stream, error) {
	if d == nil || d.rt != rt {
		return nil, ErrWrongRuntime
	}
	if share != nil && share.domain != d {
		return nil, ErrBadStream
	}
	if nCores < 1 || firstCore < 0 || firstCore+nCores > d.spec.Cores() {
		return nil, fmt.Errorf("%w: cores [%d,%d) on %s with %d cores",
			ErrBadStream, firstCore, firstCore+nCores, d.spec.Name, d.spec.Cores())
	}
	rt.mu.Lock()
	if rt.finalized.Load() {
		rt.mu.Unlock()
		return nil, ErrFinalized
	}
	s := &Stream{
		rt:        rt,
		id:        len(rt.streams),
		domain:    d,
		firstCore: firstCore,
		nCores:    nCores,
		index:     make(map[*Buf]*bufIvals),
		maxDepth:  rt.cfg.MaxQueueDepth,
		policy:    rt.cfg.QueuePolicy,
	}
	s.name = fmt.Sprintf("%s.s%d", d.spec.Name, s.id)
	// met must be resolved before the stream is published in
	// rt.streams: Progress() snapshots that slice under rt.mu and
	// reads s.met without further coordination.
	s.met = rt.mets.forStream(s.name, d.spec.Name)
	rt.streams = append(rt.streams, s)
	rt.mu.Unlock()
	// The per-domain stream count is the telemetry layer's capacity
	// basis (utilization = busy-seconds / (span × streams)); streams
	// are never destroyed below the runtime, so the gauge only rises.
	rt.mets.domainStreams.With(d.spec.Name).Add(1)
	recordStreamGeom(rt, s)

	switch rt.cfg.Mode {
	case ModeSim:
		if share != nil {
			s.slot = share.slot
		} else {
			s.slot = timesim.NewResource(s.name)
		}
	case ModeReal:
		if share != nil {
			s.computeMu = share.computeMu
		} else {
			s.computeMu = new(sync.Mutex)
		}
		if !d.IsHost() {
			pl, err := rt.procs[d.index].CreatePipeline()
			if err != nil {
				return nil, err
			}
			s.pipeline = pl
		}
	}
	return s, nil
}

// ID returns the stream's integer handle — hStreams represents
// streams by plain integers, unlike CUDA's opaque pointers (§IV).
func (s *Stream) ID() int { return s.id }

// Name returns the stream's trace name.
func (s *Stream) Name() string { return s.name }

// Domain returns the domain the sink is bound to.
func (s *Stream) Domain() *Domain { return s.domain }

// Width returns the number of cores granted to the sink.
func (s *Stream) Width() int { return s.nCores }

// SetQueueBound overrides the stream's queue bound and full-queue
// policy (the defaults come from Config.MaxQueueDepth/QueuePolicy).
// depth 0 removes the bound. Enqueues already blocked on the old
// bound re-evaluate against the new one as they retry.
func (s *Stream) SetQueueBound(depth int, policy QueuePolicy) {
	s.mu.Lock()
	s.maxDepth = depth
	s.policy = policy
	s.mu.Unlock()
}

// QueueBound returns the stream's current queue bound (0 when
// unbounded) and full-queue policy.
func (s *Stream) QueueBound() (depth int, policy QueuePolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxDepth, s.policy
}

// EnqueueCompute enqueues a kernel invocation
// (hStreams_EnqueueCompute). The kernel is looked up by name at the
// sink; args are scalar arguments; ops declare the memory operands
// that drive dependence analysis; cost informs the Sim-mode duration
// model (ignored in Real mode). The returned action is also the
// completion event.
func (s *Stream) EnqueueCompute(kernel string, args []int64, ops []Operand, cost platform.Cost) (*Action, error) {
	return s.EnqueueComputeDeps(kernel, args, ops, cost, nil)
}

// EnqueueComputeDeps is EnqueueCompute with additional explicit
// dependences on events from other streams. Unlike a preceding
// EnqueueEventWait (which bars the whole stream), only this action
// waits: later independent actions in the stream may still overtake
// it — the fine-grained cross-stream synchronization that layered
// runtimes (OmpSs) rely on (§IV: "dependencies are based on a
// data-flow approach").
func (s *Stream) EnqueueComputeDeps(kernel string, args []int64, ops []Operand, cost platform.Cost, deps []*Action) (*Action, error) {
	a := &Action{
		kind:   ActCompute,
		stream: s,
		label:  kernel,
		kernel: kernel,
		args:   args,
		ops:    ops,
		cost:   cost,
	}
	if s.rt.cfg.Mode == ModeReal {
		fn, id, ok := s.rt.kernelByName(kernel)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoKernel, kernel)
		}
		a.kernelFn, a.kernelID = fn, id
	}
	return s.rt.enqueue(a, deps)
}

// XferDir selects a transfer direction relative to the stream's sink.
type XferDir int

const (
	// ToSink moves source-instance bytes to the sink instance
	// (hStreams_app_xfer_memory HSTR_SRC_TO_SINK).
	ToSink XferDir = iota
	// ToSource moves sink-instance bytes back to the source.
	ToSource
)

// EnqueueXfer enqueues a transfer of b[off:off+n] in the given
// direction. On host-as-target streams the instances alias, so the
// action costs nothing but still participates in dependence order.
func (s *Stream) EnqueueXfer(b *Buf, off, n int64, dir XferDir) (*Action, error) {
	return s.EnqueueXferDeps(b, off, n, dir, nil)
}

// EnqueueXferDeps is EnqueueXfer with additional explicit dependences
// (see EnqueueComputeDeps).
func (s *Stream) EnqueueXferDeps(b *Buf, off, n int64, dir XferDir, deps []*Action) (*Action, error) {
	acc := Out
	kind := ActXferToSink
	if dir == ToSource {
		acc = In
		kind = ActXferToSrc
	}
	a := &Action{
		kind:   kind,
		stream: s,
		label:  fmt.Sprintf("%s %s", kind, b.name),
		ops:    []Operand{{Buf: b, Off: off, Len: n, Acc: acc}},
		bytes:  n,
	}
	return s.rt.enqueue(a, deps)
}

// EnqueueXferAll transfers the whole buffer.
func (s *Stream) EnqueueXferAll(b *Buf, dir XferDir) (*Action, error) {
	return s.EnqueueXfer(b, 0, b.size, dir)
}

// EnqueueMarker enqueues a synchronization marker that orders against
// every earlier and later action in the stream and completes when all
// its predecessors have (hStreams_EnqueueMarker).
func (s *Stream) EnqueueMarker() (*Action, error) {
	a := &Action{kind: ActSync, stream: s, label: "marker"}
	return s.rt.enqueue(a, nil)
}

// EnqueueEventWait enqueues a marker that additionally waits for the
// given events from other streams — the cross-stream synchronization
// primitive (hStreams_EnqueueEventWait).
func (s *Stream) EnqueueEventWait(evs ...*Action) (*Action, error) {
	a := &Action{kind: ActSync, stream: s, label: "event-wait"}
	return s.rt.enqueue(a, evs)
}

// Destroy drains the stream and rejects further enqueues
// (hStreams_StreamDestroy). The integer handle and the stream's past
// events remain valid; only new work is refused. Destroy is
// idempotent.
func (s *Stream) Destroy() error {
	s.mu.Lock()
	s.destroyed = true
	s.mu.Unlock()
	return s.Synchronize()
}

// enqueueReplay re-enqueues one checkpointed action with its recorded
// dependence edges (deps/whys parallel slices of predecessor actions
// and edge kinds). The replay flag makes enqueue take the edges as
// prescribed instead of rediscovering them; see checkpoint.go.
func (s *Stream) enqueueReplay(kind ActKind, label string, bytes int64, cost platform.Cost, deps []*Action, whys []trace.DepKind) (*Action, error) {
	a := &Action{
		kind:      kind,
		stream:    s,
		label:     label,
		bytes:     bytes,
		cost:      cost,
		replay:    true,
		replayWhy: whys,
	}
	return s.rt.enqueue(a, deps)
}

// Synchronize blocks the host until every action previously enqueued
// in this stream has completed (hStreams_StreamSynchronize). inflight
// is unordered, so it waits on whatever member it sees and re-checks
// until the window is empty.
func (s *Stream) Synchronize() error {
	for {
		s.mu.Lock()
		var pending *Action
		if len(s.inflight) > 0 {
			pending = s.inflight[0]
		}
		s.mu.Unlock()
		if pending == nil {
			return s.rt.Err()
		}
		s.rt.exec.waitAction(pending)
	}
}
