package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hstreams/internal/fault"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// Resilience-layer tests: retry determinism under a seeded injector,
// deadline expiry (at attempt boundaries and mid-transfer on a slow
// link), breaker quarantine with dirty-range flush + host re-route,
// and the randomized FIFO-semantic differential under fault load.
// All of them run Real mode on HSWPlusKNC(1) so the fabric and COI
// injection hooks are actually on the code path.

// incKernel adds one to every byte of every operand — trivially
// verifiable through arbitrary ToSink/compute/ToSource round trips.
func incKernel(ctx *KernelCtx) {
	for _, op := range ctx.Ops {
		for i := range op {
			op[i]++
		}
	}
}

// newChaosRT builds a Real-mode runtime on one KNC card with the
// given resilience configuration and the inc kernel registered.
func newChaosRT(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	cfg.Machine = platform.HSWPlusKNC(1)
	cfg.Mode = ModeReal
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Flight == nil {
		cfg.Flight = trace.NewFlight(1 << 12)
	}
	rt, err := Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	rt.RegisterKernel("inc", incKernel)
	return rt
}

// TestRetryDeterministicCounts pins the retry machinery's determinism:
// a single-stream program (every action hazards with its predecessor,
// so execution is fully serial and each injection site sees one
// deterministic decision sequence) must produce the exact same retry
// count, the same per-span retry totals and the same — correct —
// buffer contents on every run with the same seed.
func TestRetryDeterministicCounts(t *testing.T) {
	const rounds = 6
	const size = 1024
	run := func() (retries float64, spanRetries int, data []byte) {
		reg := metrics.New()
		fl := trace.NewFlight(1 << 12)
		inj := fault.NewInjector(fault.Plan{
			Seed:          7,
			TransferError: 0.25,
			KernelError:   0.25,
		}, reg)
		rt := newChaosRT(t, Config{
			Metrics: reg,
			Flight:  fl,
			Faults:  inj,
			Retry: RetryPolicy{
				Max: 20, Backoff: time.Microsecond,
				BackoffMax: 50 * time.Microsecond, Jitter: 0.5, Seed: 7,
			},
		})
		st, err := rt.StreamCreate(rt.Card(0), 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rt.Alloc1D("buf", size)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b.host {
			b.host[i] = byte(i)
		}
		full := []Operand{{Buf: b, Off: 0, Len: size, Acc: InOut}}
		for r := 0; r < rounds; r++ {
			if _, err := st.EnqueueXferAll(b, ToSink); err != nil {
				t.Fatal(err)
			}
			if _, err := st.EnqueueCompute("inc", nil, full, platform.Cost{}); err != nil {
				t.Fatal(err)
			}
			if _, err := st.EnqueueXferAll(b, ToSource); err != nil {
				t.Fatal(err)
			}
		}
		rt.ThreadSynchronize()
		if err := rt.Err(); err != nil {
			t.Fatalf("chaos run failed (retry budget should absorb all faults): %v", err)
		}
		for _, sp := range trace.FilterRun(fl.Snapshot(), rt.RunID()) {
			spanRetries += sp.Retries
			if sp.DeadlineHit || sp.Rerouted {
				t.Errorf("span %d: unexpected deadline/reroute flags (%+v)", sp.ID, sp)
			}
		}
		return reg.Total("hstreams_retries_total"), spanRetries, append([]byte(nil), b.host...)
	}

	r1, s1, d1 := run()
	r2, s2, d2 := run()
	if r1 == 0 {
		t.Fatal("seeded plan injected no retried faults; pick a different seed")
	}
	if r1 != r2 || s1 != s2 {
		t.Errorf("retry counts not deterministic: run1 (counter %v, spans %d) vs run2 (counter %v, spans %d)", r1, s1, r2, s2)
	}
	if float64(s1) != r1 {
		t.Errorf("span retry total %d disagrees with hstreams_retries_total %v", s1, r1)
	}
	for i := range d1 {
		if want := byte(i) + rounds; d1[i] != want || d2[i] != want {
			t.Fatalf("byte %d: got %d / %d, want %d — retries corrupted data", i, d1[i], d2[i], want)
		}
	}
}

// TestDeadlineExpiry covers both ways an action can exhaust
// Config.Deadline: across retry attempts of a fast-failing link, and
// within a single attempt on a link that is slow to fail. Both must
// surface ErrDeadlineExceeded — a fatal error the taxonomy refuses to
// retry — and account it in hstreams_deadline_exceeded_total and the
// span's DeadlineHit flag.
func TestDeadlineExpiry(t *testing.T) {
	check := func(t *testing.T, plan fault.Plan, retry RetryPolicy, wantRetries func(int) bool) {
		t.Helper()
		reg := metrics.New()
		fl := trace.NewFlight(1 << 10)
		rt := newChaosRT(t, Config{
			Metrics:  reg,
			Flight:   fl,
			Faults:   fault.NewInjector(plan, reg),
			Retry:    retry,
			Deadline: time.Millisecond,
		})
		st, err := rt.StreamCreate(rt.Card(0), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rt.Alloc1D("buf", 256)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.EnqueueXferAll(b, ToSink); err != nil {
			t.Fatal(err)
		}
		rt.ThreadSynchronize()
		err = rt.Err()
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("got %v, want ErrDeadlineExceeded", err)
		}
		if fault.IsTransient(err) {
			t.Error("deadline errors must be fatal in the taxonomy, IsTransient said retryable")
		}
		if got := reg.Total("hstreams_deadline_exceeded_total"); got != 1 {
			t.Errorf("hstreams_deadline_exceeded_total = %v, want 1", got)
		}
		found := false
		for _, sp := range trace.FilterRun(fl.Snapshot(), rt.RunID()) {
			if sp.DeadlineHit {
				found = true
				if !wantRetries(sp.Retries) {
					t.Errorf("deadline span has %d retries, outside the expected range", sp.Retries)
				}
			}
		}
		if !found {
			t.Error("no span carries DeadlineHit")
		}
	}

	// Fast failures: the deadline is consumed by backoff between
	// attempts, so at least one retry happens before expiry.
	t.Run("across-attempts", func(t *testing.T) {
		check(t,
			fault.Plan{Seed: 1, TransferError: 1},
			RetryPolicy{Max: 100, Backoff: 200 * time.Microsecond},
			func(r int) bool { return r >= 1 },
		)
	})
	// Slow-to-fail link: the single first attempt sleeps past the
	// whole deadline before failing, so expiry is detected with zero
	// retries spent.
	t.Run("mid-transfer", func(t *testing.T) {
		check(t,
			fault.Plan{Seed: 1, TransferError: 1, SlowLink: 1, SlowLatency: 3 * time.Millisecond},
			RetryPolicy{Max: 5},
			func(r int) bool { return r == 0 },
		)
	})
}

// TestBreakerQuarantineReroute is the directed dirty-range
// correctness test: a card computes into half a buffer, the sink then
// starts failing every kernel launch, the breaker trips, and the
// quarantine flush must rescue exactly the card-dirty half — without
// clobbering host bytes the card never wrote — before re-routed
// actions continue on the host.
func TestBreakerQuarantineReroute(t *testing.T) {
	const size = 1024
	const dirtyLen = 512

	// phase1 runs the known-good prefix: full ToSink, then a card inc
	// over the dirty half. Identical across the probe and real passes,
	// so it consumes the same number of injector decisions in both.
	phase1 := func(t *testing.T, rt *Runtime) (*Stream, *Buf) {
		t.Helper()
		st, err := rt.StreamCreate(rt.Card(0), 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rt.Alloc1D("buf", size)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b.host {
			b.host[i] = byte(i)
		}
		if _, err := st.EnqueueXferAll(b, ToSink); err != nil {
			t.Fatal(err)
		}
		if _, err := st.EnqueueCompute("inc", nil,
			[]Operand{{Buf: b, Off: 0, Len: dirtyLen, Acc: InOut}}, platform.Cost{}); err != nil {
			t.Fatal(err)
		}
		rt.ThreadSynchronize()
		if err := rt.Err(); err != nil {
			t.Fatalf("clean phase failed: %v", err)
		}
		return st, b
	}

	// Probe pass: a zero plan, to count how many injector decisions
	// the warm-up (Init + phase 1) consumes. ArmAfter then phases the
	// real plan's faults to start exactly at phase 2.
	probe := fault.NewInjector(fault.Plan{}, metrics.New())
	rtProbe := newChaosRT(t, Config{Faults: probe})
	phase1(t, rtProbe)
	warmup := probe.Decisions()
	rtProbe.Fini()
	if warmup == 0 {
		t.Fatal("probe saw no injector decisions; the fabric/COI hooks are not wired")
	}

	// Real pass: every kernel launch after the warm-up fails, retries
	// are off and the breaker trips on the first failure.
	reg := metrics.New()
	fl := trace.NewFlight(1 << 10)
	rt := newChaosRT(t, Config{
		Metrics: reg,
		Flight:  fl,
		Faults:  fault.NewInjector(fault.Plan{Seed: 7, KernelError: 1, ArmAfter: warmup}, reg),
		Breaker: BreakerPolicy{Threshold: 1},
	})
	st, b := phase1(t, rt)

	// Host-side bytes the card never touched must survive the flush.
	b.host[600] = 0xAA

	// Phase 2: this inc's launch fails, trips the breaker, and the
	// action re-routes to the host — after the flush pulled the card's
	// dirty half (i+1) home. A re-routed ToSource is then a no-op.
	if _, err := st.EnqueueCompute("inc", nil,
		[]Operand{{Buf: b, Off: 0, Len: dirtyLen, Acc: InOut}}, platform.Cost{}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.EnqueueXferAll(b, ToSource); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		t.Fatalf("quarantined run must complete on the host, got: %v", err)
	}

	for i := 0; i < dirtyLen; i++ {
		// card inc (+1), flush, host inc (+1): without the flush the
		// host would read i+1 and the data loss would be invisible to
		// a whole-buffer checksum of a single increment.
		if want := byte(i) + 2; b.host[i] != want {
			t.Fatalf("byte %d = %d, want %d — dirty range not flushed before re-route", i, b.host[i], want)
		}
	}
	if b.host[600] != 0xAA {
		t.Error("flush clobbered a host byte outside the card-dirty range")
	}
	for i := dirtyLen; i < size; i++ {
		if i != 600 && b.host[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d — flush wrote outside the dirty range", i, b.host[i], byte(i))
		}
	}

	card := rt.Card(0).Spec().Name
	if got := reg.Sum("hstreams_breaker_trips_total", map[string]string{"domain": card}); got != 1 {
		t.Errorf("breaker trips = %v, want 1", got)
	}
	if got := reg.Sum("hstreams_domain_quarantined", map[string]string{"domain": card}); got != 1 {
		t.Errorf("quarantined gauge = %v, want 1", got)
	}
	if got := reg.Sum("hstreams_rerouted_total", map[string]string{"domain": card}); got != 2 {
		t.Errorf("rerouted = %v, want 2 (the compute and the ToSource)", got)
	}
	rerouted := 0
	for _, sp := range trace.FilterRun(fl.Snapshot(), rt.RunID()) {
		if sp.Rerouted {
			rerouted++
		}
	}
	if rerouted != 2 {
		t.Errorf("%d spans carry Rerouted, want 2", rerouted)
	}
}

// TestFIFOSemanticUnderFaults is the breaker/retry counterpart of the
// dependence-index differential: randomized multi-stream programs on
// a card domain, under transfer and kernel fault load heavy enough to
// trip the breaker, must still finish without error and satisfy the
// dynamic FIFO-with-overlap check against the naive hazard relation —
// re-routing must not reorder hazardous pairs.
func TestFIFOSemanticUnderFaults(t *testing.T) {
	for seed := int64(30); seed < 33; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := genDiffProg(rand.New(rand.NewSource(seed)), 3, 25, false)
			reg := metrics.New()
			inj := fault.NewInjector(fault.Plan{
				Seed:          uint64(seed),
				TransferError: 0.2,
				KernelError:   0.2,
				SlowLink:      0.2,
				SlowLatency:   50 * time.Microsecond,
			}, reg)
			rt := newChaosRT(t, Config{
				Metrics: reg,
				Faults:  inj,
				Retry: RetryPolicy{
					Max: 50, Backoff: time.Microsecond,
					BackoffMax: 100 * time.Microsecond, Jitter: 0.5, Seed: uint64(seed),
				},
				Breaker: BreakerPolicy{Threshold: 4},
			})
			rt.RegisterKernel("nop", func(*KernelCtx) {})
			rt.RegisterKernel("gate", func(*KernelCtx) {})
			h := &diffHarness{rt: rt, actions: make([]*Action, len(p.acts))}
			for s := 0; s < p.nStreams; s++ {
				st, err := rt.StreamCreate(rt.Card(0), 2*s, 2)
				if err != nil {
					t.Fatal(err)
				}
				h.streams = append(h.streams, st)
			}
			for bi := 0; bi < p.nBufs; bi++ {
				buf, err := rt.Alloc1D(fmt.Sprintf("d%d", bi), p.bufSize)
				if err != nil {
					t.Fatal(err)
				}
				h.bufs = append(h.bufs, buf)
			}
			for i := range p.acts {
				h.enqueueOne(t, p, i)
			}
			rt.ThreadSynchronize()
			if err := rt.Err(); err != nil {
				t.Fatalf("faulted run must be absorbed by retry/re-route, got: %v", err)
			}
			checkFIFOSemantic(t, p, h.actions)
			if reg.Total("hstreams_faults_injected_total") == 0 {
				t.Error("plan injected nothing; the differential ran fault-free")
			}
			if reg.Total("hstreams_retries_total") == 0 {
				t.Error("no retries recorded under a 20% fault rate")
			}
		})
	}
}

// TestRetryPolicyWait pins the backoff schedule: exponential growth,
// the BackoffMax cap, the shift-overflow clamp, and jitter that is
// deterministic in (seed, action, attempt) and bounded by the
// configured spread.
func TestRetryPolicyWait(t *testing.T) {
	if w := (RetryPolicy{}).wait(1, 3); w != 0 {
		t.Errorf("zero policy waits %v, want 0", w)
	}
	p := RetryPolicy{Backoff: time.Millisecond, BackoffMax: 4 * time.Millisecond}
	for attempt, want := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
	} {
		if w := p.wait(9, attempt); w != want {
			t.Errorf("attempt %d: wait %v, want %v", attempt, w, want)
		}
	}
	j := RetryPolicy{Backoff: time.Millisecond, Jitter: 0.5, Seed: 11}
	if a, b := j.wait(3, 0), j.wait(3, 0); a != b {
		t.Errorf("jitter not deterministic: %v vs %v", a, b)
	}
	lo, hi := time.Duration(float64(time.Millisecond)*0.75), time.Duration(float64(time.Millisecond)*1.25)
	for id := uint64(0); id < 50; id++ {
		if w := j.wait(id, 0); w < lo || w > hi {
			t.Errorf("action %d: jittered wait %v outside [%v, %v]", id, w, lo, hi)
		}
	}
	// Attempts beyond the shift clamp reuse attempt 20's schedule
	// instead of overflowing the shift.
	if a, b := j.wait(5, 20), j.wait(5, 40); a != b {
		t.Errorf("over-clamp attempt differs: %v vs %v", a, b)
	}
}

// TestIvset pins the dirty-range set: coalescing unions, splitting
// subtraction, and the non-aliasing of the rebuilt slices.
func TestIvset(t *testing.T) {
	var s ivset
	s.add(10, 20)
	s.add(30, 40)
	s.add(50, 60)
	if len(s.ivs) != 3 || s.total() != 30 {
		t.Fatalf("disjoint adds: %+v", s.ivs)
	}
	s.add(20, 30) // exactly adjacent on both sides: [10,40) ∪ [50,60)
	if len(s.ivs) != 2 || s.ivs[0] != (byteiv{10, 40}) {
		t.Fatalf("adjacency coalesce: %+v", s.ivs)
	}
	s.add(0, 5) // strictly left of everything (insert-before path)
	if len(s.ivs) != 3 || s.ivs[0] != (byteiv{0, 5}) {
		t.Fatalf("front insert: %+v", s.ivs)
	}
	s.add(0, 100) // absorbs all
	if len(s.ivs) != 1 || s.ivs[0] != (byteiv{0, 100}) {
		t.Fatalf("absorb all: %+v", s.ivs)
	}
	s.remove(40, 60) // split
	if len(s.ivs) != 2 || s.ivs[0] != (byteiv{0, 40}) || s.ivs[1] != (byteiv{60, 100}) {
		t.Fatalf("split: %+v", s.ivs)
	}
	s.remove(30, 70) // trims both
	if s.total() != 60 || s.ivs[0].hi != 30 || s.ivs[1].lo != 70 {
		t.Fatalf("trim: %+v", s.ivs)
	}
	s.remove(0, 100)
	if len(s.ivs) != 0 || s.total() != 0 {
		t.Fatalf("clear: %+v", s.ivs)
	}
	s.add(5, 5) // empty ranges are ignored
	s.remove(1, 1)
	if len(s.ivs) != 0 {
		t.Fatalf("empty-range ops: %+v", s.ivs)
	}
}
