package core

import (
	"strings"
	"testing"
	"time"

	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

// registerTestKernels installs the small kernels the Real-mode tests
// drive streams with.
func registerTestKernels(rt *Runtime) {
	// scale: ops[0] *= args[0]
	rt.RegisterKernel("scale", func(ctx *KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		f := float64(ctx.Args[0])
		for i := range v {
			v[i] *= f
		}
	})
	// affine: ops[0] = ops[0]*args[0] + args[1] (non-commutative
	// across invocations, used by ordering tests)
	rt.RegisterKernel("affine", func(ctx *KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		m, c := float64(ctx.Args[0]), float64(ctx.Args[1])
		for i := range v {
			v[i] = v[i]*m + c
		}
	})
	// copy: ops[1] = ops[0]
	rt.RegisterKernel("copy", func(ctx *KernelCtx) {
		copy(ctx.Ops[1], ctx.Ops[0])
	})
	// slowcopy: sleep args[0] ms, then ops[1] = ops[0]
	rt.RegisterKernel("slowcopy", func(ctx *KernelCtx) {
		time.Sleep(time.Duration(ctx.Args[0]) * time.Millisecond)
		copy(ctx.Ops[1], ctx.Ops[0])
	})
	// boom: panics
	rt.RegisterKernel("boom", func(ctx *KernelCtx) { panic("boom") })
}

func TestRealOffloadRoundTrip(t *testing.T) {
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	b, f, err := rt.AllocFloat64("v", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		f[i] = float64(i)
	}
	s, err := rt.StreamCreate(rt.Card(0), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, ToSink); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueCompute("scale", []int64{3}, []Operand{b.All(InOut)}, platform.Cost{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, ToSource); err != nil {
		t.Fatal(err)
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if f[i] != float64(3*i) {
			t.Fatalf("f[%d] = %v, want %v", i, f[i], 3*i)
		}
	}
}

func TestRealHostAsTargetStream(t *testing.T) {
	rt := realRuntime(t, 0)
	registerTestKernels(rt)
	b, f, _ := rt.AllocFloat64("v", 8)
	for i := range f {
		f[i] = 2
	}
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Transfers on host streams are aliased away but must preserve
	// ordering; computes run directly on the source instance.
	if _, err := s.EnqueueXferAll(b, ToSink); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueCompute("scale", []int64{5}, []Operand{b.All(InOut)}, platform.Cost{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, ToSource); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
	if f[0] != 10 {
		t.Fatalf("f[0] = %v, want 10", f[0])
	}
}

func TestRealFIFOOrderOnOverlap(t *testing.T) {
	// Two affine updates of the same range do not commute; the FIFO
	// semantic must apply them in program order.
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	b, f, _ := rt.AllocFloat64("v", 4)
	f[0] = 1
	s, _ := rt.StreamCreate(rt.Card(0), 0, 4)
	must(t)(s.EnqueueXferAll(b, ToSink))
	mustEnqueueC(t, s, "affine", []int64{10, 1}, []Operand{b.All(InOut)}) // 1*10+1 = 11
	mustEnqueueC(t, s, "affine", []int64{2, 5}, []Operand{b.All(InOut)})  // 11*2+5 = 27
	must(t)(s.EnqueueXferAll(b, ToSource))
	rt.ThreadSynchronize()
	if f[0] != 27 {
		t.Fatalf("f[0] = %v, want 27 (in-order) — reordering would give %v", f[0], (1*2+5)*10+1)
	}
}

func TestRealWARHazardEnforced(t *testing.T) {
	// A slow reader of X followed by a writer of X: the writer must
	// wait (WAR), so the reader sees the old value.
	rt := realRuntime(t, 0)
	registerTestKernels(rt)
	x, fx, _ := rt.AllocFloat64("x", 4)
	y, fy, _ := rt.AllocFloat64("y", 4)
	fx[0] = 1
	s, _ := rt.StreamCreate(rt.Host(), 0, 2)
	mustEnqueueC(t, s, "slowcopy", []int64{50}, []Operand{x.All(In), y.All(Out)})
	mustEnqueueC(t, s, "affine", []int64{0, 9}, []Operand{x.All(InOut)}) // x = 9
	rt.ThreadSynchronize()
	if fy[0] != 1 {
		t.Fatalf("reader saw overwritten value: y = %v, want 1", fy[0])
	}
	if fx[0] != 9 {
		t.Fatalf("writer result lost: x = %v, want 9", fx[0])
	}
}

func TestRealIndependentActionsCanReorder(t *testing.T) {
	// A long compute on buffer A followed by a transfer of
	// independent buffer B: the transfer may (and here, must) finish
	// first — the out-of-order freedom CUDA streams lack (§IV).
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	a, _, _ := rt.AllocFloat64("a", 4)
	bb, _, _ := rt.AllocFloat64("b", 4)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 4)
	must(t)(s.EnqueueXferAll(a, ToSink))
	slow := mustEnqueueC(t, s, "slowcopy", []int64{150}, []Operand{a.All(In), a.All(Out)})
	xfer := must(t)(s.EnqueueXferAll(bb, ToSink))
	if err := xfer.Wait(); err != nil {
		t.Fatal(err)
	}
	if slow.Completed() {
		t.Skip("compute finished implausibly fast; cannot observe reordering")
	}
	rt.ThreadSynchronize()
	_, slowEnd := slow.Times()
	_, xferEnd := xfer.Times()
	if xferEnd >= slowEnd {
		t.Fatalf("independent transfer did not overtake compute: xfer end %v, compute end %v", xferEnd, slowEnd)
	}
}

func TestRealMarkerBarsReordering(t *testing.T) {
	// Same as above but with a marker between: now the transfer must
	// wait for the compute.
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	a, _, _ := rt.AllocFloat64("a", 4)
	bb, _, _ := rt.AllocFloat64("b", 4)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 4)
	must(t)(s.EnqueueXferAll(a, ToSink))
	slow := mustEnqueueC(t, s, "slowcopy", []int64{60}, []Operand{a.All(In), a.All(Out)})
	if _, err := s.EnqueueMarker(); err != nil {
		t.Fatal(err)
	}
	xfer := must(t)(s.EnqueueXferAll(bb, ToSink))
	if err := xfer.Wait(); err != nil {
		t.Fatal(err)
	}
	if !slow.Completed() {
		t.Fatal("marker failed to order transfer after compute")
	}
}

func TestRealCrossStreamEventWait(t *testing.T) {
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	x, fx, _ := rt.AllocFloat64("x", 4)
	y, fy, _ := rt.AllocFloat64("y", 4)
	fx[0] = 5
	s1, _ := rt.StreamCreate(rt.Host(), 0, 2)
	s2, _ := rt.StreamCreate(rt.Host(), 2, 2)
	// s1 computes x slowly; s2 copies x into y but must wait for s1
	// via an event — there are no implicit inter-stream dependences.
	ev := mustEnqueueC(t, s1, "slowcopy", []int64{50}, []Operand{x.All(In), x.All(Out)})
	if _, err := s2.EnqueueEventWait(ev); err != nil {
		t.Fatal(err)
	}
	mustEnqueueC(t, s2, "copy", nil, []Operand{x.All(In), y.All(Out)})
	rt.ThreadSynchronize()
	if fy[0] != 5 {
		t.Fatalf("y = %v, want 5", fy[0])
	}
}

func TestRealEventWaitAnyAll(t *testing.T) {
	rt := realRuntime(t, 0)
	registerTestKernels(rt)
	x, _, _ := rt.AllocFloat64("x", 4)
	s, _ := rt.StreamCreate(rt.Host(), 0, 2)
	fast := mustEnqueueC(t, s, "affine", []int64{1, 1}, []Operand{x.Range(0, 8, InOut)})
	slow := mustEnqueueC(t, s, "slowcopy", []int64{80}, []Operand{x.Range(8, 8, In), x.Range(16, 8, Out)})
	rt.EventWait([]*Action{fast, slow}, false)
	if !fast.Completed() && !slow.Completed() {
		t.Fatal("EventWait(any) returned with nothing complete")
	}
	rt.EventWait([]*Action{fast, slow}, true)
	if !fast.Completed() || !slow.Completed() {
		t.Fatal("EventWait(all) returned early")
	}
	rt.EventWait(nil, true) // empty must not block
}

func TestRealKernelPanicPropagates(t *testing.T) {
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	b, _, _ := rt.AllocFloat64("b", 4)
	for _, d := range []*Domain{rt.Host(), rt.Card(0)} {
		s, _ := rt.StreamCreate(d, 0, 2)
		a := mustEnqueueC(t, s, "boom", nil, []Operand{b.All(InOut)})
		if err := a.Wait(); err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("%s: err = %v, want kernel panic", d, err)
		}
	}
	if rt.Err() == nil {
		t.Fatal("runtime first-error not recorded")
	}
}

func TestRealUnregisteredKernelRejected(t *testing.T) {
	rt := realRuntime(t, 0)
	s, _ := rt.StreamCreate(rt.Host(), 0, 2)
	if _, err := s.EnqueueCompute("ghost", nil, nil, platform.Cost{}); err == nil {
		t.Fatal("unregistered kernel accepted")
	}
}

func TestStreamCreateValidation(t *testing.T) {
	rt := realRuntime(t, 1)
	host := rt.Host()
	if _, err := rt.StreamCreate(host, 0, 0); err == nil {
		t.Fatal("zero-width stream accepted")
	}
	if _, err := rt.StreamCreate(host, -1, 2); err == nil {
		t.Fatal("negative core accepted")
	}
	if _, err := rt.StreamCreate(host, 0, host.Spec().Cores()+1); err == nil {
		t.Fatal("overwide stream accepted")
	}
	// Overlapping core ranges are explicitly allowed (tuners may map
	// multiple streams onto common resources).
	if _, err := rt.StreamCreate(host, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.StreamCreate(host, 0, 4); err != nil {
		t.Fatal(err)
	}
}

func TestOperandValidationAtEnqueue(t *testing.T) {
	rt := realRuntime(t, 0)
	registerTestKernels(rt)
	b, _, _ := rt.AllocFloat64("b", 4)
	s, _ := rt.StreamCreate(rt.Host(), 0, 2)
	if _, err := s.EnqueueCompute("scale", []int64{2}, []Operand{b.Range(0, 999, InOut)}, platform.Cost{}); err != ErrBadOperand {
		t.Fatalf("err = %v, want ErrBadOperand", err)
	}
	if _, err := s.EnqueueXfer(b, 16, 64, ToSink); err != ErrBadOperand {
		t.Fatalf("xfer err = %v, want ErrBadOperand", err)
	}
}

func TestFinalizedRuntimeRejectsWork(t *testing.T) {
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(0), Mode: ModeReal})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := rt.StreamCreate(rt.Host(), 0, 2)
	rt.Fini()
	rt.Fini() // double Fini must be safe
	if _, err := rt.Alloc1D("b", 8); err != ErrFinalized {
		t.Fatalf("Alloc1D err = %v", err)
	}
	if _, err := rt.StreamCreate(rt.Host(), 0, 2); err != ErrFinalized {
		t.Fatalf("StreamCreate err = %v", err)
	}
	if _, err := s.EnqueueMarker(); err != ErrFinalized {
		t.Fatalf("Enqueue err = %v", err)
	}
}

func TestInitValidation(t *testing.T) {
	if _, err := Init(Config{}); err != ErrEmptyMachine {
		t.Fatalf("err = %v, want ErrEmptyMachine", err)
	}
	if _, err := Init(Config{Machine: platform.HSWPlusKNC(0), Mode: Mode(42)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestDomainEnumeration(t *testing.T) {
	rt := realRuntime(t, 2)
	if rt.NumCards() != 2 {
		t.Fatalf("NumCards = %d", rt.NumCards())
	}
	if !rt.Host().IsHost() || rt.Card(0).IsHost() {
		t.Fatal("host/card classification wrong")
	}
	ds := rt.Domains()
	if len(ds) != 3 || ds[0].Index() != 0 || ds[1].Spec().Kind != platform.MIC {
		t.Fatalf("Domains = %v", ds)
	}
	if rt.Machine() == nil || rt.Mode() != ModeReal {
		t.Fatal("accessor plumbing")
	}
}

// must returns a helper that unwraps (action, error) pairs.
func must(t *testing.T) func(*Action, error) *Action {
	return func(a *Action, err error) *Action {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
}

func mustEnqueueC(t *testing.T, s *Stream, kernel string, args []int64, ops []Operand) *Action {
	t.Helper()
	a, err := s.EnqueueCompute(kernel, args, ops, platform.Cost{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRealRemoteDomainRoundTrip(t *testing.T) {
	// The uniform interface: offloading to a Xeon on a remote node
	// is the same code as offloading to a local card.
	m := platform.HSWPlusKNC(0).AddRemote(platform.HSW(), platform.Fabric())
	rt, err := Init(Config{Machine: m, Mode: ModeReal})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	registerTestKernels(rt)
	b, f, _ := rt.AllocFloat64("v", 16)
	for i := range f {
		f[i] = 2
	}
	s, err := rt.StreamCreate(rt.Card(0), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	must(t)(s.EnqueueXferAll(b, ToSink))
	mustEnqueueC(t, s, "scale", []int64{7}, []Operand{b.All(InOut)})
	must(t)(s.EnqueueXferAll(b, ToSource))
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if f[0] != 14 {
		t.Fatalf("f[0] = %v, want 14", f[0])
	}
}

func TestStreamDestroy(t *testing.T) {
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	b, f, _ := rt.AllocFloat64("v", 8)
	f[0] = 2
	s, _ := rt.StreamCreate(rt.Card(0), 0, 4)
	must(t)(s.EnqueueXferAll(b, ToSink))
	mustEnqueueC(t, s, "scale", []int64{3}, []Operand{b.All(InOut)})
	must(t)(s.EnqueueXferAll(b, ToSource))
	// Destroy drains in-flight work, then refuses new enqueues.
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if f[0] != 6 {
		t.Fatalf("destroy did not drain: f[0] = %v", f[0])
	}
	if _, err := s.EnqueueMarker(); err != ErrBadStream {
		t.Fatalf("enqueue after destroy err = %v, want ErrBadStream", err)
	}
	if err := s.Destroy(); err != nil {
		t.Fatalf("second destroy err = %v", err)
	}
	// Other streams keep working.
	s2, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.EnqueueMarker(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMidGraphDoesNotWedgeRuntime(t *testing.T) {
	// A failing kernel must not deadlock its successors or the
	// runtime: downstream actions still complete (with the data in
	// whatever state the failure left it), and the error is
	// reported.
	rt := realRuntime(t, 1)
	registerTestKernels(rt)
	b, _, _ := rt.AllocFloat64("v", 8)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 4)
	must(t)(s.EnqueueXferAll(b, ToSink))
	bad := mustEnqueueC(t, s, "boom", nil, []Operand{b.All(InOut)})
	after := mustEnqueueC(t, s, "scale", []int64{2}, []Operand{b.All(InOut)})
	rt.ThreadSynchronize()
	if bad.Err() == nil {
		t.Fatal("failing kernel reported no error")
	}
	if !after.Completed() {
		t.Fatal("successor never completed after upstream failure")
	}
	if rt.Err() == nil {
		t.Fatal("runtime did not record the first error")
	}
}
