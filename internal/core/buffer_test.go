package core

import (
	"testing"
	"testing/quick"

	"hstreams/internal/platform"
)

func simRuntime(t *testing.T, cards int) *Runtime {
	t.Helper()
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(cards), Mode: ModeSim})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	return rt
}

func realRuntime(t *testing.T, cards int) *Runtime {
	t.Helper()
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(cards), Mode: ModeReal})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	return rt
}

func TestOperandOverlap(t *testing.T) {
	rt := simRuntime(t, 0)
	b, err := rt.Alloc1D("b", 1000)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := rt.Alloc1D("c", 1000)
	cases := []struct {
		a, b Operand
		want bool
	}{
		{b.Range(0, 100, In), b.Range(50, 100, In), true},
		{b.Range(0, 100, In), b.Range(100, 100, In), false}, // touching, no overlap
		{b.Range(0, 100, In), c.Range(0, 100, In), false},   // different buffers
		{b.All(In), b.Range(999, 1, In), true},
		{b.Range(10, 0, In), b.Range(0, 100, In), false}, // empty range
	}
	for i, cse := range cases {
		if got := cse.a.overlaps(cse.b); got != cse.want {
			t.Errorf("case %d: overlaps = %v, want %v", i, got, cse.want)
		}
		if got := cse.b.overlaps(cse.a); got != cse.want {
			t.Errorf("case %d: overlaps not symmetric", i)
		}
	}
}

func TestOperandHazard(t *testing.T) {
	rt := simRuntime(t, 0)
	b, _ := rt.Alloc1D("b", 1000)
	r := b.Range(0, 100, In)
	w := b.Range(50, 100, Out)
	rw := b.Range(0, 100, InOut)
	r2 := b.Range(0, 100, In)
	if r.hazardWith(r2) {
		t.Error("read-read must not be a hazard")
	}
	if !r.hazardWith(w) || !w.hazardWith(r) {
		t.Error("RAW/WAR must be hazards")
	}
	if !w.hazardWith(w) {
		t.Error("WAW must be a hazard")
	}
	if !rw.hazardWith(r) {
		t.Error("InOut vs read must be a hazard")
	}
	far := b.Range(500, 10, Out)
	if r.hazardWith(far) {
		t.Error("disjoint ranges must not be hazards")
	}
}

func TestProxyResolve(t *testing.T) {
	rt := simRuntime(t, 0)
	a, _ := rt.Alloc1D("a", 100)
	b, _ := rt.Alloc1D("b", 200)
	if a.ProxyBase() == b.ProxyBase() {
		t.Fatal("buffers share a proxy base")
	}
	got, off, err := rt.Resolve(b.ProxyBase()+40, 10)
	if err != nil || got != b || off != 40 {
		t.Fatalf("Resolve = %v, %d, %v", got, off, err)
	}
	if _, _, err := rt.Resolve(b.ProxyBase()+199, 10); err == nil {
		t.Fatal("Resolve accepted a range crossing the buffer end")
	}
	if _, _, err := rt.Resolve(1<<60, 1); err == nil {
		t.Fatal("Resolve accepted an unmapped address")
	}
}

func TestProxyAddressesDisjoint(t *testing.T) {
	rt := simRuntime(t, 0)
	f := func(sizes []uint16) bool {
		type iv struct{ lo, hi uint64 }
		var ivs []iv
		for _, s := range sizes {
			size := int64(s%4096) + 1
			b, err := rt.Alloc1D("p", size)
			if err != nil {
				return false
			}
			ivs = append(ivs, iv{b.ProxyBase(), b.ProxyBase() + uint64(size)})
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocValidation(t *testing.T) {
	rt := simRuntime(t, 0)
	if _, err := rt.Alloc1D("bad", 0); err != ErrBadBufferSize {
		t.Fatalf("zero size err = %v", err)
	}
	if _, err := rt.Alloc1D("bad", -5); err != ErrBadBufferSize {
		t.Fatalf("negative size err = %v", err)
	}
}

func TestSimBuffersHaveNoBacking(t *testing.T) {
	rt := simRuntime(t, 1)
	// Paper-scale allocation must not touch real memory.
	b, err := rt.Alloc1D("huge", 30000*30000*8)
	if err != nil {
		t.Fatal(err)
	}
	if b.HostBytes() != nil || b.HostFloat64s() != nil {
		t.Fatal("Sim-mode buffer has backing memory")
	}
}

func TestRealBufferInstances(t *testing.T) {
	rt := realRuntime(t, 1)
	b, f, err := rt.AllocFloat64("v", 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 16 || b.Size() != 128 {
		t.Fatalf("len = %d size = %d", len(f), b.Size())
	}
	f[3] = 7.5
	if b.HostFloat64s()[3] != 7.5 {
		t.Fatal("host view does not alias host instance")
	}
	host := rt.Host()
	card := rt.Card(0)
	if &b.instanceBytes(host)[0] != &b.host[0] {
		t.Fatal("host instance must alias source")
	}
	if &b.instanceBytes(card)[0] == &b.host[0] {
		t.Fatal("card instance must be distinct storage")
	}
	if len(b.instanceBytes(card)) != 128 {
		t.Fatalf("card instance len = %d", len(b.instanceBytes(card)))
	}
}

func TestFloatRangeOperand(t *testing.T) {
	rt := simRuntime(t, 0)
	b, _ := rt.Alloc1D("m", 800)
	o := b.FloatRange(10, 5, Out)
	if o.Off != 80 || o.Len != 40 || o.Acc != Out {
		t.Fatalf("FloatRange = %+v", o)
	}
	if !o.valid() {
		t.Fatal("in-range operand invalid")
	}
	if b.FloatRange(95, 10, In).valid() {
		t.Fatal("out-of-range operand valid")
	}
}

func TestAccessStrings(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Fatal("access names")
	}
	if Access(9).String() == "" {
		t.Fatal("unknown access empty")
	}
	if In.writes() || !Out.writes() || !InOut.writes() {
		t.Fatal("writes() wrong")
	}
}
