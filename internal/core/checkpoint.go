package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// CheckpointVersion is the current checkpoint file format version.
// DecodeCheckpoint rejects files written by a different version, so a
// format change can never be silently misread as an empty or mangled
// DAG.
const CheckpointVersion = 1

// Checkpoint/replay errors.
var (
	// ErrCheckpointVersion marks a checkpoint whose version field does
	// not match CheckpointVersion.
	ErrCheckpointVersion = errors.New("core: checkpoint version mismatch")
	// ErrCheckpointEvicted marks a run whose spans were partially
	// overwritten in the flight-recorder ring (or whose runtime
	// geometry aged out of the process registry) — the DAG cannot be
	// reconstructed completely, and a partial checkpoint would replay
	// as a different schedule.
	ErrCheckpointEvicted = errors.New("core: run incomplete in flight recorder")
	// ErrReplayDiverged marks a replay whose executed DAG differs from
	// the checkpointed one — an edge present on one side only, or a
	// mismatched edge kind.
	ErrReplayDiverged = errors.New("core: replayed DAG diverged from checkpoint")
	// ErrCheckpointInvalid marks a structurally broken checkpoint
	// (stream or dependence indices out of range).
	ErrCheckpointInvalid = errors.New("core: invalid checkpoint")
)

// CkptStream records one stream's sink binding so replay can recreate
// the identical stream topology.
type CkptStream struct {
	// Name is the runtime-assigned stream name ("<domain>.s<id>");
	// replay asserts the recreated stream gets the same one.
	Name string `json:"name"`
	// Domain is the sink domain's discovery index (0 = host).
	Domain int `json:"domain"`
	// FirstCore and NCores are the sink core range.
	FirstCore int `json:"first_core"`
	NCores    int `json:"n_cores"`
}

// CkptDep is one recorded dependence edge: the predecessor's index in
// Checkpoint.Actions and the edge kind ("fifo", "sync", "event").
type CkptDep struct {
	Pred int    `json:"pred"`
	Why  string `json:"why"`
}

// CkptAction is one checkpointed action: everything replay needs to
// re-enqueue it with identical Sim timing and the exact dependence
// edges the original scheduler discovered.
type CkptAction struct {
	// Kind is "compute", "xfer_to_sink", "xfer_to_src" or "sync".
	Kind string `json:"kind"`
	// Stream indexes Checkpoint.Streams.
	Stream int `json:"stream"`
	// Label is the trace label (kernel name, transfer description).
	Label string `json:"label,omitempty"`
	// Bytes is the transfer payload size (transfers only).
	Bytes int64 `json:"bytes,omitempty"`
	// Cost is the platform cost descriptor the action was enqueued
	// with; it fully determines the Sim-mode duration.
	Cost platform.Cost `json:"cost"`
	// Deps are the recorded causal in-edges.
	Deps []CkptDep `json:"deps,omitempty"`
}

// Checkpoint is a completed run's serialized DAG: the machine, the
// stream topology, and every action with its dependence edges, in
// enqueue order. Encode/DecodeCheckpoint round-trip it through a
// versioned JSON file, and Replay re-executes it in Sim mode asserting
// the rebuilt DAG is edge-for-edge identical.
type Checkpoint struct {
	// Version is the file format version (CheckpointVersion).
	Version int `json:"version"`
	// Mode labels the execution mode of the original run ("sim" or
	// "real") — informational; replay always runs in Sim mode.
	Mode string `json:"mode"`
	// Run is the original runtime's process-unique id.
	Run uint64 `json:"run"`
	// Machine is the platform the run executed on.
	Machine *platform.Machine `json:"machine"`
	// SourceOverhead is the original Config.SourceOverhead.
	SourceOverhead time.Duration `json:"source_overhead_nanos"`
	// Streams is the stream topology in creation order.
	Streams []CkptStream `json:"streams"`
	// Actions is the executed DAG in enqueue (id) order; action i had
	// id i+1 in the original run.
	Actions []CkptAction `json:"actions"`
}

// Action kind tokens used in checkpoint files (stable, unlike
// ActKind.String's arrow glyphs).
const (
	ckptKindCompute    = "compute"
	ckptKindXferToSink = "xfer_to_sink"
	ckptKindXferToSrc  = "xfer_to_src"
	ckptKindSync       = "sync"
)

// runGeometry is the per-runtime configuration the flight recorder
// does not carry: spans name streams and domains but not core ranges,
// machines or enqueue overheads. Recorded at Init/StreamCreateOn into
// a process-wide registry so a checkpoint can be cut from the flight
// recorder after the runtime is gone (hsbench checkpoints after its
// figures have Fini'd their runtimes).
type runGeometry struct {
	machine        *platform.Machine
	mode           Mode
	sourceOverhead time.Duration
	streams        []CkptStream
}

var (
	geomMu    sync.Mutex
	geomByRun = map[uint64]*runGeometry{}
)

// geomCap bounds the geometry registry; harnesses that create many
// runtimes (benchmarks loop over hundreds) must not leak machines.
// Eviction drops the lowest run id — checkpoints are cut from recent
// runs.
const geomCap = 256

// recordRunGeom registers a new runtime's geometry. Called by Init.
func recordRunGeom(rt *Runtime) {
	geomMu.Lock()
	defer geomMu.Unlock()
	if len(geomByRun) >= geomCap {
		lowest := uint64(0)
		first := true
		for id := range geomByRun {
			if first || id < lowest {
				lowest, first = id, false
			}
		}
		delete(geomByRun, lowest)
	}
	geomByRun[rt.runID] = &runGeometry{
		machine:        rt.machine,
		mode:           rt.cfg.Mode,
		sourceOverhead: rt.cfg.SourceOverhead,
	}
}

// recordStreamGeom appends one stream's binding to its runtime's
// geometry. Called by StreamCreateOn in creation order, which matches
// the stream id.
func recordStreamGeom(rt *Runtime, s *Stream) {
	geomMu.Lock()
	defer geomMu.Unlock()
	g, ok := geomByRun[rt.runID]
	if !ok {
		return // evicted; CheckpointRun will report it
	}
	g.streams = append(g.streams, CkptStream{
		Name:      s.name,
		Domain:    s.domain.index,
		FirstCore: s.firstCore,
		NCores:    s.nCores,
	})
}

// CheckpointRun cuts a checkpoint for one completed run from a flight
// recorder. The run must be fully retained: if the ring overwrote any
// of its spans, or the runtime's geometry aged out of the process
// registry, it returns ErrCheckpointEvicted — a partial DAG would
// replay as a different schedule.
func CheckpointRun(flight *trace.FlightRecorder, run uint64) (*Checkpoint, error) {
	spans := trace.FilterRun(flight.Snapshot(), run)
	if len(spans) == 0 {
		return nil, fmt.Errorf("%w: run %d has no spans", ErrCheckpointEvicted, run)
	}
	geomMu.Lock()
	g, ok := geomByRun[run]
	geomMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: run %d geometry unknown", ErrCheckpointEvicted, run)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	// Action ids are assigned 1..n in enqueue order; a gap or offset
	// means the ring evicted part of the run.
	for i := range spans {
		if spans[i].ID != uint64(i+1) {
			return nil, fmt.Errorf("%w: run %d spans %d..%d retained (want 1..%d)",
				ErrCheckpointEvicted, run, spans[0].ID, spans[len(spans)-1].ID, spans[len(spans)-1].ID)
		}
	}
	streamIdx := make(map[string]int, len(g.streams))
	for i, cs := range g.streams {
		streamIdx[cs.Name] = i
	}
	c := &Checkpoint{
		Version:        CheckpointVersion,
		Mode:           g.mode.String(),
		Run:            run,
		Machine:        g.machine,
		SourceOverhead: g.sourceOverhead,
		Streams:        g.streams,
		Actions:        make([]CkptAction, 0, len(spans)),
	}
	for i := range spans {
		sp := &spans[i]
		si, okS := streamIdx[sp.Stream]
		if !okS {
			return nil, fmt.Errorf("%w: run %d span %d names unknown stream %q",
				ErrCheckpointEvicted, run, sp.ID, sp.Stream)
		}
		ca := CkptAction{
			Stream: si,
			Label:  sp.Label,
			Bytes:  sp.Bytes,
			Cost: platform.Cost{
				Kernel: platform.Kernel(sp.CostKernel),
				Flops:  sp.Flops,
				N:      sp.CostN,
				Bytes:  sp.CostBytes,
				Extra:  sp.CostExtra,
			},
		}
		switch sp.Kind {
		case trace.Compute:
			ca.Kind = ckptKindCompute
		case trace.Sync:
			ca.Kind = ckptKindSync
		case trace.Transfer:
			if sp.Src == sp.Domain && sp.Src != "" {
				ca.Kind = ckptKindXferToSrc
			} else {
				// Card to-sink transfers record Dst == domain;
				// host-as-target transfers record no direction at all,
				// and cost the same either way, so to-sink is a
				// cost-neutral default for them.
				ca.Kind = ckptKindXferToSink
			}
		}
		for _, d := range sp.Deps {
			ca.Deps = append(ca.Deps, CkptDep{Pred: int(d.ID) - 1, Why: d.Why.String()})
		}
		c.Actions = append(c.Actions, ca)
	}
	return c, nil
}

// Checkpoint cuts a checkpoint of this runtime's latest completed DAG
// from its flight recorder. Call after the work has drained
// (ThreadSynchronize/Fini); with causal tracing disabled there is
// nothing to checkpoint.
func (rt *Runtime) Checkpoint() (*Checkpoint, error) {
	if rt.flight == nil {
		return nil, fmt.Errorf("%w: causal tracing disabled", ErrCheckpointEvicted)
	}
	return CheckpointRun(rt.flight, rt.runID)
}

// Encode writes the checkpoint as indented JSON.
func (c *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// DecodeCheckpoint reads a checkpoint, rejecting version mismatches
// and structurally invalid DAGs (out-of-range stream or dependence
// indices, forward or self dependences).
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d",
			ErrCheckpointVersion, c.Version, CheckpointVersion)
	}
	if c.Machine == nil || c.Machine.Host == nil {
		return nil, fmt.Errorf("%w: no machine", ErrCheckpointInvalid)
	}
	nd := len(c.Machine.Domains())
	for i, cs := range c.Streams {
		if cs.Domain < 0 || cs.Domain >= nd {
			return nil, fmt.Errorf("%w: stream %d on domain %d of %d", ErrCheckpointInvalid, i, cs.Domain, nd)
		}
	}
	for i, ca := range c.Actions {
		if ca.Stream < 0 || ca.Stream >= len(c.Streams) {
			return nil, fmt.Errorf("%w: action %d in stream %d of %d", ErrCheckpointInvalid, i, ca.Stream, len(c.Streams))
		}
		for _, d := range ca.Deps {
			if d.Pred < 0 || d.Pred >= i {
				return nil, fmt.Errorf("%w: action %d depends on %d", ErrCheckpointInvalid, i, d.Pred)
			}
		}
	}
	return &c, nil
}

// ReplayResult is what a successful replay produced.
type ReplayResult struct {
	// Actions is the number of actions re-executed.
	Actions int
	// Makespan is the replayed schedule's Sim makespan.
	Makespan time.Duration
	// Report is the critical-path analysis of the replayed DAG.
	Report *trace.CritReport
	// Spans is the replayed DAG, ordered by action id.
	Spans []trace.Span
}

// Replay re-executes the checkpointed DAG in a fresh Sim runtime with
// a private registry and flight recorder, then asserts the executed
// DAG is edge-for-edge identical to the checkpoint (same predecessor
// set with the same edge kinds per action), returning
// ErrReplayDiverged otherwise. Because the dependence edges are taken
// from the checkpoint rather than rediscovered, replay is exact even
// for DAGs whose operand-level inputs (buffers, offsets) were not
// recorded — the schedule geometry and the cost model fully determine
// Sim timing.
func (c *Checkpoint) Replay() (*ReplayResult, error) {
	rt, err := Init(Config{
		Machine:        c.Machine,
		Mode:           ModeSim,
		SourceOverhead: c.SourceOverhead,
		Metrics:        metrics.New(),
		Flight:         trace.NewFlight(len(c.Actions) + 1),
	})
	if err != nil {
		return nil, err
	}
	defer rt.Fini()
	domains := rt.Domains()
	streams := make([]*Stream, len(c.Streams))
	for i, cs := range c.Streams {
		s, errS := rt.StreamCreate(domains[cs.Domain], cs.FirstCore, cs.NCores)
		if errS != nil {
			return nil, fmt.Errorf("core: replay stream %d: %w", i, errS)
		}
		if s.name != cs.Name {
			return nil, fmt.Errorf("%w: recreated stream %d named %q, checkpoint says %q",
				ErrReplayDiverged, i, s.name, cs.Name)
		}
		streams[i] = s
	}
	actions := make([]*Action, len(c.Actions))
	for i, ca := range c.Actions {
		var kind ActKind
		switch ca.Kind {
		case ckptKindCompute:
			kind = ActCompute
		case ckptKindXferToSink:
			kind = ActXferToSink
		case ckptKindXferToSrc:
			kind = ActXferToSrc
		case ckptKindSync:
			kind = ActSync
		default:
			return nil, fmt.Errorf("%w: action %d has kind %q", ErrCheckpointInvalid, i, ca.Kind)
		}
		deps := make([]*Action, 0, len(ca.Deps))
		whys := make([]trace.DepKind, 0, len(ca.Deps))
		for _, d := range ca.Deps {
			deps = append(deps, actions[d.Pred])
			whys = append(whys, parseDepKind(d.Why))
		}
		a, errA := streams[ca.Stream].enqueueReplay(kind, ca.Label, ca.Bytes, ca.Cost, deps, whys)
		if errA != nil {
			return nil, fmt.Errorf("core: replay action %d: %w", i, errA)
		}
		actions[i] = a
	}
	rt.ThreadSynchronize()
	if errR := rt.Err(); errR != nil {
		return nil, fmt.Errorf("core: replay execution: %w", errR)
	}
	spans := trace.FilterRun(rt.flight.Snapshot(), rt.runID)
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	if len(spans) != len(c.Actions) {
		return nil, fmt.Errorf("%w: replayed %d spans for %d actions",
			ErrReplayDiverged, len(spans), len(c.Actions))
	}
	for i := range spans {
		if err := sameEdges(c.Actions[i].Deps, spans[i].Deps); err != nil {
			return nil, fmt.Errorf("%w: action %d: %v", ErrReplayDiverged, i, err)
		}
	}
	rep := trace.Analyze(spans)
	return &ReplayResult{
		Actions:  len(spans),
		Makespan: rep.Makespan,
		Report:   rep,
		Spans:    spans,
	}, nil
}

// parseDepKind maps a checkpoint edge-kind token back to trace.DepKind.
func parseDepKind(s string) trace.DepKind {
	switch s {
	case trace.DepSync.String():
		return trace.DepSync
	case trace.DepEvent.String():
		return trace.DepEvent
	default:
		return trace.DepFIFO
	}
}

// sameEdges compares a checkpointed edge set against a replayed one as
// sets of (predecessor, kind) pairs, reporting the first discrepancy.
func sameEdges(want []CkptDep, got []trace.Dep) error {
	type edge struct {
		pred int
		why  string
	}
	w := make(map[edge]int, len(want))
	for _, d := range want {
		w[edge{d.Pred, d.Why}]++
	}
	for _, d := range got {
		e := edge{int(d.ID) - 1, d.Why.String()}
		if w[e] == 0 {
			return fmt.Errorf("extra edge from %d (%s)", e.pred, e.why)
		}
		w[e]--
	}
	for e, n := range w {
		if n > 0 {
			return fmt.Errorf("missing edge from %d (%s)", e.pred, e.why)
		}
	}
	return nil
}
