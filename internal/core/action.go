package core

import (
	"fmt"
	"time"

	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// ActKind classifies an action.
type ActKind int

const (
	// ActCompute is a kernel invocation at the stream's sink.
	ActCompute ActKind = iota
	// ActXferToSink moves operand bytes from the source instance to
	// the sink instance.
	ActXferToSink
	// ActXferToSrc moves operand bytes from the sink instance back to
	// the source instance.
	ActXferToSrc
	// ActSync is a synchronization marker: it orders against every
	// earlier action in its stream and every later one.
	ActSync
)

func (k ActKind) String() string {
	switch k {
	case ActCompute:
		return "compute"
	case ActXferToSink:
		return "xfer→sink"
	case ActXferToSrc:
		return "xfer→src"
	case ActSync:
		return "sync"
	default:
		return fmt.Sprintf("ActKind(%d)", int(k))
	}
}

// Action is one enqueued unit of work. A completed action doubles as
// an event: it can be waited on by the host (Runtime.EventWait) or by
// other streams (Stream.EnqueueEventWait).
type Action struct {
	id     uint64
	kind   ActKind
	stream *Stream
	label  string

	// Compute payload.
	kernel   string
	kernelID int64
	kernelFn Kernel
	args     []int64
	cost     platform.Cost
	// Operands (compute: user-declared; transfers: the moved range).
	ops []Operand
	// Transfer payload.
	bytes int64

	// Scheduling state, guarded by rt.mu.
	npend int
	succs []*Action
	state actState

	// deps records the causal in-edges for the flight recorder
	// (why this action waited); written at enqueue under rt.mu,
	// read at finish. Nil when causal tracing is off. depbuf backs
	// the common few-edge case so recording deps usually allocates
	// nothing; append spills to the heap past its capacity.
	deps   []trace.Dep
	depbuf [8]trace.Dep
	// span is the flight-recorder entry, embedded here so recording a
	// completed action allocates nothing; finish fills it and stores
	// its address in the ring.
	span trace.Span

	// ready is the earliest virtual start (Sim mode): the source
	// thread's enqueue completion time.
	ready time.Duration

	// Lifecycle timestamps on the runtime clock, feeding the metrics
	// layer: tEnqueue when the action entered its stream, tReady when
	// its last dependence resolved (== tEnqueue if none were pending).
	tEnqueue time.Duration
	tReady   time.Duration

	// Results.
	done       chan struct{}
	err        error
	start, end time.Duration
}

type actState int

const (
	statePending actState = iota
	stateLaunched
	stateDone
)

// ID returns the action's runtime-unique id.
func (a *Action) ID() uint64 { return a.id }

// Kind returns the action's kind.
func (a *Action) Kind() ActKind { return a.kind }

// Stream returns the stream the action was enqueued into.
func (a *Action) Stream() *Stream { return a.stream }

// Done returns a channel closed when the action completes.
func (a *Action) Done() <-chan struct{} { return a.done }

// Completed reports whether the action has finished.
func (a *Action) Completed() bool {
	select {
	case <-a.done:
		return true
	default:
		return false
	}
}

// Err returns the action's error; valid after completion.
func (a *Action) Err() error { return a.err }

// Wait blocks the host until the action completes and returns its
// error. In Sim mode it pumps the virtual clock.
func (a *Action) Wait() error {
	a.stream.rt.exec.waitAction(a)
	return a.err
}

// Times returns the executed interval on the runtime clock; valid
// after completion.
func (a *Action) Times() (start, end time.Duration) { return a.start, a.end }

// enqueue computes dependences under the FIFO-semantic rule and hands
// ready actions to the executor. extraDeps carry cross-stream event
// waits.
func (rt *Runtime) enqueue(a *Action, extraDeps []*Action) (*Action, error) {
	for _, o := range a.ops {
		if !o.valid() {
			return nil, ErrBadOperand
		}
		if o.Buf.rt != rt {
			return nil, ErrWrongRuntime
		}
	}
	s := a.stream
	rt.mu.Lock()
	if rt.finalized {
		rt.mu.Unlock()
		return nil, ErrFinalized
	}
	if s.destroyed {
		rt.mu.Unlock()
		return nil, ErrBadStream
	}
	rt.nextID++
	a.id = rt.nextID
	a.done = make(chan struct{})

	// Sim-mode source thread accounting: each enqueue call costs
	// SourceOverhead on the host thread. (The host clock advances on
	// waits, not with the engine, which may be pumped ahead.)
	if rt.cfg.Mode == ModeSim {
		se := rt.exec.(*simExec)
		se.hostTime += rt.cfg.SourceOverhead
		a.ready = se.hostTime
		a.tEnqueue = se.hostTime
	} else {
		a.tEnqueue = rt.exec.now()
	}

	// Dependences: program order within the stream, restricted to
	// hazardous operand overlap; sync actions order against
	// everything (paper §II: actions are free to execute and complete
	// out of order as long as the FIFO semantic is not violated).
	addDep := func(b *Action, why trace.DepKind) {
		if b.state == stateDone || b == a {
			return
		}
		for _, existing := range b.succs {
			if existing == a {
				return
			}
		}
		b.succs = append(b.succs, a)
		a.npend++
		if rt.flight != nil {
			if a.deps == nil {
				a.deps = a.depbuf[:0]
			}
			a.deps = append(a.deps, trace.Dep{ID: b.id, Why: why})
		}
	}
	for _, b := range s.inflight {
		if a.kind == ActSync || b.kind == ActSync {
			addDep(b, trace.DepSync)
			continue
		}
		if hazard(a, b) {
			addDep(b, trace.DepFIFO)
		}
	}
	for _, d := range extraDeps {
		if d.stream.rt != rt {
			rt.mu.Unlock()
			return nil, ErrWrongRuntime
		}
		addDep(d, trace.DepEvent)
	}
	s.inflight = append(s.inflight, a)
	depth := len(s.inflight)
	rt.outstanding++
	hadDeps := a.npend > 0
	// Hold one extra pending token until the OnEnqueue hook has fired:
	// without it a predecessor finishing on another goroutine could
	// launch this action — and notify OnReady/OnLaunch — before its
	// OnEnqueue, breaking the per-action hook ordering contract.
	a.npend++
	rt.mu.Unlock()

	k := metricKind(a.kind)
	s.met.enq[k].Inc()
	s.met.depth.Set(int64(depth))
	s.met.depthPeak.SetMax(int64(depth))
	rt.notifyEnqueue(a)

	rt.mu.Lock()
	a.npend--
	launch := a.npend == 0 && a.state == statePending
	if launch {
		a.state = stateLaunched
		switch {
		case !hadDeps:
			a.tReady = a.tEnqueue
		case rt.cfg.Mode == ModeSim:
			a.tReady = a.ready
		default:
			a.tReady = rt.exec.now()
		}
	}
	rt.mu.Unlock()

	if launch {
		rt.notifyReadyLaunch(a)
		rt.exec.launch(a)
	}
	if se, ok := rt.exec.(*simExec); ok {
		se.maybeDrain(s)
	}
	return a, nil
}

// hazard reports whether two actions' operand sets conflict.
func hazard(a, b *Action) bool {
	for _, oa := range a.ops {
		for _, ob := range b.ops {
			if oa.hazardWith(ob) {
				return true
			}
		}
	}
	return false
}

// finish completes an action: records the trace, retires it from its
// stream, and launches any successors whose last dependence this was.
// Executors call it exactly once per action.
func (rt *Runtime) finish(a *Action, err error) {
	rt.mu.Lock()
	a.err = err
	a.state = stateDone
	s := a.stream
	for i, x := range s.inflight {
		if x == a {
			s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
			break
		}
	}
	depth := len(s.inflight)
	var ready []*Action
	for _, succ := range a.succs {
		// Successors may start no earlier than this completion; the
		// Sim executor reads the propagated ready time rather than
		// the engine clock, so the clock can be pumped ahead safely.
		if succ.ready < a.end {
			succ.ready = a.end
		}
		succ.npend--
		if succ.npend == 0 && succ.state == statePending {
			succ.state = stateLaunched
			if rt.cfg.Mode == ModeSim {
				succ.tReady = succ.ready
			} else {
				succ.tReady = rt.exec.now()
			}
			ready = append(ready, succ)
		}
	}
	rt.outstanding--
	// Retired actions may be pinned for a long time by the flight
	// recorder (the ring stores &a.span); drop the execution payload so
	// a pinned action does not keep successors, operands, and kernel
	// closures reachable.
	a.succs = nil
	a.ops = nil
	a.kernelFn = nil
	a.args = nil
	rt.mu.Unlock()

	rt.setErr(err)
	rt.observeFinish(a, err, depth)
	kind := trace.Compute
	switch a.kind {
	case ActXferToSink, ActXferToSrc:
		kind = trace.Transfer
	case ActSync:
		kind = trace.Sync
	}
	rt.rec.Add(trace.Record{
		ID:     a.id,
		Kind:   kind,
		Stream: s.name,
		Domain: s.domain.spec.Name,
		Label:  a.label,
		Start:  a.start,
		End:    a.end,
		Bytes:  a.bytes,
		Flops:  a.cost.Flops,
	})
	if rt.flight != nil {
		sp := &a.span
		sp.ID = a.id
		sp.Run = rt.runID
		sp.Kind = kind
		sp.Stream = s.name
		sp.Domain = s.domain.spec.Name
		sp.Label = a.label
		sp.Bytes = a.bytes
		sp.Flops = a.cost.Flops
		sp.Err = err != nil
		sp.Enqueue = a.tEnqueue
		sp.Ready = a.tReady
		sp.Launch = a.start
		sp.Finish = a.end
		sp.Deps = a.deps
		// Host-as-target transfers alias instances and move nothing,
		// so only card-domain transfers name a link direction.
		if !s.domain.IsHost() {
			host := rt.domains[0].spec.Name
			switch a.kind {
			case ActXferToSink:
				sp.Src, sp.Dst = host, sp.Domain
			case ActXferToSrc:
				sp.Src, sp.Dst = sp.Domain, host
			}
		}
		rt.flight.Record(sp)
	}
	close(a.done)
	rt.notifyFinish(a)
	for _, r := range ready {
		rt.notifyReadyLaunch(r)
		rt.exec.launch(r)
	}
}
