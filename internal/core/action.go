package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// ActKind classifies an action.
type ActKind int

const (
	// ActCompute is a kernel invocation at the stream's sink.
	ActCompute ActKind = iota
	// ActXferToSink moves operand bytes from the source instance to
	// the sink instance.
	ActXferToSink
	// ActXferToSrc moves operand bytes from the sink instance back to
	// the source instance.
	ActXferToSrc
	// ActSync is a synchronization marker: it orders against every
	// earlier action in its stream and every later one.
	ActSync
)

// String labels the action kind for traces and error text.
func (k ActKind) String() string {
	switch k {
	case ActCompute:
		return "compute"
	case ActXferToSink:
		return "xfer→sink"
	case ActXferToSrc:
		return "xfer→src"
	case ActSync:
		return "sync"
	default:
		return fmt.Sprintf("ActKind(%d)", int(k))
	}
}

// Action is one enqueued unit of work. A completed action doubles as
// an event: it can be waited on by the host (Runtime.EventWait) or by
// other streams (Stream.EnqueueEventWait).
type Action struct {
	id     uint64
	kind   ActKind
	stream *Stream
	label  string

	// Compute payload.
	kernel   string
	kernelID int64
	kernelFn Kernel
	args     []int64
	cost     platform.Cost
	// Operands (compute: user-declared; transfers: the moved range).
	ops []Operand
	// Transfer payload.
	bytes int64

	// Scheduling state. succs, lastSucc and slot are guarded by the
	// owning stream's lock (for succs/lastSucc that is the lock of
	// *this* action's stream — successors are registered while holding
	// the predecessor's stream lock). npend and state are atomic: a
	// predecessor in another stream decrements npend without taking
	// this stream's lock, and exactly one decrement-to-zero launches.
	npend    atomic.Int64
	succs    []*Action
	lastSucc uint64 // id of the newest successor; O(1) dedup stamp
	slot     int    // index in stream.inflight; O(1) swap retirement
	state    atomic.Int32

	// deps records the causal in-edges for the flight recorder
	// (why this action waited); written at enqueue by the enqueuing
	// goroutine, read at finish (ordered by the launch handoff). Nil
	// when causal tracing is off. depbuf backs the common few-edge
	// case so recording deps usually allocates nothing; append spills
	// to the heap past its capacity.
	deps   []trace.Dep
	depbuf [8]trace.Dep
	// span is the flight-recorder entry, embedded here so recording a
	// completed action allocates nothing; finish fills it and stores
	// its address in the ring.
	span trace.Span

	// ready is the earliest virtual start (Sim mode): the source
	// thread's enqueue completion time.
	ready time.Duration

	// Lifecycle timestamps on the runtime clock, feeding the metrics
	// layer: tEnqueue when the action entered its stream, tReady when
	// its last dependence resolved (== tEnqueue if none were pending).
	tEnqueue time.Duration
	tReady   time.Duration

	// Results. fin flips after err and the timestamps are in place;
	// doneCh is allocated lazily by the first waiter, so the hot path
	// (most actions are never waited on individually) allocates no
	// channel at all — see Done for the fin/doneCh ordering dance.
	fin      atomic.Bool
	doneCh   atomic.Pointer[chan struct{}]
	doneOnce sync.Once
	err      error
	start    time.Duration
	end      time.Duration

	// Resilience bookkeeping (exec_real.go / resilience.go), written
	// only by the executor goroutine running the action and read at
	// finish on that same goroutine — no atomics needed. started
	// guards a.start so retries and re-routes never restamp it. The
	// reporting counters live behind the res pointer, allocated on the
	// first resilience event: fault-free finishes (the overwhelmingly
	// common case, and the only case Sim mode ever sees) then pay one
	// nil check instead of copying four always-zero fields — measured
	// at ~1.5pp of the <5% tracing budget on the tier-1 matmul.
	started bool
	res     *resNote

	// Replay mode (checkpoint.go): the dependence set is prescribed by
	// a checkpoint instead of discovered from operands, so enqueue
	// skips the operand scan and barrier bookkeeping, and replayWhy
	// supplies the recorded edge kind for each extraDeps entry.
	replay    bool
	replayWhy []trace.DepKind
}

// resNote is an action's resilience report, allocated lazily on the
// first retry/deadline/re-route event (resilience is Real-mode only
// and faults are rare, so most actions never carry one). finish
// copies it into the span when present.
type resNote struct {
	retries     int
	retryWait   time.Duration
	deadlineHit bool
	rerouted    bool
	// exhausted marks an action that failed after consuming its full
	// retry budget; finish turns it into an EvRetriesExhausted
	// lifecycle event (events.go) so journal emission stays off the
	// attempt path.
	exhausted bool
}

// resNote returns the action's resilience report, allocating it on
// first use. Called only from the executor goroutine running the
// action, like every other access to the resilience fields.
func (a *Action) resNote() *resNote {
	if a.res == nil {
		a.res = &resNote{}
	}
	return a.res
}

type actState = int32

const (
	statePending actState = iota
	stateLaunched
	stateDone
)

// completed reports the scheduler-internal done state; unlike the
// public Completed it is meant for use under the stream lock that
// finish holds while storing stateDone, so index pruning and addDep
// see a consistent value.
func (a *Action) completed() bool { return a.state.Load() == stateDone }

// ID returns the action's runtime-unique id.
func (a *Action) ID() uint64 { return a.id }

// Kind returns the action's kind.
func (a *Action) Kind() ActKind { return a.kind }

// Stream returns the stream the action was enqueued into.
func (a *Action) Stream() *Stream { return a.stream }

// closedDone is the shared already-closed channel handed to waiters
// that arrive after completion without a channel ever being registered.
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Done returns a channel closed when the action completes. The channel
// is allocated on first call — enqueueing an action no longer pays for
// a channel nobody waits on. Publication races with finish: both sides
// run the close under doneOnce, and the fin/doneCh access order (finish
// stores fin then loads doneCh; Done publishes doneCh then loads fin)
// guarantees at least one side closes a channel registered either way.
func (a *Action) Done() <-chan struct{} {
	if p := a.doneCh.Load(); p != nil {
		return *p
	}
	if a.fin.Load() {
		return closedDone
	}
	ch := make(chan struct{})
	if !a.doneCh.CompareAndSwap(nil, &ch) {
		return *a.doneCh.Load()
	}
	if a.fin.Load() {
		a.doneOnce.Do(func() { close(ch) })
	}
	return ch
}

// Completed reports whether the action has finished.
func (a *Action) Completed() bool { return a.fin.Load() }

// Err returns the action's error; valid after completion.
func (a *Action) Err() error { return a.err }

// Wait blocks the host until the action completes and returns its
// error. In Sim mode it pumps the virtual clock.
func (a *Action) Wait() error {
	a.stream.rt.exec.waitAction(a)
	return a.err
}

// Times returns the executed interval on the runtime clock; valid
// after completion.
func (a *Action) Times() (start, end time.Duration) { return a.start, a.end }

// enqueue computes dependences under the FIFO-semantic rule and hands
// ready actions to the executor. extraDeps carry cross-stream event
// waits.
//
// Dependence discovery queries the stream's operand-interval index
// (depindex.go) instead of scanning the inflight window, and the only
// locks taken are the enqueuing stream's — plus, briefly, the stream
// lock of each explicit cross-stream dependence — so enqueues on
// different streams never contend. At most one stream lock is held at
// any moment, which rules out lock-order deadlocks by construction.
func (rt *Runtime) enqueue(a *Action, extraDeps []*Action) (*Action, error) {
	for _, o := range a.ops {
		if !o.valid() {
			return nil, ErrBadOperand
		}
		if o.Buf.rt != rt {
			return nil, ErrWrongRuntime
		}
	}
	for _, d := range extraDeps {
		if d.stream.rt != rt {
			return nil, ErrWrongRuntime
		}
	}
	if rt.finalized.Load() {
		return nil, ErrFinalized
	}
	// Retain each operand's buffer before checking its lifecycle
	// state: a concurrent Free either sees the reference and defers
	// reclamation to our release, or has already left the live state
	// and the enqueue fails here (see Buf.retain).
	for i, o := range a.ops {
		if !o.Buf.retain() {
			releaseOps(a.ops[:i+1])
			return nil, fmt.Errorf("%w: %q", ErrBufferFreed, o.Buf.name)
		}
	}
	s := a.stream
	a.id = rt.nextID.Add(1)
	// Hold one pending token until the OnEnqueue hook has fired:
	// without it a predecessor finishing on another goroutine could
	// launch this action — and notify OnReady/OnLaunch — before its
	// OnEnqueue, breaking the per-action hook ordering contract.
	a.npend.Store(1)

	// Sim-mode source thread accounting: each enqueue call costs
	// SourceOverhead on the host thread. (The host clock advances on
	// waits, not with the engine, which may be pumped ahead.)
	if rt.cfg.Mode == ModeSim {
		se := rt.exec.(*simExec)
		se.mu.Lock()
		se.hostTime += rt.cfg.SourceOverhead
		a.ready = se.hostTime
		a.tEnqueue = se.hostTime
		se.mu.Unlock()
	} else {
		a.tEnqueue = rt.exec.now()
	}

	// addDep links a behind predecessor b. Must run while holding b's
	// stream lock; tolerates duplicates (the lastSucc stamp replaces
	// the seed's linear succs scan) and completed predecessors.
	nDeps := 0
	capture := rt.flight != nil
	addDep := func(b *Action, why trace.DepKind) {
		if b == a || b.completed() || b.lastSucc == a.id {
			return
		}
		b.lastSucc = a.id
		b.succs = append(b.succs, a)
		a.npend.Add(1)
		nDeps++
		if capture {
			if a.deps == nil {
				a.deps = a.depbuf[:0]
			}
			a.deps = append(a.deps, trace.Dep{ID: b.id, Why: why})
		}
	}
	fifoDep := func(b *Action) { addDep(b, trace.DepFIFO) }

	s.mu.Lock()
	for {
		if s.destroyed {
			s.mu.Unlock()
			releaseOps(a.ops)
			return nil, ErrBadStream
		}
		// Bounded-queue admission: the check runs under s.mu, so the
		// append below can never push len(inflight) past the bound —
		// the depth-peak gauge is capped by construction.
		if s.maxDepth <= 0 || len(s.inflight) < s.maxDepth {
			break
		}
		if s.policy == QueueShed {
			depth := len(s.inflight)
			s.mu.Unlock()
			s.met.shed.Inc()
			releaseOps(a.ops)
			return nil, fmt.Errorf("%w: %s at depth %d", ErrQueueFull, s.name, depth)
		}
		// QueueBlock: wait for any inflight member to retire, then
		// re-evaluate. The wait pumps the virtual clock in Sim mode,
		// so the source thread's time advances across the stall and
		// the action's earliest start moves with it.
		head := s.inflight[0]
		s.mu.Unlock()
		s.met.blocked.Inc()
		rt.exec.waitAction(head)
		if rt.cfg.Mode == ModeSim {
			se := rt.exec.(*simExec)
			se.mu.Lock()
			if a.ready < se.hostTime {
				a.ready = se.hostTime
				a.tEnqueue = se.hostTime
			}
			se.mu.Unlock()
		}
		s.mu.Lock()
	}
	// Dependences: program order within the stream, restricted to
	// hazardous operand overlap; sync actions order against
	// everything (paper §II: actions are free to execute and complete
	// out of order as long as the FIFO semantic is not violated).
	if a.replay {
		// Replay: the checkpoint prescribes the full edge set via
		// extraDeps; discovery and barrier bookkeeping would invent
		// edges the original run never had.
	} else if a.kind == ActSync {
		for _, b := range s.inflight {
			addDep(b, trace.DepSync)
		}
		// The barrier dominates everything before it: later actions
		// depend on it alone, and the epoch bump lazily invalidates
		// every operand interval (depindex.go).
		s.barrier = a
		s.epoch++
	} else {
		if bar := s.barrier; bar != nil {
			addDep(bar, trace.DepSync)
		}
		for _, o := range a.ops {
			s.depScan(a, o, fifoDep)
		}
	}
	a.slot = len(s.inflight)
	s.inflight = append(s.inflight, a)
	s.mu.Unlock()

	for i, d := range extraDeps {
		why := trace.DepEvent
		if a.replayWhy != nil && i < len(a.replayWhy) {
			why = a.replayWhy[i]
		}
		ds := d.stream
		ds.mu.Lock()
		addDep(d, why)
		ds.mu.Unlock()
	}

	rt.outstanding.Add(1)
	depth := s.ndepth.Add(1)
	k := metricKind(a.kind)
	s.met.enq[k].Inc()
	s.met.depth.Add(1)
	s.met.depthPeak.SetMax(depth)
	rt.notifyEnqueue(a)

	// Release the hook-ordering token; the decrement that lands on
	// zero — here or in a predecessor's finish — launches, exactly
	// once.
	if a.npend.Add(-1) == 0 {
		a.state.Store(stateLaunched)
		switch {
		case nDeps == 0:
			a.tReady = a.tEnqueue
		case rt.cfg.Mode == ModeSim:
			a.tReady = a.ready
		default:
			a.tReady = rt.exec.now()
		}
		rt.notifyReadyLaunch(a)
		rt.exec.launch(a)
	}
	// Replay must not pump completions mid-enqueue: a predecessor
	// finishing before its successor enqueues would drop the recorded
	// edge (addDep skips completed predecessors), breaking the
	// edge-for-edge identity the replay asserts.
	if se, ok := rt.exec.(*simExec); ok && !a.replay {
		se.maybeDrain(s)
	}
	return a, nil
}

// finish completes an action: records the trace, retires it from its
// stream in O(1) by swapping the last inflight entry into its slot,
// and launches any successors whose last dependence this was.
// Executors call it exactly once per action.
func (rt *Runtime) finish(a *Action, err error) {
	s := a.stream
	s.mu.Lock()
	a.err = err
	a.state.Store(stateDone)
	last := len(s.inflight) - 1
	i := a.slot
	moved := s.inflight[last]
	s.inflight[i] = moved
	moved.slot = i
	s.inflight[last] = nil
	s.inflight = s.inflight[:last]
	if s.barrier == a {
		s.barrier = nil
	}
	// Interval-index entries owned by a stay behind; queries prune
	// them lazily now that completed() reports done (depindex.go).
	succs := a.succs
	// Retired actions may be pinned for a long time by the flight
	// recorder (the ring stores &a.span); drop the execution payload so
	// a pinned action does not keep successors, operands, and kernel
	// closures reachable. ops are released below, outside the lock —
	// the release that reclaims a free-pending buffer takes stream
	// locks itself.
	ops := a.ops
	a.succs = nil
	a.ops = nil
	a.kernelFn = nil
	a.args = nil
	s.mu.Unlock()
	releaseOps(ops)

	rt.outstanding.Add(-1)
	s.ndepth.Add(-1)
	s.met.depth.Add(-1)
	s.met.retired.Inc()

	sim := rt.cfg.Mode == ModeSim
	var ready []*Action
	for _, succ := range succs {
		// Successors may start no earlier than this completion; the
		// Sim executor reads the propagated ready time rather than
		// the engine clock, so the clock can be pumped ahead safely.
		// (ready is only touched in Sim mode, where everything runs
		// on the single host goroutine.)
		if sim && succ.ready < a.end {
			succ.ready = a.end
		}
		if succ.npend.Add(-1) == 0 {
			succ.state.Store(stateLaunched)
			if sim {
				succ.tReady = succ.ready
			} else {
				succ.tReady = rt.exec.now()
			}
			ready = append(ready, succ)
		}
	}

	rt.setErr(err)
	rt.observeFinish(a, err)
	kind := trace.Compute
	switch a.kind {
	case ActXferToSink, ActXferToSrc:
		kind = trace.Transfer
	case ActSync:
		kind = trace.Sync
	}
	rt.rec.Add(trace.Record{
		ID:     a.id,
		Kind:   kind,
		Stream: s.name,
		Domain: s.domain.spec.Name,
		Label:  a.label,
		Start:  a.start,
		End:    a.end,
		Bytes:  a.bytes,
		Flops:  a.cost.Flops,
	})
	if rt.flight != nil {
		sp := &a.span
		sp.ID = a.id
		sp.Run = rt.runID
		sp.Kind = kind
		sp.Stream = s.name
		sp.Domain = s.domain.spec.Name
		sp.Label = a.label
		sp.Bytes = a.bytes
		sp.Flops = a.cost.Flops
		sp.CostKernel = int(a.cost.Kernel)
		sp.CostN = a.cost.N
		sp.CostBytes = a.cost.Bytes
		sp.CostExtra = a.cost.Extra
		sp.Err = err != nil
		sp.Enqueue = a.tEnqueue
		sp.Ready = a.tReady
		sp.Launch = a.start
		sp.Finish = a.end
		sp.Deps = a.deps
		if r := a.res; r != nil {
			sp.Retries = r.retries
			sp.RetryWait = r.retryWait
			sp.DeadlineHit = r.deadlineHit
			sp.Rerouted = r.rerouted
			rt.emitResEvents(a, r, err)
		}
		// Host-as-target transfers alias instances and move nothing,
		// so only card-domain transfers name a link direction.
		if !s.domain.IsHost() {
			host := rt.domains[0].spec.Name
			switch a.kind {
			case ActXferToSink:
				sp.Src, sp.Dst = host, sp.Domain
			case ActXferToSrc:
				sp.Src, sp.Dst = sp.Domain, host
			}
		}
		rt.flight.Record(sp)
	} else if r := a.res; r != nil {
		// Tracing disabled: lifecycle events still flow. Either branch
		// tests a.res exactly once, keeping the fault-free finish at a
		// single nil check (the lazily-allocated resNote contract the
		// telemetry overhead budget counts on).
		rt.emitResEvents(a, r, err)
	}
	a.fin.Store(true)
	if p := a.doneCh.Load(); p != nil {
		ch := *p
		a.doneOnce.Do(func() { close(ch) })
	}
	rt.notifyFinish(a)
	for _, r := range ready {
		rt.notifyReadyLaunch(r)
		rt.exec.launch(r)
	}
}
