package core

import (
	"time"

	"hstreams/internal/metrics"
)

// Metric kind labels collapse the two transfer directions into one
// "transfer" series (mirroring trace.Kind) so overlap analysis reads
// two families, not three.
const (
	mkCompute = iota
	mkTransfer
	mkSync
	mkCount
)

var metricKindNames = [mkCount]string{"compute", "transfer", "sync"}

func metricKind(k ActKind) int {
	switch k {
	case ActCompute:
		return mkCompute
	case ActXferToSink, ActXferToSrc:
		return mkTransfer
	default:
		return mkSync
	}
}

// coreMetrics holds the runtime's registered telemetry families.
// Per-stream handles are resolved once at StreamCreate (streamMetrics)
// so the per-action path is pure atomic adds.
type coreMetrics struct {
	enqueued      *metrics.CounterVec   // kind, domain
	actions       *metrics.CounterVec   // kind, domain
	errors        *metrics.Counter      // every action error
	errSuppressed *metrics.Counter      // errors after the first (not reported by Err)
	duration      *metrics.HistogramVec // kind, domain: launch→finish
	stall         *metrics.HistogramVec // kind, domain: enqueue→ready (dependency stall)
	sched         *metrics.HistogramVec // kind, domain: ready→launch (scheduler/resource latency)
	depth         *metrics.GaugeVec     // stream: current incomplete-action window
	depthPeak     *metrics.GaugeVec     // stream: high-water mark of the window
	retired       *metrics.CounterVec   // stream: completed actions — the watchdog's progress signal
	linkBytes     *metrics.CounterVec   // src, dst: payload bytes per link direction
	linkXfers     *metrics.CounterVec   // src, dst: transfers per link direction
	retries       *metrics.CounterVec   // domain: transient-failure re-attempts
	deadline      *metrics.CounterVec   // domain: actions that exceeded Config.Deadline
	rerouted      *metrics.CounterVec   // domain: actions re-routed to the host
	breakerTrip   *metrics.CounterVec   // domain: breaker trips (0 or 1 per domain per run)
	quarantined   *metrics.GaugeVec     // domain: 1 while quarantined
	domainStreams *metrics.GaugeVec     // domain: streams attached (telemetry capacity basis)
	linkOcc       *metrics.HistogramVec // src, dst: modeled/measured per-transfer link busy time

	// Buffer lifecycle (buffer.go). buffersLive returning to its
	// pre-Init baseline after Fini is the serving layer's leak check.
	buffersLive     *metrics.Gauge   // allocated-and-not-recycled buffers
	bufferBytes     *metrics.Gauge   // bytes held by live buffers
	buffersFreed    *metrics.Counter // Free calls accepted
	reclaimDeferred *metrics.Counter // frees deferred on in-flight references
	proxyRecycled   *metrics.Counter // proxy ranges returned to the allocator

	// Bounded-queue admission (Config.MaxQueueDepth).
	shed    *metrics.CounterVec // stream: enqueues refused with ErrQueueFull
	blocked *metrics.CounterVec // stream: enqueues that waited for queue space
}

func newCoreMetrics(reg *metrics.Registry) *coreMetrics {
	return &coreMetrics{
		enqueued:      reg.CounterVec("hstreams_actions_enqueued_total", "Actions accepted into streams by kind and sink domain.", "kind", "domain"),
		actions:       reg.CounterVec("hstreams_actions_total", "Actions completed by kind and sink domain.", "kind", "domain"),
		errors:        reg.Counter("hstreams_action_errors_total", "Actions that completed with an error."),
		errSuppressed: reg.Counter("hstreams_errors_suppressed_total", "Action errors observed after the first; Runtime.Err reports only the first."),
		duration:      reg.HistogramVec("hstreams_action_duration_seconds", "Action execution time (launch to finish) by kind and sink domain.", nil, "kind", "domain"),
		stall:         reg.HistogramVec("hstreams_dep_stall_seconds", "Time actions spent blocked on dependences (enqueue to ready).", nil, "kind", "domain"),
		sched:         reg.HistogramVec("hstreams_sched_latency_seconds", "Time from dependence resolution to execution start (resource contention).", nil, "kind", "domain"),
		depth:         reg.GaugeVec("hstreams_queue_depth", "Enqueued-but-incomplete actions per stream.", "stream"),
		depthPeak:     reg.GaugeVec("hstreams_queue_depth_peak", "High-water mark of hstreams_queue_depth per stream.", "stream"),
		retired:       reg.CounterVec("hstreams_stream_retired_total", "Actions retired (completed) per stream; the stall watchdog's progress signal.", "stream"),
		linkBytes:     reg.CounterVec("hstreams_link_bytes_total", "Payload bytes moved per link direction.", "src", "dst"),
		linkXfers:     reg.CounterVec("hstreams_link_transfers_total", "Transfers per link direction.", "src", "dst"),
		retries:       reg.CounterVec("hstreams_retries_total", "Re-attempts of transiently failing card actions, by domain.", "domain"),
		deadline:      reg.CounterVec("hstreams_deadline_exceeded_total", "Actions that exhausted their per-action deadline, by domain.", "domain"),
		rerouted:      reg.CounterVec("hstreams_rerouted_total", "Actions re-routed from a quarantined domain to the host, by original domain.", "domain"),
		breakerTrip:   reg.CounterVec("hstreams_breaker_trips_total", "Domain circuit-breaker trips.", "domain"),
		quarantined:   reg.GaugeVec("hstreams_domain_quarantined", "1 while the domain is quarantined by its breaker, else 0.", "domain"),
		domainStreams: reg.GaugeVec("hstreams_domain_streams", "Streams whose sink is bound to the domain; the telemetry layer's utilization-capacity basis.", "domain"),
		linkOcc:       reg.HistogramVec("hstreams_link_occupancy_seconds", "Per-transfer link busy time by direction; the windowed _sum delta over wall time is link occupancy.", nil, "src", "dst"),

		buffersLive:     reg.Gauge("hstreams_buffers_live", "Buffers allocated and not yet recycled; returns to baseline after Fini — the leak check."),
		bufferBytes:     reg.Gauge("hstreams_buffer_bytes_live", "Bytes held by live buffers."),
		buffersFreed:    reg.Counter("hstreams_buffers_freed_total", "Buf.Free calls accepted (first Free per buffer)."),
		reclaimDeferred: reg.Counter("hstreams_buffers_reclaim_deferred_total", "Frees whose reclamation was deferred until in-flight references retired."),
		proxyRecycled:   reg.Counter("hstreams_proxy_recycled_total", "Proxy address ranges returned to the recycling allocator."),

		shed:    reg.CounterVec("hstreams_queue_shed_total", "Enqueues refused with ErrQueueFull by a full bounded queue under QueueShed, per stream.", "stream"),
		blocked: reg.CounterVec("hstreams_enqueue_blocked_total", "Enqueues that waited for queue space under QueueBlock, per stream.", "stream"),
	}
}

// streamMetrics caches one stream's resolved series handles.
type streamMetrics struct {
	enq, done         [mkCount]*metrics.Counter
	dur, stall, sched [mkCount]*metrics.Histogram
	depth, depthPeak  *metrics.Gauge
	retired           *metrics.Counter
	shed, blocked     *metrics.Counter
}

func (cm *coreMetrics) forStream(name, domain string) *streamMetrics {
	sm := &streamMetrics{
		depth:     cm.depth.With(name),
		depthPeak: cm.depthPeak.With(name),
		retired:   cm.retired.With(name),
		shed:      cm.shed.With(name),
		blocked:   cm.blocked.With(name),
	}
	for k := 0; k < mkCount; k++ {
		kind := metricKindNames[k]
		sm.enq[k] = cm.enqueued.With(kind, domain)
		sm.done[k] = cm.actions.With(kind, domain)
		sm.dur[k] = cm.duration.With(kind, domain)
		sm.stall[k] = cm.stall.With(kind, domain)
		sm.sched[k] = cm.sched.With(kind, domain)
	}
	return sm
}

// Metrics returns the registry the runtime reports into — the one
// supplied via Config.Metrics, or metrics.Default(). It stays
// readable after Fini.
func (rt *Runtime) Metrics() *metrics.Registry { return rt.reg }

// AddObserver registers an action-lifecycle observer. See
// metrics.Observer for the hook contract; observers added mid-run
// only see transitions that happen after registration.
func (rt *Runtime) AddObserver(o metrics.Observer) {
	if o == nil {
		return
	}
	rt.mu.Lock()
	obs := append(append([]metrics.Observer(nil), rt.observers()...), o)
	rt.obs.Store(&obs)
	rt.mu.Unlock()
}

// observers returns the current observer slice (nil when none).
func (rt *Runtime) observers() []metrics.Observer {
	p := rt.obs.Load()
	if p == nil {
		return nil
	}
	return *p
}

// event builds the observer payload for an action transition.
func (a *Action) event(when time.Duration) metrics.Event {
	return metrics.Event{
		Action: a.id,
		Kind:   a.kind.String(),
		Stream: a.stream.name,
		Domain: a.stream.domain.spec.Name,
		Bytes:  a.bytes,
		Flops:  a.cost.Flops,
		When:   when,
		Err:    a.err,
	}
}

func (rt *Runtime) notifyEnqueue(a *Action) {
	for _, o := range rt.observers() {
		o.OnEnqueue(a.event(a.tEnqueue))
	}
}

func (rt *Runtime) notifyReadyLaunch(a *Action) {
	for _, o := range rt.observers() {
		ev := a.event(a.tReady)
		o.OnReady(ev)
		o.OnLaunch(ev)
	}
}

func (rt *Runtime) notifyFinish(a *Action) {
	for _, o := range rt.observers() {
		o.OnFinish(a.event(a.end))
	}
}

// observeFinish records a completed action's aggregates. Called
// without any lock held; every touched metric is atomic. The depth
// gauge is maintained by Add(±1) at enqueue/finish — the seed's
// Set(len(inflight)) after lock release let concurrent completions
// publish stale, regressing depths.
func (rt *Runtime) observeFinish(a *Action, err error) {
	sm := a.stream.met
	k := metricKind(a.kind)
	sm.done[k].Inc()
	if rt.flight != nil {
		// Exemplar capture: tag each histogram bucket with the span id
		// that last landed in it, stamped with the span's own finish
		// time so no extra clock read happens on the hot path. With
		// causal tracing off there are no spans to link, so the plain
		// observes keep that arm a clean overhead baseline.
		when := int64(a.end)
		sm.dur[k].ObserveEx(a.end-a.start, a.id, when)
		sm.stall[k].ObserveEx(a.tReady-a.tEnqueue, a.id, when)
		sm.sched[k].ObserveEx(a.start-a.tReady, a.id, when)
	} else {
		sm.dur[k].Observe(a.end - a.start)
		sm.stall[k].Observe(a.tReady - a.tEnqueue)
		sm.sched[k].Observe(a.start - a.tReady)
	}
	if err != nil {
		rt.mets.errors.Inc()
	}
}
