package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// TestFirstErrorPreserved is the regression test for Runtime.setErr:
// the first action error must survive later failures, later errors
// must count in hstreams_errors_suppressed_total, and every failure in
// hstreams_action_errors_total.
func TestFirstErrorPreserved(t *testing.T) {
	reg := metrics.New()
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(0), Mode: ModeReal, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	rt.RegisterKernel("boom1", func(ctx *KernelCtx) { panic("boom1") })
	rt.RegisterKernel("boom2", func(ctx *KernelCtx) { panic("boom2") })
	s, err := rt.StreamCreate(rt.Host(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("b", 64)
	if err != nil {
		t.Fatal(err)
	}
	// The InOut hazard on b serializes the two failures, so boom1
	// always completes (and fails) first.
	a1, err := s.EnqueueCompute("boom1", nil, []Operand{b.All(InOut)}, platform.Cost{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.EnqueueCompute("boom2", nil, []Operand{b.All(InOut)}, platform.Cost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Wait(); err == nil || !strings.Contains(err.Error(), "boom1") {
		t.Fatalf("a1.Wait() = %v, want boom1 panic", err)
	}
	if err := a2.Wait(); err == nil || !strings.Contains(err.Error(), "boom2") {
		t.Fatalf("a2.Wait() = %v, want boom2 panic", err)
	}
	if err := rt.Err(); err == nil || !strings.Contains(err.Error(), "boom1") {
		t.Fatalf("Err() = %v, want the first failure (boom1)", err)
	}
	if got := reg.Total("hstreams_action_errors_total"); got != 2 {
		t.Fatalf("errors_total = %v, want 2", got)
	}
	if got := reg.Total("hstreams_errors_suppressed_total"); got != 1 {
		t.Fatalf("errors_suppressed_total = %v, want 1", got)
	}
}

// orderObserver checks the Observer hook contract per action: events
// arrive as enqueue → ready → launch → finish, with non-decreasing
// timestamps, and no transition is skipped or repeated.
type orderObserver struct {
	mu    sync.Mutex
	phase map[uint64]int // last phase seen: 1 enqueue, 2 ready, 3 launch, 4 finish
	when  map[uint64]int64
	errs  []string
}

func newOrderObserver() *orderObserver {
	return &orderObserver{phase: map[uint64]int{}, when: map[uint64]int64{}}
}

func (o *orderObserver) on(ev metrics.Event, phase int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if got := o.phase[ev.Action]; got != phase-1 {
		o.errs = append(o.errs, fmt.Sprintf("action %d: phase %d after phase %d", ev.Action, phase, got))
	}
	if w := int64(ev.When); w < o.when[ev.Action] {
		o.errs = append(o.errs, fmt.Sprintf("action %d: phase %d time %d regressed below %d", ev.Action, phase, w, o.when[ev.Action]))
	} else {
		o.when[ev.Action] = w
	}
	o.phase[ev.Action] = phase
}

func (o *orderObserver) OnEnqueue(ev metrics.Event) { o.on(ev, 1) }
func (o *orderObserver) OnReady(ev metrics.Event)   { o.on(ev, 2) }
func (o *orderObserver) OnLaunch(ev metrics.Event)  { o.on(ev, 3) }
func (o *orderObserver) OnFinish(ev metrics.Event)  { o.on(ev, 4) }

// check asserts every started action finished and no ordering
// violation was recorded.
func (o *orderObserver) check(t *testing.T, wantActions int) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range o.errs {
		t.Error(e)
	}
	if len(o.phase) != wantActions {
		t.Errorf("observed %d actions, want %d", len(o.phase), wantActions)
	}
	for id, ph := range o.phase {
		if ph != 4 {
			t.Errorf("action %d stopped at phase %d, want 4 (finish)", id, ph)
		}
	}
}

// driveObserved runs a dependence-heavy workload over several streams
// of rt: per stream, transfer → chain of hazard-serialized computes →
// transfer, plus a cross-stream event wait.
func driveObserved(t *testing.T, rt *Runtime) int {
	t.Helper()
	const streams, chain = 3, 8
	var last *Action
	actions := 0
	for i := 0; i < streams; i++ {
		d := rt.Host()
		if rt.NumCards() > 0 {
			d = rt.Card(i % rt.NumCards())
		}
		s, err := rt.StreamCreate(d, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rt.Alloc1D(fmt.Sprintf("b%d", i), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.EnqueueXferAll(b, ToSink); err != nil {
			t.Fatal(err)
		}
		actions++
		for j := 0; j < chain; j++ {
			a, err := s.EnqueueCompute("step", nil, []Operand{b.All(InOut)},
				platform.Cost{Kernel: platform.KDGEMM, Flops: 1e6, N: 64})
			if err != nil {
				t.Fatal(err)
			}
			actions++
			last = a
		}
		if last != nil && i > 0 {
			if _, err := s.EnqueueEventWait(last); err != nil {
				t.Fatal(err)
			}
			actions++
		}
		if _, err := s.EnqueueXferAll(b, ToSource); err != nil {
			t.Fatal(err)
		}
		actions++
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	return actions
}

func TestObserverOrderingContractReal(t *testing.T) {
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(2), Mode: ModeReal, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	rt.RegisterKernel("step", func(ctx *KernelCtx) {
		for i := range ctx.Ops[0] {
			ctx.Ops[0][i]++
		}
	})
	obs := newOrderObserver()
	rt.AddObserver(obs)
	n := driveObserved(t, rt)
	obs.check(t, n)
}

func TestObserverOrderingContractSim(t *testing.T) {
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(2), Mode: ModeSim, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	obs := newOrderObserver()
	rt.AddObserver(obs)
	n := driveObserved(t, rt)
	obs.check(t, n)
}

// TestSpanCapture checks the flight-recorder integration: completed
// actions appear as spans with ordered phase timestamps and the causal
// edges the scheduler actually enforced.
func TestSpanCapture(t *testing.T) {
	flight := trace.NewFlight(256)
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(1), Mode: ModeSim, Metrics: metrics.New(), Flight: flight})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	s, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rt.StreamCreate(rt.Card(0), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	up, err := s.EnqueueXferAll(b, ToSink)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.EnqueueCompute("dgemm", nil, []Operand{b.All(InOut)},
		platform.Cost{Kernel: platform.KDGEMM, Flops: 1e9, N: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.EnqueueEventWait(c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueMarker(); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()

	spans := trace.FilterRun(flight.Snapshot(), rt.RunID())
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(spans))
	}
	byID := map[uint64]trace.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.Enqueue > sp.Ready || sp.Ready > sp.Launch || sp.Launch > sp.Finish {
			t.Fatalf("span %d phases out of order: %+v", sp.ID, sp)
		}
	}
	// The transfer names its link direction; the compute depends on it
	// via the operand hazard.
	upSpan := byID[up.ID()]
	if upSpan.Src != "HSW" || upSpan.Dst != "KNC0" {
		t.Fatalf("transfer span link = %s→%s, want HSW→KNC0", upSpan.Src, upSpan.Dst)
	}
	cSpan := byID[c.ID()]
	if len(cSpan.Deps) != 1 || cSpan.Deps[0].ID != up.ID() || cSpan.Deps[0].Why != trace.DepFIFO {
		t.Fatalf("compute deps = %+v, want one fifo edge from %d", cSpan.Deps, up.ID())
	}
	var sawEvent, sawSync bool
	for _, sp := range spans {
		for _, d := range sp.Deps {
			switch d.Why {
			case trace.DepEvent:
				sawEvent = true
			case trace.DepSync:
				sawSync = true
			}
		}
	}
	if !sawEvent || !sawSync {
		t.Fatalf("dep kinds: event=%v sync=%v, want both", sawEvent, sawSync)
	}
}

// TestDisableCausalTrace checks the ablation: no spans, no dep
// recording, and Flight() reports nil.
func TestDisableCausalTrace(t *testing.T) {
	flight := trace.NewFlight(256)
	rt, err := Init(Config{
		Machine: platform.HSWPlusKNC(1), Mode: ModeSim, Metrics: metrics.New(),
		Flight: flight, DisableCausalTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	if rt.Flight() != nil {
		t.Fatal("Flight() should be nil when tracing is disabled")
	}
	s, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("b", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, ToSink); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, platform.Cost{Flops: 1e6}); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
	if n := flight.Total(); n != 0 {
		t.Fatalf("flight recorded %d spans with tracing disabled", n)
	}
}

// TestLiveRuntimesRegistry checks Init/Fini registration.
func TestLiveRuntimesRegistry(t *testing.T) {
	before := len(LiveRuntimes())
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(0), Mode: ModeSim, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range LiveRuntimes() {
		if r == rt {
			found = true
		}
	}
	if !found {
		t.Fatal("initialized runtime missing from LiveRuntimes")
	}
	rt.Fini()
	if got := len(LiveRuntimes()); got != before {
		t.Fatalf("LiveRuntimes after Fini = %d, want %d", got, before)
	}
}

// TestStatusSnapshot checks the debug status API on a quiesced Sim
// runtime.
func TestStatusSnapshot(t *testing.T) {
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(1), Mode: ModeSim, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	s, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("b", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, ToSink); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
	st := rt.Status()
	if st.Run != rt.RunID() || st.Mode != "sim" {
		t.Fatalf("Status = %+v", st)
	}
	if len(st.Streams) != 1 || st.Streams[0].Name != s.Name() || st.Streams[0].Depth != 0 {
		t.Fatalf("Status.Streams = %+v", st.Streams)
	}
	if st.Outstanding != 0 {
		t.Fatalf("Outstanding = %d, want 0", st.Outstanding)
	}
}
