package core

import (
	"fmt"
	"sync"
	"time"

	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/timesim"
)

// simExec schedules the action graph on a virtual clock. Each stream
// sink is a serially-occupied compute slot; each direction of each
// card's PCIe link is a DMA resource. Durations come from the
// platform cost model, so paper-scale runs finish in milliseconds of
// wall time. Sim mode assumes a single host goroutine (all the
// harness drivers are sequential), which makes runs deterministic.
type simExec struct {
	rt  *Runtime
	eng *timesim.Engine
	// mu guards hostTime, which is also read by the debug server's
	// Status snapshot from arbitrary goroutines; the engine clock
	// stays single-goroutine and unlocked.
	mu       sync.Mutex
	hostTime time.Duration
	// links[i] holds the two DMA directions for domain i
	// (0: source→sink, 1: sink→source); nil for the host.
	links [][2]*timesim.Resource
	// linkMet[i] holds the per-direction byte/transfer counters and
	// occupancy histograms for domain i — Sim mode never touches the
	// fabric, so modeled traffic is accounted here under the same
	// metric families.
	linkMet [][2]struct {
		bytes, xfers *metrics.Counter
		occ          *metrics.Histogram
	}
}

func newSimExec(rt *Runtime) *simExec {
	se := &simExec{rt: rt, eng: timesim.NewEngine()}
	se.links = make([][2]*timesim.Resource, len(rt.domains))
	se.linkMet = make([][2]struct {
		bytes, xfers *metrics.Counter
		occ          *metrics.Histogram
	}, len(rt.domains))
	host := rt.domains[0].spec.Name
	for i := 1; i < len(rt.domains); i++ {
		name := rt.domains[i].spec.Name
		se.links[i] = [2]*timesim.Resource{
			timesim.NewResource(name + ".dma.toSink"),
			timesim.NewResource(name + ".dma.toSrc"),
		}
		se.linkMet[i][0].bytes = rt.mets.linkBytes.With(host, name)
		se.linkMet[i][0].xfers = rt.mets.linkXfers.With(host, name)
		se.linkMet[i][0].occ = rt.mets.linkOcc.With(host, name)
		se.linkMet[i][1].bytes = rt.mets.linkBytes.With(name, host)
		se.linkMet[i][1].xfers = rt.mets.linkXfers.With(name, host)
		se.linkMet[i][1].occ = rt.mets.linkOcc.With(name, host)
	}
	return se
}

func (se *simExec) launch(a *Action) {
	// a.ready carries the exact earliest start: the source thread's
	// enqueue time, raised by each completing dependence (see
	// Runtime.finish). It is deliberately independent of the engine
	// clock, which may have been pumped ahead.
	ready := a.ready
	s := a.stream
	var start, end time.Duration
	switch a.kind {
	case ActCompute:
		dur := platform.ComputeTime(s.domain.spec, s.nCores, a.cost)
		start, end = s.slot.Reserve(ready, dur)
	case ActXferToSink, ActXferToSrc:
		if s.domain.IsHost() {
			// Host-as-target: instances alias, transfer optimized away.
			start, end = ready, ready
		} else {
			dir := 0
			if a.kind == ActXferToSrc {
				dir = 1
			}
			dur := se.rt.machine.LinkFor(s.domain.index - 1).TransferTime(a.bytes)
			start, end = se.links[s.domain.index][dir].Reserve(ready, dur)
			se.linkMet[s.domain.index][dir].bytes.Add(a.bytes)
			se.linkMet[s.domain.index][dir].xfers.Inc()
			se.linkMet[s.domain.index][dir].occ.Observe(dur)
		}
	case ActSync:
		start, end = ready, ready
	}
	a.start, a.end = start, end
	se.eng.Post(end, func() { se.rt.finish(a, nil) })
}

// Inflight thresholds: when a stream's incomplete-action window grows
// past high, the executor pumps completions until it shrinks below
// low, keeping the per-enqueue dependence scan bounded for programs
// with hundreds of thousands of actions.
const (
	simInflightHigh = 4096
	simInflightLow  = 1024
)

// maybeDrain pumps the engine while stream s has a large incomplete
// window. Safe because start times come from propagated ready times,
// not the engine clock. The window size comes from the stream's
// atomic depth counter — the seed took the runtime lock on every
// pump iteration just to read len(inflight).
func (se *simExec) maybeDrain(s *Stream) {
	if s.ndepth.Load() < simInflightHigh {
		return
	}
	for s.ndepth.Load() > simInflightLow {
		if !se.eng.Step() {
			return
		}
	}
}

func (se *simExec) waitAction(a *Action) {
	if se.eng.RunUntil(a.Completed) {
		// The host blocked until the action completed; its thread
		// resumes no earlier than that.
		se.mu.Lock()
		if se.hostTime < a.end {
			se.hostTime = a.end
		}
		se.mu.Unlock()
		return
	}
	if !a.Completed() {
		panic(fmt.Sprintf("core: deadlock waiting for action %d (%s) in %s", a.id, a.kind, a.stream.name))
	}
}

func (se *simExec) now() time.Duration { return se.eng.Now() }

func (se *simExec) fini() { se.eng.Drain() }

// LinkBusy reports accumulated DMA busy time for a card domain
// direction (0: to sink, 1: to source); used by harness statistics.
func (se *simExec) LinkBusy(domainIndex, dir int) time.Duration {
	if se.links[domainIndex][dir] == nil {
		return 0
	}
	return se.links[domainIndex][dir].Busy()
}

// SimLinkBusy exposes Sim-mode DMA occupancy for harness statistics;
// it returns zero in Real mode.
func (rt *Runtime) SimLinkBusy(domainIndex, dir int) time.Duration {
	if se, ok := rt.exec.(*simExec); ok {
		return se.LinkBusy(domainIndex, dir)
	}
	return 0
}
