package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// Differential property test for the operand-interval dependence
// index: randomized multi-stream programs with overlapping, adjacent
// and disjoint operand ranges run through the real scheduler, and the
// captured dependence edges (trace.Dep kinds included) are compared
// against an independent per-byte last-writer/live-reader reference
// model — the retained naive scan, evaluated cell by cell rather than
// interval by interval, so the two implementations share no code.
//
// The index produces the transitive reduction of the seed's full
// hazard edge set, so equality is asserted at two levels:
//
//   - edge-exact against the reference model, which implements the
//     same reduced rule independently (per byte instead of per
//     interval), in runs where nothing completes during the enqueue
//     phase — Sim mode (the engine is only pumped during waits and
//     window drains, and programs stay below the drain threshold) and
//     Real mode with gate-blocked streams (every action roots at an
//     incomplete gate kernel, so the inflight window only grows);
//   - containment plus dynamic FIFO-semantic checks in free-running
//     Real mode with one concurrent source per stream, where
//     completions race enqueues and prune edges nondeterministically:
//     every captured edge must be legal under the full naive hazard
//     relation, and every naive-hazard pair must have executed in
//     order (pred.end ≤ succ.start on the executor clock).

// diffOp is one operand in generator coordinates (buffer index).
type diffOp struct {
	buf     int
	off, ln int64
	acc     Access
}

// diffAct is one program step.
type diffAct struct {
	stream int
	kind   ActKind
	dir    XferDir
	ops    []diffOp
	extra  []int // prog indices of explicit event deps
	gate   bool  // first act per stream; whole-range InOut on all bufs
}

// diffProg is a randomized multi-stream program.
type diffProg struct {
	nStreams int
	nBufs    int
	bufSize  int64
	acts     []diffAct
}

const diffQuantum = 8 // operand offsets/lengths land on multiples of this

// genDiffProg builds a random program: per stream a leading gate
// action, then a mix of computes (1–3 operands, random access modes),
// transfers, markers, event-waits and computes with explicit deps.
// Operand ranges are quantized so overlapping, exactly-adjacent and
// disjoint pairs all occur often. sameStreamExtras restricts explicit
// deps to the enqueuing stream (required when streams are driven by
// concurrent sources — a cross-stream handle may not exist yet).
func genDiffProg(r *rand.Rand, nStreams, perStream int, sameStreamExtras bool) *diffProg {
	p := &diffProg{nStreams: nStreams, nBufs: 2 * nStreams, bufSize: 64}
	nQ := int(p.bufSize / diffQuantum)
	for s := 0; s < nStreams; s++ {
		gate := diffAct{stream: s, kind: ActCompute, gate: true}
		for b := 0; b < p.nBufs; b++ {
			gate.ops = append(gate.ops, diffOp{buf: b, off: 0, ln: p.bufSize, acc: InOut})
		}
		p.acts = append(p.acts, gate)
	}
	randOp := func() diffOp {
		off := int64(r.Intn(nQ)) * diffQuantum
		ln := int64(1+r.Intn(int((p.bufSize-off)/diffQuantum))) * diffQuantum
		return diffOp{
			buf: r.Intn(p.nBufs),
			off: off,
			ln:  ln,
			acc: []Access{In, Out, InOut}[r.Intn(3)],
		}
	}
	pickExtras := func(i, s int) []int {
		var pool []int
		for j := 0; j < i; j++ {
			if !sameStreamExtras || p.acts[j].stream == s {
				pool = append(pool, j)
			}
		}
		if len(pool) == 0 {
			return nil
		}
		out := []int{pool[r.Intn(len(pool))]}
		if r.Intn(2) == 0 {
			out = append(out, pool[r.Intn(len(pool))]) // duplicates allowed
		}
		return out
	}
	for n := 0; n < nStreams*perStream; n++ {
		s := r.Intn(nStreams)
		i := len(p.acts)
		switch roll := r.Intn(100); {
		case roll < 70: // compute, sometimes with explicit deps
			a := diffAct{stream: s, kind: ActCompute, ops: []diffOp{randOp()}}
			for r.Intn(2) == 0 && len(a.ops) < 3 {
				a.ops = append(a.ops, randOp())
			}
			if roll < 7 {
				a.extra = pickExtras(i, s)
			}
			p.acts = append(p.acts, a)
		case roll < 85: // transfer
			op := randOp()
			dir := ToSink
			op.acc = Out
			if r.Intn(2) == 0 {
				dir, op.acc = ToSource, In
			}
			p.acts = append(p.acts, diffAct{stream: s, kind: ActXferToSink, dir: dir, ops: []diffOp{op}})
		case roll < 93: // marker
			p.acts = append(p.acts, diffAct{stream: s, kind: ActSync})
		default: // event-wait (marker if nothing to wait on yet)
			p.acts = append(p.acts, diffAct{stream: s, kind: ActSync, extra: pickExtras(i, s)})
		}
	}
	return p
}

// refEdges computes the expected reduced dependence-edge set of every
// program step, independently of the scheduler: per stream and buffer
// it tracks, byte by byte, the last writer and the readers since, and
// a barrier id for the newest sync. It assumes nothing completes while
// the program is enqueued.
func refEdges(p *diffProg) []map[int]trace.DepKind {
	type cells struct {
		lastW   []int
		readers []map[int]bool
	}
	barrier := make([]int, p.nStreams)
	all := make([][]int, p.nStreams)
	state := make([]map[int]*cells, p.nStreams)
	for s := range state {
		barrier[s] = -1
		state[s] = make(map[int]*cells)
	}
	cellsFor := func(s, buf int) *cells {
		c := state[s][buf]
		if c == nil {
			c = &cells{lastW: make([]int, p.bufSize), readers: make([]map[int]bool, p.bufSize)}
			for x := range c.lastW {
				c.lastW[x] = -1
			}
			state[s][buf] = c
		}
		return c
	}
	exp := make([]map[int]trace.DepKind, len(p.acts))
	for i, a := range p.acts {
		e := make(map[int]trace.DepKind)
		add := func(j int, why trace.DepKind) {
			if j != i && j >= 0 {
				if _, ok := e[j]; !ok {
					e[j] = why
				}
			}
		}
		s := a.stream
		if a.kind == ActSync {
			for _, j := range all[s] {
				add(j, trace.DepSync)
			}
			barrier[s] = i
			state[s] = make(map[int]*cells) // epoch bump: all intervals dominated
		} else {
			add(barrier[s], trace.DepSync)
			for _, o := range a.ops {
				c := cellsFor(s, o.buf)
				for x := o.off; x < o.off+o.ln; x++ {
					if o.acc.writes() {
						add(c.lastW[x], trace.DepFIFO)
						for j := range c.readers[x] {
							add(j, trace.DepFIFO)
						}
						c.lastW[x] = i
						c.readers[x] = nil
					} else {
						add(c.lastW[x], trace.DepFIFO)
						if c.readers[x] == nil {
							c.readers[x] = make(map[int]bool)
						}
						c.readers[x][i] = true
					}
				}
			}
		}
		for _, j := range a.extra {
			add(j, trace.DepEvent)
		}
		all[s] = append(all[s], i)
		exp[i] = e
	}
	return exp
}

// diffHarness materializes a program in a runtime and returns the
// enqueued actions, prog-index-aligned.
type diffHarness struct {
	rt      *Runtime
	streams []*Stream
	bufs    []*Buf
	actions []*Action
}

func newDiffHarness(t *testing.T, p *diffProg, mode Mode, gateFn Kernel) *diffHarness {
	t.Helper()
	rt, err := Init(Config{
		Machine: platform.HSWPlusKNC(0),
		Mode:    mode,
		Metrics: metrics.New(),
		Flight:  trace.NewFlight(1 << 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	rt.RegisterKernel("nop", func(*KernelCtx) {})
	rt.RegisterKernel("gate", gateFn)
	h := &diffHarness{rt: rt, actions: make([]*Action, len(p.acts))}
	for s := 0; s < p.nStreams; s++ {
		st, err := rt.StreamCreate(rt.Host(), 2*s, 2)
		if err != nil {
			t.Fatal(err)
		}
		h.streams = append(h.streams, st)
	}
	for b := 0; b < p.nBufs; b++ {
		buf, err := rt.Alloc1D(fmt.Sprintf("d%d", b), p.bufSize)
		if err != nil {
			t.Fatal(err)
		}
		h.bufs = append(h.bufs, buf)
	}
	return h
}

// enqueueOne enqueues program step i; extra-dep handles must already
// exist in h.actions.
func (h *diffHarness) enqueueOne(t *testing.T, p *diffProg, i int) {
	t.Helper()
	a := p.acts[i]
	var extras []*Action
	for _, j := range a.extra {
		extras = append(extras, h.actions[j])
	}
	st := h.streams[a.stream]
	var act *Action
	var err error
	switch {
	case a.kind == ActSync && len(extras) > 0:
		act, err = st.EnqueueEventWait(extras...)
	case a.kind == ActSync:
		act, err = st.EnqueueMarker()
	case a.kind == ActCompute:
		name := "nop"
		if a.gate {
			name = "gate"
		}
		ops := make([]Operand, len(a.ops))
		for k, o := range a.ops {
			ops[k] = Operand{Buf: h.bufs[o.buf], Off: o.off, Len: o.ln, Acc: o.acc}
		}
		act, err = st.EnqueueComputeDeps(name, nil, ops, platform.Cost{}, extras)
	default: // transfer
		o := a.ops[0]
		act, err = st.EnqueueXferDeps(h.bufs[o.buf], o.off, o.ln, a.dir, extras)
	}
	if err != nil {
		t.Fatalf("act %d: %v", i, err)
	}
	h.actions[i] = act
}

// capturedEdges maps each action's recorded trace deps back to prog
// indices.
func (h *diffHarness) capturedEdges(t *testing.T) []map[int]trace.DepKind {
	t.Helper()
	byID := make(map[uint64]int, len(h.actions))
	for i, a := range h.actions {
		byID[a.ID()] = i
	}
	out := make([]map[int]trace.DepKind, len(h.actions))
	for i, a := range h.actions {
		e := make(map[int]trace.DepKind)
		for _, d := range a.deps {
			j, ok := byID[d.ID]
			if !ok {
				t.Fatalf("act %d: dep on unknown action id %d", i, d.ID)
			}
			e[j] = d.Why
		}
		out[i] = e
	}
	return out
}

// compareExact fails on any difference between expected and captured
// edge sets, kinds included.
func compareExact(t *testing.T, p *diffProg, exp, got []map[int]trace.DepKind) {
	t.Helper()
	for i := range p.acts {
		for j, why := range exp[i] {
			gw, ok := got[i][j]
			if !ok {
				t.Errorf("act %d (%s s%d): missing dep on %d (%v)", i, p.acts[i].kind, p.acts[i].stream, j, why)
			} else if gw != why {
				t.Errorf("act %d: dep on %d has kind %v, want %v", i, j, gw, why)
			}
		}
		for j, why := range got[i] {
			if _, ok := exp[i][j]; !ok {
				t.Errorf("act %d (%s s%d): spurious dep on %d (%v)", i, p.acts[i].kind, p.acts[i].stream, j, why)
			}
		}
	}
}

// hazardDiff reports whether two program steps of one stream conflict
// under the full (unreduced) naive rule.
func hazardDiff(a, b diffAct) bool {
	if a.kind == ActSync || b.kind == ActSync {
		return true
	}
	for _, oa := range a.ops {
		for _, ob := range b.ops {
			if oa.buf == ob.buf && oa.ln > 0 && ob.ln > 0 &&
				oa.off < ob.off+ob.ln && ob.off < oa.off+oa.ln &&
				(oa.acc.writes() || ob.acc.writes()) {
				return true
			}
		}
	}
	return false
}

// checkFIFOSemantic asserts every naive-hazard pair (and every
// explicit event dep) executed in order on the executor clock — the
// dynamic form of the FIFO guarantee, independent of which edges the
// index chose to materialize.
func checkFIFOSemantic(t *testing.T, p *diffProg, acts []*Action) {
	t.Helper()
	for i := range p.acts {
		for j := 0; j < i; j++ {
			if p.acts[i].stream != p.acts[j].stream || !hazardDiff(p.acts[i], p.acts[j]) {
				continue
			}
			_, jEnd := acts[j].Times()
			iStart, _ := acts[i].Times()
			if jEnd > iStart {
				t.Errorf("FIFO violation: act %d (end %v) overlaps hazardous successor %d (start %v)",
					j, jEnd, i, iStart)
			}
		}
		for _, j := range p.acts[i].extra {
			_, jEnd := acts[j].Times()
			iStart, _ := acts[i].Times()
			if jEnd > iStart {
				t.Errorf("event-dep violation: act %d (end %v) after dependent %d start (%v)", j, jEnd, i, iStart)
			}
		}
	}
}

func TestDepIndexDifferentialSim(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := genDiffProg(rand.New(rand.NewSource(seed)), 4, 60, false)
			h := newDiffHarness(t, p, ModeSim, func(*KernelCtx) {})
			for i := range p.acts {
				h.enqueueOne(t, p, i)
			}
			// Nothing completed while enqueueing: the engine is pumped
			// only on waits and above-threshold drains.
			h.rt.ThreadSynchronize()
			if err := h.rt.Err(); err != nil {
				t.Fatal(err)
			}
			compareExact(t, p, refEdges(p), h.capturedEdges(t))
			checkFIFOSemantic(t, p, h.actions)
		})
	}
}

func TestDepIndexDifferentialRealGated(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := genDiffProg(rand.New(rand.NewSource(seed)), 4, 40, false)
			release := make(chan struct{})
			h := newDiffHarness(t, p, ModeReal, func(*KernelCtx) { <-release })
			for i := range p.acts {
				h.enqueueOne(t, p, i)
			}
			// Every stream's actions root at its gate, which is still
			// blocked: the inflight window only grew, so the captured
			// edges must match the no-completions reference exactly.
			close(release)
			h.rt.ThreadSynchronize()
			if err := h.rt.Err(); err != nil {
				t.Fatal(err)
			}
			compareExact(t, p, refEdges(p), h.capturedEdges(t))
			checkFIFOSemantic(t, p, h.actions)
		})
	}
}

func TestDepIndexDifferentialRealFree(t *testing.T) {
	for seed := int64(20); seed < 23; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := genDiffProg(rand.New(rand.NewSource(seed)), 4, 40, true)
			h := newDiffHarness(t, p, ModeReal, func(*KernelCtx) {})
			// One concurrent source per stream; completions race
			// enqueues, so edges to already-completed predecessors are
			// legitimately pruned and only containment is asserted.
			var wg sync.WaitGroup
			for s := 0; s < p.nStreams; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := range p.acts {
						if p.acts[i].stream == s {
							h.enqueueOne(t, p, i)
						}
					}
				}(s)
			}
			wg.Wait()
			h.rt.ThreadSynchronize()
			if err := h.rt.Err(); err != nil {
				t.Fatal(err)
			}
			// Per-stream enqueue positions, for the ordering check.
			pos := make([]int, len(p.acts))
			next := make([]int, p.nStreams)
			for i, a := range p.acts {
				pos[i] = next[a.stream]
				next[a.stream]++
			}
			got := h.capturedEdges(t)
			for i, edges := range got {
				for j, why := range edges {
					switch why {
					case trace.DepEvent:
						found := false
						for _, e := range p.acts[i].extra {
							found = found || e == j
						}
						if !found {
							t.Errorf("act %d: event dep on %d not among its explicit deps", i, j)
						}
					case trace.DepSync:
						if p.acts[i].stream != p.acts[j].stream {
							t.Errorf("act %d: sync dep on %d crosses streams", i, j)
						} else if pos[j] >= pos[i] {
							t.Errorf("act %d: sync dep on later action %d", i, j)
						} else if p.acts[i].kind != ActSync && p.acts[j].kind != ActSync {
							t.Errorf("act %d: sync dep on %d with no sync endpoint", i, j)
						}
					case trace.DepFIFO:
						if p.acts[i].stream != p.acts[j].stream {
							t.Errorf("act %d: FIFO dep on %d crosses streams", i, j)
						} else if pos[j] >= pos[i] {
							t.Errorf("act %d: FIFO dep on later action %d", i, j)
						} else if !hazardDiff(p.acts[i], p.acts[j]) {
							t.Errorf("act %d: FIFO dep on %d without operand hazard", i, j)
						}
					default:
						t.Errorf("act %d: unexpected dep kind %v on %d", i, j, why)
					}
				}
			}
			checkFIFOSemantic(t, p, h.actions)
		})
	}
}
