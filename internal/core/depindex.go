package core

// Operand-interval dependence index.
//
// The seed scheduler discovered dependences with an all-pairs scan:
// every enqueue compared the new action's operands against every
// operand of every incomplete action in the stream — O(window × ops²)
// under one global lock, which made the scheduler itself the serial
// bottleneck the paper's multi-stream scaling (Fig. 6/9) is supposed
// to avoid. The index replaces the scan with per-buffer interval
// bookkeeping, per stream (dependences only ever form within a
// stream; cross-stream edges are explicit events):
//
//   - w: the live last-writer intervals of the buffer — disjoint by
//     construction, because a new write carves away the overlapped
//     parts of older intervals.
//   - r: the live reader intervals since the last write of those
//     bytes; they may overlap each other (RAR is not a hazard).
//
// A write depends on (and carves away) every overlapping last-writer
// (WAW) and live-reader (WAR) interval; a read depends on every
// overlapping last-writer interval (RAW) and adds itself to r. This
// produces the transitive reduction of the seed's full hazard edge
// set: an edge the index omits (e.g. third writer → first writer) is
// always implied by the chain it keeps, so the FIFO semantic — and
// the critical path the flight recorder reconstructs from the
// recorded edges — are preserved exactly. The differential property
// test (depindex_test.go) checks the produced edge set against an
// independent per-cell last-writer/live-reader model.
//
// Sync actions never enter the index. A sync orders against every
// incomplete action, so enqueueing one bumps the stream's epoch
// counter: interval sets whose epoch is stale are reset lazily on
// next touch, because everything they describe is dominated by the
// barrier. Actions enqueued after a sync depend on it directly (and
// on nothing older) while it is incomplete.

// opIval is one live operand interval owned by an incomplete action.
type opIval struct {
	off, end int64
	act      *Action
}

// bufIvals is the per-(stream, buffer) interval set. Guarded by the
// stream's lock.
type bufIvals struct {
	epoch  uint64
	w      []opIval // last-writer intervals, mutually disjoint
	r      []opIval // live reader intervals since the last write
	rSweep int      // len(r) that triggers the next dead-node sweep
}

// indexFor returns the stream's interval set for b, resetting it if a
// sync barrier superseded its epoch. Caller holds s.mu.
func (s *Stream) indexFor(b *Buf) *bufIvals {
	iv := s.index[b]
	if iv == nil {
		iv = &bufIvals{epoch: s.epoch}
		s.index[b] = iv
		return iv
	}
	if iv.epoch != s.epoch {
		iv.epoch = s.epoch
		iv.w = iv.w[:0]
		iv.r = iv.r[:0]
		iv.rSweep = 0
	}
	return iv
}

// depScan registers the dependences of operand o of action a against
// the stream's index and inserts a's own interval. addDep must
// tolerate repeated calls with the same predecessor. Caller holds
// s.mu.
func (s *Stream) depScan(a *Action, o Operand, addDep func(*Action)) {
	if o.Len <= 0 {
		return // empty ranges touch nothing (Operand.overlaps)
	}
	iv := s.indexFor(o.Buf)
	lo, hi := o.Off, o.Off+o.Len
	if o.Acc.writes() {
		// WAW with overlapped last writers, WAR with overlapped live
		// readers; both are superseded for the overlapped bytes —
		// later accesses order against this write, and against the
		// carved-away remainder transitively.
		iv.w = carve(iv.w, lo, hi, addDep)
		iv.r = carve(iv.r, lo, hi, addDep)
		iv.w = append(iv.w, opIval{off: lo, end: hi, act: a})
		return
	}
	// RAW with every overlapped last writer; the writers stay (they
	// remain last writer for their bytes).
	for i := 0; i < len(iv.w); {
		n := &iv.w[i]
		if n.act.completed() {
			iv.w[i] = iv.w[len(iv.w)-1]
			iv.w = iv.w[:len(iv.w)-1]
			continue
		}
		if n.end > lo && n.off < hi {
			addDep(n.act)
		}
		i++
	}
	iv.r = append(iv.r, opIval{off: lo, end: hi, act: a})
	// Reader intervals are only removed when a write carves them, so
	// a read-heavy stream would otherwise grow r without bound; sweep
	// completed owners amortized-O(1) when the list doubles.
	if len(iv.r) >= iv.rSweep {
		live := iv.r[:0]
		for _, n := range iv.r {
			if !n.act.completed() {
				live = append(live, n)
			}
		}
		clearTail(iv.r, len(live))
		iv.r = live
		iv.rSweep = 2*len(live) + 16
	}
}

// carve visits every interval of list overlapping [lo, hi), reports
// its owner to dep, and removes the overlapped bytes — splitting
// intervals that stick out on both sides. Intervals whose owner has
// completed are dropped without a dep (completed predecessors impose
// no order). Returns the updated list.
func carve(list []opIval, lo, hi int64, dep func(*Action)) []opIval {
	for i := 0; i < len(list); {
		n := list[i]
		if n.act.completed() {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			continue
		}
		if n.end <= lo || n.off >= hi {
			i++
			continue
		}
		dep(n.act)
		left, right := n.off < lo, n.end > hi
		switch {
		case left && right:
			list[i].end = lo
			list = append(list, opIval{off: hi, end: n.end, act: n.act})
			i++
		case left:
			list[i].end = lo
			i++
		case right:
			list[i].off = hi
			i++
		default:
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
		}
	}
	return list
}

// clearTail zeroes list[n:] so swap-compaction does not pin retired
// actions through the backing array.
func clearTail(list []opIval, n int) {
	for i := n; i < len(list); i++ {
		list[i] = opIval{}
	}
}
