package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"hstreams/internal/coi"
	"hstreams/internal/floatbits"
)

// proxyAlign keeps distinct buffers on distinct cache-line-aligned
// proxy addresses.
const proxyAlign = 64

// Buffer lifecycle states. A buffer is allocated live, transitions to
// free-pending when the owner calls Free, and to recycled when its
// last in-flight reference retires (immediately, when there is none).
// Recycling releases the proxy range back to the allocator and drops
// every domain instance; the *Buf handle itself stays valid but
// rejects new operands with ErrBufferFreed.
const (
	bufLive int32 = iota
	bufFreePending
	bufRecycled
)

// Buf is an hStreams buffer: a range of the unified source proxy
// address space, instantiated in every domain. The host instance is
// the source of truth the source thread may touch directly; card
// instances live sink-side and are reached by transfers.
type Buf struct {
	rt    *Runtime
	name  string
	size  int64
	proxy uint64
	host  []byte        // source instance (nil in Sim mode)
	inst  []*coi.Buffer // per domain index; nil for host / Sim

	// refs counts operands of enqueued-but-incomplete actions.
	// enqueue retains per operand before checking state; finish (and
	// every enqueue failure path) releases. The retain-then-check /
	// check-refs-then-CAS ordering between enqueue and Free makes
	// use-after-free detection race-free: a concurrent Free either
	// observes the reference and defers reclamation to the release,
	// or has already left bufLive and the enqueue fails.
	refs atomic.Int64
	// state is one of bufLive / bufFreePending / bufRecycled.
	state atomic.Int32
}

// Alloc1D creates a buffer of size bytes, instantiated in all domains
// (hStreams_app_create_buf). In Sim mode no memory is allocated —
// paper-scale experiments would need tens of GB — and only the proxy
// bookkeeping exists.
func (rt *Runtime) Alloc1D(name string, size int64) (*Buf, error) {
	if size <= 0 {
		return nil, ErrBadBufferSize
	}
	if rt.finalized.Load() {
		return nil, ErrFinalized
	}
	b := &Buf{rt: rt, name: name, size: size, proxy: rt.proxy.Alloc(uint64(size))}
	switch rt.cfg.Mode {
	case ModeReal:
		b.host = make([]byte, size)
		b.inst = make([]*coi.Buffer, len(rt.domains))
		for i := 1; i < len(rt.domains); i++ {
			cb, err := rt.procs[i].CreateBuffer(int(size))
			if err != nil {
				for _, done := range b.inst {
					if done != nil {
						done.Destroy()
					}
				}
				rt.proxy.Free(b.proxy, uint64(size))
				return nil, fmt.Errorf("core: instantiating %q in %s: %w", name, rt.domains[i].spec.Name, err)
			}
			b.inst[i] = cb
		}
	case ModeSim:
		// Synchronous sink-side allocation blocks the source thread
		// for each card instantiation (the bottleneck §VII calls
		// out); AsyncAlloc overlaps it with other source work.
		if !rt.cfg.AsyncAlloc {
			rt.ChargeSource(time.Duration(rt.NumCards()) * coi.FreshAllocCost)
		}
	}
	rt.mu.Lock()
	rt.bufs = append(rt.bufs, b)
	rt.mu.Unlock()
	rt.mets.buffersLive.Add(1)
	rt.mets.bufferBytes.Add(size)
	return b, nil
}

// Free releases the buffer (hStreams_DeAlloc). The call is
// asynchronous with respect to in-flight work: when actions still
// reference the buffer, reclamation is deferred until the last one
// retires (the dependence index guarantees those actions see intact
// storage — see DESIGN.md §9.4); when none do, the proxy range is
// recycled and every domain instance is dropped immediately. Either
// way the handle is dead to new work: later operands on it fail with
// ErrBufferFreed, and a second Free returns ErrBufferFreed without
// effect.
func (b *Buf) Free() error {
	if !b.state.CompareAndSwap(bufLive, bufFreePending) {
		return fmt.Errorf("%w: %q already freed", ErrBufferFreed, b.name)
	}
	b.rt.mets.buffersFreed.Inc()
	if b.refs.Load() == 0 {
		b.tryReclaim()
	} else {
		b.rt.mets.reclaimDeferred.Inc()
	}
	return nil
}

// Freed reports whether Free has been called on the buffer.
func (b *Buf) Freed() bool { return b.state.Load() != bufLive }

// retain takes one in-flight reference and reports whether the buffer
// is still live. On false the caller must release and refuse the
// operand — retaining first is what closes the race with Free.
func (b *Buf) retain() bool {
	b.refs.Add(1)
	return b.state.Load() == bufLive
}

// release drops one in-flight reference; the release that leaves a
// free-pending buffer unreferenced performs the deferred reclamation.
func (b *Buf) release() {
	if b.refs.Add(-1) == 0 && b.state.Load() == bufFreePending {
		b.tryReclaim()
	}
}

// tryReclaim moves free-pending → recycled exactly once (concurrent
// callers race on the CAS; one wins) and releases the buffer's
// resources.
func (b *Buf) tryReclaim() {
	if !b.state.CompareAndSwap(bufFreePending, bufRecycled) {
		return
	}
	rt := b.rt
	rt.mu.Lock()
	for i, x := range rt.bufs {
		if x == b {
			last := len(rt.bufs) - 1
			rt.bufs[i] = rt.bufs[last]
			rt.bufs[last] = nil
			rt.bufs = rt.bufs[:last]
			break
		}
	}
	streams := append([]*Stream(nil), rt.streams...)
	rt.mu.Unlock()
	// Zero references means every interval in the per-stream indexes
	// belongs to a completed action, so the whole per-buffer entry can
	// go (one stream lock at a time, per the locking discipline).
	for _, s := range streams {
		s.mu.Lock()
		delete(s.index, b)
		s.mu.Unlock()
	}
	for _, cb := range b.inst {
		if cb != nil {
			cb.Destroy()
		}
	}
	b.inst = nil
	b.host = nil
	rt.proxy.Free(b.proxy, uint64(b.size))
	rt.mets.proxyRecycled.Inc()
	rt.mets.buffersLive.Add(-1)
	rt.mets.bufferBytes.Add(-b.size)
}

// releaseOps drops the in-flight references a failed or finished
// enqueue holds on its operand buffers. Call without any stream lock
// held — the release that triggers reclamation takes stream locks
// itself.
func releaseOps(ops []Operand) {
	for _, o := range ops {
		o.Buf.release()
	}
}

// AllocFloat64 creates a buffer holding n float64 elements and, in
// Real mode, returns the host instance viewed as a []float64.
func (rt *Runtime) AllocFloat64(name string, n int) (*Buf, []float64, error) {
	b, err := rt.Alloc1D(name, int64(n)*8)
	if err != nil {
		return nil, nil, err
	}
	if b.host == nil {
		return b, nil, nil
	}
	return b, floatbits.Float64s(b.host), nil
}

// Name returns the buffer's name.
func (b *Buf) Name() string { return b.name }

// Size returns the buffer's length in bytes.
func (b *Buf) Size() int64 { return b.size }

// ProxyBase returns the buffer's base address in the source proxy
// address space.
func (b *Buf) ProxyBase() uint64 { return b.proxy }

// HostBytes returns the host (source) instance, or nil in Sim mode.
func (b *Buf) HostBytes() []byte { return b.host }

// HostFloat64s returns the host instance viewed as float64s, or nil
// in Sim mode.
func (b *Buf) HostFloat64s() []float64 {
	if b.host == nil {
		return nil
	}
	return floatbits.Float64s(b.host)
}

// instanceBytes resolves the buffer's storage for a domain. Host-as-
// target streams alias the source instance — the aliasing that lets
// the runtime optimize host-stream transfers away (paper §V).
func (b *Buf) instanceBytes(d *Domain) []byte {
	if d.IsHost() || b.inst == nil || b.inst[d.index] == nil {
		return b.host
	}
	return b.inst[d.index].SinkBytes()
}

// Resolve translates a proxy address range to the owning buffer and
// offset, mirroring hStreams' proxy-address lookup.
func (rt *Runtime) Resolve(proxy uint64, n int64) (*Buf, int64, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, b := range rt.bufs {
		if proxy >= b.proxy && proxy+uint64(n) <= b.proxy+uint64(b.size) {
			return b, int64(proxy - b.proxy), nil
		}
	}
	return nil, 0, fmt.Errorf("core: proxy range [%#x,+%d) not in any buffer", proxy, n)
}

// Access declares how an action touches an operand.
type Access int

const (
	// In marks a read-only operand.
	In Access = iota
	// Out marks a write-only operand.
	Out
	// InOut marks a read-write operand.
	InOut
)

// String labels the access mode for diagnostics.
func (a Access) String() string {
	switch a {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// writes reports whether the access modifies the operand.
func (a Access) writes() bool { return a != In }

// Operand is a byte range of a buffer with a declared access mode —
// the basis of hStreams dependence analysis (paper §II).
type Operand struct {
	Buf *Buf
	Off int64
	Len int64
	Acc Access
}

// Range builds an operand over b[off:off+n].
func (b *Buf) Range(off, n int64, acc Access) Operand {
	return Operand{Buf: b, Off: off, Len: n, Acc: acc}
}

// All builds an operand covering the whole buffer.
func (b *Buf) All(acc Access) Operand { return Operand{Buf: b, Off: 0, Len: b.size, Acc: acc} }

// FloatRange builds an operand over elements [i, i+n) of a float64
// buffer.
func (b *Buf) FloatRange(i, n int, acc Access) Operand {
	return Operand{Buf: b, Off: int64(i) * 8, Len: int64(n) * 8, Acc: acc}
}

// valid reports whether the operand lies inside its buffer.
func (o Operand) valid() bool {
	return o.Buf != nil && o.Off >= 0 && o.Len >= 0 && o.Off+o.Len <= o.Buf.size
}

// overlaps reports whether two operands touch intersecting bytes.
// Empty ranges touch nothing.
func (o Operand) overlaps(p Operand) bool {
	return o.Buf == p.Buf && o.Len > 0 && p.Len > 0 &&
		o.Off < p.Off+p.Len && p.Off < o.Off+o.Len
}

// hazardWith reports whether ordering must be preserved between two
// operand accesses (RAW, WAR or WAW).
func (o Operand) hazardWith(p Operand) bool {
	return o.overlaps(p) && (o.Acc.writes() || p.Acc.writes())
}
