package core

// resilience.go is the scheduler half of the fault-tolerance layer
// (the injection half lives in internal/fault and its hooks in
// internal/fabric / internal/coi). Three mechanisms compose, all
// confined to Real-mode card actions — host actions have no fabric or
// sink process to fail:
//
//   - Retry: a transient failure (fault.IsTransient) is re-attempted
//     with exponential backoff and deterministic jitter, up to
//     RetryPolicy.Max times. A failed attempt has no side effects by
//     construction (injection happens before any bytes move or any
//     descriptor is sent), so re-attempting is always sound.
//   - Deadline: Config.Deadline bounds one action's total time across
//     attempts. It is checked at attempt boundaries — a DMA cannot be
//     aborted midflight, exactly like real PCIe — so a slow attempt
//     that finishes late but successfully is a success, and an
//     attempt that fails after the deadline passed reports
//     ErrDeadlineExceeded (a fatal error: the taxonomy never retries
//     it).
//   - Breaker + re-route: BreakerPolicy.Threshold consecutive
//     transient failures on one domain trip its breaker. The domain
//     is quarantined (one-way — a tripped domain stays out for the
//     runtime's lifetime), in-flight card actions drain, the
//     card-dirty byte ranges of every buffer are flushed back to the
//     host instance, and every subsequent action bound for the domain
//     executes on the host domain instead (host-as-target aliasing
//     turns its transfers into no-ops). Re-routing happens strictly
//     at the execution layer — dependence analysis, launch order and
//     the operand-overlap partial order are untouched, which is why
//     the FIFO-with-overlap semantic survives (DESIGN.md §6 has the
//     argument).
//
// The drain handshake is the standard counted-inflight pattern:
// workers increment dr.inflight and THEN load dr.quarantined; the
// flusher stores quarantined=true and THEN polls inflight==0. Go's
// sequentially consistent atomics guarantee any worker that read
// quarantined==false is visible in the flusher's poll, so the flush
// never races a card-side attempt.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hstreams/internal/fault"
	"hstreams/internal/metrics"
)

// ErrDeadlineExceeded is reported by actions whose attempts did not
// succeed within Config.Deadline. It is fatal in the retry taxonomy.
var ErrDeadlineExceeded = errors.New("core: action deadline exceeded")

// RetryPolicy bounds the scheduler's re-attempts of transiently
// failing card actions. The zero value disables retries (every
// transient failure is final), preserving pre-resilience behavior.
type RetryPolicy struct {
	// Max is the maximum number of RE-attempts per action (so an
	// action runs at most Max+1 times). Zero disables retries.
	Max int
	// Backoff is the wait before the first re-attempt; attempt k waits
	// Backoff<<k (capped at BackoffMax). Zero re-attempts immediately.
	Backoff time.Duration
	// BackoffMax caps the exponential growth. Zero means uncapped.
	BackoffMax time.Duration
	// Jitter spreads each wait uniformly over
	// [1-Jitter/2, 1+Jitter/2) of its nominal value, derived
	// deterministically from (Seed, action id, attempt) so a seeded
	// chaos run replays byte-identical backoff schedules. Zero
	// disables jitter; 0.5 is a reasonable production value.
	Jitter float64
	// Seed feeds the deterministic jitter.
	Seed uint64
}

// wait returns the backoff before re-attempt number attempt (0-based)
// of the given action.
func (p RetryPolicy) wait(id uint64, attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	if attempt > 20 { // 2^20 × Backoff is past any sane BackoffMax
		attempt = 20
	}
	base := p.Backoff << uint(attempt)
	if p.BackoffMax > 0 && base > p.BackoffMax {
		base = p.BackoffMax
	}
	if p.Jitter <= 0 {
		return base
	}
	h := mix64(p.Seed ^ id*0x9e3779b97f4a7c15 ^ uint64(attempt)<<32)
	u := float64(h>>11) / (1 << 53)
	return time.Duration(float64(base) * (1 - p.Jitter/2 + p.Jitter*u))
}

// BreakerPolicy configures per-domain quarantine. The zero value
// disables the breaker (and the dirty-range tracking that backs its
// flush, so disabled costs nothing on the hot path).
type BreakerPolicy struct {
	// Threshold is the number of CONSECUTIVE transient failures on one
	// domain that trips its breaker. Zero disables the breaker.
	Threshold int
}

// mix64 is the SplitMix64 finalizer (jitter hashing).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// needReroute is the internal signal from runCard to runCardAction
// that the domain quarantined out from under a failing action; it
// never escapes the executor.
type needReroute struct{ cause error }

func (e *needReroute) Error() string { return fmt.Sprintf("core: needs re-route: %v", e.cause) }

// resState is the realExec's resilience configuration plus per-domain
// breaker state.
type resState struct {
	retry    RetryPolicy
	deadline time.Duration
	dom      []*domainRes
}

// domainRes is one domain's breaker: failure streak, quarantine flag,
// in-flight count for the drain handshake, and the card-dirty byte
// ranges its quarantine flush must move back to the host instances.
type domainRes struct {
	index     int
	name      string
	threshold int // 0: breaker disabled

	inflight    atomic.Int64 // card attempts currently executing
	streak      atomic.Int64 // consecutive transient failures
	quarantined atomic.Bool  // one-way: set stays set

	flushOnce sync.Once
	flushErr  error

	// mu guards dirty: the byte ranges of each buffer where the CARD
	// instance holds data the host instance does not (card computes
	// mark their writes, completed transfers in either direction
	// clear — after a ToSink the instances agree by copy-in, after a
	// ToSource by copy-out). Only these ranges are flushed at
	// quarantine; flushing whole buffers would clobber host-computed
	// data that never existed on the card.
	mu    sync.Mutex
	dirty map[*Buf]*ivset

	retries   *metrics.Counter
	deadlines *metrics.Counter
	rerouted  *metrics.Counter
	trips     *metrics.Counter
	quarGauge *metrics.Gauge

	// emit delivers domain-level lifecycle events (trip, flush, clear)
	// to the runtime's event hook; bound once at newResState so the
	// breaker never reaches back through the runtime on a failure path.
	emit func(RuntimeEvent)
}

// newResState builds the resilience state for a Real-mode runtime.
func newResState(rt *Runtime) *resState {
	rs := &resState{
		retry:    rt.cfg.Retry,
		deadline: rt.cfg.Deadline,
		dom:      make([]*domainRes, len(rt.domains)),
	}
	for i, d := range rt.domains {
		name := d.spec.Name
		rs.dom[i] = &domainRes{
			index:     i,
			name:      name,
			threshold: rt.cfg.Breaker.Threshold,
			dirty:     make(map[*Buf]*ivset),
			retries:   rt.mets.retries.With(name),
			deadlines: rt.mets.deadline.With(name),
			rerouted:  rt.mets.rerouted.With(name),
			trips:     rt.mets.breakerTrip.With(name),
			quarGauge: rt.mets.quarantined.With(name),
			emit:      rt.emitEvent,
		}
	}
	return rs
}

// isQuarantined is the hot-path breaker probe: one atomic load.
func (dr *domainRes) isQuarantined() bool { return dr.quarantined.Load() }

// succeed resets the failure streak and, with the breaker enabled,
// updates the domain's card-dirty range tracking for the completed
// action. Runs while the action is still counted in dr.inflight, so
// it is serialized against the quarantine flush.
func (dr *domainRes) succeed(a *Action) {
	if dr.threshold <= 0 {
		return
	}
	if dr.streak.Load() != 0 {
		dr.streak.Store(0)
	}
	dr.mu.Lock()
	switch a.kind {
	case ActCompute:
		for _, o := range a.ops {
			if o.Acc.writes() {
				dr.dirtySet(o.Buf).add(o.Off, o.Off+o.Len)
			}
		}
	case ActXferToSink, ActXferToSrc:
		o := a.ops[0]
		if s := dr.dirty[o.Buf]; s != nil {
			s.remove(o.Off, o.Off+o.Len)
		}
	}
	dr.mu.Unlock()
}

// dirtySet resolves (or creates) a buffer's dirty-range set; caller
// holds dr.mu.
func (dr *domainRes) dirtySet(b *Buf) *ivset {
	s := dr.dirty[b]
	if s == nil {
		s = &ivset{}
		dr.dirty[b] = s
	}
	return s
}

// fail records one transient failure; at Threshold consecutive
// failures it trips the breaker (exactly once).
func (dr *domainRes) fail() {
	if dr.threshold <= 0 {
		return
	}
	if dr.streak.Add(1) >= int64(dr.threshold) {
		if !dr.quarantined.Swap(true) {
			dr.trips.Inc()
			dr.quarGauge.Set(1)
			dr.emit(RuntimeEvent{Kind: EvBreakerTrip, Domain: dr.name})
		}
	}
}

// awaitFlush blocks until the quarantined domain has drained its
// in-flight card attempts and its card-dirty ranges are flushed to
// the host instances. The first caller performs the flush; concurrent
// callers block inside the Once until it completes. Callers must NOT
// be counted in dr.inflight (they would deadlock the drain).
func (dr *domainRes) awaitFlush(re *realExec) error {
	dr.flushOnce.Do(func() {
		for dr.inflight.Load() != 0 {
			time.Sleep(20 * time.Microsecond)
		}
		dr.flushErr = dr.flush(re)
		ev := RuntimeEvent{Kind: EvQuarantineFlush, Domain: dr.name}
		if dr.flushErr != nil {
			ev.Err = dr.flushErr.Error()
		}
		dr.emit(ev)
	})
	return dr.flushErr
}

// flushRetryMax bounds the flush's own DMA retries — the quarantined
// link may still be faulting, and the flush is the last chance to
// rescue card-side data.
const flushRetryMax = 16

// flush copies every card-dirty byte range back to the host
// instances. In-flight drain already serialized us against card
// attempts; dr.mu serializes against late succeed bookkeeping.
func (dr *domainRes) flush(re *realExec) error {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	var firstErr error
	for b, set := range dr.dirty {
		cb := b.inst[dr.index]
		for _, iv := range set.ivs {
			var err error
			for att := 0; ; att++ {
				_, err = cb.Read(int(iv.lo), b.host[iv.lo:iv.hi])
				if err == nil || !fault.IsTransient(err) || att >= flushRetryMax {
					break
				}
				if w := re.res.retry.wait(uint64(iv.lo)|1, att); w > 0 {
					time.Sleep(w)
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("core: quarantine flush of %s[%d:+%d) from %s: %w",
					b.name, iv.lo, iv.hi-iv.lo, dr.name, err)
			}
		}
	}
	dr.dirty = nil
	return firstErr
}

// ivset is a sorted, disjoint set of half-open byte intervals — the
// card-dirty range tracking behind the quarantine flush. Operations
// are O(n) in the interval count, which stays tiny (operand ranges
// coalesce aggressively).
type ivset struct {
	ivs []byteiv
}

type byteiv struct{ lo, hi int64 }

// add unions [lo,hi) into the set, coalescing neighbors.
func (s *ivset) add(lo, hi int64) {
	if lo >= hi {
		return
	}
	out := make([]byteiv, 0, len(s.ivs)+1)
	inserted := false
	for _, iv := range s.ivs {
		switch {
		case iv.hi < lo: // strictly left
			out = append(out, iv)
		case hi < iv.lo: // strictly right
			if !inserted {
				out = append(out, byteiv{lo, hi})
				inserted = true
			}
			out = append(out, iv)
		default: // touching or overlapping: absorb
			if iv.lo < lo {
				lo = iv.lo
			}
			if iv.hi > hi {
				hi = iv.hi
			}
		}
	}
	if !inserted {
		out = append(out, byteiv{lo, hi})
	}
	s.ivs = out
}

// remove subtracts [lo,hi) from the set.
func (s *ivset) remove(lo, hi int64) {
	if lo >= hi {
		return
	}
	out := make([]byteiv, 0, len(s.ivs)+1)
	for _, iv := range s.ivs {
		if iv.hi <= lo || hi <= iv.lo { // disjoint
			out = append(out, iv)
			continue
		}
		if iv.lo < lo {
			out = append(out, byteiv{iv.lo, lo})
		}
		if hi < iv.hi {
			out = append(out, byteiv{hi, iv.hi})
		}
	}
	s.ivs = out
}

// total returns the summed length of the set (test helper).
func (s *ivset) total() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.hi - iv.lo
	}
	return n
}
