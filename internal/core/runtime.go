// Package core implements the hStreams library: a FIFO streaming,
// task-queue abstraction for heterogeneous platforms (paper §II).
//
// The three building blocks are:
//
//   - Domains: sets of computing resources sharing coherent memory
//     (the host, each coprocessor card). See Runtime.Domains.
//   - Streams: task queues with a source endpoint (the enqueuing
//     host thread) and a sink endpoint (a domain plus a core range).
//     Compute, transfer and synchronization actions are enqueued into
//     streams. Actions may execute and complete out of order as long
//     as the sequential FIFO semantic is preserved: two actions in a
//     stream are ordered only when their memory operands overlap with
//     at least one writer, or when a synchronization action separates
//     them. This is the semantic difference from CUDA Streams, whose
//     queues are strictly FIFO.
//   - Buffers: memory in a unified source proxy address space,
//     instantiated per domain; operand addresses are translated from
//     proxy space to the sink instance of the stream's domain.
//
// Two execution modes share the same dependence semantics:
//
//   - ModeReal executes kernels and transfers for real, with the
//     layering of the paper (hStreams → COI → fabric) as the actual
//     code path to card domains.
//   - ModeSim schedules the identical action graph on a virtual clock
//     with durations from the platform cost model, which is how the
//     paper-scale experiments are reproduced.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hstreams/internal/coi"
	"hstreams/internal/fabric"
	"hstreams/internal/fault"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// Common errors.
var (
	ErrFinalized     = errors.New("core: runtime finalized")
	ErrBadOperand    = errors.New("core: operand outside buffer")
	ErrBadStream     = errors.New("core: invalid stream configuration")
	ErrNoKernel      = errors.New("core: kernel not registered")
	ErrSimNoData     = errors.New("core: buffers have no backing data in Sim mode")
	ErrWrongRuntime  = errors.New("core: object belongs to a different runtime")
	ErrEmptyMachine  = errors.New("core: machine must have a host domain")
	ErrBadBufferSize = errors.New("core: buffer size must be positive")
	ErrBufferFreed   = errors.New("core: buffer freed")
	ErrQueueFull     = errors.New("core: stream queue full")
)

// Mode selects the execution back end.
type Mode int

const (
	// ModeReal runs kernels and transfers for real.
	ModeReal Mode = iota
	// ModeSim schedules on a virtual clock using the cost model.
	ModeSim
)

// QueuePolicy selects what an enqueue does when its stream's bounded
// queue is at capacity (Config.MaxQueueDepth).
type QueuePolicy int

const (
	// QueueBlock makes the enqueue wait for queue space — backpressure
	// propagates to the source thread. This is the default.
	QueueBlock QueuePolicy = iota
	// QueueShed makes the enqueue fail fast with ErrQueueFull, never
	// entering the stream — load shedding. A shed action leaves no
	// trace in the dependence index, so FIFO semantics among the
	// accepted actions are exactly those of a run that never submitted
	// it.
	QueueShed
)

// String labels the policy for flags and diagnostics.
func (p QueuePolicy) String() string {
	switch p {
	case QueueBlock:
		return "block"
	case QueueShed:
		return "shed"
	default:
		return fmt.Sprintf("QueuePolicy(%d)", int(p))
	}
}

// Config configures Init.
type Config struct {
	// Machine is the platform to run on. Required.
	Machine *platform.Machine
	// Mode selects real or simulated execution.
	Mode Mode
	// MaxQueueDepth bounds each stream's enqueued-but-incomplete
	// action window. Zero keeps the window unbounded (the library
	// default — batch harnesses manage their own pipelining). Serving
	// front ends should set it: an unbounded queue lets one stalled
	// sink absorb the process. Streams can override it individually
	// with Stream.SetQueueBound.
	MaxQueueDepth int
	// QueuePolicy selects blocking or shedding when a bounded queue
	// is full. The zero value is QueueBlock.
	QueuePolicy QueuePolicy
	// SourceOverhead is the modeled per-enqueue cost on the source
	// thread (Sim mode only). Zero means free enqueues.
	SourceOverhead time.Duration
	// DisableBufferPool turns off COI's 2 MB sink buffer pool,
	// reproducing the allocation overheads the paper observed in the
	// OmpSs configuration (Real mode only).
	DisableBufferPool bool
	// AsyncAlloc makes sink-side buffer instantiation asynchronous.
	// The paper's overhead analysis found synchronous MIC-side
	// allocation to be a bottleneck and announced this feature as
	// forthcoming (§VII); here it is implemented. With it off
	// (the paper's state), every Alloc1D blocks the source thread
	// for the sink allocation cost per card.
	AsyncAlloc bool
	// Metrics receives the runtime's live telemetry. Nil uses the
	// process-wide metrics.Default() registry, so harnesses driving
	// many runtimes accumulate one view; tests that assert on counts
	// should pass their own registry.
	Metrics *metrics.Registry
	// Flight receives completed-action causal spans — the four phase
	// timestamps (enqueue → ready → launch → finish) plus the causal
	// in-edges that gated each action — into a lock-free ring buffer
	// readable while the runtime works (trace.FlightRecorder). Nil
	// uses the process-wide trace.DefaultFlight(), mirroring Metrics.
	Flight *trace.FlightRecorder
	// DisableCausalTrace turns span capture off entirely: no
	// dependence recording, no ring writes. This is the ablation the
	// trace-overhead benchmark guard measures; leave it off in
	// production — the recorder is designed to stay on.
	DisableCausalTrace bool
	// Faults, when non-nil, is installed into the fabric and COI
	// layers and consulted before every DMA and run-function launch
	// (fault.NewInjector builds the deterministic, seedable one). Real
	// mode only — Sim's virtual clock has no plumbing to fail. Nil
	// (the default) disables injection at zero cost.
	Faults fault.Injector
	// Retry bounds re-attempts of transiently failing card actions
	// (resilience.go). The zero value disables retries.
	Retry RetryPolicy
	// Deadline bounds one action's total time across attempts; checked
	// at attempt boundaries (a DMA cannot be aborted midflight). Zero
	// disables deadlines. Real mode only.
	Deadline time.Duration
	// Breaker configures per-domain quarantine: after
	// Breaker.Threshold consecutive transient failures a domain is
	// quarantined and its work re-routed to the host (resilience.go).
	// The zero value disables the breaker.
	Breaker BreakerPolicy
	// OnEvent, when non-nil, receives runtime lifecycle events
	// (breaker trips, quarantine flushes, retries-exhausted, deadline
	// hits — see RuntimeEvent) synchronously on the goroutine where
	// the transition happened; it must be safe for concurrent calls.
	// Nil falls back to the process-wide hook installed with
	// SetDefaultEventHook (the CLIs point that at the health journal);
	// with neither set, events are dropped. Only failure paths emit,
	// so the fault-free hot path never pays for the hook.
	OnEvent func(RuntimeEvent)
}

// Kernel is a sink-side compute entry point. Operand slices arrive in
// the order they were passed to EnqueueCompute, resolved against the
// executing domain's buffer instances.
type Kernel func(ctx *KernelCtx)

// KernelCtx carries a kernel invocation's inputs.
type KernelCtx struct {
	// Args are the scalar arguments from EnqueueCompute.
	Args []int64
	// Ops are the operand byte ranges, one per Operand.
	Ops [][]byte
	// Threads is the number of hardware threads granted to this
	// invocation (the stream's width); kernels that parallelize
	// internally should size themselves to it.
	Threads int
}

// Runtime is an initialized hStreams library instance.
type Runtime struct {
	cfg     Config
	machine *platform.Machine
	domains []*Domain
	rec     *trace.Recorder
	flight  *trace.FlightRecorder // nil when causal tracing is off
	runID   uint64
	reg     *metrics.Registry
	mets    *coreMetrics
	obs     atomic.Pointer[[]metrics.Observer]

	// mu is the small registry lock: stream/buffer enumeration, kernel
	// registration, and first-error state. The per-action hot path
	// never takes it — scheduling state lives behind per-stream locks
	// (Stream.mu) and the atomics below. Proxy-range allocation has
	// its own lock inside the AddrSpace.
	mu       sync.Mutex
	streams  []*Stream
	bufs     []*Buf
	firstErr error

	// proxy allocates (and recycles) source proxy address ranges —
	// the seed bump counter never reclaimed them, so a long-running
	// server leaked address space on every Alloc1D/Free cycle.
	proxy *fabric.AddrSpace

	nextID      atomic.Uint64
	outstanding atomic.Int64
	finalized   atomic.Bool

	// ktab is the copy-on-write kernel table: registration (rare)
	// clones under mu, lookup (every Real-mode compute enqueue) is a
	// lock-free load.
	ktab atomic.Pointer[kernelTable]

	exec executor

	// Real-mode plumbing.
	fab   *fabric.Fabric
	nodes []*fabric.Node
	procs []*coi.Process
}

// executor is the back end contract shared by real and simulated
// execution. launch is called exactly once per action, after its
// dependences resolve; the executor must eventually call
// Runtime.finish. waitAction blocks the host until the action is done
// (pumping the virtual clock in Sim mode).
type executor interface {
	launch(a *Action)
	waitAction(a *Action)
	now() time.Duration
	fini()
}

// Init brings up the library on the given machine, enumerating its
// domains and (in Real mode) starting a COI process on every card.
func Init(cfg Config) (*Runtime, error) {
	if cfg.Machine == nil || cfg.Machine.Host == nil {
		return nil, ErrEmptyMachine
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	rt := &Runtime{
		cfg:     cfg,
		machine: cfg.Machine,
		rec:     trace.New(),
		runID:   nextRunID.Add(1),
		reg:     reg,
		proxy:   fabric.NewAddrSpace(proxyAlign),
	}
	rt.ktab.Store(&kernelTable{ids: make(map[string]int64)})
	if !cfg.DisableCausalTrace {
		rt.flight = cfg.Flight
		if rt.flight == nil {
			rt.flight = trace.DefaultFlight()
		}
	}
	rt.mets = newCoreMetrics(reg)
	for i, spec := range cfg.Machine.Domains() {
		rt.domains = append(rt.domains, &Domain{rt: rt, index: i, spec: spec})
	}
	switch cfg.Mode {
	case ModeSim:
		rt.exec = newSimExec(rt)
	case ModeReal:
		if err := rt.initPlumbing(); err != nil {
			return nil, err
		}
		rt.exec = newRealExec(rt)
	default:
		return nil, fmt.Errorf("core: unknown mode %d", cfg.Mode)
	}
	recordRunGeom(rt)
	registerLive(rt)
	return rt, nil
}

// initPlumbing builds the fabric and one COI process per card.
func (rt *Runtime) initPlumbing() error {
	rt.fab = fabric.New()
	rt.fab.SetMetrics(rt.reg)
	if rt.cfg.Faults != nil {
		rt.fab.SetInjector(rt.cfg.Faults)
	}
	rt.nodes = make([]*fabric.Node, len(rt.domains))
	rt.procs = make([]*coi.Process, len(rt.domains))
	for i, d := range rt.domains {
		rt.nodes[i] = rt.fab.AddNode(d.spec.Name)
	}
	for i := 1; i < len(rt.domains); i++ {
		if _, err := rt.fab.Connect(rt.nodes[0], rt.nodes[i], rt.machine.LinkFor(i-1)); err != nil {
			return err
		}
		p, err := coi.CreateProcess(rt.fab, rt.nodes[0], rt.nodes[i], coi.Options{
			PoolBuffers: !rt.cfg.DisableBufferPool,
			Metrics:     rt.reg,
			Injector:    rt.cfg.Faults,
		})
		if err != nil {
			return err
		}
		p.RegisterFunction(trampolineName, rt.trampoline)
		rt.procs[i] = p
	}
	return nil
}

// Fini synchronizes all outstanding work, reclaims every still-live
// buffer (so hstreams_buffers_live returns to its pre-Init baseline —
// the leak check serving smoke tests assert on), and shuts the
// library down.
func (rt *Runtime) Fini() {
	rt.ThreadSynchronize()
	if rt.finalized.Swap(true) {
		return
	}
	rt.mu.Lock()
	procs := rt.procs
	bufs := append([]*Buf(nil), rt.bufs...)
	rt.mu.Unlock()
	// All work is drained, so every remaining buffer has zero live
	// references and reclaims immediately; card instances must go
	// before their COI processes do.
	for _, b := range bufs {
		b.Free()
	}
	unregisterLive(rt)
	rt.exec.fini()
	for _, p := range procs {
		if p != nil {
			p.Destroy()
		}
	}
}

// Machine returns the platform the runtime was initialized on.
func (rt *Runtime) Machine() *platform.Machine { return rt.machine }

// Mode returns the execution mode.
func (rt *Runtime) Mode() Mode { return rt.cfg.Mode }

// String labels the execution mode for logs and benchmarks.
func (m Mode) String() string {
	switch m {
	case ModeReal:
		return "real"
	case ModeSim:
		return "sim"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Trace returns the runtime's timeline recorder.
func (rt *Runtime) Trace() *trace.Recorder { return rt.rec }

// Flight returns the flight recorder this runtime records causal
// spans into — the one supplied via Config.Flight, or the
// process-wide trace.DefaultFlight(). Nil when Config.DisableCausalTrace
// turned capture off. It stays readable after Fini.
func (rt *Runtime) Flight() *trace.FlightRecorder { return rt.flight }

// RunID returns this runtime instance's process-unique id — the value
// spans carry in trace.Span.Run, letting analysis separate schedules
// when many runtimes share one flight recorder.
func (rt *Runtime) RunID() uint64 { return rt.runID }

// nextRunID numbers runtime instances process-wide.
var nextRunID atomic.Uint64

// Now returns the current time on the executor's clock — wall time
// since Init in Real mode, virtual time in Sim mode.
func (rt *Runtime) Now() time.Duration { return rt.exec.now() }

// Err returns the first error any action produced.
func (rt *Runtime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.firstErr
}

// Domain is a physical domain enumerated by the runtime. Domain 0 is
// always the host.
type Domain struct {
	rt    *Runtime
	index int
	spec  *platform.DomainSpec
}

// Index returns the domain's position in discovery order.
func (d *Domain) Index() int { return d.index }

// Spec returns the domain's hardware description.
func (d *Domain) Spec() *platform.DomainSpec { return d.spec }

// IsHost reports whether this is the host domain.
func (d *Domain) IsHost() bool { return d.index == 0 }

// String renders the domain as "domain<index>(<name>)" for diagnostics.
func (d *Domain) String() string { return fmt.Sprintf("domain%d(%s)", d.index, d.spec.Name) }

// Domains enumerates all physical domains, host first.
func (rt *Runtime) Domains() []*Domain { return append([]*Domain(nil), rt.domains...) }

// Host returns the host domain.
func (rt *Runtime) Host() *Domain { return rt.domains[0] }

// NumCards returns the number of non-host domains.
func (rt *Runtime) NumCards() int { return len(rt.domains) - 1 }

// Card returns the i-th card domain (0-based).
func (rt *Runtime) Card(i int) *Domain { return rt.domains[i+1] }

// kernelTable is the immutable kernel registry snapshot; lookups load
// it atomically, registration replaces it wholesale.
type kernelTable struct {
	ids  map[string]int64
	list []Kernel
}

// RegisterKernel makes fn invocable by name from compute actions in
// any domain (the name plays the role of the sink-side symbol that
// hStreams looks up). Registering an existing name replaces it.
func (rt *Runtime) RegisterKernel(name string, fn Kernel) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	old := rt.ktab.Load()
	next := &kernelTable{
		ids:  make(map[string]int64, len(old.ids)+1),
		list: append([]Kernel(nil), old.list...),
	}
	for k, v := range old.ids {
		next.ids[k] = v
	}
	if id, ok := next.ids[name]; ok {
		next.list[id] = fn
	} else {
		next.ids[name] = int64(len(next.list))
		next.list = append(next.list, fn)
	}
	rt.ktab.Store(next)
}

// Kernels returns the names of every registered kernel, sorted — the
// capability set a serving front end advertises and negotiates
// against.
func (rt *Runtime) Kernels() []string {
	t := rt.ktab.Load()
	names := make([]string, 0, len(t.ids))
	for name := range t.ids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (rt *Runtime) kernelByName(name string) (Kernel, int64, bool) {
	t := rt.ktab.Load()
	id, ok := t.ids[name]
	if !ok {
		return nil, 0, false
	}
	return t.list[id], id, true
}

func (rt *Runtime) kernelByID(id int64) Kernel {
	t := rt.ktab.Load()
	if id < 0 || id >= int64(len(t.list)) {
		return nil
	}
	return t.list[id]
}

// ThreadSynchronize blocks the host until every enqueued action in
// every stream has completed (hStreams_ThreadSynchronize).
func (rt *Runtime) ThreadSynchronize() {
	for {
		rt.mu.Lock()
		streams := rt.streams
		rt.mu.Unlock()
		var pending *Action
		for _, s := range streams {
			s.mu.Lock()
			if len(s.inflight) > 0 {
				pending = s.inflight[0]
			}
			s.mu.Unlock()
			if pending != nil {
				break
			}
		}
		if pending == nil {
			return
		}
		rt.exec.waitAction(pending)
	}
}

// EventWait blocks the host until the given events complete — all of
// them when all is true, at least one otherwise
// (hStreams_EventWait).
func (rt *Runtime) EventWait(evs []*Action, all bool) {
	if len(evs) == 0 {
		return
	}
	if all {
		for _, ev := range evs {
			rt.exec.waitAction(ev)
		}
		return
	}
	// Wait for any. In Sim mode the executor pumps the clock; in
	// Real mode we wait on a merged channel.
	if rt.cfg.Mode == ModeSim {
		se := rt.exec.(*simExec)
		se.eng.RunUntil(func() bool {
			for _, ev := range evs {
				if ev.Completed() {
					return true
				}
			}
			return false
		})
		return
	}
	// done releases the waiter goroutines on return so waiters on
	// never-completing events cannot outlive the call.
	done := make(chan struct{})
	defer close(done)
	any := make(chan struct{})
	var once sync.Once
	for _, ev := range evs {
		go func(ch <-chan struct{}) {
			select {
			case <-ch:
				once.Do(func() { close(any) })
			case <-done:
			}
		}(ev.Done())
	}
	<-any
}

// ChargeSource accounts d of work on the source (host) thread in Sim
// mode — layers above hStreams (e.g. a task-dataflow runtime doing
// dynamic dependence analysis and scheduling) use it to model their
// own per-task costs, which is how the paper's OmpSs overhead
// (15–50 % at mid sizes, §III) is reproduced. No-op in Real mode.
func (rt *Runtime) ChargeSource(d time.Duration) {
	if rt.cfg.Mode != ModeSim || d <= 0 {
		return
	}
	se := rt.exec.(*simExec)
	se.mu.Lock()
	se.hostTime += d
	se.mu.Unlock()
}

// setErr records the first action error, which Err reports. Later
// errors never displace it — a cascade usually roots in the first
// failure — but they are not silently dropped either: each one counts
// in hstreams_errors_suppressed_total (every error, first included,
// already counts in hstreams_action_errors_total).
func (rt *Runtime) setErr(err error) {
	if err == nil {
		return
	}
	rt.mu.Lock()
	if rt.firstErr == nil {
		rt.firstErr = err
		rt.mu.Unlock()
		return
	}
	rt.mu.Unlock()
	rt.mets.errSuppressed.Inc()
}
