package core

import (
	"sort"
	"sync"
	"time"

	"hstreams/internal/fabric"
)

// Live-runtime registry: Init registers, Fini unregisters. The debug
// server enumerates it to serve stream/queue snapshots without being
// handed runtimes explicitly.
var (
	liveMu   sync.Mutex
	liveRuns = make(map[*Runtime]struct{})
)

func registerLive(rt *Runtime) {
	liveMu.Lock()
	liveRuns[rt] = struct{}{}
	liveMu.Unlock()
}

func unregisterLive(rt *Runtime) {
	liveMu.Lock()
	delete(liveRuns, rt)
	liveMu.Unlock()
}

// LiveRuntimes returns every initialized-but-not-finalized runtime in
// the process, ordered by run id (Init order).
func LiveRuntimes() []*Runtime {
	liveMu.Lock()
	out := make([]*Runtime, 0, len(liveRuns))
	for rt := range liveRuns {
		out = append(out, rt)
	}
	liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].runID < out[j].runID })
	return out
}

// ActionStatus is a point-in-time view of one incomplete action.
type ActionStatus struct {
	ID      uint64        `json:"id"`
	Kind    string        `json:"kind"`
	Label   string        `json:"label,omitempty"`
	State   string        `json:"state"` // "pending" | "launched"
	Pending int           `json:"pending_deps"`
	Enqueue time.Duration `json:"enqueue"`
	Age     time.Duration `json:"age"`
}

// StreamStatus is a point-in-time view of one stream's queue.
type StreamStatus struct {
	Name      string         `json:"name"`
	Domain    string         `json:"domain"`
	Destroyed bool           `json:"destroyed,omitempty"`
	Depth     int            `json:"depth"`
	Inflight  []ActionStatus `json:"inflight,omitempty"`
}

// RuntimeStatus is a point-in-time view of one runtime: its clock, its
// outstanding-action count, and every stream's incomplete window. The
// debug server serves it as /debug/streams.
type RuntimeStatus struct {
	Run         uint64         `json:"run"`
	Mode        string         `json:"mode"`
	Now         time.Duration  `json:"now"`
	Outstanding int            `json:"outstanding"`
	Finalized   bool           `json:"finalized,omitempty"`
	Err         string         `json:"err,omitempty"`
	Streams     []StreamStatus `json:"streams"`
}

// LinkStats snapshots per-link traffic for the debug server: fabric
// accounting in Real mode; in Sim mode the atomic byte/transfer
// counters (the modeled wire time is not included — the DMA resources
// belong to the single-goroutine engine, and SimLinkBusy reads them
// from the host thread only).
func (rt *Runtime) LinkStats() []fabric.LinkStat {
	if rt.fab != nil {
		return rt.fab.LinkStats()
	}
	se, ok := rt.exec.(*simExec)
	if !ok {
		return nil
	}
	host := rt.domains[0].spec.Name
	out := make([]fabric.LinkStat, 0, 2*(len(rt.domains)-1))
	for i := 1; i < len(rt.domains); i++ {
		name := rt.domains[i].spec.Name
		for dir := 0; dir < 2; dir++ {
			src, dst := host, name
			if dir == 1 {
				src, dst = name, host
			}
			out = append(out, fabric.LinkStat{
				Src:       src,
				Dst:       dst,
				Transfers: se.linkMet[i][dir].xfers.Value(),
				Bytes:     se.linkMet[i][dir].bytes.Value(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// maxInflightStatus bounds the per-stream action detail in a status
// snapshot so a deep queue cannot balloon the debug response.
const maxInflightStatus = 64

// Status snapshots the runtime, taking each stream's lock in turn —
// never more than one at once. It is safe to call from any goroutine
// while the runtime works — in Sim mode "now" is the locked host
// clock, never the engine clock, which only the pumping host goroutine
// may read.
func (rt *Runtime) Status() RuntimeStatus {
	var now time.Duration
	if se, ok := rt.exec.(*simExec); ok {
		se.mu.Lock()
		now = se.hostTime
		se.mu.Unlock()
	} else {
		now = rt.exec.now()
	}
	st := RuntimeStatus{
		Run:         rt.runID,
		Mode:        rt.cfg.Mode.String(),
		Now:         now,
		Outstanding: int(rt.outstanding.Load()),
		Finalized:   rt.finalized.Load(),
	}
	rt.mu.Lock()
	streams := rt.streams
	if rt.firstErr != nil {
		st.Err = rt.firstErr.Error()
	}
	rt.mu.Unlock()
	for _, s := range streams {
		s.mu.Lock()
		ss := StreamStatus{
			Name:      s.name,
			Domain:    s.domain.spec.Name,
			Destroyed: s.destroyed,
			Depth:     len(s.inflight),
		}
		// inflight is unordered (swap retirement); snapshot then sort
		// by id so the report reads in enqueue order.
		snap := append([]*Action(nil), s.inflight...)
		s.mu.Unlock()
		sort.Slice(snap, func(i, j int) bool { return snap[i].id < snap[j].id })
		for _, a := range snap {
			if len(ss.Inflight) == maxInflightStatus {
				break
			}
			state := "pending"
			if a.state.Load() == stateLaunched {
				state = "launched"
			}
			ss.Inflight = append(ss.Inflight, ActionStatus{
				ID:      a.id,
				Kind:    a.kind.String(),
				Label:   a.label,
				State:   state,
				Pending: int(a.npend.Load()),
				Enqueue: a.tEnqueue,
				Age:     now - a.tEnqueue,
			})
		}
		st.Streams = append(st.Streams, ss)
	}
	return st
}
