package core

import (
	"math/rand"
	"testing"

	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

// TestFIFOSemanticEquivalence is the core correctness property of the
// library (paper §II): actions may execute and complete out of order,
// but the observable result must equal that of sequential in-order
// execution. We drive random programs of non-commutative tile updates
// through real streams — a host-as-target stream and a card stream,
// with per-tile transfers and cross-stream event waits exactly as the
// paper prescribes for dependences that leave a stream — and compare
// against a sequential reference interpreter.
func TestFIFOSemanticEquivalence(t *testing.T) {
	const (
		tiles   = 8
		tileLen = 16
		nOps    = 50
	)
	rounds := 10
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		round := round
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(round)))

			// Random program: affine tile updates (x = m·x + c do not
			// commute across different (m, c)).
			type step struct {
				tile   int
				m, c   int64
				stream int // 0 host, 1 card
			}
			var prog []step
			for i := 0; i < nOps; i++ {
				prog = append(prog, step{
					tile:   rng.Intn(tiles),
					m:      int64(rng.Intn(3) + 1),
					c:      int64(rng.Intn(5)),
					stream: rng.Intn(2),
				})
			}

			// Sequential reference.
			ref := make([]float64, tiles*tileLen)
			for i := range ref {
				ref[i] = float64(i % 7)
			}
			for _, s := range prog {
				lo := s.tile * tileLen
				for i := lo; i < lo+tileLen; i++ {
					ref[i] = ref[i]*float64(s.m) + float64(s.c)
				}
			}

			// Streamed execution.
			rt, err := Init(Config{Machine: platform.HSWPlusKNC(1), Mode: ModeReal})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Fini()
			rt.RegisterKernel("affine", func(ctx *KernelCtx) {
				v := floatbits.Float64s(ctx.Ops[0])
				m, c := float64(ctx.Args[0]), float64(ctx.Args[1])
				for i := range v {
					v[i] = v[i]*m + c
				}
			})
			buf, host, err := rt.AllocFloat64("tiles", tiles*tileLen)
			if err != nil {
				t.Fatal(err)
			}
			for i := range host {
				host[i] = float64(i % 7)
			}
			hostStream, err := rt.StreamCreate(rt.Host(), 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			cardStream, err := rt.StreamCreate(rt.Card(0), 0, 8)
			if err != nil {
				t.Fatal(err)
			}
			streams := [2]*Stream{hostStream, cardStream}

			// Per-tile bookkeeping: the action that last touched the
			// tile and the stream it ran in. The FIFO semantic orders
			// hazards within a stream; switching streams needs an
			// explicit event wait, and switching domains additionally
			// needs the tile moved (the paper's recipe, §II).
			type touch struct {
				act *Action
				s   *Stream
			}
			last := make([]touch, tiles)
			tileOff := func(tl int) (int64, int64) { return int64(tl * tileLen * 8), int64(tileLen * 8) }

			for _, st := range prog {
				s := streams[st.stream]
				lt := last[st.tile]
				off, ln := tileOff(st.tile)
				if lt.act != nil && lt.s != s {
					if _, err := s.EnqueueEventWait(lt.act); err != nil {
						t.Fatal(err)
					}
				}
				switchingDomain := lt.act == nil && !s.Domain().IsHost() || lt.act != nil && lt.s.Domain() != s.Domain()
				if switchingDomain {
					if s.Domain().IsHost() {
						// Fresh data is on the card; pull it to the
						// source via the card stream (FIFO orders the
						// pull after the card's last write), then make
						// this stream wait for the pull.
						pull, err := cardStream.EnqueueXfer(buf, off, ln, ToSource)
						if err != nil {
							t.Fatal(err)
						}
						if _, err := s.EnqueueEventWait(pull); err != nil {
							t.Fatal(err)
						}
					} else {
						// Fresh data is at the source; push it to the
						// card in this stream (overlap orders the
						// compute after it automatically).
						if _, err := s.EnqueueXfer(buf, off, ln, ToSink); err != nil {
							t.Fatal(err)
						}
					}
				}
				a, err := s.EnqueueCompute("affine", []int64{st.m, st.c},
					[]Operand{{Buf: buf, Off: off, Len: ln, Acc: InOut}}, platform.Cost{})
				if err != nil {
					t.Fatal(err)
				}
				last[st.tile] = touch{a, s}
			}
			// Pull card-resident tiles home.
			for tl := 0; tl < tiles; tl++ {
				if last[tl].act != nil && !last[tl].s.Domain().IsHost() {
					off, ln := tileOff(tl)
					if _, err := cardStream.EnqueueXfer(buf, off, ln, ToSource); err != nil {
						t.Fatal(err)
					}
				}
			}
			rt.ThreadSynchronize()
			if err := rt.Err(); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if host[i] != ref[i] {
					t.Fatalf("round %d: host[%d] = %v, want %v (tile %d)", round, i, host[i], ref[i], i/tileLen)
				}
			}
		})
	}
}

// TestDependenceSoundness checks with testing/quick-style randomness
// that the dependence computation never lets two hazardous actions
// run concurrently in Sim mode: for every pair of actions in a stream
// with overlapping operands (≥1 writer), the later one must start at
// or after the earlier one ends.
func TestDependenceSoundness(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rt, err := Init(Config{Machine: platform.HSWPlusKNC(1), Mode: ModeSim})
		if err != nil {
			t.Fatal(err)
		}
		s, err := rt.StreamCreate(rt.Card(0), 0, 61)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := rt.Alloc1D("b", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		type rec struct {
			a  *Action
			op Operand
		}
		var acts []rec
		for i := 0; i < 40; i++ {
			off := int64(rng.Intn(1 << 19))
			ln := int64(rng.Intn(1<<18) + 1)
			acc := Access(rng.Intn(3))
			op := Operand{Buf: buf, Off: off, Len: ln, Acc: acc}
			var a *Action
			if rng.Intn(3) == 0 {
				dir := ToSink
				if acc == In {
					dir = ToSource
				} else {
					op.Acc = Out
				}
				a, err = s.EnqueueXfer(buf, off, ln, dir)
				op.Acc = Out
				if dir == ToSource {
					op.Acc = In
				}
			} else {
				a, err = s.EnqueueCompute("k", nil, []Operand{op},
					platform.Cost{Kernel: platform.KDGEMM, Flops: float64(rng.Intn(1e8) + 1e6), N: 500})
			}
			if err != nil {
				t.Fatal(err)
			}
			acts = append(acts, rec{a, op})
		}
		rt.ThreadSynchronize()
		for i := 0; i < len(acts); i++ {
			for j := i + 1; j < len(acts); j++ {
				if acts[i].op.hazardWith(acts[j].op) {
					_, endI := acts[i].a.Times()
					startJ, _ := acts[j].a.Times()
					if startJ < endI {
						t.Fatalf("seed %d: hazardous actions %d,%d overlapped: j starts %v before i ends %v",
							seed, i, j, startJ, endI)
					}
				}
			}
		}
		rt.Fini()
	}
}
