package core

// events.go is the runtime's lifecycle-event emission: a thin typed
// hook the health layer's structured journal (internal/health) hangs
// off. Events fire only on failure-path transitions — breaker trips,
// quarantine flushes and clears, retry-budget exhaustion, deadline
// hits — so the fault-free hot path pays nothing beyond the existing
// single resNote nil check at finish (and nothing at all when no hook
// is installed).

import (
	"fmt"
	"sync/atomic"
)

// RuntimeEventKind classifies a runtime lifecycle event.
type RuntimeEventKind int

const (
	// EvBreakerTrip fires exactly once per domain when its breaker
	// trips (Threshold consecutive transient failures).
	EvBreakerTrip RuntimeEventKind = iota
	// EvQuarantineFlush fires when a quarantined domain's card-dirty
	// ranges finish flushing back to the host instances; Err carries
	// the flush error when data could not be rescued.
	EvQuarantineFlush
	// EvQuarantineCleared fires at Fini for each still-quarantined
	// domain: quarantine is one-way for a runtime's lifetime
	// (re-admission is re-Init, per OPERATIONS.md), so teardown is
	// where the degraded state formally ends.
	EvQuarantineCleared
	// EvRetriesExhausted fires when an action fails after consuming
	// its full RetryPolicy.Max re-attempt budget.
	EvRetriesExhausted
	// EvDeadlineHit fires when an action exceeds Config.Deadline.
	EvDeadlineHit
)

// String labels the event kind for journals and logs.
func (k RuntimeEventKind) String() string {
	switch k {
	case EvBreakerTrip:
		return "breaker-trip"
	case EvQuarantineFlush:
		return "quarantine-flush"
	case EvQuarantineCleared:
		return "quarantine-cleared"
	case EvRetriesExhausted:
		return "retries-exhausted"
	case EvDeadlineHit:
		return "deadline-hit"
	default:
		return fmt.Sprintf("RuntimeEventKind(%d)", int(k))
	}
}

// RuntimeEvent is one runtime lifecycle event, delivered synchronously
// on the goroutine where the transition happened. Action, when
// nonzero, is the id the flight recorder uses as trace.Span.ID, so a
// journal entry correlates to its causal span the way exemplars do.
type RuntimeEvent struct {
	Kind   RuntimeEventKind
	Domain string
	Stream string
	Action uint64
	Err    string
}

// defaultEventHook is the process-wide fallback hook, mirroring
// metrics.Default()/trace.DefaultFlight(): runtimes whose Config left
// OnEvent nil deliver here. Stored behind a pointer so installation is
// one atomic store and the no-hook probe one atomic load.
var defaultEventHook atomic.Pointer[func(RuntimeEvent)]

// SetDefaultEventHook installs (or, with nil, removes) the
// process-wide lifecycle-event hook used by runtimes whose
// Config.OnEvent is nil. The CLIs point it at the health journal
// (health.Journal.CoreEvent). The hook must be safe for concurrent
// calls — events fire from executor worker goroutines.
func SetDefaultEventHook(fn func(RuntimeEvent)) {
	if fn == nil {
		defaultEventHook.Store(nil)
		return
	}
	defaultEventHook.Store(&fn)
}

// emitEvent delivers one lifecycle event to the runtime's hook, or the
// process default when the runtime has none. Called only on failure
// paths.
func (rt *Runtime) emitEvent(ev RuntimeEvent) {
	if fn := rt.cfg.OnEvent; fn != nil {
		fn(ev)
		return
	}
	if p := defaultEventHook.Load(); p != nil {
		(*p)(ev)
	}
}

// emitResEvents turns an action's resilience note into lifecycle
// events at finish. Per-action terminal outcomes (deadline hit,
// retry budget exhausted) are journaled here rather than inside the
// retry loop so emission stays off the attempt path and each action
// yields at most one event per outcome; domain-level transitions
// (breaker trip, quarantine flush/clear) emit at their own sites in
// resilience.go / exec_real.go. Plain retries and re-routes are
// deliberately NOT journaled — a quarantined run re-routes thousands
// of actions, which would flood the ring; their volume is visible in
// hstreams_retries_total / hstreams_rerouted_total instead.
func (rt *Runtime) emitResEvents(a *Action, r *resNote, err error) {
	if !r.deadlineHit && !r.exhausted {
		return
	}
	ev := RuntimeEvent{
		Domain: a.stream.domain.spec.Name,
		Stream: a.stream.name,
		Action: a.id,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	if r.deadlineHit {
		ev.Kind = EvDeadlineHit
		rt.emitEvent(ev)
	}
	if r.exhausted {
		ev.Kind = EvRetriesExhausted
		rt.emitEvent(ev)
	}
}
