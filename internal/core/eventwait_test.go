package core

import (
	"runtime"
	"testing"
	"time"

	"hstreams/internal/platform"
)

// TestEventWaitAnyNoGoroutineLeak is a regression test for the
// wait-any path leaking one goroutine per incomplete event: waiters
// parked on a never-completing action's done channel used to outlive
// EventWait. Repeated wait-any calls against a blocked action must
// not grow the goroutine count.
func TestEventWaitAnyNoGoroutineLeak(t *testing.T) {
	rt := realRuntime(t, 0)
	gate := make(chan struct{})
	rt.RegisterKernel("block", func(*KernelCtx) { <-gate })
	rt.RegisterKernel("nop", func(*KernelCtx) {})
	// Unblock before Fini (t.Cleanup runs LIFO) so shutdown's
	// synchronize doesn't hang on the gated kernel.
	t.Cleanup(func() { close(gate) })

	host := rt.Host()
	half := host.Spec().Cores() / 2
	sBlock, err := rt.StreamCreate(host, 0, half)
	if err != nil {
		t.Fatal(err)
	}
	sQuick, err := rt.StreamCreate(host, half, half)
	if err != nil {
		t.Fatal(err)
	}
	bBlock, err := rt.Alloc1D("block", 64)
	if err != nil {
		t.Fatal(err)
	}
	bQuick, err := rt.Alloc1D("quick", 64)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := sBlock.EnqueueCompute("block", nil, []Operand{bBlock.All(InOut)}, platform.Cost{})
	if err != nil {
		t.Fatal(err)
	}

	const iters = 50
	before := runtime.NumGoroutine()
	for i := 0; i < iters; i++ {
		quick, err := sQuick.EnqueueCompute("nop", nil, []Operand{bQuick.All(InOut)}, platform.Cost{})
		if err != nil {
			t.Fatal(err)
		}
		rt.EventWait([]*Action{blocked, quick}, false)
	}
	// Released waiters need a beat to exit; poll until the count
	// settles back near the baseline.
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before+5 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if growth := after - before; growth > 5 {
		t.Fatalf("goroutines grew by %d over %d wait-any calls (leak)", growth, iters)
	}
}
