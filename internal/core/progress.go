package core

// progress.go is the stall watchdog's view of the runtime: a cheap
// per-stream progress snapshot (retirement counter, launched/pending
// split of the inflight window, breaker state) that internal/health
// polls on the sampler tick to distinguish dep-stall, link
// saturation, quarantined-domain backlog and true deadlock.

import (
	"sort"
	"time"
)

// maxProgressScan bounds the inflight-window scan per stream so a deep
// queue cannot make a watchdog tick expensive; Truncated reports when
// the bound was hit (the depth and retirement counters are exact
// regardless).
const maxProgressScan = 1024

// StreamProgress is a point-in-time progress snapshot of one stream.
type StreamProgress struct {
	// Stream and Domain name the stream and its sink domain.
	Stream string `json:"stream"`
	Domain string `json:"domain"`
	// Quarantined reports the sink domain's breaker state (always
	// false in Sim mode, which has no resilience machinery).
	Quarantined bool `json:"quarantined,omitempty"`
	// Depth is the enqueued-but-incomplete action count.
	Depth int64 `json:"depth"`
	// Retired counts actions the stream has completed since Init —
	// monotonic, so an unchanged value across a horizon with Depth > 0
	// is the watchdog's stall signal.
	Retired uint64 `json:"retired"`
	// Launched and Pending split the scanned inflight window: actions
	// handed to the executor versus actions still gated on
	// dependences. A stalled stream with Launched == 0 is blocked in
	// the dependence graph; with Launched > 0 the executor itself is
	// not making progress.
	Launched int `json:"launched"`
	Pending  int `json:"pending"`
	// Truncated reports that the window scan stopped at
	// maxProgressScan actions.
	Truncated bool `json:"truncated,omitempty"`
	// OldestAction is the id of the oldest incomplete action (zero
	// when the window is empty or the scan saw none) — the
	// flight-recorder span to chase when this stream stalls — and
	// OldestAge its age on the runtime clock.
	OldestAge    time.Duration `json:"oldest_age,omitempty"`
	OldestAction uint64        `json:"oldest_action,omitempty"`
}

// Progress snapshots every stream's progress state, taking each
// stream's lock in turn — never more than one at once, like Status —
// so it is safe from any goroutine while the runtime works. Streams
// are returned in name order for deterministic reports.
func (rt *Runtime) Progress() []StreamProgress {
	var now time.Duration
	if se, ok := rt.exec.(*simExec); ok {
		se.mu.Lock()
		now = se.hostTime
		se.mu.Unlock()
	} else {
		now = rt.exec.now()
	}
	var quarantined func(di int) bool
	if re, ok := rt.exec.(*realExec); ok {
		quarantined = func(di int) bool { return re.res.dom[di].isQuarantined() }
	}
	rt.mu.Lock()
	streams := append([]*Stream(nil), rt.streams...)
	rt.mu.Unlock()
	out := make([]StreamProgress, 0, len(streams))
	for _, s := range streams {
		sp := StreamProgress{
			Stream:  s.name,
			Domain:  s.domain.spec.Name,
			Depth:   s.ndepth.Load(),
			Retired: uint64(s.met.retired.Value()),
		}
		if quarantined != nil {
			sp.Quarantined = quarantined(s.domain.index)
		}
		s.mu.Lock()
		n := len(s.inflight)
		if n > maxProgressScan {
			n = maxProgressScan
			sp.Truncated = true
		}
		for _, a := range s.inflight[:n] {
			if a.state.Load() == stateLaunched {
				sp.Launched++
			} else {
				sp.Pending++
			}
			if sp.OldestAction == 0 || a.id < sp.OldestAction {
				sp.OldestAction = a.id
				sp.OldestAge = now - a.tEnqueue
			}
		}
		s.mu.Unlock()
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}
