package core

import (
	"fmt"
	"sync"
	"time"

	"hstreams/internal/coi"
)

// trampolineName is the sink-side symbol all compute actions dispatch
// through on card domains; it decodes operand ranges and calls the
// registered kernel.
const trampolineName = "hs.kernel"

// realExec runs actions for real: kernels execute on per-domain worker
// pools, card-domain computes travel through the COI pipeline of their
// stream, transfers move bytes over the fabric. Computes within one
// stream serialize (they own the stream's cores); transfers use
// per-link-direction DMA serialization, so compute/transfer overlap
// is real.
type realExec struct {
	rt    *Runtime
	epoch time.Time
	// dma[i] serializes the two DMA directions of domain i.
	dma []*[2]sync.Mutex
	// pools[i] runs domain i's actions. The seed spawned a goroutine
	// per action; small-action streams then paid a goroutine start +
	// exit on every launch and could pile up unbounded runnable
	// goroutines. A fixed pool sized to the domain keeps dispatch at
	// one queue push.
	pools []*workerPool
	// scratch recycles the per-compute slices (host operand views,
	// card wire args and COI buffer lists) that the seed allocated on
	// every action.
	scratch sync.Pool
}

func newRealExec(rt *Runtime) *realExec {
	re := &realExec{rt: rt, epoch: time.Now()}
	re.dma = make([]*[2]sync.Mutex, len(rt.domains))
	re.pools = make([]*workerPool, len(rt.domains))
	for i, d := range rt.domains {
		re.dma[i] = &[2]sync.Mutex{}
		re.pools[i] = newWorkerPool(re, poolWorkers(d.spec.Cores()))
	}
	re.scratch.New = func() any { return new(execScratch) }
	return re
}

// poolWorkers sizes a domain's pool: one worker per core (workers
// mostly block on computeMu/DMA mutexes, so matching the core count
// keeps every physical resource feedable) within sane bounds.
func poolWorkers(cores int) int {
	switch {
	case cores < 4:
		return 4
	case cores > 32:
		return 32
	default:
		return cores
	}
}

// workerPool is a fixed set of goroutines draining an unbounded FIFO.
// The queue is deliberately unbounded: workers call Runtime.finish,
// which launches successors back into pools — a bounded channel could
// deadlock with every worker blocked on a full queue.
type workerPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*Action
	head   int
	closed bool
}

func newWorkerPool(re *realExec, workers int) *workerPool {
	p := &workerPool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.work(re)
	}
	return p
}

func (p *workerPool) submit(a *Action) {
	p.mu.Lock()
	p.q = append(p.q, a)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *workerPool) work(re *realExec) {
	for {
		p.mu.Lock()
		for p.head == len(p.q) && !p.closed {
			p.cond.Wait()
		}
		if p.head == len(p.q) {
			p.mu.Unlock()
			return
		}
		a := p.q[p.head]
		p.q[p.head] = nil
		p.head++
		if p.head == len(p.q) {
			p.q = p.q[:0]
			p.head = 0
		}
		p.mu.Unlock()
		re.run(a)
	}
}

// close releases the workers once the queue drains. Fini synchronizes
// all work first, so nothing new arrives.
func (p *workerPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// execScratch is the recycled per-compute state.
type execScratch struct {
	ops     [][]byte
	targs   []int64
	coiBufs []*coi.Buffer
	ctx     KernelCtx
}

func (re *realExec) launch(a *Action) { re.pools[a.stream.domain.index].submit(a) }

func (re *realExec) run(a *Action) {
	var err error
	s := a.stream
	switch a.kind {
	case ActCompute:
		s.computeMu.Lock()
		a.start = re.now()
		err = re.compute(a)
		a.end = re.now()
		s.computeMu.Unlock()
	case ActXferToSink, ActXferToSrc:
		err = re.transfer(a)
	case ActSync:
		a.start = re.now()
		a.end = a.start
	}
	re.rt.finish(a, err)
}

// compute executes a kernel at the stream's sink: directly for
// host-as-target streams, through the COI pipeline for cards. Scratch
// slices are recycled — safe because kernels must not retain their
// KernelCtx, and coi.RunFunction serializes args and buffer ids
// before returning.
func (re *realExec) compute(a *Action) error {
	s := a.stream
	sc := re.scratch.Get().(*execScratch)
	defer re.scratch.Put(sc)
	if s.domain.IsHost() {
		ops := sc.ops[:0]
		for _, o := range a.ops {
			ops = append(ops, o.Buf.host[o.Off:o.Off+o.Len])
		}
		sc.ctx = KernelCtx{Args: a.args, Ops: ops, Threads: s.nCores}
		err := safeCall(a.kernelFn, &sc.ctx)
		for i := range ops {
			ops[i] = nil
		}
		sc.ops, sc.ctx = ops[:0], KernelCtx{}
		return err
	}
	// Card domain: ship [kernelID, threads, nArgs, args…, nOps,
	// (off,len)…] plus the operands' COI buffers to the sink.
	targs := sc.targs[:0]
	targs = append(targs, a.kernelID, int64(s.nCores), int64(len(a.args)))
	targs = append(targs, a.args...)
	targs = append(targs, int64(len(a.ops)))
	coiBufs := sc.coiBufs[:0]
	for _, o := range a.ops {
		targs = append(targs, o.Off, o.Len)
		coiBufs = append(coiBufs, o.Buf.inst[s.domain.index])
	}
	ev, err := s.pipeline.RunFunction(trampolineName, targs, coiBufs...)
	for i := range coiBufs {
		coiBufs[i] = nil
	}
	sc.targs, sc.coiBufs = targs[:0], coiBufs[:0]
	if err != nil {
		return err
	}
	return ev.Wait()
}

// safeCall invokes a kernel, converting panics into errors so one bad
// kernel cannot take the runtime down.
func safeCall(fn Kernel, ctx *KernelCtx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: kernel panic: %v", r)
		}
	}()
	fn(ctx)
	return nil
}

// transfer moves operand bytes between the source and sink instances.
func (re *realExec) transfer(a *Action) error {
	s := a.stream
	if s.domain.IsHost() {
		// Host-as-target streams alias instances; optimized away.
		a.start = re.now()
		a.end = a.start
		return nil
	}
	o := a.ops[0]
	cb := o.Buf.inst[s.domain.index]
	dir := 0
	if a.kind == ActXferToSrc {
		dir = 1
	}
	mu := &re.dma[s.domain.index][dir]
	mu.Lock()
	defer mu.Unlock()
	a.start = re.now()
	var err error
	if a.kind == ActXferToSink {
		_, err = cb.Write(int(o.Off), o.Buf.host[o.Off:o.Off+o.Len])
	} else {
		_, err = cb.Read(int(o.Off), o.Buf.host[o.Off:o.Off+o.Len])
	}
	a.end = re.now()
	return err
}

func (re *realExec) waitAction(a *Action) { <-a.Done() }

func (re *realExec) now() time.Duration { return time.Since(re.epoch) }

func (re *realExec) fini() {
	for _, p := range re.pools {
		p.close()
	}
}

// trampoline is the sink-side entry point registered with every COI
// process; it decodes the wire arguments built in compute.
func (rt *Runtime) trampoline(args []int64, bufs [][]byte) {
	kid, threads, nArgs := args[0], args[1], args[2]
	user := args[3 : 3+nArgs]
	rest := args[3+nArgs:]
	nOps := rest[0]
	ops := make([][]byte, nOps)
	for i := int64(0); i < nOps; i++ {
		off, ln := rest[1+2*i], rest[2+2*i]
		ops[i] = bufs[i][off : off+ln]
	}
	fn := rt.kernelByID(kid)
	if fn == nil {
		panic(fmt.Sprintf("core: sink kernel id %d not registered", kid))
	}
	fn(&KernelCtx{Args: user, Ops: ops, Threads: int(threads)})
}
