package core

import (
	"fmt"
	"sync"
	"time"

	"hstreams/internal/coi"
)

// trampolineName is the sink-side symbol all compute actions dispatch
// through on card domains; it decodes operand ranges and calls the
// registered kernel.
const trampolineName = "hs.kernel"

// realExec runs actions for real: kernels execute on goroutines,
// card-domain computes travel through the COI pipeline of their
// stream, transfers move bytes over the fabric. Computes within one
// stream serialize (they own the stream's cores); transfers use
// per-link-direction DMA serialization, so compute/transfer overlap
// is real.
type realExec struct {
	rt    *Runtime
	epoch time.Time
	// dma[i] serializes the two DMA directions of domain i.
	dma []*[2]sync.Mutex
}

func newRealExec(rt *Runtime) *realExec {
	re := &realExec{rt: rt, epoch: time.Now()}
	re.dma = make([]*[2]sync.Mutex, len(rt.domains))
	for i := range re.dma {
		re.dma[i] = &[2]sync.Mutex{}
	}
	return re
}

func (re *realExec) launch(a *Action) { go re.run(a) }

func (re *realExec) run(a *Action) {
	var err error
	s := a.stream
	switch a.kind {
	case ActCompute:
		s.computeMu.Lock()
		a.start = re.now()
		err = re.compute(a)
		a.end = re.now()
		s.computeMu.Unlock()
	case ActXferToSink, ActXferToSrc:
		err = re.transfer(a)
	case ActSync:
		a.start = re.now()
		a.end = a.start
	}
	re.rt.finish(a, err)
}

// compute executes a kernel at the stream's sink: directly for
// host-as-target streams, through the COI pipeline for cards.
func (re *realExec) compute(a *Action) error {
	s := a.stream
	if s.domain.IsHost() {
		ops := make([][]byte, len(a.ops))
		for i, o := range a.ops {
			ops[i] = o.Buf.host[o.Off : o.Off+o.Len]
		}
		return safeCall(a.kernelFn, &KernelCtx{Args: a.args, Ops: ops, Threads: s.nCores})
	}
	// Card domain: ship [kernelID, threads, nArgs, args…, nOps,
	// (off,len)…] plus the operands' COI buffers to the sink.
	targs := make([]int64, 0, 4+len(a.args)+2*len(a.ops))
	targs = append(targs, a.kernelID, int64(s.nCores), int64(len(a.args)))
	targs = append(targs, a.args...)
	targs = append(targs, int64(len(a.ops)))
	coiBufs := make([]*coi.Buffer, len(a.ops))
	for i, o := range a.ops {
		targs = append(targs, o.Off, o.Len)
		coiBufs[i] = o.Buf.inst[s.domain.index]
	}
	ev, err := s.pipeline.RunFunction(trampolineName, targs, coiBufs...)
	if err != nil {
		return err
	}
	return ev.Wait()
}

// safeCall invokes a kernel, converting panics into errors so one bad
// kernel cannot take the runtime down.
func safeCall(fn Kernel, ctx *KernelCtx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: kernel panic: %v", r)
		}
	}()
	fn(ctx)
	return nil
}

// transfer moves operand bytes between the source and sink instances.
func (re *realExec) transfer(a *Action) error {
	s := a.stream
	if s.domain.IsHost() {
		// Host-as-target streams alias instances; optimized away.
		a.start = re.now()
		a.end = a.start
		return nil
	}
	o := a.ops[0]
	cb := o.Buf.inst[s.domain.index]
	dir := 0
	if a.kind == ActXferToSrc {
		dir = 1
	}
	mu := &re.dma[s.domain.index][dir]
	mu.Lock()
	defer mu.Unlock()
	a.start = re.now()
	var err error
	if a.kind == ActXferToSink {
		_, err = cb.Write(int(o.Off), o.Buf.host[o.Off:o.Off+o.Len])
	} else {
		_, err = cb.Read(int(o.Off), o.Buf.host[o.Off:o.Off+o.Len])
	}
	a.end = re.now()
	return err
}

func (re *realExec) waitAction(a *Action) { <-a.done }

func (re *realExec) now() time.Duration { return time.Since(re.epoch) }

func (re *realExec) fini() {}

// trampoline is the sink-side entry point registered with every COI
// process; it decodes the wire arguments built in compute.
func (rt *Runtime) trampoline(args []int64, bufs [][]byte) {
	kid, threads, nArgs := args[0], args[1], args[2]
	user := args[3 : 3+nArgs]
	rest := args[3+nArgs:]
	nOps := rest[0]
	ops := make([][]byte, nOps)
	for i := int64(0); i < nOps; i++ {
		off, ln := rest[1+2*i], rest[2+2*i]
		ops[i] = bufs[i][off : off+ln]
	}
	fn := rt.kernelByID(kid)
	if fn == nil {
		panic(fmt.Sprintf("core: sink kernel id %d not registered", kid))
	}
	fn(&KernelCtx{Args: user, Ops: ops, Threads: int(threads)})
}
