package core

import (
	"fmt"
	"sync"
	"time"

	"hstreams/internal/coi"
	"hstreams/internal/fault"
)

// trampolineName is the sink-side symbol all compute actions dispatch
// through on card domains; it decodes operand ranges and calls the
// registered kernel.
const trampolineName = "hs.kernel"

// realExec runs actions for real: kernels execute on per-domain worker
// pools, card-domain computes travel through the COI pipeline of their
// stream, transfers move bytes over the fabric. Computes within one
// stream serialize (they own the stream's cores); transfers use
// per-link-direction DMA serialization, so compute/transfer overlap
// is real.
type realExec struct {
	rt    *Runtime
	epoch time.Time
	// dma[i] serializes the two DMA directions of domain i.
	dma []*[2]sync.Mutex
	// pools[i] runs domain i's actions. The seed spawned a goroutine
	// per action; small-action streams then paid a goroutine start +
	// exit on every launch and could pile up unbounded runnable
	// goroutines. A fixed pool sized to the domain keeps dispatch at
	// one queue push.
	pools []*workerPool
	// scratch recycles the per-compute slices (host operand views,
	// card wire args and COI buffer lists) that the seed allocated on
	// every action.
	scratch sync.Pool
	// res is the resilience state: retry/deadline policies and the
	// per-domain breakers (resilience.go).
	res *resState
}

func newRealExec(rt *Runtime) *realExec {
	re := &realExec{rt: rt, epoch: time.Now()}
	re.dma = make([]*[2]sync.Mutex, len(rt.domains))
	re.pools = make([]*workerPool, len(rt.domains))
	re.res = newResState(rt)
	for i, d := range rt.domains {
		re.dma[i] = &[2]sync.Mutex{}
		re.pools[i] = newWorkerPool(re, poolWorkers(d.spec.Cores()))
	}
	re.scratch.New = func() any { return new(execScratch) }
	return re
}

// poolWorkers sizes a domain's pool: one worker per core (workers
// mostly block on computeMu/DMA mutexes, so matching the core count
// keeps every physical resource feedable) within sane bounds.
func poolWorkers(cores int) int {
	switch {
	case cores < 4:
		return 4
	case cores > 32:
		return 32
	default:
		return cores
	}
}

// workerPool is a fixed set of goroutines draining an unbounded FIFO.
// The queue is deliberately unbounded: workers call Runtime.finish,
// which launches successors back into pools — a bounded channel could
// deadlock with every worker blocked on a full queue.
type workerPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*Action
	head   int
	closed bool
}

func newWorkerPool(re *realExec, workers int) *workerPool {
	p := &workerPool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.work(re)
	}
	return p
}

func (p *workerPool) submit(a *Action) {
	p.mu.Lock()
	p.q = append(p.q, a)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *workerPool) work(re *realExec) {
	for {
		p.mu.Lock()
		for p.head == len(p.q) && !p.closed {
			p.cond.Wait()
		}
		if p.head == len(p.q) {
			p.mu.Unlock()
			return
		}
		a := p.q[p.head]
		p.q[p.head] = nil
		p.head++
		if p.head == len(p.q) {
			p.q = p.q[:0]
			p.head = 0
		}
		p.mu.Unlock()
		re.run(a)
	}
}

// close releases the workers once the queue drains. Fini synchronizes
// all work first, so nothing new arrives.
func (p *workerPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// execScratch is the recycled per-compute state.
type execScratch struct {
	ops     [][]byte
	targs   []int64
	coiBufs []*coi.Buffer
	ctx     KernelCtx
}

func (re *realExec) launch(a *Action) { re.pools[a.stream.domain.index].submit(a) }

func (re *realExec) run(a *Action) {
	s := a.stream
	if a.kind == ActSync {
		a.start = re.now()
		a.end = a.start
		re.rt.finish(a, nil)
		return
	}
	if s.domain.IsHost() {
		// Host actions have no fabric or sink process to fail; they
		// bypass the resilience path entirely.
		var err error
		if a.kind == ActCompute {
			s.computeMu.Lock()
			a.start = re.now()
			err = re.computeHost(a)
			a.end = re.now()
			s.computeMu.Unlock()
		} else {
			// Host-as-target streams alias instances; optimized away.
			a.start = re.now()
			a.end = a.start
		}
		re.rt.finish(a, err)
		return
	}
	re.rt.finish(a, re.runCardAction(a))
}

// runCardAction executes one card-domain action under the resilience
// machinery: quarantined domains re-route to the host, everything
// else goes through the retry/deadline loop. The inflight counter
// brackets the card-side attempt window for the breaker's drain
// handshake (see resilience.go); a re-routing action must leave the
// window first or the drain would wait on it forever.
func (re *realExec) runCardAction(a *Action) error {
	dr := re.res.dom[a.stream.domain.index]
	if dr.isQuarantined() {
		return re.runRerouted(a, dr)
	}
	dr.inflight.Add(1)
	if dr.isQuarantined() {
		// Raced with the breaker trip: step back out and re-route.
		dr.inflight.Add(-1)
		return re.runRerouted(a, dr)
	}
	err := re.runCard(a, dr)
	dr.inflight.Add(-1)
	if _, ok := err.(*needReroute); ok {
		return re.runRerouted(a, dr)
	}
	return err
}

// runCard is the retry/deadline loop around one card action's
// attempts. The order of checks after a failed attempt matters:
// fatal errors are final, then the deadline (so a doomed action stops
// burning the link), then quarantine (the breaker may have tripped —
// possibly by our own failure — and re-routing beats retrying into a
// dead domain), then the retry budget.
func (re *realExec) runCard(a *Action, dr *domainRes) error {
	rp := re.res.retry
	dl := re.res.deadline
	var t0 time.Duration
	if dl > 0 {
		t0 = re.now()
	}
	for attempt := 0; ; attempt++ {
		err := re.attemptCard(a)
		if err == nil {
			dr.succeed(a)
			return nil
		}
		if !fault.IsTransient(err) {
			return err
		}
		dr.fail()
		if dl > 0 && re.now()-t0 >= dl {
			a.resNote().deadlineHit = true
			dr.deadlines.Inc()
			return fmt.Errorf("%w: %s after %d attempt(s), last error: %v",
				ErrDeadlineExceeded, a.kind, attempt+1, err)
		}
		if dr.isQuarantined() {
			return &needReroute{cause: err}
		}
		if attempt >= rp.Max {
			if rp.Max > 0 {
				// Budget consumed (not merely absent): mark the note so
				// finish emits EvRetriesExhausted off the attempt path.
				a.resNote().exhausted = true
			}
			return err
		}
		wait := rp.wait(a.id, attempt)
		note := a.resNote()
		note.retries++
		note.retryWait += wait
		dr.retries.Inc()
		if wait > 0 {
			time.Sleep(wait)
		}
	}
}

// attemptCard makes one attempt at a card action. Failed attempts
// have no side effects — injection fires before any bytes move or any
// descriptor is sent — so attempts may repeat freely. a.start is
// stamped once (first attempt) and a.end after every attempt, so the
// recorded duration spans retries and backoff.
func (re *realExec) attemptCard(a *Action) error {
	s := a.stream
	if a.kind == ActCompute {
		s.computeMu.Lock()
		if !a.started {
			a.start = re.now()
			a.started = true
		}
		err := re.computeCard(a)
		a.end = re.now()
		s.computeMu.Unlock()
		return err
	}
	o := a.ops[0]
	cb := o.Buf.inst[s.domain.index]
	dir := 0
	if a.kind == ActXferToSrc {
		dir = 1
	}
	mu := &re.dma[s.domain.index][dir]
	mu.Lock()
	defer mu.Unlock()
	if !a.started {
		a.start = re.now()
		a.started = true
	}
	var err error
	if a.kind == ActXferToSink {
		_, err = cb.Write(int(o.Off), o.Buf.host[o.Off:o.Off+o.Len])
	} else {
		_, err = cb.Read(int(o.Off), o.Buf.host[o.Off:o.Off+o.Len])
	}
	a.end = re.now()
	return err
}

// runRerouted executes a card-bound action on the host domain after
// its domain quarantined: computes run against the host instances,
// transfers become no-ops (host-as-target aliasing). Dependence
// analysis already ran against the original domain and is NOT redone —
// the partial order is a property of the program, not of where
// actions execute — so the FIFO-with-overlap semantic is preserved
// (DESIGN.md §6). The first re-routed action performs the quarantine
// drain + dirty-range flush inside awaitFlush.
func (re *realExec) runRerouted(a *Action, dr *domainRes) error {
	if err := dr.awaitFlush(re); err != nil {
		return err
	}
	a.resNote().rerouted = true
	dr.rerouted.Inc()
	s := a.stream
	if a.kind == ActCompute {
		s.computeMu.Lock()
		if !a.started {
			a.start = re.now()
			a.started = true
		}
		err := re.computeHost(a)
		a.end = re.now()
		s.computeMu.Unlock()
		return err
	}
	// The host instance is now the action's source AND sink.
	if !a.started {
		a.start = re.now()
		a.started = true
	}
	a.end = re.now()
	return nil
}

// computeHost executes a kernel against the host instances — the
// host-as-target path, also used for re-routed card computes. Scratch
// slices are recycled — safe because kernels must not retain their
// KernelCtx.
func (re *realExec) computeHost(a *Action) error {
	sc := re.scratch.Get().(*execScratch)
	defer re.scratch.Put(sc)
	ops := sc.ops[:0]
	for _, o := range a.ops {
		ops = append(ops, o.Buf.host[o.Off:o.Off+o.Len])
	}
	sc.ctx = KernelCtx{Args: a.args, Ops: ops, Threads: a.stream.nCores}
	err := safeCall(a.kernelFn, &sc.ctx)
	for i := range ops {
		ops[i] = nil
	}
	sc.ops, sc.ctx = ops[:0], KernelCtx{}
	return err
}

// computeCard ships one kernel invocation through the stream's COI
// pipeline: [kernelID, threads, nArgs, args…, nOps, (off,len)…] plus
// the operands' COI buffers. Scratch recycling is safe because
// coi.RunFunction serializes args and buffer ids before returning.
func (re *realExec) computeCard(a *Action) error {
	s := a.stream
	sc := re.scratch.Get().(*execScratch)
	defer re.scratch.Put(sc)
	targs := sc.targs[:0]
	targs = append(targs, a.kernelID, int64(s.nCores), int64(len(a.args)))
	targs = append(targs, a.args...)
	targs = append(targs, int64(len(a.ops)))
	coiBufs := sc.coiBufs[:0]
	for _, o := range a.ops {
		targs = append(targs, o.Off, o.Len)
		coiBufs = append(coiBufs, o.Buf.inst[s.domain.index])
	}
	ev, err := s.pipeline.RunFunction(trampolineName, targs, coiBufs...)
	for i := range coiBufs {
		coiBufs[i] = nil
	}
	sc.targs, sc.coiBufs = targs[:0], coiBufs[:0]
	if err != nil {
		return err
	}
	return ev.Wait()
}

// safeCall invokes a kernel, converting panics into errors so one bad
// kernel cannot take the runtime down.
func safeCall(fn Kernel, ctx *KernelCtx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: kernel panic: %v", r)
		}
	}()
	fn(ctx)
	return nil
}

func (re *realExec) waitAction(a *Action) { <-a.Done() }

func (re *realExec) now() time.Duration { return time.Since(re.epoch) }

func (re *realExec) fini() {
	for _, p := range re.pools {
		p.close()
	}
	// Quarantine is one-way for the runtime's lifetime (re-admission is
	// re-Init, per OPERATIONS.md), so teardown is where degraded state
	// formally ends: return the gauges the health rules watch to 0 and
	// journal the clear, letting a /debug/health verdict recover after
	// the run instead of pinning critical forever.
	for _, dr := range re.res.dom {
		if dr.quarantined.Load() {
			dr.quarGauge.Set(0)
			dr.emit(RuntimeEvent{Kind: EvQuarantineCleared, Domain: dr.name})
		}
	}
}

// trampoline is the sink-side entry point registered with every COI
// process; it decodes the wire arguments built in compute.
func (rt *Runtime) trampoline(args []int64, bufs [][]byte) {
	kid, threads, nArgs := args[0], args[1], args[2]
	user := args[3 : 3+nArgs]
	rest := args[3+nArgs:]
	nOps := rest[0]
	ops := make([][]byte, nOps)
	for i := int64(0); i < nOps; i++ {
		off, ln := rest[1+2*i], rest[2+2*i]
		ops[i] = bufs[i][off : off+ln]
	}
	fn := rt.kernelByID(kid)
	if fn == nil {
		panic(fmt.Sprintf("core: sink kernel id %d not registered", kid))
	}
	fn(&KernelCtx{Args: user, Ops: ops, Threads: int(threads)})
}
