package core

import (
	"bytes"
	"errors"
	"testing"

	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// tracedRuntime is simRuntime/realRuntime with a private flight
// recorder, so checkpoint tests never race other tests for the
// process-wide ring.
func tracedRuntime(t *testing.T, mode Mode, cards int) (*Runtime, *trace.FlightRecorder) {
	t.Helper()
	fl := trace.NewFlight(1 << 13)
	rt, err := Init(Config{
		Machine: platform.HSWPlusKNC(cards),
		Mode:    mode,
		Metrics: metrics.New(),
		Flight:  fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	return rt, fl
}

// buildCkptDAG enqueues a small but shapeful DAG: transfers, computes
// with operand dependences, a marker, and a cross-stream event-wait —
// one action of every checkpoint kind and one dependence edge of every
// DepKind.
func buildCkptDAG(t *testing.T, rt *Runtime, kernel string) {
	t.Helper()
	card := rt.Card(0)
	s1, err := rt.StreamCreate(card, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rt.StreamCreate(card, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, f, err := rt.AllocFloat64("b", 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		f[i] = float64(i)
	}
	c, _, err := rt.AllocFloat64("c", 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.EnqueueXferAll(b, ToSink); err != nil {
		t.Fatal(err)
	}
	ev, err := s1.EnqueueCompute(kernel, []int64{2}, []Operand{b.All(InOut)}, simCost(256))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.EnqueueMarker(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.EnqueueXferAll(c, ToSink); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.EnqueueEventWait(ev); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.EnqueueCompute(kernel, []int64{3}, []Operand{c.All(InOut)}, simCost(256)); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.EnqueueXferAll(c, ToSource); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
}

// checkpointOf builds the DAG, drains it, and cuts its checkpoint.
func checkpointOf(t *testing.T, mode Mode) *Checkpoint {
	t.Helper()
	rt, _ := tracedRuntime(t, mode, 1)
	kernel := "k"
	if mode == ModeReal {
		registerTestKernels(rt)
		kernel = "scale"
	}
	buildCkptDAG(t, rt, kernel)
	ck, err := rt.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// assertReplayDeterministic replays the checkpoint twice and demands
// identical DAGs, makespans, and critical-path attribution — the
// PR's replay-determinism acceptance criterion.
func assertReplayDeterministic(t *testing.T, ck *Checkpoint) {
	t.Helper()
	r1, err := ck.Replay()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ck.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Actions != len(ck.Actions) || r2.Actions != len(ck.Actions) {
		t.Fatalf("replayed %d and %d actions, checkpoint has %d", r1.Actions, r2.Actions, len(ck.Actions))
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("replay makespans differ: %v vs %v", r1.Makespan, r2.Makespan)
	}
	if r1.Report.CategorySum() != r2.Report.CategorySum() {
		t.Fatalf("replay category sums differ: %v vs %v", r1.Report.CategorySum(), r2.Report.CategorySum())
	}
	for cat, v := range r1.Report.Categories {
		if r2.Report.Categories[cat] != v {
			t.Fatalf("category %q differs across replays: %v vs %v", cat, v, r2.Report.Categories[cat])
		}
	}
}

func TestCheckpointReplayDeterministicSim(t *testing.T) {
	ck := checkpointOf(t, ModeSim)
	if len(ck.Streams) != 2 || len(ck.Actions) != 7 {
		t.Fatalf("checkpoint has %d streams, %d actions; want 2 and 7", len(ck.Streams), len(ck.Actions))
	}
	assertReplayDeterministic(t, ck)
}

// TestCheckpointReplayDeterministicReal cuts the checkpoint from a
// Real-mode run — real goroutine scheduling, real transfers — and
// replays it in Sim, where the DAG must still be edge-for-edge the
// one the Real run recorded.
func TestCheckpointReplayDeterministicReal(t *testing.T) {
	ck := checkpointOf(t, ModeReal)
	if ck.Mode != ModeReal.String() {
		t.Fatalf("checkpoint mode = %q, want %q", ck.Mode, ModeReal.String())
	}
	assertReplayDeterministic(t, ck)
}

// TestCheckpointRecordsEdgeKinds pins the serialized dependence-edge
// vocabulary: the DAG above must contain at least one fifo, one sync
// (marker), and one event (cross-stream wait) edge, each naming an
// earlier action.
func TestCheckpointRecordsEdgeKinds(t *testing.T) {
	ck := checkpointOf(t, ModeSim)
	seen := map[string]bool{}
	for i, ca := range ck.Actions {
		for _, d := range ca.Deps {
			if d.Pred < 0 || d.Pred >= i {
				t.Fatalf("action %d has non-backward dep on %d", i, d.Pred)
			}
			seen[d.Why] = true
		}
	}
	for _, why := range []string{"fifo", "sync", "event"} {
		if !seen[why] {
			t.Fatalf("no %q edge in checkpoint; saw %v", why, seen)
		}
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	ck := checkpointOf(t, ModeSim)
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Version != CheckpointVersion || dec.Run != ck.Run || dec.Mode != ck.Mode {
		t.Fatalf("decoded header = %+v, want version %d run %d mode %q", dec, CheckpointVersion, ck.Run, ck.Mode)
	}
	if len(dec.Streams) != len(ck.Streams) || len(dec.Actions) != len(ck.Actions) {
		t.Fatalf("decoded %d streams, %d actions; want %d, %d",
			len(dec.Streams), len(dec.Actions), len(ck.Streams), len(ck.Actions))
	}
	for i := range ck.Actions {
		a, b := ck.Actions[i], dec.Actions[i]
		if a.Kind != b.Kind || a.Stream != b.Stream || a.Bytes != b.Bytes || a.Cost != b.Cost || len(a.Deps) != len(b.Deps) {
			t.Fatalf("action %d did not round-trip: %+v vs %+v", i, a, b)
		}
	}
	// The decoded file replays like the in-memory checkpoint.
	assertReplayDeterministic(t, dec)
}

func TestCheckpointVersionMismatch(t *testing.T) {
	ck := checkpointOf(t, ModeSim)
	ck.Version = CheckpointVersion + 1
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(&buf); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("decoding future version: err = %v, want ErrCheckpointVersion", err)
	}
}

func TestCheckpointDecodeRejectsInvalid(t *testing.T) {
	ck := checkpointOf(t, ModeSim)
	ck.Actions[0].Deps = append(ck.Actions[0].Deps, CkptDep{Pred: len(ck.Actions), Why: "fifo"})
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(&buf); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("decoding forward dep: err = %v, want ErrCheckpointInvalid", err)
	}
}

// TestCheckpointEvictedRun covers both eviction shapes: a run id the
// recorder never saw, and a ring too small to retain the whole run.
func TestCheckpointEvictedRun(t *testing.T) {
	if _, err := CheckpointRun(trace.NewFlight(16), 12345); !errors.Is(err, ErrCheckpointEvicted) {
		t.Fatalf("unknown run: err = %v, want ErrCheckpointEvicted", err)
	}

	fl := trace.NewFlight(4) // far smaller than the DAG below
	rt, err := Init(Config{
		Machine: platform.HSWPlusKNC(1),
		Mode:    ModeSim,
		Metrics: metrics.New(),
		Flight:  fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	buildCkptDAG(t, rt, "k")
	if _, err := rt.Checkpoint(); !errors.Is(err, ErrCheckpointEvicted) {
		t.Fatalf("partially evicted run: err = %v, want ErrCheckpointEvicted", err)
	}
}
