package core

import (
	"testing"
	"time"

	"hstreams/internal/platform"
)

func simCost(n int) platform.Cost {
	return platform.Cost{Kernel: platform.KDGEMM, Flops: 2 * float64(n) * float64(n) * float64(n), N: n}
}

func TestSimComputeDurationMatchesModel(t *testing.T) {
	rt := simRuntime(t, 1)
	card := rt.Card(0)
	s, err := rt.StreamCreate(card, 0, card.Spec().Cores())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := rt.Alloc1D("b", 1<<20)
	cost := simCost(2400)
	a, err := s.EnqueueCompute("dgemm", nil, []Operand{b.All(InOut)}, cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	start, end := a.Times()
	want := platform.ComputeTime(card.Spec(), card.Spec().Cores(), cost)
	if end-start != want {
		t.Fatalf("duration = %v, want %v", end-start, want)
	}
}

func TestSimTransferDurationMatchesLink(t *testing.T) {
	rt := simRuntime(t, 1)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 16)
	b, _ := rt.Alloc1D("b", 8<<20)
	a, err := s.EnqueueXferAll(b, ToSink)
	if err != nil {
		t.Fatal(err)
	}
	a.Wait()
	start, end := a.Times()
	want := rt.Machine().Link.TransferTime(8 << 20)
	if end-start != want {
		t.Fatalf("transfer duration = %v, want %v", end-start, want)
	}
	if rt.SimLinkBusy(rt.Card(0).Index(), 0) != want {
		t.Fatalf("link busy accounting = %v, want %v", rt.SimLinkBusy(1, 0), want)
	}
	if rt.SimLinkBusy(rt.Card(0).Index(), 1) != 0 {
		t.Fatal("wrong direction accounted")
	}
}

func TestSimHostTransferIsFree(t *testing.T) {
	rt := simRuntime(t, 0)
	s, _ := rt.StreamCreate(rt.Host(), 0, 4)
	b, _ := rt.Alloc1D("b", 64<<20)
	a, _ := s.EnqueueXferAll(b, ToSink)
	a.Wait()
	start, end := a.Times()
	if end != start {
		t.Fatalf("host-as-target transfer took %v, want 0 (optimized away)", end-start)
	}
}

func TestSimTransferOverlapsCompute(t *testing.T) {
	// Paper §II: "if compute task A is enqueued, followed by a
	// transfer of data for independent task B, then B's data transfer
	// may proceed out of order, concurrent with the execution of A."
	rt := simRuntime(t, 1)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	a, _ := rt.Alloc1D("a", 1<<20)
	b, _ := rt.Alloc1D("b", 1<<20)
	comp, _ := s.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(2400))
	xfer, _ := s.EnqueueXferAll(b, ToSink)
	rt.ThreadSynchronize()
	_, compEnd := comp.Times()
	xferStart, xferEnd := xfer.Times()
	if xferStart >= compEnd {
		t.Fatalf("independent transfer serialized after compute: xfer [%v,%v), compute ends %v", xferStart, xferEnd, compEnd)
	}
}

func TestSimDependentComputesSerialize(t *testing.T) {
	rt := simRuntime(t, 1)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	b, _ := rt.Alloc1D("b", 1<<20)
	c1, _ := s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(1000))
	c2, _ := s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(1000))
	rt.ThreadSynchronize()
	_, e1 := c1.Times()
	s2, _ := c2.Times()
	if s2 < e1 {
		t.Fatalf("dependent compute started at %v before predecessor ended at %v", s2, e1)
	}
}

func TestSimStreamSlotSerializesIndependentComputes(t *testing.T) {
	// Two independent computes in ONE stream share the sink's cores,
	// so they serialize; in TWO streams they overlap.
	rt := simRuntime(t, 1)
	a, _ := rt.Alloc1D("a", 1<<20)
	b, _ := rt.Alloc1D("b", 1<<20)

	one, _ := rt.StreamCreate(rt.Card(0), 0, 30)
	c1, _ := one.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(1200))
	c2, _ := one.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(1200))
	rt.ThreadSynchronize()
	_, e1 := c1.Times()
	st2, _ := c2.Times()
	if st2 < e1 {
		t.Fatalf("one stream: computes overlapped [%v vs %v)", st2, e1)
	}

	sA, _ := rt.StreamCreate(rt.Card(0), 0, 30)
	sB, _ := rt.StreamCreate(rt.Card(0), 30, 30)
	d1, _ := sA.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(1200))
	d2, _ := sB.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(1200))
	rt.ThreadSynchronize()
	d1s, d1e := d1.Times()
	d2s, d2e := d2.Times()
	if d2s >= d1e || d1s >= d2e {
		t.Fatalf("two streams: computes did not overlap: [%v,%v) vs [%v,%v)", d1s, d1e, d2s, d2e)
	}
}

func TestSimSourceOverheadAccumulates(t *testing.T) {
	rt, err := Init(Config{
		Machine:        platform.HSWPlusKNC(0),
		Mode:           ModeSim,
		SourceOverhead: 3 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	s, _ := rt.StreamCreate(rt.Host(), 0, 4)
	var last *Action
	for i := 0; i < 100; i++ {
		last, _ = s.EnqueueMarker()
	}
	last.Wait()
	start, _ := last.Times()
	if want := 300 * time.Microsecond; start != want {
		t.Fatalf("100th enqueue ready at %v, want %v", start, want)
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() time.Duration {
		rt, _ := Init(Config{Machine: platform.HSWPlusKNC(2), Mode: ModeSim})
		defer rt.Fini()
		var streams []*Stream
		for c := 0; c < 2; c++ {
			s, _ := rt.StreamCreate(rt.Card(c), 0, 30)
			streams = append(streams, s)
		}
		bufs := make([]*Buf, 8)
		for i := range bufs {
			bufs[i], _ = rt.Alloc1D("b", 4<<20)
		}
		for i, b := range bufs {
			s := streams[i%2]
			s.EnqueueXferAll(b, ToSink)
			s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(1600))
			s.EnqueueXferAll(b, ToSource)
		}
		rt.ThreadSynchronize()
		return rt.Trace().Makespan()
	}
	m1, m2 := run(), run()
	if m1 != m2 || m1 <= 0 {
		t.Fatalf("non-deterministic sim: %v vs %v", m1, m2)
	}
}

func TestSimCrossStreamEventWait(t *testing.T) {
	rt := simRuntime(t, 2)
	s1, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	s2, _ := rt.StreamCreate(rt.Card(1), 0, 61)
	a, _ := rt.Alloc1D("a", 1<<20)
	b, _ := rt.Alloc1D("b", 1<<20)
	c1, _ := s1.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(2000))
	if _, err := s2.EnqueueEventWait(c1); err != nil {
		t.Fatal(err)
	}
	c2, _ := s2.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(500))
	rt.ThreadSynchronize()
	_, e1 := c1.Times()
	st2, _ := c2.Times()
	if st2 < e1 {
		t.Fatalf("event wait ignored: c2 start %v < c1 end %v", st2, e1)
	}
}

func TestSimEventWaitAny(t *testing.T) {
	rt := simRuntime(t, 1)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	a, _ := rt.Alloc1D("a", 1<<20)
	b, _ := rt.Alloc1D("b", 1<<20)
	fast, _ := s.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(200))
	slow, _ := s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(4000))
	rt.EventWait([]*Action{slow, fast}, false)
	if !fast.Completed() {
		t.Fatal("EventWait(any) did not complete the fast action")
	}
	rt.ThreadSynchronize()
	_ = slow
}

func TestSimNowAdvances(t *testing.T) {
	rt := simRuntime(t, 1)
	if rt.Now() != 0 {
		t.Fatal("virtual clock must start at zero")
	}
	s, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	b, _ := rt.Alloc1D("b", 1<<20)
	s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(2000))
	rt.ThreadSynchronize()
	if rt.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestSimTraceRecords(t *testing.T) {
	rt := simRuntime(t, 1)
	s, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	b, _ := rt.Alloc1D("b", 2<<20)
	s.EnqueueXferAll(b, ToSink)
	s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(1000))
	s.EnqueueXferAll(b, ToSource)
	rt.ThreadSynchronize()
	recs := rt.Trace().Records()
	if len(recs) != 3 {
		t.Fatalf("trace has %d records, want 3", len(recs))
	}
	if rt.Trace().TotalBytes() != 2*(2<<20) {
		t.Fatalf("TotalBytes = %d", rt.Trace().TotalBytes())
	}
	if rt.Trace().TotalFlops() != simCost(1000).Flops {
		t.Fatalf("TotalFlops = %v", rt.Trace().TotalFlops())
	}
}

func TestSimAsyncAllocRemovesAllocStalls(t *testing.T) {
	// §VII: "making MIC-side memory allocation asynchronous is a
	// bottleneck; this feature is now forthcoming" — implemented
	// here. With synchronous allocation the source thread stalls per
	// buffer per card; with AsyncAlloc it does not.
	run := func(async bool) time.Duration {
		rt, err := Init(Config{Machine: platform.HSWPlusKNC(2), Mode: ModeSim, AsyncAlloc: async})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Fini()
		s, _ := rt.StreamCreate(rt.Card(0), 0, 61)
		var last *Action
		for i := 0; i < 32; i++ {
			b, err := rt.Alloc1D("b", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			last, _ = s.EnqueueXferAll(b, ToSink)
		}
		last.Wait()
		rt.ThreadSynchronize()
		return rt.Trace().Makespan()
	}
	sync := run(false)
	async := run(true)
	if async >= sync {
		t.Fatalf("async alloc did not help: %v vs %v", async, sync)
	}
	// 32 buffers × 2 cards × FreshAllocCost of stalls should be
	// roughly the difference.
	if sync-async < 10*time.Millisecond {
		t.Fatalf("alloc stall savings implausibly small: %v", sync-async)
	}
}

func TestSimRemoteDomainUsesFabricLink(t *testing.T) {
	// §IV: streams can be created on devices residing in remote
	// nodes, reached over fabric — with exactly the same interface,
	// just a slower interconnect.
	m := platform.HSWPlusKNC(1).AddRemote(platform.HSW(), platform.Fabric())
	rt, err := Init(Config{Machine: m, Mode: ModeSim})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	local, _ := rt.StreamCreate(rt.Card(0), 0, 16)
	remote, err := rt.StreamCreate(rt.Card(1), 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := rt.Alloc1D("b", 8<<20)
	lx, _ := local.EnqueueXferAll(b, ToSink)
	rx, _ := remote.EnqueueXferAll(b, ToSink)
	rt.ThreadSynchronize()
	ls, le := lx.Times()
	rs, re := rx.Times()
	if le-ls != m.Link.TransferTime(8<<20) {
		t.Fatalf("local transfer = %v, want PCIe %v", le-ls, m.Link.TransferTime(8<<20))
	}
	if re-rs != platform.Fabric().TransferTime(8<<20) {
		t.Fatalf("remote transfer = %v, want fabric %v", re-rs, platform.Fabric().TransferTime(8<<20))
	}
	if re-rs <= le-ls {
		t.Fatal("remote transfer should be slower than local")
	}
}

func TestSimSharedSlotStreamsContend(t *testing.T) {
	// StreamCreateOn(share) maps two streams onto common resources
	// (§II: tuners may map multiple streams onto a common set of
	// resources): their computes must serialize even though the
	// streams are distinct.
	rt := simRuntime(t, 1)
	card := rt.Card(0)
	s1, err := rt.StreamCreate(card, 0, 61)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rt.StreamCreateOn(card, 0, 61, s1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rt.Alloc1D("a", 1<<20)
	b, _ := rt.Alloc1D("b", 1<<20)
	c1, _ := s1.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(1500))
	c2, _ := s2.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, simCost(1500))
	rt.ThreadSynchronize()
	s1s, s1e := c1.Times()
	s2s, s2e := c2.Times()
	if s2s < s1e && s1s < s2e {
		t.Fatalf("shared-slot computes overlapped: [%v,%v) vs [%v,%v)", s1s, s1e, s2s, s2e)
	}
}

func TestStreamCreateOnValidation(t *testing.T) {
	rt := simRuntime(t, 2)
	s1, _ := rt.StreamCreate(rt.Card(0), 0, 16)
	if _, err := rt.StreamCreateOn(rt.Card(1), 0, 16, s1); err != ErrBadStream {
		t.Fatalf("cross-domain share err = %v, want ErrBadStream", err)
	}
}

func TestSimExplicitDepsDoNotBarricade(t *testing.T) {
	// EnqueueComputeDeps attaches a cross-stream dependence to ONE
	// action; later independent actions in the stream may still
	// overtake it — unlike EnqueueEventWait, which bars the stream.
	rt := simRuntime(t, 2)
	s1, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	s2, _ := rt.StreamCreate(rt.Card(1), 0, 61)
	a, _ := rt.Alloc1D("a", 1<<20)
	b, _ := rt.Alloc1D("b", 1<<20)
	c, _ := rt.Alloc1D("c", 1<<20)
	slow, _ := s1.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(3000))
	dep, err := s2.EnqueueComputeDeps("k", nil, []Operand{b.All(InOut)}, simCost(500), []*Action{slow})
	if err != nil {
		t.Fatal(err)
	}
	free, _ := s2.EnqueueCompute("k", nil, []Operand{c.All(InOut)}, simCost(500))
	rt.ThreadSynchronize()
	_, slowEnd := slow.Times()
	depStart, _ := dep.Times()
	_, freeEnd := free.Times()
	if depStart < slowEnd {
		t.Fatalf("explicit dep violated: %v < %v", depStart, slowEnd)
	}
	if freeEnd > slowEnd {
		t.Fatalf("independent action was barricaded: free ends %v after slow ends %v", freeEnd, slowEnd)
	}
}

func TestSimXferDeps(t *testing.T) {
	rt := simRuntime(t, 2)
	s1, _ := rt.StreamCreate(rt.Card(0), 0, 61)
	s2, _ := rt.StreamCreate(rt.Card(1), 0, 61)
	a, _ := rt.Alloc1D("a", 1<<20)
	b, _ := rt.Alloc1D("b", 4<<20)
	comp, _ := s1.EnqueueCompute("k", nil, []Operand{a.All(InOut)}, simCost(2000))
	x, err := s2.EnqueueXferDeps(b, 0, b.Size(), ToSink, []*Action{comp})
	if err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
	_, ce := comp.Times()
	xs, _ := x.Times()
	if xs < ce {
		t.Fatalf("xfer dep violated: %v < %v", xs, ce)
	}
}
