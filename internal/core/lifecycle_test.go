package core

import (
	"errors"
	"sync"
	"testing"

	"hstreams/internal/metrics"
	"hstreams/internal/platform"
)

// isoRuntime builds a runtime with a private metrics registry so the
// lifecycle tests can assert absolute counter values without
// interference from other tests sharing metrics.Default().
func isoRuntime(t *testing.T, mode Mode, cards int) *Runtime {
	t.Helper()
	rt, err := Init(Config{
		Machine: platform.HSWPlusKNC(cards),
		Mode:    mode,
		Metrics: metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	return rt
}

// TestFreeReclaimsImmediately checks that freeing an idle buffer
// recycles it on the spot: live count drops, proxy range returns to
// the allocator, and reuse gets the recycled address.
func TestFreeReclaimsImmediately(t *testing.T) {
	rt := isoRuntime(t, ModeReal, 1)
	a, err := rt.Alloc1D("a", 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("b", 4096)
	if err != nil {
		t.Fatal(err)
	}
	proxyA := a.ProxyBase()
	live0 := rt.mets.buffersLive.Value()
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if !a.Freed() {
		t.Fatal("Freed() = false after Free")
	}
	if got := rt.mets.buffersLive.Value(); got != live0-1 {
		t.Fatalf("buffers_live = %d after Free, want %d", got, live0-1)
	}
	if rt.mets.reclaimDeferred.Value() != 0 {
		t.Fatal("idle free must not defer reclamation")
	}
	// The recycled proxy range is handed to the next same-size alloc.
	c, err := rt.Alloc1D("c", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if c.ProxyBase() != proxyA {
		t.Fatalf("reused buffer proxy = %#x, want recycled %#x", c.ProxyBase(), proxyA)
	}
	if c.ProxyBase() == b.ProxyBase() {
		t.Fatal("recycled range collides with a live buffer")
	}
}

// TestDoubleFree pins the error contract: the second Free (and any
// later one) fails with ErrBufferFreed.
func TestDoubleFree(t *testing.T) {
	rt := simRuntime(t, 0)
	b, err := rt.Alloc1D("b", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(); !errors.Is(err, ErrBufferFreed) {
		t.Fatalf("second Free = %v, want ErrBufferFreed", err)
	}
}

// TestUseAfterFreeRejected pins the guard: enqueuing against a freed
// buffer fails with ErrBufferFreed instead of touching freed state.
func TestUseAfterFreeRejected(t *testing.T) {
	rt := realRuntime(t, 0)
	registerTestKernels(rt)
	b, err := rt.Alloc1D("b", 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueCompute("scale", []int64{2}, []Operand{b.All(InOut)}, platform.Cost{}); !errors.Is(err, ErrBufferFreed) {
		t.Fatalf("EnqueueCompute on freed buffer = %v, want ErrBufferFreed", err)
	}
	if _, err := s.EnqueueXferAll(b, ToSink); !errors.Is(err, ErrBufferFreed) {
		t.Fatalf("EnqueueXferAll on freed buffer = %v, want ErrBufferFreed", err)
	}
}

// TestDeferredReclamation frees a buffer while an action is still
// reading it: reclamation must wait for retirement (the dependence
// index still holds the in-flight reader), then complete.
func TestDeferredReclamation(t *testing.T) {
	rt := isoRuntime(t, ModeReal, 0)
	registerTestKernels(rt)
	src, fs, err := rt.AllocFloat64("src", 8)
	if err != nil {
		t.Fatal(err)
	}
	dst, fd, err := rt.AllocFloat64("dst", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		fs[i] = float64(i + 1)
	}
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// slowcopy holds src in flight for ~50ms.
	if _, err := s.EnqueueCompute("slowcopy", []int64{50}, []Operand{src.All(In), dst.All(Out)}, platform.Cost{}); err != nil {
		t.Fatal(err)
	}
	if err := src.Free(); err != nil {
		t.Fatal(err)
	}
	if rt.mets.reclaimDeferred.Value() != 1 {
		t.Fatalf("reclaim_deferred = %d, want 1 (reader still in flight)", rt.mets.reclaimDeferred.Value())
	}
	// Freed-but-not-reclaimed: new work is rejected immediately...
	if _, err := s.EnqueueCompute("scale", []int64{2}, []Operand{src.All(InOut)}, platform.Cost{}); !errors.Is(err, ErrBufferFreed) {
		t.Fatalf("enqueue during free-pending = %v, want ErrBufferFreed", err)
	}
	// ...but the in-flight reader completes against intact data.
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	for i := range fd {
		if fd[i] != float64(i+1) {
			t.Fatalf("dst[%d] = %v, want %v — reader saw reclaimed memory", i, fd[i], i+1)
		}
	}
	if got := rt.mets.proxyRecycled.Value(); got != 1 {
		t.Fatalf("proxy_recycled = %d after retirement, want 1", got)
	}
}

// TestFreeReuseDifferential runs the same dependent-chain schedule
// twice — once on long-lived buffers, once freeing and reallocating
// the scratch buffer between every step — and requires bit-identical
// results. Free/reuse churn must be invisible to FIFO semantics.
// Run with -race: the recycle path races against retirement.
func TestFreeReuseDifferential(t *testing.T) {
	const steps = 40
	run := func(churn bool) []float64 {
		rt := realRuntime(t, 1)
		registerTestKernels(rt)
		acc, fa, err := rt.AllocFloat64("acc", 32)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fa {
			fa[i] = 1
		}
		s, err := rt.StreamCreate(rt.Card(0), 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.EnqueueXferAll(acc, ToSink); err != nil {
			t.Fatal(err)
		}
		scratch, _, err := rt.AllocFloat64("scratch", 32)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			// acc = acc*2 + i, staged through a copy via scratch so the
			// chain exercises multi-buffer dependences.
			if _, err := s.EnqueueCompute("copy", nil, []Operand{acc.All(In), scratch.All(Out)}, platform.Cost{}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.EnqueueCompute("affine", []int64{2, int64(i)}, []Operand{scratch.All(InOut)}, platform.Cost{}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.EnqueueCompute("copy", nil, []Operand{scratch.All(In), acc.All(Out)}, platform.Cost{}); err != nil {
				t.Fatal(err)
			}
			if churn {
				// Free with the copy possibly still in flight, then
				// immediately reallocate — the new scratch typically
				// recycles the freed proxy range.
				if err := scratch.Free(); err != nil {
					t.Fatal(err)
				}
				if scratch, _, err = rt.AllocFloat64("scratch", 32); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := s.EnqueueXferAll(acc, ToSource); err != nil {
			t.Fatal(err)
		}
		if err := s.Synchronize(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(fa))
		copy(out, fa)
		rt.Fini()
		return out
	}
	base := run(false)
	churned := run(true)
	for i := range base {
		if base[i] != churned[i] {
			t.Fatalf("churned[%d] = %v, want %v — free/reuse changed results", i, churned[i], base[i])
		}
	}
}

// TestConcurrentFreeEnqueue races Free against enqueues from another
// goroutine: every enqueue must either be admitted (and run against
// intact data) or fail with ErrBufferFreed — never crash or corrupt.
func TestConcurrentFreeEnqueue(t *testing.T) {
	for round := 0; round < 20; round++ {
		rt := realRuntime(t, 0)
		registerTestKernels(rt)
		b, err := rt.Alloc1D("b", 1024)
		if err != nil {
			t.Fatal(err)
		}
		s, err := rt.StreamCreate(rt.Host(), 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := s.EnqueueCompute("scale", []int64{1}, []Operand{b.All(InOut)}, platform.Cost{})
				if err != nil {
					if !errors.Is(err, ErrBufferFreed) {
						t.Errorf("enqueue: %v", err)
					}
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			if err := b.Free(); err != nil {
				t.Errorf("Free: %v", err)
			}
		}()
		wg.Wait()
		if err := s.Synchronize(); err != nil {
			t.Fatal(err)
		}
		rt.Fini()
	}
}

// TestFiniFreesRemaining pins the leak-check contract: Fini reclaims
// every never-freed buffer, returning hstreams_buffers_live to its
// pre-Init baseline.
func TestFiniFreesRemaining(t *testing.T) {
	rt, err := Init(Config{Machine: platform.HSWPlusKNC(0), Mode: ModeReal, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	base := rt.mets.buffersLive.Value()
	for i := 0; i < 5; i++ {
		if _, err := rt.Alloc1D("b", 256); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.mets.buffersLive.Value(); got != base+5 {
		t.Fatalf("buffers_live = %d, want %d", got, base+5)
	}
	rt.Fini()
	if got := rt.mets.buffersLive.Value(); got != base {
		t.Fatalf("buffers_live after Fini = %d, want baseline %d", got, base)
	}
}
