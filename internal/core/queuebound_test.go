package core

import (
	"errors"
	"sync"
	"testing"

	"hstreams/internal/metrics"
	"hstreams/internal/platform"
)

// TestQueueBlockBoundsDepth pins the blocking policy: with a bound of
// 4, the stream's depth peak never exceeds 4 even when 32 actions are
// offered as fast as the producer can enqueue them.
func TestQueueBlockBoundsDepth(t *testing.T) {
	rt := isoRuntime(t, ModeReal, 0)
	registerTestKernels(rt)
	const bound = 4
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetQueueBound(bound, QueueBlock)
	src, dst, err := twoBuffers(rt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := s.EnqueueCompute("slowcopy", []int64{1}, []Operand{src.All(In), dst.All(Out)}, platform.Cost{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if peak := s.met.depthPeak.Value(); peak > bound {
		t.Fatalf("queue_depth_peak = %d, want <= %d", peak, bound)
	}
	if rt.mets.blocked.With(s.Name()).Value() == 0 {
		t.Fatal("no enqueue ever blocked — the bound never engaged")
	}
}

// TestQueueShedErrQueueFull pins the shedding policy: once the window
// is full, enqueue fails fast with ErrQueueFull and the action is
// never admitted.
func TestQueueShedErrQueueFull(t *testing.T) {
	rt := isoRuntime(t, ModeReal, 0)
	registerTestKernels(rt)
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetQueueBound(2, QueueShed)
	src, dst, err := twoBuffers(rt)
	if err != nil {
		t.Fatal(err)
	}
	var sheds int
	for i := 0; i < 16; i++ {
		_, err := s.EnqueueCompute("slowcopy", []int64{20}, []Operand{src.All(In), dst.All(Out)}, platform.Cost{})
		if errors.Is(err, ErrQueueFull) {
			sheds++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if sheds == 0 {
		t.Fatal("16 slow enqueues against a depth-2 shedding stream never shed")
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if got := rt.mets.shed.With(s.Name()).Value(); got != int64(sheds) {
		t.Fatalf("hstreams_queue_shed_total = %d, want %d", got, sheds)
	}
	if peak := s.met.depthPeak.Value(); peak > 2 {
		t.Fatalf("queue_depth_peak = %d, want <= 2", peak)
	}
}

// TestShedPreservesFIFO is the load-shed differential: a dependent
// chain driven through a shedding stream must produce exactly the
// result of replaying only the accepted actions in order — a shed
// admission must never corrupt FIFO semantics for its neighbors.
func TestShedPreservesFIFO(t *testing.T) {
	rt := isoRuntime(t, ModeReal, 0)
	registerTestKernels(rt)
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetQueueBound(3, QueueShed)
	b, f, err := rt.AllocFloat64("acc", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		f[i] = 1
	}
	// Offer acc = acc*2 + i for i in [0,64); record which steps were
	// accepted. slowcopy-free chain: affine on the host domain mutates
	// the source instance directly, so no transfers are needed.
	var accepted []int64
	for i := int64(0); i < 64; i++ {
		_, err := s.EnqueueCompute("affine", []int64{2, i}, []Operand{b.All(InOut)}, platform.Cost{})
		switch {
		case err == nil:
			accepted = append(accepted, i)
		case errors.Is(err, ErrQueueFull):
			// shed: must leave no trace in the result
		default:
			t.Fatal(err)
		}
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if len(accepted) == 64 {
		t.Fatal("nothing shed — differential is vacuous; lower the bound")
	}
	want := 1.0
	for _, i := range accepted {
		want = want*2 + float64(i)
	}
	for i := range f {
		if f[i] != want {
			t.Fatalf("acc[%d] = %v, want %v (accepted-only replay) — shed corrupted the chain", i, f[i], want)
		}
	}
}

// TestQueueBoundConcurrentProducers hammers one bounded blocking
// stream from many goroutines; the peak must still respect the bound
// (admission happens inside the stream lock). Run with -race.
func TestQueueBoundConcurrentProducers(t *testing.T) {
	rt := isoRuntime(t, ModeReal, 0)
	registerTestKernels(rt)
	const bound = 3
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetQueueBound(bound, QueueBlock)
	src, dst, err := twoBuffers(rt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := s.EnqueueCompute("slowcopy", []int64{1}, []Operand{src.All(In), dst.All(Out)}, platform.Cost{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if peak := s.met.depthPeak.Value(); peak > bound {
		t.Fatalf("queue_depth_peak = %d with 8 producers, want <= %d", peak, bound)
	}
}

// TestQueueBoundSim checks the bound also holds under the simulator's
// virtual clock (the blocking path re-stamps enqueue timestamps so
// simulated wait time is attributed correctly).
func TestQueueBoundSim(t *testing.T) {
	rt, err := Init(Config{
		Machine:       platform.HSWPlusKNC(1),
		Mode:          ModeSim,
		MaxQueueDepth: 2,
		QueuePolicy:   QueueBlock,
		Metrics:       metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	s, err := rt.StreamCreate(rt.Card(0), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d, p := s.QueueBound(); d != 2 || p != QueueBlock {
		t.Fatalf("QueueBound() = %d/%v, want 2/block (config default)", d, p)
	}
	b, err := rt.Alloc1D("b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := s.EnqueueCompute("k", nil, []Operand{b.All(InOut)}, platform.Cost{Flops: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if peak := s.met.depthPeak.Value(); peak > 2 {
		t.Fatalf("sim queue_depth_peak = %d, want <= 2", peak)
	}
}

// twoBuffers allocates a small source/destination pair for copy
// kernels.
func twoBuffers(rt *Runtime) (*Buf, *Buf, error) {
	src, err := rt.Alloc1D("src", 256)
	if err != nil {
		return nil, nil, err
	}
	dst, err := rt.Alloc1D("dst", 256)
	if err != nil {
		return nil, nil, err
	}
	return src, dst, nil
}
