package metrics

import "net/http"

// ServeHTTP makes a Registry an http.Handler serving the Prometheus
// text exposition (or JSON with ?format=json), so the debug server
// mounts it directly at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteProm(w)
}
