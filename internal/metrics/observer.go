package metrics

import "time"

// Event describes one action-lifecycle transition. Kind is the
// runtime's action-kind name ("compute", "xfer→sink", "xfer→src",
// "sync"); Bytes is nonzero for transfers and Flops for computes;
// When is the transition timestamp on the runtime's clock — wall time
// since Init in Real mode, virtual time in Sim mode, so Sim-mode
// observers see paper-scale timings. Err is set only on finish
// events, for actions that failed.
type Event struct {
	Action uint64
	Kind   string
	Stream string
	Domain string
	Bytes  int64
	Flops  float64
	When   time.Duration
	Err    error
}

// Observer receives action-lifecycle events from a runtime
// (core.Runtime.AddObserver). The four hooks trace the action state
// machine:
//
//	OnEnqueue  the action entered its stream (dependences computed)
//	OnReady    its last dependence resolved
//	OnLaunch   it was handed to the executor
//	OnFinish   it completed (Err carries any failure)
//
// Actions with no pending dependences fire OnReady and OnLaunch
// immediately after OnEnqueue. Hooks are invoked without runtime
// locks held; in Real mode they may run concurrently from executor
// goroutines and, for independent actions, in any order across
// actions — implementations must be concurrency-safe and fast, as
// they sit on the action hot path. Sim mode invokes them from the
// single host goroutine.
type Observer interface {
	OnEnqueue(Event)
	OnReady(Event)
	OnLaunch(Event)
	OnFinish(Event)
}
