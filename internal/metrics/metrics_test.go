package metrics

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterSemantics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	c.Add(0)   // ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Get-or-create: same name returns the same series.
	if r.Counter("c_total", "test counter").Value() != 5 {
		t.Fatal("re-registration did not return the existing counter")
	}
}

func TestCounterVecSeparatesSeries(t *testing.T) {
	r := New()
	v := r.CounterVec("actions_total", "h", "kind")
	v.With("compute").Add(3)
	v.With("transfer").Add(7)
	if v.With("compute").Value() != 3 || v.With("transfer").Value() != 7 {
		t.Fatal("label values not separated")
	}
	if got := r.Total("actions_total"); got != 10 {
		t.Fatalf("Total = %v, want 10", got)
	}
	if got := r.Sum("actions_total", map[string]string{"kind": "compute"}); got != 3 {
		t.Fatalf("Sum(kind=compute) = %v, want 3", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := New()
	g := r.Gauge("depth", "test gauge")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(5) // lower: no effect
	if g.Value() != 7 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(20)
	if g.Value() != 20 {
		t.Fatalf("SetMax = %d, want 20", g.Value())
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "test histogram", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // ≤ 0.001
	h.Observe(time.Millisecond)       // == bound: inclusive, ≤ 0.001
	h.Observe(5 * time.Millisecond)   // ≤ 0.01
	h.Observe(time.Second)            // +Inf
	h.Observe(-time.Second)           // clamped to 0 → first bucket
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bucket shapes: %d bounds, %d cum", len(bounds), len(cum))
	}
	// Cumulative: ≤1ms: 3 (two small + clamped), ≤10ms: 4, ≤100ms: 4, +Inf: 5.
	want := []int64{3, 4, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("d_seconds", "h", nil)
	h.Observe(time.Millisecond)
	bounds, _ := h.Buckets()
	if len(bounds) != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", len(bounds), len(DefBuckets))
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "h").Inc()
	r.Gauge("b", "h").Set(1)
	r.Histogram("c_seconds", "h", nil).Observe(time.Second)
	r.CounterVec("d_total", "h", "k").With("v").Inc()
	r.GaugeVec("e", "h", "k").With("v").Set(2)
	r.HistogramVec("f_seconds", "h", nil, "k").With("v").Observe(time.Second)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteProm: err=%v len=%d", err, buf.Len())
	}
}

func TestMismatchedReregistrationPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestWritePromFormat validates the exposition output line by line:
// every family has HELP and TYPE, every sample line parses, histogram
// buckets are cumulative and end in +Inf.
func TestWritePromFormat(t *testing.T) {
	r := New()
	r.CounterVec("hs_actions_total", "Actions by kind.", "kind").With("compute").Add(3)
	r.CounterVec("hs_actions_total", "Actions by kind.", "kind").With("transfer").Add(2)
	r.Gauge("hs_depth", "Queue depth.").Set(4)
	h := r.HistogramVec("hs_dur_seconds", "Durations.", []float64{0.01, 1}, "kind").With(`we"ird\label`)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var help, typ int
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			help++
		case strings.HasPrefix(ln, "# TYPE "):
			typ++
			fields := strings.Fields(ln)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", ln)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad type %q in %q", fields[3], ln)
			}
		default:
			// Sample line: name{labels} value — value must parse.
			i := strings.LastIndexByte(ln, ' ')
			if i < 0 {
				t.Fatalf("malformed sample line: %q", ln)
			}
			if _, err := strconv.ParseFloat(ln[i+1:], 64); err != nil {
				t.Fatalf("unparseable value in %q: %v", ln, err)
			}
		}
	}
	if help != 3 || typ != 3 {
		t.Fatalf("HELP/TYPE counts = %d/%d, want 3/3", help, typ)
	}
	for _, want := range []string{
		`hs_actions_total{kind="compute"} 3`,
		`hs_actions_total{kind="transfer"} 2`,
		"hs_depth 4",
		`hs_dur_seconds_bucket{kind="we\"ird\\label",le="+Inf"} 2`,
		`hs_dur_seconds_count{kind="we\"ird\\label"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: 0.01 → 1, 1 → 1, +Inf → 2.
	if !strings.Contains(out, `le="0.01"} 1`) || !strings.Contains(out, `le="1"} 1`) {
		t.Fatalf("buckets not cumulative:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.CounterVec("hs_actions_total", "Actions.", "kind").With("compute").Add(3)
	r.Histogram("hs_dur_seconds", "Durations.", []float64{0.5}).Observe(time.Second)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string            `json:"name"`
			Type    string            `json:"type"`
			Labels  map[string]string `json:"labels"`
			Value   *int64            `json:"value"`
			Count   *int64            `json:"count"`
			Sum     *float64          `json:"sum_seconds"`
			Buckets map[string]int64  `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(doc.Metrics))
	}
	for _, m := range doc.Metrics {
		switch m.Name {
		case "hs_actions_total":
			if m.Type != "counter" || m.Value == nil || *m.Value != 3 || m.Labels["kind"] != "compute" {
				t.Fatalf("bad counter entry: %+v", m)
			}
		case "hs_dur_seconds":
			if m.Type != "histogram" || m.Count == nil || *m.Count != 1 || m.Sum == nil || *m.Sum != 1 {
				t.Fatalf("bad histogram entry: %+v", m)
			}
			if m.Buckets["+Inf"] != 1 {
				t.Fatalf("bad +Inf bucket: %+v", m.Buckets)
			}
		default:
			t.Fatalf("unexpected metric %q", m.Name)
		}
	}
}

// TestConcurrentHammer drives every metric type from many goroutines;
// run under -race this checks the lock-free paths, and the final
// counts check that no update was lost.
func TestConcurrentHammer(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 2000
	cv := r.CounterVec("ham_total", "h", "w")
	g := r.Gauge("ham_depth", "h")
	peak := r.Gauge("ham_peak", "h")
	hv := r.HistogramVec("ham_seconds", "h", nil, "w")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := strconv.Itoa(w % 2) // shared series across workers
			for i := 0; i < perWorker; i++ {
				cv.With(label).Inc()
				g.Add(1)
				peak.SetMax(int64(i))
				hv.With(label).Observe(time.Duration(i) * time.Microsecond)
				g.Add(-1)
			}
		}(w)
	}
	// Concurrent readers exercise snapshot/export against writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			var buf bytes.Buffer
			_ = r.WriteProm(&buf)
		}
	}()
	wg.Wait()
	<-done
	if got := r.Total("ham_total"); got != workers*perWorker {
		t.Fatalf("lost counter updates: %v, want %d", got, workers*perWorker)
	}
	if got := r.Total("ham_seconds_count"); got != workers*perWorker {
		t.Fatalf("lost observations: %v, want %d", got, workers*perWorker)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if peak.Value() != perWorker-1 {
		t.Fatalf("peak = %d, want %d", peak.Value(), perWorker-1)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default registry must be a process-wide singleton")
	}
}
