package metrics_test

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/matmul"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
)

// TestSimMatmulTelemetry runs the paper's tiled matmul in Sim mode
// against a private registry and checks that every layer reported:
// the core (durations, dependency stalls, queue depth), the executor
// (per-link bytes), and the exposition path (valid Prometheus text).
func TestSimMatmulTelemetry(t *testing.T) {
	reg := metrics.New()
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(2),
		Mode:           core.ModeSim,
		StreamsPerCard: 4,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := matmul.Run(a, matmul.Config{N: 4800, Tile: 1200}); err != nil {
		t.Fatal(err)
	}
	a.Fini()

	for _, kind := range []string{"compute", "transfer"} {
		if n := reg.Sum("hstreams_action_duration_seconds_count", map[string]string{"kind": kind}); n == 0 {
			t.Errorf("no %s actions recorded in duration histogram", kind)
		}
		if d := reg.Sum("hstreams_action_duration_seconds_sum", map[string]string{"kind": kind}); d <= 0 {
			t.Errorf("%s duration sum = %v, want > 0 (virtual clock)", kind, d)
		}
	}
	// The tiled algorithm chains xfer→compute→xfer per panel, so some
	// actions must have waited on predecessors.
	if st := reg.Total("hstreams_dep_stall_seconds_sum"); st <= 0 {
		t.Errorf("dependency stall total = %v, want > 0", st)
	}
	// With 4 streams per card and tile chains in flight, at least one
	// stream's window grew past a single action.
	if peak := reg.Total("hstreams_queue_depth_peak"); peak < 1 {
		t.Errorf("queue depth peak total = %v, want >= 1", peak)
	}
	// Tiles moved host→card and results came back.
	if lb := reg.Total("hstreams_link_bytes_total"); lb <= 0 {
		t.Errorf("link bytes = %v, want > 0", lb)
	}
	if lx := reg.Total("hstreams_link_transfers_total"); lx <= 0 {
		t.Errorf("link transfers = %v, want > 0", lx)
	}
	if reg.Total("hstreams_action_errors_total") != 0 {
		t.Error("clean run reported action errors")
	}

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP hstreams_action_duration_seconds",
		"# TYPE hstreams_action_duration_seconds histogram",
		`kind="compute"`,
		`kind="transfer"`,
		"hstreams_link_bytes_total{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

// countObserver counts lifecycle callbacks; fields are atomic because
// Real-mode hooks may fire concurrently.
type countObserver struct {
	enq, ready, launch, finish atomic.Int64
	bytes                      atomic.Int64
}

func (c *countObserver) OnEnqueue(e metrics.Event) { c.enq.Add(1); c.bytes.Add(e.Bytes) }
func (c *countObserver) OnReady(metrics.Event)     { c.ready.Add(1) }
func (c *countObserver) OnLaunch(metrics.Event)    { c.launch.Add(1) }
func (c *countObserver) OnFinish(metrics.Event)    { c.finish.Add(1) }

// TestObserverLifecycle checks every action produces exactly one
// enqueue/ready/launch/finish callback, in both executors.
func TestObserverLifecycle(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSim, core.ModeReal} {
		rt, err := core.Init(core.Config{
			Machine: platform.HSWPlusKNC(1),
			Mode:    mode,
			Metrics: metrics.New(),
		})
		if err != nil {
			t.Fatal(err)
		}
		obs := &countObserver{}
		rt.AddObserver(obs)
		rt.RegisterKernel("obs", func(*core.KernelCtx) {})

		card := rt.Card(0)
		s, err := rt.StreamCreate(card, 0, card.Spec().Cores())
		if err != nil {
			t.Fatal(err)
		}
		const bufBytes = 1 << 20
		b, err := rt.Alloc1D("obs", bufBytes)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.EnqueueXferAll(b, core.ToSink); err != nil {
			t.Fatal(err)
		}
		cost := platform.Cost{Flops: 1e6, Bytes: bufBytes}
		if _, err := s.EnqueueCompute("obs", nil, []core.Operand{b.All(core.InOut)}, cost); err != nil {
			t.Fatal(err)
		}
		if _, err := s.EnqueueXferAll(b, core.ToSource); err != nil {
			t.Fatal(err)
		}
		rt.ThreadSynchronize()
		if err := rt.Err(); err != nil {
			t.Fatalf("mode %v: run failed: %v", mode, err)
		}
		rt.Fini()

		const want = 3 // xfer, compute, xfer
		for name, got := range map[string]int64{
			"enqueue": obs.enq.Load(),
			"ready":   obs.ready.Load(),
			"launch":  obs.launch.Load(),
			"finish":  obs.finish.Load(),
		} {
			if got != want {
				t.Errorf("mode %v: %s callbacks = %d, want %d", mode, name, got, want)
			}
		}
		// Two transfers carry the buffer payload each.
		if got := obs.bytes.Load(); got != 2*bufBytes {
			t.Errorf("mode %v: observed bytes = %d, want %d", mode, got, 2*bufBytes)
		}
	}
}
