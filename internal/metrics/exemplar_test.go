package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	const sec = int64(time.Second)
	r := New()
	h := r.Histogram("lat_seconds", "test latency", []float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond) // plain Observe leaves no exemplar
	h.ObserveEx(50*time.Millisecond, 7, 1*sec)
	h.ObserveEx(60*time.Millisecond, 8, 2*sec) // same bucket, clock advanced: last writer wins
	h.ObserveEx(2*time.Second, 9, 3*sec)       // +Inf bucket

	ex := h.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("got %d exemplar slots, want one per bucket (4)", len(ex))
	}
	if ex[0].SpanID != 0 {
		t.Fatalf("bucket 0 exemplar = %+v, want empty (plain Observe)", ex[0])
	}
	if ex[1].SpanID != 8 || ex[1].Value != 0.06 || ex[1].When != 2*sec {
		t.Fatalf("bucket 1 exemplar = %+v, want last-writer span 8 at 0.06s", ex[1])
	}
	if ex[3].SpanID != 9 || ex[3].Value != 2 {
		t.Fatalf("+Inf exemplar = %+v, want span 9 at 2s", ex[3])
	}
}

// TestExemplarThrottle pins the refresh rate limit: a bucket keeps
// its exemplar until the observer clock advances exemplarMinAge, and
// a clock that jumps backwards (a new run reusing the registry)
// refreshes immediately.
func TestExemplarThrottle(t *testing.T) {
	const sec = int64(time.Second)
	r := New()
	h := r.Histogram("lat_seconds", "test latency", []float64{1})
	h.ObserveEx(50*time.Millisecond, 7, 5*sec)
	h.ObserveEx(60*time.Millisecond, 8, 5*sec+sec/2) // within min age: kept out
	if ex := h.Exemplars()[0]; ex.SpanID != 7 {
		t.Fatalf("exemplar = %+v, want throttle to keep span 7", ex)
	}
	h.ObserveEx(70*time.Millisecond, 9, 6*sec) // clock advanced a full min age
	if ex := h.Exemplars()[0]; ex.SpanID != 9 || ex.When != 6*sec {
		t.Fatalf("exemplar = %+v, want refresh to span 9 after min age", ex)
	}
	h.ObserveEx(80*time.Millisecond, 10, 1*sec) // clock went backwards: new run
	if ex := h.Exemplars()[0]; ex.SpanID != 10 || ex.When != 1*sec {
		t.Fatalf("exemplar = %+v, want backwards clock to refresh to span 10", ex)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want all 4 observations counted despite throttled exemplars", got)
	}
}

func TestSnapshotHistogramsCarriesExemplars(t *testing.T) {
	r := New()
	hv := r.HistogramVec("dur_seconds", "test latency", []float64{0.1}, "kind")
	hv.With("compute").ObserveEx(50*time.Millisecond, 11, 1)
	hv.With("transfer").ObserveEx(300*time.Millisecond, 12, 2)

	byKind := map[string]HistSample{}
	for _, hs := range r.SnapshotHistograms() {
		if hs.Name == "dur_seconds" {
			byKind[hs.Labels["kind"]] = hs
		}
	}
	if len(byKind) != 2 {
		t.Fatalf("got %d dur_seconds series, want 2", len(byKind))
	}
	c := byKind["compute"]
	if c.Count != 1 || len(c.Exemplars) != 2 {
		t.Fatalf("compute sample = %+v, want count 1 with 2 exemplar slots", c)
	}
	if c.Exemplars[0].SpanID != 11 {
		t.Fatalf("compute bucket-0 exemplar = %+v, want span 11", c.Exemplars[0])
	}
	x := byKind["transfer"]
	if x.Exemplars[1].SpanID != 12 {
		t.Fatalf("transfer +Inf exemplar = %+v, want span 12", x.Exemplars[1])
	}
}

// TestExemplarConcurrentObserve drives ObserveEx from many goroutines
// while readers snapshot; the slots are independent atomics (tearing
// between fields is tolerated by design), so the race detector is the
// assertion here.
func TestExemplarConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("c_seconds", "test latency", []float64{1e-3, 1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveEx(time.Duration(i)*time.Microsecond, uint64(w*1000+i+1), int64(i))
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		h.Exemplars()
		r.SnapshotHistograms()
	}
	wg.Wait()
	ex := h.Exemplars()
	if ex[0].SpanID == 0 {
		t.Fatal("no exemplar recorded in the first bucket after 4000 observations")
	}
}
