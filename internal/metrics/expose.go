package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string for the Prometheus text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...} for the series, with extra pairs
// appended (used for histogram le labels); empty labels render as "".
func labelString(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, k, escapeLabel(values[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with # HELP / # TYPE
// lines, series sorted by labels, histograms expanded into cumulative
// _bucket series plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			switch m := s.metric.(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.keys, s.values, "", ""), m.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.keys, s.values, "", ""), m.Value()); err != nil {
					return err
				}
			case *Histogram:
				bounds, cum := m.Buckets()
				for i, b := range bounds {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.keys, s.values, "le", formatFloat(b)), cum[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.keys, s.values, "le", "+Inf"), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.keys, s.values, "", ""), formatFloat(m.Sum().Seconds())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.keys, s.values, "", ""), m.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonMetric is one series in the JSON exposition.
type jsonMetric struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Help    string            `json:"help,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *int64            `json:"value,omitempty"`
	Count   *int64            `json:"count,omitempty"`
	Sum     *float64          `json:"sum_seconds,omitempty"`
	Buckets map[string]int64  `json:"buckets,omitempty"`
}

// WriteJSON writes the registry as a JSON document: an object with a
// "metrics" array of series, histogram buckets keyed by upper bound.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonMetric
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			jm := jsonMetric{Name: f.name, Type: f.typ.String(), Help: f.help, Labels: f.labelsOf(s)}
			switch m := s.metric.(type) {
			case *Counter:
				v := m.Value()
				jm.Value = &v
			case *Gauge:
				v := m.Value()
				jm.Value = &v
			case *Histogram:
				cnt := m.Count()
				sum := m.Sum().Seconds()
				jm.Count, jm.Sum = &cnt, &sum
				bounds, cum := m.Buckets()
				jm.Buckets = make(map[string]int64, len(cum))
				for i, b := range bounds {
					jm.Buckets[formatFloat(b)] = cum[i]
				}
				jm.Buckets["+Inf"] = cum[len(cum)-1]
			}
			out = append(out, jm)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonMetric `json:"metrics"`
	}{Metrics: out})
}
