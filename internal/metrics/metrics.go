// Package metrics is the runtime's live telemetry layer: a
// dependency-free, concurrency-safe registry of counters, gauges and
// fixed-bucket histograms, exposed in Prometheus text format and JSON
// (expose.go), plus the action-lifecycle Observer hook contract
// (observer.go) that internal/core fires as actions move through
// enqueue → ready → launch → finish.
//
// Unlike internal/trace — a post-hoc recorder that keeps one record
// per action and is read after a run — this package maintains cheap
// aggregates (atomic adds on the hot path) that can be sampled while
// the runtime is working, which is what stream-count tuning and
// overlap analysis need at production scale.
//
// All update paths are lock-free atomics; registration paths take a
// registry mutex but are get-or-create, so handles may be resolved
// eagerly and cached by instrumented code. Every constructor is safe
// on a nil *Registry: it hands back a detached, fully functional
// metric that is simply not exported, so instrumented layers never
// need nil checks.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Type classifies a metric family.
type Type int

const (
	// CounterType is a monotonically increasing count.
	CounterType Type = iota
	// GaugeType is a value that can go up and down.
	GaugeType
	// HistogramType is a fixed-bucket distribution of seconds.
	HistogramType
)

// String labels the metric type for the exposition format.
func (t Type) String() string {
	switch t {
	case CounterType:
		return "counter"
	case GaugeType:
		return "gauge"
	case HistogramType:
		return "histogram"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// DefBuckets are the default histogram upper bounds in seconds,
// spanning the microsecond enqueue overheads (§III) up to the
// multi-second makespans of paper-scale runs.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of durations, recorded in
// seconds. Buckets are cumulative on export (Prometheus semantics);
// internally each slot counts observations ≤ its bound, with a final
// implicit +Inf slot. Each bucket additionally keeps one exemplar
// slot: the most recent observation that landed in it, stamped with
// the observer-supplied span id (see ObserveEx), which is how latency
// buckets link back to flight-recorder spans.
type Histogram struct {
	bounds   []float64 // sorted upper bounds in seconds
	counts   []atomic.Int64
	ex       []exSlot // one per counts slot
	count    atomic.Int64
	sumNanos atomic.Int64
	// exGate is the per-histogram exemplar throttle: the observer
	// clock of the last exemplar refresh. It sits next to count and
	// sumNanos, which every observation already touches, so the
	// steady-state ObserveEx check is a load of an already-hot cache
	// line rather than of the cold ex slots.
	exGate atomic.Uint64
}

// exSlot is one bucket's exemplar: the span id, observed value
// (float64 bits) and runtime-clock nanos of the most recent
// observation that refreshed it. The three words are written with
// independent atomic stores — a reader racing a writer can see a
// mixed exemplar (span from one observation, value from another).
// That tearing is accepted by design: exemplars are diagnostic
// pointers, not accounting.
//
// Refreshes are throttled per histogram (exGate): an exemplar is
// accepted at most once per exemplarMinAge of the observer's clock,
// plus whenever the clock jumps backwards — a new run reusing the
// registry. Atomic stores are full barriers on the common
// architectures, and the ex slots live on cache lines the hot path
// otherwise never touches, so refreshing on every observation
// measurably slowed the action path; the gate turns the steady-state
// cost into one load of a line Observe already dirties. Operators
// cannot tell: timeline windows are seconds-to-minutes, and a
// refresh per second per histogram keeps the populated buckets'
// exemplars current.
type exSlot struct {
	span atomic.Uint64
	bits atomic.Uint64
	when atomic.Uint64
}

// exemplarMinAge is the minimum observer-clock advance between
// exemplar refreshes of one histogram.
const exemplarMinAge = uint64(time.Second)

// Exemplar links one histogram bucket to the most recent observation
// recorded into it: the flight-recorder span id that produced the
// observation, the observed value in seconds, and the runtime-clock
// nanos of the observation. A zero SpanID means the bucket has no
// exemplar yet. Exemplars are best-effort (see exSlot).
type Exemplar struct {
	SpanID uint64  `json:"span"`
	Value  float64 `json:"value_seconds"`
	When   int64   `json:"when_nanos"`
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1), ex: make([]exSlot, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	// SearchFloat64s finds the first bound >= s; observations equal to
	// a bound belong to that bound's bucket (le is inclusive).
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// ObserveEx is Observe plus exemplar capture: the matching bucket's
// exemplar slot is refreshed with (span, d, when), where span is a
// flight-recorder span id and when is the runtime clock at the
// observation. Refreshes are rate-limited per histogram (see
// exSlot), so in steady state the extra cost over Observe is one
// uncontended atomic load of an already-hot cache line — no
// allocation, no lock.
func (h *Histogram) ObserveEx(d time.Duration, span uint64, when int64) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	w := uint64(when)
	if g := h.exGate.Load(); g == 0 || w < g || w-g >= exemplarMinAge {
		h.exGate.Store(w)
		e := &h.ex[i]
		e.span.Store(span)
		e.bits.Store(math.Float64bits(s))
		e.when.Store(w)
	}
}

// Exemplars returns one Exemplar per bucket slot (the last entry is
// the +Inf bucket), zero-SpanID entries marking buckets nothing has
// landed in. Safe to call concurrently with observations.
func (h *Histogram) Exemplars() []Exemplar {
	out := make([]Exemplar, len(h.ex))
	for i := range h.ex {
		out[i] = Exemplar{
			SpanID: h.ex[i].span.Load(),
			Value:  math.Float64frombits(h.ex[i].bits.Load()),
			When:   int64(h.ex[i].when.Load()),
		}
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Buckets returns the upper bounds and cumulative counts (the last
// entry is the +Inf bucket, equal to Count up to concurrent skew).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// series is one labeled instance of a family.
type series struct {
	values []string
	metric interface{} // *Counter, *Gauge or *Histogram
}

// family is a named metric with a fixed label-key set.
type family struct {
	name   string
	help   string
	typ    Type
	keys   []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	sig := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.typ {
	case CounterType:
		s.metric = &Counter{}
	case GaugeType:
		s.metric = &Gauge{}
	case HistogramType:
		s.metric = newHistogram(f.bounds)
	}
	f.series[sig] = s
	return s
}

// Registry holds metric families. The zero value is not usable;
// create one with New, or use the process-wide Default registry. All
// methods are safe on a nil receiver and return detached metrics.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{fams: make(map[string]*family)} }

var defaultRegistry = New()

// Default returns the process-wide registry, used by runtimes whose
// Config does not supply one so that harnesses driving many runtimes
// (cmd/hsbench regenerating every figure) accumulate a single view.
func Default() *Registry { return defaultRegistry }

// family registers or finds a family. Type and label keys must match
// a previous registration of the same name.
func (r *Registry) family(name, help string, typ Type, keys []string, bounds []float64) *family {
	if r == nil {
		return &family{name: name, help: help, typ: typ, keys: keys, bounds: bounds, series: make(map[string]*series)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.keys) != len(keys) {
			panic(fmt.Sprintf("metrics: %s re-registered with different type or labels", name))
		}
		for i := range keys {
			if f.keys[i] != keys[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, keys: append([]string(nil), keys...), bounds: bounds, series: make(map[string]*series)}
	r.fams[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, CounterType, nil, nil).get(nil).metric.(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, GaugeType, nil, nil).get(nil).metric.(*Gauge)
}

// Histogram registers (or finds) an unlabeled histogram. Nil bounds
// use DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, HistogramType, nil, bounds).get(nil).metric.(*Histogram)
}

// CounterVec is a counter family with label keys.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, CounterType, keys, nil)}
}

// With resolves the series for the given label values (key order).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values).metric.(*Counter)
}

// GaugeVec is a gauge family with label keys.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, GaugeType, keys, nil)}
}

// With resolves the series for the given label values (key order).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values).metric.(*Gauge)
}

// HistogramVec is a histogram family with label keys.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family. Nil
// bounds use DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, HistogramType, keys, bounds)}
}

// With resolves the series for the given label values (key order).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values).metric.(*Histogram)
}

// Sample is one flattened data point of a snapshot. Histograms
// flatten to two samples, "<name>_count" and "<name>_sum" (seconds);
// bucket detail is available through the exposition formats.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// sortedFamilies returns families in name order.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series in label-signature order.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\x1f") < strings.Join(out[j].values, "\x1f")
	})
	return out
}

func (f *family) labelsOf(s *series) map[string]string {
	if len(f.keys) == 0 {
		return nil
	}
	m := make(map[string]string, len(f.keys))
	for i, k := range f.keys {
		m[k] = s.values[i]
	}
	return m
}

// Snapshot returns a point-in-time flattened view of every series,
// sorted by name then labels.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			labels := f.labelsOf(s)
			switch m := s.metric.(type) {
			case *Counter:
				out = append(out, Sample{Name: f.name, Labels: labels, Value: float64(m.Value())})
			case *Gauge:
				out = append(out, Sample{Name: f.name, Labels: labels, Value: float64(m.Value())})
			case *Histogram:
				out = append(out,
					Sample{Name: f.name + "_count", Labels: labels, Value: float64(m.Count())},
					Sample{Name: f.name + "_sum", Labels: labels, Value: m.Sum().Seconds()})
			}
		}
	}
	return out
}

// HistSample is one histogram series with full bucket detail — what
// Snapshot flattens away. The rolling-telemetry sampler
// (internal/telemetry) records the cumulative bucket counts as
// per-bucket time series, from which windowed quantiles are derived.
type HistSample struct {
	Name   string
	Labels map[string]string
	// Bounds are the finite upper bounds in seconds; Cumulative has
	// len(Bounds)+1 entries, the last being the +Inf bucket.
	Bounds     []float64
	Cumulative []int64
	Count      int64
	SumSeconds float64
	// Exemplars holds one entry per Cumulative slot; zero-SpanID
	// entries mark buckets with no exemplar yet.
	Exemplars []Exemplar
}

// SnapshotHistograms returns a point-in-time view of every histogram
// series with bucket detail and exemplars, sorted by name then labels.
func (r *Registry) SnapshotHistograms() []HistSample {
	var out []HistSample
	for _, f := range r.sortedFamilies() {
		if f.typ != HistogramType {
			continue
		}
		for _, s := range f.sortedSeries() {
			h := s.metric.(*Histogram)
			bounds, cum := h.Buckets()
			out = append(out, HistSample{
				Name:       f.name,
				Labels:     f.labelsOf(s),
				Bounds:     bounds,
				Cumulative: cum,
				Count:      h.Count(),
				SumSeconds: h.Sum().Seconds(),
				Exemplars:  h.Exemplars(),
			})
		}
	}
	return out
}

// Sum totals snapshot samples with the given name whose labels
// include every pair in match (nil matches everything). Histogram
// families are addressed as "<name>_count" / "<name>_sum".
func (r *Registry) Sum(name string, match map[string]string) float64 {
	var total float64
	for _, s := range r.Snapshot() {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += s.Value
		}
	}
	return total
}

// Total sums every series of the named (flattened) metric.
func (r *Registry) Total(name string) float64 { return r.Sum(name, nil) }
