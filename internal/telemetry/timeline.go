package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"hstreams/internal/metrics"
	"hstreams/internal/trace"
)

// maxRates bounds the rate table in a Timeline so the text rendering
// stays readable; Timeline.RatesTruncated reports how many nonzero
// series were dropped (never silently).
const maxRates = 24

// RateView is the windowed rate of one counter series.
type RateView struct {
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	PerSecond float64           `json:"per_second"`
	Delta     float64           `json:"delta"`
}

// LatencyView is a windowed latency summary for one histogram series:
// quantiles interpolated from bucket-count deltas between the window's
// endpoints, plus the freshest exemplar so an operator can jump from a
// percentile to the flight-recorder span behind it.
type LatencyView struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	// Count is how many observations landed inside the window.
	Count int64 `json:"count"`
	// P50, P95 and P99 are interpolated quantiles in seconds.
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	P99 float64 `json:"p99_seconds"`
	// Exemplar, when non-nil, is the last observation recorded in the
	// highest-populated bucket of the window — the span to chase when
	// the tail moves.
	Exemplar *metrics.Exemplar `json:"exemplar,omitempty"`
}

// UtilView attributes one domain's window: busy seconds (summed action
// execution time) against stream-capacity seconds, split by the
// critical-path category names (trace.CatCompute and friends) so the
// live view reconciles against `hsbench -critpath`.
//
// In Sim mode busy time is virtual-clock seconds while the window span
// is wall time, so Utilization is only comparable across domains, not
// against 1.0; in Real mode both are wall time.
type UtilView struct {
	Domain string `json:"domain"`
	// Streams is the number of streams attached to the domain.
	Streams int `json:"streams"`
	// BusySeconds is execution time accumulated inside the window.
	BusySeconds float64 `json:"busy_seconds"`
	// CapacitySeconds is window span × streams.
	CapacitySeconds float64 `json:"capacity_seconds"`
	// Utilization is BusySeconds / CapacitySeconds (0 when no capacity).
	Utilization float64 `json:"utilization"`
	// Categories splits BusySeconds by critical-path category name.
	Categories map[string]float64 `json:"categories"`
}

// QueueView is one stream's queue-depth summary: the current depth,
// the high-water mark within the window, and the all-time peak gauge.
type QueueView struct {
	Stream    string  `json:"stream"`
	Depth     float64 `json:"depth"`
	WindowMax float64 `json:"window_max"`
	Peak      float64 `json:"peak"`
}

// LinkView is one fabric link direction's window: achieved bandwidth,
// transfer count, and occupancy (busy-seconds per wall-second — the
// fraction of the window the link spent moving bytes, >1 when
// transfers overlap in Sim accounting).
type LinkView struct {
	Src            string  `json:"src"`
	Dst            string  `json:"dst"`
	BytesPerSecond float64 `json:"bytes_per_second"`
	Transfers      float64 `json:"transfers"`
	Occupancy      float64 `json:"occupancy"`
}

// Timeline is the derived, bounded view of a Store's window: what the
// /debug/timeline endpoint serves and `hsbench -timeline` prints. All
// durations are nanosecond integers so the JSON is lossless.
type Timeline struct {
	// GeneratedAt is the newest sample time in the store (the
	// timeline's "now" — deterministic for synthetically-timed tests).
	GeneratedAt time.Time `json:"generated_at"`
	// WindowNanos is the requested window length.
	WindowNanos int64 `json:"window_nanos"`
	// StepNanos is the display decimation step (0 when the timeline is
	// full-resolution). Windowed deltas, rates and quantiles are always
	// computed from the full-resolution points; the step only thins
	// what Samples counts and what per-point scans (queue window-max)
	// see.
	StepNanos int64 `json:"step_nanos,omitempty"`
	// SpanNanos is the observed span: newest minus oldest retained
	// sample inside the window (≤ WindowNanos).
	SpanNanos int64 `json:"span_nanos"`
	// Samples is the most points any one series retains in the window.
	Samples int `json:"samples"`
	// Rates lists windowed counter rates, largest first.
	Rates []RateView `json:"rates"`
	// RatesTruncated counts nonzero rate series dropped past maxRates.
	RatesTruncated int `json:"rates_truncated,omitempty"`
	// Latencies lists windowed histogram quantiles with exemplars.
	Latencies []LatencyView `json:"latencies"`
	// Utilization lists per-domain busy/idle attribution.
	Utilization []UtilView `json:"utilization"`
	// Queues lists per-stream depth watermarks.
	Queues []QueueView `json:"queues"`
	// Links lists per-link bandwidth and occupancy.
	Links []LinkView `json:"links"`
}

// Build derives a Timeline from the store's retained window. A
// non-positive window means the store's full window. reg, when
// non-nil, supplies histogram exemplars (the store holds only scalar
// points); pass the registry the sampler snapshots.
func Build(st *Store, reg *metrics.Registry, window time.Duration) *Timeline {
	return BuildStep(st, reg, window, 0)
}

// BuildStep is Build with display decimation: a positive step thins
// each series to at most one point per step before per-point scans
// (the newest point always survives, so last-value reads are exact),
// which keeps coarse views of a dense ring cheap to render. Windowed
// deltas, rates and quantiles always run on the full-resolution
// points — decimating first would corrupt the dropped-count baseline
// arithmetic. A non-positive step means no decimation.
func BuildStep(st *Store, reg *metrics.Registry, window, step time.Duration) *Timeline {
	if window <= 0 {
		window = st.Window()
	}
	if step < 0 {
		step = 0
	}
	tl := &Timeline{WindowNanos: int64(window), StepNanos: int64(step)}
	now, ok := st.Newest()
	if !ok {
		return tl
	}
	tl.GeneratedAt = now
	cutoff := now.Add(-window)

	// One consistent snapshot of every series, clipped to the window.
	// raw keeps the full-resolution in-window points for delta
	// baselines; pts is the (possibly decimated) display view.
	type snap struct {
		s   Series
		pts []Point
		raw []Point
	}
	var all []snap
	oldest := now
	for _, name := range st.Names() {
		for _, s := range st.Family(name) {
			raw := clip(s.Points, cutoff)
			if len(raw) == 0 {
				continue
			}
			if raw[0].T.Before(oldest) {
				oldest = raw[0].T
			}
			pts := decimate(raw, step)
			if len(pts) > tl.Samples {
				tl.Samples = len(pts)
			}
			all = append(all, snap{s: s, pts: pts, raw: raw})
		}
	}
	span := now.Sub(oldest)
	tl.SpanNanos = int64(span)
	spanSec := span.Seconds()

	// windowDelta is the counter increase across the window; baseline
	// semantics live in windowDeltaPts, shared with the Store query
	// API the health rule engine uses.
	windowDelta := func(sn snap) (float64, time.Duration) {
		return windowDeltaPts(sn.s.Points, sn.raw, st.slots)
	}

	empty := snap{}
	get := func(name string, labels map[string]string) snap {
		for _, sn := range all {
			if sn.s.Name == name && labelsEqual(sn.s.Labels, labels) {
				return sn
			}
		}
		return empty
	}

	// Windowed counter rates.
	for _, sn := range all {
		if !strings.HasSuffix(sn.s.Name, "_total") {
			continue
		}
		d, sp := windowDelta(sn)
		if sp <= 0 {
			sp = span
		}
		if d <= 0 || sp <= 0 {
			continue
		}
		tl.Rates = append(tl.Rates, RateView{
			Name: sn.s.Name, Labels: sn.s.Labels,
			PerSecond: d / sp.Seconds(), Delta: d,
		})
	}
	sort.Slice(tl.Rates, func(i, j int) bool {
		a, b := tl.Rates[i], tl.Rates[j]
		if a.PerSecond != b.PerSecond {
			return a.PerSecond > b.PerSecond
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return labelSig(a.Labels) < labelSig(b.Labels)
	})
	if len(tl.Rates) > maxRates {
		tl.RatesTruncated = len(tl.Rates) - maxRates
		tl.Rates = tl.Rates[:maxRates]
	}

	// Windowed quantiles from bucket-count deltas. Bucket series are
	// named "<family>_bucket" with an le label; group them back into
	// histograms by base-label signature.
	type group struct {
		name   string
		labels map[string]string
		bounds []float64
		deltas []float64
	}
	groups := make(map[string]*group)
	var order []string
	for _, sn := range all {
		if !strings.HasSuffix(sn.s.Name, "_bucket") {
			continue
		}
		le, okLE := sn.s.Labels["le"]
		if !okLE {
			continue
		}
		base := baseLabels(sn.s.Labels)
		name := strings.TrimSuffix(sn.s.Name, "_bucket")
		k := name + "\x1f" + labelSig(base)
		g, okG := groups[k]
		if !okG {
			g = &group{name: name, labels: base}
			groups[k] = g
			order = append(order, k)
		}
		b := math.Inf(1)
		if le != "+Inf" {
			if v, err := strconv.ParseFloat(le, 64); err == nil {
				b = v
			}
		}
		d, _ := windowDelta(sn)
		g.bounds = append(g.bounds, b)
		g.deltas = append(g.deltas, d)
	}
	var hists []metrics.HistSample
	if reg != nil {
		hists = reg.SnapshotHistograms()
	}
	sort.Strings(order)
	for _, k := range order {
		g := groups[k]
		sort.Sort(byBound{g.bounds, g.deltas})
		// Cumulative → total is the +Inf bucket's delta.
		total := g.deltas[len(g.deltas)-1]
		if total <= 0 {
			continue
		}
		lv := LatencyView{
			Name: g.name, Labels: g.labels, Count: int64(total + 0.5),
			P50: bucketQuantile(0.50, g.bounds, g.deltas),
			P95: bucketQuantile(0.95, g.bounds, g.deltas),
			P99: bucketQuantile(0.99, g.bounds, g.deltas),
		}
		lv.Exemplar = pickExemplar(hists, g.name, g.labels, g.deltas)
		tl.Latencies = append(tl.Latencies, lv)
	}

	// Per-domain utilization attribution.
	for _, sn := range all {
		if sn.s.Name != "hstreams_domain_streams" {
			continue
		}
		domain := sn.s.Labels["domain"]
		streams := sn.pts[len(sn.pts)-1].V
		uv := UtilView{
			Domain: domain, Streams: int(streams + 0.5),
			CapacitySeconds: spanSec * streams,
			Categories:      map[string]float64{},
		}
		for kind, cat := range map[string]string{
			"compute":  trace.CatCompute,
			"transfer": trace.CatTransfer,
			"sync":     trace.CatSync,
		} {
			d, _ := windowDelta(get("hstreams_action_duration_seconds_sum", map[string]string{"kind": kind, "domain": domain}))
			if d > 0 {
				uv.Categories[cat] = d
				uv.BusySeconds += d
			}
		}
		if uv.CapacitySeconds > 0 {
			uv.Utilization = uv.BusySeconds / uv.CapacitySeconds
		}
		tl.Utilization = append(tl.Utilization, uv)
	}
	sort.Slice(tl.Utilization, func(i, j int) bool { return tl.Utilization[i].Domain < tl.Utilization[j].Domain })

	// Per-stream queue-depth watermarks.
	for _, sn := range all {
		if sn.s.Name != "hstreams_queue_depth" {
			continue
		}
		stream := sn.s.Labels["stream"]
		qv := QueueView{Stream: stream, Depth: sn.pts[len(sn.pts)-1].V}
		for _, p := range sn.pts {
			if p.V > qv.WindowMax {
				qv.WindowMax = p.V
			}
		}
		if pk := get("hstreams_queue_depth_peak", map[string]string{"stream": stream}).pts; len(pk) > 0 {
			qv.Peak = pk[len(pk)-1].V
		}
		tl.Queues = append(tl.Queues, qv)
	}
	sort.Slice(tl.Queues, func(i, j int) bool { return tl.Queues[i].Stream < tl.Queues[j].Stream })

	// Per-link bandwidth and occupancy.
	for _, sn := range all {
		if sn.s.Name != "hstreams_link_bytes_total" {
			continue
		}
		src, dst := sn.s.Labels["src"], sn.s.Labels["dst"]
		bd, _ := windowDelta(sn)
		if bd <= 0 || spanSec <= 0 {
			continue
		}
		lv := LinkView{Src: src, Dst: dst, BytesPerSecond: bd / spanSec}
		xd, _ := windowDelta(get("hstreams_link_transfers_total", sn.s.Labels))
		lv.Transfers = xd
		od, _ := windowDelta(get("hstreams_link_occupancy_seconds_sum", sn.s.Labels))
		if od > 0 {
			lv.Occupancy = od / spanSec
		}
		tl.Links = append(tl.Links, lv)
	}
	sort.Slice(tl.Links, func(i, j int) bool {
		a, b := tl.Links[i], tl.Links[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})

	return tl
}

// clip returns the suffix of ordered points at or after cutoff.
func clip(pts []Point, cutoff time.Time) []Point {
	i := sort.Search(len(pts), func(i int) bool { return !pts[i].T.Before(cutoff) })
	return pts[i:]
}

// labelsEqual reports whether two label maps hold the same pairs.
func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// labelSig renders labels as a sorted, comparable signature.
func labelSig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, ",")
}

// baseLabels copies labels without the le bucket label.
func baseLabels(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		out[k] = v
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// byBound sorts parallel bound/delta slices by ascending bound (+Inf
// last), keeping cumulative bucket order.
type byBound struct {
	bounds []float64
	deltas []float64
}

func (b byBound) Len() int           { return len(b.bounds) }
func (b byBound) Less(i, j int) bool { return b.bounds[i] < b.bounds[j] }
func (b byBound) Swap(i, j int) {
	b.bounds[i], b.bounds[j] = b.bounds[j], b.bounds[i]
	b.deltas[i], b.deltas[j] = b.deltas[j], b.deltas[i]
}

// bucketQuantile interpolates the q-quantile from cumulative bucket
// deltas the way PromQL's histogram_quantile does: linear within the
// bucket holding the rank, clamped to the highest finite bound when
// the rank lands in the +Inf bucket.
func bucketQuantile(q float64, bounds, cum []float64) float64 {
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	rank := q * total
	i := sort.Search(len(cum), func(i int) bool { return cum[i] >= rank })
	if i >= len(cum) {
		i = len(cum) - 1
	}
	if math.IsInf(bounds[i], 1) {
		if len(bounds) > 1 {
			return bounds[len(bounds)-2]
		}
		return 0
	}
	lo, clo := 0.0, 0.0
	if i > 0 {
		lo, clo = bounds[i-1], cum[i-1]
	}
	if cum[i] == clo {
		return bounds[i]
	}
	return lo + (bounds[i]-lo)*(rank-clo)/(cum[i]-clo)
}

// pickExemplar returns the registry exemplar from the highest window-
// populated bucket of the matching histogram, or nil. Exemplars are
// last-writer-wins per bucket, so the returned span is the freshest
// observation in the tail bucket — exactly the one to chase after a
// percentile spike.
func pickExemplar(hists []metrics.HistSample, name string, labels map[string]string, deltas []float64) *metrics.Exemplar {
	for _, h := range hists {
		if h.Name != name || !labelsEqual(h.Labels, labels) {
			continue
		}
		// Window deltas and registry buckets share index order: both
		// ascend by bound with +Inf last.
		for i := len(deltas) - 1; i >= 0; i-- {
			if deltas[i] > 0 && i < len(h.Exemplars) && h.Exemplars[i].SpanID != 0 {
				e := h.Exemplars[i]
				return &e
			}
		}
		return nil
	}
	return nil
}

// Format renders the timeline as the text form served by
// /debug/timeline?format=text and printed by `hsbench -timeline`.
func (tl *Timeline) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: window %s, span %s, %d samples",
		time.Duration(tl.WindowNanos), time.Duration(tl.SpanNanos), tl.Samples)
	if tl.StepNanos > 0 {
		fmt.Fprintf(&sb, ", step %s", time.Duration(tl.StepNanos))
	}
	sb.WriteByte('\n')
	if tl.Samples == 0 {
		sb.WriteString("  (no samples retained — is the sampler running?)\n")
		return sb.String()
	}
	if len(tl.Rates) > 0 {
		sb.WriteString("rates:\n")
		for _, r := range tl.Rates {
			fmt.Fprintf(&sb, "  %-56s %12.1f/s  (+%.0f)\n", seriesLabel(r.Name, r.Labels), r.PerSecond, r.Delta)
		}
		if tl.RatesTruncated > 0 {
			fmt.Fprintf(&sb, "  … %d more nonzero series truncated\n", tl.RatesTruncated)
		}
	}
	if len(tl.Latencies) > 0 {
		sb.WriteString("latency (windowed):\n")
		for _, l := range tl.Latencies {
			fmt.Fprintf(&sb, "  %-56s n=%-6d p50=%s p95=%s p99=%s",
				seriesLabel(l.Name, l.Labels), l.Count,
				fmtSec(l.P50), fmtSec(l.P95), fmtSec(l.P99))
			if l.Exemplar != nil {
				fmt.Fprintf(&sb, "  exemplar span=%d %s", l.Exemplar.SpanID, fmtSec(l.Exemplar.Value))
			}
			sb.WriteByte('\n')
		}
	}
	if len(tl.Utilization) > 0 {
		sb.WriteString("utilization:\n")
		for _, u := range tl.Utilization {
			fmt.Fprintf(&sb, "  %-10s busy %s / %s (%.1f%%)",
				u.Domain, fmtSec(u.BusySeconds), fmtSec(u.CapacitySeconds), 100*u.Utilization)
			for _, cat := range []string{trace.CatCompute, trace.CatTransfer, trace.CatSync} {
				if v, okC := u.Categories[cat]; okC {
					fmt.Fprintf(&sb, "  %s=%s", cat, fmtSec(v))
				}
			}
			sb.WriteByte('\n')
		}
	}
	if len(tl.Queues) > 0 {
		sb.WriteString("queues:\n")
		for _, q := range tl.Queues {
			fmt.Fprintf(&sb, "  %-12s depth %-5.0f window-max %-5.0f peak %.0f\n", q.Stream, q.Depth, q.WindowMax, q.Peak)
		}
	}
	if len(tl.Links) > 0 {
		sb.WriteString("links:\n")
		for _, l := range tl.Links {
			fmt.Fprintf(&sb, "  %s→%-10s %s/s  occupancy %.1f%%  (%.0f xfers)\n",
				l.Src, l.Dst, fmtBytes(l.BytesPerSecond), 100*l.Occupancy, l.Transfers)
		}
	}
	return sb.String()
}

// seriesLabel renders name{k=v,…} for the text form.
func seriesLabel(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + labelSig(labels) + "}"
}

// fmtSec renders seconds with duration-style units.
func fmtSec(s float64) string {
	d := time.Duration(s * float64(time.Second))
	return d.Round(time.Microsecond).String()
}

// fmtBytes renders a byte quantity with binary-ish SI units.
func fmtBytes(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f kB", b/1e3)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
