package telemetry

import (
	"sync"
	"testing"
	"time"

	"hstreams/internal/metrics"
)

func TestSamplerSnapshotsRegistry(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("work_total", "test counter")
	h := reg.Histogram("lat_seconds", "test latency", []float64{0.1, 1})
	st := NewStore(time.Minute, 16)
	sam := NewSampler(SamplerOptions{Registry: reg, Store: st, Interval: time.Hour})

	c.Add(3)
	h.Observe(50 * time.Millisecond)
	sam.SampleOnce(base)
	c.Add(4)
	sam.SampleOnce(base.Add(time.Second))

	s := st.Get("work_total", nil)
	if len(s.Points) != 2 || s.Points[0].V != 3 || s.Points[1].V != 7 {
		t.Fatalf("work_total series = %+v, want values 3 then 7", s.Points)
	}
	// Histograms flatten into per-bucket cumulative series with le
	// labels, one per bound plus +Inf.
	for _, le := range []string{"0.1", "1", "+Inf"} {
		b := st.Get("lat_seconds_bucket", map[string]string{"le": le})
		if len(b.Points) != 2 {
			t.Fatalf("bucket le=%s has %d points, want 2", le, len(b.Points))
		}
	}
	if v := st.Get("lat_seconds_bucket", map[string]string{"le": "0.1"}).Points[1].V; v != 1 {
		t.Fatalf("le=0.1 cumulative = %v, want 1", v)
	}
	// The sampler reports on itself into the registry it samples.
	var sawSelf bool
	for _, s := range reg.Snapshot() {
		if s.Name == "hstreams_telemetry_samples_total" && s.Value >= 2 {
			sawSelf = true
		}
	}
	if !sawSelf {
		t.Fatal("sampler self-metric hstreams_telemetry_samples_total missing or zero")
	}
}

func TestSamplerStartStopIdempotent(t *testing.T) {
	reg := metrics.New()
	reg.Counter("x_total", "test").Inc()
	st := NewStore(time.Minute, 16)
	sam := NewSampler(SamplerOptions{Registry: reg, Store: st, Interval: time.Millisecond})
	sam.Start()
	sam.Start()
	time.Sleep(5 * time.Millisecond)
	sam.Stop()
	sam.Stop()
	if len(st.Get("x_total", nil).Points) == 0 {
		t.Fatal("running sampler recorded nothing")
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	sam := NewSampler(SamplerOptions{Registry: metrics.New(), Store: NewStore(time.Minute, 4)})
	done := make(chan struct{})
	go func() { sam.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop of a never-started sampler hangs")
	}
}

// TestSamplerConcurrentWithWriters hammers the registry from writer
// goroutines while the sampler snapshots it and a reader builds
// timelines — the snapshot-while-scheduling interleaving the race
// detector must bless.
func TestSamplerConcurrentWithWriters(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("hammer_total", "test counter")
	g := reg.Gauge("hammer_depth", "test gauge")
	h := reg.Histogram("hammer_seconds", "test latency", []float64{1e-6, 1e-3, 1})
	st := NewStore(time.Second, 64)
	sam := NewSampler(SamplerOptions{Registry: reg, Store: st, Interval: 100 * time.Microsecond})
	sam.Start()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i % 100))
				h.ObserveEx(time.Duration(i%1000)*time.Microsecond, uint64(w*1000+i+1), int64(i))
			}
		}(w)
	}
	deadline := time.After(50 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			Build(st, reg, 0)
		}
	}
	close(stop)
	wg.Wait()
	sam.Stop()

	tl := Build(st, reg, 0)
	if tl.Samples == 0 {
		t.Fatal("no samples retained after concurrent run")
	}
	s := st.Get("hammer_total", nil)
	if last := s.Last(); last.V == 0 {
		t.Fatalf("hammer_total final sample = %+v, want nonzero", last)
	}
}
