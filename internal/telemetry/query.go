package telemetry

// query.go is the windowed query API over a Store: the building blocks
// the health rule engine (internal/health) evaluates declarative SLO
// rules with, factored out of the Timeline derivation so both share one
// windowed-delta baseline semantics. Every query answers "over the last
// window, what did the matching series do": last value, counter
// increase, per-second rate, or an interpolated histogram quantile from
// bucket-count deltas.

import (
	"sort"
	"time"
)

// WindowValue is one matching series' windowed query result.
type WindowValue struct {
	// Labels identify the series (base labels for quantile queries).
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the query result: last value, delta, per-second rate,
	// or quantile in seconds, depending on the query.
	Value float64 `json:"value"`
	// Span is the observed in-window time span the value covers.
	Span time.Duration `json:"span,omitempty"`
	// Count is the in-window observation count (quantile queries only).
	Count float64 `json:"count,omitempty"`
}

// MatchLabels reports whether the series labels contain every pair of
// match (subset semantics, like a PromQL selector); a nil or empty
// match matches everything.
func MatchLabels(labels, match map[string]string) bool {
	for k, v := range match {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// windowDeltaPts computes one counter series' increase across a window:
// all is the full retained point slice, pts its in-window suffix
// (clip(all, cutoff)), slots the ring capacity. The baseline is the
// newest retained point before the cutoff when one exists; zero for
// series whose entire history is retained and inside the window
// (counters born there started at zero — a sampler that attaches after
// work begins would otherwise under-report every first-window delta);
// else the window's first point (conservative when the ring overwrote
// older history). The returned span is zero when no in-window time
// elapsed; rate consumers fall back to the window length.
func windowDeltaPts(all, pts []Point, slots int) (float64, time.Duration) {
	if len(pts) == 0 {
		return 0, 0
	}
	last := pts[len(pts)-1]
	if dropped := len(all) - len(pts); dropped > 0 {
		base := all[dropped-1]
		return last.V - base.V, last.T.Sub(base.T)
	}
	if len(all) < slots { // born inside the retained window
		return last.V, last.T.Sub(pts[0].T)
	}
	if len(pts) < 2 {
		return 0, 0
	}
	return last.V - pts[0].V, last.T.Sub(pts[0].T)
}

// queryWindow resolves a query's effective window and cutoff; ok is
// false when the store is empty.
func (st *Store) queryWindow(window time.Duration) (cutoff time.Time, w time.Duration, ok bool) {
	if window <= 0 || window > st.window {
		window = st.window
	}
	now, ok := st.Newest()
	if !ok {
		return time.Time{}, window, false
	}
	return now.Add(-window), window, true
}

// LatestOver returns the newest retained in-window value of every
// series of the named family whose labels contain match. A
// non-positive window means the store's full window; series with no
// in-window points are omitted.
func (st *Store) LatestOver(name string, match map[string]string, window time.Duration) []WindowValue {
	cutoff, _, ok := st.queryWindow(window)
	if !ok {
		return nil
	}
	var out []WindowValue
	for _, s := range st.Family(name) {
		if !MatchLabels(s.Labels, match) {
			continue
		}
		pts := clip(s.Points, cutoff)
		if len(pts) == 0 {
			continue
		}
		last := pts[len(pts)-1]
		out = append(out, WindowValue{
			Labels: s.Labels,
			Value:  last.V,
			Span:   last.T.Sub(pts[0].T),
		})
	}
	return out
}

// DeltaOver returns each matching series' counter increase across the
// window (windowed-delta baseline semantics; see windowDeltaPts).
// Series with no in-window points are omitted; zero deltas are kept so
// callers can tell "no increase" from "no data".
func (st *Store) DeltaOver(name string, match map[string]string, window time.Duration) []WindowValue {
	cutoff, _, ok := st.queryWindow(window)
	if !ok {
		return nil
	}
	var out []WindowValue
	for _, s := range st.Family(name) {
		if !MatchLabels(s.Labels, match) {
			continue
		}
		pts := clip(s.Points, cutoff)
		if len(pts) == 0 {
			continue
		}
		d, sp := windowDeltaPts(s.Points, pts, st.slots)
		out = append(out, WindowValue{Labels: s.Labels, Value: d, Span: sp})
	}
	return out
}

// RateOver returns each matching series' per-second windowed rate: the
// counter delta divided by the observed span (falling back to the
// window length when no in-window time elapsed).
func (st *Store) RateOver(name string, match map[string]string, window time.Duration) []WindowValue {
	_, w, ok := st.queryWindow(window)
	if !ok {
		return nil
	}
	out := st.DeltaOver(name, match, window)
	for i := range out {
		sp := out[i].Span
		if sp <= 0 {
			sp = w
		}
		if sec := sp.Seconds(); sec > 0 {
			out[i].Value /= sec
		} else {
			out[i].Value = 0
		}
	}
	return out
}

// QuantileOver interpolates the q-quantile of each matching histogram
// from its in-window bucket-count deltas, PromQL histogram_quantile
// style. name is the histogram family (the store holds its buckets as
// "<name>_bucket" series with an le label); match selects on the base
// labels. Histograms with no in-window observations are omitted —
// "empty window" yields no verdict rather than a misleading zero.
// Count carries the in-window observation total, Span the widest
// bucket-series span.
func (st *Store) QuantileOver(name string, match map[string]string, q float64, window time.Duration) []WindowValue {
	if window <= 0 || window > st.window {
		window = st.window
	}
	type group struct {
		labels map[string]string
		bounds []float64
		deltas []float64
		span   time.Duration
	}
	groups := make(map[string]*group)
	var order []string
	// Scan the family's rings in place under one read lock: bucket
	// metadata (bound, base labels, signature) is precomputed at
	// series creation and windowDelta never copies a ring, so the
	// per-tick quantile rule costs no allocation per bucket series.
	st.mu.RLock()
	if !st.hasNewest {
		st.mu.RUnlock()
		return nil
	}
	cutoff := st.newest.Add(-window)
	for _, rs := range st.byName[name+"_bucket"] {
		if !rs.bucket || !MatchLabels(rs.base, match) {
			continue
		}
		d, sp, inWindow := rs.windowDelta(cutoff)
		if inWindow == 0 {
			continue
		}
		g, okG := groups[rs.baseSig]
		if !okG {
			g = &group{labels: rs.base}
			groups[rs.baseSig] = g
			order = append(order, rs.baseSig)
		}
		g.bounds = append(g.bounds, rs.bound)
		g.deltas = append(g.deltas, d)
		if sp > g.span {
			g.span = sp
		}
	}
	st.mu.RUnlock()
	sort.Strings(order)
	var out []WindowValue
	for _, k := range order {
		g := groups[k]
		if len(g.bounds) == 0 {
			continue
		}
		sort.Sort(byBound{g.bounds, g.deltas})
		total := g.deltas[len(g.deltas)-1] // cumulative → the +Inf bucket
		if total <= 0 {
			continue
		}
		out = append(out, WindowValue{
			Labels: g.labels,
			Value:  bucketQuantile(q, g.bounds, g.deltas),
			Span:   g.span,
			Count:  total,
		})
	}
	return out
}

// decimate thins ordered points to at most one per step, keeping the
// newest point of each step-sized interval walking back from the
// newest sample (which is always kept, so last-value reads are
// unaffected). Used by BuildStep for coarse timeline views; windowed
// deltas always run on the full-resolution points.
func decimate(pts []Point, step time.Duration) []Point {
	if step <= 0 || len(pts) < 2 {
		return pts
	}
	out := make([]Point, 0, len(pts))
	kept := pts[len(pts)-1]
	out = append(out, kept)
	for i := len(pts) - 2; i >= 0; i-- {
		if kept.T.Sub(pts[i].T) >= step {
			kept = pts[i]
			out = append(out, kept)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
