package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestMatchLabels(t *testing.T) {
	labels := map[string]string{"domain": "KNC0", "kind": "compute"}
	if !MatchLabels(labels, nil) || !MatchLabels(labels, map[string]string{}) {
		t.Fatal("nil/empty match must match everything")
	}
	if !MatchLabels(labels, map[string]string{"domain": "KNC0"}) {
		t.Fatal("subset match failed")
	}
	if MatchLabels(labels, map[string]string{"domain": "HSW"}) {
		t.Fatal("wrong value matched")
	}
	if MatchLabels(labels, map[string]string{"absent": "x"}) {
		t.Fatal("absent key matched")
	}
}

func TestLatestOverWindowAndMatch(t *testing.T) {
	st := NewStore(time.Minute, 16)
	g1 := map[string]string{"domain": "KNC0"}
	g2 := map[string]string{"domain": "HSW"}
	st.Put("g", g1, base, 1)
	st.Put("g", g1, base.Add(30*time.Second), 5)
	st.Put("g", g2, base, 2) // only point is outside a narrow window

	vals := st.LatestOver("g", nil, 0)
	if len(vals) != 2 {
		t.Fatalf("full window: %d values, want 2", len(vals))
	}
	vals = st.LatestOver("g", g1, 10*time.Second)
	if len(vals) != 1 || vals[0].Value != 5 {
		t.Fatalf("narrow window match = %+v, want one value 5", vals)
	}
	// g2's only point fell out of the 10s window (newest is t+30s).
	if vals := st.LatestOver("g", g2, 10*time.Second); len(vals) != 0 {
		t.Fatalf("out-of-window series not omitted: %+v", vals)
	}
	if vals := st.LatestOver("absent", nil, 0); vals != nil {
		t.Fatalf("absent family = %+v, want nil", vals)
	}
}

func TestDeltaAndRateOver(t *testing.T) {
	st := NewStore(time.Minute, 32)
	for i := 0; i <= 4; i++ { // 10/s for 40s, born in-window
		st.Put("c_total", nil, base.Add(time.Duration(i)*10*time.Second), float64(100*i))
	}
	vals := st.DeltaOver("c_total", nil, 0)
	if len(vals) != 1 || vals[0].Value != 400 {
		t.Fatalf("born-in-window delta = %+v, want full value 400", vals)
	}
	rates := st.RateOver("c_total", nil, 0)
	if want := 400.0 / 40.0; len(rates) != 1 || rates[0].Value != want {
		t.Fatalf("rate = %+v, want %v", rates, want)
	}
	// A flat counter with a pre-window baseline keeps its zero delta
	// (no-increase != no-data). The narrow window clips the first
	// point, making it the baseline.
	st.Put("flat_total", nil, base, 7)
	st.Put("flat_total", nil, base.Add(35*time.Second), 7)
	st.Put("flat_total", nil, base.Add(40*time.Second), 7)
	if vals := st.DeltaOver("flat_total", nil, 10*time.Second); len(vals) != 1 || vals[0].Value != 0 {
		t.Fatalf("flat delta = %+v, want one zero value", vals)
	}
}

// TestRateOverSinglePointFallback covers the span fallback: one
// retained point is born-in-window (delta = its value) with zero
// elapsed span, so the rate divides by the window length instead of
// reporting an infinite rate.
func TestRateOverSinglePointFallback(t *testing.T) {
	st := NewStore(time.Minute, 8)
	st.Put("one_total", nil, base, 30)
	vals := st.RateOver("one_total", nil, 10*time.Second)
	if len(vals) != 1 {
		t.Fatalf("got %d values, want 1", len(vals))
	}
	if want := 30.0 / 10.0; vals[0].Value != want {
		t.Fatalf("single-point rate = %v, want window fallback %v", vals[0].Value, want)
	}
}

func TestQuantileOverBucketDeltas(t *testing.T) {
	st := NewStore(time.Minute, 16)
	bounds := []string{"0.1", "1", "+Inf"}
	putBuckets(st, "lat_seconds", nil, base, bounds, []float64{0, 0, 0})
	putBuckets(st, "lat_seconds", nil, base.Add(10*time.Second), bounds, []float64{5, 10, 10})
	vals := st.QuantileOver("lat_seconds", nil, 0.5, 0)
	if len(vals) != 1 {
		t.Fatalf("got %d quantile values, want 1", len(vals))
	}
	v := vals[0]
	if v.Count != 10 {
		t.Fatalf("count = %v, want 10", v.Count)
	}
	// 10 observations, rank 5 tops the first bucket exactly.
	if v.Value != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", v.Value)
	}
	p99 := st.QuantileOver("lat_seconds", nil, 0.99, 0)
	if want := 0.1 + (1-0.1)*(9.9-5)/5; math.Abs(p99[0].Value-want) > 1e-12 {
		t.Fatalf("p99 = %v, want %v", p99[0].Value, want)
	}
}

// TestQuantileOverEmptyWindow covers the empty-window semantics: a
// histogram with retained buckets but zero in-window observations is
// omitted, not reported as a zero quantile.
func TestQuantileOverEmptyWindow(t *testing.T) {
	st := NewStore(time.Minute, 16)
	bounds := []string{"1", "+Inf"}
	// All observations land before the query window; the cumulative
	// counts then stay flat.
	putBuckets(st, "lat_seconds", nil, base, bounds, []float64{4, 8})
	putBuckets(st, "lat_seconds", nil, base.Add(30*time.Second), bounds, []float64{4, 8})
	putBuckets(st, "lat_seconds", nil, base.Add(40*time.Second), bounds, []float64{4, 8})
	if vals := st.QuantileOver("lat_seconds", nil, 0.99, 5*time.Second); len(vals) != 0 {
		t.Fatalf("flat-window histogram not omitted: %+v", vals)
	}
	// Widening the window to include the rise brings it back.
	if vals := st.QuantileOver("lat_seconds", nil, 0.99, 0); len(vals) != 1 {
		t.Fatalf("full-window quantile missing: %+v", vals)
	}
}

// TestQuantileOverRingWraparound drives enough snapshots through a
// tiny ring that the buckets' early history is overwritten, and checks
// the delta baseline degrades conservatively (window-first-point
// baseline) instead of inventing observations.
func TestQuantileOverRingWraparound(t *testing.T) {
	st := NewStore(time.Minute, 4) // ring wraps after 4 snapshots
	bounds := []string{"1", "+Inf"}
	for i := 0; i <= 9; i++ {
		cum := float64(10 * i)
		putBuckets(st, "lat_seconds", nil, base.Add(time.Duration(i)*time.Second), bounds, []float64{cum, cum})
	}
	// Retained snapshots: i=6..9 (cum 60..90). Full ring, nothing
	// clipped → baseline is the window's first retained point, so the
	// delta is 90-60=30, not the lifetime 90.
	vals := st.QuantileOver("lat_seconds", nil, 0.5, 0)
	if len(vals) != 1 {
		t.Fatalf("got %d values, want 1", len(vals))
	}
	if vals[0].Count != 30 {
		t.Fatalf("wraparound count = %v, want conservative 30", vals[0].Count)
	}
	// All mass in the first bucket [0,1]: the median interpolates to
	// the bucket midpoint.
	if vals[0].Value != 0.5 {
		t.Fatalf("quantile = %v, want 0.5", vals[0].Value)
	}
}

// TestQuantileOverGrouping checks that bucket series group by base
// labels and the match selector applies to the base labels, not the
// raw bucket labels (which carry le).
func TestQuantileOverGrouping(t *testing.T) {
	st := NewStore(time.Minute, 16)
	bounds := []string{"1", "+Inf"}
	a := map[string]string{"domain": "KNC0"}
	b := map[string]string{"domain": "HSW"}
	putBuckets(st, "lat_seconds", a, base, bounds, []float64{0, 0})
	putBuckets(st, "lat_seconds", a, base.Add(time.Second), bounds, []float64{4, 4})
	putBuckets(st, "lat_seconds", b, base, bounds, []float64{0, 0})
	putBuckets(st, "lat_seconds", b, base.Add(time.Second), bounds, []float64{0, 6})
	all := st.QuantileOver("lat_seconds", nil, 0.5, 0)
	if len(all) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(all), all)
	}
	only := st.QuantileOver("lat_seconds", a, 0.5, 0)
	if len(only) != 1 || only[0].Labels["domain"] != "KNC0" || only[0].Count != 4 {
		t.Fatalf("matched group = %+v, want KNC0 count 4", only)
	}
}

func TestDecimate(t *testing.T) {
	pts := make([]Point, 10) // one point per second
	for i := range pts {
		pts[i] = Point{T: base.Add(time.Duration(i) * time.Second), V: float64(i)}
	}
	out := decimate(pts, 3*time.Second)
	if len(out) != 4 {
		t.Fatalf("decimated to %d points, want 4: %+v", len(out), out)
	}
	if out[len(out)-1].V != 9 {
		t.Fatalf("newest point dropped: %+v", out)
	}
	for i := 1; i < len(out); i++ {
		if !out[i].T.After(out[i-1].T) {
			t.Fatalf("decimated points out of order: %+v", out)
		}
	}
	if got := decimate(pts, 0); len(got) != len(pts) {
		t.Fatal("non-positive step must be a no-op")
	}
}

// TestBuildStepThinsSamples checks BuildStep decimates the displayed
// sample count while keeping deltas at full resolution.
func TestBuildStepThinsSamples(t *testing.T) {
	st := NewStore(time.Minute, 32)
	for i := 0; i <= 20; i++ {
		st.Put("c_total", nil, base.Add(time.Duration(i)*time.Second), float64(i))
	}
	full := Build(st, nil, 0)
	coarse := BuildStep(st, nil, 0, 5*time.Second)
	if coarse.StepNanos != int64(5*time.Second) {
		t.Fatalf("StepNanos = %d, want %d", coarse.StepNanos, int64(5*time.Second))
	}
	if coarse.Samples >= full.Samples {
		t.Fatalf("step did not thin samples: %d vs %d", coarse.Samples, full.Samples)
	}
	if len(coarse.Rates) != 1 || coarse.Rates[0].Delta != full.Rates[0].Delta {
		t.Fatalf("decimation changed the delta: %+v vs %+v", coarse.Rates, full.Rates)
	}
}
