// Package telemetry is the continuous-observation layer above
// internal/metrics: where the registry answers "what are the totals
// right now", this package answers "what happened over the last
// minute". A Sampler goroutine periodically snapshots a metrics
// registry — including full histogram bucket detail — into a Store of
// fixed-size rings, one per series, and Build derives the operator
// views from the retained window: windowed rates for counters,
// p50/p95/p99 from bucket-count deltas, per-domain busy/idle
// utilization attribution that reuses the critical-path category
// names, per-link bandwidth occupancy, and per-stream queue-depth
// watermarks. Histogram exemplars (metrics.Exemplar) ride along so a
// latency bucket links to the flight-recorder span that landed in it.
//
// The store is deliberately dumb and bounded: Put overwrites the
// oldest point once a series ring is full, so memory is
// series × slots × 16 bytes no matter how long the process runs, and
// readers (the /debug/timeline endpoint, hsbench -timeline) never
// contend with the scheduler hot path — the sampler reads the same
// lock-free atomics the exposition formats do.
package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Default store geometry: a one-minute window at four samples per
// second.
const (
	// DefWindow is the default rolling-window length.
	DefWindow = time.Minute
	// DefSlots is the default ring capacity per series.
	DefSlots = 240
	// DefInterval is the default sampler period (DefWindow/DefSlots).
	DefInterval = DefWindow / DefSlots
)

// Point is one sample of one series: a value observed at a time.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Series is a read-only view of one named, labeled time series with
// its retained points ordered oldest → newest.
type Series struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// Last returns the newest point, or a zero Point when empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// ringSeries is the mutable ring behind one series.
type ringSeries struct {
	name   string
	key    string // map key: name + sorted label signature
	labels map[string]string
	ring   []Point
	head   int // next write slot
	n      int // valid points, ≤ len(ring)

	// Histogram-bucket metadata, precomputed at creation for series
	// named "<family>_bucket" carrying an le label, so the windowed
	// quantile path never rebuilds base-label maps or re-parses
	// bounds on the query hot path (the health engine runs a
	// quantile rule every sampler tick).
	bucket  bool
	bound   float64           // parsed le bound (+Inf for "+Inf")
	base    map[string]string // labels without le
	baseSig string            // sorted signature of base
}

func (rs *ringSeries) put(p Point) {
	rs.ring[rs.head] = p
	rs.head = (rs.head + 1) % len(rs.ring)
	if rs.n < len(rs.ring) {
		rs.n++
	}
}

// at returns the i-th retained point (0 = oldest). The caller must
// hold the store lock and keep i < rs.n.
func (rs *ringSeries) at(i int) Point {
	start := rs.head - rs.n
	if start < 0 {
		start += len(rs.ring)
	}
	return rs.ring[(start+i)%len(rs.ring)]
}

// windowDelta is the in-place equivalent of
// windowDeltaPts(points, clip(points, cutoff), slots): the counter
// increase and observed span across the window, plus the in-window
// point count, computed directly from the ring without copying it.
// The caller must hold the store lock.
func (rs *ringSeries) windowDelta(cutoff time.Time) (delta float64, span time.Duration, inWindow int) {
	first := sort.Search(rs.n, func(i int) bool { return !rs.at(i).T.Before(cutoff) })
	inWindow = rs.n - first
	if inWindow == 0 {
		return 0, 0, 0
	}
	last := rs.at(rs.n - 1)
	if first > 0 { // newest pre-cutoff point is the baseline
		base := rs.at(first - 1)
		return last.V - base.V, last.T.Sub(base.T), inWindow
	}
	if rs.n < len(rs.ring) { // born inside the retained window
		return last.V, last.T.Sub(rs.at(0).T), inWindow
	}
	if inWindow < 2 {
		return 0, 0, inWindow
	}
	firstPt := rs.at(first)
	return last.V - firstPt.V, last.T.Sub(firstPt.T), inWindow
}

// points returns the retained points oldest → newest.
func (rs *ringSeries) points() []Point {
	out := make([]Point, 0, rs.n)
	start := rs.head - rs.n
	if start < 0 {
		start += len(rs.ring)
	}
	for i := 0; i < rs.n; i++ {
		out = append(out, rs.ring[(start+i)%len(rs.ring)])
	}
	return out
}

// Store is a rolling time-series store: a fixed-size ring per series,
// keyed by metric name plus label signature. All methods are safe for
// concurrent use; writes never block reads for long (one mutex guards
// the series map and ring cursors, and every operation is O(slots)).
type Store struct {
	mu     sync.RWMutex
	window time.Duration
	slots  int
	series map[string]*ringSeries
	// byName indexes the rings by metric name, each family kept
	// sorted by label signature, so per-family queries (the rule
	// engine runs several per tick) touch only their own series
	// instead of scanning the whole map.
	byName map[string][]*ringSeries
	// newest caches the latest sample time across all series (Put
	// only ever appends, so the maximum is monotone), making the
	// per-query window resolution O(1).
	newest    time.Time
	hasNewest bool
}

// NewStore returns a store retaining up to slots points per series,
// intended to cover the given window (window/slots is the natural
// sampling resolution). Non-positive arguments use the defaults.
func NewStore(window time.Duration, slots int) *Store {
	if window <= 0 {
		window = DefWindow
	}
	if slots <= 0 {
		slots = DefSlots
	}
	return &Store{window: window, slots: slots, series: make(map[string]*ringSeries), byName: make(map[string][]*ringSeries)}
}

var defaultStore = NewStore(DefWindow, DefSlots)

// Default returns the process-wide store, the telemetry counterpart of
// metrics.Default(): the one the CLIs sample into and the debug
// server's /debug/timeline reads when not handed a private store.
func Default() *Store { return defaultStore }

// Window returns the window the store is sized for.
func (st *Store) Window() time.Duration { return st.window }

// Resolution returns the natural sampling period (window / slots).
func (st *Store) Resolution() time.Duration { return st.window / time.Duration(st.slots) }

// key builds the series map key: name plus sorted label pairs.
func key(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	for _, k := range keys {
		sb.WriteByte('\x1f')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
	}
	return sb.String()
}

// Put records one point for the (name, labels) series, creating the
// series ring on first sight and overwriting the oldest point once the
// ring is full. The labels map is copied on series creation, so
// callers may reuse it.
func (st *Store) Put(name string, labels map[string]string, t time.Time, v float64) {
	st.mu.Lock()
	st.seriesLocked(name, labels).put(Point{T: t, V: v})
	if !st.hasNewest || t.After(st.newest) {
		st.newest = t
		st.hasNewest = true
	}
	st.mu.Unlock()
}

// seriesLocked returns the ring behind (name, labels), creating it on
// first sight. The caller must hold st.mu. The sampler keeps the
// returned handles across ticks so the steady-state path never
// rebuilds the sorted-label key.
func (st *Store) seriesLocked(name string, labels map[string]string) *ringSeries {
	k := key(name, labels)
	rs, ok := st.series[k]
	if !ok {
		var lcp map[string]string
		if len(labels) > 0 {
			lcp = make(map[string]string, len(labels))
			for lk, lv := range labels {
				lcp[lk] = lv
			}
		}
		rs = &ringSeries{name: name, key: k, labels: lcp, ring: make([]Point, st.slots)}
		if le, okLE := lcp["le"]; okLE && strings.HasSuffix(name, "_bucket") {
			rs.bucket = true
			rs.bound = math.Inf(1)
			if le != "+Inf" {
				if v, err := strconv.ParseFloat(le, 64); err == nil {
					rs.bound = v
				}
			}
			rs.base = baseLabels(lcp)
			rs.baseSig = labelSig(rs.base)
		}
		st.series[k] = rs
		fam := st.byName[name]
		at := sort.Search(len(fam), func(i int) bool { return fam[i].key >= k })
		fam = append(fam, nil)
		copy(fam[at+1:], fam[at:])
		fam[at] = rs
		st.byName[name] = fam
	}
	return rs
}

// Family returns every retained series with the given metric name,
// sorted by label signature, with points ordered oldest → newest.
func (st *Store) Family(name string) []Series {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Series
	for _, rs := range st.byName[name] {
		out = append(out, Series{Name: rs.name, Labels: rs.labels, Points: rs.points()})
	}
	return out
}

// Get returns the series exactly matching (name, labels), or a Series
// with no points when it was never written.
func (st *Store) Get(name string, labels map[string]string) Series {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if rs, ok := st.series[key(name, labels)]; ok {
		return Series{Name: rs.name, Labels: rs.labels, Points: rs.points()}
	}
	return Series{Name: name, Labels: labels}
}

// Names returns the distinct metric names present, sorted.
func (st *Store) Names() []string {
	st.mu.RLock()
	out := make([]string, 0, len(st.byName))
	for n := range st.byName {
		out = append(out, n)
	}
	st.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of retained series.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.series)
}

// Newest returns the latest sample time across all series, and false
// when the store is empty. Build uses it as "now" so that timelines
// over synthetically-timed samples (tests, replays) stay
// deterministic.
func (st *Store) Newest() (time.Time, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.newest, st.hasNewest
}
