package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"

	"hstreams/internal/metrics"
	"hstreams/internal/trace"
)

// base is an arbitrary fixed origin so every synthetic series in this
// file is deterministic.
var base = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func TestStoreRingWraparound(t *testing.T) {
	st := NewStore(time.Minute, 8)
	for i := 0; i < 20; i++ {
		st.Put("x_total", nil, base.Add(time.Duration(i)*time.Second), float64(i))
	}
	s := st.Get("x_total", nil)
	if len(s.Points) != 8 {
		t.Fatalf("retained %d points, want ring size 8", len(s.Points))
	}
	for i, p := range s.Points {
		want := float64(12 + i) // oldest 12 dropped
		if p.V != want || !p.T.Equal(base.Add(time.Duration(12+i)*time.Second)) {
			t.Fatalf("point %d = {%v %v}, want value %v in order", i, p.T, p.V, want)
		}
	}
	if last := s.Last(); last.V != 19 {
		t.Fatalf("Last = %v, want 19", last.V)
	}
}

func TestStoreSeriesIdentity(t *testing.T) {
	st := NewStore(time.Minute, 4)
	labels := map[string]string{"domain": "KNC0"}
	st.Put("a", labels, base, 1)
	labels["domain"] = "mutated" // Put must have copied the map
	st.Put("a", map[string]string{"domain": "KNC0"}, base.Add(time.Second), 2)
	st.Put("a", map[string]string{"domain": "HSW"}, base, 3)
	st.Put("b", nil, base, 4)

	if got := st.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 distinct series", got)
	}
	fam := st.Family("a")
	if len(fam) != 2 {
		t.Fatalf("Family(a) = %d series, want 2", len(fam))
	}
	s := st.Get("a", map[string]string{"domain": "KNC0"})
	if len(s.Points) != 2 || s.Points[1].V != 2 {
		t.Fatalf("KNC0 series = %+v, want two points ending at 2", s.Points)
	}
	now, ok := st.Newest()
	if !ok || !now.Equal(base.Add(time.Second)) {
		t.Fatalf("Newest = %v,%v, want %v,true", now, ok, base.Add(time.Second))
	}
}

func TestStoreDefaults(t *testing.T) {
	st := NewStore(0, 0)
	if st.Window() != DefWindow {
		t.Fatalf("Window = %v, want %v", st.Window(), DefWindow)
	}
	if got := st.Resolution(); got != DefWindow/DefSlots {
		t.Fatalf("Resolution = %v, want %v", got, DefWindow/DefSlots)
	}
	if _, ok := st.Newest(); ok {
		t.Fatal("empty store claims to have a newest sample")
	}
}

// TestBuildRateBornInWindow covers the baseline rule for counter
// series whose entire history is retained inside the window: they
// started at zero, so the windowed delta is the full last value, not
// last minus first (which would drop the first interval's increase).
func TestBuildRateBornInWindow(t *testing.T) {
	st := NewStore(time.Minute, 16)
	for i := 0; i <= 2; i++ {
		st.Put("born_total", nil, base.Add(time.Duration(i)*10*time.Second), float64(10*(i+1)))
	}
	tl := Build(st, nil, 0)
	if len(tl.Rates) != 1 {
		t.Fatalf("got %d rates, want 1: %+v", len(tl.Rates), tl.Rates)
	}
	r := tl.Rates[0]
	if r.Delta != 30 {
		t.Fatalf("born-in-window delta = %v, want full value 30", r.Delta)
	}
	if want := 30.0 / 20.0; r.PerSecond != want {
		t.Fatalf("rate = %v, want %v", r.PerSecond, want)
	}
}

// TestBuildRateClippedBaseline covers the other baseline rule: when
// the window clipped older points, the newest pre-cutoff point is the
// baseline (standard increase() behavior), so the delta covers
// exactly the window.
func TestBuildRateClippedBaseline(t *testing.T) {
	st := NewStore(30*time.Second, 128)
	for i := 0; i <= 60; i++ { // one point per second, value = 2i
		st.Put("clipped_total", nil, base.Add(time.Duration(i)*time.Second), float64(2*i))
	}
	tl := Build(st, nil, 0)
	if len(tl.Rates) != 1 {
		t.Fatalf("got %d rates, want 1", len(tl.Rates))
	}
	r := tl.Rates[0]
	// cutoff = t60-30s = t30; baseline is t29 (newest pre-cutoff), so
	// delta = 120-58 = 62 over 31s.
	if r.Delta != 62 {
		t.Fatalf("clipped delta = %v, want 62", r.Delta)
	}
	if want := 62.0 / 31.0; r.PerSecond != want {
		t.Fatalf("rate = %v, want %v", r.PerSecond, want)
	}
}

func TestBuildEmptyStore(t *testing.T) {
	tl := Build(NewStore(time.Minute, 8), nil, 0)
	if tl.Samples != 0 || len(tl.Rates) != 0 {
		t.Fatalf("empty store produced samples: %+v", tl)
	}
	if !strings.Contains(tl.Format(), "no samples retained") {
		t.Fatalf("empty Format() missing placeholder:\n%s", tl.Format())
	}
}

// putBuckets records one cumulative-histogram snapshot as the sampler
// would: one <name>_bucket series per bound plus +Inf.
func putBuckets(st *Store, name string, labels map[string]string, at time.Time, bounds []string, cum []float64) {
	for i, le := range bounds {
		st.Put(name+"_bucket", withLE(labels, le), at, cum[i])
	}
}

func TestBuildWindowedQuantiles(t *testing.T) {
	st := NewStore(time.Minute, 16)
	bounds := []string{"0.1", "1", "+Inf"}
	putBuckets(st, "lat_seconds", nil, base, bounds, []float64{0, 0, 0})
	putBuckets(st, "lat_seconds", nil, base.Add(10*time.Second), bounds, []float64{5, 10, 10})
	tl := Build(st, nil, 0)
	if len(tl.Latencies) != 1 {
		t.Fatalf("got %d latency views, want 1", len(tl.Latencies))
	}
	lv := tl.Latencies[0]
	if lv.Name != "lat_seconds" || lv.Count != 10 {
		t.Fatalf("latency view = %+v, want lat_seconds count 10", lv)
	}
	// 10 observations: rank 5 lands exactly at the top of the first
	// bucket [0, 0.1]; ranks 9.5 and 9.9 interpolate within (0.1, 1].
	if lv.P50 != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", lv.P50)
	}
	if want := 0.1 + (1-0.1)*(9.5-5)/5; math.Abs(lv.P95-want) > 1e-12 {
		t.Fatalf("p95 = %v, want %v", lv.P95, want)
	}
	if want := 0.1 + (1-0.1)*(9.9-5)/5; math.Abs(lv.P99-want) > 1e-12 {
		t.Fatalf("p99 = %v, want %v", lv.P99, want)
	}
	// A rank landing in the +Inf bucket clamps to the highest finite
	// bound rather than inventing an infinite latency.
	if got := bucketQuantile(0.99, []float64{0.1, 1, math.Inf(1)}, []float64{5, 9, 10}); got != 1 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 1", got)
	}
}

// TestBuildExemplarFromRegistry checks the bucket-delta → registry
// exemplar join: the exemplar comes from the highest in-window
// populated bucket and carries the recorded span ID.
func TestBuildExemplarFromRegistry(t *testing.T) {
	reg := metrics.New()
	h := reg.Histogram("lat_seconds", "test latency", []float64{0.1, 1})
	h.ObserveEx(50*time.Millisecond, 7, int64(time.Second))
	h.ObserveEx(500*time.Millisecond, 8, int64(2*time.Second))

	st := NewStore(time.Minute, 16)
	sam := NewSampler(SamplerOptions{Registry: reg, Store: st, Interval: time.Hour})
	sam.SampleOnce(base)
	// The observer clock advances past the exemplar throttle so this
	// observation refreshes its bucket's exemplar slot.
	h.ObserveEx(700*time.Millisecond, 9, int64(4*time.Second))
	sam.SampleOnce(base.Add(10 * time.Second))

	// A 5s window clips the first snapshot, making it the baseline —
	// so the view counts only the observation between the snapshots.
	tl := Build(st, reg, 5*time.Second)
	var lv *LatencyView
	for i := range tl.Latencies {
		if tl.Latencies[i].Name == "lat_seconds" {
			lv = &tl.Latencies[i]
		}
	}
	if lv == nil {
		t.Fatalf("no lat_seconds latency view in %+v", tl.Latencies)
	}
	if lv.Count != 1 {
		t.Fatalf("windowed count = %d, want 1 (only the last observation)", lv.Count)
	}
	if lv.Exemplar == nil || lv.Exemplar.SpanID != 9 {
		t.Fatalf("exemplar = %+v, want span 9 from the populated (0.1,1] bucket", lv.Exemplar)
	}
}

func TestBuildUtilizationAttribution(t *testing.T) {
	st := NewStore(time.Minute, 16)
	t0, t1 := base, base.Add(10*time.Second)
	st.Put("hstreams_domain_streams", map[string]string{"domain": "KNC0"}, t0, 2)
	st.Put("hstreams_domain_streams", map[string]string{"domain": "KNC0"}, t1, 2)
	cl := map[string]string{"kind": "compute", "domain": "KNC0"}
	xl := map[string]string{"kind": "transfer", "domain": "KNC0"}
	st.Put("hstreams_action_duration_seconds_sum", cl, t0, 1)
	st.Put("hstreams_action_duration_seconds_sum", cl, t1, 7)
	st.Put("hstreams_action_duration_seconds_sum", xl, t0, 0)
	st.Put("hstreams_action_duration_seconds_sum", xl, t1, 2)

	tl := Build(st, nil, 0)
	if len(tl.Utilization) != 1 {
		t.Fatalf("got %d utilization rows, want 1", len(tl.Utilization))
	}
	uv := tl.Utilization[0]
	if uv.Domain != "KNC0" || uv.Streams != 2 {
		t.Fatalf("row = %+v, want KNC0 with 2 streams", uv)
	}
	// Both sum series are born inside the window, so busy is the full
	// last value per category.
	if uv.Categories[trace.CatCompute] != 7 || uv.Categories[trace.CatTransfer] != 2 {
		t.Fatalf("categories = %v, want compute=7 transfer=2", uv.Categories)
	}
	if uv.BusySeconds != 9 {
		t.Fatalf("busy = %v, want 9", uv.BusySeconds)
	}
	if want := 10.0 * 2; uv.CapacitySeconds != want {
		t.Fatalf("capacity = %v, want %v", uv.CapacitySeconds, want)
	}
	if want := 9.0 / 20.0; uv.Utilization != want {
		t.Fatalf("utilization = %v, want %v", uv.Utilization, want)
	}
}

func TestBuildQueuesAndLinks(t *testing.T) {
	st := NewStore(time.Minute, 16)
	t0, t1, t2 := base, base.Add(5*time.Second), base.Add(10*time.Second)
	ql := map[string]string{"stream": "KNC0.s1"}
	st.Put("hstreams_queue_depth", ql, t0, 1)
	st.Put("hstreams_queue_depth", ql, t1, 6)
	st.Put("hstreams_queue_depth", ql, t2, 3)
	st.Put("hstreams_queue_depth_peak", ql, t2, 9)
	ll := map[string]string{"src": "HSW", "dst": "KNC0"}
	st.Put("hstreams_link_bytes_total", ll, t0, 0)
	st.Put("hstreams_link_bytes_total", ll, t2, 1e6)
	st.Put("hstreams_link_transfers_total", ll, t0, 0)
	st.Put("hstreams_link_transfers_total", ll, t2, 4)
	st.Put("hstreams_link_occupancy_seconds_sum", ll, t0, 0)
	st.Put("hstreams_link_occupancy_seconds_sum", ll, t2, 2.5)

	tl := Build(st, nil, 0)
	if len(tl.Queues) != 1 {
		t.Fatalf("got %d queues, want 1", len(tl.Queues))
	}
	q := tl.Queues[0]
	if q.Depth != 3 || q.WindowMax != 6 || q.Peak != 9 {
		t.Fatalf("queue = %+v, want depth 3, window-max 6, peak 9", q)
	}
	if len(tl.Links) != 1 {
		t.Fatalf("got %d links, want 1", len(tl.Links))
	}
	l := tl.Links[0]
	if l.Src != "HSW" || l.Dst != "KNC0" {
		t.Fatalf("link = %+v", l)
	}
	if want := 1e6 / 10.0; l.BytesPerSecond != want {
		t.Fatalf("bandwidth = %v, want %v", l.BytesPerSecond, want)
	}
	if l.Transfers != 4 {
		t.Fatalf("transfers = %v, want 4", l.Transfers)
	}
	if want := 2.5 / 10.0; l.Occupancy != want {
		t.Fatalf("occupancy = %v, want %v", l.Occupancy, want)
	}
}

func TestBuildRateTruncation(t *testing.T) {
	st := NewStore(time.Minute, 8)
	for i := 0; i < maxRates+7; i++ {
		labels := map[string]string{"i": strings.Repeat("x", i+1)}
		st.Put("many_total", labels, base, 0)
		st.Put("many_total", labels, base.Add(time.Second), float64(i+1))
	}
	tl := Build(st, nil, 0)
	if len(tl.Rates) != maxRates {
		t.Fatalf("got %d rates, want cap %d", len(tl.Rates), maxRates)
	}
	if tl.RatesTruncated != 7 {
		t.Fatalf("RatesTruncated = %d, want 7", tl.RatesTruncated)
	}
	// Largest-first ordering: the biggest delta survives truncation.
	if tl.Rates[0].Delta != float64(maxRates+7) {
		t.Fatalf("top rate delta = %v, want %v", tl.Rates[0].Delta, float64(maxRates+7))
	}
}

func TestFormatRendersSections(t *testing.T) {
	st := NewStore(time.Minute, 16)
	st.Put("hstreams_actions_total", nil, base, 0)
	st.Put("hstreams_actions_total", nil, base.Add(time.Second), 42)
	putBuckets(st, "lat_seconds", nil, base, []string{"1", "+Inf"}, []float64{0, 0})
	putBuckets(st, "lat_seconds", nil, base.Add(time.Second), []string{"1", "+Inf"}, []float64{3, 3})
	st.Put("hstreams_domain_streams", map[string]string{"domain": "HSW"}, base.Add(time.Second), 1)
	out := Build(st, nil, 0).Format()
	for _, want := range []string{"timeline:", "rates:", "hstreams_actions_total", "latency (windowed):", "utilization:", "HSW"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}
