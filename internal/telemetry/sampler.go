package telemetry

import (
	"math"
	"strconv"
	"sync"
	"time"

	"hstreams/internal/metrics"
)

// SamplerOptions configures NewSampler. The zero value samples the
// process-default registry into the process-default store every
// DefInterval.
type SamplerOptions struct {
	// Registry is the metrics registry to snapshot. Nil means
	// metrics.Default().
	Registry *metrics.Registry
	// Store receives the sampled points. Nil means Default().
	Store *Store
	// Interval is the sampling period. Non-positive means DefInterval.
	Interval time.Duration
	// OnSample, when non-nil, runs synchronously on the sampling
	// goroutine at the end of every snapshot, after the store holds the
	// tick's points. The health engine hangs its rule-evaluation +
	// watchdog tick here so verdicts ride the sampler cadence instead
	// of needing their own timer. It must not call back into the
	// sampler.
	OnSample func(now time.Time)
}

// Sampler periodically snapshots a metrics registry into a Store. It
// walks the registry's lock-free atomics (Snapshot plus
// SnapshotHistograms for per-bucket detail), so sampling never blocks
// the scheduler hot path; the only synchronization is the store's own
// mutex, which no scheduler goroutine touches.
//
// The sampler registers two self-metrics on the registry it samples —
// hstreams_telemetry_samples_total and hstreams_telemetry_series — so
// its own liveness shows up in the timeline it produces.
type Sampler struct {
	reg      *metrics.Registry
	store    *Store
	interval time.Duration

	samples  *metrics.Counter
	series   *metrics.Gauge
	onSample func(time.Time)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	// Cached ring handles from the previous tick, aligned with the
	// registry's deterministic snapshot order. Each entry is validated
	// (name + labels, or histogram name + bound) before reuse, so a
	// registry that grew mid-run only costs the shifted entries one
	// slow-path resolution; the steady state never rebuilds the
	// store's sorted-label keys. Touched only by the sampling
	// goroutine (or synchronous SampleOnce callers).
	scalars []*ringSeries
	buckets []bucketSlot
}

// bucketSlot caches one histogram bucket's ring, identified by the
// histogram family name, base labels (held by the ring itself), and
// bucket bound (+Inf for the overflow bucket).
type bucketSlot struct {
	rs       *ringSeries
	histName string
	bound    float64
}

// NewSampler builds a sampler from opts (see SamplerOptions for the
// zero-value defaults). The sampler is idle until Start; SampleOnce
// may also be called directly for synchronous, test-controlled
// sampling.
func NewSampler(opts SamplerOptions) *Sampler {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	st := opts.Store
	if st == nil {
		st = Default()
	}
	iv := opts.Interval
	if iv <= 0 {
		iv = DefInterval
	}
	return &Sampler{
		reg:      reg,
		store:    st,
		interval: iv,
		samples:  reg.Counter("hstreams_telemetry_samples_total", "Snapshots taken by the telemetry sampler."),
		series:   reg.Gauge("hstreams_telemetry_series", "Time series retained in the telemetry store."),
		onSample: opts.OnSample,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Store returns the store this sampler writes to.
func (s *Sampler) Store() *Store { return s.store }

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the sampling goroutine. It takes one sample
// immediately, then one per interval until Stop. Start is idempotent.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			s.SampleOnce(time.Now())
			t := time.NewTicker(s.interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case now := <-t.C:
					s.SampleOnce(now)
				}
			}
		}()
	})
}

// Stop halts the sampling goroutine and waits for it to exit, then
// takes one final sample so the store's newest points reflect the
// end-of-run totals. Stop is idempotent and safe to call even if
// Start never ran.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
	})
	s.startOnce.Do(func() { close(s.done) }) // never started: mark done
	<-s.done
	s.SampleOnce(time.Now())
}

// SampleOnce takes one synchronous snapshot of the registry at the
// given sample time: every flat sample (counters, gauges, histogram
// _count/_sum) becomes a point, and every histogram bucket becomes a
// point on a "<name>_bucket" series with an additional le label, so
// windowed quantiles can be derived from bucket-count deltas.
func (s *Sampler) SampleOnce(now time.Time) {
	samples := s.reg.Snapshot()
	hists := s.reg.SnapshotHistograms()
	nb := 0
	for _, h := range hists {
		nb += len(h.Bounds) + 1
	}

	st := s.store
	st.mu.Lock()
	if len(s.scalars) != len(samples) {
		s.scalars = make([]*ringSeries, len(samples))
	}
	for i, smp := range samples {
		rs := s.scalars[i]
		if rs == nil || rs.name != smp.Name || !labelsEqual(rs.labels, smp.Labels) {
			rs = st.seriesLocked(smp.Name, smp.Labels)
			s.scalars[i] = rs
		}
		rs.put(Point{T: now, V: smp.Value})
	}
	if len(s.buckets) != nb {
		s.buckets = make([]bucketSlot, nb)
	}
	j := 0
	for _, h := range hists {
		for i := 0; i <= len(h.Bounds); i++ {
			b := math.Inf(1)
			v := float64(h.Count)
			if i < len(h.Bounds) {
				b = h.Bounds[i]
				v = float64(h.Cumulative[i])
			}
			sl := &s.buckets[j]
			j++
			if sl.rs == nil || sl.histName != h.Name || sl.bound != b || !bucketLabelsMatch(sl.rs.labels, h.Labels) {
				le := "+Inf"
				if !math.IsInf(b, 1) {
					le = formatLE(b)
				}
				sl.rs = st.seriesLocked(h.Name+"_bucket", withLE(h.Labels, le))
				sl.histName, sl.bound = h.Name, b
			}
			sl.rs.put(Point{T: now, V: v})
		}
	}
	if (len(samples) > 0 || nb > 0) && (!st.hasNewest || now.After(st.newest)) {
		st.newest = now
		st.hasNewest = true
	}
	nseries := len(st.series)
	st.mu.Unlock()

	s.samples.Inc()
	s.series.Set(int64(nseries))
	if s.onSample != nil {
		s.onSample(now)
	}
}

// bucketLabelsMatch reports whether got is exactly base plus an le
// label (the le value itself is pinned by the cached bucket bound).
func bucketLabelsMatch(got, base map[string]string) bool {
	if len(got) != len(base)+1 {
		return false
	}
	for k, v := range base {
		if got[k] != v {
			return false
		}
	}
	_, ok := got["le"]
	return ok
}

// withLE copies labels and adds the bucket's le label.
func withLE(labels map[string]string, le string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out["le"] = le
	return out
}

// formatLE renders a finite bucket bound the way the Prometheus text
// format does (shortest round-trip representation).
func formatLE(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
