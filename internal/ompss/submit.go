package ompss

import (
	"hstreams/internal/core"
	"hstreams/internal/cudasim"
	"hstreams/internal/platform"
)

// Submit schedules a task with declared operands (the #pragma omp
// task in/out/inout of OmpSs). The runtime picks the device by data
// affinity, picks a stream round-robin, moves stale data, enforces
// dependences, and issues everything asynchronously. The returned
// task completes when the kernel does.
func (r *Runtime) Submit(kernel string, scalars []int64, args []Arg, cost platform.Cost) (*Task, error) {
	r.API.Hit("ompss_task_submit")
	if r.done {
		return nil, ErrFinished
	}
	if len(args) == 0 {
		return nil, ErrBadAccess
	}
	// Dynamic task instantiation and dependence analysis cost time on
	// the source thread; dispatch latency rides the task itself —
	// the price of OmpSs's conveniences (§III).
	r.Core().ChargeSource(r.overhead)
	cost.Extra += r.dispatch

	dev := r.pickDevice(args)

	// Gather dependences from the declared accesses.
	var deps []taskRef
	for _, a := range args {
		reg := a.R
		if a.Acc != Out { // read: after last writer (RAW)
			if reg.lastWriter.act != nil {
				deps = append(deps, reg.lastWriter)
			}
		}
		if a.Acc != In { // write: after last writer (WAW) and readers (WAR)
			if reg.lastWriter.act != nil {
				deps = append(deps, reg.lastWriter)
			}
			deps = append(deps, reg.readersSince...)
		}
	}

	// Stream choice: follow the OUTPUT chain — schedule onto the
	// stream that last wrote this task's first written region, so
	// successive updates of one datum serialize in-stream for free
	// while independent chains spread round-robin. (Following input
	// dependences instead would collapse fan-out graphs like tiled
	// Cholesky into a single stream.)
	sIdx := -1
	for _, a := range args {
		if a.Acc == In {
			continue
		}
		if lw := a.R.lastWriter; lw.act != nil && lw.dev == dev && !lw.act.Completed() {
			sIdx = lw.stream
		}
		break
	}
	if sIdx < 0 {
		sIdx = r.rr[dev] % r.cfg.StreamsPerDevice
		r.rr[dev]++
	}

	// Stage data the task reads onto the chosen device.
	for _, a := range args {
		if a.Acc == Out {
			if err := r.ensureAlloc(a.R, dev); err != nil {
				return nil, err
			}
			continue
		}
		if err := r.stage(a.R, dev, sIdx, &deps); err != nil {
			return nil, err
		}
	}

	ref, err := r.launch(kernel, scalars, args, cost, dev, sIdx, deps)
	if err != nil {
		return nil, err
	}

	// Update the access history.
	for _, a := range args {
		reg := a.R
		if a.Acc == In {
			reg.readersSince = append(reg.readersSince, ref)
			continue
		}
		reg.lastWriter = ref
		reg.readersSince = nil
		reg.freshOn = dev
		reg.validOn = map[int]bool{dev: true}
		reg.stagedBy = map[int]taskRef{}
	}
	return &Task{Act: ref.act, Dev: dev}, nil
}

// pickDevice scores devices by how many operands are already valid
// there (data-affinity scheduling), breaking ties round-robin.
func (r *Runtime) pickDevice(args []Arg) int {
	best, bestScore := -1, -1
	n := r.Devices()
	for i := 0; i < n; i++ {
		dev := (r.devRR + i) % n
		score := 0
		for _, a := range args {
			if a.R.validOn[dev] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = dev, score
		}
	}
	r.devRR++
	return best
}

// ensureAlloc lazily allocates the region's instance on dev (CUDA
// back end keeps one pointer per device address space).
func (r *Runtime) ensureAlloc(reg *Region, dev int) error {
	if r.cu == nil || reg.ptrs[dev] != nil {
		return nil
	}
	p, err := r.cu.Malloc(dev, reg.size)
	if err != nil {
		return err
	}
	reg.ptrs[dev] = p
	return nil
}

// stage makes reg valid on dev, enqueueing the needed transfers and
// appending their completion to deps.
func (r *Runtime) stage(reg *Region, dev, sIdx int, deps *[]taskRef) error {
	if err := r.ensureAlloc(reg, dev); err != nil {
		return err
	}
	if reg.validOn[dev] {
		// An earlier task's staging transfer may still be in flight
		// in another stream; this task must wait for it.
		if st, ok := reg.stagedBy[dev]; ok && st.act != nil && !st.act.Completed() {
			*deps = append(*deps, st)
		}
		return nil
	}
	// If another device holds the freshest copy, pull it home first
	// (cards only talk to the host, as in the paper's Cholesky).
	if reg.freshOn >= 0 && reg.freshOn != dev {
		pull, err := r.xfer(reg, reg.freshOn, reg.lastWriter.stream, core.ToSource, reg.lastWriter)
		if err != nil {
			return err
		}
		reg.freshOn = -1
		reg.lastWriter = pull
	}
	// Push host copy out to dev on the task's stream.
	push, err := r.xfer(reg, dev, sIdx, core.ToSink, reg.lastWriter)
	if err != nil {
		return err
	}
	reg.validOn[dev] = true
	reg.stagedBy[dev] = push
	*deps = append(*deps, push)
	return nil
}

// xfer enqueues one transfer for reg on (dev, stream sIdx) in the
// given direction, ordered after the `after` task if it lives in a
// different stream.
func (r *Runtime) xfer(reg *Region, dev, sIdx int, dir core.XferDir, after taskRef) (taskRef, error) {
	if r.hs != nil {
		s := r.hsStreams[dev][sIdx]
		var deps []*core.Action
		if after.act != nil && (after.dev != dev || after.stream != sIdx) {
			deps = append(deps, after.act)
		}
		r.API.Hit("hStreams_EnqueueData")
		a, err := s.EnqueueXferDeps(reg.buf, 0, reg.size, dir, deps)
		if err != nil {
			return taskRef{}, err
		}
		return taskRef{act: a, dev: dev, stream: sIdx}, nil
	}
	// CUDA back end: cross-stream ordering requires an explicit
	// event recorded in the producer stream.
	st := r.cuStreams[dev][sIdx]
	if after.act != nil && (after.dev != dev || after.stream != sIdx) {
		if err := r.cudaWait(st, after); err != nil {
			return taskRef{}, err
		}
	}
	var a *core.Action
	var err error
	if dir == core.ToSink {
		a, err = st.MemcpyH2DAsync(reg.ptrs[dev], 0, reg.size)
	} else {
		a, err = st.MemcpyD2HAsync(reg.ptrs[dev], 0, reg.size)
	}
	if err != nil {
		return taskRef{}, err
	}
	return taskRef{act: a, dev: dev, stream: sIdx}, nil
}

// cudaWait makes st wait for `after` using an event recorded in the
// producer's stream — the explicit enforcement hStreams avoids.
func (r *Runtime) cudaWait(st *cudasim.Stream, after taskRef) error {
	ev := r.cu.EventCreate()
	src := r.cuStreams[after.dev][after.stream]
	if err := src.Record(ev); err != nil {
		return err
	}
	return st.WaitEvent(ev)
}

// launch enqueues the compute with dependences enforced.
func (r *Runtime) launch(kernel string, scalars []int64, args []Arg, cost platform.Cost, dev, sIdx int, deps []taskRef) (taskRef, error) {
	if r.hs != nil {
		s := r.hsStreams[dev][sIdx]
		// Cross-stream dependences attach to this action only —
		// later independent work in the stream is unaffected.
		// In-stream dependences come free from the FIFO semantic +
		// operand overlap: the hStreams advantage (§IV).
		var cross []*core.Action
		for _, d := range deps {
			if d.dev != dev || d.stream != sIdx {
				cross = append(cross, d.act)
			}
		}
		ops := make([]core.Operand, len(args))
		for i, a := range args {
			acc := core.InOut
			switch a.Acc {
			case In:
				acc = core.In
			case Out:
				acc = core.Out
			}
			ops[i] = a.R.buf.Range(0, a.R.size, acc)
		}
		r.API.Hit("hStreams_EnqueueCompute")
		act, err := s.EnqueueComputeDeps(kernel, scalars, ops, cost, cross)
		if err != nil {
			return taskRef{}, err
		}
		return taskRef{act: act, dev: dev, stream: sIdx}, nil
	}
	st := r.cuStreams[dev][sIdx]
	for _, d := range deps {
		if d.dev != dev || d.stream != sIdx {
			if err := r.cudaWait(st, d); err != nil {
				return taskRef{}, err
			}
		}
	}
	cargs := make([]cudasim.Arg, len(args))
	for i, a := range args {
		cargs[i] = cudasim.Arg{Ptr: a.R.ptrs[dev], Off: 0, Len: a.R.size}
	}
	act, err := st.Launch(kernel, scalars, cargs, cost)
	if err != nil {
		return taskRef{}, err
	}
	return taskRef{act: act, dev: dev, stream: sIdx}, nil
}

// Taskwait blocks until every submitted task (and implicit transfer)
// completes.
func (r *Runtime) Taskwait() {
	r.API.Hit("ompss_taskwait")
	r.Core().ThreadSynchronize()
}

// SyncToHost pulls the region's freshest copy back to the host
// (hStreams back end; used by Real-mode correctness tests) and blocks
// until it lands.
func (r *Runtime) SyncToHost(reg *Region) error {
	r.API.Hit("ompss_sync_data")
	if reg.freshOn < 0 || r.hs == nil {
		return nil
	}
	pull, err := r.xfer(reg, reg.freshOn, reg.lastWriter.stream, core.ToSource, reg.lastWriter)
	if err != nil {
		return err
	}
	if err := pull.act.Wait(); err != nil {
		return err
	}
	reg.freshOn = -1
	reg.lastWriter = pull
	return nil
}
