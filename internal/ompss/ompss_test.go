package ompss

import (
	"testing"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/kernels"
	"hstreams/internal/platform"
)

func newRT(t *testing.T, backend Backend, mode core.Mode, cards int) *Runtime {
	t.Helper()
	r, err := Init(Config{
		Machine: platform.HSWPlusKNC(cards),
		Mode:    mode,
		Backend: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Fini)
	return r
}

func cost(n int) platform.Cost {
	return platform.Cost{Kernel: platform.KDGEMM, Flops: 2 * float64(n) * float64(n) * float64(n), N: n}
}

func TestRealDataflowCorrectness(t *testing.T) {
	// A chain of dependent affine tasks across a 2-card machine with
	// automatic data movement must match sequential execution.
	r := newRT(t, BackendHStreams, core.ModeReal, 2)
	kernels.Register(r.Core())
	r.Core().RegisterKernel("affine", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		m, c := float64(ctx.Args[0]), float64(ctx.Args[1])
		for i := range v {
			v[i] = v[i]*m + c
		}
	})
	reg, err := r.CreateData(16 * 8)
	if err != nil {
		t.Fatal(err)
	}
	host := reg.Buf().HostFloat64s()
	for i := range host {
		host[i] = 1
	}
	// x = ((1*2+1)*3+2)*2+5 = 27
	steps := [][2]int64{{2, 1}, {3, 2}, {2, 5}}
	want := 1.0
	for _, s := range steps {
		if _, err := r.Submit("affine", s[:], []Arg{{reg, InOut}}, platform.Cost{}); err != nil {
			t.Fatal(err)
		}
		want = want*float64(s[0]) + float64(s[1])
	}
	r.Taskwait()
	if err := r.SyncToHost(reg); err != nil {
		t.Fatal(err)
	}
	if err := r.Core().Err(); err != nil {
		t.Fatal(err)
	}
	for i := range host {
		if host[i] != want {
			t.Fatalf("host[%d] = %v, want %v", i, host[i], want)
		}
	}
}

func TestRealIndependentTasksProduceCorrectResults(t *testing.T) {
	r := newRT(t, BackendHStreams, core.ModeReal, 2)
	r.Core().RegisterKernel("setval", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i] = float64(ctx.Args[0])
		}
	})
	var regs []*Region
	for i := 0; i < 6; i++ {
		reg, err := r.CreateData(8 * 8)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg)
		if _, err := r.Submit("setval", []int64{int64(10 + i)}, []Arg{{reg, Out}}, platform.Cost{}); err != nil {
			t.Fatal(err)
		}
	}
	r.Taskwait()
	for i, reg := range regs {
		if err := r.SyncToHost(reg); err != nil {
			t.Fatal(err)
		}
		if got := reg.Buf().HostFloat64s()[0]; got != float64(10+i) {
			t.Fatalf("region %d = %v, want %d", i, got, 10+i)
		}
	}
}

func TestDependenceOrderInSim(t *testing.T) {
	r := newRT(t, BackendHStreams, core.ModeSim, 2)
	reg, _ := r.CreateData(8 << 20)
	t1, err := r.Submit("k", nil, []Arg{{reg, InOut}}, cost(2000))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r.Submit("k", nil, []Arg{{reg, InOut}}, cost(1000))
	if err != nil {
		t.Fatal(err)
	}
	r.Taskwait()
	_, e1 := t1.Act.Times()
	s2, _ := t2.Act.Times()
	if s2 < e1 {
		t.Fatalf("RAW/WAW dependence violated: %v < %v", s2, e1)
	}
}

func TestAffinityScheduling(t *testing.T) {
	// Once a region lives on a device, dependent tasks should stay
	// there rather than bouncing data around.
	r := newRT(t, BackendHStreams, core.ModeSim, 2)
	reg, _ := r.CreateData(4 << 20)
	first, _ := r.Submit("k", nil, []Arg{{reg, InOut}}, cost(1000))
	for i := 0; i < 5; i++ {
		tk, err := r.Submit("k", nil, []Arg{{reg, InOut}}, cost(1000))
		if err != nil {
			t.Fatal(err)
		}
		if tk.Dev != first.Dev {
			t.Fatalf("task %d bounced to device %d (data on %d)", i, tk.Dev, first.Dev)
		}
	}
	r.Taskwait()
}

func TestIndependentRegionsSpreadAcrossDevices(t *testing.T) {
	r := newRT(t, BackendHStreams, core.ModeSim, 2)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		reg, _ := r.CreateData(1 << 20)
		tk, err := r.Submit("k", nil, []Arg{{reg, Out}}, cost(500))
		if err != nil {
			t.Fatal(err)
		}
		seen[tk.Dev] = true
	}
	r.Taskwait()
	if len(seen) != 2 {
		t.Fatalf("independent tasks used %d devices, want 2", len(seen))
	}
}

func TestAutomaticTransfersInserted(t *testing.T) {
	// The user never enqueues a transfer; the runtime must.
	r := newRT(t, BackendHStreams, core.ModeSim, 1)
	reg, _ := r.CreateData(8 << 20)
	if _, err := r.Submit("k", nil, []Arg{{reg, InOut}}, cost(1000)); err != nil {
		t.Fatal(err)
	}
	r.Taskwait()
	if r.Core().SimLinkBusy(1, 0) == 0 {
		t.Fatal("no H2D transfer was inserted for stale device data")
	}
}

func TestWriteOnlySkipsStaging(t *testing.T) {
	r := newRT(t, BackendHStreams, core.ModeSim, 1)
	reg, _ := r.CreateData(8 << 20)
	if _, err := r.Submit("k", nil, []Arg{{reg, Out}}, cost(1000)); err != nil {
		t.Fatal(err)
	}
	r.Taskwait()
	if r.Core().SimLinkBusy(1, 0) != 0 {
		t.Fatal("write-only operand was staged to the device")
	}
}

func TestTaskOverheadCharged(t *testing.T) {
	run := func(overhead time.Duration) time.Duration {
		r, err := Init(Config{
			Machine:         platform.HSWPlusKNC(1),
			Mode:            core.ModeSim,
			Backend:         BackendHStreams,
			TaskOverhead:    overhead,
			DispatchLatency: time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Fini()
		reg, _ := r.CreateData(1 << 16)
		for i := 0; i < 50; i++ {
			if _, err := r.Submit("k", nil, []Arg{{reg, InOut}}, cost(64)); err != nil {
				t.Fatal(err)
			}
		}
		r.Taskwait()
		return r.Makespan()
	}
	cheap := run(time.Microsecond)
	costly := run(500 * time.Microsecond)
	if costly <= cheap {
		t.Fatalf("task overhead has no effect: %v vs %v", costly, cheap)
	}
}

func TestCUDABackendRejectsRealMode(t *testing.T) {
	if _, err := Init(Config{
		Machine: platform.HSWPlusK40(1),
		Mode:    core.ModeReal,
		Backend: BackendCUDA,
	}); err != ErrCUDARealMode {
		t.Fatalf("err = %v, want ErrCUDARealMode", err)
	}
}

func TestCUDABackendDependences(t *testing.T) {
	r, err := Init(Config{
		Machine: platform.HSWPlusK40(1),
		Mode:    core.ModeSim,
		Backend: BackendCUDA,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Fini()
	// tA writes A, tB writes B (different streams via round-robin);
	// tC reads both, so one of its dependences is necessarily in
	// another stream and must be enforced with explicit events.
	regA, err := r.CreateData(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	regB, _ := r.CreateData(4 << 20)
	tA, err := r.Submit("k", nil, []Arg{{regA, Out}}, cost(1500))
	if err != nil {
		t.Fatal(err)
	}
	tB, err := r.Submit("k", nil, []Arg{{regB, Out}}, cost(1500))
	if err != nil {
		t.Fatal(err)
	}
	tC, err := r.Submit("k", nil, []Arg{{regA, In}, {regB, In}, {regA, InOut}}, cost(700))
	if err != nil {
		t.Fatal(err)
	}
	r.Taskwait()
	_, eA := tA.Act.Times()
	_, eB := tB.Act.Times()
	sC, _ := tC.Act.Times()
	if sC < eA || sC < eB {
		t.Fatalf("CUDA backend dependence violated: C starts %v, A ends %v, B ends %v", sC, eA, eB)
	}
	// The explicit enforcement must show up as event API traffic.
	if r.cu.API.Count("cudaEventRecord") == 0 || r.cu.API.Count("cudaStreamWaitEvent") == 0 {
		t.Fatalf("no explicit CUDA event synchronization was issued: %s", r.cu.API.String())
	}
}

func TestBackendComparisonHStreamsFaster(t *testing.T) {
	// The paper's §IV result: for the same task graph, the hStreams
	// back end beats the CUDA Streams back end because dependences
	// ride on the FIFO semantic instead of explicit events and
	// strict FIFO queues. (The full 4K×4K matmul reproduction lives
	// in the benchmark harness; this guards the direction.)
	run := func(b Backend) time.Duration {
		r, err := Init(Config{
			Machine: platform.HSWPlusKNC(1), // same hardware for both
			Mode:    core.ModeSim,
			Backend: b,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Fini()
		// 2×2-tiled matmul task graph (the paper's case): C_ij
		// accumulates over k, A/B tiles shared between tasks.
		const nt = 2
		var a, bb, c [nt][nt]*Region
		for i := 0; i < nt; i++ {
			for j := 0; j < nt; j++ {
				a[i][j], _ = r.CreateData(8 << 20)
				bb[i][j], _ = r.CreateData(8 << 20)
				c[i][j], _ = r.CreateData(8 << 20)
			}
		}
		for i := 0; i < nt; i++ {
			for j := 0; j < nt; j++ {
				for k := 0; k < nt; k++ {
					if _, err := r.Submit("dgemm", nil,
						[]Arg{{a[i][k], In}, {bb[k][j], In}, {c[i][j], InOut}}, cost(2048)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		r.Taskwait()
		return r.Makespan()
	}
	hs := run(BackendHStreams)
	cu := run(BackendCUDA)
	if hs >= cu {
		t.Fatalf("hStreams backend (%v) not faster than CUDA backend (%v)", hs, cu)
	}
}

func TestSubmitValidation(t *testing.T) {
	r := newRT(t, BackendHStreams, core.ModeSim, 1)
	if _, err := r.Submit("k", nil, nil, cost(10)); err != ErrBadAccess {
		t.Fatalf("err = %v, want ErrBadAccess", err)
	}
	r.Fini()
	reg := &Region{r: r, validOn: map[int]bool{}}
	if _, err := r.Submit("k", nil, []Arg{{reg, In}}, cost(10)); err != ErrFinished {
		t.Fatalf("err = %v, want ErrFinished", err)
	}
}
