// Package ompss models the OmpSs task-dataflow programming model
// ported on top of hStreams, as described in the paper (§IV "OmpSs on
// top of hStreams"):
//
//   - Data management: data is allocated automatically on devices and
//     moved implicitly as scheduled tasks need it; the runtime tracks
//     accesses for correctness.
//   - Resource management: streams and events are created and managed
//     transparently.
//   - Execution flow: tasks are submitted with declared in/out
//     operands, dependences are detected dynamically, work is
//     distributed over several streams per device, and everything is
//     issued asynchronously.
//
// Two back ends reproduce the paper's backend comparison: on hStreams
// (internal/core), in-stream dependences ride on the FIFO-semantic
// operand analysis for free; on CUDA Streams (internal/cudasim),
// OmpSs must create, record and wait events to enforce every
// cross-stream dependence explicitly, and strict FIFO queues forfeit
// in-stream overlap — the combination behind the paper's 1.45×
// hStreams advantage for a tiled matmul.
//
// The conveniences cost overhead: every Submit charges TaskOverhead
// of source-thread time for dynamic task instantiation and
// scheduling, reproducing the 15–50 % OmpSs-over-hStreams overhead at
// mid problem sizes (§III). The CUDA back end supports Sim mode only.
package ompss

import (
	"errors"
	"fmt"
	"time"

	"hstreams/internal/apistat"
	"hstreams/internal/core"
	"hstreams/internal/cudasim"
	"hstreams/internal/platform"
)

// Backend selects the offload layer under the OmpSs runtime.
type Backend int

const (
	// BackendHStreams runs over internal/core.
	BackendHStreams Backend = iota
	// BackendCUDA runs over internal/cudasim (Sim mode only).
	BackendCUDA
)

// Common errors.
var (
	ErrCUDARealMode = errors.New("ompss: CUDA backend supports Sim mode only")
	ErrBadAccess    = errors.New("ompss: task must declare at least one operand")
	ErrFinished     = errors.New("ompss: runtime finished")
)

// DefaultTaskOverhead is the modeled per-task instantiation and
// dynamic-scheduling cost on the source thread. Calibrated so tiled
// Cholesky at n = 4800–10000 shows the paper's 15–50 % overhead over
// plain hStreams and converges for large n.
const DefaultTaskOverhead = 55 * time.Microsecond

// DefaultDispatchLatency is the modeled delay between a task becoming
// ready and the dynamic scheduler actually launching it: Nanos++
// worker polling and queue management, plus the sink-side buffer
// allocation the OmpSs configuration paid on every task because it
// did not enable COI's 2 MB buffer pool (§III: "When they were not
// enabled, as in the OmpSs case, the COI allocation overheads were
// significant"). It rides the critical path of dependence chains,
// which is why fully dynamic task instantiation hurts small
// granularities (§VI) — calibrated to the paper's 15–50 % overhead
// band for Cholesky at n = 4800–10000, converging at large n.
const DefaultDispatchLatency = 500 * time.Microsecond

// Access declares a task operand's direction.
type Access int

const (
	// In is read-only.
	In Access = iota
	// Out is write-only.
	Out
	// InOut is read-write.
	InOut
)

// Config configures Init.
type Config struct {
	Machine *platform.Machine
	Mode    core.Mode
	Backend Backend
	// StreamsPerDevice is how many streams the runtime manages per
	// device (default 4, the OmpSs prefetch/overlap configuration).
	StreamsPerDevice int
	// TaskOverhead overrides DefaultTaskOverhead when positive.
	TaskOverhead time.Duration
	// DispatchLatency overrides DefaultDispatchLatency when positive.
	DispatchLatency time.Duration
}

// Runtime is an OmpSs runtime instance.
type Runtime struct {
	cfg Config
	API apistat.Counter

	hs        *core.Runtime
	hsStreams [][]*core.Stream

	cu        *cudasim.CUDA
	cuStreams [][]*cudasim.Stream

	overhead time.Duration
	dispatch time.Duration
	rr       []int
	devRR    int
	regions  []*Region
	done     bool
}

// Init brings up the runtime and its transparently managed streams.
func Init(cfg Config) (*Runtime, error) {
	if cfg.StreamsPerDevice <= 0 {
		cfg.StreamsPerDevice = 4
	}
	r := &Runtime{cfg: cfg, overhead: cfg.TaskOverhead, dispatch: cfg.DispatchLatency}
	if r.overhead <= 0 {
		r.overhead = DefaultTaskOverhead
	}
	if r.dispatch <= 0 {
		r.dispatch = DefaultDispatchLatency
	}
	switch cfg.Backend {
	case BackendHStreams:
		rt, err := core.Init(core.Config{Machine: cfg.Machine, Mode: cfg.Mode})
		if err != nil {
			return nil, err
		}
		r.hs = rt
		for c := 0; c < rt.NumCards(); c++ {
			d := rt.Card(c)
			per := d.Spec().Cores() / cfg.StreamsPerDevice
			if per < 1 {
				per = 1
			}
			var ss []*core.Stream
			for i := 0; i < cfg.StreamsPerDevice; i++ {
				first := i * per
				if first+per > d.Spec().Cores() {
					first = d.Spec().Cores() - per
				}
				s, err := rt.StreamCreate(d, first, per)
				if err != nil {
					rt.Fini()
					return nil, err
				}
				ss = append(ss, s)
			}
			r.hsStreams = append(r.hsStreams, ss)
		}
		r.rr = make([]int, rt.NumCards())
	case BackendCUDA:
		if cfg.Mode != core.ModeSim {
			return nil, ErrCUDARealMode
		}
		cu, err := cudasim.Init(cfg.Machine, cfg.Mode)
		if err != nil {
			return nil, err
		}
		r.cu = cu
		for dev := 0; dev < cu.DeviceCount(); dev++ {
			var ss []*cudasim.Stream
			for i := 0; i < cfg.StreamsPerDevice; i++ {
				s, err := cu.StreamCreate(dev)
				if err != nil {
					cu.Fini()
					return nil, err
				}
				ss = append(ss, s)
			}
			r.cuStreams = append(r.cuStreams, ss)
		}
		r.rr = make([]int, cu.DeviceCount())
	default:
		return nil, fmt.Errorf("ompss: unknown backend %d", cfg.Backend)
	}
	return r, nil
}

// Fini drains and shuts down.
func (r *Runtime) Fini() {
	if r.done {
		return
	}
	r.done = true
	if r.hs != nil {
		r.hs.Fini()
	}
	if r.cu != nil {
		r.cu.Fini()
	}
}

// Core exposes the underlying hStreams runtime (nil for CUDA backend);
// used by tests and the coding-table harness.
func (r *Runtime) Core() *core.Runtime {
	if r.hs != nil {
		return r.hs
	}
	return r.cu.RT
}

// Devices returns the number of compute devices.
func (r *Runtime) Devices() int { return len(r.rr) }

// Makespan returns the trace makespan of everything executed so far.
func (r *Runtime) Makespan() time.Duration { return r.Core().Trace().Makespan() }

// taskRef identifies a completed-or-pending task for dependence
// tracking.
type taskRef struct {
	act    *core.Action
	dev    int // -1 = host/none
	stream int
}

// Region is runtime-managed data: the user never allocates device
// instances or issues transfers; the runtime tracks which device
// holds the freshest copy and moves data as tasks require.
type Region struct {
	r    *Runtime
	id   int
	size int64

	// hStreams backing (one proxy buffer stands for all instances).
	buf *core.Buf
	// CUDA backing: one pointer per device address space, allocated
	// lazily — the bookkeeping hStreams' proxy addresses avoid.
	ptrs []*cudasim.DevPtr

	// freshOn is the device holding the freshest copy (-1 = host).
	freshOn int
	// validOn marks devices whose copy matches the freshest.
	validOn map[int]bool
	// stagedBy records the transfer that populated each device's
	// copy, so consumers in other streams can depend on it.
	stagedBy map[int]taskRef

	lastWriter   taskRef
	readersSince []taskRef
}

// CreateData registers a region of the given size (OmpSs: data
// allocated automatically on the device when needed).
func (r *Runtime) CreateData(size int64) (*Region, error) {
	r.API.Hit("ompss_register_data")
	reg := &Region{r: r, id: len(r.regions), size: size, freshOn: -1, validOn: map[int]bool{}, stagedBy: map[int]taskRef{}}
	if r.hs != nil {
		b, err := r.hs.Alloc1D(fmt.Sprintf("ompss.r%d", reg.id), size)
		if err != nil {
			return nil, err
		}
		reg.buf = b
	} else {
		reg.ptrs = make([]*cudasim.DevPtr, r.cu.DeviceCount())
	}
	r.regions = append(r.regions, reg)
	return reg, nil
}

// Buf exposes the hStreams buffer backing the region (nil on CUDA).
func (reg *Region) Buf() *core.Buf { return reg.buf }

// Size returns the region size in bytes.
func (reg *Region) Size() int64 { return reg.size }

// Arg is one declared task operand.
type Arg struct {
	R   *Region
	Acc Access
}

// Task is a submitted task; it completes asynchronously.
type Task struct {
	Act *core.Action
	Dev int
}

// Wait blocks until the task completes.
func (t *Task) Wait() error { return t.Act.Wait() }
