package magma

import (
	"testing"

	"hstreams/internal/app"
	"hstreams/internal/chol"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

func TestRealMagmaDpotrfCorrect(t *testing.T) {
	if _, err := Dpotrf(platform.HSWPlusKNC(1), core.ModeReal, 48, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRealMagma2CardsCorrect(t *testing.T) {
	if _, err := Dpotrf(platform.HSWPlusKNC(2), core.ModeReal, 60, true, 2); err != nil {
		t.Fatal(err)
	}
}

// TestSimMagmaVsOffloadVsHetero reproduces the Fig. 7 relationships
// around MAGMA: shipping the panel to the host beats pure offload
// (DPOTF2 on card is dismal), but loses to hetero hStreams, which
// additionally uses spare host cores for efficient update routines —
// the paper's ~10 % observation.
func TestSimMagmaVsOffloadVsHetero(t *testing.T) {
	const n = 24000
	mag, err := Dpotrf(platform.HSWPlusKNC(1), core.ModeSim, n, false, 0)
	if err != nil {
		t.Fatal(err)
	}

	offApp, err := app.Init(app.Options{Machine: platform.HSWPlusKNC(1), Mode: core.ModeSim, StreamsPerCard: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer offApp.Fini()
	off, err := chol.Run(offApp, chol.Config{N: n, Tile: 2000, Panel: chol.PanelCard})
	if err != nil {
		t.Fatal(err)
	}

	hetApp, err := app.Init(app.Options{Machine: platform.HSWPlusKNC(1), Mode: core.ModeSim, StreamsPerCard: 4, HostStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer hetApp.Fini()
	het, err := chol.Run(hetApp, chol.Config{N: n, Tile: 2400, UseHost: true, Panel: chol.PanelHost})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("GF/s: magma=%.0f offload=%.0f hetero=%.0f", mag.GFlops, off.GFlops, het.GFlops)
	if !(mag.GFlops > off.GFlops) {
		t.Fatalf("MAGMA (%.0f) not faster than pure offload (%.0f)", mag.GFlops, off.GFlops)
	}
	if !(het.GFlops > mag.GFlops) {
		t.Fatalf("hetero hStreams (%.0f) not faster than MAGMA (%.0f)", het.GFlops, mag.GFlops)
	}
}
