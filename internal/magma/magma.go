// Package magma models the MAGMA library's hybrid Cholesky
// factorization for MIC (§V, §VI): the trailing matrix lives on the
// card, where the efficient DTRSM/DSYRK/DGEMM routines run, while the
// latency-bound DPOTF2 panel is shipped back to the host — "MAGMA
// code ships the DPOTF2 panel factorization back to the CPU and thus
// the MIC spends most of the execution time in much more efficient
// DTRSM, DSYRK, and DGEMM routines."
//
// The host contributes ONLY the panel: its spare compute capacity
// idles during the trailing updates, which is exactly the ~10 % that
// hStreams' hetero formulation recovers by also running update rows
// on the host (§VI).
package magma

import (
	"time"

	"hstreams/internal/app"
	"hstreams/internal/chol"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

// magmaNB is MAGMA's (internally tuned, smoother-curve) blocking
// factor.
const magmaNB = 2000

// Result mirrors the application result types.
type Result struct {
	Seconds time.Duration
	GFlops  float64
}

// Dpotrf runs the MAGMA-style hybrid Cholesky on the machine's cards
// with host-side panels.
func Dpotrf(machine *platform.Machine, mode core.Mode, n int, verify bool, seed int64) (Result, error) {
	tile := magmaNB
	if n < 4*tile {
		tile = n / 4
	}
	for n%tile != 0 && tile > 1 {
		tile--
	}
	a, err := app.Init(app.Options{
		Machine:        machine,
		Mode:           mode,
		StreamsPerCard: 4,
		// No host compute streams: the host only runs the panel.
		HostStreams: 0,
	})
	if err != nil {
		return Result{}, err
	}
	defer a.Fini()
	res, err := chol.Run(a, chol.Config{
		N:       n,
		Tile:    tile,
		UseHost: false,
		Panel:   chol.PanelMagma,
		Verify:  verify,
		Seed:    seed,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Seconds: res.Seconds, GFlops: res.GFlops}, nil
}
