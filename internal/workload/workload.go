// Package workload generates the synthetic application workloads the
// evaluation runs. The paper's Abaqus/Standard inputs are customer
// confidential ("proprietary customer workloads assigned a letter: A,
// B or C"), so per the reproduction ground rules this package defines
// stand-ins with the properties the experiments depend on: a
// supernode size mix (how much of the solver's work sits in large,
// offloadable fronts) and a solver-dominance fraction (how much of
// the application is solver at all) — the two quantities the paper
// says Fig. 8's speedups hinge on ("The difference in speedups
// obtained for the solver and the full application is dependent on
// how 'solver-dominant' the workload is").
package workload

// Abaqus is one Abaqus/Standard-style workload.
type Abaqus struct {
	// Name matches the paper's Fig. 8 labels where public; the
	// proprietary ones keep their letters.
	Name string
	// Unsymmetric marks the unsymmetric-solver test cases.
	Unsymmetric bool
	// SolverFraction is the fraction of baseline application time
	// spent in the solver kernel.
	SolverFraction float64
	// Supernodes lists the representative supernode sizes (matrix
	// edge) the solver factors, in processing order.
	Supernodes []int
}

// FlopsShareAbove returns the fraction of the workload's solver flops
// in supernodes of at least minN — the offloadable share.
func (w Abaqus) FlopsShareAbove(minN int) float64 {
	var big, total float64
	for _, n := range w.Supernodes {
		f := float64(n) * float64(n) * float64(n)
		total += f
		if n >= minN {
			big += f
		}
	}
	if total == 0 {
		return 0
	}
	return big / total
}

// AbaqusSuite returns the eight Fig. 8 workloads. Sizes are in
// supernode matrix edge; mixes range from almost entirely large
// fronts (the best accelerator cases) to dominated by small fronts
// that never leave the host.
func AbaqusSuite() []Abaqus {
	return []Abaqus{
		{
			Name:           "s2a",
			SolverFraction: 0.62,
			Supernodes:     []int{9600, 4800, 2400, 2400, 1200, 1200, 1200},
		},
		{
			Name:           "s4b",
			SolverFraction: 0.85,
			Supernodes:     []int{14400, 12000, 9600, 2400, 1200},
		},
		{
			Name:           "s6",
			SolverFraction: 0.70,
			Supernodes:     []int{12000, 7200, 4800, 2400, 2400, 1200},
		},
		{
			Name:           "s8",
			SolverFraction: 0.88,
			Supernodes:     []int{15600, 13200, 10800, 3600, 1200},
		},
		{
			Name:           "s9",
			Unsymmetric:    true,
			SolverFraction: 0.75,
			Supernodes:     []int{10800, 8400, 6000, 2400, 1200, 1200},
		},
		{
			Name:           "A",
			SolverFraction: 0.90,
			Supernodes:     []int{16800, 14400, 12000, 2400},
		},
		{
			Name:           "B",
			Unsymmetric:    true,
			SolverFraction: 0.55,
			Supernodes:     []int{7200, 3600, 2400, 2400, 1200, 1200, 1200, 1200},
		},
		{
			Name:           "C",
			SolverFraction: 0.78,
			Supernodes:     []int{13200, 9600, 4800, 2400, 1200},
		},
	}
}
