package workload

import "testing"

func TestSuiteShape(t *testing.T) {
	suite := AbaqusSuite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d workloads, want 8 (Fig. 8 shows 8)", len(suite))
	}
	names := map[string]bool{}
	letters := 0
	for _, w := range suite {
		if names[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		if len(w.Name) == 1 {
			letters++ // proprietary customer workloads get letters
		}
		if w.SolverFraction <= 0.3 || w.SolverFraction >= 0.95 {
			t.Errorf("%s: solver fraction %v implausible", w.Name, w.SolverFraction)
		}
		for _, n := range w.Supernodes {
			if n < 600 || n > 20000 {
				t.Errorf("%s: supernode size %d out of range", w.Name, n)
			}
		}
	}
	if letters != 3 {
		t.Errorf("expected 3 lettered (proprietary stand-in) workloads, got %d", letters)
	}
}

func TestFlopsShareAbove(t *testing.T) {
	w := Abaqus{Supernodes: []int{1000, 1000}}
	if got := w.FlopsShareAbove(500); got != 1 {
		t.Fatalf("all-above share = %v, want 1", got)
	}
	if got := w.FlopsShareAbove(2000); got != 0 {
		t.Fatalf("none-above share = %v, want 0", got)
	}
	// Cubic weighting: a 2000 front carries 8× the flops of a 1000.
	w = Abaqus{Supernodes: []int{2000, 1000}}
	got := w.FlopsShareAbove(1500)
	if want := 8.0 / 9.0; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("share = %v, want %v", got, want)
	}
}

func TestSuiteCoversBothRegimes(t *testing.T) {
	// Fig. 8's spread needs workloads dominated by large offloadable
	// fronts AND workloads stuck with small host-bound ones.
	// Flops weight cubically, so even one large front dominates a
	// workload's share; the spread across the suite is still wide
	// enough to separate the Fig. 8 best and worst cases.
	var hasBig, hasSmall bool
	for _, w := range AbaqusSuite() {
		share := w.FlopsShareAbove(4800)
		if share > 0.95 {
			hasBig = true
		}
		if share < 0.85 {
			hasSmall = true
		}
	}
	if !hasBig || !hasSmall {
		t.Fatalf("suite lacks regime coverage (big=%v small=%v)", hasBig, hasSmall)
	}
}
