// Package kernels registers the sink-side tile kernels every
// application and baseline shares, and provides the matching cost
// descriptors for simulated execution.
//
// Tile convention: a tile is a contiguous tb×tb column-major block.
// Tiled matrices store tile (i, j) of an nt×nt tiling at byte offset
// (j·nt + i)·tb²·8, so every tile is a contiguous operand range —
// which is what makes hStreams dependence analysis and per-tile
// transfers work.
package kernels

import (
	"hstreams/internal/blas"
	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

// Kernel names registered by Register.
const (
	// Dgemm: C -= A·Bᵀ (args: m, n, k; ops: A in, B in, C inout).
	// The minus-accumulate form is what tiled Cholesky needs; tiled
	// matmul uses DgemmAcc.
	Dgemm = "tile.dgemm.subT"
	// DgemmAcc: C += A·B (args: m, n, k; ops: A in, B in, C inout).
	DgemmAcc = "tile.dgemm.acc"
	// Dsyrk: C -= A·Aᵀ, lower (args: n, k; ops: A in, C inout).
	Dsyrk = "tile.dsyrk.sub"
	// Dtrsm: B := B·L⁻ᵀ, right/lower/trans/non-unit (args: m, n;
	// ops: L in, B inout) — the tiled-Cholesky panel solve.
	Dtrsm = "tile.dtrsm.rlt"
	// Dpotf2: in-place lower Cholesky of a tile (args: n; ops: A
	// inout).
	Dpotf2 = "tile.dpotf2"
	// LdltPanel: in-place blocked LDLᵀ of a tile or whole supernode
	// (args: n, nb; ops: A inout).
	LdltPanel = "tile.ldlt"
	// LdltSolve: B := B·L⁻ᵀ·D⁻¹ against a factored diagonal tile
	// (args: m, n; ops: LD in, B inout) — the LDLᵀ panel solve.
	LdltSolve = "tile.ldlt.solve"
	// LdltUpdate: C -= A·D·Bᵀ with D the diagonal of a factored tile
	// (args: m, n, k; ops: A in, LD in, B in, C inout).
	LdltUpdate = "tile.ldlt.update"
	// Zero: clears the operand (ops: A out).
	Zero = "tile.zero"
	// Getf2 is the unblocked, no-pivot LU of a tile (args: n; ops: A
	// inout) — the tiled-LU panel kernel.
	Getf2 = "tile.getf2"
	// TrsmLLNU: B := L⁻¹·B, left/lower/no-trans/unit (args: m, n;
	// ops: L in, B inout) — the LU row-panel solve.
	TrsmLLNU = "tile.trsm.llnu"
	// TrsmRUNN: B := B·U⁻¹, right/upper/no-trans/non-unit (args: m,
	// n; ops: U in, B inout) — the LU column-panel solve.
	TrsmRUNN = "tile.trsm.runn"
	// DgemmSubNN: C -= A·B (args: m, n, k; ops: A in, B in, C inout)
	// — the LU trailing update.
	DgemmSubNN = "tile.dgemm.subNN"
)

// Register installs all tile kernels into rt (needed in Real mode
// before enqueueing; harmless in Sim mode).
func Register(rt *core.Runtime) {
	rt.RegisterKernel(Dgemm, func(ctx *core.KernelCtx) {
		m, n, k := int(ctx.Args[0]), int(ctx.Args[1]), int(ctx.Args[2])
		a := floatbits.Float64s(ctx.Ops[0])
		b := floatbits.Float64s(ctx.Ops[1])
		c := floatbits.Float64s(ctx.Ops[2])
		blas.DgemmParallel(blas.NoTrans, blas.T, m, n, k, -1, a, m, b, n, 1, c, m, ctx.Threads)
	})
	rt.RegisterKernel(DgemmAcc, func(ctx *core.KernelCtx) {
		m, n, k := int(ctx.Args[0]), int(ctx.Args[1]), int(ctx.Args[2])
		a := floatbits.Float64s(ctx.Ops[0])
		b := floatbits.Float64s(ctx.Ops[1])
		c := floatbits.Float64s(ctx.Ops[2])
		blas.DgemmParallel(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, m, b, k, 1, c, m, ctx.Threads)
	})
	rt.RegisterKernel(Dsyrk, func(ctx *core.KernelCtx) {
		n, k := int(ctx.Args[0]), int(ctx.Args[1])
		a := floatbits.Float64s(ctx.Ops[0])
		c := floatbits.Float64s(ctx.Ops[1])
		blas.DsyrkParallel(blas.Lower, blas.NoTrans, n, k, -1, a, n, 1, c, n, ctx.Threads)
	})
	rt.RegisterKernel(Dtrsm, func(ctx *core.KernelCtx) {
		m, n := int(ctx.Args[0]), int(ctx.Args[1])
		l := floatbits.Float64s(ctx.Ops[0])
		b := floatbits.Float64s(ctx.Ops[1])
		blas.Dtrsm(blas.Right, blas.Lower, blas.T, blas.NonUnit, m, n, 1, l, n, b, m)
	})
	rt.RegisterKernel(Dpotf2, func(ctx *core.KernelCtx) {
		n := int(ctx.Args[0])
		a := floatbits.Float64s(ctx.Ops[0])
		if err := blas.Dpotf2(blas.Lower, n, a, n); err != nil {
			panic(err)
		}
	})
	rt.RegisterKernel(LdltPanel, func(ctx *core.KernelCtx) {
		n, nb := int(ctx.Args[0]), int(ctx.Args[1])
		a := floatbits.Float64s(ctx.Ops[0])
		if err := blas.LdltNB(n, a, n, nb); err != nil {
			panic(err)
		}
	})
	rt.RegisterKernel(LdltSolve, func(ctx *core.KernelCtx) {
		m, n := int(ctx.Args[0]), int(ctx.Args[1])
		ld := floatbits.Float64s(ctx.Ops[0]) // unit-lower L with D on the diagonal
		b := floatbits.Float64s(ctx.Ops[1])
		blas.Dtrsm(blas.Right, blas.Lower, blas.T, blas.Unit, m, n, 1, ld, n, b, m)
		for j := 0; j < n; j++ {
			d := ld[j+j*n]
			col := b[j*m : j*m+m]
			for i := range col {
				col[i] /= d
			}
		}
	})
	rt.RegisterKernel(LdltUpdate, func(ctx *core.KernelCtx) {
		m, n, k := int(ctx.Args[0]), int(ctx.Args[1]), int(ctx.Args[2])
		a := floatbits.Float64s(ctx.Ops[0])
		ld := floatbits.Float64s(ctx.Ops[1])
		b := floatbits.Float64s(ctx.Ops[2])
		c := floatbits.Float64s(ctx.Ops[3])
		// W = A·diag(D), then C -= W·Bᵀ.
		w := make([]float64, m*k)
		for kk := 0; kk < k; kk++ {
			d := ld[kk+kk*k]
			src := a[kk*m : kk*m+m]
			dst := w[kk*m : kk*m+m]
			for i := range src {
				dst[i] = src[i] * d
			}
		}
		blas.DgemmParallel(blas.NoTrans, blas.T, m, n, k, -1, w, m, b, n, 1, c, m, ctx.Threads)
	})
	rt.RegisterKernel(Zero, func(ctx *core.KernelCtx) {
		for i := range ctx.Ops[0] {
			ctx.Ops[0][i] = 0
		}
	})
	rt.RegisterKernel(Getf2, func(ctx *core.KernelCtx) {
		n := int(ctx.Args[0])
		a := floatbits.Float64s(ctx.Ops[0])
		if err := blas.Dgetf2NoPivot(n, a, n); err != nil {
			panic(err)
		}
	})
	rt.RegisterKernel(TrsmLLNU, func(ctx *core.KernelCtx) {
		m, n := int(ctx.Args[0]), int(ctx.Args[1])
		l := floatbits.Float64s(ctx.Ops[0])
		b := floatbits.Float64s(ctx.Ops[1])
		blas.Dtrsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, m, n, 1, l, m, b, m)
	})
	rt.RegisterKernel(TrsmRUNN, func(ctx *core.KernelCtx) {
		m, n := int(ctx.Args[0]), int(ctx.Args[1])
		u := floatbits.Float64s(ctx.Ops[0])
		b := floatbits.Float64s(ctx.Ops[1])
		blas.Dtrsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, m, n, 1, u, n, b, m)
	})
	rt.RegisterKernel(DgemmSubNN, func(ctx *core.KernelCtx) {
		m, n, k := int(ctx.Args[0]), int(ctx.Args[1]), int(ctx.Args[2])
		a := floatbits.Float64s(ctx.Ops[0])
		b := floatbits.Float64s(ctx.Ops[1])
		c := floatbits.Float64s(ctx.Ops[2])
		blas.DgemmParallel(blas.NoTrans, blas.NoTrans, m, n, k, -1, a, m, b, k, 1, c, m, ctx.Threads)
	})
}

// GemmCost models C (m×n) += A (m×k) · B: 2mnk flops, streaming
// traffic of the three operands.
func GemmCost(m, n, k int) platform.Cost {
	return platform.Cost{
		Kernel: platform.KDGEMM,
		Flops:  2 * float64(m) * float64(n) * float64(k),
		N:      minInt(m, minInt(n, k)),
	}
}

// SyrkCost models an n×n rank-k update: n²k flops.
func SyrkCost(n, k int) platform.Cost {
	return platform.Cost{
		Kernel: platform.KDSYRK,
		Flops:  float64(n) * float64(n) * float64(k),
		N:      minInt(n, k),
	}
}

// TrsmCost models an m×n triangular solve: m·n² flops for a right-
// side n×n triangle.
func TrsmCost(m, n int) platform.Cost {
	return platform.Cost{
		Kernel: platform.KDTRSM,
		Flops:  float64(m) * float64(n) * float64(n),
		N:      minInt(m, n),
	}
}

// Potf2Cost models the unblocked Cholesky of an n×n tile: n³/3 flops,
// latency-bound efficiency class.
func Potf2Cost(n int) platform.Cost {
	return platform.Cost{
		Kernel: platform.KDPOTF2,
		Flops:  float64(n) * float64(n) * float64(n) / 3,
		N:      n,
	}
}

// PotrfCost models a blocked full-matrix Cholesky (host-native
// baseline): n³/3 flops at the blocked-DPOTRF efficiency class.
func PotrfCost(n int) platform.Cost {
	return platform.Cost{
		Kernel: platform.KDPOTRF,
		Flops:  float64(n) * float64(n) * float64(n) / 3,
		N:      n,
	}
}

// LdltCost models a dense n×n supernode LDLᵀ: n³/3 flops.
func LdltCost(n int) platform.Cost {
	return platform.Cost{
		Kernel: platform.KLDLT,
		Flops:  float64(n) * float64(n) * float64(n) / 3,
		N:      n,
	}
}

// TileBytes returns the byte size of a tb×tb tile.
func TileBytes(tb int) int64 { return int64(tb) * int64(tb) * 8 }

// TileOff returns the byte offset of tile (i, j) in an nt-row tiling.
func TileOff(i, j, nt, tb int) int64 { return (int64(j)*int64(nt) + int64(i)) * TileBytes(tb) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
