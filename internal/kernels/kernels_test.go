package kernels

import (
	"math"
	"math/rand"
	"testing"

	"hstreams/internal/blas"
	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/platform"
)

// run invokes a registered kernel directly on a host stream with the
// given operand slices, returning after completion.
func run(t *testing.T, rt *core.Runtime, s *core.Stream, name string, args []int64, bufs []*core.Buf, accs []core.Access) {
	t.Helper()
	ops := make([]core.Operand, len(bufs))
	for i := range bufs {
		ops[i] = bufs[i].All(accs[i])
	}
	a, err := s.EnqueueCompute(name, args, ops, platform.Cost{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
}

func newHost(t *testing.T) (*core.Runtime, *core.Stream) {
	t.Helper()
	rt, err := core.Init(core.Config{Machine: platform.HSWPlusKNC(0), Mode: core.ModeReal})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Fini)
	Register(rt)
	s, err := rt.StreamCreate(rt.Host(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return rt, s
}

func alloc(t *testing.T, rt *core.Runtime, n int, fill func(i int) float64) (*core.Buf, []float64) {
	t.Helper()
	b, f, err := rt.AllocFloat64("k", n)
	if err != nil {
		t.Fatal(err)
	}
	if fill != nil {
		for i := range f {
			f[i] = fill(i)
		}
	}
	return b, f
}

func TestTileDgemmKernels(t *testing.T) {
	rt, s := newHost(t)
	const m = 6
	rng := rand.New(rand.NewSource(1))
	rnd := func(int) float64 { return rng.Float64() }
	a, av := alloc(t, rt, m*m, rnd)
	b, bv := alloc(t, rt, m*m, rnd)
	c, cv := alloc(t, rt, m*m, rnd)
	orig := append([]float64(nil), cv...)

	// DgemmAcc: C += A·B
	want := append([]float64(nil), orig...)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, m, m, m, 1, av, m, bv, m, 1, want, m)
	run(t, rt, s, DgemmAcc, []int64{m, m, m}, []*core.Buf{a, b, c}, []core.Access{core.In, core.In, core.InOut})
	for i := range want {
		if math.Abs(cv[i]-want[i]) > 1e-12 {
			t.Fatalf("DgemmAcc[%d] = %v, want %v", i, cv[i], want[i])
		}
	}

	// Dgemm (subT): C -= A·Bᵀ
	copy(cv, orig)
	want = append(want[:0], orig...)
	blas.Dgemm(blas.NoTrans, blas.T, m, m, m, -1, av, m, bv, m, 1, want, m)
	run(t, rt, s, Dgemm, []int64{m, m, m}, []*core.Buf{a, b, c}, []core.Access{core.In, core.In, core.InOut})
	for i := range want {
		if math.Abs(cv[i]-want[i]) > 1e-12 {
			t.Fatalf("Dgemm.subT[%d] = %v, want %v", i, cv[i], want[i])
		}
	}

	// DgemmSubNN: C -= A·B
	copy(cv, orig)
	want = append(want[:0], orig...)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, m, m, m, -1, av, m, bv, m, 1, want, m)
	run(t, rt, s, DgemmSubNN, []int64{m, m, m}, []*core.Buf{a, b, c}, []core.Access{core.In, core.In, core.InOut})
	for i := range want {
		if math.Abs(cv[i]-want[i]) > 1e-12 {
			t.Fatalf("DgemmSubNN[%d] = %v, want %v", i, cv[i], want[i])
		}
	}
}

func TestTileFactorizationKernels(t *testing.T) {
	rt, s := newHost(t)
	const m = 8
	// Dpotf2 on an SPD tile.
	spd, spdv := alloc(t, rt, m*m, nil)
	rng := rand.New(rand.NewSource(2))
	for j := 0; j < m; j++ {
		for i := 0; i <= j; i++ {
			v := rng.Float64()
			spdv[i+j*m] = v
			spdv[j+i*m] = v
		}
		spdv[j+j*m] += float64(m)
	}
	want := append([]float64(nil), spdv...)
	if err := blas.Dpotf2(blas.Lower, m, want, m); err != nil {
		t.Fatal(err)
	}
	run(t, rt, s, Dpotf2, []int64{m}, []*core.Buf{spd}, []core.Access{core.InOut})
	for j := 0; j < m; j++ {
		for i := j; i < m; i++ {
			if math.Abs(spdv[i+j*m]-want[i+j*m]) > 1e-12 {
				t.Fatalf("Dpotf2 differs at (%d,%d)", i, j)
			}
		}
	}

	// LdltPanel on a diagonally dominant tile.
	sym, symv := alloc(t, rt, m*m, nil)
	for j := 0; j < m; j++ {
		for i := 0; i <= j; i++ {
			v := rng.Float64() - 0.5
			symv[i+j*m] = v
			symv[j+i*m] = v
		}
		symv[j+j*m] = float64(m) + 1
	}
	want = append(want[:0], symv...)
	if err := blas.LdltNB(m, want, m, 4); err != nil {
		t.Fatal(err)
	}
	run(t, rt, s, LdltPanel, []int64{m, 4}, []*core.Buf{sym}, []core.Access{core.InOut})
	for j := 0; j < m; j++ {
		for i := j; i < m; i++ {
			if math.Abs(symv[i+j*m]-want[i+j*m]) > 1e-10 {
				t.Fatalf("LdltPanel differs at (%d,%d)", i, j)
			}
		}
	}

	// Getf2 (no-pivot LU) on the same dominant tile.
	lun, lunv := alloc(t, rt, m*m, func(i int) float64 { return rng.Float64() })
	for j := 0; j < m; j++ {
		lunv[j+j*m] += float64(m)
	}
	want = append(want[:0], lunv...)
	if err := blas.Dgetf2NoPivot(m, want, m); err != nil {
		t.Fatal(err)
	}
	run(t, rt, s, Getf2, []int64{m}, []*core.Buf{lun}, []core.Access{core.InOut})
	for i := range want {
		if math.Abs(lunv[i]-want[i]) > 1e-10 {
			t.Fatalf("Getf2 differs at %d", i)
		}
	}
}

func TestZeroKernel(t *testing.T) {
	rt, s := newHost(t)
	b, f := alloc(t, rt, 32, func(int) float64 { return 5 })
	run(t, rt, s, Zero, nil, []*core.Buf{b}, []core.Access{core.Out})
	for i := range f {
		if f[i] != 0 {
			t.Fatalf("Zero left f[%d] = %v", i, f[i])
		}
	}
}

func TestCostDescriptors(t *testing.T) {
	if GemmCost(4, 5, 6).Flops != 240 {
		t.Fatal("GemmCost flops")
	}
	if SyrkCost(4, 5).Flops != 80 {
		t.Fatal("SyrkCost flops")
	}
	if TrsmCost(4, 5).Flops != 100 {
		t.Fatal("TrsmCost flops")
	}
	if Potf2Cost(6).Kernel != platform.KDPOTF2 {
		t.Fatal("Potf2Cost class")
	}
	if PotrfCost(6).Kernel != platform.KDPOTRF {
		t.Fatal("PotrfCost class")
	}
	if LdltCost(6).Kernel != platform.KLDLT {
		t.Fatal("LdltCost class")
	}
	if TileBytes(10) != 800 {
		t.Fatal("TileBytes")
	}
	if TileOff(1, 2, 4, 10) != (2*4+1)*800 {
		t.Fatal("TileOff")
	}
}

func TestFloatbitsInterop(t *testing.T) {
	// The kernels view operand bytes through floatbits; a quick
	// sanity that the view round-trips through the core path.
	rt, s := newHost(t)
	b, f := alloc(t, rt, 4, func(i int) float64 { return float64(i) })
	rt.RegisterKernel("probe", func(ctx *core.KernelCtx) {
		v := floatbits.Float64s(ctx.Ops[0])
		for i := range v {
			v[i] *= 2
		}
	})
	run(t, rt, s, "probe", nil, []*core.Buf{b}, []core.Access{core.InOut})
	for i := range f {
		if f[i] != float64(2*i) {
			t.Fatalf("f[%d] = %v", i, f[i])
		}
	}
}
