package timesim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*time.Microsecond, func() { got = append(got, 3) })
	e.At(10*time.Microsecond, func() { got = append(got, 1) })
	e.At(20*time.Microsecond, func() { got = append(got, 2) })
	e.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("Now = %v, want 30µs", e.Now())
	}
}

func TestEngineTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Drain()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	var fired int
	var chain func()
	chain = func() {
		fired++
		if fired < 5 {
			e.After(time.Second, chain)
		}
	}
	e.After(time.Second, chain)
	end := e.Drain()
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if end != 5*time.Second {
		t.Fatalf("end = %v, want 5s", end)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(time.Second, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestEngineAfterNegativePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("After with negative duration did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var n int
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() { n++ })
	}
	ok := e.RunUntil(func() bool { return n >= 4 })
	if !ok || n != 4 {
		t.Fatalf("RunUntil stopped at n=%d ok=%v, want n=4 ok=true", n, ok)
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", e.Pending())
	}
	if e.RunUntil(func() bool { return n >= 100 }) {
		t.Fatal("RunUntil reported success for unreachable predicate")
	}
	if n != 10 {
		t.Fatalf("after drain n = %d, want 10", n)
	}
}

func TestRunUntilImmediatePredicateFiresNothing(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(time.Second, func() { fired = true })
	if !e.RunUntil(func() bool { return true }) {
		t.Fatal("RunUntil with true predicate returned false")
	}
	if fired {
		t.Fatal("RunUntil fired an event despite satisfied predicate")
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("slot")
	s1, e1 := r.Reserve(0, 10*time.Millisecond)
	s2, e2 := r.Reserve(0, 5*time.Millisecond)
	if s1 != 0 || e1 != 10*time.Millisecond {
		t.Fatalf("first reservation [%v,%v), want [0,10ms)", s1, e1)
	}
	if s2 != 10*time.Millisecond || e2 != 15*time.Millisecond {
		t.Fatalf("second reservation [%v,%v), want [10ms,15ms)", s2, e2)
	}
	if r.Busy() != 15*time.Millisecond {
		t.Fatalf("Busy = %v, want 15ms", r.Busy())
	}
	if r.Reservations() != 2 {
		t.Fatalf("Reservations = %d, want 2", r.Reservations())
	}
}

func TestResourceRespectsReadyTime(t *testing.T) {
	r := NewResource("slot")
	r.Reserve(0, time.Millisecond)
	s, e := r.Reserve(10*time.Millisecond, time.Millisecond)
	if s != 10*time.Millisecond || e != 11*time.Millisecond {
		t.Fatalf("reservation [%v,%v), want [10ms,11ms)", s, e)
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("slot")
	r.Reserve(0, 30*time.Millisecond)
	if got := r.Utilization(60 * time.Millisecond); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
}

func TestPoolPicksEarliestSlot(t *testing.T) {
	p := NewPool("workers", 2)
	slot0, _, _ := p.Reserve(0, 10*time.Millisecond)
	slot1, _, _ := p.Reserve(0, 2*time.Millisecond)
	if slot0 == slot1 {
		t.Fatalf("both reservations on slot %d, want distinct slots", slot0)
	}
	// Slot that ran the 2 ms job frees first and must win the next one.
	slot2, start, _ := p.Reserve(0, time.Millisecond)
	if slot2 != slot1 {
		t.Fatalf("third reservation on slot %d, want %d", slot2, slot1)
	}
	if start != 2*time.Millisecond {
		t.Fatalf("third start = %v, want 2ms", start)
	}
}

func TestPoolSingleSlotMatchesResource(t *testing.T) {
	p := NewPool("one", 1)
	r := NewResource("one")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		ready := time.Duration(rng.Intn(50)) * time.Millisecond
		dur := time.Duration(1+rng.Intn(20)) * time.Millisecond
		_, ps, pe := p.Reserve(ready, dur)
		rs, re := r.Reserve(ready, dur)
		if ps != rs || pe != re {
			t.Fatalf("pool [%v,%v) != resource [%v,%v)", ps, pe, rs, re)
		}
	}
}

func TestNewPoolRejectsZeroSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool("bad", 0)
}

// Property: reservations on a resource never overlap and never start
// before their ready time.
func TestResourceReservationsNeverOverlap(t *testing.T) {
	f := func(seeds []uint8) bool {
		r := NewResource("p")
		var prevEnd time.Duration
		for _, s := range seeds {
			ready := time.Duration(s%16) * time.Millisecond
			dur := time.Duration(s%7+1) * time.Millisecond
			start, end := r.Reserve(ready, dur)
			if start < ready || start < prevEnd || end != start+dur {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pool makespan for identical jobs matches the analytic
// bound ceil(n/k)*dur when all jobs are ready at time zero.
func TestPoolMakespanBound(t *testing.T) {
	f := func(nJobs, kSlots uint8) bool {
		n := int(nJobs%32) + 1
		k := int(kSlots%8) + 1
		p := NewPool("w", k)
		dur := 3 * time.Millisecond
		var makespan time.Duration
		for i := 0; i < n; i++ {
			_, _, end := p.Reserve(0, dur)
			if end > makespan {
				makespan = end
			}
		}
		want := time.Duration((n+k-1)/k) * dur
		return makespan == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine fires events in nondecreasing time order no
// matter the insertion order.
func TestEngineMonotoneClock(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fireTimes []time.Duration
		for _, off := range offsets {
			at := time.Duration(off) * time.Microsecond
			e.At(at, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Drain()
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		return len(fireTimes) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPostClampsPastEvents(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Millisecond, func() {})
	e.Step()
	var firedAt time.Duration
	e.Post(2*time.Millisecond, func() { firedAt = e.Now() }) // in the past
	e.Step()
	if firedAt != 10*time.Millisecond {
		t.Fatalf("past Post fired at %v, want clamped to 10ms", firedAt)
	}
	// Future Post behaves like At.
	e.Post(20*time.Millisecond, func() { firedAt = e.Now() })
	e.Drain()
	if firedAt != 20*time.Millisecond {
		t.Fatalf("future Post fired at %v, want 20ms", firedAt)
	}
}
