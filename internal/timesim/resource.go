package timesim

import "time"

// Resource models a serially-occupied piece of hardware in virtual
// time: a stream's compute slot, one direction of a PCIe link, a DMA
// engine. Work items reserve the resource back-to-back; a reservation
// made while the resource is busy starts when the resource frees up.
type Resource struct {
	// Name identifies the resource in traces.
	Name string

	availableAt  time.Duration
	busy         time.Duration
	reservations int
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Reserve books the resource for dur starting no earlier than ready,
// and returns the actual [start, end) of the reservation. The caller
// is responsible for scheduling a completion event at end.
func (r *Resource) Reserve(ready, dur time.Duration) (start, end time.Duration) {
	start = ready
	if r.availableAt > start {
		start = r.availableAt
	}
	end = start + dur
	r.availableAt = end
	r.busy += dur
	r.reservations++
	return start, end
}

// AvailableAt reports when the resource next becomes free.
func (r *Resource) AvailableAt() time.Duration { return r.availableAt }

// Busy reports the total time the resource has been reserved.
func (r *Resource) Busy() time.Duration { return r.busy }

// Reservations reports how many reservations have been made.
func (r *Resource) Reservations() int { return r.reservations }

// Utilization reports busy time as a fraction of the horizon (usually
// the makespan). Returns 0 for a non-positive horizon.
func (r *Resource) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / float64(horizon)
}

// Pool models k interchangeable slots (for example a card-wide worker
// pool used by a dynamic scheduler, or dual DMA engines). A reservation
// takes the earliest-available slot.
type Pool struct {
	Name  string
	slots []*Resource
}

// NewPool returns a pool of k idle slots. k must be positive.
func NewPool(name string, k int) *Pool {
	if k <= 0 {
		panic("timesim: pool must have at least one slot")
	}
	p := &Pool{Name: name, slots: make([]*Resource, k)}
	for i := range p.slots {
		p.slots[i] = NewResource(name)
	}
	return p
}

// Slots reports the number of slots in the pool.
func (p *Pool) Slots() int { return len(p.slots) }

// Reserve books dur on the slot that can start the work earliest
// (breaking ties by lowest slot index) and returns the slot index and
// the actual [start, end).
func (p *Pool) Reserve(ready, dur time.Duration) (slot int, start, end time.Duration) {
	best := 0
	bestStart := maxDuration(ready, p.slots[0].availableAt)
	for i := 1; i < len(p.slots); i++ {
		s := maxDuration(ready, p.slots[i].availableAt)
		if s < bestStart {
			best, bestStart = i, s
		}
	}
	start, end = p.slots[best].Reserve(ready, dur)
	return best, start, end
}

// Busy reports total reserved time across all slots.
func (p *Pool) Busy() time.Duration {
	var total time.Duration
	for _, s := range p.slots {
		total += s.busy
	}
	return total
}

// AvailableAt reports when the earliest slot becomes free.
func (p *Pool) AvailableAt() time.Duration {
	min := p.slots[0].availableAt
	for _, s := range p.slots[1:] {
		if s.availableAt < min {
			min = s.availableAt
		}
	}
	return min
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
