// Package timesim provides a deterministic discrete-event simulation
// engine with a virtual clock.
//
// The hStreams runtime can execute either for real (goroutines, real
// kernels, wall-clock time) or on this engine (virtual time, durations
// supplied by a cost model). The engine is what lets the benchmark
// harness replay the paper's multi-coprocessor experiments — 30 000²
// matrices across a host and two simulated Knights Corner cards — in
// milliseconds of wall time while preserving the schedule structure
// (dependences, resource contention, compute/transfer overlap).
//
// The engine is strictly deterministic: events scheduled for the same
// virtual instant fire in the order they were scheduled.
package timesim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a virtual clock with an event queue. It is not safe for
// concurrent use; simulated runs are single-goroutine by design so that
// results are reproducible.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have been processed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at virtual time t. Scheduling in the past
// (t < Now) panics: it would mean a causality violation in the caller,
// which is always a bug.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("timesim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.now+d, fn)
}

// Post schedules fn for time t like At, but clamps past timestamps to
// now instead of panicking. Callers that keep exact event times in
// their own bookkeeping (and only need the engine for firing order)
// use this so the clock can be pumped ahead of lazily-scheduled work.
func (e *Engine) Post(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// RunUntil fires events until done() reports true or the queue drains.
// It returns true if done() was satisfied. Note that done is checked
// before each step, so a run with an immediately-true predicate fires
// nothing.
func (e *Engine) RunUntil(done func() bool) bool {
	for !done() {
		if !e.Step() {
			return done()
		}
	}
	return true
}

// Drain fires all pending events (including ones scheduled by fired
// events) and returns the final virtual time.
func (e *Engine) Drain() time.Duration {
	for e.Step() {
	}
	return e.now
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
