package solver

import (
	"time"

	"hstreams/internal/core"
	"hstreams/internal/cudasim"
	"hstreams/internal/floatbits"
	"hstreams/internal/kernels"
	"hstreams/internal/matrix"
	"hstreams/internal/platform"
)

// CUDAFactor runs the same tiled LDLᵀ supernode factorization through
// CUDA Streams on the machine's GPU — the back end Simulia uses for
// NVidia targets (§V). Strict FIFO queues force every cross-stream
// dependence through explicit events, and transfers cannot overtake
// in-stream work; this is the comparison side of the paper's
// "net effectiveness of parallelizing for a hetero platform"
// normalization experiment (§VI).
func CUDAFactor(machine *platform.Machine, mode core.Mode, n, tile, nStreams int) (Result, error) {
	if n%tile != 0 {
		return Result{}, ErrBadTiling
	}
	nt := n / tile
	tbytes := kernels.TileBytes(tile)
	cu, err := cudasim.Init(machine, mode)
	if err != nil {
		return Result{}, err
	}
	defer cu.Fini()
	if mode == core.ModeReal {
		kernels.Register(cu.RT)
	}
	dev, err := cu.Malloc(0, int64(nt*nt)*tbytes)
	if err != nil {
		return Result{}, err
	}
	if mode == core.ModeReal {
		// Stage a factorizable (diagonally dominant symmetric) matrix.
		sym := matrix.RandSymIndefinite(n, 11)
		stage := floatbits.Float64s(dev.HostStage())
		for tj := 0; tj < nt; tj++ {
			for ti := 0; ti < nt; ti++ {
				t := stage[(int64(tj)*int64(nt)+int64(ti))*int64(tile*tile):]
				for jj := 0; jj < tile; jj++ {
					for ii := 0; ii < tile; ii++ {
						t[ii+jj*tile] = sym.At(ti*tile+ii, tj*tile+jj)
					}
				}
			}
		}
	}
	streams := make([]*cudasim.Stream, nStreams)
	for i := range streams {
		if streams[i], err = cu.StreamCreate(0); err != nil {
			return Result{}, err
		}
	}
	off := func(i, j int) int64 { return kernels.TileOff(i, j, nt, tile) }
	arg := func(i, j int) cudasim.Arg { return cudasim.Arg{Ptr: dev, Off: off(i, j), Len: tbytes} }

	// Per-tile bookkeeping: which stream last produced the tile and
	// the event recorded after it (CUDA requires the event objects
	// explicitly, unlike hStreams where every action is one).
	type prod struct {
		st *cudasim.Stream
		ev *cudasim.Event
	}
	last := map[[2]int]prod{}
	sent := map[[2]int]bool{}
	// ensureOn stages the tile (first use) and returns after making
	// st wait on the tile's producer if it lives in another stream.
	ensureOn := func(st *cudasim.Stream, i, j int) error {
		k := [2]int{i, j}
		if !sent[k] {
			if _, err := st.MemcpyH2DAsync(dev, off(i, j), tbytes); err != nil {
				return err
			}
			ev := cu.EventCreate()
			if err := st.Record(ev); err != nil {
				return err
			}
			last[k] = prod{st, ev}
			sent[k] = true
			return nil
		}
		if p, ok := last[k]; ok && p.st != st {
			return st.WaitEvent(p.ev)
		}
		return nil
	}
	// produced records the tile's new producer with a fresh event.
	produced := func(st *cudasim.Stream, i, j int) error {
		ev := cu.EventCreate()
		if err := st.Record(ev); err != nil {
			return err
		}
		last[[2]int{i, j}] = prod{st, ev}
		sent[[2]int{i, j}] = true
		return nil
	}
	pick := func(i, j int) *cudasim.Stream { return streams[(i*31+j)%nStreams] }

	tb64 := int64(tile)
	start := cu.RT.Now()
	for k := 0; k < nt; k++ {
		st := pick(k, k)
		if err := ensureOn(st, k, k); err != nil {
			return Result{}, err
		}
		if _, err := st.Launch(kernels.LdltPanel, []int64{tb64, 64},
			[]cudasim.Arg{arg(k, k)}, kernels.LdltCost(tile)); err != nil {
			return Result{}, err
		}
		if err := produced(st, k, k); err != nil {
			return Result{}, err
		}
		for i := k + 1; i < nt; i++ {
			s := pick(i, k)
			for _, tl := range [][2]int{{k, k}, {i, k}} {
				if err := ensureOn(s, tl[0], tl[1]); err != nil {
					return Result{}, err
				}
			}
			if _, err := s.Launch(kernels.LdltSolve, []int64{tb64, tb64},
				[]cudasim.Arg{arg(k, k), arg(i, k)}, kernels.TrsmCost(tile, tile)); err != nil {
				return Result{}, err
			}
			if err := produced(s, i, k); err != nil {
				return Result{}, err
			}
		}
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j <= i; j++ {
				s := pick(i, j)
				for _, tl := range [][2]int{{i, k}, {k, k}, {j, k}, {i, j}} {
					if err := ensureOn(s, tl[0], tl[1]); err != nil {
						return Result{}, err
					}
				}
				if _, err := s.Launch(kernels.LdltUpdate, []int64{tb64, tb64, tb64},
					[]cudasim.Arg{arg(i, k), arg(k, k), arg(j, k), arg(i, j)},
					kernels.GemmCost(tile, tile, tile)); err != nil {
					return Result{}, err
				}
				if err := produced(s, i, j); err != nil {
					return Result{}, err
				}
			}
		}
	}
	// Factored columns back to the host.
	for j := 0; j < nt; j++ {
		for i := j; i < nt; i++ {
			s := pick(i, j)
			if p, ok := last[[2]int{i, j}]; ok && p.st != s {
				if err := s.WaitEvent(p.ev); err != nil {
					return Result{}, err
				}
			}
			if _, err := s.MemcpyD2HAsync(dev, off(i, j), tbytes); err != nil {
				return Result{}, err
			}
		}
	}
	cu.DeviceSynchronize()
	if err := cu.RT.Err(); err != nil {
		return Result{}, err
	}
	elapsed := cu.RT.Now() - start
	flops := float64(n) * float64(n) * float64(n) / 3
	return Result{Seconds: elapsed, GFlops: platform.GFlops(flops, elapsed)}, nil
}

// StreamingComparison reproduces the §VI Simulia normalization
// experiment for one supernode size: the hStreams formulation drives
// a KNC, the CUDA Streams formulation drives a K40x, and the
// comparison is made both raw and normalized to card-side kernel
// performance (VTune-style busy-time sums in the paper; trace busy
// time here).
type StreamingComparison struct {
	HStreamsSeconds, CUDASeconds time.Duration
	// RawK40Advantage > 1 means the K40x finished sooner (the paper:
	// 1.12–1.27× across workloads).
	RawK40Advantage float64
	// NormalizedKNCAdvantage > 1 means hStreams used its card more
	// effectively once hardware speed is factored out (the paper:
	// 1.03–1.28×).
	NormalizedKNCAdvantage float64
}

// CompareStreaming runs one supernode through both streaming stacks.
func CompareStreaming(mode core.Mode, n, tile int) (StreamingComparison, error) {
	knc := platform.HSWPlusKNC(1)
	hres, err := Factor(knc, mode, n, tile, Target{CardStreams: 4}, false, 0)
	if err != nil {
		return StreamingComparison{}, err
	}
	hBusy := cardBusy(platform.KNC(), n, tile)

	k40 := platform.HSWPlusK40(1)
	cres, err := CUDAFactor(k40, mode, n, tile, 4)
	if err != nil {
		return StreamingComparison{}, err
	}
	cBusy := cardBusy(platform.K40x(), n, tile)

	// raw > 1 ⇒ the K40x run finished sooner.
	raw := hres.Seconds.Seconds() / cres.Seconds.Seconds()
	// hwRatio > 1 ⇒ the KNC's kernels are that much slower in sum.
	hwRatio := hBusy.Seconds() / cBusy.Seconds()
	// If KNC kernels are hwRatio× slower but the end-to-end run is
	// only raw× slower, the hStreams schedule recovered the
	// difference — the paper's "normalized to card-side performance"
	// KNC advantage.
	normalized := hwRatio / raw
	return StreamingComparison{
		HStreamsSeconds:        hres.Seconds,
		CUDASeconds:            cres.Seconds,
		RawK40Advantage:        raw,
		NormalizedKNCAdvantage: normalized,
	}, nil
}

// cardBusy returns the summed full-width kernel time of the
// factorization's kernels on the given card — the paper's
// normalization quantity ("sum of work and OpenMP times on all
// threads/240 threads" via VTune for KNC, "sum of kernel times, as
// reported by nvprof" for the K40x). Full width makes the quantity a
// property of the hardware + kernel mix, independent of the stream
// partition the runtime chose.
func cardBusy(card *platform.DomainSpec, n, tile int) time.Duration {
	nt := n / tile
	var busy time.Duration
	for k := 0; k < nt; k++ {
		busy += platform.ComputeTime(card, card.Cores(), kernels.LdltCost(tile))
		for i := k + 1; i < nt; i++ {
			busy += platform.ComputeTime(card, card.Cores(), kernels.TrsmCost(tile, tile))
		}
		rem := nt - k - 1
		busy += time.Duration(rem*(rem+1)/2) * platform.ComputeTime(card, card.Cores(), kernels.GemmCost(tile, tile, tile))
	}
	return busy
}
