// Package solver is the Abaqus/Standard proxy (§V): a direct-method
// structural solver whose kernel factorizes dense supernodes with
// LDLᵀ ("It uses similar factorization: LDLT instead of LLT"). The
// real application's workloads are proprietary, so per the
// reproduction ground rules the workload generator in
// internal/workload supplies synthetic supernode mixes that exercise
// the same code path.
//
// Two experiments build on it:
//
//   - Fig. 9: a standalone test program factorizing a single
//     representative supernode on a KNC card (offload), the HSW host,
//     or the IVB host (host-as-target streams), with the paper's
//     stream configurations.
//   - Fig. 8: full-application speedups when 2 MIC cards are added —
//     the solver processes a workload's supernode sequence, large
//     fronts go hetero, small ones stay on the host, and the
//     application speedup follows from the workload's solver
//     dominance.
package solver

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hstreams/internal/app"
	"hstreams/internal/blas"
	"hstreams/internal/core"
	"hstreams/internal/kernels"
	"hstreams/internal/matrix"
	"hstreams/internal/platform"
)

// ErrBadTiling reports an n not divisible by the tile size.
var ErrBadTiling = errors.New("solver: supernode size must be a multiple of the tile size")

// Target describes where a supernode factorization runs.
type Target struct {
	// UseHost adds host-as-target streams as a compute domain.
	UseHost bool
	// HostStreams × HostCoresPerStream configure the host partition.
	HostStreams, HostCoresPerStream int
	// CardStreams is the per-card stream count (cards come from the
	// machine).
	CardStreams int
	// PanelOnHost places the LDLᵀ panel factorizations on the host.
	PanelOnHost bool
}

// Result summarizes one factorization.
type Result struct {
	Seconds time.Duration
	GFlops  float64
}

// Factor runs the tiled LDLᵀ factorization of one dense n×n
// supernode on the machine, distributed per target. Structure
// mirrors the tiled Cholesky of Fig. 5 with LDLᵀ kernels.
func Factor(machine *platform.Machine, mode core.Mode, n, tile int, target Target, verify bool, seed int64) (Result, error) {
	if n%tile != 0 {
		return Result{}, ErrBadTiling
	}
	hostStreams := 0
	hostCores := 0
	if target.UseHost {
		hostStreams = target.HostStreams
		if hostStreams <= 0 {
			hostStreams = 3
		}
		hostCores = hostStreams * target.HostCoresPerStream
	}
	cardStreams := target.CardStreams
	if cardStreams <= 0 {
		cardStreams = 4
	}
	a, err := app.Init(app.Options{
		Machine:        machine,
		Mode:           mode,
		StreamsPerCard: cardStreams,
		HostStreams:    hostStreams,
		HostCores:      hostCores,
	})
	if err != nil {
		return Result{}, err
	}
	defer a.Fini()
	return factorOn(a, n, tile, target.PanelOnHost, verify, seed)
}

func factorOn(a *app.App, n, tile int, panelOnHost bool, verify bool, seed int64) (Result, error) {
	rt := a.RT
	nt := n / tile
	tbytes := kernels.TileBytes(tile)
	buf, err := rt.Alloc1D("supernode", int64(nt*nt)*tbytes)
	if err != nil {
		return Result{}, err
	}
	var sym *matrix.Dense
	if rt.Mode() == core.ModeReal {
		kernels.Register(rt)
		sym = matrix.RandSymIndefinite(n, seed+3)
		packTiles(buf.HostFloat64s(), sym, nt, tile)
	}
	doms := a.ComputeDomains()
	if len(doms) == 0 {
		return Result{}, app.ErrNoStreams
	}
	var panelStream *core.Stream
	if panelOnHost {
		host := rt.Host()
		var share *core.Stream
		if hs := a.HostStreams(); len(hs) > 0 {
			share = hs[0]
		}
		ps, err := rt.StreamCreateOn(host, 0, host.Spec().Cores(), share)
		if err != nil {
			return Result{}, err
		}
		panelStream = ps
	}
	owner := make([]*core.Domain, nt)
	for i := range owner {
		owner[i] = doms[i%len(doms)]
	}

	// Tile coherence bookkeeping, as in the Cholesky choreography.
	type tstate struct {
		last   *core.Action
		stream *core.Stream
		bcast  map[int]*core.Action
	}
	states := map[[2]int]*tstate{}
	st := func(i, j int) *tstate {
		k := [2]int{i, j}
		s, ok := states[k]
		if !ok {
			s = &tstate{bcast: map[int]*core.Action{}}
			states[k] = s
		}
		return s
	}
	off := func(i, j int) int64 { return kernels.TileOff(i, j, nt, tile) }
	dep := func(deps []*core.Action, t *tstate, s *core.Stream) []*core.Action {
		if t.last != nil && t.stream != s && !t.last.Completed() {
			deps = append(deps, t.last)
		}
		return deps
	}
	ensure := func(i, j int, s *core.Stream) ([]*core.Action, error) {
		t := st(i, j)
		d := s.Domain()
		if d.IsHost() {
			return dep(nil, t, s), nil
		}
		if x, ok := t.bcast[d.Index()]; ok {
			if x == nil {
				return dep(nil, t, s), nil
			}
			if x.Stream() != s && !x.Completed() {
				return []*core.Action{x}, nil
			}
			return nil, nil
		}
		deps := dep(nil, t, s)
		x, err := s.EnqueueXferDeps(buf, off(i, j), tbytes, core.ToSink, deps)
		if err != nil {
			return nil, err
		}
		t.bcast[d.Index()] = x
		return nil, nil
	}
	wrote := func(t *tstate, tileOff int64, a *core.Action, s *core.Stream) error {
		t.last, t.stream = a, s
		t.bcast = map[int]*core.Action{}
		if !s.Domain().IsHost() {
			t.bcast[s.Domain().Index()] = nil
			// Send the freshest copy home so other domains (and the
			// final result) see it.
			pull, err := s.EnqueueXfer(buf, tileOff, tbytes, core.ToSource)
			if err != nil {
				return err
			}
			t.last, t.stream = pull, s
		}
		return nil
	}

	tb := int64(tile)
	start := rt.Now()
	for k := 0; k < nt; k++ {
		// Panel: LDLᵀ of the diagonal tile.
		var ps *core.Stream
		if panelOnHost {
			ps = panelStream
		} else {
			var err error
			if ps, err = a.NextStream(owner[k]); err != nil {
				return Result{}, err
			}
		}
		deps, err := ensure(k, k, ps)
		if err != nil {
			return Result{}, err
		}
		deps = dep(deps, st(k, k), ps)
		panel, err := ps.EnqueueComputeDeps(kernels.LdltPanel, []int64{tb, int64(blas.DefaultNB)},
			[]core.Operand{buf.Range(off(k, k), tbytes, core.InOut)},
			kernels.LdltCost(tile), deps)
		if err != nil {
			return Result{}, err
		}
		if err := wrote(st(k, k), off(k, k), panel, ps); err != nil {
			return Result{}, err
		}

		// Column solves.
		for i := k + 1; i < nt; i++ {
			var s *core.Stream
			if panelOnHost && len(a.HostStreams()) > 0 {
				if s, err = a.NextStream(rt.Host()); err != nil {
					return Result{}, err
				}
			} else if panelOnHost {
				s = panelStream
			} else {
				if s, err = a.NextStream(owner[i]); err != nil {
					return Result{}, err
				}
			}
			deps, err := ensure(k, k, s)
			if err != nil {
				return Result{}, err
			}
			if e2, err := ensure(i, k, s); err != nil {
				return Result{}, err
			} else {
				deps = append(deps, e2...)
			}
			deps = dep(deps, st(k, k), s)
			deps = dep(deps, st(i, k), s)
			solve, err := s.EnqueueComputeDeps(kernels.LdltSolve, []int64{tb, tb},
				[]core.Operand{
					buf.Range(off(k, k), tbytes, core.In),
					buf.Range(off(i, k), tbytes, core.InOut),
				}, kernels.TrsmCost(tile, tile), deps)
			if err != nil {
				return Result{}, err
			}
			if err := wrote(st(i, k), off(i, k), solve, s); err != nil {
				return Result{}, err
			}
		}

		// Trailing updates.
		for i := k + 1; i < nt; i++ {
			d := owner[i]
			for j := k + 1; j <= i; j++ {
				s, err := a.NextStream(d)
				if err != nil {
					return Result{}, err
				}
				var deps []*core.Action
				for _, t := range [][2]int{{i, k}, {k, k}, {j, k}, {i, j}} {
					e, err := ensure(t[0], t[1], s)
					if err != nil {
						return Result{}, err
					}
					deps = append(deps, e...)
					deps = dep(deps, st(t[0], t[1]), s)
				}
				upd, err := s.EnqueueComputeDeps(kernels.LdltUpdate, []int64{tb, tb, tb},
					[]core.Operand{
						buf.Range(off(i, k), tbytes, core.In),
						buf.Range(off(k, k), tbytes, core.In),
						buf.Range(off(j, k), tbytes, core.In),
						buf.Range(off(i, j), tbytes, core.InOut),
					}, kernels.GemmCost(tile, tile, tile), deps)
				if err != nil {
					return Result{}, err
				}
				t := st(i, j)
				t.last, t.stream = upd, s
				t.bcast = map[int]*core.Action{}
				if !d.IsHost() {
					t.bcast[d.Index()] = nil
					// Only the next panel column needs to go home
					// eagerly; the rest goes home when solved.
					if j == k+1 {
						pull, err := s.EnqueueXfer(buf, off(i, j), tbytes, core.ToSource)
						if err != nil {
							return Result{}, err
						}
						t.last, t.stream = pull, s
					}
				}
			}
		}
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		return Result{}, err
	}
	elapsed := rt.Now() - start

	if verify && rt.Mode() == core.ModeReal {
		if err := verifyLDLT(buf.HostFloat64s(), sym, nt, tile); err != nil {
			return Result{}, err
		}
	}
	flops := float64(n) * float64(n) * float64(n) / 3
	return Result{Seconds: elapsed, GFlops: platform.GFlops(flops, elapsed)}, nil
}

// packTiles stores the dense symmetric matrix tile-major.
func packTiles(dst []float64, src *matrix.Dense, nt, tb int) {
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < nt; ti++ {
			tile := dst[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				for ii := 0; ii < tb; ii++ {
					tile[ii+jj*tb] = src.At(ti*tb+ii, tj*tb+jj)
				}
			}
		}
	}
}

// verifyLDLT compares the tiled factorization against the unblocked
// reference on the original matrix.
func verifyLDLT(data []float64, sym *matrix.Dense, nt, tb int) error {
	n := nt * tb
	ref := sym.Clone()
	if err := blas.Ldlt(n, ref.Data, ref.LD); err != nil {
		return err
	}
	var maxDiff float64
	for tj := 0; tj < nt; tj++ {
		for ti := tj; ti < nt; ti++ {
			tile := data[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				for ii := 0; ii < tb; ii++ {
					gi, gj := ti*tb+ii, tj*tb+jj
					if gi >= gj {
						if d := math.Abs(tile[ii+jj*tb] - ref.At(gi, gj)); d > maxDiff {
							maxDiff = d
						}
					}
				}
			}
		}
	}
	if maxDiff > 1e-7*float64(n) {
		return fmt.Errorf("solver: tiled LDLT differs from reference by %g", maxDiff)
	}
	return nil
}
