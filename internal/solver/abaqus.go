package solver

import (
	"time"

	"hstreams/internal/core"
	"hstreams/internal/platform"
	"hstreams/internal/workload"
)

// OffloadThreshold is the smallest supernode worth sending to the
// cards: below it, transfer and invocation costs eat the gain and the
// front stays on the host.
const OffloadThreshold = 4800

// solverTile picks the tile size for a supernode.
func solverTile(n int) int {
	t := n / 8
	if t > 2400 {
		t = 2400
	}
	if t < 300 {
		t = 300
	}
	for n%t != 0 {
		t--
	}
	return t
}

// AppSpeedup is one Fig. 8 data point.
type AppSpeedup struct {
	Workload string
	// Solver is the solver-kernel speedup from adding the cards.
	Solver float64
	// App is the whole-application speedup (Amdahl over the
	// workload's solver fraction).
	App float64
	// BaselineSolver and AccelSolver are the underlying times.
	BaselineSolver, AccelSolver time.Duration
}

// Fig8Speedup measures one workload on one host platform: baseline is
// host-only; accelerated adds the machine's cards for supernodes
// above OffloadThreshold (§V: "Only the solver is offloaded to the
// MIC cards").
func Fig8Speedup(machine *platform.Machine, mode core.Mode, w workload.Abaqus) (AppSpeedup, error) {
	hostOnly := Target{
		UseHost:            true,
		HostStreams:        3,
		HostCoresPerStream: machine.Host.Cores() / 3,
		PanelOnHost:        true,
	}
	hetero := Target{
		UseHost:            true,
		HostStreams:        3,
		HostCoresPerStream: machine.Host.Cores() / 3,
		CardStreams:        4,
		PanelOnHost:        true,
	}
	hostMachine := platform.NewMachine(machine.Name+"-base", machine.Host, 0, machine.Host, machine.Link)

	var base, accel time.Duration
	for _, n := range w.Supernodes {
		tile := solverTile(n)
		b, err := Factor(hostMachine, mode, n, tile, hostOnly, false, 0)
		if err != nil {
			return AppSpeedup{}, err
		}
		base += b.Seconds
		if n >= OffloadThreshold && len(machine.Cards) > 0 {
			h, err := Factor(machine, mode, n, tile, hetero, false, 0)
			if err != nil {
				return AppSpeedup{}, err
			}
			accel += h.Seconds
		} else {
			accel += b.Seconds
		}
	}
	solverSpeedup := base.Seconds() / accel.Seconds()
	f := w.SolverFraction
	appSpeedup := 1 / (f/solverSpeedup + (1 - f))
	return AppSpeedup{
		Workload:       w.Name,
		Solver:         solverSpeedup,
		App:            appSpeedup,
		BaselineSolver: base,
		AccelSolver:    accel,
	}, nil
}

// Fig9Config reproduces the paper's standalone-test stream layouts:
// 4 streams × 15 cores (60 threads) on KNC, 3 × 9 on HSW, 3 × 7 on
// IVB.
type Fig9Config struct {
	Label  string
	Mach   *platform.Machine
	Target Target
}

// Fig9N is the representative supernode edge used by the standalone
// program reproduction; chosen so the modeled HSW host-as-target run
// lands near the paper's 2.24 s.
const Fig9N = 16500

// Fig9Tile is the supernode tiling for Fig. 9 runs.
const Fig9Tile = 1650

// Fig9Cases returns the three standalone-test configurations.
func Fig9Cases() []Fig9Config {
	return []Fig9Config{
		{
			Label: "KNC offload",
			Mach:  platform.HSWPlusKNC(1),
			Target: Target{
				CardStreams: 4,
			},
		},
		{
			Label: "HSW host-as-target",
			Mach:  platform.HSWPlusKNC(0),
			Target: Target{
				UseHost:            true,
				HostStreams:        3,
				HostCoresPerStream: 9,
				PanelOnHost:        true,
			},
		},
		{
			Label: "IVB host-as-target",
			Mach:  platform.IVBPlusKNC(0),
			Target: Target{
				UseHost:            true,
				HostStreams:        3,
				HostCoresPerStream: 7,
				PanelOnHost:        true,
			},
		},
	}
}
