package solver

import (
	"math/rand"
	"time"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/kernels"
	"hstreams/internal/matrix"
	"hstreams/internal/platform"
)

// Front is one supernode in a multifrontal elimination tree: the
// paper's "full production solver processes all of the supernodes in
// a given system of equations in an optimized order" (§V). Children
// must be factorized before their parent (their Schur complements
// assemble into it); independent subtrees carry no ordering — the
// task concurrency the streaming runtime exploits.
type Front struct {
	// N is the dense supernode edge.
	N int
	// Children are the fronts whose contributions assemble here.
	Children []*Front
}

// Flops returns the total factorization work of the subtree.
func (f *Front) Flops() float64 {
	total := float64(f.N) * float64(f.N) * float64(f.N) / 3
	for _, c := range f.Children {
		total += c.Flops()
	}
	return total
}

// Count returns the number of fronts in the subtree.
func (f *Front) Count() int {
	n := 1
	for _, c := range f.Children {
		n += c.Count()
	}
	return n
}

// RandomForest generates a synthetic elimination tree: fronts grow
// toward the root (as in real multifrontal factorizations, where the
// root supernode is the dense bottleneck).
func RandomForest(seed int64, depth, fanout, rootN int) *Front {
	rng := rand.New(rand.NewSource(seed))
	var build func(level, n int) *Front
	build = func(level, n int) *Front {
		f := &Front{N: n}
		if level == 0 {
			return f
		}
		for c := 0; c < fanout; c++ {
			childN := n/2 + rng.Intn(n/4+1)
			childN = childN / 300 * 300
			if childN < 600 {
				childN = 600
			}
			f.Children = append(f.Children, build(level-1, childN))
		}
		return f
	}
	return build(depth, rootN)
}

// ForestConfig describes a forest factorization run.
type ForestConfig struct {
	Root *Front
	// Tile used within each front (front sizes are rounded to it).
	Tile int
	// CardStreams per card (default 4).
	CardStreams int
}

// ForestResult summarizes a run.
type ForestResult struct {
	Seconds time.Duration
	GFlops  float64
	Fronts  int
}

// FactorForest factorizes the elimination tree on the machine's
// cards: each front runs entirely within one domain (distributed over
// its streams), fronts round-robin over cards, and parent fronts wait
// on their children through explicit events — independent subtrees
// overlap freely.
func FactorForest(machine *platform.Machine, mode core.Mode, cfg ForestConfig) (ForestResult, error) {
	if cfg.CardStreams <= 0 {
		cfg.CardStreams = 4
	}
	a, err := app.Init(app.Options{
		Machine:        machine,
		Mode:           mode,
		StreamsPerCard: cfg.CardStreams,
	})
	if err != nil {
		return ForestResult{}, err
	}
	defer a.Fini()
	rt := a.RT
	if mode == core.ModeReal {
		kernels.Register(rt)
	}
	doms := a.ComputeDomains()
	if len(doms) == 0 {
		return ForestResult{}, app.ErrNoStreams
	}

	start := rt.Now()
	next := 0
	var schedule func(f *Front) (*core.Action, error)
	schedule = func(f *Front) (*core.Action, error) {
		// Children first (they may land on different cards and run
		// concurrently).
		var deps []*core.Action
		for _, c := range f.Children {
			done, err := schedule(c)
			if err != nil {
				return nil, err
			}
			deps = append(deps, done)
		}
		d := doms[next%len(doms)]
		next++
		return factorFrontInDomain(a, d, f.N, cfg.Tile, deps)
	}
	final, err := schedule(cfg.Root)
	if err != nil {
		return ForestResult{}, err
	}
	if err := final.Wait(); err != nil {
		return ForestResult{}, err
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		return ForestResult{}, err
	}
	elapsed := rt.Now() - start
	return ForestResult{
		Seconds: elapsed,
		GFlops:  platform.GFlops(cfg.Root.Flops(), elapsed),
		Fronts:  cfg.Root.Count(),
	}, nil
}

// factorFrontInDomain enqueues one front's tiled LDLᵀ entirely within
// domain d, spread over its streams, entered only after deps (the
// children's completions) and returning the action whose completion
// marks the front done (its pull-back to the host).
func factorFrontInDomain(a *app.App, d *core.Domain, n, tile int, deps []*core.Action) (*core.Action, error) {
	rt := a.RT
	for n%tile != 0 {
		n += 300 // round up to the tiling
	}
	nt := n / tile
	tbytes := kernels.TileBytes(tile)
	buf, err := rt.Alloc1D("front", int64(nt*nt)*tbytes)
	if err != nil {
		return nil, err
	}
	if rt.Mode() == core.ModeReal {
		// Fill a factorizable (diagonally dominant symmetric) front
		// before the push below can read the host instance.
		sym := matrix.RandSymIndefinite(n, int64(n))
		packTiles(buf.HostFloat64s(), sym, nt, tile)
	}
	// Whole-front push, gated on the children. Everything after
	// orders against it by operand overlap.
	s0, err := a.NextStream(d)
	if err != nil {
		return nil, err
	}
	push, err := s0.EnqueueXferDeps(buf, 0, buf.Size(), core.ToSink, deps)
	if err != nil {
		return nil, err
	}
	type tstate struct {
		last   *core.Action
		stream *core.Stream
	}
	states := map[[2]int]*tstate{}
	st := func(i, j int) *tstate {
		k := [2]int{i, j}
		t, ok := states[k]
		if !ok {
			// Every tile's first consumer must see the staging push,
			// which may live in a different stream.
			t = &tstate{last: push, stream: s0}
			states[k] = t
		}
		return t
	}
	off := func(i, j int) int64 { return kernels.TileOff(i, j, nt, tile) }
	dep := func(ds []*core.Action, t *tstate, s *core.Stream) []*core.Action {
		if t.last != nil && t.stream != s && !t.last.Completed() {
			ds = append(ds, t.last)
		}
		return ds
	}
	tb := int64(tile)
	for k := 0; k < nt; k++ {
		s, err := a.NextStream(d)
		if err != nil {
			return nil, err
		}
		ds := dep(nil, st(k, k), s)
		panel, err := s.EnqueueComputeDeps(kernels.LdltPanel, []int64{tb, 64},
			[]core.Operand{buf.Range(off(k, k), tbytes, core.InOut)},
			kernels.LdltCost(tile), ds)
		if err != nil {
			return nil, err
		}
		*st(k, k) = tstate{panel, s}
		for i := k + 1; i < nt; i++ {
			s, err := a.NextStream(d)
			if err != nil {
				return nil, err
			}
			ds := dep(nil, st(k, k), s)
			ds = dep(ds, st(i, k), s)
			solve, err := s.EnqueueComputeDeps(kernels.LdltSolve, []int64{tb, tb},
				[]core.Operand{
					buf.Range(off(k, k), tbytes, core.In),
					buf.Range(off(i, k), tbytes, core.InOut),
				}, kernels.TrsmCost(tile, tile), ds)
			if err != nil {
				return nil, err
			}
			*st(i, k) = tstate{solve, s}
		}
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j <= i; j++ {
				s, err := a.NextStream(d)
				if err != nil {
					return nil, err
				}
				var ds []*core.Action
				for _, tl := range [][2]int{{i, k}, {k, k}, {j, k}, {i, j}} {
					ds = dep(ds, st(tl[0], tl[1]), s)
				}
				upd, err := s.EnqueueComputeDeps(kernels.LdltUpdate, []int64{tb, tb, tb},
					[]core.Operand{
						buf.Range(off(i, k), tbytes, core.In),
						buf.Range(off(k, k), tbytes, core.In),
						buf.Range(off(j, k), tbytes, core.In),
						buf.Range(off(i, j), tbytes, core.InOut),
					}, kernels.GemmCost(tile, tile, tile), ds)
				if err != nil {
					return nil, err
				}
				*st(i, j) = tstate{upd, s}
			}
		}
	}
	// One pull of the whole factored front; cross-stream producers
	// become explicit deps, in-stream ones ride the FIFO semantic.
	sOut, err := a.NextStream(d)
	if err != nil {
		return nil, err
	}
	var finalDeps []*core.Action
	for _, t := range states {
		finalDeps = dep(finalDeps, t, sOut)
	}
	return sOut.EnqueueXferDeps(buf, 0, buf.Size(), core.ToSource, finalDeps)
}
