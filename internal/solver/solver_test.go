package solver

import (
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/platform"
	"hstreams/internal/workload"
)

func TestRealTiledLDLTHostCorrect(t *testing.T) {
	target := Target{UseHost: true, HostStreams: 2, HostCoresPerStream: 4, PanelOnHost: true}
	if _, err := Factor(platform.HSWPlusKNC(0), core.ModeReal, 48, 12, target, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRealTiledLDLTOffloadCorrect(t *testing.T) {
	target := Target{CardStreams: 3}
	if _, err := Factor(platform.HSWPlusKNC(1), core.ModeReal, 48, 12, target, true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRealTiledLDLTHeteroCorrect(t *testing.T) {
	target := Target{UseHost: true, HostStreams: 2, HostCoresPerStream: 4, CardStreams: 2, PanelOnHost: true}
	if _, err := Factor(platform.HSWPlusKNC(2), core.ModeReal, 60, 12, target, true, 3); err != nil {
		t.Fatal(err)
	}
}

func TestBadTiling(t *testing.T) {
	if _, err := Factor(platform.HSWPlusKNC(0), core.ModeSim, 100, 7, Target{UseHost: true, HostStreams: 1, HostCoresPerStream: 4, PanelOnHost: true}, false, 0); err != ErrBadTiling {
		t.Fatalf("err = %v, want ErrBadTiling", err)
	}
}

// TestSimFig9Ratios checks the standalone supernode runtimes against
// the paper's Fig. 9 shape: KNC offload ≈ HSW host-as-target (2.35 vs
// 2.24 s), and IVB roughly twice HSW (4.27 s).
func TestSimFig9Ratios(t *testing.T) {
	times := map[string]float64{}
	for _, c := range Fig9Cases() {
		r, err := Factor(c.Mach, core.ModeSim, Fig9N, Fig9Tile, c.Target, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		times[c.Label] = r.Seconds.Seconds()
	}
	t.Logf("Fig 9 runtimes: KNC=%.2fs HSW=%.2fs IVB=%.2fs (paper: 2.35 / 2.24 / 4.27)",
		times["KNC offload"], times["HSW host-as-target"], times["IVB host-as-target"])
	kncOverHsw := times["KNC offload"] / times["HSW host-as-target"]
	if kncOverHsw < 0.8 || kncOverHsw > 1.35 {
		t.Fatalf("KNC/HSW ratio = %.2f, paper has ≈1.05", kncOverHsw)
	}
	ivbOverHsw := times["IVB host-as-target"] / times["HSW host-as-target"]
	if ivbOverHsw < 1.5 || ivbOverHsw > 2.4 {
		t.Fatalf("IVB/HSW ratio = %.2f, paper has ≈1.9", ivbOverHsw)
	}
	// Absolute scale: the calibration targets ~2.2 s for HSW.
	if times["HSW host-as-target"] < 1.0 || times["HSW host-as-target"] > 4.5 {
		t.Fatalf("HSW runtime %.2fs implausibly far from the paper's 2.24 s", times["HSW host-as-target"])
	}
}

// TestSimFig8Bands reproduces Fig. 8's headline numbers: adding 2 MIC
// cards speeds the solver kernel by up to ~2.6× on IVB and ~1.45× on
// HSW, with application speedups lower (up to ~2.0× / ~1.2×), and
// every speedup at least 1.
func TestSimFig8Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole workload suite")
	}
	type platformCase struct {
		name    string
		machine *platform.Machine
		// paper's maxima
		maxSolver, maxApp float64
	}
	cases := []platformCase{
		{"IVB", platform.IVBPlusKNC(2), 2.61, 1.99},
		{"HSW", platform.HSWPlusKNC(2), 1.45, 1.22},
	}
	for _, pc := range cases {
		var bestSolver, bestApp float64
		for _, w := range workload.AbaqusSuite() {
			sp, err := Fig8Speedup(pc.machine, core.ModeSim, w)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s %-4s: solver %.2f× app %.2f×", pc.name, w.Name, sp.Solver, sp.App)
			if sp.Solver < 1.0 {
				t.Errorf("%s %s: adding cards slowed the solver (%.2f×)", pc.name, w.Name, sp.Solver)
			}
			if sp.App > sp.Solver+1e-9 {
				t.Errorf("%s %s: app speedup %.2f exceeds solver speedup %.2f", pc.name, w.Name, sp.App, sp.Solver)
			}
			if sp.Solver > bestSolver {
				bestSolver = sp.Solver
			}
			if sp.App > bestApp {
				bestApp = sp.App
			}
		}
		// The maxima should land in the neighborhood of the paper's.
		if bestSolver < pc.maxSolver*0.6 || bestSolver > pc.maxSolver*1.7 {
			t.Errorf("%s best solver speedup %.2f× far from paper's %.2f×", pc.name, bestSolver, pc.maxSolver)
		}
	}
}

func TestWorkloadSuite(t *testing.T) {
	suite := workload.AbaqusSuite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d workloads, want 8 (Fig. 8)", len(suite))
	}
	unsym := 0
	for _, w := range suite {
		if w.SolverFraction <= 0 || w.SolverFraction >= 1 {
			t.Errorf("%s: solver fraction %v out of range", w.Name, w.SolverFraction)
		}
		if len(w.Supernodes) == 0 {
			t.Errorf("%s: no supernodes", w.Name)
		}
		if w.Unsymmetric {
			unsym++
		}
		share := w.FlopsShareAbove(OffloadThreshold)
		if share < 0 || share > 1 {
			t.Errorf("%s: bad flops share %v", w.Name, share)
		}
	}
	if unsym == 0 {
		t.Error("suite must include unsymmetric cases (paper: 'also unsymmetric cases')")
	}
	if (workload.Abaqus{}).FlopsShareAbove(1) != 0 {
		t.Error("empty workload share must be 0")
	}
}

func TestRealCUDAFactorRuns(t *testing.T) {
	// The CUDA-Streams rendition must produce a working factorization
	// too (strict FIFO + events are sufficient, just clumsier).
	if _, err := CUDAFactor(platform.HSWPlusK40(1), core.ModeReal, 36, 12, 2); err != nil {
		t.Fatal(err)
	}
}

// TestSimStreamingComparison reproduces the §VI Simulia
// normalization: raw, the faster K40x hardware wins; normalized to
// card-side kernel performance, the hStreams formulation holds its
// own ("the middle of these ranges is within a couple percent of
// parity"). Paper: raw K40x advantage 1.12–1.27×, normalized KNC
// advantage 1.03–1.28×.
func TestSimStreamingComparison(t *testing.T) {
	for _, n := range []int{9600, 13200} {
		cmp, err := CompareStreaming(core.ModeSim, n, n/8)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d: hStreams/KNC %v, CUDA/K40 %v, raw K40 advantage %.2f×, normalized KNC advantage %.2f×",
			n, cmp.HStreamsSeconds, cmp.CUDASeconds, cmp.RawK40Advantage, cmp.NormalizedKNCAdvantage)
		// "Comparable performance for radically-different targets":
		// raw end-to-end within ±40 % of each other (the paper's K40x
		// won raw by 1.12–1.27×; our modeled K40x is relatively
		// weaker on small tiles, so the raw sign can flip).
		if cmp.RawK40Advantage < 0.7 || cmp.RawK40Advantage > 1.4 {
			t.Errorf("n=%d: raw comparison not comparable (%.2f×)", n, cmp.RawK40Advantage)
		}
		// Normalized to card-side kernel performance, hStreams is at
		// parity or slightly better (paper band 1.03–1.28×).
		if cmp.NormalizedKNCAdvantage < 0.98 || cmp.NormalizedKNCAdvantage > 1.35 {
			t.Errorf("n=%d: normalized KNC advantage %.2f× outside the paper's parity band", n, cmp.NormalizedKNCAdvantage)
		}
	}
}

func TestForestGenerator(t *testing.T) {
	f := RandomForest(1, 2, 2, 4800)
	if f.Count() != 1+2+4 {
		t.Fatalf("count = %d, want 7", f.Count())
	}
	if f.Flops() <= float64(f.N)*float64(f.N)*float64(f.N)/3 {
		t.Fatal("subtree flops must exceed the root's")
	}
	for _, c := range f.Children {
		if c.N >= f.N {
			t.Fatal("fronts must shrink toward the leaves")
		}
	}
}

func TestRealForestRuns(t *testing.T) {
	root := &Front{N: 48, Children: []*Front{{N: 24}, {N: 24}}}
	res, err := FactorForest(platform.HSWPlusKNC(2), core.ModeReal, ForestConfig{Root: root, Tile: 12, CardStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fronts != 3 {
		t.Fatalf("fronts = %d, want 3", res.Fronts)
	}
}

// TestSimForestTreeParallelism: independent subtrees must overlap
// across cards — the whole-system solve is faster than the serial sum
// of its fronts — while parents still wait for their children.
func TestSimForestTreeParallelism(t *testing.T) {
	root := RandomForest(2, 2, 2, 9600)
	serialFronts := 0
	_ = serialFronts
	two, err := FactorForest(platform.HSWPlusKNC(2), core.ModeSim, ForestConfig{Root: root, Tile: 1200})
	if err != nil {
		t.Fatal(err)
	}
	one, err := FactorForest(platform.HSWPlusKNC(1), core.ModeSim, ForestConfig{Root: root, Tile: 1200})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("forest of %d fronts: 1 card %v, 2 cards %v (%.2f× from tree parallelism)",
		root.Count(), one.Seconds, two.Seconds, one.Seconds.Seconds()/two.Seconds.Seconds())
	if two.Seconds >= one.Seconds {
		t.Fatalf("independent subtrees did not overlap across cards: %v vs %v", two.Seconds, one.Seconds)
	}
}

// TestSimForestRespectsTreeOrder: a deep chain (no independent
// subtrees) must gain nothing from a second card.
func TestSimForestRespectsTreeOrder(t *testing.T) {
	chain := &Front{N: 4800, Children: []*Front{{N: 4800, Children: []*Front{{N: 4800}}}}}
	one, err := FactorForest(platform.HSWPlusKNC(1), core.ModeSim, ForestConfig{Root: chain, Tile: 1200})
	if err != nil {
		t.Fatal(err)
	}
	two, err := FactorForest(platform.HSWPlusKNC(2), core.ModeSim, ForestConfig{Root: chain, Tile: 1200})
	if err != nil {
		t.Fatal(err)
	}
	gain := one.Seconds.Seconds() / two.Seconds.Seconds()
	t.Logf("chain: 1 card %v, 2 cards %v (gain %.2f×)", one.Seconds, two.Seconds, gain)
	if gain > 1.1 {
		t.Fatalf("a pure chain cannot speed up %.2f× from a second card", gain)
	}
}
