// Package debugserver is the live observability endpoint: one opt-in
// HTTP server (hsbench/hsinfo -debug-addr) exposing the process's
// telemetry while runs are in flight — Prometheus metrics, Go pprof
// profiles, the causal-span flight recorder as a Chrome trace, stream
// queue snapshots, the critical-path analysis of the latest run, and
// the health engine's verdict and event journal (/debug/health,
// /debug/events) with liveness/readiness probe semantics.
//
// Everything served here is read-only and safe to hit while the
// runtime works: the metrics registry and flight recorder are
// lock-free, and runtime status snapshots take the runtime lock only
// briefly.
package debugserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/fabric"
	"hstreams/internal/health"
	"hstreams/internal/metrics"
	"hstreams/internal/serve"
	"hstreams/internal/telemetry"
	"hstreams/internal/trace"
)

// Options configures Start. Every field defaults to the process-wide
// instance, which is what the CLIs use.
type Options struct {
	// Registry serves /metrics. Nil uses metrics.Default().
	Registry *metrics.Registry
	// Flight serves /debug/trace and /debug/critpath. Nil uses
	// trace.DefaultFlight().
	Flight *trace.FlightRecorder
	// Runtimes enumerates the runtimes /debug/streams reports on.
	// Nil uses core.LiveRuntimes.
	Runtimes func() []*core.Runtime
	// Telemetry serves /debug/timeline. Nil uses telemetry.Default()
	// (the store the CLIs' sampler feeds).
	Telemetry *telemetry.Store
	// Health serves /debug/health and /debug/events. Nil builds a
	// default engine over the resolved Telemetry/Registry/Runtimes
	// with the default rule pack and the process-wide journal.
	Health *health.Engine
	// Tenants, when set, serves /debug/tenants with the serving front
	// end's per-tenant status (serve.Server.Tenants). Nil processes
	// (the batch CLIs) answer 404 there.
	Tenants func() []serve.TenantStatus
}

// fill resolves every nil Options field to its process-wide default.
// Health is resolved last so a defaulted engine watches the same
// store, registry and runtimes the other endpoints serve.
func (opt *Options) fill() {
	if opt.Registry == nil {
		opt.Registry = metrics.Default()
	}
	if opt.Flight == nil {
		opt.Flight = trace.DefaultFlight()
	}
	if opt.Runtimes == nil {
		opt.Runtimes = core.LiveRuntimes
	}
	if opt.Telemetry == nil {
		opt.Telemetry = telemetry.Default()
	}
	if opt.Health == nil {
		opt.Health = health.New(health.Options{
			Store:    opt.Telemetry,
			Registry: opt.Registry,
			Runtimes: opt.Runtimes,
		})
	}
}

// Server is a running debug server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (e.g. "127.0.0.1:6060"; port 0 picks a free port)
// and serves the debug endpoints in a background goroutine until
// Close.
func Start(addr string, opt Options) (*Server, error) {
	opt.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: newMux(opt)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, useful when Start was given port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Handler returns the debug mux without binding a listener (tests).
func Handler(opt Options) http.Handler {
	opt.fill()
	return newMux(opt)
}

func newMux(opt Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", indexHandler)
	mux.Handle("/metrics", opt.Registry)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", traceHandler(opt.Flight))
	mux.HandleFunc("/debug/streams", streamsHandler(opt.Runtimes, opt.Flight))
	mux.HandleFunc("/debug/critpath", critpathHandler(opt.Flight))
	mux.HandleFunc("/debug/timeline", timelineHandler(opt.Telemetry, opt.Registry))
	mux.HandleFunc("/debug/health", healthHandler(opt.Health))
	mux.HandleFunc("/debug/events", eventsHandler(opt.Health.Journal()))
	if opt.Tenants != nil {
		mux.HandleFunc("/debug/tenants", tenantsHandler(opt.Tenants))
	}
	return mux
}

// tenantsHandler serves the serving layer's per-tenant snapshot:
// JSON by default, ?format=text for a fixed-width table.
func tenantsHandler(tenants func() []serve.TenantStatus) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ts := tenants()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "%-16s %6s %7s %7s %8s %8s %9s %12s\n",
				"tenant", "weight", "pending", "inflight", "actions", "streams", "buffers", "buf-bytes")
			for _, t := range ts {
				fmt.Fprintf(w, "%-16s %6d %7d %7d %8d %8d %9d %12d\n",
					t.Name, t.Quotas.Weight, t.Pending, t.Inflight,
					t.Actions, len(t.Streams), t.Buffers, t.BufferBytes)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ts)
	}
}

func indexHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `hstreams debug server

  /metrics              Prometheus exposition (?format=json for JSON)
  /debug/pprof/         Go runtime profiles
  /debug/trace          flight recorder as Chrome trace JSON (load in Perfetto;
                        ?run=N for one run, default all retained spans)
  /debug/streams        live stream queues + link traffic as JSON
  /debug/critpath       critical-path report of the latest run
                        (?format=json for the full report, ?run=N to pick a run)
  /debug/timeline       rolling-window telemetry: rates, quantiles, utilization,
                        queues, links (JSON; ?format=text to render,
                        ?window=10s to narrow the window,
                        ?step=1s to thin the sample series)
  /debug/health         health engine verdict: SLO rules, stalled streams,
                        recent events (JSON; ?format=text to render;
                        ?probe=live|ready for 200/503 probe semantics)
  /debug/events         structured event journal (JSON; ?format=text to
                        render, ?n=50 to limit)
  /debug/tenants        serving front end tenant status: quotas, queues,
                        fair-share pass (JSON; ?format=text to render;
                        404 unless the process runs a serving layer)
`)
}

// parseRun reads an optional ?run=N selector; 0 means "latest".
func parseRun(r *http.Request) (uint64, error) {
	q := r.URL.Query().Get("run")
	if q == "" {
		return 0, nil
	}
	var run uint64
	if _, err := fmt.Sscanf(q, "%d", &run); err != nil || run == 0 {
		return 0, fmt.Errorf("bad run %q", q)
	}
	return run, nil
}

func traceHandler(f *trace.FlightRecorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		run, err := parseRun(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spans := f.Snapshot()
		if run != 0 {
			spans = trace.FilterRun(spans, run)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="hstreams-trace.json"`)
		_ = trace.WriteChromeSpans(w, spans)
	}
}

// streamsPayload is the /debug/streams response document.
type streamsPayload struct {
	Now      time.Time        `json:"now"`
	Runtimes []runtimePayload `json:"runtimes"`
	Flight   flightPayload    `json:"flight"`
}

type runtimePayload struct {
	core.RuntimeStatus
	Links []fabric.LinkStat `json:"links,omitempty"`
}

type flightPayload struct {
	Cap     int    `json:"cap"`
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
}

func streamsHandler(runtimes func() []*core.Runtime, f *trace.FlightRecorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		doc := streamsPayload{
			Now:    time.Now(),
			Flight: flightPayload{Cap: f.Cap(), Total: f.Total(), Dropped: f.Dropped()},
		}
		for _, rt := range runtimes() {
			doc.Runtimes = append(doc.Runtimes, runtimePayload{
				RuntimeStatus: rt.Status(),
				Links:         rt.LinkStats(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	}
}

func critpathHandler(f *trace.FlightRecorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		run, err := parseRun(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spans := f.Snapshot()
		if run != 0 {
			spans = trace.FilterRun(spans, run)
		} else {
			spans = trace.LatestRun(spans)
		}
		rep := trace.Analyze(spans)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.Format())
	}
}

// timelineHandler serves the rolling-window telemetry views derived
// from the process's sampler store: JSON by default, the text
// rendering with ?format=text, an optional ?window=<duration> to
// narrow the derivation window below the store's full retention
// (wider windows clamp to the retention — asking for more history
// than the ring holds is not an error), and an optional
// ?step=<duration> to thin the returned sample series (clamped
// between the sampler resolution and the effective window; deltas
// and quantiles stay full-resolution either way).
func timelineHandler(st *telemetry.Store, reg *metrics.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		window := time.Duration(0)
		if q := r.URL.Query().Get("window"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d <= 0 {
				http.Error(w, fmt.Sprintf("bad window %q", q), http.StatusBadRequest)
				return
			}
			window = d
		}
		if max := st.Window(); window <= 0 || window > max {
			window = max
		}
		step := time.Duration(0)
		if q := r.URL.Query().Get("step"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d <= 0 {
				http.Error(w, fmt.Sprintf("bad step %q", q), http.StatusBadRequest)
				return
			}
			step = d
			if res := st.Resolution(); step < res {
				step = res
			}
			if step > window {
				step = window
			}
		}
		tl := telemetry.BuildStep(st, reg, window, step)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, tl.Format())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tl)
	}
}

// healthHandler serves the health engine's combined verdict: JSON by
// default, ?format=text for the rendered report, and
// ?probe=live|ready for Kubernetes-style probe semantics (200 when
// the probe passes, 503 when it fails). Each request re-ticks the
// engine only when the last tick is stale, so a process whose sampler
// drives the cadence does not evaluate twice.
func healthHandler(e *health.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		e.TickIfStale(now)
		rep := e.ReportAt(now)
		if probe := r.URL.Query().Get("probe"); probe != "" {
			var pass bool
			switch probe {
			case "live":
				pass = rep.Live
			case "ready":
				pass = rep.Ready
			default:
				http.Error(w, fmt.Sprintf("bad probe %q (want live or ready)", probe), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !pass {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, "%s=%v severity=%s\n", probe, pass, rep.Severity)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, rep.Format())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	}
}

// eventsPayload is the /debug/events response document.
type eventsPayload struct {
	Cap     int            `json:"cap"`
	Total   uint64         `json:"total"`
	Dropped uint64         `json:"dropped"`
	Events  []health.Event `json:"events"`
}

// eventsHandler serves the structured event journal: JSON by default,
// ?format=text for one line per event, ?n=50 to limit to the newest
// n retained events.
func eventsHandler(j *health.Journal) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		events := j.Snapshot()
		if q := r.URL.Query().Get("n"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 1 {
				http.Error(w, fmt.Sprintf("bad n %q", q), http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "events: %d retained of %d recorded (%d dropped, cap %d)\n",
				len(events), j.Total(), j.Dropped(), j.Cap())
			for _, ev := range events {
				fmt.Fprintln(w, ev.Format())
			}
			return
		}
		doc := eventsPayload{Cap: j.Cap(), Total: j.Total(), Dropped: j.Dropped(), Events: events}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	}
}
