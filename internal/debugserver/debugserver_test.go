package debugserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hstreams/internal/core"
	"hstreams/internal/health"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/telemetry"
	"hstreams/internal/trace"
)

// runProbe drives a transfer → compute → transfer chain on one card
// stream so every endpoint has data to serve.
func runProbe(t *testing.T, reg *metrics.Registry, flight *trace.FlightRecorder) *core.Runtime {
	t.Helper()
	rt, err := core.Init(core.Config{
		Machine: platform.HSWPlusKNC(1),
		Mode:    core.ModeSim,
		Metrics: reg,
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("probe", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, core.ToSink); err != nil {
		t.Fatal(err)
	}
	cost := platform.Cost{Kernel: platform.KDGEMM, Flops: 1e9, Bytes: 1 << 20, N: 512}
	if _, err := s.EnqueueCompute("k", nil, []core.Operand{b.All(core.InOut)}, cost); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, core.ToSource); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
	return rt
}

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

func TestEndpoints(t *testing.T) {
	reg := metrics.New()
	flight := trace.NewFlight(1024)
	rt := runProbe(t, reg, flight)
	defer rt.Fini()

	srv := httptest.NewServer(Handler(Options{
		Registry: reg,
		Flight:   flight,
		Runtimes: func() []*core.Runtime { return []*core.Runtime{rt} },
	}))
	defer srv.Close()

	if body := get(t, srv, "/"); !strings.Contains(body, "/debug/critpath") {
		t.Fatalf("index missing endpoint listing:\n%s", body)
	}
	if body := get(t, srv, "/metrics"); !strings.Contains(body, "hstreams_actions_total") {
		t.Fatalf("/metrics missing action counters:\n%s", body)
	}
	if body := get(t, srv, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ missing profile index:\n%s", body)
	}

	var chrome []map[string]any
	body := get(t, srv, "/debug/trace")
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v\n%s", err, body)
	}
	var flows int
	for _, ev := range chrome {
		if ev["ph"] == "s" {
			flows++
		}
	}
	if flows == 0 {
		t.Fatalf("/debug/trace has no flow (dependency) events:\n%s", body)
	}

	var streams struct {
		Runtimes []struct {
			Run     uint64 `json:"run"`
			Mode    string `json:"mode"`
			Streams []struct {
				Name  string `json:"name"`
				Depth int    `json:"depth"`
			} `json:"streams"`
			Links []struct {
				Src   string `json:"src"`
				Bytes int64  `json:"bytes"`
			} `json:"links"`
		} `json:"runtimes"`
		Flight struct {
			Total uint64 `json:"total"`
		} `json:"flight"`
	}
	body = get(t, srv, "/debug/streams")
	if err := json.Unmarshal([]byte(body), &streams); err != nil {
		t.Fatalf("/debug/streams not valid JSON: %v\n%s", err, body)
	}
	if len(streams.Runtimes) != 1 || streams.Runtimes[0].Mode != "sim" {
		t.Fatalf("/debug/streams runtimes = %+v", streams.Runtimes)
	}
	if len(streams.Runtimes[0].Streams) != 1 {
		t.Fatalf("/debug/streams streams = %+v", streams.Runtimes[0].Streams)
	}
	if len(streams.Runtimes[0].Links) == 0 {
		t.Fatal("/debug/streams missing link stats")
	}
	if streams.Flight.Total == 0 {
		t.Fatal("/debug/streams flight.total = 0, want recorded spans")
	}

	if body := get(t, srv, "/debug/critpath"); !strings.Contains(body, "critical path") {
		t.Fatalf("/debug/critpath missing report:\n%s", body)
	}
	var rep trace.CritReport
	body = get(t, srv, "/debug/critpath?format=json")
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/critpath?format=json: %v\n%s", err, body)
	}
	if rep.Makespan <= 0 || rep.CategorySum() != rep.Makespan {
		t.Fatalf("critpath JSON: makespan %v, category sum %v", rep.Makespan, rep.CategorySum())
	}

	// Bad run selectors are rejected, unknown paths 404.
	if resp, err := http.Get(srv.URL + "/debug/critpath?run=x"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad run selector: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(srv.URL + "/nosuch"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

// TestStatusWhileRunning hits /debug/streams concurrently with a
// Real-mode runtime that is actively executing, exercising the
// lock-discipline of the status snapshot under -race.
func TestStatusWhileRunning(t *testing.T) {
	reg := metrics.New()
	flight := trace.NewFlight(1024)
	rt, err := core.Init(core.Config{
		Machine: platform.HSWPlusKNC(1),
		Mode:    core.ModeReal,
		Metrics: reg,
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	rt.RegisterKernel("spin", func(ctx *core.KernelCtx) {
		for i := range ctx.Ops[0] {
			ctx.Ops[0][i]++
		}
	})
	s, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("b", 1<<16)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(Options{
		Registry: reg,
		Flight:   flight,
		Runtimes: func() []*core.Runtime { return []*core.Runtime{rt} },
	}))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if _, err := s.EnqueueXferAll(b, core.ToSink); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.EnqueueCompute("spin", nil, []core.Operand{b.All(core.InOut)}, platform.Cost{}); err != nil {
				t.Error(err)
				return
			}
		}
		rt.ThreadSynchronize()
	}()
	for i := 0; i < 10; i++ {
		get(t, srv, "/debug/streams")
		get(t, srv, "/metrics")
	}
	<-done
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
}

// getStatus fetches a path and returns the status code and body
// without asserting 200.
func getStatus(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestTimelineParams covers the /debug/timeline parameter contract:
// malformed or non-positive window/step values are rejected with 400,
// an oversized window clamps to the store retention, and a valid step
// thins the sample series while reporting itself in step_nanos.
func TestTimelineParams(t *testing.T) {
	reg := metrics.New()
	st := telemetry.NewStore(time.Minute, 60) // 1s resolution
	now := time.Now()
	for i := 0; i < 30; i++ {
		st.Put("c_total", nil, now.Add(time.Duration(i-30)*time.Second), float64(i))
	}
	srv := httptest.NewServer(Handler(Options{Registry: reg, Telemetry: st}))
	defer srv.Close()

	for _, bad := range []string{
		"/debug/timeline?window=abc",
		"/debug/timeline?window=-1s",
		"/debug/timeline?window=0s",
		"/debug/timeline?step=abc",
		"/debug/timeline?step=-1ms",
		"/debug/timeline?step=0s",
	} {
		if code, body := getStatus(t, srv, bad); code != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400\n%s", bad, code, body)
		}
	}

	var tl struct {
		WindowNanos int64 `json:"window_nanos"`
		StepNanos   int64 `json:"step_nanos"`
		Samples     int   `json:"samples"`
	}
	// An oversized window clamps to the store's retention.
	if err := json.Unmarshal([]byte(get(t, srv, "/debug/timeline?window=5m")), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.WindowNanos != int64(time.Minute) {
		t.Fatalf("window=5m reported %d ns, want clamp to %d", tl.WindowNanos, int64(time.Minute))
	}
	full := tl.Samples
	// A valid step reports itself and thins the displayed samples; a
	// step below the sampler resolution clamps up to it.
	if err := json.Unmarshal([]byte(get(t, srv, "/debug/timeline?window=30s&step=10s")), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.StepNanos != int64(10*time.Second) {
		t.Fatalf("step_nanos = %d, want %d", tl.StepNanos, int64(10*time.Second))
	}
	if tl.Samples >= full {
		t.Fatalf("step did not thin samples: %d vs full %d", tl.Samples, full)
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/debug/timeline?step=1ms")), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.StepNanos != int64(time.Second) {
		t.Fatalf("sub-resolution step reported %d ns, want clamp to resolution %d", tl.StepNanos, int64(time.Second))
	}
}

// TestHealthEndpoints covers /debug/health (JSON verdict, probe
// semantics, text rendering) and /debug/events (limit + validation)
// over a private engine, including the 503 readiness flip when a rule
// goes critical.
func TestHealthEndpoints(t *testing.T) {
	reg := metrics.New()
	st := telemetry.NewStore(time.Minute, 60)
	journal := health.NewJournal(64, reg)
	engine := health.New(health.Options{
		Store:    st,
		Registry: reg,
		Journal:  journal,
		Runtimes: func() []*core.Runtime { return nil },
		// Each request's TickIfStale must re-evaluate, so the verdict
		// tracks the store edits below without a sampler running.
		MaxStale: time.Nanosecond,
	})
	srv := httptest.NewServer(Handler(Options{Registry: reg, Telemetry: st, Health: engine}))
	defer srv.Close()

	var rep struct {
		Severity string `json:"severity"`
		Live     bool   `json:"live"`
		Ready    bool   `json:"ready"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/debug/health")), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Severity != "ok" || !rep.Live || !rep.Ready {
		t.Fatalf("idle verdict = %+v, want ok/live/ready", rep)
	}
	if code, body := getStatus(t, srv, "/debug/health?probe=live"); code != http.StatusOK || !strings.Contains(body, "live=true") {
		t.Fatalf("probe=live: %d %q", code, body)
	}
	if code, _ := getStatus(t, srv, "/debug/health?probe=ready"); code != http.StatusOK {
		t.Fatalf("probe=ready while ok: %d, want 200", code)
	}
	if code, _ := getStatus(t, srv, "/debug/health?probe=bogus"); code != http.StatusBadRequest {
		t.Fatalf("probe=bogus: %d, want 400", code)
	}
	if body := get(t, srv, "/debug/health?format=text"); !strings.Contains(body, "health:") {
		t.Fatalf("text report missing header:\n%s", body)
	}

	// A quarantined-domain gauge in the store flips the default rule
	// pack critical; the readiness probe must fail while liveness
	// holds.
	st.Put("hstreams_domain_quarantined", map[string]string{"domain": "KNC0"}, time.Now(), 1)
	if code, body := getStatus(t, srv, "/debug/health?probe=ready"); code != http.StatusServiceUnavailable || !strings.Contains(body, "severity=critical") {
		t.Fatalf("probe=ready at critical: %d %q, want 503", code, body)
	}
	if code, _ := getStatus(t, srv, "/debug/health?probe=live"); code != http.StatusOK {
		t.Fatalf("probe=live at critical: %d, want 200", code)
	}

	// /debug/events: the rule transition just journaled is served,
	// ?n limits to the newest entries, bad limits are rejected.
	var events struct {
		Total  uint64         `json:"total"`
		Events []health.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/debug/events")), &events); err != nil {
		t.Fatal(err)
	}
	if events.Total == 0 || len(events.Events) == 0 {
		t.Fatalf("no journaled events after a rule transition: %+v", events)
	}
	if events.Events[len(events.Events)-1].Kind != health.KindRuleTransition {
		t.Fatalf("newest event = %+v, want rule-transition", events.Events[len(events.Events)-1])
	}
	journal.Record(health.Event{Kind: health.KindWatchdogStall, Stream: "HSW.s0"})
	if err := json.Unmarshal([]byte(get(t, srv, "/debug/events?n=1")), &events); err != nil {
		t.Fatal(err)
	}
	if len(events.Events) != 1 || events.Events[0].Kind != health.KindWatchdogStall {
		t.Fatalf("?n=1 = %+v, want just the newest watchdog-stall", events.Events)
	}
	for _, bad := range []string{"/debug/events?n=abc", "/debug/events?n=0", "/debug/events?n=-3"} {
		if code, body := getStatus(t, srv, bad); code != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400\n%s", bad, code, body)
		}
	}
	if body := get(t, srv, "/debug/events?format=text"); !strings.Contains(body, "events:") || !strings.Contains(body, "watchdog-stall") {
		t.Fatalf("text events missing content:\n%s", body)
	}
}
