package debugserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hstreams/internal/core"
	"hstreams/internal/metrics"
	"hstreams/internal/platform"
	"hstreams/internal/trace"
)

// runProbe drives a transfer → compute → transfer chain on one card
// stream so every endpoint has data to serve.
func runProbe(t *testing.T, reg *metrics.Registry, flight *trace.FlightRecorder) *core.Runtime {
	t.Helper()
	rt, err := core.Init(core.Config{
		Machine: platform.HSWPlusKNC(1),
		Mode:    core.ModeSim,
		Metrics: reg,
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("probe", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, core.ToSink); err != nil {
		t.Fatal(err)
	}
	cost := platform.Cost{Kernel: platform.KDGEMM, Flops: 1e9, Bytes: 1 << 20, N: 512}
	if _, err := s.EnqueueCompute("k", nil, []core.Operand{b.All(core.InOut)}, cost); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnqueueXferAll(b, core.ToSource); err != nil {
		t.Fatal(err)
	}
	rt.ThreadSynchronize()
	return rt
}

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

func TestEndpoints(t *testing.T) {
	reg := metrics.New()
	flight := trace.NewFlight(1024)
	rt := runProbe(t, reg, flight)
	defer rt.Fini()

	srv := httptest.NewServer(Handler(Options{
		Registry: reg,
		Flight:   flight,
		Runtimes: func() []*core.Runtime { return []*core.Runtime{rt} },
	}))
	defer srv.Close()

	if body := get(t, srv, "/"); !strings.Contains(body, "/debug/critpath") {
		t.Fatalf("index missing endpoint listing:\n%s", body)
	}
	if body := get(t, srv, "/metrics"); !strings.Contains(body, "hstreams_actions_total") {
		t.Fatalf("/metrics missing action counters:\n%s", body)
	}
	if body := get(t, srv, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ missing profile index:\n%s", body)
	}

	var chrome []map[string]any
	body := get(t, srv, "/debug/trace")
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v\n%s", err, body)
	}
	var flows int
	for _, ev := range chrome {
		if ev["ph"] == "s" {
			flows++
		}
	}
	if flows == 0 {
		t.Fatalf("/debug/trace has no flow (dependency) events:\n%s", body)
	}

	var streams struct {
		Runtimes []struct {
			Run     uint64 `json:"run"`
			Mode    string `json:"mode"`
			Streams []struct {
				Name  string `json:"name"`
				Depth int    `json:"depth"`
			} `json:"streams"`
			Links []struct {
				Src   string `json:"src"`
				Bytes int64  `json:"bytes"`
			} `json:"links"`
		} `json:"runtimes"`
		Flight struct {
			Total uint64 `json:"total"`
		} `json:"flight"`
	}
	body = get(t, srv, "/debug/streams")
	if err := json.Unmarshal([]byte(body), &streams); err != nil {
		t.Fatalf("/debug/streams not valid JSON: %v\n%s", err, body)
	}
	if len(streams.Runtimes) != 1 || streams.Runtimes[0].Mode != "sim" {
		t.Fatalf("/debug/streams runtimes = %+v", streams.Runtimes)
	}
	if len(streams.Runtimes[0].Streams) != 1 {
		t.Fatalf("/debug/streams streams = %+v", streams.Runtimes[0].Streams)
	}
	if len(streams.Runtimes[0].Links) == 0 {
		t.Fatal("/debug/streams missing link stats")
	}
	if streams.Flight.Total == 0 {
		t.Fatal("/debug/streams flight.total = 0, want recorded spans")
	}

	if body := get(t, srv, "/debug/critpath"); !strings.Contains(body, "critical path") {
		t.Fatalf("/debug/critpath missing report:\n%s", body)
	}
	var rep trace.CritReport
	body = get(t, srv, "/debug/critpath?format=json")
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/critpath?format=json: %v\n%s", err, body)
	}
	if rep.Makespan <= 0 || rep.CategorySum() != rep.Makespan {
		t.Fatalf("critpath JSON: makespan %v, category sum %v", rep.Makespan, rep.CategorySum())
	}

	// Bad run selectors are rejected, unknown paths 404.
	if resp, err := http.Get(srv.URL + "/debug/critpath?run=x"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad run selector: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(srv.URL + "/nosuch"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

// TestStatusWhileRunning hits /debug/streams concurrently with a
// Real-mode runtime that is actively executing, exercising the
// lock-discipline of the status snapshot under -race.
func TestStatusWhileRunning(t *testing.T) {
	reg := metrics.New()
	flight := trace.NewFlight(1024)
	rt, err := core.Init(core.Config{
		Machine: platform.HSWPlusKNC(1),
		Mode:    core.ModeReal,
		Metrics: reg,
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Fini()
	rt.RegisterKernel("spin", func(ctx *core.KernelCtx) {
		for i := range ctx.Ops[0] {
			ctx.Ops[0][i]++
		}
	})
	s, err := rt.StreamCreate(rt.Card(0), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Alloc1D("b", 1<<16)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(Options{
		Registry: reg,
		Flight:   flight,
		Runtimes: func() []*core.Runtime { return []*core.Runtime{rt} },
	}))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if _, err := s.EnqueueXferAll(b, core.ToSink); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.EnqueueCompute("spin", nil, []core.Operand{b.All(core.InOut)}, platform.Cost{}); err != nil {
				t.Error(err)
				return
			}
		}
		rt.ThreadSynchronize()
	}()
	for i := 0; i < 10; i++ {
		get(t, srv, "/debug/streams")
		get(t, srv, "/metrics")
	}
	<-done
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
}
