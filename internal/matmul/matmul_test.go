package matmul

import (
	"testing"

	"hstreams/internal/app"
	"hstreams/internal/core"
	"hstreams/internal/platform"
)

func simApp(t *testing.T, m *platform.Machine, hostStreams int) *app.App {
	t.Helper()
	a, err := app.Init(app.Options{
		Machine:        m,
		Mode:           core.ModeSim,
		StreamsPerCard: 4,
		HostStreams:    hostStreams,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Fini)
	return a
}

func TestRealHeteroMatmulCorrect(t *testing.T) {
	// Host + 1 card, all domains computing, verified against a
	// reference product.
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeReal,
		StreamsPerCard: 2,
		HostStreams:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Fini()
	RegisterExtra(a.RT)
	res, err := Run(a, Config{N: 48, Tile: 12, UseHost: true, LoadBalance: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFlops <= 0 {
		t.Fatal("no performance measured")
	}
	used := 0
	for _, c := range res.PanelsPerDomain {
		if c > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("work not distributed: %v", res.PanelsPerDomain)
	}
}

func TestRealOffloadOnlyMatmulCorrect(t *testing.T) {
	a, err := app.Init(app.Options{
		Machine:        platform.HSWPlusKNC(1),
		Mode:           core.ModeReal,
		StreamsPerCard: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Fini()
	RegisterExtra(a.RT)
	if _, err := Run(a, Config{N: 36, Tile: 12, Verify: true}); err != nil {
		t.Fatal(err)
	}
}

func TestBadTilingRejected(t *testing.T) {
	a := simApp(t, platform.HSWPlusKNC(1), 0)
	if _, err := Run(a, Config{N: 100, Tile: 33}); err != ErrBadTiling {
		t.Fatalf("err = %v, want ErrBadTiling", err)
	}
}

func TestSimHeteroBeatsOffloadBeatsNative(t *testing.T) {
	// The Fig. 6 ordering at a fixed size: HSW+2KNC > HSW+1KNC >
	// 1 KNC offload > HSW native.
	const n, tb = 14400, 2400
	run := func(cards, hostStreams int) float64 {
		a := simApp(t, platform.HSWPlusKNC(cards), hostStreams)
		res, err := Run(a, Config{N: n, Tile: tb, UseHost: hostStreams > 0, LoadBalance: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFlops
	}
	h2 := run(2, 3)
	h1 := run(1, 3)
	off1 := run(1, 0)
	native := run(0, 1) // single host stream = native-ish
	if !(h2 > h1 && h1 > off1 && off1 > native) {
		t.Fatalf("Fig 6 ordering violated: HSW+2KNC=%.0f HSW+1KNC=%.0f 1KNC=%.0f native=%.0f",
			h2, h1, off1, native)
	}
}

func TestSimLoadBalancingHelpsIVB(t *testing.T) {
	// Fig. 6: IVB host is much slower than a KNC, so proportional
	// panel assignment beats an even split by ~1.5×.
	const n, tb = 21600, 2400
	run := func(balance bool) float64 {
		a := simApp(t, platform.IVBPlusKNC(2), 3)
		res, err := Run(a, Config{N: n, Tile: tb, UseHost: true, LoadBalance: balance})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFlops
	}
	bal := run(true)
	nobal := run(false)
	ratio := bal / nobal
	if ratio < 1.3 || ratio > 2.1 {
		t.Fatalf("load balance gain = %.2f (bal %.0f vs nobal %.0f), want ≈1.58 (paper)", ratio, bal, nobal)
	}
}

func TestSimTransfersOverlapCompute(t *testing.T) {
	// The whole point of streaming: most transfer time must hide
	// under compute.
	a := simApp(t, platform.HSWPlusKNC(1), 0)
	if _, err := Run(a, Config{N: 9600, Tile: 2400}); err != nil {
		t.Fatal(err)
	}
	tr := a.RT.Trace()
	xfer := tr.BusyTime(1)     // trace.Transfer
	ov := tr.OverlapTime(0, 1) // compute vs transfer
	if ov < xfer/2 {
		t.Fatalf("poor pipelining: only %v of %v transfer time overlapped", ov, xfer)
	}
}

func TestPanelAssignmentBalanced(t *testing.T) {
	a := simApp(t, platform.IVBPlusKNC(2), 2)
	res, err := Run(a, Config{N: 24000, Tile: 2400, UseHost: true, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	// IVB (475 GF/s) must own fewer panels than each KNC (~980).
	host := res.PanelsPerDomain[0]
	for c := 1; c <= 2; c++ {
		if host >= res.PanelsPerDomain[c] {
			t.Fatalf("host owns %d panels, card %d owns %d — no load balancing", host, c, res.PanelsPerDomain[c])
		}
	}
}

// TestTuningStreamCount reproduces the other §VI tuning axis: the
// number of streams. One full-width stream serializes independent
// tiles; a handful of narrower streams raises aggregate throughput
// (better per-core granularity and parallel efficiency).
func TestTuningStreamCount(t *testing.T) {
	const n, tile = 19200, 2400
	run := func(streams int) float64 {
		a, err := app.Init(app.Options{
			Machine:        platform.HSWPlusKNC(1),
			Mode:           core.ModeSim,
			StreamsPerCard: streams,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Fini()
		res, err := Run(a, Config{N: n, Tile: tile})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFlops
	}
	g1 := run(1)
	g4 := run(4)
	t.Logf("stream sweep at n=%d: 1→%.0f, 4→%.0f GF/s", n, g1, g4)
	if g4 <= g1 {
		t.Fatalf("4 streams (%.0f) not faster than 1 (%.0f)", g4, g1)
	}
}
