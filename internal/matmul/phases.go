package matmul

import (
	_ "embed"
	"sort"
	"strings"
)

//go:embed variants.go
var variantsSource string

// PhaseLines measures the Fig. 3 "additional source code lines"
// columns from this repository's own model variants: it counts the
// code lines between //[model:phase] and //[end] markers in
// variants.go. Comments and blank lines do not count, matching how
// one counts "lines of offload code".
func PhaseLines() map[string]map[string]int {
	out := map[string]map[string]int{}
	var model, phase string
	for _, line := range strings.Split(variantsSource, "\n") {
		t := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(t, "//[end]"):
			model, phase = "", ""
		case strings.HasPrefix(t, "//[") && strings.Contains(t, ":"):
			inner := strings.TrimSuffix(strings.TrimPrefix(t, "//["), "]")
			parts := strings.SplitN(inner, ":", 2)
			if len(parts) == 2 {
				model, phase = parts[0], parts[1]
				if out[model] == nil {
					out[model] = map[string]int{}
				}
			}
		case model != "" && t != "" && !strings.HasPrefix(t, "//"):
			out[model][phase]++
		}
	}
	return out
}

// TotalLines sums a model's phase counts.
func TotalLines(phases map[string]int) int {
	total := 0
	for _, n := range phases {
		total += n
	}
	return total
}

// PhaseNames returns the union of phase names in display order.
func PhaseNames(all map[string]map[string]int) []string {
	order := []string{
		"initialization", "data-alloc", "data-transfers", "computation",
		"synchronization", "data-transfers-out", "data-dealloc", "finalization",
	}
	seen := map[string]bool{}
	for _, phases := range all {
		for p := range phases {
			seen[p] = true
		}
	}
	var out []string
	for _, p := range order {
		if seen[p] {
			out = append(out, p)
			delete(seen, p)
		}
	}
	var rest []string
	for p := range seen {
		rest = append(rest, p)
	}
	sort.Strings(rest)
	return append(out, rest...)
}
