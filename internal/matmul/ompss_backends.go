package matmul

import (
	"time"

	"hstreams/internal/core"
	"hstreams/internal/kernels"
	"hstreams/internal/ompss"
	"hstreams/internal/platform"
)

// OmpSsBackendComparison reproduces §IV's backend experiment: the
// same 4096² matmul, 2×2-tiled, expressed as an OmpSs task graph and
// executed once over the hStreams back end and once over the CUDA
// Streams back end on the same simulated hardware. The paper reports
// the hStreams-based implementation 1.45× faster, attributing it to
// CUDA needing explicitly computed and enforced dependences (events)
// and strict FIFO queues.
func OmpSsBackendComparison(mode core.Mode) (hsTime, cuTime time.Duration, ratio float64, err error) {
	const n, nt = 4096, 2
	const tile = n / nt
	tbytes := kernels.TileBytes(tile)

	run := func(backend ompss.Backend) (time.Duration, error) {
		// As in the paper, each back end drives its own accelerator
		// generation: hStreams a KNC card, CUDA Streams a K40x.
		machine := platform.HSWPlusKNC(1)
		if backend == ompss.BackendCUDA {
			machine = platform.HSWPlusK40(1)
		}
		r, err := ompss.Init(ompss.Config{
			Machine: machine,
			Mode:    mode,
			Backend: backend,
		})
		if err != nil {
			return 0, err
		}
		defer r.Fini()
		if mode == core.ModeReal {
			kernels.Register(r.Core())
			RegisterExtra(r.Core())
		}
		var a, b, c [nt][nt]*ompss.Region
		for i := 0; i < nt; i++ {
			for j := 0; j < nt; j++ {
				if a[i][j], err = r.CreateData(tbytes); err != nil {
					return 0, err
				}
				if b[i][j], err = r.CreateData(tbytes); err != nil {
					return 0, err
				}
				if c[i][j], err = r.CreateData(tbytes); err != nil {
					return 0, err
				}
			}
		}
		start := r.Core().Now()
		for i := 0; i < nt; i++ {
			for j := 0; j < nt; j++ {
				for k := 0; k < nt; k++ {
					kname := kernels.DgemmAcc
					if k == 0 {
						kname = dgemmOverwrite
					}
					if _, err := r.Submit(kname, []int64{tile, tile, tile},
						[]ompss.Arg{
							{R: a[i][k], Acc: ompss.In},
							{R: b[k][j], Acc: ompss.In},
							{R: c[i][j], Acc: ompss.InOut},
						}, kernels.GemmCost(tile, tile, tile)); err != nil {
						return 0, err
					}
				}
			}
		}
		r.Taskwait()
		return r.Core().Now() - start, r.Core().Err()
	}

	if hsTime, err = run(ompss.BackendHStreams); err != nil {
		return 0, 0, 0, err
	}
	if cuTime, err = run(ompss.BackendCUDA); err != nil {
		return 0, 0, 0, err
	}
	return hsTime, cuTime, cuTime.Seconds() / hsTime.Seconds(), nil
}
