package matmul

import (
	"time"

	"hstreams/internal/apistat"
	"hstreams/internal/core"
	"hstreams/internal/cudasim"
	"hstreams/internal/floatbits"
	"hstreams/internal/kernels"
	"hstreams/internal/oclsim"
	"hstreams/internal/ompoffload"
	"hstreams/internal/ompss"
	"hstreams/internal/platform"
)

// VariantResult is the measured row of the Fig. 3 coding-comparison
// table for one programming model.
type VariantResult struct {
	Model      string
	Seconds    time.Duration
	GFlops     float64
	UniqueAPIs int
	TotalAPIs  int
}

func variantResult(model string, n int, elapsed time.Duration, api *apistat.Counter) VariantResult {
	return VariantResult{
		Model:      model,
		Seconds:    elapsed,
		GFlops:     platform.GFlops(2*float64(n)*float64(n)*float64(n), elapsed),
		UniqueAPIs: api.Unique(),
		TotalAPIs:  api.Total(),
	}
}

// HStreamsVariant is the single-card tiled matmul in hStreams form:
// plain integer streams, one proxy address per matrix, implicit
// in-stream dependences from operands. The //[model:phase] markers
// delimit the offload-specific code counted by cmd/codingtable.
func HStreamsVariant(mode core.Mode, n, tb, nStreams int, verify bool) (VariantResult, error) {
	var api apistat.Counter
	nt := n / tb
	tbytes := kernels.TileBytes(tb)

	//[hstreams:initialization]
	rt, err := core.Init(core.Config{Machine: platform.HSWPlusKNC(1), Mode: mode})
	if err != nil {
		return VariantResult{}, err
	}
	api.Hit("hStreams_app_init")
	card := rt.Card(0)
	streams := make([]*core.Stream, nStreams)
	for i := range streams {
		w := card.Spec().Cores() / nStreams
		if streams[i], err = rt.StreamCreate(card, i*w, w); err != nil {
			return VariantResult{}, err
		}
		api.Hit("hStreams_StreamCreate")
	}
	//[end]
	defer rt.Fini()
	if mode == core.ModeReal {
		kernels.Register(rt)
		RegisterExtra(rt)
	}

	//[hstreams:data-alloc]
	bufA, err := rt.Alloc1D("A", int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	bufB, err := rt.Alloc1D("B", int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	bufC, err := rt.Alloc1D("C", int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	api.Hit("hStreams_app_create_buf")
	api.Hit("hStreams_app_create_buf")
	api.Hit("hStreams_app_create_buf")
	//[end]
	if mode == core.ModeReal {
		fillTiled(bufA, nt, tb, FillA)
		fillTiled(bufB, nt, tb, FillB)
	}
	start := rt.Now()
	res := newResidency(2)

	for j := 0; j < nt; j++ {
		for i := 0; i < nt; i++ {
			s := streams[(j*nt+i)%nStreams]
			cOff := kernels.TileOff(i, j, nt, tb)
			for k := 0; k < nt; k++ {
				aOff := kernels.TileOff(i, k, nt, tb)
				bOff := kernels.TileOff(k, j, nt, tb)
				//[hstreams:data-transfers]
				var deps []*core.Action
				for _, t := range []struct {
					buf *core.Buf
					off int64
				}{{bufA, aOff}, {bufB, bOff}} {
					dep, err := res.ensure(card, s, t.buf, t.off, tbytes)
					if err != nil {
						return VariantResult{}, err
					}
					api.Hit("hStreams_app_xfer_memory")
					if dep != nil {
						deps = append(deps, dep)
					}
				}
				//[end]
				//[hstreams:computation]
				kname := kernels.DgemmAcc
				if k == 0 {
					kname = dgemmOverwrite
				}
				_, err = s.EnqueueComputeDeps(kname, []int64{int64(tb), int64(tb), int64(tb)},
					[]core.Operand{
						bufA.Range(aOff, tbytes, core.In),
						bufB.Range(bOff, tbytes, core.In),
						bufC.Range(cOff, tbytes, core.InOut),
					}, kernels.GemmCost(tb, tb, tb), deps)
				if err != nil {
					return VariantResult{}, err
				}
				api.Hit("hStreams_EnqueueCompute")
				//[end]
			}
			//[hstreams:data-transfers-out]
			if _, err := s.EnqueueXfer(bufC, cOff, tbytes, core.ToSource); err != nil {
				return VariantResult{}, err
			}
			api.Hit("hStreams_app_xfer_memory")
			//[end]
		}
	}
	//[hstreams:synchronization]
	rt.ThreadSynchronize()
	api.Hit("hStreams_app_thread_sync")
	//[end]
	elapsed := rt.Now() - start
	if err := rt.Err(); err != nil {
		return VariantResult{}, err
	}
	if verify && mode == core.ModeReal {
		if err := VerifyTiledProduct(bufA.HostFloat64s(), bufB.HostFloat64s(), bufC.HostFloat64s(), nt, tb); err != nil {
			return VariantResult{}, err
		}
	}
	//[hstreams:finalization]
	rt.Fini()
	api.Hit("hStreams_app_fini")
	//[end]
	return variantResult("hStreams", n, elapsed, &api), nil
}

// CUDAVariant is the same algorithm in CUDA Streams form: opaque
// stream and event handles that must be created and destroyed, one
// device pointer per matrix per device, explicit events wherever a
// dependence crosses streams, and strict FIFO inside each stream.
func CUDAVariant(mode core.Mode, n, tb, nStreams int, verify bool) (VariantResult, error) {
	nt := n / tb
	tbytes := kernels.TileBytes(tb)

	//[cuda:initialization]
	cu, err := cudasim.Init(platform.HSWPlusK40(1), mode)
	if err != nil {
		return VariantResult{}, err
	}
	streams := make([]*cudasim.Stream, nStreams)
	for i := range streams {
		if streams[i], err = cu.StreamCreate(0); err != nil {
			return VariantResult{}, err
		}
	}
	//[end]
	defer cu.Fini()
	if mode == core.ModeReal {
		kernels.Register(cu.RT)
		RegisterExtra(cu.RT)
	}

	//[cuda:data-alloc]
	devA, err := cu.Malloc(0, int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	devB, err := cu.Malloc(0, int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	devC, err := cu.Malloc(0, int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	//[end]
	if mode == core.ModeReal {
		FillTiledSlice(floatbits.Float64s(devA.HostStage()), nt, tb, FillA)
		FillTiledSlice(floatbits.Float64s(devB.HostStage()), nt, tb, FillB)
	}
	start := cu.RT.Now()

	// Per-tile transfer bookkeeping: the stream that moved each tile
	// and the event recorded after the copy, so other streams can
	// wait on it — bookkeeping hStreams' operand analysis makes
	// unnecessary.
	//[cuda:data-transfers]
	type moved struct {
		st *cudasim.Stream
		ev *cudasim.Event
	}
	sent := map[int64]moved{}
	ensure := func(st *cudasim.Stream, p *cudasim.DevPtr, off int64) error {
		key := off
		if p == devB {
			key += int64(nt*nt) * tbytes
		}
		if m, ok := sent[key]; ok {
			if m.st != st {
				return st.WaitEvent(m.ev)
			}
			return nil
		}
		if _, err := st.MemcpyH2DAsync(p, off, tbytes); err != nil {
			return err
		}
		ev := cu.EventCreate()
		if err := st.Record(ev); err != nil {
			return err
		}
		sent[key] = moved{st, ev}
		return nil
	}
	//[end]

	for j := 0; j < nt; j++ {
		for i := 0; i < nt; i++ {
			st := streams[(j*nt+i)%nStreams]
			cOff := kernels.TileOff(i, j, nt, tb)
			for k := 0; k < nt; k++ {
				aOff := kernels.TileOff(i, k, nt, tb)
				bOff := kernels.TileOff(k, j, nt, tb)
				if err := ensure(st, devA, aOff); err != nil {
					return VariantResult{}, err
				}
				if err := ensure(st, devB, bOff); err != nil {
					return VariantResult{}, err
				}
				//[cuda:computation]
				kname := kernels.DgemmAcc
				if k == 0 {
					kname = dgemmOverwrite
				}
				_, err = st.Launch(kname, []int64{int64(tb), int64(tb), int64(tb)},
					[]cudasim.Arg{
						{Ptr: devA, Off: aOff, Len: tbytes},
						{Ptr: devB, Off: bOff, Len: tbytes},
						{Ptr: devC, Off: cOff, Len: tbytes},
					}, kernels.GemmCost(tb, tb, tb))
				if err != nil {
					return VariantResult{}, err
				}
				//[end]
			}
			//[cuda:data-transfers-out]
			if _, err := st.MemcpyD2HAsync(devC, cOff, tbytes); err != nil {
				return VariantResult{}, err
			}
			//[end]
		}
	}
	//[cuda:synchronization]
	cu.DeviceSynchronize()
	//[end]
	elapsed := cu.RT.Now() - start
	if err := cu.RT.Err(); err != nil {
		return VariantResult{}, err
	}
	if verify && mode == core.ModeReal {
		if err := VerifyTiledProduct(
			floatbits.Float64s(devA.HostStage()),
			floatbits.Float64s(devB.HostStage()),
			floatbits.Float64s(devC.HostStage()), nt, tb); err != nil {
			return VariantResult{}, err
		}
	}
	//[cuda:data-dealloc]
	devA.Free()
	devB.Free()
	devC.Free()
	//[end]
	//[cuda:finalization]
	for _, st := range streams {
		if err := st.Destroy(); err != nil {
			return VariantResult{}, err
		}
	}
	cu.Fini()
	//[end]
	return variantResult("CUDA", n, elapsed, &cu.API), nil
}

// OMP40UntiledVariant is the OpenMP 4.0 version the paper's "460"
// cell measures: one synchronous target region mapping whole
// matrices. Minimal code, no overlap.
func OMP40UntiledVariant(mode core.Mode, n int, verify bool) (VariantResult, error) {
	o, err := ompoffload.Init(platform.HSWPlusKNC(1), mode, ompoffload.V40)
	if err != nil {
		return VariantResult{}, err
	}
	defer o.Fini()
	if mode == core.ModeReal {
		kernels.Register(o.RT)
		RegisterExtra(o.RT)
	}
	bufA, err := o.RT.Alloc1D("A", int64(n)*int64(n)*8)
	if err != nil {
		return VariantResult{}, err
	}
	bufB, _ := o.RT.Alloc1D("B", int64(n)*int64(n)*8)
	bufC, _ := o.RT.Alloc1D("C", int64(n)*int64(n)*8)
	if mode == core.ModeReal {
		FillTiledSlice(bufA.HostFloat64s(), 1, n, FillA)
		FillTiledSlice(bufB.HostFloat64s(), 1, n, FillB)
	}
	start := o.RT.Now()
	//[omp40:computation]
	err = o.Target(0, dgemmOverwrite, []int64{int64(n), int64(n), int64(n)},
		kernels.GemmCost(n, n, n),
		ompoffload.MapAll(bufA, ompoffload.MapTo),
		ompoffload.MapAll(bufB, ompoffload.MapTo),
		ompoffload.MapAll(bufC, ompoffload.MapFrom))
	//[end]
	if err != nil {
		return VariantResult{}, err
	}
	elapsed := o.RT.Now() - start
	if verify && mode == core.ModeReal {
		if err := VerifyTiledProduct(bufA.HostFloat64s(), bufB.HostFloat64s(), bufC.HostFloat64s(), 1, n); err != nil {
			return VariantResult{}, err
		}
	}
	return variantResult("OMP4.0", n, elapsed, &o.API), nil
}

// OMP40TiledVariant tiles the same computation with OpenMP 4.0's
// synchronous constructs — which makes it SLOWER than untiled (the
// paper's 180-vs-460 observation): every tile pays an un-overlapped
// synchronous transfer.
func OMP40TiledVariant(mode core.Mode, n, tb int, verify bool) (VariantResult, error) {
	o, err := ompoffload.Init(platform.HSWPlusKNC(1), mode, ompoffload.V40)
	if err != nil {
		return VariantResult{}, err
	}
	defer o.Fini()
	if mode == core.ModeReal {
		kernels.Register(o.RT)
		RegisterExtra(o.RT)
	}
	nt := n / tb
	tbytes := kernels.TileBytes(tb)
	bufA, err := o.RT.Alloc1D("A", int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	bufB, _ := o.RT.Alloc1D("B", int64(nt*nt)*tbytes)
	bufC, _ := o.RT.Alloc1D("C", int64(nt*nt)*tbytes)
	if mode == core.ModeReal {
		fillTiled(bufA, nt, tb, FillA)
		fillTiled(bufB, nt, tb, FillB)
	}
	start := o.RT.Now()
	//[omp40tiled:computation]
	for j := 0; j < nt; j++ {
		for i := 0; i < nt; i++ {
			cOff := kernels.TileOff(i, j, nt, tb)
			for k := 0; k < nt; k++ {
				kname := kernels.DgemmAcc
				dir := ompoffload.MapToFrom
				if k == 0 {
					kname = dgemmOverwrite
					dir = ompoffload.MapFrom
				}
				err := o.Target(0, kname, []int64{int64(tb), int64(tb), int64(tb)},
					kernels.GemmCost(tb, tb, tb),
					ompoffload.Map{Buf: bufA, Off: kernels.TileOff(i, k, nt, tb), Len: tbytes, Dir: ompoffload.MapTo},
					ompoffload.Map{Buf: bufB, Off: kernels.TileOff(k, j, nt, tb), Len: tbytes, Dir: ompoffload.MapTo},
					ompoffload.Map{Buf: bufC, Off: cOff, Len: tbytes, Dir: dir})
				if err != nil {
					return VariantResult{}, err
				}
			}
		}
	}
	//[end]
	elapsed := o.RT.Now() - start
	if verify && mode == core.ModeReal {
		if err := VerifyTiledProduct(bufA.HostFloat64s(), bufB.HostFloat64s(), bufC.HostFloat64s(), nt, tb); err != nil {
			return VariantResult{}, err
		}
	}
	return variantResult("OMP4.0-tiled", n, elapsed, &o.API), nil
}

// OMP45TiledVariant uses OpenMP 4.5's nowait/depend to regain
// asynchrony (the paper could not measure this for lack of a
// complete compiler; our model can).
func OMP45TiledVariant(mode core.Mode, n, tb int, verify bool) (VariantResult, error) {
	o, err := ompoffload.Init(platform.HSWPlusKNC(1), mode, ompoffload.V45)
	if err != nil {
		return VariantResult{}, err
	}
	defer o.Fini()
	if mode == core.ModeReal {
		kernels.Register(o.RT)
		RegisterExtra(o.RT)
	}
	nt := n / tb
	tbytes := kernels.TileBytes(tb)
	bufA, err := o.RT.Alloc1D("A", int64(nt*nt)*tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	bufB, _ := o.RT.Alloc1D("B", int64(nt*nt)*tbytes)
	bufC, _ := o.RT.Alloc1D("C", int64(nt*nt)*tbytes)
	if mode == core.ModeReal {
		fillTiled(bufA, nt, tb, FillA)
		fillTiled(bufB, nt, tb, FillB)
	}
	start := o.RT.Now()
	//[omp45:data-transfers]
	staged := map[int64]*core.Action{}
	ensure := func(buf *core.Buf, off int64) (*core.Action, error) {
		key := int64(buf.ProxyBase()) + off
		if a, ok := staged[key]; ok {
			return a, nil
		}
		a, err := o.TargetEnterData(0, true, ompoffload.Map{Buf: buf, Off: off, Len: tbytes, Dir: ompoffload.MapTo})
		if err != nil {
			return nil, err
		}
		staged[key] = a
		return a, nil
	}
	//[end]
	//[omp45:computation]
	last := map[int64]*core.Action{}
	for j := 0; j < nt; j++ {
		for i := 0; i < nt; i++ {
			cOff := kernels.TileOff(i, j, nt, tb)
			for k := 0; k < nt; k++ {
				aDep, err := ensure(bufA, kernels.TileOff(i, k, nt, tb))
				if err != nil {
					return VariantResult{}, err
				}
				bDep, err := ensure(bufB, kernels.TileOff(k, j, nt, tb))
				if err != nil {
					return VariantResult{}, err
				}
				deps := []*core.Action{aDep, bDep}
				if prev := last[cOff]; prev != nil {
					deps = append(deps, prev)
				}
				kname := kernels.DgemmAcc
				if k == 0 {
					kname = dgemmOverwrite
				}
				// A and B are already resident (enter data); map
				// them alloc so the kernel sees all three operands.
				a, err := o.TargetNowait(0, kname, []int64{int64(tb), int64(tb), int64(tb)},
					kernels.GemmCost(tb, tb, tb), deps,
					ompoffload.Map{Buf: bufA, Off: kernels.TileOff(i, k, nt, tb), Len: tbytes, Dir: ompoffload.MapAlloc},
					ompoffload.Map{Buf: bufB, Off: kernels.TileOff(k, j, nt, tb), Len: tbytes, Dir: ompoffload.MapAlloc},
					ompoffload.Map{Buf: bufC, Off: cOff, Len: tbytes, Dir: ompoffload.MapAlloc})
				if err != nil {
					return VariantResult{}, err
				}
				last[cOff] = a
			}
			if _, err := o.TargetExitData(0, true, ompoffload.Map{Buf: bufC, Off: cOff, Len: tbytes, Dir: ompoffload.MapFrom}); err != nil {
				return VariantResult{}, err
			}
		}
	}
	//[end]
	//[omp45:synchronization]
	o.Taskwait()
	//[end]
	elapsed := o.RT.Now() - start
	if err := o.RT.Err(); err != nil {
		return VariantResult{}, err
	}
	if verify && mode == core.ModeReal {
		if err := VerifyTiledProduct(bufA.HostFloat64s(), bufB.HostFloat64s(), bufC.HostFloat64s(), nt, tb); err != nil {
			return VariantResult{}, err
		}
	}
	return variantResult("OMP4.5", n, elapsed, &o.API), nil
}

// OmpSsVariant expresses the computation as a task graph with
// declared in/out tiles — the fewest lines of all, at the price of
// runtime overhead per task (§III).
func OmpSsVariant(mode core.Mode, n, tb int, verify bool) (VariantResult, error) {
	r, err := ompss.Init(ompss.Config{Machine: platform.HSWPlusKNC(1), Mode: mode, Backend: ompss.BackendHStreams})
	if err != nil {
		return VariantResult{}, err
	}
	defer r.Fini()
	if mode == core.ModeReal {
		kernels.Register(r.Core())
		RegisterExtra(r.Core())
	}
	nt := n / tb
	tbytes := kernels.TileBytes(tb)
	mk := func(fill func(i, j int) float64) ([][]*ompss.Region, error) {
		tiles := make([][]*ompss.Region, nt)
		for i := range tiles {
			tiles[i] = make([]*ompss.Region, nt)
			for j := range tiles[i] {
				reg, err := r.CreateData(tbytes)
				if err != nil {
					return nil, err
				}
				if mode == core.ModeReal && fill != nil {
					data := reg.Buf().HostFloat64s()
					for jj := 0; jj < tb; jj++ {
						for ii := 0; ii < tb; ii++ {
							data[ii+jj*tb] = fill(i*tb+ii, j*tb+jj)
						}
					}
				}
				tiles[i][j] = reg
			}
		}
		return tiles, nil
	}
	ta, err := mk(FillA)
	if err != nil {
		return VariantResult{}, err
	}
	tbt, _ := mk(FillB)
	tc, _ := mk(nil)
	start := r.Core().Now()
	//[ompss:computation]
	for j := 0; j < nt; j++ {
		for i := 0; i < nt; i++ {
			for k := 0; k < nt; k++ {
				// Natural OmpSs style declares inout(C) for every
				// accumulation — the runtime cannot know the first
				// write overwrites, so it conservatively stages C in
				// (one of the convenience costs, §III).
				kname := kernels.DgemmAcc
				if k == 0 {
					kname = dgemmOverwrite
				}
				if _, err := r.Submit(kname, []int64{int64(tb), int64(tb), int64(tb)},
					[]ompss.Arg{{R: ta[i][k], Acc: ompss.In}, {R: tbt[k][j], Acc: ompss.In}, {R: tc[i][j], Acc: ompss.InOut}},
					kernels.GemmCost(tb, tb, tb)); err != nil {
					return VariantResult{}, err
				}
			}
		}
	}
	//[end]
	//[ompss:synchronization]
	r.Taskwait()
	//[end]
	elapsed := r.Core().Now() - start
	if err := r.Core().Err(); err != nil {
		return VariantResult{}, err
	}
	if verify && mode == core.ModeReal {
		flat := make([]float64, int64(nt*nt)*int64(tb*tb))
		fa := make([]float64, len(flat))
		fb := make([]float64, len(flat))
		for j := 0; j < nt; j++ {
			for i := 0; i < nt; i++ {
				if err := r.SyncToHost(tc[i][j]); err != nil {
					return VariantResult{}, err
				}
				off := (int64(j)*int64(nt) + int64(i)) * int64(tb*tb)
				copy(flat[off:off+int64(tb*tb)], tc[i][j].Buf().HostFloat64s())
				copy(fa[off:off+int64(tb*tb)], ta[i][j].Buf().HostFloat64s())
				copy(fb[off:off+int64(tb*tb)], tbt[i][j].Buf().HostFloat64s())
			}
		}
		if err := VerifyTiledProduct(fa, fb, flat, nt, tb); err != nil {
			return VariantResult{}, err
		}
	}
	return variantResult("OmpSs", n, elapsed, &r.API), nil
}

// OpenCLVariant is the OpenCL rendition: heavy boilerplate, in-order
// queues, and the untuned clBLAS rate (§IV: "OpenCL performance is
// poor because clBLAS is not well tuned for MIC").
func OpenCLVariant(mode core.Mode, n, tb, nQueues int, verify bool) (VariantResult, error) {
	nt := n / tb
	tbytes := kernels.TileBytes(tb)
	//[opencl:initialization]
	cl, err := oclsim.GetPlatform(platform.HSWPlusKNC(1), mode)
	if err != nil {
		return VariantResult{}, err
	}
	if cl.GetDeviceIDs() < 1 {
		return VariantResult{}, oclsim.ErrBadDevice
	}
	ctx, err := cl.CreateContext(0)
	if err != nil {
		return VariantResult{}, err
	}
	prog := ctx.CreateProgramWithSource("__kernel void dgemm(...) { ... }")
	prog.Build()
	kAcc, err := prog.CreateKernel(oclDgemmAcc)
	if err != nil {
		return VariantResult{}, err
	}
	kB0, err := prog.CreateKernel(oclDgemmB0)
	if err != nil {
		return VariantResult{}, err
	}
	queues := make([]*oclsim.Queue, nQueues)
	for i := range queues {
		if queues[i], err = ctx.CreateCommandQueue(); err != nil {
			return VariantResult{}, err
		}
	}
	//[end]
	defer cl.Release()
	if mode == core.ModeReal {
		kernels.Register(cl.RT)
		RegisterExtra(cl.RT)
	}
	//[opencl:data-alloc]
	bufA, err := ctx.CreateBuffer(int64(nt*nt) * tbytes)
	if err != nil {
		return VariantResult{}, err
	}
	bufB, _ := ctx.CreateBuffer(int64(nt*nt) * tbytes)
	bufC, _ := ctx.CreateBuffer(int64(nt*nt) * tbytes)
	//[end]
	if mode == core.ModeReal {
		FillTiledSlice(floatbits.Float64s(bufA.HostStage()), nt, tb, FillA)
		FillTiledSlice(floatbits.Float64s(bufB.HostStage()), nt, tb, FillB)
	}
	start := cl.RT.Now()
	//[opencl:data-transfers]
	type sentTile struct {
		q  int
		ev *core.Action
	}
	sent := map[int64]sentTile{}
	synced := make([]map[int64]bool, nQueues)
	for i := range synced {
		synced[i] = map[int64]bool{}
	}
	// The first queue to need a shared tile sends it; in-order queues
	// cannot see another queue's transfer, so later queues must stall
	// on the sender's event (clEnqueueMarkerWithWaitList) before
	// touching the tile.
	ensure := func(qi int, b *oclsim.Buffer, off int64, tag int64) error {
		key := off | tag
		st, ok := sent[key]
		if !ok {
			ev, err := queues[qi].EnqueueWriteBuffer(b, off, tbytes)
			if err != nil {
				return err
			}
			sent[key] = sentTile{q: qi, ev: ev}
			return nil
		}
		if st.q == qi || synced[qi][key] {
			return nil
		}
		if _, err := queues[qi].EnqueueMarkerWithWaitList(st.ev); err != nil {
			return err
		}
		synced[qi][key] = true
		return nil
	}
	//[end]
	for j := 0; j < nt; j++ {
		for i := 0; i < nt; i++ {
			qi := (j*nt + i) % nQueues
			q := queues[qi]
			cOff := kernels.TileOff(i, j, nt, tb)
			for k := 0; k < nt; k++ {
				aOff := kernels.TileOff(i, k, nt, tb)
				bOff := kernels.TileOff(k, j, nt, tb)
				if err := ensure(qi, bufA, aOff, 0); err != nil {
					return VariantResult{}, err
				}
				if err := ensure(qi, bufB, bOff, 1<<60); err != nil {
					return VariantResult{}, err
				}
				//[opencl:computation]
				k3 := kAcc
				if k == 0 {
					k3 = kB0
				}
				k3.SetArgScalar(0, int64(tb))
				k3.SetArgScalar(1, int64(tb))
				k3.SetArgScalar(2, int64(tb))
				k3.SetArgScalar(3, aOff/8)
				k3.SetArgScalar(4, bOff/8)
				k3.SetArgScalar(5, cOff/8)
				k3.SetArgBuffer(6, bufA)
				k3.SetArgBuffer(7, bufB)
				k3.SetArgBuffer(8, bufC)
				if _, err := q.EnqueueNDRangeKernel(k3, 9, kernels.GemmCost(tb, tb, tb)); err != nil {
					return VariantResult{}, err
				}
				//[end]
			}
			//[opencl:data-transfers-out]
			if _, err := q.EnqueueReadBuffer(bufC, cOff, tbytes); err != nil {
				return VariantResult{}, err
			}
			//[end]
		}
	}
	//[opencl:synchronization]
	for _, q := range queues {
		if err := q.Finish(); err != nil {
			return VariantResult{}, err
		}
	}
	//[end]
	elapsed := cl.RT.Now() - start
	if err := cl.RT.Err(); err != nil {
		return VariantResult{}, err
	}
	//[opencl:data-dealloc]
	bufA.Release()
	bufB.Release()
	bufC.Release()
	kAcc.Release()
	kB0.Release()
	//[end]
	//[opencl:finalization]
	for _, q := range queues {
		if err := q.Release(); err != nil {
			return VariantResult{}, err
		}
	}
	//[end]
	return variantResult("OpenCL", n, elapsed, &cl.API), nil
}
