package matmul

import (
	"fmt"

	"hstreams/internal/blas"
)

// FillA and FillB are the deterministic element generators every
// model variant uses, so all variants compute the same product.
func FillA(i, j int) float64 { return float64((i+j)%5) / 4 }

// FillB generates B's elements.
func FillB(i, j int) float64 { return float64((2*i+3*j)%7) / 6 }

// FillTiledSlice writes f(i, j) into global element (i, j) of a
// tile-major buffer: tile (ti, tj) of an nt×nt tiling occupies
// elements [(tj·nt+ti)·tb², …), column-major within the tile.
func FillTiledSlice(data []float64, nt, tb int, f func(i, j int) float64) {
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < nt; ti++ {
			tile := data[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				for ii := 0; ii < tb; ii++ {
					tile[ii+jj*tb] = f(ti*tb+ii, tj*tb+jj)
				}
			}
		}
	}
}

// UntileSlice flattens a tile-major buffer into a plain column-major
// matrix.
func UntileSlice(data []float64, nt, tb int) []float64 {
	n := nt * tb
	out := make([]float64, n*n)
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < nt; ti++ {
			tile := data[(int64(tj)*int64(nt)+int64(ti))*int64(tb)*int64(tb):]
			for jj := 0; jj < tb; jj++ {
				copy(out[(tj*tb+jj)*n+ti*tb:(tj*tb+jj)*n+ti*tb+tb], tile[jj*tb:jj*tb+tb])
			}
		}
	}
	return out
}

// VerifyTiledProduct recomputes C = A·B from tile-major A and B and
// compares against tile-major C.
func VerifyTiledProduct(aT, bT, cT []float64, nt, tb int) error {
	n := nt * tb
	a := UntileSlice(aT, nt, tb)
	b := UntileSlice(bT, nt, tb)
	c := UntileSlice(cT, nt, tb)
	want := make([]float64, n*n)
	blas.DgemmParallel(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, want, n, 8)
	for i := range want {
		d := c[i] - want[i]
		if d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("matmul: verification failed at element %d: got %v want %v", i, c[i], want[i])
		}
	}
	return nil
}
