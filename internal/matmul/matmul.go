// Package matmul implements the paper's matrix-multiplication
// application (§V, Fig. 4): A, B and C are decomposed into square
// tiles; A is broadcast tile-by-tile to the host (host-as-target
// streams) and all cards; B and C are partitioned into column panels,
// each panel owned by one computational domain; panel updates are
// independent, so no card↔card communication is needed; and tiling
// plus multiple streams hides transfer latency behind compute.
//
// The same tiled algorithm also exists in each rival model's dialect
// (CUDA Streams, OpenMP 4.0/4.5, OmpSs, OpenCL) for the paper's
// Fig. 3 coding/performance comparison.
package matmul

import (
	"errors"
	"time"

	"hstreams/internal/app"
	"hstreams/internal/blas"
	"hstreams/internal/core"
	"hstreams/internal/floatbits"
	"hstreams/internal/kernels"
	"hstreams/internal/platform"
)

// ErrBadTiling reports an n that is not divisible by the tile size.
var ErrBadTiling = errors.New("matmul: matrix size must be a multiple of the tile size")

// Config describes one hStreams matmul run.
type Config struct {
	// N is the matrix edge; Tile the tile edge (N%Tile == 0).
	N, Tile int
	// UseHost includes host-as-target streams as a compute domain
	// (they must exist on the app); false restricts work to cards
	// even when host streams are present.
	UseHost bool
	// LoadBalance assigns panels proportionally to each domain's
	// modeled DGEMM rate instead of evenly — the Fig. 6 "with load
	// bal" vs "no load bal" comparison.
	LoadBalance bool
	// Verify (Real mode) fills A and B deterministically and checks
	// C against a reference product.
	Verify bool
}

// Result summarizes a run.
type Result struct {
	Seconds time.Duration
	GFlops  float64
	// PanelsPerDomain records the work split (domain index → tile
	// columns owned).
	PanelsPerDomain []int
}

// Run executes the hetero tiled matmul on an initialized app instance
// and returns performance results. In Real mode the matrices hold
// real data and the result is verified if requested; in Sim mode the
// identical action graph runs on the virtual clock.
func Run(a *app.App, cfg Config) (Result, error) {
	if cfg.N%cfg.Tile != 0 {
		return Result{}, ErrBadTiling
	}
	rt := a.RT
	nt := cfg.N / cfg.Tile
	tb := cfg.Tile
	tileBytes := kernels.TileBytes(tb)
	total := int64(nt) * int64(nt) * tileBytes

	bufA, err := rt.Alloc1D("A", total)
	if err != nil {
		return Result{}, err
	}
	bufB, err := rt.Alloc1D("B", total)
	if err != nil {
		return Result{}, err
	}
	bufC, err := rt.Alloc1D("C", total)
	if err != nil {
		return Result{}, err
	}
	if rt.Mode() == core.ModeReal {
		kernels.Register(rt)
		fillTiled(bufA, nt, tb, FillA)
		fillTiled(bufB, nt, tb, FillB)
	}

	doms := a.ComputeDomains()
	if !cfg.UseHost {
		kept := doms[:0]
		for _, d := range doms {
			if !d.IsHost() {
				kept = append(kept, d)
			}
		}
		doms = kept
	}
	if len(doms) == 0 {
		return Result{}, app.ErrNoStreams
	}
	owner := assignPanels(doms, nt, cfg.LoadBalance, tb)

	start := rt.Now()
	// residency tracks, per domain, the transfer action that brought
	// each tile of A/B to the domain; nil means host-resident only.
	res := newResidency(len(rt.Domains()))

	for j := 0; j < nt; j++ {
		d := owner[j]
		for i := 0; i < nt; i++ {
			// One C tile per stream, round-robin within the owning
			// domain — the "stream per tile" mapping the paper's
			// tuners start from (§II).
			s, err := a.NextStream(d)
			if err != nil {
				return Result{}, err
			}
			cOff := kernels.TileOff(i, j, nt, tb)
			for k := 0; k < nt; k++ {
				aOff := kernels.TileOff(i, k, nt, tb)
				bOff := kernels.TileOff(k, j, nt, tb)
				var deps []*core.Action
				if dep, err := res.ensure(d, s, bufA, aOff, tileBytes); err != nil {
					return Result{}, err
				} else if dep != nil {
					deps = append(deps, dep)
				}
				if dep, err := res.ensure(d, s, bufB, bOff, tileBytes); err != nil {
					return Result{}, err
				} else if dep != nil {
					deps = append(deps, dep)
				}
				kname := kernels.DgemmAcc
				if k == 0 {
					kname = dgemmOverwrite
				}
				ops := []core.Operand{
					bufA.Range(aOff, tileBytes, core.In),
					bufB.Range(bOff, tileBytes, core.In),
					bufC.Range(cOff, tileBytes, core.InOut),
				}
				if _, err := s.EnqueueComputeDeps(kname, []int64{int64(tb), int64(tb), int64(tb)},
					ops, kernels.GemmCost(tb, tb, tb), deps); err != nil {
					return Result{}, err
				}
			}
			// Panel result back to the host (aliased away on host
			// streams).
			if _, err := s.EnqueueXfer(bufC, cOff, tileBytes, core.ToSource); err != nil {
				return Result{}, err
			}
		}
	}
	rt.ThreadSynchronize()
	if err := rt.Err(); err != nil {
		return Result{}, err
	}
	elapsed := rt.Now() - start

	if cfg.Verify && rt.Mode() == core.ModeReal {
		if err := verify(bufA, bufB, bufC, nt, tb); err != nil {
			return Result{}, err
		}
	}
	flops := 2 * float64(cfg.N) * float64(cfg.N) * float64(cfg.N)
	counts := make([]int, len(rt.Domains()))
	for _, d := range owner {
		counts[d.Index()]++
	}
	return Result{Seconds: elapsed, GFlops: platform.GFlops(flops, elapsed), PanelsPerDomain: counts}, nil
}

// dgemmOverwrite is DgemmAcc with beta = 0 (first k-step initializes
// the C tile in place, so no C transfer to the sink is needed).
const dgemmOverwrite = "tile.dgemm.b0"

// oclDgemmAcc / oclDgemmB0 are the OpenCL-style kernels: whole-matrix
// buffer objects plus element offsets as scalar arguments (args:
// m, n, k, aOff, bOff, cOff; ops: A, B, C whole buffers).
const (
	oclDgemmAcc = "ocl.dgemm.acc"
	oclDgemmB0  = "ocl.dgemm.b0"
)

// RegisterExtra installs matmul-specific kernels (Real mode).
func RegisterExtra(rt *core.Runtime) {
	rt.RegisterKernel(dgemmOverwrite, func(ctx *core.KernelCtx) {
		m, n, k := int(ctx.Args[0]), int(ctx.Args[1]), int(ctx.Args[2])
		a := floatbits.Float64s(ctx.Ops[0])
		b := floatbits.Float64s(ctx.Ops[1])
		c := floatbits.Float64s(ctx.Ops[2])
		blas.DgemmParallel(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, m, b, k, 0, c, m, ctx.Threads)
	})
	ocl := func(beta float64) core.Kernel {
		return func(ctx *core.KernelCtx) {
			m, n, k := int(ctx.Args[0]), int(ctx.Args[1]), int(ctx.Args[2])
			a := floatbits.Float64s(ctx.Ops[0])[ctx.Args[3]:]
			b := floatbits.Float64s(ctx.Ops[1])[ctx.Args[4]:]
			c := floatbits.Float64s(ctx.Ops[2])[ctx.Args[5]:]
			blas.DgemmParallel(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, m, b, k, beta, c, m, ctx.Threads)
		}
	}
	rt.RegisterKernel(oclDgemmAcc, ocl(1))
	rt.RegisterKernel(oclDgemmB0, ocl(0))
}

// assignPanels distributes the nt tile-columns over the compute
// domains: evenly, or proportionally to modeled DGEMM rate when load
// balancing (the paper's manual load-balance knob, §VI).
func assignPanels(doms []*core.Domain, nt int, balance bool, tb int) []*core.Domain {
	owner := make([]*core.Domain, nt)
	if !balance {
		for j := 0; j < nt; j++ {
			owner[j] = doms[j%len(doms)]
		}
		return owner
	}
	weights := make([]float64, len(doms))
	var sum float64
	for i, d := range doms {
		c := kernels.GemmCost(tb, tb, tb)
		t := platform.ComputeTime(d.Spec(), d.Spec().Cores(), c)
		weights[i] = c.Flops / t.Seconds()
		sum += weights[i]
	}
	// Largest-remainder apportionment.
	counts := make([]int, len(doms))
	rem := make([]float64, len(doms))
	given := 0
	for i := range doms {
		exact := float64(nt) * weights[i] / sum
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		given += counts[i]
	}
	for given < nt {
		best := 0
		for i := range rem {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		given++
	}
	j := 0
	for i, d := range doms {
		for c := 0; c < counts[i]; c++ {
			owner[j] = d
			j++
		}
	}
	return owner
}

// residency tracks which tiles have been pushed to each domain and by
// which transfer action, so A is broadcast once per domain and later
// streams wait on the in-flight transfer instead of re-sending.
type residency struct {
	m []map[int64]*core.Action // per domain: tile offset → transfer
}

func newResidency(domains int) *residency {
	r := &residency{m: make([]map[int64]*core.Action, domains)}
	for i := range r.m {
		r.m[i] = make(map[int64]*core.Action)
	}
	return r
}

// ensure makes the tile resident in d, enqueueing the transfer in s
// if it is the first user. It returns the action the caller must
// depend on when the transfer belongs to a different stream (nil when
// none is needed).
func (r *residency) ensure(d *core.Domain, s *core.Stream, b *core.Buf, off, n int64) (*core.Action, error) {
	if d.IsHost() {
		return nil, nil // host streams alias the source instance
	}
	key := b.ProxyBase() + uint64(off)
	if a, ok := r.m[d.Index()][int64(key)]; ok {
		if a.Stream() == s {
			return nil, nil // in-stream FIFO covers the ordering
		}
		return a, nil
	}
	a, err := s.EnqueueXfer(b, off, n, core.ToSink)
	if err != nil {
		return nil, err
	}
	r.m[d.Index()][int64(key)] = a
	return nil, nil
}

// fillTiled writes f(i, j) into global element (i, j) of a tiled
// buffer (Real mode).
func fillTiled(b *core.Buf, nt, tb int, f func(i, j int) float64) {
	FillTiledSlice(b.HostFloat64s(), nt, tb, f)
}

// verify recomputes C = A·B untiled and compares.
func verify(bufA, bufB, bufC *core.Buf, nt, tb int) error {
	return VerifyTiledProduct(bufA.HostFloat64s(), bufB.HostFloat64s(), bufC.HostFloat64s(), nt, tb)
}
