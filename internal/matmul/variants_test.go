package matmul

import (
	"testing"

	"hstreams/internal/core"
)

// All variants must compute the same (verified) product in Real mode.
func TestVariantsCorrectReal(t *testing.T) {
	const n, tb = 24, 12
	cases := []struct {
		name string
		run  func() (VariantResult, error)
	}{
		{"hstreams", func() (VariantResult, error) { return HStreamsVariant(core.ModeReal, n, tb, 2, true) }},
		{"cuda", func() (VariantResult, error) { return CUDAVariant(core.ModeReal, n, tb, 2, true) }},
		{"omp40-untiled", func() (VariantResult, error) { return OMP40UntiledVariant(core.ModeReal, n, true) }},
		{"omp40-tiled", func() (VariantResult, error) { return OMP40TiledVariant(core.ModeReal, n, tb, true) }},
		{"omp45", func() (VariantResult, error) { return OMP45TiledVariant(core.ModeReal, n, tb, true) }},
		{"ompss", func() (VariantResult, error) { return OmpSsVariant(core.ModeReal, n, tb, true) }},
		{"opencl", func() (VariantResult, error) { return OpenCLVariant(core.ModeReal, n, tb, 2, true) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalAPIs == 0 {
				t.Fatal("no API usage recorded")
			}
		})
	}
}

// TestFig3APIOrdering checks the coding-comparison shape: hStreams
// needs fewer unique APIs and total calls than CUDA and OpenCL
// (paper: 8/18/16 unique, 16/31/28 total), while OpenMP 4.0 untiled
// is the most compact of all.
func TestFig3APIOrdering(t *testing.T) {
	const n, tb = 4800, 1200
	hs, err := HStreamsVariant(core.ModeSim, n, tb, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := CUDAVariant(core.ModeSim, n, tb, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := OpenCLVariant(core.ModeSim, n, tb, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	o40, err := OMP40UntiledVariant(core.ModeSim, n, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(hs.UniqueAPIs < cu.UniqueAPIs && hs.UniqueAPIs < cl.UniqueAPIs) {
		t.Fatalf("unique APIs: hStreams %d, CUDA %d, OpenCL %d — hStreams must be fewest",
			hs.UniqueAPIs, cu.UniqueAPIs, cl.UniqueAPIs)
	}
	if !(hs.TotalAPIs < cu.TotalAPIs && hs.TotalAPIs < cl.TotalAPIs) {
		t.Fatalf("total APIs: hStreams %d, CUDA %d, OpenCL %d — hStreams must be fewest",
			hs.TotalAPIs, cu.TotalAPIs, cl.TotalAPIs)
	}
	if o40.UniqueAPIs >= hs.UniqueAPIs {
		t.Fatalf("OMP4.0 untiled unique APIs = %d, must be below hStreams' %d", o40.UniqueAPIs, hs.UniqueAPIs)
	}
}

// TestFig3PerformanceOrdering checks the performance row of Fig. 3 at
// the paper's scale (10 000², 1 card): hStreams > OmpSs > OMP4.0
// untiled > OMP4.0 tiled > OpenCL, with the paper's headline
// observations — tiling hurts OpenMP 4.0, and OpenCL is an order of
// magnitude down.
func TestFig3PerformanceOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	const n, tb = 10000, 2000
	hs, err := HStreamsVariant(core.ModeSim, n, tb, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	om, err := OmpSsVariant(core.ModeSim, n, tb, false)
	if err != nil {
		t.Fatal(err)
	}
	u40, err := OMP40UntiledVariant(core.ModeSim, n, false)
	if err != nil {
		t.Fatal(err)
	}
	t40, err := OMP40TiledVariant(core.ModeSim, n, tb, false)
	if err != nil {
		t.Fatal(err)
	}
	ocl, err := OpenCLVariant(core.ModeSim, n, tb, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("GF/s: hStreams=%.0f OmpSs=%.0f OMP4.0=%.0f OMP4.0-tiled=%.0f OpenCL=%.0f",
		hs.GFlops, om.GFlops, u40.GFlops, t40.GFlops, ocl.GFlops)
	if !(hs.GFlops > om.GFlops && om.GFlops > u40.GFlops) {
		t.Fatalf("ordering hStreams > OmpSs > OMP4.0 violated: %.0f, %.0f, %.0f",
			hs.GFlops, om.GFlops, u40.GFlops)
	}
	if t40.GFlops >= u40.GFlops {
		t.Fatalf("OMP4.0 tiling should hurt: tiled %.0f ≥ untiled %.0f", t40.GFlops, u40.GFlops)
	}
	if ocl.GFlops*5 > hs.GFlops {
		t.Fatalf("OpenCL %.0f not far below hStreams %.0f", ocl.GFlops, hs.GFlops)
	}
}
