// Package coi is the Co-processor Offload Infrastructure layer of the
// stack, modeled on Intel COI, the plumbing hStreams is built on in
// the paper (§III):
//
//	application → hStreams → COI → SCIF (internal/fabric) → PCIe
//
// It provides sink-side processes, FIFO pipelines of run-functions,
// registered buffers with host↔sink movement over fabric DMA, and
// completion events. Control traffic (run-function descriptors and
// completions) really travels over fabric endpoints, encoded with
// encoding/gob, so the layering the paper describes is an actual code
// path, not a diagram.
//
// The buffer pool reproduces the paper's allocation observation: COI
// overheads were negligible when a pool of 2 MB buffers was used, and
// significant when it was not (as in the OmpSs configuration).
package coi

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"hstreams/internal/fabric"
	"hstreams/internal/fault"
	"hstreams/internal/metrics"
)

// Common errors.
var (
	ErrUnknownFunction = errors.New("coi: run-function not registered")
	ErrUnknownBuffer   = errors.New("coi: unknown buffer id")
	ErrProcessDown     = errors.New("coi: process destroyed")
	ErrBadRange        = errors.New("coi: access outside buffer")
)

// RunFunc is a sink-side entry point. Buffers arrive as slices of the
// sink instances, in the order they were passed to RunFunction.
type RunFunc func(args []int64, bufs [][]byte)

// msg is the wire format for control traffic.
type msg struct {
	Op       byte // 'r' run, 'c' completion, 'p' new pipeline, 'q' quit
	Fn       string
	Args     []int64
	BufIDs   []uint64
	Pipeline uint64
	Event    uint64
	Err      string
}

func encode(m msg) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("coi: encode: %v", err)) // msg is always encodable
	}
	return buf.Bytes()
}

func decode(b []byte) (msg, error) {
	var m msg
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m)
	return m, err
}

// Event signals completion of one run-function invocation.
type Event struct {
	done chan struct{}
	err  error
}

func newEvent() *Event { return &Event{done: make(chan struct{})} }

// Wait blocks until the invocation finished and returns its error.
func (e *Event) Wait() error {
	<-e.done
	return e.err
}

// Done returns a channel closed on completion.
func (e *Event) Done() <-chan struct{} { return e.done }

// Process is the host-side handle to a sink engine running on a card
// domain. It owns the control endpoints, the registered functions, the
// sink buffer instances, and the sink pipelines.
type Process struct {
	fab    *fabric.Fabric
	source *fabric.Node
	sink   *fabric.Node
	srcEP  *fabric.Endpoint
	sinkEP *fabric.Endpoint
	pool   *BufferPool
	inj    fault.Injector // nil unless Options.Injector was set

	// Telemetry, labeled by sink node (see Options.Metrics).
	poolHits   *metrics.Counter
	poolMisses *metrics.Counter
	runFns     *metrics.Counter
	pipeCount  *metrics.Counter

	mu        sync.Mutex
	funcs     map[string]RunFunc
	buffers   map[uint64]*Buffer
	pipelines map[uint64]*Pipeline
	events    map[uint64]*Event
	nextID    uint64
	down      bool

	wg sync.WaitGroup
}

// Options configures process creation.
type Options struct {
	// PoolBuffers enables the 2 MB sink buffer pool. Disabling it
	// reproduces the allocation overheads the paper saw with OmpSs.
	PoolBuffers bool
	// Metrics receives COI telemetry (buffer-pool hits/misses,
	// run-function and pipeline counts), labeled by sink node. Nil
	// keeps counting into detached series that are never exported.
	Metrics *metrics.Registry
	// Injector, when non-nil, is consulted before every run-function
	// launch (keyed by sink domain) and may fail the launch before the
	// descriptor is sent — so a failed launch has no sink-side effects
	// and is safe to retry. Nil disables injection at zero cost.
	Injector fault.Injector
}

// CreateProcess starts a sink engine on the sink node and returns the
// host-side handle. The two nodes must be connected on the fabric.
func CreateProcess(f *fabric.Fabric, source, sink *fabric.Node, opt Options) (*Process, error) {
	srcEP, sinkEP, err := fabric.ConnectPair(f, source, sink)
	if err != nil {
		return nil, err
	}
	p := &Process{
		fab:       f,
		source:    source,
		sink:      sink,
		srcEP:     srcEP,
		sinkEP:    sinkEP,
		funcs:     make(map[string]RunFunc),
		buffers:   make(map[uint64]*Buffer),
		pipelines: make(map[uint64]*Pipeline),
		events:    make(map[uint64]*Event),
		inj:       opt.Injector,
	}
	if opt.PoolBuffers {
		p.pool = NewBufferPool(DefaultPoolChunk)
	}
	p.poolHits = opt.Metrics.CounterVec("hstreams_coi_pool_hits_total", "Sink buffer allocations satisfied from the 2 MB pool.", "sink").With(sink.Name())
	p.poolMisses = opt.Metrics.CounterVec("hstreams_coi_pool_misses_total", "Sink buffer allocations that paid a cold (pinning) allocation.", "sink").With(sink.Name())
	p.runFns = opt.Metrics.CounterVec("hstreams_coi_runfunctions_total", "Run-function invocations enqueued to sink pipelines.", "sink").With(sink.Name())
	p.pipeCount = opt.Metrics.CounterVec("hstreams_coi_pipelines_total", "Sink pipelines created.", "sink").With(sink.Name())
	p.wg.Add(2)
	go p.sinkLoop()
	go p.sourceLoop()
	return p, nil
}

// id allocates a process-unique id. Caller must hold p.mu or be the
// only writer.
func (p *Process) id() uint64 {
	p.nextID++
	return p.nextID
}

// RegisterFunction makes fn invocable by name from pipelines. It
// mirrors COI's sink-side symbol lookup.
func (p *Process) RegisterFunction(name string, fn RunFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.funcs[name] = fn
}

// Sink returns the sink node of the process.
func (p *Process) Sink() *fabric.Node { return p.sink }

// sinkLoop is the card-side dispatcher: it decodes run-function
// descriptors and feeds per-pipeline executors.
func (p *Process) sinkLoop() {
	defer p.wg.Done()
	for {
		raw, err := p.sinkEP.Recv()
		if err != nil {
			return
		}
		m, err := decode(raw)
		if err != nil {
			continue
		}
		switch m.Op {
		case 'q':
			p.mu.Lock()
			for _, pl := range p.pipelines {
				pl.closeQueue()
			}
			p.mu.Unlock()
			p.sinkEP.Close()
			return
		case 'r':
			p.mu.Lock()
			pl := p.pipelines[m.Pipeline]
			p.mu.Unlock()
			if pl != nil {
				pl.queue <- m
			}
		}
	}
}

// sourceLoop routes completions back to host-side events.
func (p *Process) sourceLoop() {
	defer p.wg.Done()
	for {
		raw, err := p.srcEP.Recv()
		if err != nil {
			return
		}
		m, err := decode(raw)
		if err != nil || m.Op != 'c' {
			continue
		}
		p.mu.Lock()
		ev := p.events[m.Event]
		delete(p.events, m.Event)
		p.mu.Unlock()
		if ev != nil {
			if m.Err != "" {
				ev.err = errors.New(m.Err)
			}
			close(ev.done)
		}
	}
}

// Destroy shuts the process down, waiting for the sink to drain.
func (p *Process) Destroy() {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return
	}
	p.down = true
	p.mu.Unlock()
	_, _ = p.srcEP.Send(encode(msg{Op: 'q'}))
	p.srcEP.Close()
	p.wg.Wait()
}

// Pipeline is a FIFO queue of run-function invocations executing on
// the sink — COI's ordering guarantee that hStreams builds streams on.
type Pipeline struct {
	p     *Process
	id    uint64
	queue chan msg
	once  sync.Once
	wg    sync.WaitGroup
}

const pipelineDepth = 256

// CreatePipeline creates a sink pipeline with its own executor.
func (p *Process) CreatePipeline() (*Pipeline, error) {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return nil, ErrProcessDown
	}
	pl := &Pipeline{p: p, id: p.id(), queue: make(chan msg, pipelineDepth)}
	p.pipelines[pl.id] = pl
	p.mu.Unlock()
	p.pipeCount.Inc()
	pl.wg.Add(1)
	go pl.run()
	return pl, nil
}

func (pl *Pipeline) closeQueue() { pl.once.Do(func() { close(pl.queue) }) }

// run executes descriptors in FIFO order on the sink.
func (pl *Pipeline) run() {
	defer pl.wg.Done()
	for m := range pl.queue {
		reply := msg{Op: 'c', Event: m.Event}
		pl.p.mu.Lock()
		fn := pl.p.funcs[m.Fn]
		bufs := make([][]byte, len(m.BufIDs))
		for i, id := range m.BufIDs {
			b := pl.p.buffers[id]
			if b == nil {
				fn = nil
				reply.Err = ErrUnknownBuffer.Error()
				break
			}
			bufs[i] = b.sinkWin.Bytes()
		}
		p := pl.p
		p.mu.Unlock()
		if fn == nil {
			if reply.Err == "" {
				reply.Err = ErrUnknownFunction.Error()
			}
		} else {
			func() {
				defer func() {
					if r := recover(); r != nil {
						reply.Err = fmt.Sprintf("coi: run-function panic: %v", r)
					}
				}()
				fn(m.Args, bufs)
			}()
		}
		_, _ = p.sinkEP.Send(encode(reply))
	}
}

// RunFunction enqueues a sink invocation of the named function with
// the given scalar args and buffer operands, returning immediately
// with a completion event.
func (pl *Pipeline) RunFunction(name string, args []int64, bufs ...*Buffer) (*Event, error) {
	if pl.p.inj != nil {
		if err := pl.p.inj.Kernel(pl.p.sink.Name()); err != nil {
			return nil, err
		}
	}
	ev := newEvent()
	m := msg{Op: 'r', Fn: name, Args: args, Pipeline: pl.id}
	for _, b := range bufs {
		if b.proc != pl.p {
			return nil, ErrUnknownBuffer
		}
		m.BufIDs = append(m.BufIDs, b.id)
	}
	pl.p.mu.Lock()
	if pl.p.down {
		pl.p.mu.Unlock()
		return nil, ErrProcessDown
	}
	m.Event = pl.p.id()
	pl.p.events[m.Event] = ev
	pl.p.mu.Unlock()
	if _, err := pl.p.srcEP.Send(encode(m)); err != nil {
		pl.p.mu.Lock()
		delete(pl.p.events, m.Event)
		pl.p.mu.Unlock()
		return nil, err
	}
	pl.p.runFns.Inc()
	return ev, nil
}

// Buffer is a COI buffer: sink-side storage addressable by run
// functions, filled and drained from the host over DMA.
type Buffer struct {
	proc    *Process
	id      uint64
	size    int
	sinkWin *fabric.Window
	pooled  []byte
	// allocTime is the modeled cost of the sink allocation; zero when
	// the buffer came from the pool.
	allocTime time.Duration
}

// FreshAllocCost is the modeled sink-side cost of a cold buffer
// allocation (pinning + page setup). The paper reports these as
// significant when pooling is off.
const FreshAllocCost = 300 * time.Microsecond

// CreateBuffer allocates sink storage of the given size.
func (p *Process) CreateBuffer(size int) (*Buffer, error) {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return nil, ErrProcessDown
	}
	id := p.id()
	p.mu.Unlock()

	b := &Buffer{proc: p, id: id, size: size}
	if p.pool != nil {
		mem, fresh := p.pool.Get(size)
		b.pooled = mem
		b.sinkWin = fabric.RegisterBacked(p.sink, mem[:size])
		if fresh {
			b.allocTime = FreshAllocCost
			p.poolMisses.Inc()
		} else {
			p.poolHits.Inc()
		}
	} else {
		b.sinkWin = fabric.Register(p.sink, size)
		b.allocTime = FreshAllocCost
		p.poolMisses.Inc()
	}
	p.mu.Lock()
	p.buffers[id] = b
	p.mu.Unlock()
	return b, nil
}

// Destroy releases the buffer (returning pooled storage to the pool).
func (b *Buffer) Destroy() {
	b.proc.mu.Lock()
	delete(b.proc.buffers, b.id)
	pool := b.proc.pool
	b.proc.mu.Unlock()
	if pool != nil && b.pooled != nil {
		pool.Put(b.pooled)
		b.pooled = nil
	}
}

// Size returns the buffer's length in bytes.
func (b *Buffer) Size() int { return b.size }

// AllocTime returns the modeled cost of this buffer's allocation
// (zero if it was satisfied from the pool).
func (b *Buffer) AllocTime() time.Duration { return b.allocTime }

// Write moves host bytes into the sink instance at off and returns the
// modeled wire time.
func (b *Buffer) Write(off int, src []byte) (time.Duration, error) {
	if off < 0 || off+len(src) > b.size {
		return 0, ErrBadRange
	}
	return b.sinkWin.DMAWrite(b.proc.fab, b.proc.source, off, src)
}

// Read moves sink bytes at off back to the host and returns the
// modeled wire time.
func (b *Buffer) Read(off int, dst []byte) (time.Duration, error) {
	if off < 0 || off+len(dst) > b.size {
		return 0, ErrBadRange
	}
	return b.sinkWin.DMARead(b.proc.fab, b.proc.source, off, dst)
}

// SinkBytes exposes the sink instance for sink-side (run-function)
// access in tests.
func (b *Buffer) SinkBytes() []byte { return b.sinkWin.Bytes() }
