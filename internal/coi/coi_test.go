package coi

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"hstreams/internal/fabric"
	"hstreams/internal/platform"
)

func newProcess(t *testing.T, opt Options) *Process {
	t.Helper()
	f := fabric.New()
	host := f.AddNode("host")
	card := f.AddNode("knc0")
	if _, err := f.Connect(host, card, platform.PCIe()); err != nil {
		t.Fatal(err)
	}
	p, err := CreateProcess(f, host, card, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Destroy)
	return p
}

func TestRunFunctionRoundTrip(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: true})
	p.RegisterFunction("fill", func(args []int64, bufs [][]byte) {
		for i := range bufs[0] {
			bufs[0][i] = byte(args[0])
		}
	})
	buf, err := p.CreateBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.CreatePipeline()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := pl.RunFunction("fill", []int64{7}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 64)
	if _, err := buf.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for _, b := range out {
		if b != 7 {
			t.Fatalf("sink wrote %d, want 7", b)
		}
	}
}

func TestPipelineIsFIFO(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: true})
	var mu sync.Mutex
	var order []int64
	p.RegisterFunction("log", func(args []int64, _ [][]byte) {
		mu.Lock()
		order = append(order, args[0])
		mu.Unlock()
	})
	pl, _ := p.CreatePipeline()
	var last *Event
	for i := int64(0); i < 50; i++ {
		ev, err := pl.RunFunction("log", []int64{i})
		if err != nil {
			t.Fatal(err)
		}
		last = ev
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 50 {
		t.Fatalf("executed %d, want 50", len(order))
	}
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("pipeline reordered: %v", order)
		}
	}
}

func TestTwoPipelinesRunConcurrently(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: true})
	gate := make(chan struct{})
	p.RegisterFunction("block", func(_ []int64, _ [][]byte) { <-gate })
	p.RegisterFunction("open", func(_ []int64, _ [][]byte) { close(gate) })
	pl1, _ := p.CreatePipeline()
	pl2, _ := p.CreatePipeline()
	evBlocked, _ := pl1.RunFunction("block", nil)
	evOpen, _ := pl2.RunFunction("open", nil)
	// If pipelines shared an executor this would deadlock; use a
	// timeout to fail fast instead.
	done := make(chan struct{})
	go func() {
		_ = evOpen.Wait()
		_ = evBlocked.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pipelines serialized against each other")
	}
}

func TestUnknownFunctionError(t *testing.T) {
	p := newProcess(t, Options{})
	pl, _ := p.CreatePipeline()
	ev, err := pl.RunFunction("nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err == nil {
		t.Fatal("unknown function must report an error")
	}
}

func TestRunFunctionPanicIsContained(t *testing.T) {
	p := newProcess(t, Options{})
	p.RegisterFunction("boom", func(_ []int64, _ [][]byte) { panic("kaboom") })
	p.RegisterFunction("ok", func(_ []int64, _ [][]byte) {})
	pl, _ := p.CreatePipeline()
	ev, _ := pl.RunFunction("boom", nil)
	if err := ev.Wait(); err == nil {
		t.Fatal("panic must surface as an error")
	}
	ev2, _ := pl.RunFunction("ok", nil)
	if err := ev2.Wait(); err != nil {
		t.Fatalf("pipeline dead after contained panic: %v", err)
	}
}

func TestBufferWriteReadBounds(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: true})
	b, _ := p.CreateBuffer(100)
	if _, err := b.Write(90, make([]byte, 20)); err != ErrBadRange {
		t.Fatalf("overrun write err = %v", err)
	}
	if _, err := b.Read(-1, make([]byte, 4)); err != ErrBadRange {
		t.Fatalf("negative read err = %v", err)
	}
	if b.Size() != 100 {
		t.Fatalf("Size = %d", b.Size())
	}
}

func TestBufferDataIntegrityThroughDMA(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: true})
	b, _ := p.CreateBuffer(8 * 128)
	src := make([]byte, 8*128)
	for i := 0; i < 128; i++ {
		binary.LittleEndian.PutUint64(src[i*8:], uint64(i*i))
	}
	if _, err := b.Write(0, src); err != nil {
		t.Fatal(err)
	}
	p.RegisterFunction("double", func(_ []int64, bufs [][]byte) {
		for i := 0; i < 128; i++ {
			v := binary.LittleEndian.Uint64(bufs[0][i*8:])
			binary.LittleEndian.PutUint64(bufs[0][i*8:], v*2)
		}
	})
	pl, _ := p.CreatePipeline()
	ev, _ := pl.RunFunction("double", nil, b)
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 8*128)
	if _, err := b.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if got := binary.LittleEndian.Uint64(out[i*8:]); got != uint64(2*i*i) {
			t.Fatalf("elem %d = %d, want %d", i, got, 2*i*i)
		}
	}
}

func TestPoolAvoidsFreshAllocations(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: true})
	b1, _ := p.CreateBuffer(1 << 20)
	if b1.AllocTime() != FreshAllocCost {
		t.Fatal("first allocation should be cold")
	}
	b1.Destroy()
	b2, _ := p.CreateBuffer(1 << 20)
	if b2.AllocTime() != 0 {
		t.Fatal("pooled reallocation should be free")
	}
	for _, x := range b2.SinkBytes()[:16] {
		if x != 0 {
			t.Fatal("pooled buffer not zeroed")
		}
	}
}

func TestNoPoolAlwaysCold(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: false})
	for i := 0; i < 3; i++ {
		b, _ := p.CreateBuffer(1 << 20)
		if b.AllocTime() != FreshAllocCost {
			t.Fatal("unpooled allocation must be cold every time")
		}
		b.Destroy()
	}
}

func TestBufferPoolClasses(t *testing.T) {
	pool := NewBufferPool(DefaultPoolChunk)
	small, fresh := pool.Get(100)
	if !fresh || len(small) != DefaultPoolChunk {
		t.Fatalf("small get: fresh=%v len=%d", fresh, len(small))
	}
	big, _ := pool.Get(3 << 20)
	if len(big) != 4<<20 {
		t.Fatalf("3MB request got %d bytes, want 4MB class", len(big))
	}
	pool.Put(small)
	pool.Put(big)
	reuse, fresh := pool.Get(2 << 20)
	if fresh || len(reuse) != DefaultPoolChunk {
		t.Fatalf("expected 1-chunk reuse, fresh=%v len=%d", fresh, len(reuse))
	}
	hits, misses := pool.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits %d misses, want 1/2", hits, misses)
	}
	// Foreign blocks are dropped, not pooled.
	pool.Put(make([]byte, 123))
}

func TestDestroyedProcessRejectsWork(t *testing.T) {
	p := newProcess(t, Options{})
	pl, _ := p.CreatePipeline()
	p.Destroy()
	if _, err := p.CreatePipeline(); err != ErrProcessDown {
		t.Fatalf("CreatePipeline after destroy err = %v", err)
	}
	if _, err := p.CreateBuffer(16); err != ErrProcessDown {
		t.Fatalf("CreateBuffer after destroy err = %v", err)
	}
	if _, err := pl.RunFunction("x", nil); err != ErrProcessDown {
		t.Fatalf("RunFunction after destroy err = %v", err)
	}
	p.Destroy() // second destroy must be safe
}

func TestForeignBufferRejected(t *testing.T) {
	p1 := newProcess(t, Options{})
	p2 := newProcess(t, Options{})
	b, _ := p2.CreateBuffer(16)
	pl, _ := p1.CreatePipeline()
	if _, err := pl.RunFunction("f", nil, b); err != ErrUnknownBuffer {
		t.Fatalf("foreign buffer err = %v", err)
	}
}

func TestManyConcurrentRunFunctions(t *testing.T) {
	p := newProcess(t, Options{PoolBuffers: true})
	var counter int64
	var mu sync.Mutex
	p.RegisterFunction("inc", func(_ []int64, _ [][]byte) {
		mu.Lock()
		counter++
		mu.Unlock()
	})
	const pipes, per = 8, 40
	var wg sync.WaitGroup
	for i := 0; i < pipes; i++ {
		pl, err := p.CreatePipeline()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var evs []*Event
			for j := 0; j < per; j++ {
				ev, err := pl.RunFunction("inc", nil)
				if err != nil {
					t.Errorf("RunFunction: %v", err)
					return
				}
				evs = append(evs, ev)
			}
			for _, ev := range evs {
				if err := ev.Wait(); err != nil {
					t.Errorf("Wait: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != pipes*per {
		t.Fatalf("counter = %d, want %d", counter, pipes*per)
	}
}

func TestDestroyDrainsPendingPipelines(t *testing.T) {
	// Process teardown must let already-enqueued run-functions finish
	// rather than abandoning them (Fini semantics of the layer
	// above).
	p := newProcess(t, Options{PoolBuffers: true})
	var mu sync.Mutex
	ran := 0
	p.RegisterFunction("slowinc", func(_ []int64, _ [][]byte) {
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		ran++
		mu.Unlock()
	})
	pl, _ := p.CreatePipeline()
	var evs []*Event
	for i := 0; i < 10; i++ {
		ev, err := pl.RunFunction("slowinc", nil)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	for _, ev := range evs {
		if err := ev.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	p.Destroy()
	mu.Lock()
	defer mu.Unlock()
	if ran != 10 {
		t.Fatalf("ran = %d, want 10", ran)
	}
}
