package coi

import "sync"

// DefaultPoolChunk is the pool granularity. The paper notes COI
// allocation overheads become negligible when a pool of 2 MB buffers
// is used (§III) — 2 MB is the huge-page size the real COI pinned.
const DefaultPoolChunk = 2 << 20

// BufferPool recycles sink-side allocations in chunk-size classes so
// repeated buffer creation avoids cold allocation (pinning) costs.
type BufferPool struct {
	chunk int

	mu     sync.Mutex
	free   map[int][][]byte // size class (in chunks) → free blocks
	hits   int64
	misses int64
}

// NewBufferPool returns a pool with the given chunk granularity.
func NewBufferPool(chunk int) *BufferPool {
	if chunk <= 0 {
		chunk = DefaultPoolChunk
	}
	return &BufferPool{chunk: chunk, free: make(map[int][][]byte)}
}

// class returns the size class (number of chunks) covering size.
func (p *BufferPool) class(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + p.chunk - 1) / p.chunk
}

// Get returns a block of at least size bytes and whether it was a
// fresh (cold) allocation.
func (p *BufferPool) Get(size int) (mem []byte, fresh bool) {
	cl := p.class(size)
	p.mu.Lock()
	defer p.mu.Unlock()
	if blocks := p.free[cl]; len(blocks) > 0 {
		mem = blocks[len(blocks)-1]
		p.free[cl] = blocks[:len(blocks)-1]
		p.hits++
		// Pool reuse must not leak previous contents.
		for i := range mem {
			mem[i] = 0
		}
		return mem, false
	}
	p.misses++
	return make([]byte, cl*p.chunk), true
}

// Put returns a block obtained from Get to the pool.
func (p *BufferPool) Put(mem []byte) {
	cl := len(mem) / p.chunk
	if cl == 0 || len(mem)%p.chunk != 0 {
		return // not a pool block; drop it
	}
	p.mu.Lock()
	p.free[cl] = append(p.free[cl], mem)
	p.mu.Unlock()
}

// Stats reports pool reuse counts.
func (p *BufferPool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
