package floatbits

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	f := []float64{1.5, -2.25, 3.125}
	b := Bytes(f)
	if len(b) != 24 {
		t.Fatalf("len = %d, want 24", len(b))
	}
	g := Float64s(b)
	for i := range f {
		if g[i] != f[i] {
			t.Fatalf("g[%d] = %v, want %v", i, g[i], f[i])
		}
	}
	// The views alias: writing through one is visible in the other.
	g[0] = 42
	if f[0] != 42 {
		t.Fatal("views do not alias")
	}
}

func TestEmpty(t *testing.T) {
	if Float64s(nil) != nil || Bytes(nil) != nil {
		t.Fatal("empty inputs must give nil")
	}
}

func TestBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for odd length")
		}
	}()
	Float64s(make([]byte, 7))
}

func TestHeapByteBuffersAreAligned(t *testing.T) {
	// The property the package relies on: make([]byte, n≥8) is
	// 8-aligned on the Go heap.
	for _, n := range []int{8, 16, 24, 100, 1 << 20} {
		b := make([]byte, n)
		v := Float64s(b[:n/8*8])
		v[0] = 1 // must not fault
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		g := Float64s(Bytes(vals))
		if len(g) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN != NaN, compare bit patterns via slices aliasing.
			if g[i] != vals[i] && vals[i] == vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
