// Package floatbits provides zero-copy reinterpretation between byte
// buffers (the currency of the fabric/COI transport layers) and
// float64 slices (the currency of the compute kernels).
//
// The Go heap aligns every allocation of 8 bytes or more to at least
// 8 bytes, so views over buffers produced by make([]byte, n) are
// always aligned; the functions verify this and panic otherwise
// rather than silently tearing loads.
package floatbits

import (
	"fmt"
	"unsafe"
)

// Float64s views b as a []float64 without copying. len(b) must be a
// multiple of 8 and the data must be 8-byte aligned.
func Float64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if len(b)%8 != 0 {
		panic(fmt.Sprintf("floatbits: byte length %d not a multiple of 8", len(b)))
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		panic("floatbits: misaligned buffer")
	}
	return unsafe.Slice((*float64)(p), len(b)/8)
}

// Bytes views f as a []byte without copying.
func Bytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(f))), len(f)*8)
}
